package solve

import (
	"testing"

	"rbpebble/internal/daggen"
	"rbpebble/internal/pebble"
)

// Solver microbenchmarks on the canonical workloads at fixed R, all in
// the oneshot model. Each benchmark reports states-expanded (for the
// exact searches) alongside ns/op and allocs/op, giving BENCH_*.json a
// real trajectory for the search core.
//
// Reference numbers for the seed implementation (string-keyed Dijkstra,
// container/heap, full-state clone per candidate), measured on the seed
// commit with the same instances:
//
//	pyramid(5) R=4:  3.85 s/op   21,634,392 allocs/op   65,689 states
//	grid(4,4)  R=3:  79 ms/op       583,607 allocs/op    2,239 states
//
// This rewrite, same machine (states = expanded; HeuristicOff matches
// the seed search state-for-state):
//
//	pyramid(5) R=4 A*:        15 ms/op      719 allocs/op    7,387 states
//	pyramid(5) R=4 Dijkstra:  72 ms/op      200 allocs/op   65,689 states
//	grid(4,4)  R=3 A*:       1.1 ms/op      487 allocs/op      956 states
//	fft(3)     R=3 A*:       2.8  s/op      923 allocs/op  1.27M states
//	fft(3)     R=3 Dijkstra: 6.1  s/op      372 allocs/op  4.03M states
//
// i.e. A* expands 8.9x fewer states on pyramid(5) R=4 and 3.2x fewer on
// fft(3) R=3, and the allocation-free loop runs at ~10,000x fewer
// allocs/op and 50-250x faster than the seed on identical instances,
// with identical optimal costs.

func pyramid5R4() Problem {
	return Problem{G: daggen.Pyramid(5), Model: pebble.NewModel(pebble.Oneshot), R: 4}
}

func fft3R3() Problem {
	return Problem{G: daggen.FFT(3), Model: pebble.NewModel(pebble.Oneshot), R: 3}
}

func grid44R3() Problem {
	return Problem{G: daggen.Grid(4, 4), Model: pebble.NewModel(pebble.Oneshot), R: 3}
}

func benchExact(b *testing.B, p Problem, opts ExactOptions) {
	b.Helper()
	b.ReportAllocs()
	var stats ExactStats
	opts.Stats = &stats
	opts.MaxStates = 50_000_000
	for i := 0; i < b.N; i++ {
		if _, err := Exact(p, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(stats.Expanded), "states/op")
	b.ReportMetric(float64(stats.Distinct), "distinct/op")
}

func BenchmarkExactAStarPyramid5R4(b *testing.B) { benchExact(b, pyramid5R4(), ExactOptions{}) }

func BenchmarkExactDijkstraPyramid5R4(b *testing.B) {
	benchExact(b, pyramid5R4(), ExactOptions{Heuristic: HeuristicOff})
}

func BenchmarkExactAStarFFT3R3(b *testing.B) { benchExact(b, fft3R3(), ExactOptions{}) }

func BenchmarkExactDijkstraFFT3R3(b *testing.B) {
	benchExact(b, fft3R3(), ExactOptions{Heuristic: HeuristicOff})
}

func BenchmarkExactAStarGrid44R3(b *testing.B) { benchExact(b, grid44R3(), ExactOptions{}) }

func BenchmarkExactDijkstraGrid44R3(b *testing.B) {
	benchExact(b, grid44R3(), ExactOptions{Heuristic: HeuristicOff})
}

func BenchmarkExactParallel4Pyramid5R4(b *testing.B) {
	benchExact(b, pyramid5R4(), ExactOptions{Parallel: 4})
}

func benchDFS(b *testing.B, p Problem) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ExactDFS(p, ExactDFSOptions{MaxVisits: 50_000_000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactDFSPyramid5R4(b *testing.B) { benchDFS(b, pyramid5R4()) }

// FFT(2) stands in for FFT(3) here: depth-first branch and bound blows
// any reasonable visit budget on fft(3) R=3 (>100M visits) — the
// best-first searches above are the right tool for that instance.
func BenchmarkExactDFSFFT2R3(b *testing.B) {
	benchDFS(b, Problem{G: daggen.FFT(2), Model: pebble.NewModel(pebble.Oneshot), R: 3})
}

func BenchmarkExactDFSGrid44R3(b *testing.B) { benchDFS(b, grid44R3()) }

func benchTopoBelady(b *testing.B, p Problem) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := TopoBelady(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopoBeladyPyramid5R4(b *testing.B) { benchTopoBelady(b, pyramid5R4()) }

func BenchmarkTopoBeladyFFT3R3(b *testing.B) { benchTopoBelady(b, fft3R3()) }

func BenchmarkTopoBeladyGrid44R3(b *testing.B) { benchTopoBelady(b, grid44R3()) }
