package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"rbpebble/internal/dag"
)

// Features is the per-instance feature vector the learned portfolio
// scheduler consumes: structural properties of the DAG plus the
// red-pebble slack that governs exact-solve hardness.
type Features struct {
	N     int `json:"n"`     // nodes
	M     int `json:"m"`     // edges
	Delta int `json:"delta"` // max in-degree
	R     int `json:"r"`     // red pebbles
	// RDeltaGap = R - Delta: slack above the in-degree bound. The
	// minimum feasible budget is Delta+1, so feasible instances have
	// gap >= 1; small gaps mean tightly constrained, hard instances.
	RDeltaGap int `json:"r_delta_gap"`
	// Depth is the number of vertices on a longest path — the
	// sequential backbone length.
	Depth int `json:"depth"`
	// MaxWidth / AvgWidth profile the topological level widths: how
	// much parallel slack the instance offers per depth layer.
	MaxWidth int     `json:"max_width"`
	AvgWidth float64 `json:"avg_width"`
	// FullEventDensity is the fraction of vertices whose in-degree
	// equals Delta — the vertices that force all Delta inputs red at
	// once and fire the arrival lower bound.
	FullEventDensity float64 `json:"full_event_density"`
}

// ComputeFeatures derives the feature vector for a DAG solved with r
// red pebbles. A cyclic graph (which the solve path rejects anyway)
// yields only the size fields.
func ComputeFeatures(g *dag.DAG, r int) Features {
	f := Features{N: g.N(), M: g.M(), R: r}
	f.Delta = g.MaxInDegree()
	f.RDeltaGap = r - f.Delta
	order, err := g.TopoOrder()
	if err != nil || f.N == 0 {
		return f
	}
	// Level of v = 1 + max level over predecessors; level widths give
	// the depth/width profile in one pass over the topo order.
	level := make([]int, f.N)
	depth := 0
	for _, v := range order {
		lv := 0
		for _, u := range g.Preds(v) {
			if level[u] > lv {
				lv = level[u]
			}
		}
		level[v] = lv + 1
		if level[v] > depth {
			depth = level[v]
		}
	}
	f.Depth = depth
	width := make([]int, depth+1)
	for _, lv := range level {
		width[lv]++
	}
	for _, w := range width[1:] {
		if w > f.MaxWidth {
			f.MaxWidth = w
		}
	}
	if depth > 0 {
		f.AvgWidth = float64(f.N) / float64(depth)
	}
	if f.Delta > 0 {
		full := 0
		for v := 0; v < f.N; v++ {
			if g.InDegree(dag.NodeID(v)) == f.Delta {
				full++
			}
		}
		f.FullEventDensity = float64(full) / float64(f.N)
	}
	return f
}

// SolveRecord is the per-solve telemetry row: one line of the feature
// store the portfolio scheduler trains on. Every completed solve —
// cache hit or cold exact run, finished or deadline-canceled — appends
// one.
type SolveRecord struct {
	TraceID  string    `json:"trace_id,omitempty"`
	Start    time.Time `json:"start"`
	Node     string    `json:"node,omitempty"` // filled by the proxy's fleet merge
	Features Features  `json:"features"`
	Model    string    `json:"model"`
	// Engine is the source of the served value: astar, ida*, greedy,
	// cache, warm, shared...
	Engine  string `json:"engine"`
	Workers int    `json:"workers,omitempty"`
	// BudgetMS is the solve budget; Tier its cache credit bucket.
	BudgetMS int64 `json:"budget_ms"`
	Tier     int   `json:"tier"`
	// Disposition: hit | warm | shared | cold.
	Disposition string `json:"disposition"`
	Canceled    bool   `json:"canceled,omitempty"`
	Expanded    uint64 `json:"expanded,omitempty"`
	Visits      uint64 `json:"visits,omitempty"`
	TableBytes  uint64 `json:"table_bytes,omitempty"`
	// PeakFrontier/PeakRate are the largest open-frontier size and
	// expansion rate (states/s) observed across the solve's search
	// snapshots (0 when no snapshots were sampled).
	PeakFrontier int64   `json:"peak_frontier,omitempty"`
	PeakRate     float64 `json:"peak_rate,omitempty"`
	// Certified interval in scaled cost units; Optimal when closed.
	LowerScaled int64   `json:"lower_scaled"`
	UpperScaled int64   `json:"upper_scaled"`
	Optimal     bool    `json:"optimal"`
	WallMS      float64 `json:"wall_ms"`
	Err         string  `json:"err,omitempty"`
}

// SolveLog is the in-memory telemetry ring plus an optional JSONL
// sink. Append is safe for concurrent use; the sink is written under
// the same lock so lines never interleave.
type SolveLog struct {
	mu    sync.Mutex
	cap   int
	ring  []SolveRecord
	next  int // ring write cursor
	full  bool
	total uint64
	sink  io.Writer
}

// NewSolveLog creates a ring retaining up to capacity records
// (non-positive capacity gets the default of 512) mirroring each
// record to sink as one JSON line when sink is non-nil.
func NewSolveLog(capacity int, sink io.Writer) *SolveLog {
	if capacity <= 0 {
		capacity = 512
	}
	return &SolveLog{cap: capacity, ring: make([]SolveRecord, capacity), sink: sink}
}

// Append records one solve.
func (l *SolveLog) Append(rec SolveRecord) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ring[l.next] = rec
	l.next++
	if l.next == l.cap {
		l.next = 0
		l.full = true
	}
	l.total++
	if l.sink != nil {
		if b, err := json.Marshal(rec); err == nil {
			l.sink.Write(append(b, '\n'))
		}
	}
}

// Recent returns up to n records, newest first. n <= 0 means all
// retained records.
func (l *SolveLog) Recent(n int) []SolveRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	size := l.next
	if l.full {
		size = l.cap
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]SolveRecord, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, l.ring[(l.next-i+l.cap)%l.cap])
	}
	return out
}

// Total reports how many records have ever been appended (including
// ones the ring has since evicted).
func (l *SolveLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
