// Package reduce implements the paper's two reductions as executable
// instance transformations:
//
//   - Theorem 2: Hamiltonian Path → Pebbling (NP-hardness). Visiting the
//     reduction DAG's input groups in a permutation order costs less per
//     transition exactly when consecutive nodes are adjacent in the
//     source graph, so the minimum pebbling cost hits a closed-form
//     threshold iff the graph has a Hamiltonian path.
//
//   - Theorem 3: Vertex Cover → Pebbling (UGC inapproximability). The
//     minimum pebbling cost is 2k'·|VC| + O(N²), so approximating
//     pebbling below factor 2 approximates Vertex Cover below 2.
//
// The closed-form thresholds below follow the engine's exact accounting,
// which differs from the paper's by small constant boundary terms (the
// paper's counting makes a pebbling "end" with all pebbles parked; ours
// lets the final group keep its red pebbles). Each threshold is validated
// against the exact state-space solver in the tests.
package reduce

import (
	"fmt"
	"sort"

	"rbpebble/internal/dag"
	"rbpebble/internal/pebble"
	"rbpebble/internal/sched"
	"rbpebble/internal/ugraph"
)

// HamPath is the Theorem 2 reduction instance built from an undirected
// graph on N >= 2 vertices: one sink target per vertex, one input group
// of N-1 contact nodes per target, with the two contacts of each source
// edge merged. Pebble with R = N.
type HamPath struct {
	Source *ugraph.Graph
	G      *dag.DAG
	R      int
	// Targets[a] is the sink t_a for source vertex a.
	Targets []dag.NodeID
	// Contact[a][b] (a != b) is the contact node in group a for b; for
	// edges (a,b) of the source graph, Contact[a][b] == Contact[b][a].
	Contact [][]dag.NodeID
}

// NewHamPath builds the reduction DAG: N targets, N·(N-1)-M contact
// sources (M merged pairs), R = N.
func NewHamPath(src *ugraph.Graph) *HamPath {
	n := src.N()
	if n < 2 {
		panic("reduce: NewHamPath needs a source graph with >= 2 vertices")
	}
	g := dag.New(0)
	r := &HamPath{Source: src, G: g, R: n}
	r.Contact = make([][]dag.NodeID, n)
	for a := 0; a < n; a++ {
		r.Contact[a] = make([]dag.NodeID, n)
		for b := range r.Contact[a] {
			r.Contact[a][b] = -1
		}
	}
	for a := 0; a < n; a++ {
		r.Targets = append(r.Targets, g.AddLabeledNode(fmt.Sprintf("t%d", a)))
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b || r.Contact[a][b] >= 0 {
				continue
			}
			if src.HasEdge(a, b) {
				v := g.AddLabeledNode(fmt.Sprintf("v%d,%d", a, b))
				r.Contact[a][b] = v
				r.Contact[b][a] = v
				g.AddEdge(v, r.Targets[a])
				g.AddEdge(v, r.Targets[b])
			} else {
				v := g.AddLabeledNode(fmt.Sprintf("v%d.%d", a, b))
				r.Contact[a][b] = v
				g.AddEdge(v, r.Targets[a])
			}
		}
	}
	return r
}

// Group returns the input group of vertex a: its N-1 contact nodes.
func (r *HamPath) Group(a int) []dag.NodeID {
	var out []dag.NodeID
	for b := 0; b < r.Source.N(); b++ {
		if b != a {
			out = append(out, r.Contact[a][b])
		}
	}
	return out
}

// ThresholdNoDel returns the exact optimum pebbling cost of the reduction
// DAG in the nodel model when the source graph has a Hamiltonian path:
// (N-1)^2 transfers. Any pebbling visiting two non-adjacent vertices
// consecutively pays one more per such pair.
//
// Derivation under the engine's accounting: the first visit is free (all
// contacts and the target are computed fresh); each of the N-1
// transitions stores the previous target (1) and stores the previous
// group's non-shared contacts (N-2 when the vertices are adjacent —
// fresh contacts are recomputed over blue for free in nodel), totalling
// N-1 per adjacent transition.
func (r *HamPath) ThresholdNoDel() int {
	n := r.Source.N()
	return (n - 1) * (n - 1)
}

// ThresholdOneshot returns the exact optimum for the oneshot model when a
// Hamiltonian path exists: (N-1) + 2·(M - (N-1)) transfers.
//
// Derivation: each target but the last is stored once (N-1); each merged
// contact (one per source edge) serves two groups — consecutive visits
// keep it red (free), non-consecutive ones store and reload it (2). A
// Hamiltonian path makes exactly N-1 merged contacts free, leaving
// M-(N-1) edges paying 2. Unmerged contacts die after their only use and
// are deleted for free.
func (r *HamPath) ThresholdOneshot() int {
	n, m := r.Source.N(), r.Source.M()
	return (n - 1) + 2*(m-(n-1))
}

// PermutationCostNoDel returns the engine-accounted cost of visiting the
// groups in the given vertex permutation under nodel:
// sum over transitions of (N-1) + [not adjacent].
func (r *HamPath) PermutationCostNoDel(perm []int) int {
	n := r.Source.N()
	cost := 0
	for i := 1; i < len(perm); i++ {
		cost += n - 1
		if !r.Source.HasEdge(perm[i-1], perm[i]) {
			cost++
		}
	}
	return cost
}

// PermutationCostOneshot returns the engine-accounted oneshot cost of the
// permutation: (N-1) target stores + 2 per edge whose endpoints are not
// consecutive in perm.
func (r *HamPath) PermutationCostOneshot(perm []int) int {
	n, m := r.Source.N(), r.Source.M()
	adj := 0
	for i := 1; i < len(perm); i++ {
		if r.Source.HasEdge(perm[i-1], perm[i]) {
			adj++
		}
	}
	return (n - 1) + 2*(m-adj)
}

// Order expands a vertex permutation into a node-level compute order for
// the reduction DAG: for each visited vertex, its not-yet-computed
// contact nodes (ascending) followed by its target.
func (r *HamPath) Order(perm []int) []dag.NodeID {
	if len(perm) != r.Source.N() {
		panic("reduce: permutation length mismatch")
	}
	placed := make(map[dag.NodeID]bool)
	var order []dag.NodeID
	for _, a := range perm {
		grp := r.Group(a)
		sort.Slice(grp, func(i, j int) bool { return grp[i] < grp[j] })
		for _, v := range grp {
			if !placed[v] {
				placed[v] = true
				order = append(order, v)
			}
		}
		order = append(order, r.Targets[a])
	}
	return order
}

// Pebble executes the permutation's visit order under the given model.
// For oneshot (and base/compcost) it uses the scheduler with Belady
// eviction; for nodel it uses a construction-specific pebbler that
// exploits free source recomputation (which the generic scheduler never
// does). The returned result is replay-verified.
func (r *HamPath) Pebble(perm []int, model pebble.Model) (*pebble.Trace, pebble.Result, error) {
	if model.Kind == pebble.NoDel {
		return r.pebbleNoDel(perm, model)
	}
	return sched.Execute(r.G, model, r.R, pebble.Convention{}, r.Order(perm), sched.Options{Policy: sched.Belady})
}

// pebbleNoDel realizes the paper's nodel strategy: move red pebbles
// between groups by storing the old position (cost 1) and recomputing
// the new source position for free.
func (r *HamPath) pebbleNoDel(perm []int, model pebble.Model) (*pebble.Trace, pebble.Result, error) {
	rec, err := pebble.NewRecorder(r.G, model, r.R, pebble.Convention{})
	if err != nil {
		return nil, pebble.Result{}, err
	}
	for i, a := range perm {
		if i > 0 {
			// Store the previous target to free its pebble.
			if err := rec.Apply(pebble.Move{Kind: pebble.Store, Node: r.Targets[perm[i-1]]}); err != nil {
				return nil, pebble.Result{}, err
			}
		}
		// Determine which contacts of a are missing.
		var missing []dag.NodeID
		for _, v := range r.Group(a) {
			if !rec.IsRed(v) {
				missing = append(missing, v)
			}
		}
		sort.Slice(missing, func(x, y int) bool { return missing[x] < missing[y] })
		// Free a slot before each placement by storing a stale red pebble
		// (one outside the current group); then recompute the source for
		// free (over blue or fresh).
		place := func(v dag.NodeID) error {
			if rec.RedCount() >= r.R {
				victim := r.staleRed(rec, a)
				if victim < 0 {
					return fmt.Errorf("reduce: no stale red pebble to store")
				}
				if err := rec.Apply(pebble.Move{Kind: pebble.Store, Node: victim}); err != nil {
					return err
				}
			}
			return rec.Apply(pebble.Move{Kind: pebble.Compute, Node: v})
		}
		for _, v := range missing {
			if err := place(v); err != nil {
				return nil, pebble.Result{}, err
			}
		}
		if err := place(r.Targets[a]); err != nil {
			return nil, pebble.Result{}, err
		}
	}
	tr := rec.Trace()
	res, err := tr.Run(r.G)
	if err != nil {
		return nil, pebble.Result{}, fmt.Errorf("reduce: nodel pebbler self-verification: %w", err)
	}
	return tr, res, nil
}

// staleRed returns a red node that is not in group a and not a's target
// (preferring contacts over targets), or -1.
func (r *HamPath) staleRed(rec *pebble.Recorder, a int) dag.NodeID {
	inGroup := make(map[dag.NodeID]bool)
	for _, v := range r.Group(a) {
		inGroup[v] = true
	}
	inGroup[r.Targets[a]] = true
	var fallback dag.NodeID = -1
	n := r.G.N()
	for v := 0; v < n; v++ {
		node := dag.NodeID(v)
		if !rec.IsRed(node) || inGroup[node] {
			continue
		}
		if !r.G.IsSink(node) {
			return node
		}
		fallback = node
	}
	return fallback
}
