package pebble

import "rbpebble/internal/dag"

// MinFeasibleR returns the smallest red-pebble count with which g can be
// pebbled at all: Δ+1, where Δ is the maximum in-degree (paper §3). A node
// with d inputs needs d red pebbles on its inputs plus one on itself.
// Edgeless graphs need 1.
func MinFeasibleR(g *dag.DAG) int {
	return g.MaxInDegree() + 1
}

// CostUpperBound returns the paper's universal upper bound on the optimal
// pebbling cost with any feasible R: (2Δ+1)·n transfers (plus n computes,
// charged only under CompCost). It is achieved by the naive topological
// strategy (solve.Topological).
func CostUpperBound(g *dag.DAG, m Model) Cost {
	d := g.MaxInDegree()
	n := g.N()
	return Cost{Transfers: (2*d + 1) * n, Computes: n}
}

// StepUpperBoundFactor returns a step bound for optimal pebblings as a
// multiple of Δ·n per the paper's Lemma 1 analysis. For oneshot and nodel,
// optimal pebblings use O(Δ·n) steps; for compcost the constant depends on
// 1/ε. For the base model no polynomial bound exists (it may be
// superpolynomial), so the return value is 0 meaning "unbounded".
func StepUpperBoundFactor(m Model) int {
	switch m.Kind {
	case Oneshot, NoDel:
		// ≤ (2Δ+1)n transfers + n computes + n deletes ≲ 5·Δ·n for Δ≥1.
		return 5
	case CompCost:
		// p ≤ (2/ε)(2Δ+1+ε)n non-transfer steps + (2Δ+1+ε)n transfers.
		return 5 * m.EpsDenom
	default:
		return 0
	}
}
