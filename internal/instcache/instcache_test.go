package instcache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"rbpebble/internal/dag"
	"rbpebble/internal/daggen"
	"rbpebble/internal/pebble"
	"rbpebble/internal/solve"
)

// relabel returns a copy of g with node v renamed to perm[v].
func relabel(g *dag.DAG, perm []dag.NodeID) *dag.DAG {
	h := dag.New(g.N())
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Succs(dag.NodeID(v)) {
			h.AddEdge(perm[v], perm[w])
		}
	}
	return h
}

func randPerm(n int, rng *rand.Rand) []dag.NodeID {
	p := make([]dag.NodeID, n)
	for i, v := range rng.Perm(n) {
		p[i] = dag.NodeID(v)
	}
	return p
}

// TestCanonicalInvariance: relabeled copies of a graph get the same
// digest, and the permutations map both onto the same canonical graph.
func TestCanonicalInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	graphs := map[string]*dag.DAG{
		"pyramid4":  daggen.Pyramid(4),
		"fft2":      daggen.FFT(2),
		"chain9":    daggen.Chain(9),
		"tree3":     daggen.BinaryTree(3),
		"grid33":    daggen.Grid(3, 3),
		"layered":   daggen.RandomLayered(3, 4, 2, 5),
		"singleton": dag.New(1),
	}
	for name, g := range graphs {
		d0, perm0 := Canonical(g)
		if len(perm0) != g.N() {
			t.Fatalf("%s: perm length %d != n %d", name, len(perm0), g.N())
		}
		seen := make([]bool, g.N())
		for _, c := range perm0 {
			if int(c) >= g.N() || seen[c] {
				t.Fatalf("%s: perm is not a permutation", name)
			}
			seen[c] = true
		}
		for trial := 0; trial < 5; trial++ {
			perm := randPerm(g.N(), rng)
			h := relabel(g, perm)
			d1, _ := Canonical(h)
			if d0 != d1 {
				t.Fatalf("%s: digest changed under relabeling (trial %d)", name, trial)
			}
		}
	}
}

// TestCanonicalDistinguishes: structurally different graphs get
// different digests.
func TestCanonicalDistinguishes(t *testing.T) {
	// Note Grid(2,3) and Grid(3,2) are deliberately absent: the stencil
	// grid is transpose-symmetric, so they are isomorphic and SHOULD
	// share a digest (the invariance test covers that direction).
	gs := []*dag.DAG{
		daggen.Pyramid(3), daggen.Pyramid(4), daggen.Chain(6), daggen.Chain(7),
		daggen.FFT(2), daggen.Grid(2, 3), daggen.Grid(2, 4), daggen.BinaryTree(3),
		daggen.Stencil1D(4, 2), daggen.MatMul(2),
	}
	seen := map[[32]byte]int{}
	for i, g := range gs {
		d, _ := Canonical(g)
		if j, dup := seen[d]; dup {
			t.Fatalf("graphs %d and %d share a digest", i, j)
		}
		seen[d] = i
	}
}

// TestKeySeparatesParameters: same graph, different model/R/convention
// must produce different keys.
func TestKeySeparatesParameters(t *testing.T) {
	g := daggen.Pyramid(3)
	keys := map[string]bool{}
	for _, in := range []Instance{
		{G: g, Model: pebble.NewModel(pebble.Oneshot), R: 3},
		{G: g, Model: pebble.NewModel(pebble.Oneshot), R: 4},
		{G: g, Model: pebble.NewModel(pebble.Base), R: 3},
		{G: g, Model: pebble.NewModel(pebble.CompCost), R: 3},
		{G: g, Model: pebble.NewModel(pebble.Oneshot), R: 3,
			Convention: pebble.Convention{SinksMustBeBlue: true}},
	} {
		k, _ := in.Key()
		if keys[k] {
			t.Fatalf("duplicate key %q", k)
		}
		keys[k] = true
	}
}

// TestTranslationRoundTrip solves a canonical instance, stores the
// trace canonically, and replays it on a relabeled copy through
// FromCanonical — the cached solution must be valid (and optimal) for
// the relabeled instance.
func TestTranslationRoundTrip(t *testing.T) {
	g := daggen.Pyramid(4)
	model := pebble.NewModel(pebble.Oneshot)
	sol, err := solve.Exact(solve.Problem{G: g, Model: model, R: 3}, solve.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, perm := Canonical(g)
	canonMoves := ToCanonical(sol.Trace.Moves, perm)

	rng := rand.New(rand.NewSource(7))
	rp := randPerm(g.N(), rng)
	h := relabel(g, rp)
	_, hperm := Canonical(h)
	tr := &pebble.Trace{Model: model, R: 3, Convention: pebble.Convention{},
		Moves: FromCanonical(canonMoves, hperm)}
	res, err := tr.Run(h)
	if err != nil {
		t.Fatalf("translated trace does not replay on the relabeled graph: %v", err)
	}
	if res.Cost != sol.Result.Cost {
		t.Fatalf("translated cost %v != original %v", res.Cost, sol.Result.Cost)
	}
}

// TestCacheLRUAndStats exercises hit/miss/eviction accounting.
func TestCacheLRUAndStats(t *testing.T) {
	c := New(2)
	get := func(key string) (Value, bool) {
		v, hit, _, err := c.Do(context.Background(), key, func() (Value, error) {
			return Value{UpperScaled: 1, LowerScaled: 1, Optimal: true}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v, hit
	}
	if _, hit := get("a"); hit {
		t.Fatal("first lookup hit")
	}
	if _, hit := get("a"); !hit {
		t.Fatal("second lookup missed")
	}
	get("b")
	get("c") // evicts a
	if _, hit := get("a"); hit {
		t.Fatal("evicted entry still hit")
	}
	st := c.Stats()
	if st.Evictions == 0 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want evictions > 0 and 2 entries", st)
	}
	// Non-optimal results pass through uncached.
	c.Do(context.Background(), "partial", func() (Value, error) { return Value{Optimal: false}, nil })
	if _, hit, _, _ := c.Do(context.Background(), "partial", func() (Value, error) { return Value{}, nil }); hit {
		t.Fatal("non-optimal value was cached")
	}
}

// TestSingleflight: N concurrent identical requests run fn exactly
// once; the rest share the result.
func TestSingleflight(t *testing.T) {
	c := New(8)
	const n = 16
	gate := make(chan struct{})
	var calls int
	var wg sync.WaitGroup
	var mu sync.Mutex
	sharedCount := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, shared, err := c.Do(context.Background(), "k", func() (Value, error) {
				calls++ // safe: singleflight guarantees one caller
				<-gate
				return Value{Optimal: true}, nil
			})
			if err != nil {
				t.Error(err)
			}
			mu.Lock()
			if shared {
				sharedCount++
			}
			mu.Unlock()
		}()
	}
	// Let the requests pile onto the flight, then release it. The
	// stats-based wait avoids a racy sleep.
	for {
		st := c.Stats()
		if st.Misses >= n {
			break
		}
	}
	close(gate)
	wg.Wait()
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	if sharedCount != n-1 {
		t.Fatalf("%d shared flights, want %d", sharedCount, n-1)
	}
	if st := c.Stats(); st.SharedFlights != n-1 {
		t.Fatalf("stats shared = %d, want %d", st.SharedFlights, n-1)
	}
}

// FuzzCanonicalInvariance guards the canonical-key path: any parsed
// DAG must digest identically under a relabeling derived from the
// input bytes.
func FuzzCanonicalInvariance(f *testing.F) {
	seedGraph := func(g *dag.DAG) {
		var buf bytes.Buffer
		if err := g.WriteText(&buf); err == nil {
			f.Add(buf.Bytes(), int64(1))
		}
	}
	seedGraph(daggen.Pyramid(3))
	seedGraph(daggen.FFT(2))
	seedGraph(daggen.Chain(5))
	seedGraph(daggen.Grid(2, 2))
	seedGraph(daggen.RandomLayered(2, 3, 2, 9))
	f.Add([]byte("nodes 3\nedge 0 1\nedge 1 2\n"), int64(3))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		g, err := dag.ReadText(bytes.NewReader(data))
		if err != nil || g.N() == 0 || g.N() > 64 {
			return
		}
		d0, perm0 := Canonical(g)
		if len(perm0) != g.N() {
			t.Fatalf("perm length %d != n %d", len(perm0), g.N())
		}
		rng := rand.New(rand.NewSource(seed))
		h := relabel(g, randPerm(g.N(), rng))
		d1, _ := Canonical(h)
		if d0 != d1 {
			t.Fatalf("digest not invariant under relabeling (n=%d)", g.N())
		}
	})
}

// BenchmarkCanonicalPyramid6 tracks the canonical-key cost on a
// 21-node symmetric instance (the worst common case: symmetry forces
// individualization).
func BenchmarkCanonicalPyramid6(b *testing.B) {
	g := daggen.Pyramid(6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Canonical(g)
	}
}

var _ = fmt.Sprintf // keep fmt for debugging edits

// TestSingleflightWaitHonorsContext: a waiter with an expired context
// gives up instead of inheriting the leader's budget.
func TestSingleflightWaitHonorsContext(t *testing.T) {
	c := New(8)
	gate := make(chan struct{})
	leaderRunning := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, _, _, err := c.Do(context.Background(), "k", func() (Value, error) {
			close(leaderRunning)
			<-gate
			return Value{Optimal: true}, nil
		})
		done <- err
	}()
	<-leaderRunning
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, shared, err := c.Do(ctx, "k", func() (Value, error) {
		t.Error("waiter must not run fn")
		return Value{}, nil
	})
	if !shared || !errors.Is(err, context.Canceled) {
		t.Fatalf("shared=%v err=%v, want shared wait aborted by context", shared, err)
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("leader failed: %v", err)
	}
	// The completed optimal result is cached despite the waiter bailing.
	if _, hit, _, _ := c.Do(context.Background(), "k", func() (Value, error) { return Value{}, nil }); !hit {
		t.Fatal("leader result not cached")
	}
}

// TestCanonicalBoundedCost guards the serving request path against the
// canonical-labeling blowup: path-like graphs inside the canonMaxN
// window refine to discrete without individualization, and graphs
// beyond it take the representation-exact fast path. (Before the size
// cap, chain(4000) took seconds in the recursion.)
func TestCanonicalBoundedCost(t *testing.T) {
	for _, n := range []int{500, 4000, 50000} {
		start := time.Now()
		Canonical(daggen.Chain(n))
		if d := time.Since(start); d > 2*time.Second {
			t.Fatalf("Canonical(chain(%d)) took %s", n, d)
		}
	}
}

// TestPanickingSolveDoesNotPoisonKey: a panic inside fn frees waiters
// with an error, propagates, and leaves the key usable.
func TestPanickingSolveDoesNotPoisonKey(t *testing.T) {
	c := New(8)
	leaderRunning := make(chan struct{})
	release := make(chan struct{})
	waiterErr := make(chan error, 1)
	go func() {
		<-leaderRunning
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_, _, _, err := c.Do(ctx, "k", func() (Value, error) { return Value{}, nil })
		waiterErr <- err
	}()
	go func() {
		// Release the leader's panic only once the waiter has latched
		// onto the flight, so the waiter provably waits on teardown.
		for c.Stats().SharedFlights == 0 {
			time.Sleep(time.Millisecond)
		}
		close(release)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate")
			}
		}()
		c.Do(context.Background(), "k", func() (Value, error) {
			close(leaderRunning)
			<-release
			panic("solver bug")
		})
	}()
	if err := <-waiterErr; err == nil {
		t.Fatal("waiter got nil error from panicked flight")
	}
	// The key recovers: a fresh request runs fn again.
	v, hit, shared, err := c.Do(context.Background(), "k", func() (Value, error) {
		return Value{UpperScaled: 1, LowerScaled: 1, Optimal: true}, nil
	})
	if err != nil || hit || shared || !v.Optimal {
		t.Fatalf("key did not recover: v=%+v hit=%v shared=%v err=%v", v, hit, shared, err)
	}
}
