// Package pebble implements the red-blue pebble game engine: game state,
// the four move kinds, per-model legality rules, and exact cost accounting
// for the four model variants studied by Papp & Wattenhofer (SPAA 2020):
// base, oneshot, nodel and compcost.
//
// A node holds at most one pebble: red (fast memory) or blue (slow memory).
// Moves:
//
//	Load    blue -> red   cost 1   (Step 1, "move to fast memory")
//	Store   red  -> blue  cost 1   (Step 2, "move to slow memory")
//	Compute place red on v if all inputs of v are red; sources always
//	        computable. Cost 0 (ε in compcost). (Step 3)
//	Delete  remove any pebble, cost 0. (Step 4, banned in nodel)
//
// A pebbling is complete when every sink holds a pebble. At most R red
// pebbles may be on the DAG at any time.
package pebble

import "fmt"

// ModelKind enumerates the four red-blue pebbling variants (paper Table 1).
type ModelKind int

const (
	// Base is the baseline model: computes and deletes are free and
	// unrestricted. PSPACE-complete (Demaine & Liu).
	Base ModelKind = iota
	// Oneshot allows Compute at most once per node (red-blue-white
	// pebbling): recomputation is forbidden. NP-complete.
	Oneshot
	// NoDel bans the Delete move entirely; red pebbles can only leave a
	// node by being stored (turned blue). NP-complete.
	NoDel
	// CompCost charges ε = 1/EpsDenom per Compute. NP-complete and, per
	// the paper, the most realistic variant.
	CompCost
)

// String returns the lowercase model name used throughout the paper.
func (k ModelKind) String() string {
	switch k {
	case Base:
		return "base"
	case Oneshot:
		return "oneshot"
	case NoDel:
		return "nodel"
	case CompCost:
		return "compcost"
	default:
		return fmt.Sprintf("ModelKind(%d)", int(k))
	}
}

// AllKinds lists the four model variants in paper order.
func AllKinds() []ModelKind { return []ModelKind{Base, Oneshot, NoDel, CompCost} }

// Model is a fully specified cost model. For CompCost, ε is the rational
// 1/EpsDenom, which keeps every cost an exact integer multiple of ε and
// lets solvers compare costs without floating-point error.
type Model struct {
	Kind ModelKind
	// EpsDenom defines ε = 1/EpsDenom for CompCost. Ignored by the other
	// kinds. The paper's realistic value is ≈100 (cache ≈100x faster than
	// a bus access). Must be ≥ 2 so that 0 < ε < 1.
	EpsDenom int
}

// NewModel returns a Model of the given kind with the default ε = 1/100
// for CompCost.
func NewModel(kind ModelKind) Model {
	m := Model{Kind: kind}
	if kind == CompCost {
		m.EpsDenom = 100
	}
	return m
}

// Validate checks the model parameters.
func (m Model) Validate() error {
	switch m.Kind {
	case Base, Oneshot, NoDel:
		return nil
	case CompCost:
		if m.EpsDenom < 2 {
			return fmt.Errorf("pebble: CompCost needs EpsDenom >= 2 (ε = 1/EpsDenom in (0,1)), got %d", m.EpsDenom)
		}
		return nil
	default:
		return fmt.Errorf("pebble: unknown model kind %d", int(m.Kind))
	}
}

// Epsilon returns ε as a float (0 for non-CompCost models).
func (m Model) Epsilon() float64 {
	if m.Kind == CompCost {
		return 1 / float64(m.EpsDenom)
	}
	return 0
}

// String renders the model, including ε for compcost.
func (m Model) String() string {
	if m.Kind == CompCost {
		return fmt.Sprintf("compcost(ε=1/%d)", m.EpsDenom)
	}
	return m.Kind.String()
}

// Cost is an exact pebbling cost: the number of transfer operations plus
// the number of computations (which are charged only under CompCost).
// Costs are totally ordered per model via Scaled.
type Cost struct {
	Transfers int // Load + Store operations
	Computes  int // Compute operations
}

// Add returns c + d componentwise.
func (c Cost) Add(d Cost) Cost {
	return Cost{c.Transfers + d.Transfers, c.Computes + d.Computes}
}

// Value returns the cost as a float under model m: Transfers + ε·Computes.
func (c Cost) Value(m Model) float64 {
	return float64(c.Transfers) + m.Epsilon()*float64(c.Computes)
}

// Scaled returns the cost as an exact integer under model m: for CompCost
// it is Transfers·EpsDenom + Computes (i.e. the cost in units of ε); for
// all other models it is simply Transfers. Use Scaled for exact
// comparisons in solvers.
func (c Cost) Scaled(m Model) int64 {
	if m.Kind == CompCost {
		return int64(c.Transfers)*int64(m.EpsDenom) + int64(c.Computes)
	}
	return int64(c.Transfers)
}

// Less reports whether c < d under model m.
func (c Cost) Less(d Cost, m Model) bool { return c.Scaled(m) < d.Scaled(m) }

// String renders the cost pair.
func (c Cost) String() string {
	return fmt.Sprintf("{transfers: %d, computes: %d}", c.Transfers, c.Computes)
}

// OpCosts describes the cost of each operation under a model, as printed
// in the paper's Table 1.
type OpCosts struct {
	Model     Model
	Load      string // blue -> red
	Store     string // red -> blue
	Compute   string
	Delete    string
	Described string
}

// Table1Row returns the operation-cost row for model m, mirroring the
// paper's Table 1.
func Table1Row(m Model) OpCosts {
	row := OpCosts{Model: m, Load: "1", Store: "1"}
	switch m.Kind {
	case Base:
		row.Compute, row.Delete = "0", "0"
		row.Described = "Baseline model"
	case Oneshot:
		row.Compute, row.Delete = "0,∞,∞,...", "0"
		row.Described = "Each node only computable once"
	case NoDel:
		row.Compute, row.Delete = "0", "∞"
		row.Described = "Pebbles cannot be deleted"
	case CompCost:
		row.Compute, row.Delete = fmt.Sprintf("ε=1/%d", m.EpsDenom), "0"
		row.Described = "Computation also has a cost of ε"
	}
	return row
}
