package solve

// This file implements the Held-Karp dynamic program over visit orders
// used by the paper's reductions: both the Hamiltonian-Path reduction
// (Theorem 2) and the group-structured constructions reduce optimal
// pebbling to finding a minimum-cost order in which to visit input
// groups, with a pairwise transition cost. That is exactly the
// minimum-cost Hamiltonian path problem on a complete weighted digraph,
// solvable exactly in O(2^k · k^2) for k groups.

import "fmt"

const inf64 = int64(1) << 62

// MinVisitOrder solves the minimum-cost visit-order problem: start[i] is
// the cost of visiting group i first, trans[i][j] the cost of visiting j
// immediately after i. It returns the minimum total cost of visiting all
// k groups exactly once and one order achieving it.
//
// Panics if k > 24 (the bitmask DP would need too much memory) or if the
// matrices are malformed.
func MinVisitOrder(start []int64, trans [][]int64) (int64, []int) {
	k := len(start)
	if k == 0 {
		return 0, nil
	}
	if k > 24 {
		panic(fmt.Sprintf("solve: MinVisitOrder supports at most 24 groups, got %d", k))
	}
	if len(trans) != k {
		panic("solve: trans must be k x k")
	}
	for i := range trans {
		if len(trans[i]) != k {
			panic("solve: trans must be k x k")
		}
	}

	size := 1 << k
	// dp[mask][last] = min cost visiting exactly mask, ending at last.
	dp := make([][]int64, size)
	parent := make([][]int8, size)
	for m := range dp {
		dp[m] = make([]int64, k)
		parent[m] = make([]int8, k)
		for j := range dp[m] {
			dp[m][j] = inf64
			parent[m][j] = -1
		}
	}
	for i := 0; i < k; i++ {
		dp[1<<i][i] = start[i]
	}
	for mask := 1; mask < size; mask++ {
		for last := 0; last < k; last++ {
			c := dp[mask][last]
			if c == inf64 || mask&(1<<last) == 0 {
				continue
			}
			for next := 0; next < k; next++ {
				if mask&(1<<next) != 0 {
					continue
				}
				nm := mask | 1<<next
				nc := c + trans[last][next]
				if nc < dp[nm][next] {
					dp[nm][next] = nc
					parent[nm][next] = int8(last)
				}
			}
		}
	}
	full := size - 1
	bestCost, bestLast := inf64, -1
	for last := 0; last < k; last++ {
		if dp[full][last] < bestCost {
			bestCost, bestLast = dp[full][last], last
		}
	}
	// Reconstruct.
	orderRev := make([]int, 0, k)
	mask, last := full, bestLast
	for last >= 0 {
		orderRev = append(orderRev, last)
		pl := parent[mask][last]
		mask &^= 1 << last
		last = int(pl)
	}
	order := make([]int, k)
	for i := range orderRev {
		order[k-1-i] = orderRev[i]
	}
	return bestCost, order
}
