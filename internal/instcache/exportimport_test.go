package instcache

import (
	"context"
	"encoding/json"
	"testing"

	"rbpebble/internal/pebble"
)

func put(t *testing.T, c *Cache, key string, tier int, v Value) {
	t.Helper()
	_, _, _, _, err := c.Do(context.Background(), key, tier, func(*Value) (Value, error) { return v, nil })
	if err != nil {
		t.Fatal(err)
	}
}

// TestExportImportRoundTrip: a cache export, serialized through its
// JSON wire form, rebuilds equivalent serving behavior on another node.
func TestExportImportRoundTrip(t *testing.T) {
	src := New(8)
	put(t, src, "opt", 5, Value{
		Moves:       []pebble.Move{{Kind: pebble.Compute, Node: 0}},
		UpperScaled: 7, LowerScaled: 7, Optimal: true, Source: "astar",
	})
	put(t, src, "iv", 7, Value{UpperScaled: 20, LowerScaled: 5, Source: "astar"})

	exported := src.Export()
	if len(exported) != 2 {
		t.Fatalf("exported %d entries, want 2", len(exported))
	}
	// The wire format must survive JSON (this is what travels between
	// nodes on handoff/replication).
	raw, err := json.Marshal(exported)
	if err != nil {
		t.Fatal(err)
	}
	var wire []Entry
	if err := json.Unmarshal(raw, &wire); err != nil {
		t.Fatal(err)
	}

	dst := New(8)
	if added := dst.Import(wire); added != 2 {
		t.Fatalf("imported %d, want 2", added)
	}
	if st := dst.Stats(); st.Imported != 2 || st.Entries != 1 || st.IntervalEntries != 1 {
		t.Fatalf("stats after import: %+v", st)
	}

	// The optimum serves as a hit with its moves intact.
	v, hit, _, _, err := dst.Do(context.Background(), "opt", 1, func(*Value) (Value, error) {
		t.Fatal("imported optimum must not re-solve")
		return Value{}, nil
	})
	if err != nil || !hit || !v.Optimal || len(v.Moves) != 1 || v.Moves[0].Node != 0 {
		t.Fatalf("imported optimum serve: v=%+v hit=%v err=%v", v, hit, err)
	}
	// The interval warm-starts a same-tier refinement.
	_, _, _, warmed, err := dst.Do(context.Background(), "iv", 7, func(warm *Value) (Value, error) {
		if warm == nil || warm.UpperScaled != 20 || warm.LowerScaled != 5 {
			t.Fatalf("warm = %+v, want imported [5, 20]", warm)
		}
		return Value{UpperScaled: 18, LowerScaled: 6}, nil
	})
	if err != nil || !warmed {
		t.Fatalf("imported interval should warm-start: warmed=%v err=%v", warmed, err)
	}
}

func TestImportSkipsAlreadyProven(t *testing.T) {
	c := New(8)
	put(t, c, "k", 5, Value{UpperScaled: 7, LowerScaled: 7, Optimal: true})
	added := c.Import([]Entry{
		{Key: "k", Tier: 7, Value: Value{UpperScaled: 30, LowerScaled: 1, Tier: 7}},
		{Key: "k", Value: Value{UpperScaled: 7, LowerScaled: 7, Optimal: true}},
	})
	if added != 0 {
		t.Fatalf("imported %d entries for a proven key, want 0", added)
	}
	if st := c.Stats(); st.IntervalEntries != 0 || st.Imported != 0 {
		t.Fatalf("proven key polluted: %+v", st)
	}
}

func TestImportMergesAndPromotes(t *testing.T) {
	c := New(8)
	put(t, c, "k", 7, Value{UpperScaled: 20, LowerScaled: 5})

	// A tighter remote interval merges in (the interval only tightens).
	if added := c.Import([]Entry{{Key: "k", Tier: 7, Value: Value{UpperScaled: 15, LowerScaled: 8}}}); added != 1 {
		t.Fatalf("tighter import rejected: added=%d", added)
	}
	v, hit, _, _, _ := c.Do(context.Background(), "k", 3, func(*Value) (Value, error) {
		t.Fatal("lower tier must be served the stored interval")
		return Value{}, nil
	})
	if !hit || v.LowerScaled != 8 || v.UpperScaled != 15 {
		t.Fatalf("merged interval = [%d, %d], want [8, 15]", v.LowerScaled, v.UpperScaled)
	}

	// A remote interval whose merge closes the bounds promotes to the
	// optimal segment.
	if added := c.Import([]Entry{{Key: "k", Tier: 9, Value: Value{UpperScaled: 8, LowerScaled: 2}}}); added != 1 {
		t.Fatal("closing import rejected")
	}
	st := c.Stats()
	if st.Entries != 1 || st.IntervalEntries != 0 {
		t.Fatalf("closing import should promote and drop intervals: %+v", st)
	}
	v, hit, _, _, _ = c.Do(context.Background(), "k", 1, func(*Value) (Value, error) { return Value{}, nil })
	if !hit || !v.Optimal || v.UpperScaled != 8 {
		t.Fatalf("promoted value = %+v hit=%v", v, hit)
	}
}

func TestImportSkipsStaleInformation(t *testing.T) {
	c := New(8)
	put(t, c, "k", 7, Value{UpperScaled: 15, LowerScaled: 8})

	// Same tier, looser bounds: carries nothing new.
	if added := c.Import([]Entry{{Key: "k", Tier: 7, Value: Value{UpperScaled: 20, LowerScaled: 5}}}); added != 0 {
		t.Fatalf("stale import accepted: added=%d", added)
	}
	// An interval entry with no tier anywhere is malformed: dropped.
	if added := c.Import([]Entry{{Key: "k2", Value: Value{UpperScaled: 9, LowerScaled: 3}}}); added != 0 {
		t.Fatalf("tierless interval accepted: added=%d", added)
	}
	if st := c.Stats(); st.Imported != 0 {
		t.Fatalf("Imported counter moved on rejected entries: %+v", st)
	}
}

func TestImportOptimalDropsObsoleteIntervals(t *testing.T) {
	c := New(8)
	put(t, c, "k", 7, Value{UpperScaled: 20, LowerScaled: 5})
	if added := c.Import([]Entry{{Key: "k", Value: Value{UpperScaled: 9, LowerScaled: 9, Optimal: true}}}); added != 1 {
		t.Fatal("optimal import rejected")
	}
	st := c.Stats()
	if st.Entries != 1 || st.IntervalEntries != 0 {
		t.Fatalf("optimal import should drop the key's intervals: %+v", st)
	}
}
