package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRotatingWriterRotatesAndBounds(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "search.jsonl")
	w, err := NewRotatingWriter(path, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	line := []byte(strings.Repeat("x", 29) + "\n") // 30 bytes: 2 lines per file
	for i := 0; i < 10; i++ {
		if _, err := w.Write(line); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	// 10 lines, 2 per file: current + .1 + .2 survive, older are gone.
	for _, name := range []string{"search.jsonl", "search.jsonl.1", "search.jsonl.2"} {
		st, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.Size() == 0 || st.Size() > 64 {
			t.Fatalf("%s size %d outside (0, 64]", name, st.Size())
		}
	}
	if _, err := os.Stat(path + ".3"); !os.IsNotExist(err) {
		t.Fatalf("generation .3 should have been dropped (keep=2), stat err=%v", err)
	}
	// Every surviving file holds whole lines.
	for _, name := range []string{"search.jsonl", "search.jsonl.1", "search.jsonl.2"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if len(b)%30 != 0 {
			t.Fatalf("%s holds a split line: %d bytes", name, len(b))
		}
	}
}

func TestRotatingWriterOversizedLine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.jsonl")
	w, err := NewRotatingWriter(path, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	big := []byte(strings.Repeat("y", 40) + "\n")
	if _, err := w.Write([]byte("small\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(big); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(big) {
		t.Fatalf("oversized line not written whole to a fresh file: %q", b)
	}
}

func TestRotatingWriterNoRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plain.jsonl")
	w, err := NewRotatingWriter(path, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 100; i++ {
		if _, err := w.Write([]byte("line\n")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(path + ".1"); !os.IsNotExist(err) {
		t.Fatal("maxBytes=0 must never rotate")
	}
	st, _ := os.Stat(path)
	if st.Size() != 500 {
		t.Fatalf("size %d, want 500", st.Size())
	}
}
