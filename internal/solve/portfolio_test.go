package solve

import (
	"testing"

	"rbpebble/internal/daggen"
	"rbpebble/internal/gadgets"
	"rbpebble/internal/pebble"
)

func TestPortfolioBeatsEveryMember(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := daggen.RandomLayered(4, 5, 3, seed)
		p := prob(g, pebble.Oneshot, pebble.MinFeasibleR(g))
		sol, name, err := Portfolio(p, PortfolioOptions{Samples: 8, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if name == "" || !sol.Result.Complete {
			t.Fatal("portfolio returned unnamed or incomplete solution")
		}
		tb, err := TopoBelady(p)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Result.Cost.Transfers > tb.Result.Cost.Transfers {
			t.Fatalf("seed %d: portfolio %d worse than member topo+belady %d",
				seed, sol.Result.Cost.Transfers, tb.Result.Cost.Transfers)
		}
	}
}

func TestPortfolioExactBudget(t *testing.T) {
	g := daggen.Pyramid(2)
	p := prob(g, pebble.Oneshot, 3)
	sol, name, err := Portfolio(p, PortfolioOptions{ExactBudget: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if name != "exact" {
		t.Fatalf("winner = %q, want exact", name)
	}
	opt, err := Exact(p, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Result.Cost != opt.Result.Cost {
		t.Fatal("exact-budget portfolio not optimal")
	}
	// A tiny budget falls back to heuristics without failing.
	_, name2, err := Portfolio(p, PortfolioOptions{ExactBudget: 2})
	if err != nil {
		t.Fatal(err)
	}
	if name2 == "exact" {
		t.Fatal("exceeded budget still claimed exact")
	}
}

func TestPortfolioOnAdversarialGrid(t *testing.T) {
	// On the Theorem 4 grid, the greedy members are misguided but
	// topo+belady or sampling may do better; the portfolio must return
	// the min of its members, and never exceed the universal bound.
	gg := gadgets.NewGreedyGrid(3, 8)
	p := Problem{G: gg.G, Model: pebble.NewModel(pebble.Oneshot), R: gg.R()}
	sol, _, err := Portfolio(p, PortfolioOptions{Samples: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := Greedy(p, MostRedInputs)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Result.Cost.Transfers > greedy.Result.Cost.Transfers {
		t.Fatal("portfolio worse than its greedy member")
	}
	ub := pebble.CostUpperBound(gg.G, p.Model)
	if sol.Result.Cost.Transfers > ub.Transfers {
		t.Fatal("portfolio above universal bound")
	}
}
