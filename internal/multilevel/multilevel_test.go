package multilevel

import (
	"testing"
	"testing/quick"

	"rbpebble/internal/dag"
	"rbpebble/internal/daggen"
	"rbpebble/internal/pebble"
	"rbpebble/internal/sched"
)

func twoLevel(r int) Hierarchy {
	h, err := NewHierarchy([]int{r}, []int{1})
	if err != nil {
		panic(err)
	}
	return h
}

func TestNewHierarchyValidation(t *testing.T) {
	cases := []struct {
		limits, costs []int
	}{
		{nil, nil},
		{[]int{4}, []int{1, 2}},
		{[]int{0}, []int{1}},
		{[]int{4}, []int{-1}},
	}
	for i, c := range cases {
		if _, err := NewHierarchy(c.limits, c.costs); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	h, err := NewHierarchy([]int{8, 64}, []int{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	if h.Levels() != 3 {
		t.Fatalf("levels = %d", h.Levels())
	}
	if h.FetchCost(0) != 0 || h.FetchCost(1) != 1 || h.FetchCost(2) != 11 {
		t.Fatal("FetchCost wrong")
	}
}

func TestStateLegality(t *testing.T) {
	g := dag.New(3)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	st, err := NewState(g, twoLevel(3), true)
	if err != nil {
		t.Fatal(err)
	}
	// Compute requires inputs at level 0.
	if err := st.Apply(Move{Kind: Compute, Node: 2}); err == nil {
		t.Fatal("compute without inputs accepted")
	}
	st.MustApply(Move{Kind: Compute, Node: 0})
	st.MustApply(Move{Kind: Compute, Node: 1})
	st.MustApply(Move{Kind: Compute, Node: 2})
	if st.CountAt(0) != 3 {
		t.Fatalf("count = %d", st.CountAt(0))
	}
	// Level 0 is full now.
	if err := st.Apply(Move{Kind: Promote, Node: 0, Level: 0}); err == nil {
		t.Fatal("promote with node at level 0 accepted")
	}
	st.MustApply(Move{Kind: Demote, Node: 0, Level: 0})
	if st.Level(0) != 1 || st.Cost() != 1 {
		t.Fatalf("demote: level=%d cost=%d", st.Level(0), st.Cost())
	}
	st.MustApply(Move{Kind: Promote, Node: 0, Level: 0})
	if st.Level(0) != 0 || st.Cost() != 2 {
		t.Fatal("promote failed")
	}
	// Oneshot: recompute banned after delete.
	st.MustApply(Move{Kind: Delete, Node: 0})
	if err := st.Apply(Move{Kind: Compute, Node: 0}); err == nil {
		t.Fatal("oneshot recompute accepted")
	}
}

func TestInfeasibleLimit(t *testing.T) {
	g := daggen.Pyramid(2)
	if _, err := NewState(g, twoLevel(2), true); err == nil {
		t.Fatal("limit below Δ+1 accepted")
	}
}

func TestExecuteMatchesTwoLevelEngine(t *testing.T) {
	// On a two-level hierarchy with unit costs, the multilevel executor
	// must reproduce the classic scheduler's Belady cost exactly.
	for seed := int64(0); seed < 8; seed++ {
		g := daggen.RandomLayered(4, 4, 2, seed)
		order, err := g.TopoOrder()
		if err != nil {
			t.Fatal(err)
		}
		r := pebble.MinFeasibleR(g)
		_, classic, err := sched.Execute(g, pebble.NewModel(pebble.Oneshot), r, pebble.Convention{}, order, sched.Options{Policy: sched.Belady})
		if err != nil {
			t.Fatal(err)
		}
		_, multi, err := Execute(g, twoLevel(r), order, true)
		if err != nil {
			t.Fatal(err)
		}
		if multi.Cost != classic.Cost.Transfers {
			t.Fatalf("seed %d: multilevel %d != classic %d", seed, multi.Cost, classic.Cost.Transfers)
		}
	}
}

func TestThreeLevelCheaperThanSkippingMiddle(t *testing.T) {
	// A hierarchy with a mid-size middle level and cheap L0<->L1 link
	// must cost no more than the two-level system whose only fast level
	// is the small L0 (every L1 hit saves an expensive fetch).
	g := daggen.FFT(4)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	r := pebble.MinFeasibleR(g)
	_, two, err := Execute(g, Hierarchy{Limits: []int{r}, Costs: []int{10}}, order, true)
	if err != nil {
		t.Fatal(err)
	}
	_, three, err := Execute(g, Hierarchy{Limits: []int{r, 4 * r}, Costs: []int{1, 9}}, order, true)
	if err != nil {
		t.Fatal(err)
	}
	if three.Cost > two.Cost {
		t.Fatalf("three-level %d > two-level %d", three.Cost, two.Cost)
	}
	if len(three.TransfersPerLink) != 2 {
		t.Fatal("per-link accounting missing")
	}
	if three.TransfersPerLink[0] == 0 {
		t.Fatal("no traffic on the fast link")
	}
}

func TestLargerCacheNeverHurts(t *testing.T) {
	g := daggen.Grid(5, 5)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	prev := 1 << 30
	for _, r := range []int{3, 4, 6, 10, 25} {
		_, res, err := Execute(g, twoLevel(r), order, true)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost > prev {
			t.Fatalf("cost increased with larger cache: %d -> %d at r=%d", prev, res.Cost, r)
		}
		prev = res.Cost
	}
	if prev != 0 {
		t.Fatal("whole working set in cache should be free")
	}
}

func TestExecuteOrderValidation(t *testing.T) {
	g := daggen.Chain(3)
	for _, order := range [][]dag.NodeID{
		{2, 1, 0},
		{0, 1},
		{0, 1, 1},
		{0, 1, 9},
	} {
		if _, _, err := Execute(g, twoLevel(2), order, true); err == nil {
			t.Fatalf("order %v accepted", order)
		}
	}
}

func TestReplayRejectsCorruptTraces(t *testing.T) {
	g := daggen.Chain(2)
	h := twoLevel(2)
	// Promote without a pebble.
	if _, err := Replay(g, h, []Move{{Kind: Promote, Node: 0, Level: 0}}, true); err == nil {
		t.Fatal("bad trace accepted")
	}
	// Incomplete pebbling.
	if _, err := Replay(g, h, []Move{{Kind: Compute, Node: 0}}, true); err == nil {
		t.Fatal("incomplete trace accepted")
	}
}

// Property: on random layered DAGs and random 3-level hierarchies, the
// executor always produces a verified complete pebbling, and deeper
// links carry no more traffic than shallower ones.
func TestQuickExecuteLegal(t *testing.T) {
	f := func(seed int64, a uint8) bool {
		g := daggen.RandomLayered(3, 4, 2, seed)
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		r := pebble.MinFeasibleR(g) + int(a%3)
		h := Hierarchy{Limits: []int{r, r + 4}, Costs: []int{1, 5}}
		_, res, err := Execute(g, h, order, true)
		if err != nil || !res.Complete {
			return false
		}
		// Traffic on the deep link cannot exceed the fast link's: every
		// deep fetch passes through the fast link too.
		return res.TransfersPerLink[1] <= res.TransfersPerLink[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMoveStrings(t *testing.T) {
	if (Move{Kind: Promote, Node: 3, Level: 1}).String() == "" {
		t.Fatal("empty move string")
	}
	if (Move{Kind: Compute, Node: 3}).String() != "compute(3)" {
		t.Fatal("compute string wrong")
	}
	if MoveKind(9).String() == "" {
		t.Fatal("unknown kind should render")
	}
}

func BenchmarkExecuteThreeLevel(b *testing.B) {
	g := daggen.FFT(5)
	order, _ := g.TopoOrder()
	h := Hierarchy{Limits: []int{6, 24}, Costs: []int{1, 10}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Execute(g, h, order, true); err != nil {
			b.Fatal(err)
		}
	}
}
