package dag

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustTopo(t *testing.T, g *DAG) []NodeID {
	t.Helper()
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatalf("TopoOrder: %v", err)
	}
	return order
}

func TestEmptyGraph(t *testing.T) {
	g := New(0)
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph has n=%d m=%d", g.N(), g.M())
	}
	if len(mustTopo(t, g)) != 0 {
		t.Fatal("empty graph topo order should be empty")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var g DAG
	v := g.AddNode()
	w := g.AddNode()
	g.AddEdge(v, w)
	if g.N() != 2 || g.M() != 1 {
		t.Fatalf("zero-value DAG: n=%d m=%d", g.N(), g.M())
	}
}

func TestAddEdgeDuplicate(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	if g.M() != 1 {
		t.Fatalf("duplicate edge counted: m=%d", g.M())
	}
	if len(g.Preds(1)) != 1 || len(g.Succs(0)) != 1 {
		t.Fatal("duplicate edge stored twice")
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop did not panic")
		}
	}()
	g := New(1)
	g.AddEdge(0, 0)
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range edge did not panic")
		}
	}()
	g := New(2)
	g.AddEdge(0, 5)
}

func TestHasEdge(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	if !g.HasEdge(0, 1) {
		t.Fatal("HasEdge(0,1) = false")
	}
	if g.HasEdge(1, 0) {
		t.Fatal("HasEdge(1,0) = true")
	}
	if g.HasEdge(0, 99) || g.HasEdge(-1, 0) {
		t.Fatal("HasEdge out of range returned true")
	}
}

func TestSourcesSinks(t *testing.T) {
	// 0 -> 1 -> 2,  3 isolated
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	srcs := g.Sources()
	sinks := g.Sinks()
	if len(srcs) != 2 || srcs[0] != 0 || srcs[1] != 3 {
		t.Fatalf("sources = %v", srcs)
	}
	if len(sinks) != 2 || sinks[0] != 2 || sinks[1] != 3 {
		t.Fatalf("sinks = %v", sinks)
	}
	if !g.IsSource(0) || g.IsSource(1) || !g.IsSink(2) || g.IsSink(0) {
		t.Fatal("IsSource/IsSink wrong")
	}
}

func TestTopoOrderChain(t *testing.T) {
	g := New(5)
	for i := 0; i < 4; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1))
	}
	order := mustTopo(t, g)
	for i, v := range order {
		if int(v) != i {
			t.Fatalf("chain topo order = %v", order)
		}
	}
}

func TestTopoOrderDeterministic(t *testing.T) {
	g := New(6)
	g.AddEdge(5, 2)
	g.AddEdge(3, 2)
	g.AddEdge(2, 0)
	a := mustTopo(t, g)
	b := mustTopo(t, g)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic topo: %v vs %v", a, b)
		}
	}
	// Smallest-first: 1 and 4 are isolated sources, 3 < 5.
	if a[0] != 1 {
		t.Fatalf("expected node 1 first, got %v", a)
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(40)
		g := New(n)
		// Random edges respecting ID order => guaranteed acyclic.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.15 {
					g.AddEdge(NodeID(i), NodeID(j))
				}
			}
		}
		order := mustTopo(t, g)
		pos := make([]int, n)
		for i, v := range order {
			pos[v] = i
		}
		for u := 0; u < n; u++ {
			for _, v := range g.Succs(NodeID(u)) {
				if pos[u] >= pos[v] {
					t.Fatalf("edge %d->%d violated in topo order", u, v)
				}
			}
		}
	}
}

func TestCycleDetected(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	if _, err := g.TopoOrder(); err != ErrCycle {
		t.Fatalf("expected ErrCycle, got %v", err)
	}
	if err := g.Validate(); err != ErrCycle {
		t.Fatalf("Validate expected ErrCycle, got %v", err)
	}
}

func TestMaxInDegree(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 4)
	g.AddEdge(1, 4)
	g.AddEdge(2, 4)
	g.AddEdge(3, 4)
	if d := g.MaxInDegree(); d != 4 {
		t.Fatalf("Δ = %d, want 4", d)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.SetLabel(0, "a")
	c := g.Clone()
	c.AddEdge(1, 2)
	c.SetLabel(0, "b")
	if g.M() != 1 || c.M() != 2 {
		t.Fatalf("clone not independent: g.m=%d c.m=%d", g.M(), c.M())
	}
	if g.Label(0) != "a" || c.Label(0) != "b" {
		t.Fatal("labels shared between clone and original")
	}
}

func TestReachable(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	r := g.Reachable(0)
	want := []bool{true, true, true, false, false}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Reachable(0) = %v", r)
		}
	}
	r2 := g.Reachable(0, 3)
	if !r2[3] || !r2[4] {
		t.Fatalf("Reachable(0,3) = %v", r2)
	}
}

func TestAncestors(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	a := g.Ancestors(3)
	want := []bool{true, true, true, true, false}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("Ancestors(3) = %v", a)
		}
	}
}

func TestLongestPath(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(0, 4)
	lp, err := g.LongestPathLen()
	if err != nil || lp != 3 {
		t.Fatalf("LongestPathLen = %d, %v; want 3", lp, err)
	}
}

func TestComputeStats(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	st := g.ComputeStats()
	if st.Nodes != 4 || st.Edges != 3 || st.Sources != 2 || st.Sinks != 1 ||
		st.MaxInDeg != 2 || st.MaxOutDeg != 1 || st.LongestPath != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTextRoundTrip(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.SetLabel(3, "sink node")
	var buf bytes.Buffer
	if err := g.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	g2, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip: n=%d m=%d", g2.N(), g2.M())
	}
	if !g2.HasEdge(0, 2) || !g2.HasEdge(1, 2) || !g2.HasEdge(2, 3) {
		t.Fatal("round trip lost edges")
	}
	if g2.Label(3) != "sink node" {
		t.Fatalf("round trip label = %q", g2.Label(3))
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"",                                      // missing nodes
		"edge 0 1",                              // edge before nodes
		"nodes 2\nedge 0 5",                     // out of range
		"nodes 2\nedge 0 0",                     // self loop
		"nodes -1",                              // negative
		"nodes 2\nfrobnicate 1",                 // unknown directive
		"nodes 2\nnodes 2",                      // duplicate
		"nodes 2\nedge 0",                       // arity
		"nodes 3\nedge 0 1\nedge 1 2\nedge 2 0", // cycle, caught by Validate
		"nodes 2\nlabel 9 x",                    // label out of range
	}
	for _, c := range cases {
		if _, err := ReadText(strings.NewReader(c)); err == nil {
			t.Errorf("ReadText(%q) succeeded, want error", c)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.SetLabel(0, "src")
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var g2 DAG
	if err := json.Unmarshal(data, &g2); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if g2.N() != 3 || g2.M() != 2 || !g2.HasEdge(0, 1) || g2.Label(0) != "src" {
		t.Fatalf("JSON round trip mismatch: %s", data)
	}
}

func TestJSONRejectsCycle(t *testing.T) {
	var g DAG
	err := json.Unmarshal([]byte(`{"nodes":2,"edges":[[0,1],[1,0]]}`), &g)
	if err == nil {
		t.Fatal("cycle accepted by UnmarshalJSON")
	}
}

func TestWriteDOT(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	g.SetLabel(1, "out")
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, "test"); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	s := buf.String()
	for _, want := range []string{"digraph", "n0 -> n1", "1:out"} {
		if !strings.Contains(s, want) {
			t.Errorf("DOT output missing %q:\n%s", want, s)
		}
	}
}

// Property: for random acyclic edge sets, text round-trip preserves the
// exact edge relation.
func TestQuickTextRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%30) + 1
		rng := rand.New(rand.NewSource(seed))
		g := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.2 {
					g.AddEdge(NodeID(i), NodeID(j))
				}
			}
		}
		var buf bytes.Buffer
		if err := g.WriteText(&buf); err != nil {
			return false
		}
		g2, err := ReadText(&buf)
		if err != nil || g2.N() != g.N() || g2.M() != g.M() {
			return false
		}
		for u := 0; u < n; u++ {
			for j := 0; j < n; j++ {
				if g.HasEdge(NodeID(u), NodeID(j)) != g2.HasEdge(NodeID(u), NodeID(j)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: topological position of u precedes v for every edge (u,v), on
// arbitrary random DAGs built by the triangular construction.
func TestQuickTopoProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 2
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(n) // hide the natural order
		g := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.1 {
					g.AddEdge(NodeID(perm[i]), NodeID(perm[j]))
				}
			}
		}
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		pos := make([]int, n)
		for i, v := range order {
			pos[v] = i
		}
		for u := 0; u < n; u++ {
			for _, v := range g.Succs(NodeID(u)) {
				if pos[u] >= pos[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTopoOrder(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	n := 2000
	g := New(n)
	for i := 0; i < n; i++ {
		for k := 0; k < 4; k++ {
			j := i + 1 + rng.Intn(n)
			if j < n {
				g.AddEdge(NodeID(i), NodeID(j))
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.TopoOrder(); err != nil {
			b.Fatal(err)
		}
	}
}
