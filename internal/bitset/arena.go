package bitset

// Arena carves many same-capacity sets out of shared backing slabs:
// one allocation per chunk of headers and one per chunk of words,
// instead of two per set. Solver precomputes build hundreds of small
// masks (reachability closures, capacity-certificate use masks) that
// live for the whole search; slab-backing them removes both the
// allocation churn at build time and the per-object GC scan pressure
// afterwards. Sets handed out by an Arena behave exactly like New'd
// sets and stay valid for the Arena's lifetime (slabs are never
// reclaimed while any set references them).
type Arena struct {
	n   int // capacity of every set
	wpn int // words per set

	sets  []Set
	words []uint64
}

// arenaChunk is the number of sets carved per slab allocation.
const arenaChunk = 64

// NewArena returns an arena producing sets of capacity n.
func NewArena(n int) *Arena {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Arena{n: n, wpn: (n + 63) / 64}
}

// New returns an empty set of the arena's capacity.
func (a *Arena) New() *Set {
	if len(a.sets) == 0 {
		a.sets = make([]Set, arenaChunk)
	}
	if len(a.words) < a.wpn {
		a.words = make([]uint64, a.wpn*arenaChunk)
	}
	s := &a.sets[0]
	a.sets = a.sets[1:]
	*s = Set{words: a.words[:a.wpn:a.wpn], n: a.n}
	a.words = a.words[a.wpn:]
	return s
}
