package service

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rbpebble/internal/anytime"
	"rbpebble/internal/daggen"
	"rbpebble/internal/solve"
)

// TestRefinerPreemptedByForegroundBurst is the fault-injection drill
// for the refiner's preemption contract: a background refinement is
// running when foreground traffic arrives; the foreground request must
// cancel it immediately and complete normally, the interrupted
// refinement must still land its certified partial tightening in the
// cache, and the preemption must be visible in the metrics.
func TestRefinerPreemptedByForegroundBurst(t *testing.T) {
	s := New(Config{RefinerInterval: 5 * time.Millisecond})
	defer s.Close()

	seedG := daggen.Pyramid(3)
	burstG := daggen.Pyramid(4)
	var seeded atomic.Bool
	refStarted := make(chan struct{}, 8)
	s.solveFn = func(ctx context.Context, p solve.Problem, opts anytime.Options) (anytime.Result, error) {
		if p.G.N() == burstG.N() {
			// The foreground burst: instant, optimal.
			return stubResult(p, 50, 50, true, "stub-burst")
		}
		if seeded.CompareAndSwap(false, true) {
			// The seeding foreground solve: a wide certified interval.
			return stubResult(p, 10, 100, false, "stub-wide")
		}
		// A background refinement: hold the flight until preempted,
		// then hand back a tighter partial interval — exactly what the
		// real orchestrator does when its context is canceled mid-solve.
		select {
		case refStarted <- struct{}{}:
		default:
		}
		<-ctx.Done()
		return stubResult(p, 20, 100, false, "stub-refine")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Seed: one foreground request caches a wide interval and registers
	// the key for refinement.
	seedBody := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3,"deadline_ms":100}`, dagJSON(t, seedG))
	if code, sr, raw := postSolve(t, ts, seedBody); code != http.StatusOK || sr.Lower != 10 || sr.Upper != 100 {
		t.Fatalf("seed solve: %d %s", code, raw)
	}

	// The idle refiner picks the key up on its own — no new request.
	select {
	case <-refStarted:
	case <-time.After(5 * time.Second):
		t.Fatal("refiner never started a background refinement")
	}

	// Foreground burst: must preempt the refinement and finish fast.
	burstBody := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3,"deadline_ms":100}`, dagJSON(t, burstG))
	start := time.Now()
	code, sr, raw := postSolve(t, ts, burstBody)
	if code != http.StatusOK || !sr.Optimal {
		t.Fatalf("burst solve: %d %s", code, raw)
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Fatalf("burst solve took %s: the refiner blocked foreground work", wall)
	}

	// The preemption is counted, and the interrupted refinement still
	// tightened the stored interval (gap 90 -> 80).
	for i := 0; metric(t, ts, "rbserve_refiner_preempted_total") < 1 ||
		metric(t, ts, "rbserve_refiner_tightened_total") < 1; i++ {
		if i > 5000 {
			t.Fatalf("preempted=%d tightened=%d after waiting",
				metric(t, ts, "rbserve_refiner_preempted_total"),
				metric(t, ts, "rbserve_refiner_tightened_total"))
		}
		time.Sleep(time.Millisecond)
	}

	// The partial tightening serves directly from cache.
	if code, sr, raw := postSolve(t, ts, seedBody); code != http.StatusOK || !sr.Cached || sr.Lower != 20 || sr.Upper != 100 {
		t.Fatalf("post-refinement read: %d cached=%v [%v, %v] %s", code, sr.Cached, sr.Lower, sr.Upper, raw)
	}
}

// TestRefinerAdmissionGateUnderLoad checks the other half of the
// contract: while foreground solves are active the refiner does not
// even start background work.
func TestRefinerAdmissionGateUnderLoad(t *testing.T) {
	s := New(Config{RefinerInterval: time.Millisecond, HeavyLaneWorkers: 2})
	defer s.Close()

	seedG := daggen.Pyramid(3)
	slowG := daggen.Pyramid(5)
	lateG := daggen.Pyramid(6)
	// The first solve of each instance is its foreground request; every
	// later one (the key only re-solves through the cache) is a
	// background refinement.
	var firstSeen sync.Map
	var refineRuns atomic.Int64
	slowStarted := make(chan struct{}, 1)
	slowGate := make(chan struct{})
	s.solveFn = func(ctx context.Context, p solve.Problem, opts anytime.Options) (anytime.Result, error) {
		if p.G.N() == slowG.N() {
			select {
			case slowStarted <- struct{}{}:
			default:
			}
			<-slowGate
			return stubResult(p, 7, 7, true, "stub-slow")
		}
		if _, refinement := firstSeen.LoadOrStore(p.G.N(), true); !refinement {
			return stubResult(p, 10, 100, false, "stub-wide")
		}
		refineRuns.Add(1)
		return stubResult(p, 15, 100, false, "stub-refine")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Cache a refinable interval, then pin a foreground solve.
	seedBody := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3,"deadline_ms":100}`, dagJSON(t, seedG))
	if code, _, raw := postSolve(t, ts, seedBody); code != http.StatusOK {
		t.Fatalf("seed solve: %d %s", code, raw)
	}
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(slowGate) }) }
	defer openGate() // a failing assert must not deadlock teardown
	done := make(chan struct{})
	go func() {
		defer close(done)
		postSolve(t, ts, fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3,"deadline_ms":100}`, dagJSON(t, slowG)))
	}()
	<-slowStarted

	// Refinements started in the idle window before the slow solve
	// arrived may still be in flight; let them land, then snapshot.
	time.Sleep(5 * time.Millisecond)
	base := refineRuns.Load()

	// Many refiner ticks pass while the foreground solve runs; the
	// admission gate must hold every one of them back.
	time.Sleep(50 * time.Millisecond)
	if n := refineRuns.Load(); n != base {
		t.Fatalf("refiner ran %d times while a foreground solve was active", n-base)
	}
	openGate()
	<-done

	// Once the node is idle again, refinement resumes: a freshly cached
	// wide interval (whose budget tiers are all still unexplored) is
	// picked up without any further request.
	preLate := refineRuns.Load()
	lateBody := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3,"deadline_ms":100}`, dagJSON(t, lateG))
	if code, _, raw := postSolve(t, ts, lateBody); code != http.StatusOK {
		t.Fatalf("late solve: %d %s", code, raw)
	}
	for i := 0; refineRuns.Load() <= preLate; i++ {
		if i > 5000 {
			t.Fatal("refiner never resumed after the foreground solve finished")
		}
		time.Sleep(time.Millisecond)
	}
}

// stubResult fabricates an anytime result with a genuinely valid
// (replay-verifiable) trace from the cheap heuristic, overriding only
// the certified bounds — the refiner logic under test cares about
// intervals, not moves.
func stubResult(p solve.Problem, lower, upper int64, optimal bool, source string) (anytime.Result, error) {
	sol, err := solve.TopoBelady(p)
	if err != nil {
		return anytime.Result{}, err
	}
	return anytime.Result{
		Solution:    sol,
		LowerScaled: lower,
		UpperScaled: upper,
		Optimal:     optimal,
		Source:      source,
	}, nil
}
