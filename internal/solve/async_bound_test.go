package solve

import (
	"errors"
	"testing"

	"rbpebble/internal/daggen"
	"rbpebble/internal/pebble"
)

// The async warm-start suite: the bound/certificate chain through the
// async HDA* engine. PruneBound and InitialLowerBound must behave
// exactly as in the serial engine (identical optima, the same
// ErrBoundExhausted certificate), and the streamed certified f-min must
// be monotone and never exceed the true optimum. Run with -race in CI:
// the floors/watermark protocol is lock-free and these tests are its
// adversarial workload.

// TestAsyncPruneBoundKeepsOptimum: the warm-start refinement setting
// (PruneBound = incumbent+1) must still find and prove the exact
// optimum through the async engine at every worker count.
func TestAsyncPruneBoundKeepsOptimum(t *testing.T) {
	g := daggen.Pyramid(4)
	p := prob(g, pebble.Oneshot, 3)
	ref, err := Exact(p, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opt := ref.Result.Cost.Scaled(p.Model)

	for _, workers := range []int{2, 4, 8} {
		sol, err := Exact(p, ExactOptions{Parallel: workers, PruneBound: opt + 1})
		if err != nil {
			t.Fatalf("workers=%d prune bound %d: %v", workers, opt+1, err)
		}
		if got := sol.Result.Cost.Scaled(p.Model); got != opt {
			t.Fatalf("workers=%d: pruned optimum %d != %d", workers, got, opt)
		}
	}
}

// TestAsyncPruneBoundCollapsesWork: a floor seeded at the optimum
// (PruneBound = opt) forbids the engine from ever expanding the f = opt
// plateau — where the bulk of the search lives — so the exhaustion
// proof must come far cheaper than the full solve.
func TestAsyncPruneBoundCollapsesWork(t *testing.T) {
	g := daggen.Pyramid(4)
	p := prob(g, pebble.Oneshot, 3)
	var full ExactStats
	ref, err := Exact(p, ExactOptions{Parallel: 4, Stats: &full})
	if err != nil {
		t.Fatal(err)
	}
	opt := ref.Result.Cost.Scaled(p.Model)

	var pruned ExactStats
	_, err = Exact(p, ExactOptions{Parallel: 4, PruneBound: opt, Stats: &pruned})
	if !errors.Is(err, ErrBoundExhausted) {
		t.Fatalf("err = %v, want ErrBoundExhausted", err)
	}
	if pruned.Expanded >= full.Expanded {
		t.Fatalf("bound at the optimum did not collapse work: %d >= %d expansions",
			pruned.Expanded, full.Expanded)
	}
}

// TestAsyncPruneBoundExhaustionCertifies: with PruneBound at exactly
// the optimum the async engine must exhaust at every worker count and
// return ErrBoundExhausted with LowerBound == PruneBound — the parallel
// optimality certificate a warm-started refinement relies on.
func TestAsyncPruneBoundExhaustionCertifies(t *testing.T) {
	g := daggen.Pyramid(4)
	p := prob(g, pebble.Oneshot, 3)
	ref, err := Exact(p, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opt := ref.Result.Cost.Scaled(p.Model)

	for _, workers := range []int{2, 4, 8} {
		var s ExactStats
		_, err = Exact(p, ExactOptions{Parallel: workers, PruneBound: opt, Stats: &s})
		if !errors.Is(err, ErrBoundExhausted) {
			t.Fatalf("workers=%d: err = %v, want ErrBoundExhausted", workers, err)
		}
		if s.LowerBound != opt {
			t.Fatalf("workers=%d: LowerBound = %d, want %d", workers, s.LowerBound, opt)
		}
	}
}

// TestAsyncPruneBoundMatchesSerialEverywhere: across models,
// conventions and worker counts, the async engine under the warm-start
// bound proves the serial optimum (and errs exactly when the serial
// engine with the same bound errs).
func TestAsyncPruneBoundMatchesSerialEverywhere(t *testing.T) {
	conventions := []pebble.Convention{
		{},
		{SourcesStartBlue: true, SinksMustBeBlue: true},
	}
	for seed := int64(0); seed < 2; seed++ {
		g := daggen.RandomLayered(3, 3, 2, seed)
		r := pebble.MinFeasibleR(g)
		for _, kind := range pebble.AllKinds() {
			m := pebble.NewModel(kind)
			for _, conv := range conventions {
				p := Problem{G: g, Model: m, R: r, Convention: conv}
				serial, serr := Exact(p, ExactOptions{})
				if serr != nil {
					continue
				}
				opt := serial.Result.Cost.Scaled(m)
				for _, workers := range []int{2, 4} {
					sol, err := Exact(p, ExactOptions{
						Parallel: workers, PruneBound: opt + 1, InitialLowerBound: opt / 2,
					})
					if err != nil {
						t.Fatalf("seed %d %v %s workers=%d: %v", seed, kind, convName(conv), workers, err)
					}
					if got := sol.Result.Cost.Scaled(m); got != opt {
						t.Errorf("seed %d %v %s workers=%d: bounded async cost %d != serial %d",
							seed, kind, convName(conv), workers, got, opt)
					}
				}
			}
		}
	}
}

// TestAsyncInitialLowerBoundSeedsCertificate: a caller-certified floor
// must survive into the harvested LowerBound even when the async
// search is canceled before it could prove anything on its own.
func TestAsyncInitialLowerBoundSeedsCertificate(t *testing.T) {
	g := daggen.Pyramid(4)
	p := prob(g, pebble.Oneshot, 3)
	ref, err := Exact(p, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opt := ref.Result.Cost.Scaled(p.Model)

	canceled := make(chan struct{})
	close(canceled)
	var s ExactStats
	_, err = Exact(p, ExactOptions{Parallel: 4, InitialLowerBound: opt, Cancel: canceled, Stats: &s})
	if err == nil {
		// The cancellation raced the (tiny) solve to completion; the
		// proven optimum is an even stronger certificate.
		return
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if s.LowerBound < opt {
		t.Fatalf("LowerBound = %d, want >= seeded %d", s.LowerBound, opt)
	}
}

// TestAsyncStreamedBoundMonotone: the mid-flight certified f-min
// streamed through Progress must be non-decreasing (the engine emits on
// bound improvement AND on the sampling cadence, so a slow solve may
// repeat its current bound) and never exceed the true optimum, across
// models, conventions and worker counts. Progress runs on the
// coordinator goroutine — the same one that called Exact — so the
// plain slice append is race-free by construction.
func TestAsyncStreamedBoundMonotone(t *testing.T) {
	conventions := []pebble.Convention{
		{},
		{SourcesStartBlue: true},
		{SinksMustBeBlue: true},
		{SourcesStartBlue: true, SinksMustBeBlue: true},
	}
	for seed := int64(0); seed < 2; seed++ {
		g := daggen.RandomLayered(3, 3, 2, seed)
		r := pebble.MinFeasibleR(g)
		for _, kind := range pebble.AllKinds() {
			m := pebble.NewModel(kind)
			for _, conv := range conventions {
				p := Problem{G: g, Model: m, R: r, Convention: conv}
				serial, serr := Exact(p, ExactOptions{})
				if serr != nil {
					continue
				}
				opt := serial.Result.Cost.Scaled(m)
				for _, workers := range []int{1, 2, 4, 8} {
					var bounds []int64
					sol, err := Exact(p, ExactOptions{
						Parallel: workers,
						Progress: func(pr ExactProgress) { bounds = append(bounds, pr.LowerBound) },
					})
					if err != nil {
						t.Fatalf("seed %d %v %s workers=%d: %v", seed, kind, convName(conv), workers, err)
					}
					if got := sol.Result.Cost.Scaled(m); got != opt {
						t.Fatalf("seed %d %v %s workers=%d: cost %d != serial %d",
							seed, kind, convName(conv), workers, got, opt)
					}
					for i, b := range bounds {
						if b > opt {
							t.Fatalf("seed %d %v %s workers=%d: streamed bound %d exceeds optimum %d",
								seed, kind, convName(conv), workers, b, opt)
						}
						if i > 0 && b < bounds[i-1] {
							t.Fatalf("seed %d %v %s workers=%d: bound stream regressed: %v",
								seed, kind, convName(conv), workers, bounds)
						}
					}
				}
			}
		}
	}
}

// TestAsyncStreamsMidflightBound: on an instance with a real gap
// between the root estimate and the optimum, the async engine must
// stream at least one certified improvement while running — the
// capability the anytime orchestrator exposes under Workers > 1.
func TestAsyncStreamsMidflightBound(t *testing.T) {
	p := prob(daggen.Pyramid(5), pebble.Oneshot, 4)
	serial, err := Exact(p, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opt := serial.Result.Cost.Scaled(p.Model)
	h0, err := RootLowerBound(p, HeuristicAuto)
	if err != nil {
		t.Fatal(err)
	}
	if h0 >= opt {
		t.Fatalf("instance closed at the root (h0 %d >= opt %d); pick a harder one", h0, opt)
	}

	var bounds []int64
	if _, err := Exact(p, ExactOptions{
		Parallel: 2,
		Progress: func(pr ExactProgress) { bounds = append(bounds, pr.LowerBound) },
	}); err != nil {
		t.Fatal(err)
	}
	if len(bounds) == 0 {
		t.Fatal("async engine streamed no certified bounds mid-flight")
	}
	for _, b := range bounds {
		if b <= h0 || b > opt {
			t.Fatalf("streamed bound %d outside certified range (%d, %d]", b, h0, opt)
		}
	}
}
