package gadgets

import (
	"fmt"
	"sort"

	"rbpebble/internal/dag"
)

// GridPos addresses an input group of the Theorem 4 grid: 1 <= I, J and
// I+J <= L+1. I is the column, J the height within the column.
type GridPos struct{ I, J int }

// GreedyGrid is the Figure 8 construction: a triangular grid of input
// groups, aligned so that groups on a diagonal (I+J constant) share k'
// common source nodes. Dependency edges force any pebbling to visit a
// group before the group above it; small "misguidance" intersections
// steer greedy algorithms into a column-by-column (right-to-left,
// bottom-to-top) visit order that re-reads each diagonal's common nodes
// over and over, while the optimal order processes whole diagonals
// consecutively and pays nothing for the common nodes.
type GreedyGrid struct {
	G *dag.DAG
	// L is the grid parameter ℓ: the construction has L(L+1)/2 groups.
	L int
	// KPrime is the number of common nodes per diagonal (k').
	KPrime int
	// K is the uniform group size (k = k' + extras).
	K int
	// MisguideSize is the size of each steering intersection.
	MisguideSize int

	// Commons[x-2] lists the k' common source nodes of diagonal x,
	// for x in [2, L+1].
	Commons [][]dag.NodeID
	// Groups maps each grid position to its k member nodes.
	Groups map[GridPos][]dag.NodeID
	// Targets maps each grid position to its target node t(i,j).
	Targets map[GridPos]dag.NodeID
	// S0Members are the k members of the entry group S0.
	S0Members []dag.NodeID
	// S0Targets[i-1] is the target s_i of S0 placed into bottom group (i,1).
	S0Targets []dag.NodeID
	// Misguides[j] is the intersection between the top group of column j
	// and the bottom group of column j-1, for j in [2, L].
	Misguides map[int][]dag.NodeID
	// MisguideS0 is the intersection between S0 and group (L,1).
	MisguideS0 []dag.NodeID
}

// NewGreedyGrid builds the Theorem 4 construction with grid parameter
// l >= 2 and k' common nodes per diagonal (kprime >= 1). The misguidance
// intersections have 3 nodes each. The required red pebble count is R().
func NewGreedyGrid(l, kprime int) *GreedyGrid {
	if l < 2 || kprime < 1 {
		panic("gadgets: NewGreedyGrid needs l >= 2 and kprime >= 1")
	}
	const msize = 3
	gg := &GreedyGrid{
		L: l, KPrime: kprime, MisguideSize: msize,
		Groups:    make(map[GridPos][]dag.NodeID),
		Targets:   make(map[GridPos]dag.NodeID),
		Misguides: make(map[int][]dag.NodeID),
	}
	g := dag.New(0)
	gg.G = g

	// Determine the maximum number of non-common extra members any group
	// needs, so that k = k' + cExtra is uniform.
	cExtra := 0
	for _, pos := range gg.AllPositions() {
		if e := gg.extraBudget(pos, msize); e > cExtra {
			cExtra = e
		}
	}
	gg.K = kprime + cExtra

	// Common source nodes per diagonal x = 2..L+1.
	for x := 2; x <= l+1; x++ {
		c := g.AddNodes(kprime)
		for i, v := range c {
			g.SetLabel(v, fmt.Sprintf("C%d.%d", x, i))
		}
		gg.Commons = append(gg.Commons, c)
	}
	// Misguidance intersections.
	for j := 2; j <= l; j++ {
		m := g.AddNodes(msize)
		for i, v := range m {
			g.SetLabel(v, fmt.Sprintf("M%d.%d", j, i))
		}
		gg.Misguides[j] = m
	}
	gg.MisguideS0 = g.AddNodes(msize)
	for i, v := range gg.MisguideS0 {
		g.SetLabel(v, fmt.Sprintf("MS0.%d", i))
	}

	// S0: members are the S0 misguide nodes plus fillers up to k; its L
	// targets go one into each bottom group, s_L computed... s_i is the
	// target for bottom group (i,1).
	gg.S0Members = append([]dag.NodeID(nil), gg.MisguideS0...)
	fill := g.AddNodes(gg.K - len(gg.S0Members))
	for i, v := range fill {
		g.SetLabel(v, fmt.Sprintf("S0f.%d", i))
	}
	gg.S0Members = append(gg.S0Members, fill...)
	for i := 1; i <= l; i++ {
		s := g.AddLabeledNode(fmt.Sprintf("s%d", i))
		for _, u := range gg.S0Members {
			g.AddEdge(u, s)
		}
		gg.S0Targets = append(gg.S0Targets, s)
	}

	// Grid groups: create targets first (column-major so t(i,j) exists
	// when (i,j+1) is assembled is NOT needed — targets are standalone
	// nodes; membership edges are added after).
	for _, pos := range gg.AllPositions() {
		gg.Targets[pos] = g.AddLabeledNode(fmt.Sprintf("t(%d,%d)", pos.I, pos.J))
	}
	for _, pos := range gg.AllPositions() {
		members := gg.assembleMembers(pos, msize)
		if len(members) != gg.K {
			panic(fmt.Sprintf("gadgets: group %v has %d members, want %d", pos, len(members), gg.K))
		}
		gg.Groups[pos] = members
		for _, u := range members {
			g.AddEdge(u, gg.Targets[pos])
		}
	}
	return gg
}

// extraBudget counts the non-common, non-filler members of group pos.
func (gg *GreedyGrid) extraBudget(pos GridPos, msize int) int {
	e := 0
	if pos.J >= 2 {
		e++ // dependency target t(i, j-1)
	}
	if pos.J == 1 {
		e++ // S0 target s_i
	}
	if gg.isTop(pos) && pos.I >= 2 && pos.I <= gg.L {
		e += msize // misguide M_I (top of column I)
	}
	if pos.J == 1 && pos.I >= 1 && pos.I <= gg.L-1 {
		e += msize // misguide M_{I+1} (bottom of column I)
	}
	if pos == (GridPos{gg.L, 1}) {
		e += msize // S0 intersection
	}
	return e
}

// assembleMembers builds the member list of group pos: commons, the
// dependency target, the S0 target, misguides, then distinct fillers.
func (gg *GreedyGrid) assembleMembers(pos GridPos, msize int) []dag.NodeID {
	g := gg.G
	x := pos.I + pos.J
	members := append([]dag.NodeID(nil), gg.Commons[x-2]...)
	if pos.J >= 2 {
		members = append(members, gg.Targets[GridPos{pos.I, pos.J - 1}])
	}
	if pos.J == 1 {
		members = append(members, gg.S0Targets[pos.I-1])
	}
	if gg.isTop(pos) && pos.I >= 2 && pos.I <= gg.L {
		members = append(members, gg.Misguides[pos.I]...)
	}
	if pos.J == 1 && pos.I >= 1 && pos.I <= gg.L-1 {
		members = append(members, gg.Misguides[pos.I+1]...)
	}
	if pos == (GridPos{gg.L, 1}) {
		members = append(members, gg.MisguideS0...)
	}
	for len(members) < gg.K {
		f := g.AddLabeledNode(fmt.Sprintf("f(%d,%d).%d", pos.I, pos.J, len(members)))
		members = append(members, f)
	}
	return members
}

// isTop reports whether pos is the top group of its column.
func (gg *GreedyGrid) isTop(pos GridPos) bool { return pos.I+pos.J == gg.L+1 }

// R returns the red pebble count the construction is studied with: k+1.
func (gg *GreedyGrid) R() int { return gg.K + 1 }

// AllPositions lists the grid positions in deterministic (column-major)
// order.
func (gg *GreedyGrid) AllPositions() []GridPos {
	var out []GridPos
	for i := 1; i <= gg.L; i++ {
		for j := 1; i+j <= gg.L+1; j++ {
			out = append(out, GridPos{i, j})
		}
	}
	return out
}

// OptimalVisits returns the paper's optimal group visit sequence: after
// S0, process each diagonal x = 2..L+1 from its bottom group (x-1, 1) up
// to (1, x-1).
func (gg *GreedyGrid) OptimalVisits() []GridPos {
	var out []GridPos
	for x := 2; x <= gg.L+1; x++ {
		for i := x - 1; i >= 1; i-- {
			out = append(out, GridPos{i, x - i})
		}
	}
	return out
}

// GreedyExpectedVisits returns the group visit sequence the misguidance
// forces on greedy algorithms: columns right-to-left, each bottom-to-top.
func (gg *GreedyGrid) GreedyExpectedVisits() []GridPos {
	var out []GridPos
	for i := gg.L; i >= 1; i-- {
		for j := 1; i+j <= gg.L+1; j++ {
			out = append(out, GridPos{i, j})
		}
	}
	return out
}

// VisitOrder expands a group visit sequence into a full node-level
// compute order: S0's members and targets first, then for each visited
// group its not-yet-ordered source members (ascending ID) followed by its
// target. The result is a valid input for sched.Execute.
func (gg *GreedyGrid) VisitOrder(visits []GridPos) []dag.NodeID {
	g := gg.G
	placed := make([]bool, g.N())
	var order []dag.NodeID
	add := func(v dag.NodeID) {
		if !placed[v] {
			placed[v] = true
			order = append(order, v)
		}
	}
	for _, v := range gg.S0Members {
		add(v)
	}
	for _, s := range gg.S0Targets {
		add(s)
	}
	for _, pos := range visits {
		members := append([]dag.NodeID(nil), gg.Groups[pos]...)
		sort.Slice(members, func(a, b int) bool { return members[a] < members[b] })
		for _, u := range members {
			if g.IsSource(u) {
				add(u)
			}
		}
		add(gg.Targets[pos])
	}
	return order
}

// TargetPos maps target node IDs back to their grid position (for
// recovering a solver's group visit sequence from its compute order).
func (gg *GreedyGrid) TargetPos() map[dag.NodeID]GridPos {
	out := make(map[dag.NodeID]GridPos, len(gg.Targets))
	for pos, t := range gg.Targets {
		out[t] = pos
	}
	return out
}
