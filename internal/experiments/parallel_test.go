package experiments

import (
	"testing"
)

func TestMultilevelExperiment(t *testing.T) {
	rep := Multilevel()
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for i := range rep.Rows {
		two := cellInt(t, rep, i, "2-level cost")
		three := cellInt(t, rep, i, "3-level cost")
		if three > two {
			t.Fatalf("row %d: middle level made things worse (%d > %d)", i, three, two)
		}
		fast := cellInt(t, rep, i, "L0<->L1")
		deep := cellInt(t, rep, i, "L1<->L2")
		if deep > fast {
			t.Fatalf("row %d: deep link busier than fast link", i)
		}
	}
}

func TestAllParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment twice")
	}
	seq := All()
	par := AllParallel()
	if len(seq) != len(par) {
		t.Fatalf("lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].ID != par[i].ID {
			t.Fatalf("order differs at %d: %s vs %s", i, seq[i].ID, par[i].ID)
		}
		if len(seq[i].Rows) != len(par[i].Rows) {
			t.Fatalf("%s: row counts differ", seq[i].ID)
		}
		for r := range seq[i].Rows {
			for c := range seq[i].Rows[r] {
				// Ablation D measures parallel engines: its states and
				// wall-clock columns are schedule-dependent by nature.
				// The proven optima (and everything else) must match.
				if seq[i].ID == "Ablation D" && c >= 4 {
					continue
				}
				// Ablation E measures anytime solves under wall-clock
				// deadlines: how far the certified interval converges
				// (lower, gap, optimal, source — every column past the
				// deadline) depends on scheduler timing. Only the
				// workload and deadline labels are deterministic.
				if seq[i].ID == "Ablation E" && c >= 2 {
					continue
				}
				if seq[i].Rows[r][c] != par[i].Rows[r][c] {
					t.Fatalf("%s row %d col %d: %q vs %q — experiments are not deterministic",
						seq[i].ID, r, c, seq[i].Rows[r][c], par[i].Rows[r][c])
				}
			}
		}
	}
}

func BenchmarkAllParallelSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reports := AllParallel()
		if len(reports) == 0 {
			b.Fatal("no reports")
		}
	}
}
