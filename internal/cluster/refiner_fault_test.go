package cluster

import (
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"rbpebble/internal/daggen"
	"rbpebble/internal/instcache"
	"rbpebble/internal/service"
)

// startRefinerNode is startNode with the background refiner enabled:
// a fast scan cadence for test latency, and the ownership filter wired
// through the agent's ring mirror exactly as cmd/rbserve does.
func startRefinerNode(t *testing.T, addr, proxyAddr string) *elasticNode {
	t.Helper()
	n := &elasticNode{}
	n.svc = service.New(service.Config{
		RefinerInterval: 100 * time.Millisecond,
		Replicate: func(e instcache.Entry) {
			if a := n.agentPtr.Load(); a != nil {
				a.Replicate(e)
			}
		},
		RefinerOwns: func(key string) bool {
			if a := n.agentPtr.Load(); a != nil {
				return a.Owns(key)
			}
			return true
		},
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	n.addr = ln.Addr().String()
	n.srv = &http.Server{Handler: n.svc.Handler()}
	go n.srv.Serve(ln)
	n.agent = NewAgent(AgentConfig{
		Proxy:          proxyAddr,
		Self:           n.addr,
		Export:         n.svc.ExportCache,
		RejoinInterval: 50 * time.Millisecond,
		Comm:           NewComm(CommConfig{AttemptTimeout: 5 * time.Second, MaxAttempts: 2, BackoffBase: 10 * time.Millisecond}),
	})
	n.agentPtr.Store(n.agent)
	return n
}

// TestFaultHardKillMidRefinement: the ring owner of a wide cached
// interval is hard-killed while its background refiner is re-solving
// the key. Nothing certified may be lost: the surviving replica still
// serves an interval no wider than the pre-crash response, and once
// the dead node's lease expires the survivor — now the key's ring
// owner — picks the refinement up itself, with no new request beyond
// the failover read.
func TestFaultHardKillMidRefinement(t *testing.T) {
	ec := newElasticCluster(t, 0)
	for i := 0; i < 2; i++ {
		ec.nodes = append(ec.nodes, startRefinerNode(t, "127.0.0.1:0", ec.proxyAddr))
	}
	ec.waitFor(t, 5*time.Second, func() bool {
		return ec.proxy.Membership().Size() == 2
	}, "both refiner nodes joined")

	// Seed a deliberately wide certified interval on the ring owner.
	body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3,"deadline_ms":120}`, dagJSON(t, daggen.FFT(3)))
	code, first, owner := ec.post(t, body)
	if code != http.StatusOK {
		t.Fatalf("seed solve: code=%d", code)
	}
	if first.Optimal {
		t.Skip("host closed fft(3) R=3 in 120ms; refinement not observable")
	}
	victim, survivor := ec.node(t, owner)

	// The seed entry replicates to the survivor on store; wait for it so
	// the crash below cannot lose the interval.
	ec.waitFor(t, 5*time.Second, func() bool {
		return len(survivor.svc.ExportCache()) >= 1
	}, "seed interval replicated to the survivor")

	// Wait for the victim's refiner to be mid-refinement on the key —
	// the crash window under test.
	ec.waitFor(t, 10*time.Second, func() bool {
		st, ok := victim.svc.RefinerStatus()
		return ok && st.CurrentKey != ""
	}, "victim refiner mid-refinement")

	victim.hardKill()

	// Failover read: the replica serves, and certified knowledge only
	// ever tightens — never wider than what the victim already proved.
	code, after, node := ec.post(t, body)
	if code != http.StatusOK {
		t.Fatalf("post-crash solve: code=%d", code)
	}
	if node != survivor.addr {
		t.Fatalf("post-crash request served by %s, want survivor %s", node, survivor.addr)
	}
	if after.Upper > first.Upper || after.Lower < first.Lower {
		t.Fatalf("post-crash interval [%v, %v] wider than pre-crash [%v, %v]",
			after.Lower, after.Upper, first.Lower, first.Upper)
	}

	// The dead node's lease lapses; the survivor becomes the key's ring
	// owner and its own refiner picks the key up with no further
	// traffic.
	ec.waitFor(t, 5*time.Second, func() bool {
		return ec.proxy.Membership().Size() == 1
	}, "dead node expired off the ring")
	ec.waitFor(t, 15*time.Second, func() bool {
		st, ok := survivor.svc.RefinerStatus()
		return ok && st.Runs >= 1
	}, "survivor refiner picked up the orphaned key")
}
