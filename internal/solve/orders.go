package solve

import (
	"errors"
	"fmt"

	"rbpebble/internal/dag"
	"rbpebble/internal/pebble"
	"rbpebble/internal/sched"
)

// ErrOrderLimit is returned by OrderOpt when the number of topological
// orders explored exceeds the budget.
var ErrOrderLimit = errors.New("solve: topological-order budget exceeded")

// OrderOptOptions configures OrderOpt.
type OrderOptOptions struct {
	// MaxOrders caps the number of complete topological orders evaluated
	// (0 means the default of 1,000,000).
	MaxOrders int
}

// OrderOpt finds the optimal oneshot pebbling by exhausting all
// topological compute orders and running Belady (optimal) eviction on
// each. In the oneshot model every pebbling is characterized by its
// compute order plus its transfer decisions (paper §8), and Belady is the
// optimal offline eviction for a fixed order, so the best (order, Belady)
// pair is a global optimum.
//
// The number of topological orders can be factorial; OrderOpt is intended
// for the small instances used to cross-validate construction-specific
// strategies and the Exact solver.
func OrderOpt(p Problem, opts OrderOptOptions) (Solution, error) {
	if p.Model.Kind != pebble.Oneshot {
		return Solution{}, fmt.Errorf("solve: OrderOpt applies to the oneshot model, got %s", p.Model)
	}
	maxOrders := opts.MaxOrders
	if maxOrders == 0 {
		maxOrders = 1_000_000
	}

	g := p.G
	n := g.N()
	indeg := make([]int, n)
	skip := make([]bool, n)
	for v := 0; v < n; v++ {
		indeg[v] = g.InDegree(dag.NodeID(v))
		if p.Convention.SourcesStartBlue && g.IsSource(dag.NodeID(v)) {
			skip[v] = true
		}
	}
	if p.Convention.SourcesStartBlue {
		// Sources are not computed; treat them as pre-resolved.
		for v := 0; v < n; v++ {
			if skip[v] {
				for _, w := range g.Succs(dag.NodeID(v)) {
					indeg[w]--
				}
			}
		}
	}

	orderLen := 0
	for v := 0; v < n; v++ {
		if !skip[v] {
			orderLen++
		}
	}

	var (
		best      *Solution
		bestCost  int64
		evaluated int
		limitHit  bool
	)
	order := make([]dag.NodeID, 0, orderLen)
	ready := make([]bool, n)
	for v := 0; v < n; v++ {
		ready[v] = !skip[v] && indeg[v] == 0
	}

	var rec func()
	rec = func() {
		if limitHit {
			return
		}
		if len(order) == orderLen {
			evaluated++
			if evaluated > maxOrders {
				limitHit = true
				return
			}
			tr, res, err := sched.Execute(g, p.Model, p.R, p.Convention, order, sched.Options{Policy: sched.Belady})
			if err != nil {
				panic("solve: OrderOpt generated invalid order: " + err.Error())
			}
			c := res.Cost.Scaled(p.Model)
			if best == nil || c < bestCost {
				sol := Solution{Trace: tr, Result: res}
				best, bestCost = &sol, c
			}
			return
		}
		for v := 0; v < n; v++ {
			if !ready[v] {
				continue
			}
			ready[v] = false
			order = append(order, dag.NodeID(v))
			var enabled []int
			for _, w := range g.Succs(dag.NodeID(v)) {
				indeg[w]--
				if indeg[w] == 0 && !skip[int(w)] {
					ready[w] = true
					enabled = append(enabled, int(w))
				}
			}
			rec()
			for _, w := range g.Succs(dag.NodeID(v)) {
				indeg[w]++
			}
			for _, w := range enabled {
				ready[w] = false
			}
			order = order[:len(order)-1]
			ready[v] = true
			if limitHit {
				return
			}
		}
	}
	rec()
	if limitHit {
		return Solution{}, fmt.Errorf("%w: %d orders", ErrOrderLimit, maxOrders)
	}
	if best == nil {
		return Solution{}, errors.New("solve: no topological order found (cyclic graph?)")
	}
	return *best, nil
}

// CountTopoOrders returns the number of topological orders of g, stopping
// at limit (returns limit+1 if there are more). Useful to decide whether
// OrderOpt is feasible.
func CountTopoOrders(g *dag.DAG, limit int) int {
	n := g.N()
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = g.InDegree(dag.NodeID(v))
	}
	count := 0
	var rec func(placed int)
	rec = func(placed int) {
		if count > limit {
			return
		}
		if placed == n {
			count++
			return
		}
		for v := 0; v < n; v++ {
			if indeg[v] == 0 {
				indeg[v] = -1
				for _, w := range g.Succs(dag.NodeID(v)) {
					indeg[w]--
				}
				rec(placed + 1)
				for _, w := range g.Succs(dag.NodeID(v)) {
					indeg[w]++
				}
				indeg[v] = 0
				if count > limit {
					return
				}
			}
		}
	}
	rec(0)
	return count
}
