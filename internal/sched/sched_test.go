package sched

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"rbpebble/internal/dag"
	"rbpebble/internal/daggen"
	"rbpebble/internal/pebble"
)

func topo(t *testing.T, g *dag.DAG) []dag.NodeID {
	t.Helper()
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	return order
}

func TestExecuteChainZeroCost(t *testing.T) {
	// A chain with R=2 pebbles needs no transfers at all: compute next,
	// delete previous.
	g := daggen.Chain(20)
	for _, kind := range []pebble.ModelKind{pebble.Base, pebble.Oneshot} {
		tr, res, err := Execute(g, pebble.NewModel(kind), 2, pebble.Convention{}, topo(t, g), Options{Policy: Belady})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Cost.Transfers != 0 {
			t.Fatalf("%v: chain transfers = %d, want 0", kind, res.Cost.Transfers)
		}
		if len(tr.Moves) == 0 || !res.Complete {
			t.Fatalf("%v: bad trace", kind)
		}
	}
}

func TestExecuteChainNoDel(t *testing.T) {
	// Under nodel the previous chain node must be stored instead of
	// deleted: cost n-2 stores (last two nodes stay red with R=2... the
	// final node and its predecessor's pebble: the pred of the last node
	// is evicted only if needed; with R=2 computing node i+1 needs i red,
	// so node i-1 must be stored. n-2 stores total).
	n := 20
	g := daggen.Chain(n)
	_, res, err := Execute(g, pebble.NewModel(pebble.NoDel), 2, pebble.Convention{}, topo(t, g), Options{Policy: Belady})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.Transfers != n-2 {
		t.Fatalf("nodel chain transfers = %d, want %d", res.Cost.Transfers, n-2)
	}
	if res.Deletes != 0 {
		t.Fatal("nodel trace contains deletes")
	}
}

func TestExecuteRespectsUpperBound(t *testing.T) {
	// Every policy must stay within the universal (2Δ+1)·n bound on every
	// workload.
	graphs := map[string]*dag.DAG{
		"pyramid": daggen.Pyramid(5),
		"fft":     daggen.FFT(3),
		"grid":    daggen.Grid(4, 4),
		"tree":    daggen.BinaryTree(4),
		"layered": daggen.RandomLayered(4, 5, 3, 7),
		"stencil": daggen.Stencil1D(6, 4),
	}
	for name, g := range graphs {
		r := pebble.MinFeasibleR(g)
		bound := pebble.CostUpperBound(g, pebble.NewModel(pebble.Oneshot))
		for _, p := range AllPolicies() {
			_, res, err := Execute(g, pebble.NewModel(pebble.Oneshot), r, pebble.Convention{}, topo(t, g), Options{Policy: p, Seed: 1})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, p, err)
			}
			if res.Cost.Transfers > bound.Transfers {
				t.Fatalf("%s/%s: cost %d exceeds (2Δ+1)n = %d", name, p, res.Cost.Transfers, bound.Transfers)
			}
			if res.MaxRed > r {
				t.Fatalf("%s/%s: red limit violated", name, p)
			}
		}
	}
}

func TestBeladyBeatsOrTiesOthers(t *testing.T) {
	// Belady is optimal for a fixed order; it must never lose to LRU/FIFO
	// on the same order.
	for seed := int64(0); seed < 10; seed++ {
		g := daggen.RandomLayered(4, 6, 3, seed)
		r := pebble.MinFeasibleR(g) + 1
		order := topo(t, g)
		costs := map[Policy]int{}
		for _, p := range []Policy{Belady, LRU, FIFO} {
			_, res, err := Execute(g, pebble.NewModel(pebble.Oneshot), r, pebble.Convention{}, order, Options{Policy: p})
			if err != nil {
				t.Fatalf("seed %d policy %s: %v", seed, p, err)
			}
			costs[p] = res.Cost.Transfers
		}
		if costs[Belady] > costs[LRU] || costs[Belady] > costs[FIFO] {
			t.Fatalf("seed %d: belady=%d lru=%d fifo=%d", seed, costs[Belady], costs[LRU], costs[FIFO])
		}
	}
}

func TestExecuteLargeRIsFree(t *testing.T) {
	// With R = n, nothing is ever evicted: zero transfers in oneshot.
	g := daggen.FFT(3)
	_, res, err := Execute(g, pebble.NewModel(pebble.Oneshot), g.N(), pebble.Convention{}, topo(t, g), Options{Policy: Belady})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.Transfers != 0 {
		t.Fatalf("R=n transfers = %d", res.Cost.Transfers)
	}
}

func TestOrderValidation(t *testing.T) {
	g := daggen.Chain(3)
	m := pebble.NewModel(pebble.Base)
	cases := []struct {
		name  string
		order []dag.NodeID
		want  string
	}{
		{"reversed", []dag.NodeID{2, 1, 0}, "violates edge"},
		{"missing", []dag.NodeID{0, 1}, "missing node"},
		{"dup", []dag.NodeID{0, 1, 1}, "twice"},
		{"range", []dag.NodeID{0, 1, 9}, "out-of-range"},
	}
	for _, c := range cases {
		_, _, err := Execute(g, m, 2, pebble.Convention{}, c.order, Options{})
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want contains %q", c.name, err, c.want)
		}
	}
}

func TestSourcesStartBlueOrder(t *testing.T) {
	g := daggen.Chain(3)
	m := pebble.NewModel(pebble.Base)
	conv := pebble.Convention{SourcesStartBlue: true}
	// Including the source is an error.
	if _, _, err := Execute(g, m, 2, conv, []dag.NodeID{0, 1, 2}, Options{}); err == nil {
		t.Fatal("order with source accepted under SourcesStartBlue")
	}
	// Excluding it works; the source is loaded (1 transfer).
	_, res, err := Execute(g, m, 2, conv, []dag.NodeID{1, 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.Transfers != 1 {
		t.Fatalf("transfers = %d, want 1 (load source)", res.Cost.Transfers)
	}
}

func TestSinksMustBeBlue(t *testing.T) {
	g := daggen.Chain(3)
	m := pebble.NewModel(pebble.Oneshot)
	conv := pebble.Convention{SinksMustBeBlue: true}
	_, res, err := Execute(g, m, 2, conv, topo(t, g), Options{Policy: Belady})
	if err != nil {
		t.Fatal(err)
	}
	// The chain costs 0 normally; the final store adds exactly 1.
	if res.Cost.Transfers != 1 {
		t.Fatalf("transfers = %d, want 1", res.Cost.Transfers)
	}
}

func TestEvictAllStoreMatchesNaiveBound(t *testing.T) {
	// The naive strategy stores everything after each compute: for the
	// input-group DAG every target computation costs about 2Δ+1.
	g, _, _ := daggen.InputGroups(4, 3)
	r := pebble.MinFeasibleR(g)
	_, res, err := Execute(g, pebble.NewModel(pebble.Oneshot), r, pebble.Convention{}, topo(t, g), Options{Policy: EvictAllStore})
	if err != nil {
		t.Fatal(err)
	}
	bound := pebble.CostUpperBound(g, pebble.NewModel(pebble.Oneshot))
	if res.Cost.Transfers > bound.Transfers {
		t.Fatalf("naive cost %d exceeds bound %d", res.Cost.Transfers, bound.Transfers)
	}
	if res.Stores == 0 {
		t.Fatal("EvictAllStore produced no stores")
	}
}

func TestRandomPolicyDeterministicPerSeed(t *testing.T) {
	g := daggen.RandomLayered(4, 5, 3, 3)
	r := pebble.MinFeasibleR(g)
	order := topo(t, g)
	m := pebble.NewModel(pebble.Oneshot)
	tr1, _, err1 := Execute(g, m, r, pebble.Convention{}, order, Options{Policy: Random, Seed: 11})
	tr2, _, err2 := Execute(g, m, r, pebble.Convention{}, order, Options{Policy: Random, Seed: 11})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if len(tr1.Moves) != len(tr2.Moves) {
		t.Fatal("same seed, different trace length")
	}
	for i := range tr1.Moves {
		if tr1.Moves[i] != tr2.Moves[i] {
			t.Fatal("same seed, different trace")
		}
	}
}

func TestAllModelsProduceLegalTraces(t *testing.T) {
	g := daggen.Pyramid(4)
	order := topo(t, g)
	r := pebble.MinFeasibleR(g) + 1
	for _, kind := range pebble.AllKinds() {
		m := pebble.NewModel(kind)
		tr, res, err := Execute(g, m, r, pebble.Convention{}, order, Options{Policy: Belady})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		// Re-verify independently.
		res2, err := tr.Run(g)
		if err != nil || !res2.Complete {
			t.Fatalf("%v: replay failed: %v", kind, err)
		}
		if res2.Cost != res.Cost {
			t.Fatalf("%v: replay cost %v != %v", kind, res2.Cost, res.Cost)
		}
		if kind == pebble.NoDel && res.Deletes > 0 {
			t.Fatalf("nodel trace has deletes")
		}
	}
}

func TestPolicyString(t *testing.T) {
	for _, p := range AllPolicies() {
		if p.String() == "" {
			t.Fatal("empty policy name")
		}
	}
	if Policy(99).String() == "" {
		t.Fatal("unknown policy should render")
	}
	// Unknown policy errors out of Execute.
	g := daggen.Chain(2)
	_, _, err := Execute(g, pebble.NewModel(pebble.Base), 2, pebble.Convention{}, []dag.NodeID{0, 1}, Options{Policy: Policy(99)})
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// Property: on random layered DAGs, all policies produce complete legal
// traces whose cost respects the universal bound, for all models.
func TestQuickAllPoliciesLegal(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		layers := int(a%4) + 2
		width := int(b%4) + 2
		g := daggen.RandomLayered(layers, width, 2, seed)
		r := pebble.MinFeasibleR(g)
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		for _, kind := range pebble.AllKinds() {
			for _, p := range []Policy{Belady, LRU, FIFO, Random} {
				_, res, err := Execute(g, pebble.NewModel(kind), r, pebble.Convention{}, order, Options{Policy: p, Seed: seed})
				if err != nil || !res.Complete {
					return false
				}
				if res.Cost.Transfers > pebble.CostUpperBound(g, pebble.NewModel(kind)).Transfers {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExecuteBelady(b *testing.B) {
	g := daggen.FFT(6)
	order, _ := g.TopoOrder()
	r := 8
	m := pebble.NewModel(pebble.Oneshot)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Execute(g, m, r, pebble.Convention{}, order, Options{Policy: Belady}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCostBudgetPrunes: a budget below the schedule's true cost aborts
// with ErrCostBudget; a budget at or above it leaves the result
// untouched.
func TestCostBudgetPrunes(t *testing.T) {
	g := daggen.Pyramid(5)
	m := pebble.NewModel(pebble.Oneshot)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := Execute(g, m, 4, pebble.Convention{}, order, Options{Policy: Belady})
	if err != nil {
		t.Fatal(err)
	}
	full := res.Cost.Scaled(m)
	if full < 2 {
		t.Fatalf("test wants a schedule with cost >= 2, got %d", full)
	}
	if _, _, err := Execute(g, m, 4, pebble.Convention{}, order,
		Options{Policy: Belady, CostBudget: full - 1}); !errors.Is(err, ErrCostBudget) {
		t.Fatalf("budget %d: err = %v, want ErrCostBudget", full-1, err)
	}
	_, res2, err := Execute(g, m, 4, pebble.Convention{}, order,
		Options{Policy: Belady, CostBudget: full})
	if err != nil {
		t.Fatalf("budget == cost must succeed: %v", err)
	}
	if res2.Cost != res.Cost {
		t.Fatalf("budgeted run changed the cost: %v vs %v", res2.Cost, res.Cost)
	}
}
