package experiments

import (
	"io"
	"runtime"
	"sync"

	"rbpebble/internal/dag"
	"rbpebble/internal/daggen"
	"rbpebble/internal/multilevel"
)

// AllParallel runs every experiment concurrently (bounded by GOMAXPROCS
// workers) and returns the reports in the same deterministic order as
// All. Experiments are independent, so this is an embarrassingly
// parallel speedup for the CLI and CI.
func AllParallel() []*Report {
	makers := []func() *Report{
		Table1,
		Table2,
		func() *Report { return Fig1CD(DefaultFig1Params()) },
		Fig2H2C,
		func() *Report { return Fig4Tradeoff(DefaultTradeoffParams()) },
		func() *Report { return Thm2HamPath(DefaultThm2Params()) },
		func() *Report { return Thm3VertexCover(DefaultThm3Params()) },
		func() *Report { return Thm4Greedy(DefaultThm4Params()) },
		func() *Report { return Lemma1Length(DefaultLemma1Params()) },
		Conventions,
		AblationEviction,
		AblationExactPruning,
		AblationGreedyRules,
		Multilevel,
		ParallelPebbling,
	}
	reports := make([]*Report, len(makers))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, mk := range makers {
		wg.Add(1)
		go func(i int, mk func() *Report) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			reports[i] = mk()
		}(i, mk)
	}
	wg.Wait()
	return reports
}

// RunAllParallel renders every report (computed concurrently) to w in
// deterministic order.
func RunAllParallel(w io.Writer) error {
	for _, r := range AllParallel() {
		if _, err := r.WriteTo(w); err != nil {
			return err
		}
	}
	return nil
}

// Multilevel is the extension experiment: the multi-level hierarchy
// generalization the paper's related work points to (Carpenter et al.).
// It compares a flat two-level system against a three-level hierarchy
// with the same total fast capacity on HPC workloads, reporting per-link
// traffic.
func Multilevel() *Report {
	rep := &Report{
		ID:     "Extension — multilevel",
		Title:  "Multi-level hierarchy generalization (related work [4])",
		Claim:  "(extension) an intermediate cache level absorbs traffic from the expensive deep link; two-level red-blue is the L=2 special case",
		Header: []string{"workload", "2-level cost", "3-level cost", "L0<->L1", "L1<->L2"},
	}
	for _, w := range []struct {
		name string
		g    *dag.DAG
	}{
		{"fft(4)", daggen.FFT(4)},
		{"grid(6x6)", daggen.Grid(6, 6)},
		{"matmul(3)", daggen.MatMul(3)},
	} {
		name, g := w.name, w.g
		order, err := g.TopoOrder()
		if err != nil {
			panic(err)
		}
		r := g.MaxInDegree() + 3
		_, two, err := multilevel.Execute(g, multilevel.Hierarchy{Limits: []int{r}, Costs: []int{10}}, order, true)
		if err != nil {
			panic(err)
		}
		_, three, err := multilevel.Execute(g, multilevel.Hierarchy{Limits: []int{r, 4 * r}, Costs: []int{1, 9}}, order, true)
		if err != nil {
			panic(err)
		}
		rep.Rows = append(rep.Rows, []string{
			name, itoa(two.Cost), itoa(three.Cost),
			itoa(three.TransfersPerLink[0]), itoa(three.TransfersPerLink[1]),
		})
	}
	rep.Verdict = "the middle level turns deep fetches into cheap near fetches; the engine reduces to classic red-blue at L=2 (cross-validated in multilevel tests)"
	return rep
}
