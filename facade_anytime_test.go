package rbpebble_test

import (
	"context"
	"testing"
	"time"

	"rbpebble"
)

// TestAnytimeFacade exercises the serving-layer exports end to end:
// root bound, anytime solve under a deadline, canonical identity.
func TestAnytimeFacade(t *testing.T) {
	p := rbpebble.Problem{G: rbpebble.Pyramid(4), Model: rbpebble.NewModel(rbpebble.Oneshot), R: 3}
	lb, err := rbpebble.RootLowerBound(p, rbpebble.HeuristicAuto)
	if err != nil {
		t.Fatal(err)
	}
	if lb <= 0 {
		t.Fatalf("root bound = %d", lb)
	}
	res, err := rbpebble.Anytime(context.Background(), p, rbpebble.AnytimeOptions{Budget: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || res.LowerScaled < lb {
		t.Fatalf("anytime result incoherent: %v (root bound %d)", res, lb)
	}

	d0, perm := rbpebble.CanonicalDAG(p.G)
	if len(perm) != p.G.N() {
		t.Fatalf("perm length %d", len(perm))
	}
	d1, _ := rbpebble.CanonicalDAG(rbpebble.Pyramid(4))
	if d0 != d1 {
		t.Fatal("canonical digest unstable")
	}

	s := rbpebble.NewServer(rbpebble.ServiceConfig{})
	defer s.Close()
	if s.Handler() == nil {
		t.Fatal("no handler")
	}
}
