package main

import (
	"testing"

	"rbpebble/internal/pebble"
)

func TestParseModel(t *testing.T) {
	for name, want := range map[string]pebble.ModelKind{
		"base": pebble.Base, "oneshot": pebble.Oneshot, "nodel": pebble.NoDel,
	} {
		m, err := parseModel(name, 100)
		if err != nil || m.Kind != want {
			t.Fatalf("parseModel(%q) = %v, %v", name, m, err)
		}
	}
	m, err := parseModel("compcost", 50)
	if err != nil || m.Kind != pebble.CompCost || m.EpsDenom != 50 {
		t.Fatalf("compcost = %v, %v", m, err)
	}
	if _, err := parseModel("frobnicate", 100); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestParseRule(t *testing.T) {
	for _, name := range []string{"most-red-inputs", "fewest-blue-inputs", "red-ratio"} {
		if _, err := parseRule(name); err != nil {
			t.Fatalf("parseRule(%q): %v", name, err)
		}
	}
	if _, err := parseRule("nope"); err == nil {
		t.Fatal("unknown rule accepted")
	}
}
