package cluster

import (
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// Prober keeps the ring's member health current by polling each
// member's /healthz. A member is up iff the probe returns 2xx — an
// rbserve node that is draining for shutdown answers 503 with the
// X-Rbserve-Draining header, so the ring stops routing to it before it
// goes away AND the proxy can tell a *draining* node (alive, handing
// off) from a *dead* one (transport failure / TTL expiry).
//
// Consecutive transport failures back the probe off exponentially with
// jitter instead of hammering a down node on the fixed interval: a
// member that refused k probes in a row is next probed after roughly
// interval << (k-1), capped at maxProbeBackoff x interval. A member
// that ANSWERS — any HTTP status, including a draining 503 — stays on
// the regular cadence, because an answering node's state can change
// (drain completes, drain aborts) and we want to notice quickly.
type Prober struct {
	ring     *Ring
	client   *http.Client
	interval time.Duration
	// onStatus, when set, receives every probe verdict (healthy = 2xx,
	// draining = 503 + drain header). The proxy feeds it into the
	// membership registry.
	onStatus func(member string, healthy, draining bool)

	mu    sync.Mutex
	fails map[string]int       // consecutive transport failures
	due   map[string]time.Time // next probe time for backed-off members

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// maxProbeBackoff caps the failure backoff at this many intervals.
const maxProbeBackoff = 16

// NewProber returns a started prober (poll loop runs until Stop).
// interval <= 0 selects 2s. client nil selects a 1s-timeout client.
// onStatus may be nil.
func NewProber(ring *Ring, interval time.Duration, client *http.Client, onStatus func(member string, healthy, draining bool)) *Prober {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	if client == nil {
		client = &http.Client{Timeout: time.Second}
	}
	p := &Prober{ring: ring, client: client, interval: interval, onStatus: onStatus, stop: make(chan struct{})}
	p.wg.Add(1)
	go p.loop()
	return p
}

func (p *Prober) loop() {
	defer p.wg.Done()
	// Probe immediately at start so a dead seed member is demoted
	// before the first interval elapses.
	p.ProbeOnce()
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.ProbeOnce()
		}
	}
}

// ProbeOnce probes every DUE member once, in parallel, and updates the
// ring. Members inside their failure backoff window are skipped.
// Exported so tests (and the proxy's failover path) can force a
// re-check without waiting out the interval.
func (p *Prober) ProbeOnce() {
	now := time.Now()
	var wg sync.WaitGroup
	for m := range p.ring.Members() {
		if !p.dueNow(m, now) {
			continue
		}
		wg.Add(1)
		go func(m string) {
			defer wg.Done()
			healthy, draining, answered := p.probe(m)
			p.record(m, answered)
			p.ring.SetHealthy(m, healthy)
			if p.onStatus != nil {
				p.onStatus(m, healthy, draining)
			}
		}(m)
	}
	wg.Wait()
}

// dueNow reports whether m should be probed now (lazy state init: the
// prober may be constructed directly by tests).
func (p *Prober) dueNow(m string, now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.due == nil {
		return true
	}
	t, ok := p.due[m]
	return !ok || !now.Before(t)
}

// record updates m's consecutive-failure count and next-due time:
// answered probes reset to the regular cadence, transport failures
// back off exponentially with +-25% jitter.
func (p *Prober) record(m string, answered bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fails == nil {
		p.fails = make(map[string]int)
		p.due = make(map[string]time.Time)
	}
	if answered {
		p.fails[m] = 0
		delete(p.due, m)
		return
	}
	p.fails[m]++
	p.due[m] = time.Now().Add(probeBackoff(p.fails[m], p.interval))
}

// probeBackoff returns the jittered delay before re-probing a member
// with k consecutive transport failures: interval << (k-1) capped at
// maxProbeBackoff intervals, jittered uniformly in [0.75d, 1.25d).
func probeBackoff(k int, interval time.Duration) time.Duration {
	if k < 1 {
		k = 1
	}
	d := interval
	for i := 1; i < k && d < time.Duration(maxProbeBackoff)*interval; i++ {
		d *= 2
	}
	if max := time.Duration(maxProbeBackoff) * interval; d > max {
		d = max
	}
	if d <= 0 {
		return 0
	}
	return d*3/4 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// probe returns (healthy, draining, answered): healthy iff 2xx,
// draining iff the node stamped the drain header, answered iff the
// node produced ANY HTTP response (transport failures are what drive
// the probe backoff — an answering node is alive, whatever it said).
func (p *Prober) probe(member string) (healthy, draining, answered bool) {
	resp, err := p.client.Get("http://" + member + "/healthz")
	if err != nil {
		return false, false, false
	}
	resp.Body.Close()
	healthy = resp.StatusCode >= 200 && resp.StatusCode < 300
	draining = resp.Header.Get("X-Rbserve-Draining") == "1"
	return healthy, draining, true
}

// Stop ends the poll loop.
func (p *Prober) Stop() {
	p.once.Do(func() { close(p.stop) })
	p.wg.Wait()
}
