package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rbpebble/internal/benchharness"
	"rbpebble/internal/dag"
	"rbpebble/internal/daggen"
)

func TestMain(m *testing.M) { benchharness.Main(m) }

// BenchmarkBatchThroughputPyramid measures the batched request plane's
// amortization: one POST /solve/batch of 16 isomorphic pyramid(5)
// relabelings (one canonical-class solve, 16 translations) against the
// no-request-plane fleet baseline — 16 sequential single POSTs, each
// to a cold node, so every request pays its own canonicalization AND
// its own exact solve. That is the fleet shape this PR replaces: with
// no batch endpoint and no canonical routing, isomorphic requests land
// on arbitrary cache-cold replicas and nothing is shared.
func BenchmarkBatchThroughputPyramid(b *testing.B) {
	const items = 16
	base := daggen.Pyramid(5)
	graphs := make([]*dag.DAG, items)
	graphs[0] = base
	for i := 1; i < items; i++ {
		graphs[i] = permuted(base, int64(i))
	}
	bodies := make([]string, items)
	for i, g := range graphs {
		gj, err := json.Marshal(g)
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":4,"deadline_ms":30000}`, gj)
	}
	batchBody := fmt.Sprintf(`{"items":[%s]}`, strings.Join(bodies, ","))

	var rec benchharness.Record
	before := benchharness.Before()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		// Batched: one server, one request, in-batch canonical dedup.
		s := New(Config{})
		ts := httptest.NewServer(s.Handler())
		t0 := time.Now()
		resp, err := http.Post(ts.URL+"/solve/batch", "application/json", strings.NewReader(batchBody))
		if err != nil {
			b.Fatal(err)
		}
		var br BatchResponse
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		batchNs := float64(time.Since(t0).Nanoseconds())
		if resp.StatusCode != http.StatusOK || br.Summary.OK != items {
			b.Fatalf("batch failed: status %d, summary %+v", resp.StatusCode, br.Summary)
		}
		solves := int(s.m.solves.Load())
		ts.Close()
		s.Close()

		// Baseline: 16 sequential single POSTs, one cold server each —
		// no shared canonicalization, no shared solve.
		t0 = time.Now()
		for _, body := range bodies {
			s := New(Config{})
			ts := httptest.NewServer(s.Handler())
			resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			var sr SolveResponse
			if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || !sr.Optimal {
				b.Fatalf("sequential solve failed: status %d, %+v", resp.StatusCode, sr)
			}
			ts.Close()
			s.Close()
		}
		seqNs := float64(time.Since(t0).Nanoseconds())

		rec.BatchItems = items
		rec.BatchSolves = solves
		rec.NsPerItemBatch = batchNs / items
		rec.NsPerItemSequential = seqNs / items
		b.ReportMetric(rec.NsPerItemBatch, "ns/item-batch")
		b.ReportMetric(rec.NsPerItemSequential, "ns/item-seq")
		b.ReportMetric(rec.NsPerItemSequential/rec.NsPerItemBatch, "speedup")
	}
	benchharness.Capture(b, before, rec)
}
