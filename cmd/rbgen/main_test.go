package main

import "testing"

func TestBuildKinds(t *testing.T) {
	kinds := []string{"chain", "pyramid", "tree", "grid", "fft", "matmul",
		"stencil", "layered", "groups", "tradeoff", "greedygrid", "hampath", "vcover"}
	for _, k := range kinds {
		g, err := build(k, 3, 3, 2, 0.3, 1)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if g.N() == 0 {
			t.Fatalf("%s: empty graph", k)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: invalid DAG: %v", k, err)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := build("", 3, 3, 2, 0.3, 1); err == nil {
		t.Fatal("missing kind accepted")
	}
	if _, err := build("bogus", 3, 3, 2, 0.3, 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
