package solve

import (
	"sort"

	"rbpebble/internal/bitset"
	"rbpebble/internal/dag"
	"rbpebble/internal/pebble"
)

// Heuristic selects the A* lower bound used by Exact.
type Heuristic int

const (
	// HeuristicAuto (the zero value) enables the admissible model-aware
	// lower bound; it behaves exactly like HeuristicLowerBound.
	HeuristicAuto Heuristic = iota
	// HeuristicOff disables the lower bound entirely: Exact degenerates
	// to plain uniform-cost search (Dijkstra), the original behavior.
	// Useful for ablations and as the reference in admissibility tests.
	HeuristicOff
	// HeuristicLowerBound forces the admissible lower bound on.
	HeuristicLowerBound
)

// String names the heuristic mode.
func (h Heuristic) String() string {
	switch h {
	case HeuristicAuto:
		return "auto"
	case HeuristicOff:
		return "off"
	case HeuristicLowerBound:
		return "lower-bound"
	default:
		return "Heuristic(?)"
	}
}

// lowerBound computes an admissible, model-aware lower bound on the
// remaining cost of a pebbling position. It never overestimates in any
// of the four models, which makes A* return exactly the Dijkstra
// optimum while expanding far fewer states.
//
// The bound counts, per remaining completion:
//
//   - mustCompute: pebble-free nodes reachable backward from an
//     unsatisfied sink through pebble-free nodes. Each must receive at
//     least one Compute (a pebble can only appear on a bare node via
//     Compute, and its bare predecessors must in turn be computed to be
//     red at that moment). Charged ε each under compcost, 0 elsewhere.
//   - forced loads: blue predecessors of mustCompute nodes that can
//     never be recomputed — every blue node in oneshot (already
//     computed, or an initial source that is not computable), and blue
//     sources under SourcesStartBlue in every model. Each needs one
//     Load (cost 1). Distinct nodes, so the counts add.
//   - forced stores: under SinksMustBeBlue, every sink not currently
//     blue needs at least one Store (cost 1). Blue pebbles only arise
//     from Store, and these are on distinct, non-blue nodes, disjoint
//     from the forced-load set.
//
// estimate also detects dead positions — a mustCompute node that was
// already computed in oneshot, or a bare needed source under
// SourcesStartBlue — from which no completion exists at any cost.
type lowerBound struct {
	p        Problem
	enabled  bool
	oneshot  bool
	scale    int64 // scaled cost of one transfer (EpsDenom under compcost, else 1)
	compCost int64 // scaled cost of one compute (1 under compcost, else 0)
	sinks    []dag.NodeID

	mustCompute *bitset.Set
	counted     *bitset.Set // blue nodes already counted as forced loads
	stack       []int32
	cands       []capCandidate
}

// capMaxN bounds the graph size for which the capacity-term candidates
// are precomputed (the precomputation builds per-node ancestor and
// descendant masks, quadratic in n/64 words).
const capMaxN = 512

// capUse is one potentially-live value u evaluated against a capacity
// candidate w: anc records whether u is a strict ancestor of w, and
// useMask holds u's successors inside desc(w) (statically restricted to
// the initially-needed set).
type capUse struct {
	u       int32
	anc     bool
	useMask *bitset.Set
}

// capCandidate is one precomputed compute event w for the capacity term:
// slots = R - indeg(w) - 1 is the number of red slots not taken by
// preds(w) and w at the moment w is computed, and shell lists the values
// that can compete for them.
type capCandidate struct {
	w     dag.NodeID
	slots int
	shell []capUse
}

func newLowerBound(p Problem, mode Heuristic, start *pebble.State) *lowerBound {
	lb := &lowerBound{
		p:       p,
		enabled: mode != HeuristicOff,
		oneshot: p.Model.Kind == pebble.Oneshot,
		scale:   1,
		sinks:   p.G.Sinks(),
	}
	if p.Model.Kind == pebble.CompCost {
		lb.scale = int64(p.Model.EpsDenom)
		lb.compCost = 1
	}
	if lb.enabled {
		lb.mustCompute = bitset.New(p.G.N())
		lb.counted = bitset.New(p.G.N())
		lb.buildCapCandidates(start)
	}
	return lb
}

// cloneScratch returns a lowerBound sharing the immutable tables
// (capacity candidates, sink list, parameters) with private scratch
// sets, so parallel workers skip the quadratic candidate precompute.
func (lb *lowerBound) cloneScratch() *lowerBound {
	c := *lb
	if lb.enabled {
		c.mustCompute = bitset.New(lb.p.G.N())
		c.counted = bitset.New(lb.p.G.N())
		c.stack = nil
	}
	return &c
}

// estimate returns an admissible lower bound (in scaled cost units) on
// the remaining cost from st, plus a dead flag reporting that st cannot
// be completed at all. With the heuristic off it returns (0, false),
// keeping the search byte-for-byte Dijkstra.
func (lb *lowerBound) estimate(st *pebble.State) (int64, bool) {
	if !lb.enabled {
		return 0, false
	}
	g := lb.p.G
	conv := lb.p.Convention
	var h int64
	lb.mustCompute.Reset()
	lb.counted.Reset()
	lb.stack = lb.stack[:0]
	for _, s := range lb.sinks {
		if conv.SinksMustBeBlue {
			if st.IsBlue(s) {
				continue
			}
			h += lb.scale // one Store onto s is still needed
		} else if st.HasPebble(s) {
			continue
		}
		if !st.HasPebble(s) && !lb.mustCompute.Get(int(s)) {
			lb.mustCompute.Set(int(s))
			lb.stack = append(lb.stack, int32(s))
		}
	}
	for len(lb.stack) > 0 {
		v := dag.NodeID(lb.stack[len(lb.stack)-1])
		lb.stack = lb.stack[:len(lb.stack)-1]
		// v is bare (no pebble) and must be computed at least once more.
		if lb.oneshot && st.WasComputed(v) {
			return 0, true // recompute forbidden: unwinnable
		}
		if conv.SourcesStartBlue && g.IsSource(v) {
			return 0, true // sources are not computable: unwinnable
		}
		h += lb.compCost
		for _, u := range g.Preds(v) {
			ui := int(u)
			if st.IsRed(u) {
				continue
			}
			if st.IsBlue(u) {
				if lb.loadForced(u) && !lb.counted.Get(ui) {
					lb.counted.Set(ui)
					h += lb.scale
				}
				continue
			}
			if !lb.mustCompute.Get(ui) {
				lb.mustCompute.Set(ui)
				lb.stack = append(lb.stack, int32(u))
			}
		}
	}
	h += lb.capacityTerm(st)
	return h, false
}

// capacityTerm adds the oneshot capacity bound: pick the still-pending
// compute event w whose forced-live values overflow the spare red slots
// the most. At the moment w is computed, preds(w) and w occupy
// indeg(w)+1 of the R red slots. Every value that must exist before that
// moment (already computed or held, or an uncomputed ancestor of w) and
// must be consumed after it (it has a successor that must be computed
// and lies strictly below^W above w in the DAG, hence after w) is either
// in one of the slots = R-indeg(w)-1 spare red slots or blue at that
// moment. In oneshot a value cannot be recreated, so each overflow value
// that is not blue already needs one future Store (to get blue by then)
// and one future Load (to get red again for its later consumer): 2
// transfers, on nodes disjoint from every other term of the bound.
func (lb *lowerBound) capacityTerm(st *pebble.State) int64 {
	if len(lb.cands) == 0 {
		return 0
	}
	best := 0
	for ci := range lb.cands {
		cd := &lb.cands[ci]
		if !lb.mustCompute.Get(int(cd.w)) {
			continue // w already computed (or not needed): event is gone
		}
		fl, curBlue := 0, 0
		for i := range cd.shell {
			cu := &cd.shell[i]
			u := dag.NodeID(cu.u)
			// Value must exist before w's compute: it exists now (pebble
			// or computed) or is an ancestor of w that must be computed.
			if !(st.HasPebble(u) || st.WasComputed(u) ||
				(cu.anc && lb.mustCompute.Get(int(cu.u)))) {
				continue
			}
			// ... and must be consumed after it.
			if !cu.useMask.Intersects(lb.mustCompute) {
				continue
			}
			fl++
			if st.IsBlue(u) {
				curBlue++ // may sit blue through the event for free
			}
		}
		if b := fl - cd.slots - curBlue; b > best {
			best = b
		}
	}
	return 2 * lb.scale * int64(best)
}

// buildCapCandidates precomputes the capacity-term candidates for the
// oneshot model on small graphs: per-node ancestor/descendant masks,
// then for each needed node w the shell of values adjacent to its
// descendant cone, keeping the candidates with the highest overflow
// potential.
func (lb *lowerBound) buildCapCandidates(start *pebble.State) {
	g := lb.p.G
	n := g.N()
	if !lb.oneshot || n == 0 || n > capMaxN {
		return
	}
	order, err := g.TopoOrder()
	if err != nil {
		return
	}
	// needed0: nodes bare at the start that must be computed (the
	// initial mustCompute). Future mustCompute sets only shrink toward
	// subsets of it in oneshot, so restricting use masks to needed0
	// never overcounts.
	if _, dead := lb.estimate(start); dead {
		return
	}
	needed0 := lb.mustCompute.Clone()

	anc := make([]*bitset.Set, n)
	desc := make([]*bitset.Set, n)
	for v := 0; v < n; v++ {
		anc[v] = bitset.New(n)
		desc[v] = bitset.New(n)
	}
	for _, v := range order {
		for _, u := range g.Preds(v) {
			anc[v].Or(anc[u])
			anc[v].Set(int(u))
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for _, x := range g.Succs(v) {
			desc[v].Or(desc[x])
			desc[v].Set(int(x))
		}
	}

	isPred := make([]bool, n)
	type scored struct {
		cand  capCandidate
		score int
	}
	var all []scored
	for wi := 0; wi < n; wi++ {
		if !needed0.Get(wi) {
			continue
		}
		w := dag.NodeID(wi)
		slots := lb.p.R - g.InDegree(w) - 1
		for _, u := range g.Preds(w) {
			isPred[u] = true
		}
		var shell []capUse
		seen := bitset.New(n)
		desc[wi].ForEach(func(x int) bool {
			if !needed0.Get(x) {
				return true
			}
			for _, u := range g.Preds(dag.NodeID(x)) {
				ui := int(u)
				if ui == wi || isPred[ui] || seen.Get(ui) {
					continue
				}
				seen.Set(ui)
				use := bitset.New(n)
				for _, s := range g.Succs(u) {
					if needed0.Get(int(s)) && desc[wi].Get(int(s)) {
						use.Set(int(s))
					}
				}
				shell = append(shell, capUse{u: int32(ui), anc: anc[wi].Get(ui), useMask: use})
			}
			return true
		})
		for _, u := range g.Preds(w) {
			isPred[u] = false
		}
		if score := len(shell) - slots; score > 0 {
			all = append(all, scored{capCandidate{w: w, slots: slots, shell: shell}, score})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].cand.w < all[j].cand.w
	})
	const maxCands = 16
	for i := 0; i < len(all) && i < maxCands; i++ {
		lb.cands = append(lb.cands, all[i].cand)
	}
}

// loadForced reports whether blue node u can only return to red via a
// Load. In oneshot every blue node qualifies: it either was computed
// already (recompute banned) or is an initial blue source under
// SourcesStartBlue (sources not computable). In the other models only
// the latter case forces a Load — a blue node could otherwise be
// recomputed for free.
func (lb *lowerBound) loadForced(u dag.NodeID) bool {
	if lb.oneshot {
		return true
	}
	return lb.p.Convention.SourcesStartBlue && lb.p.G.IsSource(u)
}
