// Package gadgets builds the DAG constructions of Papp & Wattenhofer
// (SPAA 2020): the constant-degree (CD) gadget of Figure 1, the
// hard-to-compute (H2C) gadget of Figure 2, the single-source transform
// of §3, the time-memory tradeoff DAG of Figure 3, and the
// greedy-adversarial grid of Figure 8. Each builder returns the DAG
// together with structured handles to its parts, and, where the paper
// prescribes an optimal strategy, a compute order realizing it.
package gadgets

import (
	"fmt"

	"rbpebble/internal/dag"
)

// Tradeoff is the Figure 3 construction: two control groups of size d and
// a chain of length chainLen. Chain node j is enabled by the previous
// chain node and by all of control group A (j even) or B (j odd).
//
// In the oneshot model its optimal cost exhibits the maximal tradeoff
// slope: opt(d+2+i) = 2(d-i)·n for i in [0,d] (paper §5, Figure 4).
type Tradeoff struct {
	G      *dag.DAG
	D      int
	GroupA []dag.NodeID
	GroupB []dag.NodeID
	Chain  []dag.NodeID
}

// NewTradeoff builds the Figure 3 DAG with control group size d >= 1 and
// the given chain length >= 1.
func NewTradeoff(d, chainLen int) *Tradeoff {
	if d < 1 || chainLen < 1 {
		panic("gadgets: NewTradeoff needs d >= 1 and chainLen >= 1")
	}
	g := dag.New(0)
	t := &Tradeoff{G: g, D: d}
	t.GroupA = g.AddNodes(d)
	for _, v := range t.GroupA {
		g.SetLabel(v, "A")
	}
	t.GroupB = g.AddNodes(d)
	for _, v := range t.GroupB {
		g.SetLabel(v, "B")
	}
	t.Chain = g.AddNodes(chainLen)
	for j, c := range t.Chain {
		g.SetLabel(c, fmt.Sprintf("c%d", j))
		grp := t.GroupA
		if j%2 == 1 {
			grp = t.GroupB
		}
		for _, v := range grp {
			g.AddEdge(v, c)
		}
		if j > 0 {
			g.AddEdge(t.Chain[j-1], c)
		}
	}
	return t
}

// MaxUsefulR returns 2d+2, beyond which the pebbling is free (both
// control groups and two chain positions fit in fast memory).
func (t *Tradeoff) MaxUsefulR() int { return 2*t.D + 2 }

// MinR returns the minimum feasible red pebble count Δ+1 = d+2.
func (t *Tradeoff) MinR() int { return t.D + 2 }

// PredictedOptOneshot returns the paper's closed-form optimum for the
// oneshot model with r red pebbles: 2(d-i)·n for r = d+2+i, i in [0,d],
// and 0 for r >= 2d+2, where n is the chain length. It panics for
// infeasible r < d+2.
//
// The formula counts the steady-state shuttle cost; the concrete
// constructions save a few transfers at the boundary (the first
// computation of each control node is free, and pebbles need not return
// at the end), so measured optima are PredictedOptOneshot minus an O(d)
// boundary term. Benchmarks report both.
func (t *Tradeoff) PredictedOptOneshot(r int) int {
	d, n := t.D, len(t.Chain)
	if r < d+2 {
		panic(fmt.Sprintf("gadgets: infeasible R=%d < %d", r, d+2))
	}
	if r >= 2*d+2 {
		return 0
	}
	i := r - (d + 2)
	return 2 * (d - i) * n
}

// StrategyOrder returns the natural compute order of the construction:
// control sources immediately before their first use, then the chain in
// sequence. Executing this order with Belady eviction realizes the
// paper's prescribed strategy for every feasible R.
func (t *Tradeoff) StrategyOrder() []dag.NodeID {
	order := make([]dag.NodeID, 0, t.G.N())
	order = append(order, t.GroupA...)
	if len(t.Chain) > 0 {
		order = append(order, t.Chain[0])
	}
	if len(t.Chain) > 1 {
		order = append(order, t.GroupB...)
		order = append(order, t.Chain[1:]...)
	} else {
		// Group B feeds nothing beyond chain[0]; still must be computed
		// (its nodes are sinks... they are sources with no successors only
		// when chainLen == 1, in which case they are source-sinks).
		order = append(order, t.GroupB...)
	}
	return order
}
