package cluster

import (
	"testing"
	"time"
)

func TestMembershipJoinRenewExpire(t *testing.T) {
	ring := NewRing(8)
	ms := NewMembership(ring, time.Second)
	clock := time.Now()
	ms.now = func() time.Time { return clock }

	ms.Join("a:1", false)
	if ms.Size() != 1 || !ring.Members()["a:1"] {
		t.Fatal("join should register and add to the ring")
	}

	// Renewal inside the lease extends it.
	clock = clock.Add(800 * time.Millisecond)
	ms.Join("a:1", false)
	clock = clock.Add(800 * time.Millisecond) // 1.6s after first join, 0.8s after renewal
	if dead := ms.Sweep(); len(dead) != 0 {
		t.Fatalf("renewed member expired: %v", dead)
	}

	// Lease lapse expires it off the ring.
	clock = clock.Add(2 * time.Second)
	if dead := ms.Sweep(); len(dead) != 1 || dead[0] != "a:1" {
		t.Fatalf("Sweep = %v, want [a:1]", dead)
	}
	if ms.Size() != 0 {
		t.Fatal("expired member should be deregistered")
	}
	if _, ok := ring.Members()["a:1"]; ok {
		t.Fatal("expired member should leave the ring")
	}
	joins, leaves, expired := ms.Counters()
	if joins != 1 || leaves != 0 || expired != 1 {
		t.Fatalf("counters = %d/%d/%d, want 1/0/1", joins, leaves, expired)
	}
}

func TestMembershipStaticNeverExpires(t *testing.T) {
	ring := NewRing(8)
	ms := NewMembership(ring, time.Second)
	clock := time.Now()
	ms.now = func() time.Time { return clock }

	ms.AddStatic("s:1")
	clock = clock.Add(time.Hour)
	if dead := ms.Sweep(); len(dead) != 0 {
		t.Fatalf("static member expired: %v", dead)
	}
	if !ring.Members()["s:1"] {
		t.Fatal("static member should stay on the ring")
	}
}

func TestMembershipDrainingLifecycle(t *testing.T) {
	ring := NewRing(8)
	ms := NewMembership(ring, time.Minute)

	ms.Join("a:1", false)
	ms.Join("b:2", false)
	if !ring.Members()["a:1"] {
		t.Fatal("joined member should be healthy")
	}

	// Drain announcement demotes immediately.
	ms.Join("a:1", true)
	if ring.Members()["a:1"] {
		t.Fatal("draining member should be demoted")
	}
	if !ms.Draining("a:1") || ms.Draining("b:2") {
		t.Fatal("draining flags wrong")
	}

	// A restarted node re-joining un-drained is promoted back before the
	// next probe cycle.
	ms.Join("a:1", false)
	if !ring.Members()["a:1"] {
		t.Fatal("re-joined member should be healthy again")
	}
	if ms.Draining("a:1") {
		t.Fatal("re-join should clear the draining flag")
	}
}

func TestMembershipLeave(t *testing.T) {
	ring := NewRing(8)
	ms := NewMembership(ring, time.Minute)
	ms.Join("a:1", false)
	ms.Leave("a:1")
	if ms.Size() != 0 {
		t.Fatal("left member should be deregistered")
	}
	if _, ok := ring.Members()["a:1"]; ok {
		t.Fatal("left member should be off the ring")
	}
	_, leaves, _ := ms.Counters()
	if leaves != 1 {
		t.Fatalf("leaves = %d, want 1", leaves)
	}
}
