package experiments

import (
	"fmt"

	"rbpebble/internal/hampath"
	"rbpebble/internal/pebble"
	"rbpebble/internal/reduce"
	"rbpebble/internal/solve"
	"rbpebble/internal/ugraph"
	"rbpebble/internal/vcover"
)

// Thm2Params configures the Hamiltonian Path reduction experiment.
type Thm2Params struct {
	// Instances are (n, p, seed) triples for random sources plus the
	// fixed families below.
	RandomN []int
	Seed    int64
}

// DefaultThm2Params covers planted-HP, HP-free and random instances.
func DefaultThm2Params() Thm2Params { return Thm2Params{RandomN: []int{6, 8, 10}, Seed: 42} }

// Thm2HamPath regenerates the Theorem 2 / Figure 5 reduction: for each
// source graph it builds the pebbling DAG, computes the true minimum
// visit cost (Held-Karp over all permutations), and checks that the cost
// hits the closed-form threshold exactly when the Hamiltonian Path oracle
// says a path exists. Costs are engine-verified by replaying the best
// permutation.
func Thm2HamPath(p Thm2Params) *Report {
	rep := &Report{
		ID:     "Theorem 2 (Figure 5)",
		Title:  "NP-hardness: Hamiltonian Path → Pebbling",
		Claim:  "pebbling at threshold cost possible iff the source graph has a Hamiltonian path (oneshot & nodel)",
		Header: []string{"source", "N", "M", "hasHP", "threshold", "minCost", "at-threshold", "verified"},
	}
	type inst struct {
		name string
		g    *ugraph.Graph
	}
	var instances []inst
	instances = append(instances,
		inst{"path(6)", ugraph.Path(6)},
		inst{"cycle(7)", ugraph.Cycle(7)},
		inst{"star(6)", ugraph.Star(6)},
		inst{"2-triangles", ugraph.DisjointTriangles(2)},
		inst{"petersen", ugraph.Petersen()},
		inst{"hypercube(3)", ugraph.Hypercube(3)},
		inst{"grid(3x3)", ugraph.GridGraph(3, 3)},
	)
	for i, n := range p.RandomN {
		g, _ := ugraph.RandomWithHamPath(n, 0.15, p.Seed+int64(i))
		instances = append(instances, inst{fmt.Sprintf("planted(%d)", n), g})
		instances = append(instances, inst{fmt.Sprintf("gnp(%d)", n), ugraph.Random(n, 0.25, p.Seed+int64(100+i))})
	}
	allMatch := true
	for _, in := range instances {
		r := reduce.NewHamPath(in.g)
		hasHP, witness := hampath.Solve(in.g)
		minCost, bestPerm := minHamPathCost(r)
		atThreshold := minCost == r.ThresholdOneshot()
		if atThreshold != hasHP {
			allMatch = false
		}
		// Engine-verify: replay the best permutation (or the witness).
		perm := bestPerm
		if hasHP {
			perm = witness
		}
		_, res, err := r.Pebble(perm, pebble.NewModel(pebble.Oneshot))
		if err != nil {
			panic(err)
		}
		verified := res.Cost.Transfers == r.PermutationCostOneshot(perm)
		rep.Rows = append(rep.Rows, []string{
			in.name, itoa(in.g.N()), itoa(in.g.M()), btoa(hasHP),
			itoa(r.ThresholdOneshot()), itoa(minCost), btoa(atThreshold), btoa(verified),
		})
	}
	if allMatch {
		rep.Verdict = "minimum pebbling cost hits the threshold exactly on the HP instances — the reduction decides Hamiltonian Path"
	} else {
		rep.Verdict = "MISMATCH: threshold does not track Hamiltonian Path (bug)"
	}
	return rep
}

// minHamPathCost returns the minimum oneshot visit cost over all
// permutations and one minimizing permutation, via the Held-Karp DP on
// the pairwise non-adjacency penalty.
func minHamPathCost(r *reduce.HamPath) (int, []int) {
	n := r.Source.N()
	start := make([]int64, n)
	trans := make([][]int64, n)
	for i := 0; i < n; i++ {
		trans[i] = make([]int64, n)
		for j := 0; j < n; j++ {
			if i != j && !r.Source.HasEdge(i, j) {
				trans[i][j] = 2
			}
		}
	}
	extra, perm := solve.MinVisitOrder(start, trans)
	return r.ThresholdOneshot() + int(extra), perm
}

// Thm3Params configures the Vertex Cover reduction experiment.
type Thm3Params struct {
	KPrimes []int
}

// DefaultThm3Params sweeps the common-group size.
func DefaultThm3Params() Thm3Params { return Thm3Params{KPrimes: []int{10, 20, 40}} }

// Thm3VertexCover regenerates the Theorem 3 / Figures 6-7 claim: the
// pebbling cost of the reduction DAG is 2k'·|VC| + O(N²), so the
// pebbling cost ratio between a 2-approximate cover and the minimum
// cover approaches the cover size ratio as k' grows — a δ-approximate
// pebbler would δ-approximate Vertex Cover.
func Thm3VertexCover(p Thm3Params) *Report {
	rep := &Report{
		ID:     "Theorem 3 (Figures 6-7)",
		Title:  "UGC inapproximability: Vertex Cover → Pebbling",
		Claim:  "pebbling cost = 2k'·|VC| + O(N²); cost ratios converge to cover-size ratios as k' grows",
		Header: []string{"source", "k'", "|VCmin|", "cost(VCmin)", "2k'|VCmin|", "|VC2apx|", "cost(VC2apx)", "costRatio", "coverRatio"},
	}
	sources := []struct {
		name string
		g    *ugraph.Graph
	}{
		{"cycle(6)", ugraph.Cycle(6)},
		{"K(3,3)", ugraph.CompleteBipartite(3, 3)},
		{"gnp(7,.4)", ugraph.Random(7, 0.4, 5)},
	}
	for _, src := range sources {
		minC := vcover.Exact(src.g)
		apxC := vcover.TwoApprox(src.g)
		for _, kp := range p.KPrimes {
			r := reduce.NewVertexCover(src.g, kp)
			_, optRes, err := r.Pebble(r.VisitsForCover(minC))
			if err != nil {
				panic(err)
			}
			_, apxRes, err := r.Pebble(r.VisitsForCover(apxC))
			if err != nil {
				panic(err)
			}
			rep.Rows = append(rep.Rows, []string{
				src.name, itoa(kp),
				itoa(len(minC)), itoa(optRes.Cost.Transfers), itoa(r.CommonCost(len(minC))),
				itoa(len(apxC)), itoa(apxRes.Cost.Transfers),
				ftoa(float64(apxRes.Cost.Transfers) / float64(optRes.Cost.Transfers)),
				ftoa(float64(len(apxC)) / float64(len(minC))),
			})
		}
	}
	rep.Verdict = "cost tracks 2k'·|VC| with O(N²) slack; ratios converge to the cover ratio as k' grows — δ<2 pebbling approximation would beat UGC-hard Vertex Cover"
	return rep
}

// Thm4Params configures the greedy separation experiment.
type Thm4Params struct {
	L       int
	KPrimes []int
}

// DefaultThm4Params sweeps k' at a fixed grid.
func DefaultThm4Params() Thm4Params { return Thm4Params{L: 4, KPrimes: []int{8, 16, 32, 64}} }

// Thm4Greedy regenerates the Theorem 4 / Figure 8 separation: greedy
// strategies follow the misguided column order and pay Θ(k') per group,
// while the diagonal order pays O(1) per group; the ratio grows linearly
// in k' (and with it, in n).
func Thm4Greedy(p Thm4Params) *Report {
	rep := &Report{
		ID:     "Theorem 4 (Figure 8)",
		Title:  fmt.Sprintf("Greedy vs optimal on the misguidance grid, ℓ=%d", p.L),
		Claim:  "greedy cost 2k'·Θ(ℓ²) vs optimal (k-k')·Θ(ℓ²): ratio grows with k' — Θ̃(√n)–Θ̃(n) asymptotically",
		Header: []string{"k'", "n", "followed-misguide", "greedy", "optimal", "ratio"},
	}
	for _, kp := range p.KPrimes {
		gg := NewGridInstance(p.L, kp)
		rep.Rows = append(rep.Rows, gg)
	}
	rep.Verdict = "greedy follows the adversarial column order on every instance; the cost ratio scales linearly with k'"
	return rep
}
