package ugraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 1) // duplicate
	if g.N() != 4 || g.M() != 2 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("undirected edge missing")
	}
	if g.HasEdge(0, 2) || g.HasEdge(0, 9) || g.HasEdge(-1, 0) {
		t.Fatal("phantom edge")
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Fatal("degree wrong")
	}
	nb := g.Neighbors(1)
	if len(nb) != 2 || nb[0] != 0 || nb[1] != 2 {
		t.Fatalf("neighbors = %v", nb)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.RemoveEdge(1, 0)
	if g.M() != 0 || g.HasEdge(0, 1) {
		t.Fatal("RemoveEdge failed")
	}
	g.RemoveEdge(0, 1) // absent: no-op
	g.RemoveEdge(-1, 5)
	if g.M() != 0 {
		t.Fatal("no-op removal changed m")
	}
}

func TestPanics(t *testing.T) {
	for i, f := range []func(){
		func() { New(-1) },
		func() { New(2).AddEdge(0, 0) },
		func() { New(2).AddEdge(0, 5) },
		func() { Cycle(2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}

func TestEdgesSorted(t *testing.T) {
	g := New(4)
	g.AddEdge(2, 3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 3)
	e := g.Edges()
	want := [][2]int{{0, 1}, {1, 3}, {2, 3}}
	if len(e) != len(want) {
		t.Fatalf("edges = %v", e)
	}
	for i := range want {
		if e[i] != want[i] {
			t.Fatalf("edges = %v", e)
		}
	}
}

func TestClone(t *testing.T) {
	g := Path(4)
	c := g.Clone()
	c.AddEdge(0, 3)
	if g.HasEdge(0, 3) || g.M() == c.M() {
		t.Fatal("clone shares storage")
	}
}

func TestGenerators(t *testing.T) {
	if g := Path(5); g.M() != 4 || g.Degree(0) != 1 || g.Degree(2) != 2 {
		t.Fatal("Path wrong")
	}
	if g := Cycle(5); g.M() != 5 || g.Degree(0) != 2 {
		t.Fatal("Cycle wrong")
	}
	if g := Complete(5); g.M() != 10 || g.Degree(3) != 4 {
		t.Fatal("Complete wrong")
	}
	if g := Star(5); g.M() != 4 || g.Degree(0) != 4 || g.Degree(1) != 1 {
		t.Fatal("Star wrong")
	}
	if g := CompleteBipartite(2, 3); g.M() != 6 || g.Degree(0) != 3 || g.Degree(2) != 2 {
		t.Fatal("CompleteBipartite wrong")
	}
	if g := DisjointTriangles(3); g.N() != 9 || g.M() != 9 || g.Degree(4) != 2 {
		t.Fatal("DisjointTriangles wrong")
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(20, 0.3, 7)
	b := Random(20, 0.3, 7)
	if a.M() != b.M() {
		t.Fatal("same seed different graphs")
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed different edges")
		}
	}
	if Random(10, 0, 1).M() != 0 || Random(10, 1, 1).M() != 45 {
		t.Fatal("p extremes wrong")
	}
}

func TestRandomWithHamPath(t *testing.T) {
	g, perm := RandomWithHamPath(12, 0.1, 3)
	if len(perm) != 12 {
		t.Fatal("witness length wrong")
	}
	for i := 0; i+1 < len(perm); i++ {
		if !g.HasEdge(perm[i], perm[i+1]) {
			t.Fatalf("planted path edge %d-%d missing", perm[i], perm[i+1])
		}
	}
}

// Property: degree sums to 2m on random graphs.
func TestQuickDegreeSum(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%30) + 1
		g := Random(n, 0.4, seed)
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Edges/HasEdge/RemoveEdge agree with a reference model.
func TestQuickAgainstModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		g := New(n)
		ref := map[[2]int]bool{}
		key := func(u, v int) [2]int {
			if u > v {
				u, v = v, u
			}
			return [2]int{u, v}
		}
		for op := 0; op < 100; op++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if rng.Intn(2) == 0 {
				g.AddEdge(u, v)
				ref[key(u, v)] = true
			} else {
				g.RemoveEdge(u, v)
				delete(ref, key(u, v))
			}
		}
		if g.M() != len(ref) {
			return false
		}
		for _, e := range g.Edges() {
			if !ref[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
