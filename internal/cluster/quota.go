package cluster

import (
	"math"
	"sync"
	"time"
)

// TenantQuota is a per-tenant token-bucket rate limiter for the
// routing proxy: each tenant (identified by the X-Rbpebble-Tenant
// header; absent maps to the "default" bucket) gets an independent
// bucket of `burst` tokens refilled at `rate` tokens/second. One
// token buys one solve item — a batch of 40 items draws 40 tokens at
// admission, before any of them is routed, so one tenant's bulk
// traffic cannot starve the fleet for everyone else.
type TenantQuota struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// NewTenantQuota returns a limiter; rate <= 0 disables it (Take always
// admits). burst <= 0 defaults to max(rate, 1) — one second's worth.
func NewTenantQuota(rate float64, burst int) *TenantQuota {
	b := float64(burst)
	if b <= 0 {
		b = math.Max(rate, 1)
	}
	return &TenantQuota{rate: rate, burst: b, buckets: make(map[string]*tokenBucket)}
}

// Enabled reports whether the limiter actually limits.
func (q *TenantQuota) Enabled() bool { return q != nil && q.rate > 0 }

// Take attempts to draw n tokens for tenant. It either admits (taking
// all n) or rejects whole — a batch is admitted or shed as a unit,
// never half-routed — and on rejection reports how long until n
// tokens will have accrued (the Retry-After hint). A request wider
// than the burst can never succeed whole; it is rejected with the
// time n tokens would take to mint from empty.
func (q *TenantQuota) Take(tenant string, n int) (bool, time.Duration) {
	if !q.Enabled() || n <= 0 {
		return true, 0
	}
	if tenant == "" {
		tenant = "default"
	}
	now := time.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.buckets[tenant]
	if b == nil {
		b = &tokenBucket{tokens: q.burst, last: now}
		q.buckets[tenant] = b
	}
	b.tokens = math.Min(q.burst, b.tokens+now.Sub(b.last).Seconds()*q.rate)
	b.last = now
	if b.tokens >= float64(n) {
		b.tokens -= float64(n)
		return true, 0
	}
	deficit := float64(n) - b.tokens
	if float64(n) > q.burst {
		deficit = float64(n)
	}
	return false, time.Duration(deficit / q.rate * float64(time.Second))
}
