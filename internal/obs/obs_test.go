package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rbpebble/internal/dag"
)

// TestSpanTree: nested StartSpan calls parent correctly and the view
// reflects names, the parent chain, and closed durations.
func TestSpanTree(t *testing.T) {
	tr := newTrace("trace-tree-1")
	ctx := WithTrace(context.Background(), tr)

	ctx1, root := StartSpan(ctx, "root")
	ctx2, child := StartSpan(ctx1, "child")
	_, grand := StartSpan(ctx2, "grandchild")
	_, sibling := StartSpan(ctx1, "sibling")

	grand.SetAttr("k", "v")
	grand.Event("tick", 42)
	time.Sleep(time.Millisecond)
	grand.End()
	child.End()
	sibling.End()
	root.End()

	v := tr.View()
	if v.TraceID != "trace-tree-1" {
		t.Fatalf("trace id = %q", v.TraceID)
	}
	byName := map[string]SpanView{}
	for _, sv := range v.Spans {
		byName[sv.Name] = sv
	}
	if len(byName) != 4 {
		t.Fatalf("got %d spans, want 4: %+v", len(byName), v.Spans)
	}
	if byName["root"].Parent != 0 {
		t.Fatalf("root has parent %d", byName["root"].Parent)
	}
	if byName["child"].Parent != byName["root"].ID {
		t.Fatalf("child parent = %d, want root %d", byName["child"].Parent, byName["root"].ID)
	}
	if byName["grandchild"].Parent != byName["child"].ID {
		t.Fatalf("grandchild parent = %d, want child %d", byName["grandchild"].Parent, byName["child"].ID)
	}
	if byName["sibling"].Parent != byName["root"].ID {
		t.Fatalf("sibling parent = %d, want root %d", byName["sibling"].Parent, byName["root"].ID)
	}
	g := byName["grandchild"]
	if g.Open {
		t.Fatal("grandchild still open after End")
	}
	if g.DurationMS <= 0 {
		t.Fatalf("grandchild duration %v, want > 0", g.DurationMS)
	}
	if g.Attrs["k"] != "v" {
		t.Fatalf("grandchild attrs = %v", g.Attrs)
	}
	if len(g.Events) != 1 || g.Events[0].Name != "tick" || g.Events[0].Value != 42 {
		t.Fatalf("grandchild events = %v", g.Events)
	}
}

// TestUntracedContextIsFree: without a trace in context, StartSpan
// returns a nil span and every method on it is a no-op.
func TestUntracedContextIsFree(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "orphan")
	if sp != nil {
		t.Fatalf("got span %+v without a trace", sp)
	}
	if ctx != context.Background() {
		t.Fatal("untraced StartSpan should return ctx unchanged")
	}
	// All nil-safe: must not panic.
	sp.SetAttr("a", "b")
	sp.Event("e", 1)
	sp.End()
	sp.End()
}

// TestEndIdempotent: the first End fixes the duration; later Ends are
// no-ops.
func TestEndIdempotent(t *testing.T) {
	tr := newTrace("trace-end")
	ctx := WithTrace(context.Background(), tr)
	_, sp := StartSpan(ctx, "once")
	sp.End()
	end := sp.EndTime
	time.Sleep(2 * time.Millisecond)
	sp.End()
	if !sp.EndTime.Equal(end) {
		t.Fatalf("second End moved EndTime: %v -> %v", end, sp.EndTime)
	}
}

// TestGraft: spans started from a grafted context land in the original
// trace, parented under the span current at graft time, while
// cancellation follows the base context.
func TestGraft(t *testing.T) {
	tr := newTrace("trace-graft")
	reqCtx, parent := StartSpan(WithTrace(context.Background(), tr), "request")

	base, cancel := context.WithCancel(context.Background())
	g := Graft(base, reqCtx)
	if TraceIDFrom(g) != "trace-graft" {
		t.Fatalf("grafted trace id = %q", TraceIDFrom(g))
	}
	_, sp := StartSpan(g, "work")
	if sp.Parent != parent.ID {
		t.Fatalf("grafted span parent = %d, want %d", sp.Parent, parent.ID)
	}
	cancel()
	if g.Err() == nil {
		t.Fatal("grafted context must inherit base cancellation")
	}
	if reqCtx.Err() != nil {
		t.Fatal("request context must not be canceled by base")
	}
	// Graft with no trace is the identity.
	if got := Graft(base, context.Background()); got != base {
		t.Fatal("graft from untraced context should return base")
	}
}

// TestStartRequest: minting, inbound adoption, validation, and the
// immediate response echo.
func TestStartRequest(t *testing.T) {
	rec := NewRecorder(4)

	// No inbound header: mint and echo.
	w := httptest.NewRecorder()
	r := httptest.NewRequest("POST", "/solve", nil)
	ctx, tr := StartRequest(w, r, rec)
	if tr.ID == "" || w.Header().Get(TraceHeader) != tr.ID {
		t.Fatalf("minted id %q, echoed %q", tr.ID, w.Header().Get(TraceHeader))
	}
	if TraceIDFrom(ctx) != tr.ID {
		t.Fatal("context does not carry the trace")
	}
	if rec.Lookup(tr.ID) != tr {
		t.Fatal("trace not registered")
	}

	// Well-formed inbound header: adopted verbatim.
	w = httptest.NewRecorder()
	r = httptest.NewRequest("POST", "/solve", nil)
	r.Header.Set(TraceHeader, "client-supplied-id_01")
	_, tr = StartRequest(w, r, nil)
	if tr.ID != "client-supplied-id_01" {
		t.Fatalf("inbound id not adopted: %q", tr.ID)
	}

	// Hostile/malformed inbound headers: replaced with a fresh mint.
	for _, bad := range []string{"short", strings.Repeat("x", 65), "has space", "naïve-id", "inject\nheader"} {
		w = httptest.NewRecorder()
		r = httptest.NewRequest("POST", "/solve", nil)
		r.Header.Set(TraceHeader, bad)
		_, tr = StartRequest(w, r, nil)
		if tr.ID == bad {
			t.Fatalf("malformed id %q adopted", bad)
		}
	}
}

// TestRecorderEviction: capacity bounds retention FIFO; duplicate IDs
// re-register in place without burning a slot.
func TestRecorderEviction(t *testing.T) {
	rec := NewRecorder(3)
	for i := 0; i < 5; i++ {
		rec.Register(newTrace(fmt.Sprintf("trace-%d", i)))
	}
	if rec.Len() != 3 {
		t.Fatalf("len = %d, want 3", rec.Len())
	}
	for i := 0; i < 2; i++ {
		if rec.Lookup(fmt.Sprintf("trace-%d", i)) != nil {
			t.Fatalf("trace-%d should have been evicted", i)
		}
	}
	for i := 2; i < 5; i++ {
		if rec.Lookup(fmt.Sprintf("trace-%d", i)) == nil {
			t.Fatalf("trace-%d missing", i)
		}
	}
	// Duplicate ID: newest trace wins, slot count unchanged.
	dup := newTrace("trace-4")
	rec.Register(dup)
	if rec.Len() != 3 {
		t.Fatalf("duplicate registration changed len to %d", rec.Len())
	}
	if rec.Lookup("trace-4") != dup {
		t.Fatal("duplicate registration did not replace the trace")
	}
}

// TestSolveLogRing: wraparound retention, newest-first Recent, total
// count, and the JSONL sink.
func TestSolveLogRing(t *testing.T) {
	var sink bytes.Buffer
	l := NewSolveLog(3, &sink)
	for i := 0; i < 5; i++ {
		l.Append(SolveRecord{TraceID: fmt.Sprintf("t%d", i), Disposition: "cold"})
	}
	if l.Total() != 5 {
		t.Fatalf("total = %d, want 5", l.Total())
	}
	recs := l.Recent(0)
	if len(recs) != 3 {
		t.Fatalf("retained %d records, want 3", len(recs))
	}
	for i, want := range []string{"t4", "t3", "t2"} {
		if recs[i].TraceID != want {
			t.Fatalf("recent[%d] = %s, want %s (newest first)", i, recs[i].TraceID, want)
		}
	}
	if recs := l.Recent(1); len(recs) != 1 || recs[0].TraceID != "t4" {
		t.Fatalf("recent(1) = %+v", recs)
	}
	if recs := l.Recent(100); len(recs) != 3 {
		t.Fatalf("recent(100) returned %d records", len(recs))
	}
	// Sink got one JSON line per append, in append order.
	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("sink has %d lines, want 5", len(lines))
	}
	for i, line := range lines {
		var rec SolveRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("sink line %d not JSON: %v", i, err)
		}
		if rec.TraceID != fmt.Sprintf("t%d", i) {
			t.Fatalf("sink line %d = %s", i, rec.TraceID)
		}
	}
}

// TestComputeFeatures on a hand-built cherry DAG (0->2, 1->2) with
// every expected field checked exactly.
func TestComputeFeatures(t *testing.T) {
	g := dag.New(3)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	f := ComputeFeatures(g, 3)
	if f.N != 3 || f.M != 2 {
		t.Fatalf("size = %d/%d", f.N, f.M)
	}
	if f.Delta != 2 || f.R != 3 || f.RDeltaGap != 1 {
		t.Fatalf("delta/r/gap = %d/%d/%d", f.Delta, f.R, f.RDeltaGap)
	}
	if f.Depth != 2 {
		t.Fatalf("depth = %d, want 2", f.Depth)
	}
	if f.MaxWidth != 2 {
		t.Fatalf("max width = %d, want 2", f.MaxWidth)
	}
	if f.AvgWidth != 1.5 {
		t.Fatalf("avg width = %v, want 1.5", f.AvgWidth)
	}
	if f.FullEventDensity != 1.0/3.0 {
		t.Fatalf("full-event density = %v, want 1/3", f.FullEventDensity)
	}
}

// TestConcurrentSpans hammers one trace from many goroutines while a
// reader snapshots views — the race detector is the assertion.
func TestConcurrentSpans(t *testing.T) {
	tr := newTrace("trace-race")
	ctx := WithTrace(context.Background(), tr)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr.View()
			}
		}
	}()
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sctx, sp := StartSpan(ctx, fmt.Sprintf("w%d", i))
				_, inner := StartSpan(sctx, "inner")
				sp.SetAttr("iter", fmt.Sprint(j))
				inner.Event("tick", int64(j))
				inner.End()
				sp.End()
			}
		}(i)
	}
	time.Sleep(5 * time.Millisecond)
	close(stop)
	wg.Wait()
	if got := len(tr.View().Spans); got != 8*50*2 {
		t.Fatalf("recorded %d spans, want %d", got, 8*50*2)
	}
}

// TestSolveLogConcurrent: concurrent appends and reads stay consistent
// (race detector plus total/retention checks).
func TestSolveLogConcurrent(t *testing.T) {
	l := NewSolveLog(16, nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				l.Append(SolveRecord{TraceID: fmt.Sprintf("g%d-%d", i, j)})
				l.Recent(4)
			}
		}(i)
	}
	wg.Wait()
	if l.Total() != 200 {
		t.Fatalf("total = %d, want 200", l.Total())
	}
	if got := len(l.Recent(0)); got != 16 {
		t.Fatalf("retained %d, want 16", got)
	}
}
