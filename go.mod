module rbpebble

go 1.24
