package solve

import (
	"math/rand"
	"testing"
)

// refTable is the straightforward reference the arena-slab stateTable
// is checked against: a Go map from the key's string form to the
// payload values.
type refTable struct {
	refs map[string]int32
	best []int64
	h    []int64
	keys [][]uint64
}

func newRefTable() *refTable { return &refTable{refs: map[string]int32{}} }

func refKeyString(key []uint64) string {
	b := make([]byte, 0, len(key)*8)
	for _, w := range key {
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(w>>s))
		}
	}
	return string(b)
}

func (r *refTable) lookupOrAdd(key []uint64) (int32, bool) {
	ks := refKeyString(key)
	if ref, ok := r.refs[ks]; ok {
		return ref, false
	}
	ref := int32(len(r.best))
	r.refs[ks] = ref
	r.best = append(r.best, costUnreached)
	r.h = append(r.h, 0)
	r.keys = append(r.keys, append([]uint64(nil), key...))
	return ref, true
}

// checkTableAgainstRef drives both tables with the same operation
// sequence and fails on any divergence: ref assignment, isNew flags,
// key round-trips, payload round-trips, count.
func checkTableAgainstRef(t *testing.T, kw int, keys [][]uint64) {
	t.Helper()
	tab := newStateTable(kw, payloadWithH, 4) // tiny hint: force growth
	ref := newRefTable()
	for i, key := range keys {
		gotRef, gotNew := tab.lookupOrAdd(key, hashKey(key))
		wantRef, wantNew := ref.lookupOrAdd(key)
		if gotRef != wantRef || gotNew != wantNew {
			t.Fatalf("op %d: lookupOrAdd = (%d, %v), want (%d, %v)", i, gotRef, gotNew, wantRef, wantNew)
		}
		if gotNew {
			if tab.best(gotRef) != costUnreached {
				t.Fatalf("op %d: fresh entry best = %d, want costUnreached", i, tab.best(gotRef))
			}
			if tab.h(gotRef) != 0 {
				t.Fatalf("op %d: fresh entry h = %d, want 0", i, tab.h(gotRef))
			}
		}
		// Exercise the payload slots with values derived from the op
		// index (including the sentinels).
		switch i % 4 {
		case 0:
			ref.best[gotRef] = int64(i)
			tab.setBest(gotRef, int64(i))
		case 1:
			ref.best[gotRef] = costDead
			tab.setBest(gotRef, costDead)
		case 2:
			ref.h[gotRef] = int64(i * 3)
			tab.setH(gotRef, int64(i*3))
		}
		if tab.best(gotRef) != ref.best[gotRef] {
			t.Fatalf("op %d: best(%d) = %d, want %d", i, gotRef, tab.best(gotRef), ref.best[gotRef])
		}
		if tab.h(gotRef) != ref.h[gotRef] {
			t.Fatalf("op %d: h(%d) = %d, want %d", i, gotRef, tab.h(gotRef), ref.h[gotRef])
		}
	}
	if tab.count() != len(ref.best) {
		t.Fatalf("count = %d, want %d", tab.count(), len(ref.best))
	}
	if tab.bytes() <= 0 {
		t.Fatalf("bytes() = %d, want > 0", tab.bytes())
	}
	// Every stored key must round-trip from its ref, and every payload
	// must have survived the growth rehashes.
	for r := int32(0); r < int32(tab.count()); r++ {
		got := tab.key(r)
		want := ref.keys[r]
		if len(got) != len(want) {
			t.Fatalf("key(%d) length %d, want %d", r, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("key(%d) word %d = %#x, want %#x", r, i, got[i], want[i])
			}
		}
		if tab.best(r) != ref.best[r] || tab.h(r) != ref.h[r] {
			t.Fatalf("payload(%d) = (%d, %d), want (%d, %d)",
				r, tab.best(r), tab.h(r), ref.best[r], ref.h[r])
		}
		again, isNew := tab.lookupOrAdd(want, hashKey(want))
		if isNew || again != r {
			t.Fatalf("re-lookup of key(%d) = (%d, %v)", r, again, isNew)
		}
	}
}

// TestStateTableAgainstReference drives the arena table with random
// key streams (heavy duplication, adversarially small key space so tag
// collisions and probe chains occur) and checks it against the map
// reference.
func TestStateTableAgainstReference(t *testing.T) {
	for _, kw := range []int{1, 2, 3, 6} {
		rng := rand.New(rand.NewSource(int64(kw) * 7919))
		var keys [][]uint64
		for i := 0; i < 20000; i++ {
			key := make([]uint64, kw)
			for j := range key {
				// Tiny value domain: forces duplicates and shared hash
				// prefixes.
				key[j] = uint64(rng.Intn(64))
			}
			keys = append(keys, key)
		}
		checkTableAgainstRef(t, kw, keys)
	}
}

// TestStateTableReset checks that a reset table forgets its entries
// but keeps working (the IDA* memo resets once per threshold pass).
func TestStateTableReset(t *testing.T) {
	tab := newStateTable(2, payloadBestOnly, 4)
	key := []uint64{42, 7}
	ref, isNew := tab.lookupOrAdd(key, hashKey(key))
	if !isNew {
		t.Fatal("first insert not new")
	}
	tab.setBest(ref, 5)
	tab.reset()
	if tab.count() != 0 {
		t.Fatalf("count after reset = %d", tab.count())
	}
	ref2, isNew := tab.lookupOrAdd(key, hashKey(key))
	if !isNew || ref2 != 0 {
		t.Fatalf("post-reset insert = (%d, %v), want (0, true)", ref2, isNew)
	}
	if tab.best(ref2) != costUnreached {
		t.Fatalf("post-reset best = %d, want costUnreached", tab.best(ref2))
	}
}

// FuzzStateTable feeds arbitrary byte streams as key sequences through
// the table/reference pair, fuzzing the probe, tag-collision and
// growth paths.
func FuzzStateTable(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 1, 2, 3})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		kw := int(data[0])%3 + 1
		data = data[1:]
		var keys [][]uint64
		for len(data) >= kw && len(keys) < 4096 {
			key := make([]uint64, kw)
			for j := 0; j < kw; j++ {
				// One byte per word keeps the domain small enough that
				// the fuzzer finds duplicate keys quickly.
				key[j] = uint64(data[j])
			}
			data = data[kw:]
			keys = append(keys, key)
		}
		checkTableAgainstRef(t, kw, keys)
	})
}
