package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"rbpebble/internal/obs"
	"rbpebble/internal/service"
)

// handleDebugSolves merges the fleet's per-solve telemetry rings:
// GET /debug/solves?n=K fans out to every healthy member concurrently,
// annotates each record with the member that produced it, sorts the
// union newest-first, and truncates to K (all merged records when n is
// absent or non-positive). Totals are summed across the fleet, so the
// learned portfolio scheduler can bulk-pull one feature/outcome stream
// for the whole cluster.
func (p *Proxy) handleDebugSolves(w http.ResponseWriter, r *http.Request) {
	p.m.requests.Add(1)
	p.m.fanouts.Add(1)
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	members := healthyMembers(p.ring)

	merged := service.SolvesDebugResponse{Records: []obs.SolveRecord{}}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, member := range members {
		wg.Add(1)
		go func(member string) {
			defer wg.Done()
			part, err := p.fetchSolves(r.Context(), member, n)
			if err != nil {
				return
			}
			for i := range part.Records {
				part.Records[i].Node = member
			}
			mu.Lock()
			merged.Total += part.Total
			merged.Records = append(merged.Records, part.Records...)
			mu.Unlock()
		}(member)
	}
	wg.Wait()

	sort.SliceStable(merged.Records, func(i, j int) bool {
		return merged.Records[i].Start.After(merged.Records[j].Start)
	})
	if n > 0 && len(merged.Records) > n {
		merged.Records = merged.Records[:n]
	}
	writeJSON(w, merged)
}

// fetchSolves pulls one member's telemetry ring slice.
func (p *Proxy) fetchSolves(ctx context.Context, member string, n int) (service.SolvesDebugResponse, error) {
	path := "/debug/solves"
	if n > 0 {
		path += "?n=" + strconv.Itoa(n)
	}
	var out service.SolvesDebugResponse
	resp, err := p.comm.Get(ctx, member, path)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return out, errStatus(resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}

// handleDebugTrace resolves a trace ID anywhere in the fleet: the
// proxy's own span set (route/forward spans) is checked first, then
// the healthy members are asked in order and the first non-404 answer
// is relayed. A trace that spans proxy AND node exists as two span
// sets — one per process — under the same ID; callers fetch the node
// half via the relayed view and the proxy half stays queryable here
// after the node's ring evicts it.
func (p *Proxy) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	p.m.requests.Add(1)
	id := r.PathValue("id")
	if tr := p.recorder.Lookup(id); tr != nil {
		writeJSON(w, tr.View())
		return
	}
	p.m.fanouts.Add(1)
	for _, member := range healthyMembers(p.ring) {
		resp, err := p.comm.Get(r.Context(), member, "/debug/trace/"+id)
		if err != nil {
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		relayResponse(w, resp, member)
		return
	}
	httpError(w, http.StatusNotFound, "unknown trace on every cluster member")
}

// handleDebugJobSearch resolves an async job's live search telemetry
// anywhere in the fleet: job IDs carry a per-node random prefix, so the
// healthy members are simply asked in order and the first non-404
// answer wins. The owning node's name is stamped into the body (and the
// X-Rbproxy-Node header), so a dashboard polling a running job knows
// which member's gauges to watch.
func (p *Proxy) handleDebugJobSearch(w http.ResponseWriter, r *http.Request) {
	p.m.requests.Add(1)
	p.m.fanouts.Add(1)
	id := r.PathValue("id")
	for _, member := range healthyMembers(p.ring) {
		resp, err := p.comm.Get(r.Context(), member, "/debug/jobs/"+id+"/search")
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		var body service.SearchDebugResponse
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			continue
		}
		body.Node = member
		w.Header().Set("X-Rbproxy-Node", member)
		writeJSON(w, body)
		return
	}
	httpError(w, http.StatusNotFound, "unknown job on every cluster member")
}

// errStatus wraps a non-200 downstream status as an error.
type errStatus int

func (e errStatus) Error() string { return "status " + strconv.Itoa(int(e)) }
