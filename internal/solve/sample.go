package solve

import (
	"errors"
	"math/rand"

	"rbpebble/internal/dag"
	"rbpebble/internal/pebble"
	"rbpebble/internal/sched"
)

// RandomOrdersOptions configures the sampling heuristic.
type RandomOrdersOptions struct {
	// Samples is the number of random topological orders to try
	// (0 = 64).
	Samples int
	// Seed drives the sampling.
	Seed int64
	// InitialBound, if > 0, is a scaled cost the caller has already
	// achieved elsewhere: sampled orders are pruned against it (as well
	// as against the best sample so far), so samples that cannot beat
	// the caller's incumbent are abandoned mid-execution. The returned
	// solution may then be no better than the caller's — compare costs
	// as usual.
	InitialBound int64
}

// RandomOrders is a randomized heuristic for instances too large for the
// exact solvers: it samples random topological orders uniformly (random
// ready-node selection), executes each with Belady eviction, and keeps
// the cheapest verified pebbling. It also always evaluates the
// deterministic topological order, so it never loses to TopoBelady.
func RandomOrders(p Problem, opts RandomOrdersOptions) (Solution, error) {
	samples := opts.Samples
	if samples == 0 {
		samples = 64
	}
	best, err := TopoBelady(p)
	if err != nil {
		return Solution{}, err
	}
	bestCost := best.Result.Cost.Scaled(p.Model)
	rng := rand.New(rand.NewSource(opts.Seed))
	pruneAt := bestCost
	if opts.InitialBound > 0 && opts.InitialBound < pruneAt {
		pruneAt = opts.InitialBound
	}
	for s := 0; s < samples; s++ {
		order := randomTopoOrder(p.G, p.Convention, rng)
		// Budget-pruned execution: a sampled order is abandoned the
		// moment its partial cost exceeds the best complete one (or the
		// caller's incumbent), which is where most of the sampling time
		// goes on large DAGs.
		tr, res, err := sched.Execute(p.G, p.Model, p.R, p.Convention, order,
			sched.Options{Policy: sched.Belady, CostBudget: pruneAt})
		if err != nil {
			if errors.Is(err, sched.ErrCostBudget) {
				continue // provably not an improvement
			}
			return Solution{}, err
		}
		if c := res.Cost.Scaled(p.Model); c < bestCost {
			best, bestCost = Solution{Trace: tr, Result: res}, c
			if bestCost < pruneAt {
				pruneAt = bestCost
			}
		}
	}
	return best, nil
}

// randomTopoOrder returns a topological order chosen by repeatedly
// picking a uniformly random ready node (excluding sources under
// SourcesStartBlue).
func randomTopoOrder(g *dag.DAG, conv pebble.Convention, rng *rand.Rand) []dag.NodeID {
	n := g.N()
	indeg := make([]int, n)
	skip := make([]bool, n)
	for v := 0; v < n; v++ {
		indeg[v] = g.InDegree(dag.NodeID(v))
		if conv.SourcesStartBlue && g.IsSource(dag.NodeID(v)) {
			skip[v] = true
		}
	}
	if conv.SourcesStartBlue {
		for v := 0; v < n; v++ {
			if skip[v] {
				for _, w := range g.Succs(dag.NodeID(v)) {
					indeg[w]--
				}
			}
		}
	}
	var ready []dag.NodeID
	for v := 0; v < n; v++ {
		if !skip[v] && indeg[v] == 0 {
			ready = append(ready, dag.NodeID(v))
		}
	}
	order := make([]dag.NodeID, 0, n)
	for len(ready) > 0 {
		i := rng.Intn(len(ready))
		v := ready[i]
		ready[i] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, v)
		for _, w := range g.Succs(v) {
			indeg[w]--
			if indeg[w] == 0 && !skip[w] {
				ready = append(ready, w)
			}
		}
	}
	return order
}
