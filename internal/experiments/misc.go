package experiments

import (
	"fmt"

	"rbpebble/internal/dag"
	"rbpebble/internal/daggen"
	"rbpebble/internal/gadgets"
	"rbpebble/internal/pebble"
	"rbpebble/internal/sched"
	"rbpebble/internal/solve"
)

// exactOpts returns the harness-wide exact-solver options (the
// ExactParallelism and ExactSyncRounds knobs applied).
func exactOpts() solve.ExactOptions {
	opts := solve.ExactOptions{Parallel: ExactParallelism}
	if ExactSyncRounds {
		opts.ParallelAlgo = solve.ParallelSyncRounds
	}
	return opts
}

// NewGridInstance measures one row of the Theorem 4 table: whether greedy
// followed the misguided order, and the greedy/optimal cost ratio.
func NewGridInstance(l, kprime int) []string {
	gg := gadgets.NewGreedyGrid(l, kprime)
	p := solve.Problem{G: gg.G, Model: pebble.NewModel(pebble.Oneshot), R: gg.R()}
	order, err := solve.GreedyOrder(p, solve.MostRedInputs)
	if err != nil {
		panic(err)
	}
	// Did greedy follow the adversarial column order?
	tpos := gg.TargetPos()
	var visits []gadgets.GridPos
	for _, v := range order {
		if pos, ok := tpos[v]; ok {
			visits = append(visits, pos)
		}
	}
	followed := true
	want := gg.GreedyExpectedVisits()
	if len(visits) != len(want) {
		followed = false
	} else {
		for i := range want {
			if visits[i] != want[i] {
				followed = false
				break
			}
		}
	}
	greedy, err := solve.Greedy(p, solve.MostRedInputs)
	if err != nil {
		panic(err)
	}
	_, opt, err := sched.Execute(gg.G, p.Model, gg.R(), pebble.Convention{}, gg.VisitOrder(gg.OptimalVisits()), sched.Options{Policy: sched.Belady})
	if err != nil {
		panic(err)
	}
	return []string{
		itoa(kprime), itoa(gg.G.N()), btoa(followed),
		itoa(greedy.Result.Cost.Transfers), itoa(opt.Cost.Transfers),
		ftoa(float64(greedy.Result.Cost.Transfers) / float64(opt.Cost.Transfers)),
	}
}

// Lemma1Params configures the pebbling-length experiment.
type Lemma1Params struct {
	Seeds []int64
}

// DefaultLemma1Params samples a few random workloads.
func DefaultLemma1Params() Lemma1Params { return Lemma1Params{Seeds: []int64{1, 2, 3}} }

// Lemma1Length regenerates Lemma 1: optimal pebblings in oneshot, nodel
// and compcost consist of O(Δ·n) steps. We measure exact optima on small
// random DAGs and report steps/(Δ·n); the base model is excluded (no
// polynomial bound exists there).
func Lemma1Length(p Lemma1Params) *Report {
	rep := &Report{
		ID:     "Lemma 1",
		Title:  "Length of optimal pebblings",
		Claim:  "optimal pebblings have O(Δ·n) steps in oneshot, nodel, compcost",
		Header: []string{"workload", "model", "n", "Δ", "steps(opt)", "steps/Δn"},
	}
	maxRatio := 0.0
	for _, seed := range p.Seeds {
		g := daggen.RandomLayered(3, 3, 2, seed)
		n, delta := g.N(), g.MaxInDegree()
		for _, kind := range []pebble.ModelKind{pebble.Oneshot, pebble.NoDel, pebble.CompCost} {
			m := pebble.NewModel(kind)
			opt, err := solve.Exact(solve.Problem{G: g, Model: m, R: delta + 1}, exactOpts())
			if err != nil {
				panic(err)
			}
			ratio := float64(opt.Result.Steps) / float64(delta*n)
			if ratio > maxRatio {
				maxRatio = ratio
			}
			rep.Rows = append(rep.Rows, []string{
				fmt.Sprintf("layered(seed=%d)", seed), m.String(),
				itoa(n), itoa(delta), itoa(opt.Result.Steps), ftoa(ratio),
			})
		}
	}
	rep.Verdict = fmt.Sprintf("max measured steps/Δn = %.2f — a small constant, consistent with O(Δ·n)", maxRatio)
	return rep
}

// Conventions regenerates the Appendix C observation: alternative
// initial/final-state conventions shift the optimal cost by at most
// #sources (loads) / #sinks (stores), never asymptotically.
func Conventions() *Report {
	rep := &Report{
		ID:     "Appendix C",
		Title:  "Alternative starting/finishing conventions",
		Claim:  "requiring blue sinks adds ≤ #sinks; blue-start sources add ≤ #sources (after the single-source transform, exactly 1)",
		Header: []string{"workload", "convention", "opt", "shift", "bound"},
	}
	g := daggen.Pyramid(2)
	m := pebble.NewModel(pebble.Oneshot)
	r := 4
	base, err := solve.Exact(solve.Problem{G: g, Model: m, R: r}, exactOpts())
	if err != nil {
		panic(err)
	}
	rep.Rows = append(rep.Rows, []string{"pyramid(2)", "paper (free sources, any sink)", itoa(base.Result.Cost.Transfers), "0", "-"})

	blueSinks, err := solve.Exact(solve.Problem{G: g, Model: m, R: r,
		Convention: pebble.Convention{SinksMustBeBlue: true}}, exactOpts())
	if err != nil {
		panic(err)
	}
	rep.Rows = append(rep.Rows, []string{
		"pyramid(2)", "sinks must be blue",
		itoa(blueSinks.Result.Cost.Transfers),
		itoa(blueSinks.Result.Cost.Transfers - base.Result.Cost.Transfers),
		fmt.Sprintf("≤ %d sinks", len(g.Sinks())),
	})

	blueSources, err := solve.Exact(solve.Problem{G: g, Model: m, R: r,
		Convention: pebble.Convention{SourcesStartBlue: true}}, exactOpts())
	if err != nil {
		panic(err)
	}
	rep.Rows = append(rep.Rows, []string{
		"pyramid(2)", "sources start blue",
		itoa(blueSources.Result.Cost.Transfers),
		itoa(blueSources.Result.Cost.Transfers - base.Result.Cost.Transfers),
		fmt.Sprintf("≤ %d sources", len(g.Sources())),
	})

	// Single-source transform: the blue-start penalty collapses to 1.
	tg := g.Clone()
	gadgets.SingleSource(tg)
	single, err := solve.Exact(solve.Problem{G: tg, Model: m, R: r + 1,
		Convention: pebble.Convention{SourcesStartBlue: true}}, exactOpts())
	if err != nil {
		panic(err)
	}
	rep.Rows = append(rep.Rows, []string{
		"pyramid(2)+s0", "sources start blue, single source",
		itoa(single.Result.Cost.Transfers),
		itoa(single.Result.Cost.Transfers - base.Result.Cost.Transfers),
		"≤ 1",
	})
	rep.Verdict = "every shift within its bound — the conventions are cost-equivalent up to lower-order terms"
	return rep
}

// AblationEviction compares the eviction policies inside a fixed compute
// order across workloads (the sched-layer design choice).
func AblationEviction() *Report {
	rep := &Report{
		ID:     "Ablation A",
		Title:  "Eviction policy within a fixed topological order",
		Claim:  "(design choice) Belady ≤ LRU/FIFO/Random ≤ naive store-all ≤ (2Δ+1)n",
		Header: []string{"workload", "R", "belady", "lru", "fifo", "random", "store-all", "(2Δ+1)n"},
	}
	for _, w := range []struct {
		name string
		g    *dag.DAG
	}{
		{"fft(4)", daggen.FFT(4)},
		{"pyramid(6)", daggen.Pyramid(6)},
		{"grid(6x6)", daggen.Grid(6, 6)},
		{"matmul(3)", daggen.MatMul(3)},
	} {
		g := w.g
		r := pebble.MinFeasibleR(g) + 2
		order, err := g.TopoOrder()
		if err != nil {
			panic(err)
		}
		row := []string{w.name, itoa(r)}
		for _, pol := range []sched.Policy{sched.Belady, sched.LRU, sched.FIFO, sched.Random, sched.EvictAllStore} {
			_, res, err := sched.Execute(g, pebble.NewModel(pebble.Oneshot), r, pebble.Convention{}, order, sched.Options{Policy: pol, Seed: 7})
			if err != nil {
				panic(err)
			}
			row = append(row, itoa(res.Cost.Transfers))
		}
		row = append(row, itoa((2*g.MaxInDegree()+1)*g.N()))
		rep.Rows = append(rep.Rows, row)
	}
	rep.Verdict = "Belady dominates on every workload; all policies respect the universal bound"
	return rep
}

// AblationExactPruning measures the exact solver's search reductions:
// the optimum with the S-partition bound (the default), the PR 1
// single-certificate bound, with pruning disabled, and with the
// heuristic off (plain Dijkstra, the seed behavior) — the costs must
// coincide while the expanded-state counts quantify each reduction.
// The pyramid(5) R=Δ+1 row is the S-partition bound's design target:
// the regime where the PR 1 bound reached only ~2x over Dijkstra.
func AblationExactPruning() *Report {
	rep := &Report{
		ID:     "Ablation B",
		Title:  "Exact solver pruning and A* lower-bound tiers (oneshot)",
		Claim:  "(design choice) pruning and the admissible bound tiers preserve the optimum while shrinking the search; the S-partition tier closes the pyramid R=Δ+1 gap",
		Header: []string{"workload", "opt", "equal", "states(spart)", "states(lb)", "states(no-prune)", "states(dijkstra)", "lb/spart", "dijkstra/spart"},
	}
	igDAG, _, _ := daggen.InputGroups(2, 2)
	for _, w := range []struct {
		name string
		g    *dag.DAG
	}{
		{"pyramid(2)", daggen.Pyramid(2)},
		{"layered(3,3)", daggen.RandomLayered(3, 3, 2, 1)},
		{"groups(2,2)", igDAG},
		{"pyramid(5) R=Δ+1", daggen.Pyramid(5)},
	} {
		g := w.g
		r := pebble.MinFeasibleR(g)
		p := solve.Problem{G: g, Model: pebble.NewModel(pebble.Oneshot), R: r}
		// All solves run serially regardless of ExactParallelism:
		// batched parallel expansion overshoots the cost frontier, which
		// would corrupt the states-expanded comparison.
		var sp, sl, sb, sd solve.ExactStats
		a, err := solve.Exact(p, solve.ExactOptions{Heuristic: solve.HeuristicSPartition, Stats: &sp})
		if err != nil {
			panic(err)
		}
		l, err := solve.Exact(p, solve.ExactOptions{Heuristic: solve.HeuristicLowerBound, Stats: &sl})
		if err != nil {
			panic(err)
		}
		b, err := solve.Exact(p, solve.ExactOptions{DisablePruning: true, Stats: &sb})
		if err != nil {
			panic(err)
		}
		d, err := solve.Exact(p, solve.ExactOptions{Heuristic: solve.HeuristicOff, Stats: &sd})
		if err != nil {
			panic(err)
		}
		equal := a.Result.Cost.Transfers == b.Result.Cost.Transfers &&
			a.Result.Cost.Transfers == d.Result.Cost.Transfers &&
			a.Result.Cost.Transfers == l.Result.Cost.Transfers
		rep.Rows = append(rep.Rows, []string{
			w.name, itoa(a.Result.Cost.Transfers), btoa(equal),
			itoa(sp.Expanded), itoa(sl.Expanded), itoa(sb.Expanded), itoa(sd.Expanded),
			ftoa(float64(sl.Expanded) / float64(max(sp.Expanded, 1))),
			ftoa(float64(sd.Expanded) / float64(max(sp.Expanded, 1))),
		})
	}
	rep.Verdict = "identical optima across all solver configurations; the S-partition tier expands >=3x fewer states than the PR 1 bound on pyramid at R=Δ+1"
	return rep
}

// AblationGreedyRules compares the three §8 greedy tie-breaking rules on
// neutral workloads (where indegrees differ, the rules can diverge).
func AblationGreedyRules() *Report {
	rep := &Report{
		ID:     "Ablation C",
		Title:  "Greedy rule variants (§8)",
		Claim:  "(design choice) the three rules coincide on uniform-indegree DAGs and stay within the universal bound elsewhere",
		Header: []string{"workload", "most-red", "fewest-blue", "red-ratio"},
	}
	for _, w := range []struct {
		name string
		g    *dag.DAG
	}{
		{"fft(3)", daggen.FFT(3)},
		{"stencil(8,4)", daggen.Stencil1D(8, 4)},
		{"layered(4,5)", daggen.RandomLayered(4, 5, 3, 9)},
	} {
		g := w.g
		r := pebble.MinFeasibleR(g) + 1
		row := []string{w.name}
		for _, rule := range solve.AllGreedyRules() {
			sol, err := solve.Greedy(solve.Problem{G: g, Model: pebble.NewModel(pebble.Oneshot), R: r}, rule)
			if err != nil {
				panic(err)
			}
			row = append(row, itoa(sol.Result.Cost.Transfers))
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Verdict = "rule choice shifts cost only modestly on neutral workloads; the Theorem 4 grid defeats all three identically"
	return rep
}
