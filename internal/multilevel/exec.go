package multilevel

import (
	"fmt"
	"sort"

	"rbpebble/internal/dag"
)

// Result summarizes an executed multilevel pebbling.
type Result struct {
	Cost     int
	Steps    int
	Complete bool
	// TransfersPerLink[i] counts the moves across the level i <-> i+1
	// link (promotes + demotes).
	TransfersPerLink []int
}

// Execute pebbles g by computing the nodes in the given topological
// order, managing placement with a Belady-style policy generalized to
// the hierarchy: inputs are promoted level by level to level 0; when a
// bounded level is full, the resident with the furthest next use is
// demoted one level (values with no remaining use are deleted for
// free). The returned moves are replayed through the legality checker
// before the result is reported.
func Execute(g *dag.DAG, h Hierarchy, order []dag.NodeID, oneshot bool) ([]Move, Result, error) {
	st, err := NewState(g, h, oneshot)
	if err != nil {
		return nil, Result{}, err
	}
	n := g.N()
	if err := checkOrder(g, order); err != nil {
		return nil, Result{}, err
	}

	// Next-use machinery (as in the two-level scheduler).
	pos := make([]int, n)
	for v := range pos {
		pos[v] = -1
	}
	for i, v := range order {
		pos[v] = i
	}
	uses := make([][]int, n)
	for u := 0; u < n; u++ {
		for _, w := range g.Succs(dag.NodeID(u)) {
			if pos[w] >= 0 {
				uses[u] = append(uses[u], pos[w])
			}
		}
		sort.Ints(uses[u])
	}
	useIdx := make([]int, n)
	const never = int(^uint(0) >> 1)
	nextUse := func(u, now int) int {
		for useIdx[u] < len(uses[u]) && uses[u][useIdx[u]] <= now {
			useIdx[u]++
		}
		if useIdx[u] < len(uses[u]) {
			return uses[u][useIdx[u]]
		}
		return never
	}
	live := func(u, now int) bool {
		return nextUse(u, now) != never || g.IsSink(dag.NodeID(u))
	}

	var moves []Move
	apply := func(m Move) error {
		if err := st.Apply(m); err != nil {
			return err
		}
		moves = append(moves, m)
		return nil
	}

	// freeSlot ensures bounded level lv has room, demoting (or deleting)
	// the furthest-next-use unpinned resident; demotion may cascade.
	var freeSlot func(lv, now int, pinned map[int]bool) error
	freeSlot = func(lv, now int, pinned map[int]bool) error {
		if lv >= len(h.Limits) || st.counts[lv] < h.Limits[lv] {
			return nil
		}
		victim, victimUse := -1, -2
		for v := 0; v < n; v++ {
			if int(st.level[v]) != lv || pinned[v] {
				continue
			}
			nu := nextUse(v, now)
			score := nu
			if nu == never && !g.IsSink(dag.NodeID(v)) {
				score = never // dead first
			} else if nu == never {
				score = never - 1
			}
			if score > victimUse {
				victim, victimUse = v, score
			}
		}
		if victim < 0 {
			return fmt.Errorf("multilevel: level %d full of pinned values", lv)
		}
		if !live(victim, now) {
			return apply(Move{Kind: Delete, Node: dag.NodeID(victim)})
		}
		if err := freeSlot(lv+1, now, pinned); err != nil {
			return err
		}
		return apply(Move{Kind: Demote, Node: dag.NodeID(victim), Level: lv})
	}

	// raise promotes u from its current level to level 0.
	raise := func(u int, now int, pinned map[int]bool) error {
		for int(st.level[u]) > 0 {
			target := int(st.level[u]) - 1
			if err := freeSlot(target, now, pinned); err != nil {
				return err
			}
			if err := apply(Move{Kind: Promote, Node: dag.NodeID(u), Level: target}); err != nil {
				return err
			}
		}
		return nil
	}

	for i, v := range order {
		preds := g.Preds(v)
		pinned := make(map[int]bool, len(preds)+1)
		for _, u := range preds {
			pinned[int(u)] = true
		}
		for _, u := range g.SortedPreds(v) {
			if st.level[u] == NoPebble {
				return nil, Result{}, fmt.Errorf("multilevel: input %d of %d lost (order position %d)", u, v, i)
			}
			if err := raise(int(u), i, pinned); err != nil {
				return nil, Result{}, err
			}
		}
		if err := freeSlot(0, i, pinned); err != nil {
			return nil, Result{}, err
		}
		if err := apply(Move{Kind: Compute, Node: v}); err != nil {
			return nil, Result{}, err
		}
	}

	res, err := Replay(g, h, moves, oneshot)
	if err != nil {
		return nil, Result{}, fmt.Errorf("multilevel: self-verification failed: %w", err)
	}
	return moves, res, nil
}

// Replay validates a move sequence from scratch and returns its result.
func Replay(g *dag.DAG, h Hierarchy, moves []Move, oneshot bool) (Result, error) {
	st, err := NewState(g, h, oneshot)
	if err != nil {
		return Result{}, err
	}
	perLink := make([]int, len(h.Limits))
	for i, m := range moves {
		if err := st.Apply(m); err != nil {
			return Result{}, fmt.Errorf("move %d: %w", i, err)
		}
		if m.Kind == Promote || m.Kind == Demote {
			perLink[m.Level]++
		}
	}
	res := Result{
		Cost:             st.Cost(),
		Steps:            st.Steps(),
		Complete:         st.Complete(),
		TransfersPerLink: perLink,
	}
	if !res.Complete {
		return res, fmt.Errorf("multilevel: pebbling incomplete")
	}
	return res, nil
}

func checkOrder(g *dag.DAG, order []dag.NodeID) error {
	n := g.N()
	posOf := make([]int, n)
	for i := range posOf {
		posOf[i] = -1
	}
	for i, v := range order {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("multilevel: order contains out-of-range node %d", v)
		}
		if posOf[v] >= 0 {
			return fmt.Errorf("multilevel: order contains node %d twice", v)
		}
		posOf[v] = i
	}
	for v := 0; v < n; v++ {
		if posOf[v] < 0 {
			return fmt.Errorf("multilevel: order missing node %d", v)
		}
		for _, u := range g.Preds(dag.NodeID(v)) {
			if posOf[u] > posOf[v] {
				return fmt.Errorf("multilevel: order violates edge %d->%d", u, v)
			}
		}
	}
	return nil
}
