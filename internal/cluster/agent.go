package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rbpebble/internal/instcache"
)

// AgentConfig tunes a node-side membership Agent.
type AgentConfig struct {
	// Proxy is the rbproxy address (host:port) running the membership
	// API.
	Proxy string
	// Self is the address this node advertises: the host:port other
	// cluster participants reach it at.
	Self string
	// Export snapshots this node's cache for the drain handoff
	// (typically service.Server.ExportCache).
	Export func() []instcache.Entry
	// Comm performs the agent's calls (default: a fresh CommClient with
	// 5s attempt timeouts — membership traffic is small and latency-
	// sensitive).
	Comm *CommClient
	// RejoinInterval is the heartbeat cadence before the first
	// successful join reports the real lease (default 2s). After a
	// successful join the agent renews at TTL/3.
	RejoinInterval time.Duration
	// Logf, when set, receives agent lifecycle logs.
	Logf func(format string, args ...any)
}

// Agent is the rbserve side of dynamic membership: it registers the
// node with the proxy, renews the lease on a heartbeat (TTL/3), flags
// the drain during SIGTERM, pushes the cache export to the proxy for
// handoff, replicates freshly stored entries, and says goodbye with
// /cluster/leave. Create with NewAgent, stop with Stop.
type Agent struct {
	cfg      AgentConfig
	comm     *CommClient
	draining atomic.Bool

	// ring mirrors the proxy's consistent-hash ring, rebuilt from each
	// join response's member list. It backs Owns — the background
	// refiner's ownership filter — so a node only spends idle cycles on
	// keys it would be routed anyway. ringSig detects membership churn
	// cheaply between heartbeats.
	ring    atomic.Pointer[Ring]
	ringSig atomic.Pointer[string]

	stop chan struct{}
	kick chan struct{} // forces an immediate heartbeat (drain announcement)
	wg   sync.WaitGroup
	once sync.Once
}

// NewAgent returns a started Agent (heartbeat loop runs until Stop).
func NewAgent(cfg AgentConfig) *Agent {
	if cfg.Comm == nil {
		cfg.Comm = NewComm(CommConfig{AttemptTimeout: 5 * time.Second})
	}
	if cfg.RejoinInterval <= 0 {
		cfg.RejoinInterval = 2 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	a := &Agent{cfg: cfg, comm: cfg.Comm, stop: make(chan struct{}), kick: make(chan struct{}, 1)}
	a.wg.Add(1)
	go a.loop()
	return a
}

func (a *Agent) loop() {
	defer a.wg.Done()
	interval := a.cfg.RejoinInterval
	for {
		if ttl, err := a.join(context.Background()); err != nil {
			a.cfg.Logf("cluster agent: join %s: %v", a.cfg.Proxy, err)
			interval = a.cfg.RejoinInterval
		} else if ttl > 0 {
			interval = ttl / 3
		}
		t := time.NewTimer(interval)
		select {
		case <-a.stop:
			t.Stop()
			return
		case <-a.kick:
			t.Stop()
		case <-t.C:
		}
	}
}

// join registers/renews once and returns the proxy's lease TTL.
func (a *Agent) join(ctx context.Context) (time.Duration, error) {
	body, _ := json.Marshal(map[string]any{"member": a.cfg.Self, "draining": a.draining.Load()})
	resp, err := a.comm.Post(ctx, a.cfg.Proxy, "/cluster/join", "application/json", body)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, fmt.Errorf("join status %d", resp.StatusCode)
	}
	var jr JoinResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		return 0, err
	}
	a.updateRing(jr)
	return time.Duration(jr.TTLMS) * time.Millisecond, nil
}

// updateRing rebuilds the local ring mirror when the join response's
// member list changed (sorted-list signature comparison: membership
// churn is rare, heartbeats are not).
func (a *Agent) updateRing(jr JoinResponse) {
	if len(jr.MemberList) == 0 {
		return // old proxy without the list: keep whatever we have
	}
	members := append([]string(nil), jr.MemberList...)
	sort.Strings(members)
	sig := strconv.Itoa(jr.VNodes) + "|" + strings.Join(members, ",")
	if old := a.ringSig.Load(); old != nil && *old == sig {
		return
	}
	a.ring.Store(NewRing(jr.VNodes, members...))
	a.ringSig.Store(&sig)
	a.cfg.Logf("cluster agent: ring mirror updated (%d members)", len(members))
}

// Owns reports whether this node is the first ring owner of key — the
// background refiner's ownership filter. Before the first join
// response carrying a member list, every key is owned: a solo or
// just-started node refines everything rather than nothing.
func (a *Agent) Owns(key string) bool {
	r := a.ring.Load()
	if r == nil {
		return true
	}
	owners := r.Owners(key, 1)
	return len(owners) == 0 || owners[0] == a.cfg.Self
}

// SetDraining flips the drain flag and fires an immediate heartbeat so
// the proxy learns about the drain now, not at the next renewal or
// probe.
func (a *Agent) SetDraining(d bool) {
	a.draining.Store(d)
	select {
	case a.kick <- struct{}{}:
	default:
	}
}

// Handoff exports this node's cache and pushes it to the proxy, which
// routes every entry to the ring owner that will serve its key after
// this node is gone. Returns the number of entries sent.
func (a *Agent) Handoff(ctx context.Context) (int, error) {
	if a.cfg.Export == nil {
		return 0, nil
	}
	entries := a.cfg.Export()
	if len(entries) == 0 {
		return 0, nil
	}
	body, err := json.Marshal(ImportPayload{From: a.cfg.Self, Entries: entries})
	if err != nil {
		return 0, err
	}
	resp, err := a.comm.Post(ctx, a.cfg.Proxy, "/cluster/handoff", "application/json", body)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("handoff status %d", resp.StatusCode)
	}
	return len(entries), nil
}

// Replicate asynchronously pushes one freshly stored cache entry to
// the proxy, which forwards it to the key's next ring owner — the
// crash-safety path for proven-optimal (and tightened-interval)
// entries. Fire-and-forget: replication is an optimization, never a
// dependency of the serving path.
func (a *Agent) Replicate(e instcache.Entry) {
	select {
	case <-a.stop:
		return // agent stopped: drop silently
	default:
	}
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		body, err := json.Marshal(ImportPayload{From: a.cfg.Self, Entries: []instcache.Entry{e}})
		if err != nil {
			return
		}
		resp, err := a.comm.Post(ctx, a.cfg.Proxy, "/cluster/replicate", "application/json", body)
		if err != nil {
			a.cfg.Logf("cluster agent: replicate: %v", err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
}

// Leave deregisters the node (the final step of a graceful shutdown,
// after the handoff).
func (a *Agent) Leave(ctx context.Context) error {
	body, _ := json.Marshal(map[string]string{"member": a.cfg.Self})
	resp, err := a.comm.Post(ctx, a.cfg.Proxy, "/cluster/leave", "application/json", body)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return nil
}

// Stop ends the heartbeat loop and waits for in-flight replications.
func (a *Agent) Stop() {
	a.once.Do(func() { close(a.stop) })
	a.wg.Wait()
}
