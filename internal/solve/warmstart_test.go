package solve

import (
	"errors"
	"testing"

	"rbpebble/internal/daggen"
	"rbpebble/internal/pebble"
)

// TestExactPruneBoundKeepsOptimum: pruning f >= incumbent+1 (the
// warm-start refinement setting) must still find and prove the exact
// optimum, with no more expansions than the unpruned search.
func TestExactPruneBoundKeepsOptimum(t *testing.T) {
	g := daggen.Pyramid(4)
	p := prob(g, pebble.Oneshot, 3)
	var base ExactStats
	ref, err := Exact(p, ExactOptions{Stats: &base})
	if err != nil {
		t.Fatal(err)
	}
	opt := ref.Result.Cost.Scaled(p.Model)

	var pruned ExactStats
	sol, err := Exact(p, ExactOptions{PruneBound: opt + 1, Stats: &pruned})
	if err != nil {
		t.Fatalf("prune bound %d: %v", opt+1, err)
	}
	if got := sol.Result.Cost.Scaled(p.Model); got != opt {
		t.Fatalf("pruned optimum %d != %d", got, opt)
	}
	if pruned.Expanded > base.Expanded {
		t.Fatalf("pruning expanded more states (%d > %d)", pruned.Expanded, base.Expanded)
	}
}

// TestExactPruneBoundExhaustionCertifies: with PruneBound at exactly
// the optimum the search must exhaust and return ErrBoundExhausted with
// LowerBound == PruneBound — the certificate a warm-started refinement
// uses to prove a cached incumbent optimal.
func TestExactPruneBoundExhaustionCertifies(t *testing.T) {
	g := daggen.Pyramid(4)
	p := prob(g, pebble.Oneshot, 3)
	ref, err := Exact(p, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opt := ref.Result.Cost.Scaled(p.Model)

	var s ExactStats
	_, err = Exact(p, ExactOptions{PruneBound: opt, Stats: &s})
	if !errors.Is(err, ErrBoundExhausted) {
		t.Fatalf("err = %v, want ErrBoundExhausted", err)
	}
	if s.LowerBound != opt {
		t.Fatalf("LowerBound = %d, want %d", s.LowerBound, opt)
	}
}

// TestExactInitialLowerBoundSeedsCertificate: a caller-certified floor
// must survive into the harvested LowerBound even when the search is
// cut before it could prove anything on its own.
func TestExactInitialLowerBoundSeedsCertificate(t *testing.T) {
	g := daggen.Pyramid(4)
	p := prob(g, pebble.Oneshot, 3)
	ref, err := Exact(p, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opt := ref.Result.Cost.Scaled(p.Model)

	var s ExactStats
	_, err = Exact(p, ExactOptions{MaxStates: 1, InitialLowerBound: opt, Stats: &s})
	if !errors.Is(err, ErrStateLimit) {
		t.Fatalf("err = %v, want ErrStateLimit", err)
	}
	if s.LowerBound < opt {
		t.Fatalf("LowerBound = %d, want >= seeded %d", s.LowerBound, opt)
	}
}

// TestExactDFSInitialLowerBoundSkipsPasses: seeding IDA* with a
// certified floor at the optimum must collapse the threshold schedule
// to a single pass while preserving the proven optimum.
func TestExactDFSInitialLowerBoundSkipsPasses(t *testing.T) {
	g := daggen.Pyramid(5)
	p := prob(g, pebble.Oneshot, 4)
	var base ExactDFSStats
	ref, err := ExactDFS(p, ExactDFSOptions{Stats: &base})
	if err != nil {
		t.Fatal(err)
	}
	opt := ref.Result.Cost.Scaled(p.Model)
	if base.Iterations <= 1 {
		t.Fatalf("baseline ran %d iterations; instance too easy to show pass skipping", base.Iterations)
	}

	var warm ExactDFSStats
	sol, err := ExactDFS(p, ExactDFSOptions{InitialLowerBound: opt, Stats: &warm})
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Result.Cost.Scaled(p.Model); got != opt {
		t.Fatalf("warm optimum %d != %d", got, opt)
	}
	if warm.Iterations != 1 {
		t.Fatalf("warm-seeded IDA* ran %d passes, want 1", warm.Iterations)
	}
	if warm.LowerBound != opt {
		t.Fatalf("warm LowerBound = %d, want %d", warm.LowerBound, opt)
	}
}

// TestExactDFSInitialLowerBoundPartialFloor: a floor strictly between
// the root estimate and the optimum is also honored (the realistic
// warm-start case: the previous request's interval had not closed).
func TestExactDFSInitialLowerBoundPartialFloor(t *testing.T) {
	g := daggen.Pyramid(5)
	p := prob(g, pebble.Oneshot, 4)
	ref, err := ExactDFS(p, ExactDFSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opt := ref.Result.Cost.Scaled(p.Model)
	if opt < 2 {
		t.Skip("optimum too small for a partial floor")
	}
	var warm ExactDFSStats
	sol, err := ExactDFS(p, ExactDFSOptions{InitialLowerBound: opt - 1, Stats: &warm})
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Result.Cost.Scaled(p.Model); got != opt {
		t.Fatalf("warm optimum %d != %d", got, opt)
	}
	if warm.LowerBound != opt {
		t.Fatalf("warm LowerBound = %d, want %d", warm.LowerBound, opt)
	}
}
