package dag

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

// TestReadTextNeverPanics feeds the parser random garbage, mutated valid
// inputs, and truncations: it must return an error or a valid DAG, never
// panic, for every input.
func TestReadTextNeverPanics(t *testing.T) {
	valid := "nodes 5\nlabel 0 src\nedge 0 1\nedge 1 2\nedge 2 3\nedge 3 4\n"
	rng := rand.New(rand.NewSource(99))
	inputs := []string{valid, "", "\n\n\n", "nodes", "nodes x", "nodes 99999999999999999999"}
	// Random mutations of the valid input.
	for i := 0; i < 200; i++ {
		b := []byte(valid)
		for k := 0; k < 1+rng.Intn(5); k++ {
			switch rng.Intn(3) {
			case 0: // flip a byte
				b[rng.Intn(len(b))] = byte(rng.Intn(256))
			case 1: // truncate
				b = b[:rng.Intn(len(b)+1)]
				if len(b) == 0 {
					b = []byte{'n'}
				}
			case 2: // duplicate a chunk
				p := rng.Intn(len(b))
				b = append(b[:p], append([]byte(valid[:rng.Intn(len(valid))]), b[p:]...)...)
			}
		}
		inputs = append(inputs, string(b))
	}
	// Pure random bytes.
	for i := 0; i < 100; i++ {
		b := make([]byte, rng.Intn(200))
		rng.Read(b)
		inputs = append(inputs, string(b))
	}
	for _, in := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ReadText panicked on %q: %v", in, r)
				}
			}()
			g, err := ReadText(strings.NewReader(in))
			if err == nil {
				// Anything accepted must be a valid DAG that round-trips.
				if verr := g.Validate(); verr != nil {
					t.Fatalf("accepted invalid DAG from %q: %v", in, verr)
				}
				var buf bytes.Buffer
				if werr := g.WriteText(&buf); werr != nil {
					t.Fatalf("re-serialize failed: %v", werr)
				}
			}
		}()
	}
}

// TestUnmarshalJSONNeverPanics does the same for the JSON decoder.
func TestUnmarshalJSONNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	valid := `{"nodes":4,"edges":[[0,1],[1,2],[2,3]]}`
	inputs := []string{valid, "{}", "null", "[]", `{"nodes":-1}`,
		`{"nodes":2,"edges":[[0]]}`, `{"nodes":2,"edges":[[0,1,2]]}`,
		`{"nodes":1,"labels":["a","b"]}`}
	for i := 0; i < 150; i++ {
		b := []byte(valid)
		for k := 0; k < 1+rng.Intn(4); k++ {
			b[rng.Intn(len(b))] = byte(rng.Intn(128))
		}
		inputs = append(inputs, string(b))
	}
	for _, in := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("UnmarshalJSON panicked on %q: %v", in, r)
				}
			}()
			var g DAG
			if err := json.Unmarshal([]byte(in), &g); err == nil {
				if verr := g.Validate(); verr != nil {
					t.Fatalf("accepted invalid DAG from %q: %v", in, verr)
				}
			}
		}()
	}
}
