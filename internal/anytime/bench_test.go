package anytime

import (
	"context"
	"testing"
	"time"

	"rbpebble/internal/benchharness"
	"rbpebble/internal/daggen"
	"rbpebble/internal/pebble"
	"rbpebble/internal/solve"
)

// Anytime orchestration benchmarks. The deadline rows measure the
// certified interval a fixed budget buys on an instance too hard to
// close (fft(3) R=3: seconds of exact search), so their interesting
// outputs are upper/lower/optimal rather than ns/op (which tracks the
// deadline by construction). The full-budget rows measure orchestration
// overhead against the bare exact engine on instances it closes fast.
//
// Refresh the repo-root artifact together with the solver suite:
//
//	go test ./internal/solve ./internal/anytime -p 1 -bench . -benchtime 1x -benchjson "$PWD"/BENCH_solver.json

func TestMain(m *testing.M) { benchharness.Main(m) }

func benchAnytime(b *testing.B, p solve.Problem, opts Options) {
	b.Helper()
	b.ReportAllocs()
	m0 := benchharness.Before()
	var res Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = Solve(context.Background(), p, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.UpperScaled), "upper/op")
	b.ReportMetric(float64(res.LowerScaled), "lower/op")
	benchharness.Capture(b, m0, benchharness.Record{
		UpperScaled:    res.UpperScaled,
		LowerScaled:    res.LowerScaled,
		Optimal:        res.Optimal,
		StatesExpanded: res.Expanded,
		Visits:         res.Visits,
	})
}

// Deadline rows: the gap-vs-budget curve on the hard instance.

func BenchmarkAnytimeFFT3R3Deadline20ms(b *testing.B) {
	benchAnytime(b, solve.Problem{G: daggen.FFT(3), Model: pebble.NewModel(pebble.Oneshot), R: 3},
		Options{Budget: 20 * time.Millisecond})
}

func BenchmarkAnytimeFFT3R3Deadline100ms(b *testing.B) {
	benchAnytime(b, solve.Problem{G: daggen.FFT(3), Model: pebble.NewModel(pebble.Oneshot), R: 3},
		Options{Budget: 100 * time.Millisecond})
}

// Full-budget rows: orchestration overhead on instances the engines
// close (compare BenchmarkExactAStarPyramid5R4 in internal/solve).

func BenchmarkAnytimePyramid5R4Full(b *testing.B) {
	benchAnytime(b, solve.Problem{G: daggen.Pyramid(5), Model: pebble.NewModel(pebble.Oneshot), R: 4},
		Options{})
}

func BenchmarkAnytimeGrid44R3Full(b *testing.B) {
	benchAnytime(b, solve.Problem{G: daggen.Grid(4, 4), Model: pebble.NewModel(pebble.Oneshot), R: 3},
		Options{})
}

// BenchmarkIntervalConvergenceFFT3R3 measures what the interval cache
// buys across requests: two 300ms deadline-limited solves of fft(3)
// R=3, the second warm-started from the first's certified interval
// (exactly what rbserve's interval cache does between repeated
// requests). The recorded gap_first_solve / gap_second_solve pair is
// the convergence row; the committed interval is the merged (tightest)
// one, as the cache would store it.
func BenchmarkIntervalConvergenceFFT3R3(b *testing.B) {
	p := solve.Problem{G: daggen.FFT(3), Model: pebble.NewModel(pebble.Oneshot), R: 3}
	b.ReportAllocs()
	m0 := benchharness.Before()
	var first, second Result
	for i := 0; i < b.N; i++ {
		var err error
		first, err = Solve(context.Background(), p, Options{Budget: 300 * time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		second, err = Solve(context.Background(), p, Options{
			Budget: 300 * time.Millisecond,
			Warm: &WarmStart{
				Moves:       first.Solution.Trace.Moves,
				LowerScaled: first.LowerScaled,
				Source:      "cache:" + first.Source,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	// Merge as the interval cache does: the tightest certified ends.
	upper, lower := second.UpperScaled, second.LowerScaled
	if first.UpperScaled < upper {
		upper = first.UpperScaled
	}
	if first.LowerScaled > lower {
		lower = first.LowerScaled
	}
	b.ReportMetric(first.Gap(), "gap1/op")
	b.ReportMetric(Gap(upper, lower), "gap2/op")
	benchharness.Capture(b, m0, benchharness.Record{
		UpperScaled: upper,
		LowerScaled: lower,
		Optimal:     lower >= upper,
		GapFirst:    first.Gap(),
		GapSecond:   Gap(upper, lower),
	})
}
