package solve

import (
	"errors"
	"fmt"
	"math/bits"
	"time"

	"rbpebble/internal/bitset"
	"rbpebble/internal/dag"
	"rbpebble/internal/pebble"
)

// ErrStateLimit is returned by Exact when the search exceeds
// ExactOptions.MaxStates before proving an optimum.
var ErrStateLimit = errors.New("solve: state limit exceeded")

// ErrCanceled is returned by the exact solvers when their Cancel channel
// fires before the optimum is proven. The Stats snapshot (including the
// certified LowerBound harvested from the open frontier) is still
// filled, so anytime callers can salvage the partial certificate.
var ErrCanceled = errors.New("solve: search canceled")

// ErrBoundExhausted is returned by the serial and async exact engines
// when ExactOptions.PruneBound is set and the search space is exhausted
// without finding any completion below the bound. It is a POSITIVE
// certificate: the optimum is at least PruneBound, and Stats.LowerBound
// reflects that — a warm-started refinement seeing this error has just
// proven its cached incumbent optimal.
var ErrBoundExhausted = errors.New("solve: bound exhausted")

// ErrMemoryBudget is returned by the exact engines when their
// visited-state tables outgrow ExactOptions.MaxTableBytes (or the DFS
// equivalent) before the optimum is proven. Like ErrCanceled, the Stats
// snapshot is filled with the certified LowerBound harvested when the
// budget tripped, so anytime callers degrade to a certified partial
// interval instead of OOMing the process.
var ErrMemoryBudget = errors.New("solve: table memory budget exceeded")

// ExactOptions configures the exact solver.
type ExactOptions struct {
	// MaxStates caps the number of expanded states (0 means the default
	// of 2,000,000). The search fails with ErrStateLimit beyond it.
	MaxStates int
	// MaxTableBytes caps the visited-state tables' backing-store
	// footprint (probe slots plus arena capacity, summed over parallel
	// shards; 0 = unlimited). Growth past the budget aborts the search
	// with ErrMemoryBudget, with Stats filled — including the certified
	// LowerBound — so callers harvest a partial certificate instead of
	// letting the search OOM the process. Enforcement is periodic (the
	// engines check at their cancellation gates), so the real peak can
	// overshoot the budget by one gate interval's growth.
	MaxTableBytes int64
	// DisablePruning turns off the safe dominance prunes (for the
	// ablation benchmark; the result is identical, only slower).
	DisablePruning bool
	// Heuristic selects the A* lower bound. The zero value
	// (HeuristicAuto) enables the admissible model-aware bound;
	// HeuristicOff reverts to plain Dijkstra. Either way the returned
	// cost is the exact optimum.
	Heuristic Heuristic
	// InitialLowerBound, if > 0, is a lower bound on the optimal scaled
	// cost that the CALLER has already certified (e.g. a cached interval
	// from an earlier deadline-limited solve of the same instance). The
	// serial and async engines seed their running frontier certificate
	// with it, so a canceled search never reports a LowerBound below
	// what was already proven, and IDA*-style callers can skip threshold
	// passes below it. Passing an uncertified value breaks the
	// LowerBound contract — the search itself stays correct, but the
	// reported bound would lie.
	InitialLowerBound int64
	// PruneBound, if > 0, is an exclusive upper bound on interesting
	// completions: the serial and async engines discard every generated
	// state whose f = g + h reaches it. With an admissible heuristic any
	// completion cheaper than PruneBound keeps all its prefix states
	// strictly below the bound, so the optimum is still found whenever
	// it is cheaper than PruneBound. Callers set it to incumbent+1
	// (warm-started refinement from a cached trace) so equal-cost optima
	// are still discovered and proven. In the async engine the bound is
	// enforced at proposal enqueue, at relaxation and at expansion, and
	// exhaustion under it yields the same ErrBoundExhausted certificate
	// as the serial engine. The synchronous-rounds ablation engine
	// ignores it (pruning is only a speedup; correctness never depends
	// on it).
	PruneBound int64
	// Parallel, when > 1, expands states with that many workers, with
	// the state space sharded by state hash (each worker owns its
	// shard's open list and visited table). The proven optimal cost is
	// identical to the sequential search; only the witness trace may
	// differ. Values <= 1 run the sequential search.
	Parallel int
	// ParallelAlgo selects the parallel engine. The zero value is
	// ParallelAsyncHDA (asynchronous HDA*-style search, the fastest);
	// ParallelSyncRounds keeps the synchronous-rounds expander as an
	// ablation reference. Ignored unless Parallel > 1.
	ParallelAlgo ParallelAlgo
	// Stats, when non-nil, receives search counters (states expanded,
	// pushed, distinct) after the solve, successful or not.
	Stats *ExactStats
	// Cancel, when non-nil, makes the search stop cooperatively once the
	// channel is closed: Exact returns ErrCanceled with Stats filled,
	// including the certified frontier lower bound harvested at
	// shutdown. The anytime orchestrator uses this to turn a deadline
	// into a [lower, upper] certificate instead of a wasted solve.
	Cancel <-chan struct{}
	// Progress, when non-nil, receives periodic search snapshots on a
	// time-based cadence (ProgressEvery) from every engine: the serial
	// loop and the synchronous-rounds engine sample at their natural
	// gate points, and the async HDA* engine's coordinator additionally
	// fires whenever its certified global f-min improves, so the
	// streamed lower bound stays prompt. The async bound is certified
	// without any stop-and-drain: every worker publishes an
	// in-flight-aware floor (its heap minimum, lowered to cover
	// proposals it has generated but not yet deposited and batches it
	// is draining) and every mailbox already tracks the minimum parent
	// f of its pending batches, so the merged minimum never overlooks
	// work in flight — see async.go. The callback runs on a solver
	// goroutine and must be fast. With Progress nil the engines build
	// no snapshots and pay only a nil check at the gate.
	Progress func(ExactProgress)
	// ProgressEvery is the snapshot cadence (default ~100ms). Ignored
	// without a Progress listener.
	ProgressEvery time.Duration
}

// ExactProgress is one periodic snapshot of a running exact search:
// the live shape of the search, not just its counters. Field coverage
// varies by engine (Engine names which one filled it); fields an engine
// cannot observe are zero, and f-valued fields use -1 for "none".
type ExactProgress struct {
	// Expanded is the number of states expanded so far.
	Expanded int
	// LowerBound is the certified scaled lower bound on the optimal
	// cost proven so far (see ExactStats.LowerBound).
	LowerBound int64
	// Engine names the engine that built the snapshot: "astar",
	// "sync-rounds", "async-hda" or "ida-star"/"branch-and-bound".
	Engine string
	// Elapsed is the wall time since the search started.
	Elapsed time.Duration
	// Rate is the expansion rate (states/s) over the window since the
	// previous snapshot.
	Rate float64
	// Pushed is the number of open-list insertions so far.
	Pushed int
	// Distinct is the number of distinct states reached so far.
	Distinct int
	// OpenSize is the total open-list length (summed over shards).
	OpenSize int
	// FrontierF/FrontierG are the current cheapest open entry's f and g
	// (-1 when the frontier is empty or not observable).
	FrontierF int64
	FrontierG int64
	// OpenBuckets is the open queue's per-f histogram (serial engine
	// only; ascending f, capped at 32 levels).
	OpenBuckets []QueueBucket
	// TableBytes/TableLoad are the visited-table footprint and probe
	// load factor (summed/aggregated over shards).
	TableBytes int64
	TableLoad  float64
	// Workers is the per-worker breakdown (parallel engines only).
	Workers []WorkerProgress
	// SafraSent/SafraRecv are the async termination protocol's global
	// proposal counters (async engine only).
	SafraSent int64
	SafraRecv int64
	// Threshold and Pass are the current IDA* f-threshold and pass
	// number (IDA* only).
	Threshold int64
	Pass      int
}

// ExactStats reports search-effort counters from one Exact run.
type ExactStats struct {
	// Expanded is the number of states popped from the open list and
	// expanded (goal and stale pops excluded).
	Expanded int
	// Pushed is the number of open-list insertions (improvements).
	Pushed int
	// Distinct is the number of distinct states ever reached.
	Distinct int
	// LowerBound is the best certified lower bound (scaled cost units)
	// on the optimum when the search stopped: the optimum itself on
	// success, else the largest min-f observed over the open frontier.
	// Under an admissible heuristic every completion always has an open
	// entry with f no larger than its cost, so the min open f never
	// exceeds the true optimum — each observation is a certificate.
	LowerBound int64
	// TableBytes is the visited-state tables' backing-store footprint
	// (probe slots plus arena capacity, summed over parallel shards)
	// when the search stopped. Tables only grow within a run, so this is
	// the peak — the bench harness records it as peak_table_bytes.
	TableBytes int64
}

// searchNode records how a state was reached, for path reconstruction:
// the open-list push that created it, its table ref, and the move taken
// from the parent node. Nodes are append-only, so parent chains are
// immutable snapshots and cannot cycle.
type searchNode struct {
	parent int32 // index into nodes, -1 for the root
	ref    int32 // state ref in the table
	move   pebble.Move
}

// Exact finds a provably minimum-cost pebbling by best-first search over
// the state space (red set, blue set, computed set): A* under an
// admissible lower bound (see Heuristic), degenerating to Dijkstra with
// the bound off. It works for every model variant but scales only to
// small DAGs — which is the paper's point: the problem is NP-hard
// (PSPACE-hard in base).
//
// The search core is allocation-free on the hot path: states are packed
// into []uint64 keys deduplicated in an open-addressing table, the open
// list is a typed binary heap, move generation is restricted to the
// red frontier, and candidate moves are applied and undone on a single
// scratch state instead of cloning.
//
// The returned solution is replay-verified. Exact returns ErrStateLimit
// if the state budget is exhausted first.
func Exact(p Problem, opts ExactOptions) (Solution, error) {
	maxStates := opts.MaxStates
	if maxStates == 0 {
		maxStates = 2_000_000
	}
	start, err := pebble.NewState(p.G, p.Model, p.R, p.Convention)
	if err != nil {
		return Solution{}, err
	}
	if start.Complete() {
		// Degenerate: no sinks to pebble (empty graph) or sources start
		// blue and are the only sinks.
		tr := &pebble.Trace{Model: p.Model, R: p.R, Convention: p.Convention}
		return verify(p, tr), nil
	}
	if opts.Parallel > 1 {
		if opts.ParallelAlgo == ParallelSyncRounds {
			return exactParallel(p, opts, start, maxStates)
		}
		return exactAsync(p, opts, start, maxStates)
	}
	return exactSerial(p, opts, start, maxStates)
}

// ParallelAlgo enumerates the parallel expansion engines of Exact.
type ParallelAlgo int

const (
	// ParallelAsyncHDA (the zero value) is the asynchronous HDA*-style
	// engine: shard owners pull proposals from per-edge mailboxes and
	// expand continuously, with counting-based distributed termination
	// detection instead of global round barriers (see async.go).
	ParallelAsyncHDA ParallelAlgo = iota
	// ParallelSyncRounds is the synchronous-rounds engine (expand and
	// relax phases separated by global barriers; see parallel.go). Kept
	// as the ablation baseline for the async engine.
	ParallelSyncRounds
)

// String names the parallel engine.
func (a ParallelAlgo) String() string {
	switch a {
	case ParallelAsyncHDA:
		return "async-hda"
	case ParallelSyncRounds:
		return "sync-rounds"
	default:
		return "ParallelAlgo(?)"
	}
}

// searchCtx bundles the scratch structures of one sequential search (or
// one parallel worker): everything is reused across expansions, so the
// steady-state loop allocates only when the table, heap or node log
// grow.
type searchCtx struct {
	p        Problem
	g        *dag.DAG
	scale    int64 // scaled cost of a transfer
	compCost int64 // scaled cost of a compute
	sources  []dag.NodeID
	prune    bool

	// macro enables the dead-pebble quotient (oneshot, heuristic on,
	// pruning on): see appendMoves.
	macro bool

	scratch *pebble.State
	lb      *lowerBound
	cand    *bitset.Set // compute-candidate scratch set
	candBuf []uint64    // reused word snapshot of cand
	moveBuf []pebble.Move
	keyBuf  pebble.PackedKey
}

func newSearchCtx(p Problem, opts ExactOptions, start *pebble.State) *searchCtx {
	c := &searchCtx{
		p:       p,
		g:       p.G,
		scale:   1,
		sources: p.G.Sources(),
		prune:   !opts.DisablePruning,
		scratch: start.Clone(),
		lb:      newLowerBound(p, opts.Heuristic, start),
		cand:    bitset.New(p.G.N()),
	}
	if p.Model.Kind == pebble.CompCost {
		c.scale = int64(p.Model.EpsDenom)
		c.compCost = 1
	}
	c.macro = c.prune && c.lb.enabled && p.Model.Kind == pebble.Oneshot
	return c
}

// cloneForWorker returns a searchCtx for a parallel worker: the
// read-only problem tables (including the lower bound's precomputed
// candidates) are shared, while the scratch state, sets and buffers are
// private.
func (c *searchCtx) cloneForWorker(start *pebble.State) *searchCtx {
	w := *c
	w.scratch = start.Clone()
	w.lb = c.lb.cloneScratch()
	w.cand = bitset.New(c.g.N())
	w.candBuf = nil
	w.moveBuf = nil
	w.keyBuf = nil
	return &w
}

// moveCost returns the scaled cost of one move under the model.
func (c *searchCtx) moveCost(m pebble.Move) int64 {
	switch m.Kind {
	case pebble.Load, pebble.Store:
		return c.scale
	case pebble.Compute:
		return c.compCost
	default:
		return 0
	}
}

// appendMoves appends every legal (and not dominance-pruned) move from
// st onto the shared move buffer (callers manage the buffer: the
// best-first loop truncates it first, the DFS keeps a stack of levels in
// it). key is st's packed encoding, whose words double as the red/blue
// iteration sets, so the generator only visits nodes adjacent to the
// current pebbles — compute candidates are the sources plus successors
// of red nodes; loads scan the blue set; stores and deletes scan the
// pebbled sets — instead of testing all n nodes against all four move
// kinds.
func (c *searchCtx) appendMoves(st *pebble.State, key pebble.PackedKey) {
	w := len(key) / 3
	red, blue := key[:w], key[w:2*w]

	// Dead-pebble quotient (oneshot only): a pebbled non-sink node whose
	// successors are all computed can never be useful again — its value
	// has no remaining consumer and recomputation is banned, so deleting
	// it is free and safe, and any completion that keeps it around can be
	// rewritten to delete it first at no extra cost. Forcing that delete
	// as the single candidate move collapses every family of states that
	// differ only in dead pebbles. Applied only with the heuristic and
	// pruning on, so HeuristicOff remains the faithful seed search.
	if c.macro {
		for wi := 0; wi < w; wi++ {
			wd := red[wi] | blue[wi]
			for wd != 0 {
				v := dag.NodeID(wi*64 + bits.TrailingZeros64(wd))
				wd &= wd - 1
				if c.deadPebble(st, v) {
					c.moveBuf = append(c.moveBuf, pebble.Move{Kind: pebble.Delete, Node: v})
					return
				}
			}
		}
	}

	// Compute: sources and successors of red nodes are the only nodes
	// whose inputs can all be red. Check finishes the legality test.
	if st.RedCount() < c.p.R {
		c.cand.Reset()
		for _, s := range c.sources {
			c.cand.Set(int(s))
		}
		for wi, wd := range red {
			for wd != 0 {
				u := dag.NodeID(wi*64 + bits.TrailingZeros64(wd))
				wd &= wd - 1
				for _, v := range c.g.Succs(u) {
					c.cand.Set(int(v))
				}
			}
		}
		c.candBuf = c.cand.AppendWords(c.candBuf[:0])
		for wi, wd := range c.candBuf {
			for wd != 0 {
				v := dag.NodeID(wi*64 + bits.TrailingZeros64(wd))
				wd &= wd - 1
				c.consider(st, pebble.Move{Kind: pebble.Compute, Node: v})
			}
		}
		// Load: any blue node, while a red slot is free.
		for wi, wd := range blue {
			for wd != 0 {
				v := dag.NodeID(wi*64 + bits.TrailingZeros64(wd))
				wd &= wd - 1
				c.consider(st, pebble.Move{Kind: pebble.Load, Node: v})
			}
		}
	}
	// Store: any red node.
	for wi, wd := range red {
		for wd != 0 {
			v := dag.NodeID(wi*64 + bits.TrailingZeros64(wd))
			wd &= wd - 1
			c.consider(st, pebble.Move{Kind: pebble.Store, Node: v})
		}
	}
	// Delete: any pebbled node (banned wholesale in nodel).
	if c.p.Model.Kind != pebble.NoDel {
		for wi := 0; wi < w; wi++ {
			wd := red[wi] | blue[wi]
			for wd != 0 {
				v := dag.NodeID(wi*64 + bits.TrailingZeros64(wd))
				wd &= wd - 1
				c.consider(st, pebble.Move{Kind: pebble.Delete, Node: v})
			}
		}
	}
}

// deadPebble reports whether pebbled node v can never matter again in
// the oneshot model: it is not a sink and every successor is already
// computed.
func (c *searchCtx) deadPebble(st *pebble.State, v dag.NodeID) bool {
	succs := c.g.Succs(v)
	if len(succs) == 0 {
		return false // sink: its pebble is (or will be) the goal
	}
	for _, x := range succs {
		if !st.WasComputed(x) {
			return false
		}
	}
	return true
}

func (c *searchCtx) consider(st *pebble.State, m pebble.Move) {
	if !st.CanApply(m) {
		return
	}
	if c.prune && prunedMove(c.p, st, m) {
		return
	}
	c.moveBuf = append(c.moveBuf, m)
}

// exactSerial is the sequential A* loop.
func exactSerial(p Problem, opts ExactOptions, start *pebble.State, maxStates int) (Solution, error) {
	c := newSearchCtx(p, opts, start)
	// The table's second payload word caches the (state-only) heuristic
	// value per ref, so each distinct state is estimated once no matter
	// how often it is reached — and the estimate lives on the same arena
	// row as the cost and key it belongs to.
	table := newStateTable(start.PackedWords(), payloadWithH, 1024)
	var open bucketQueue
	var nodes []searchNode

	expanded, pushed := 0, 0
	// Certified lower bound: running max of min open f, seeded from the
	// caller's already-certified floor (warm start) when one is given.
	lower := opts.InitialLowerBound
	var sampler *progressSampler
	if opts.Progress != nil {
		sampler = newProgressSampler(opts.ProgressEvery)
	}
	report := func() {
		if opts.Stats != nil {
			*opts.Stats = ExactStats{Expanded: expanded, Pushed: pushed, Distinct: table.count(), LowerBound: lower, TableBytes: table.bytes()}
		}
	}

	rootKey := start.AppendPacked(nil)
	rootRef, _ := table.lookupOrAdd(rootKey, hashKey(rootKey))
	table.setBest(rootRef, 0)
	nodes = append(nodes, searchNode{parent: -1, ref: rootRef})
	h0, dead := c.lb.estimate(start)
	if dead {
		report()
		return Solution{}, ErrInfeasible
	}
	table.setH(rootRef, h0)
	if h0 > lower {
		lower = h0
	}
	open.push(heapEntry{f: h0, g: 0, node: 0})
	pushed = 1

	for open.len() > 0 {
		e := open.pop()
		// e has the smallest f on the open list, so min open f = e.f at
		// this instant; the optimum is at least that (every completion
		// keeps an open entry with f <= its cost), and the running max
		// of these instants is the certificate the anytime layer reads.
		if e.f > lower {
			lower = e.f
		}
		nd := nodes[e.node]
		if e.g > table.best(nd.ref) {
			continue // stale entry
		}
		key := table.key(nd.ref)
		c.scratch.RestorePacked(key)
		if c.scratch.Complete() {
			lower = e.g // proven optimal
			report()
			return reconstruct(p, nodes, e.node), nil
		}
		expanded++
		if expanded > maxStates {
			report()
			return Solution{}, fmt.Errorf("%w: %d states", ErrStateLimit, maxStates)
		}
		if expanded&1023 == 0 {
			if opts.Cancel != nil {
				select {
				case <-opts.Cancel:
					report()
					return Solution{}, fmt.Errorf("%w after %d states (lower bound %d)", ErrCanceled, expanded, lower)
				default:
				}
			}
			if opts.MaxTableBytes > 0 && table.bytes() > opts.MaxTableBytes {
				report()
				return Solution{}, fmt.Errorf("%w: %d table bytes over budget %d after %d states (lower bound %d)",
					ErrMemoryBudget, table.bytes(), opts.MaxTableBytes, expanded, lower)
			}
			if sampler != nil && sampler.due() {
				opts.Progress(singleProgress(sampler, expanded, pushed, lower, table, &open))
			}
		}

		c.moveBuf = c.moveBuf[:0]
		c.appendMoves(c.scratch, key)
		for _, m := range c.moveBuf {
			undo, err := c.scratch.ApplyForUndo(m)
			if err != nil {
				panic("solve: legalMoves emitted illegal move: " + err.Error())
			}
			childG := e.g + c.moveCost(m)
			c.keyBuf = c.scratch.AppendPacked(c.keyBuf[:0])
			childRef, isNew := table.lookupOrAdd(c.keyBuf, hashKey(c.keyBuf))
			var h int64
			if isNew {
				var dead bool
				h, dead = c.lb.estimate(c.scratch)
				table.setH(childRef, h)
				if dead {
					table.setBest(childRef, costDead)
					c.scratch.Undo(undo)
					continue
				}
			} else {
				if table.best(childRef) <= childG {
					c.scratch.Undo(undo)
					continue
				}
				h = table.h(childRef)
			}
			if opts.PruneBound > 0 && childG+h >= opts.PruneBound {
				// No completion through this state can stay below the
				// caller's bound (h is admissible); drop it unpushed. Its
				// table entry keeps costUnreached so a cheaper path may
				// still reopen it, and the payload caches h for that
				// reopening.
				c.scratch.Undo(undo)
				continue
			}
			table.setBest(childRef, childG)
			nodes = append(nodes, searchNode{parent: e.node, ref: childRef, move: m})
			open.push(heapEntry{f: childG + h, g: childG, node: int32(len(nodes) - 1)})
			pushed++
			c.scratch.Undo(undo)
		}
	}
	if opts.PruneBound > 0 {
		// The open list emptied with every f >= PruneBound branch cut:
		// each cut carried a certificate that no completion through it
		// costs less than PruneBound, so the optimum is at least
		// PruneBound — a warm-started refinement has just proven the
		// cached incumbent optimal.
		if opts.PruneBound > lower {
			lower = opts.PruneBound
		}
		report()
		return Solution{}, fmt.Errorf("%w: no completion below bound %d", ErrBoundExhausted, opts.PruneBound)
	}
	report()
	return Solution{}, errors.New("solve: state space exhausted without completing (unreachable for feasible R)")
}

// reconstruct walks the parent chain of goal node idx and returns the
// verified solution.
func reconstruct(p Problem, nodes []searchNode, idx int32) Solution {
	var rev []pebble.Move
	for i := idx; nodes[i].parent >= 0; i = nodes[i].parent {
		rev = append(rev, nodes[i].move)
	}
	moves := make([]pebble.Move, len(rev))
	for i := range rev {
		moves[i] = rev[len(rev)-1-i]
	}
	tr := &pebble.Trace{Model: p.Model, R: p.R, Convention: p.Convention, Moves: moves}
	return verify(p, tr)
}

// prunedMove applies dominance rules that cannot exclude every optimal
// solution. All rules are specific to the oneshot model, where a node's
// value exists only once: recomputation is impossible, so every node must
// be computed exactly once, and a deleted value can never return.
//
//   - Deleting a pebble from a sink makes the instance unwinnable (the
//     sink cannot be recomputed and a node holds only one pebble).
//   - Deleting a node that still has uncomputed successors likewise makes
//     those successors uncomputable.
//   - Storing a dead node (all successors computed, not a sink) is wasted
//     cost: Delete frees the red slot for free.
//
// In base and compcost the analogous prunes are NOT safe: deleting a red
// sink and recomputing it later (cost 0 or ε) can beat storing it
// (cost 1).
func prunedMove(p Problem, st *pebble.State, m pebble.Move) bool {
	if p.Model.Kind != pebble.Oneshot {
		return false
	}
	g := p.G
	switch m.Kind {
	case pebble.Delete:
		if g.IsSink(m.Node) {
			return true
		}
		for _, w := range g.Succs(m.Node) {
			if !st.WasComputed(w) {
				return true
			}
		}
		return false
	case pebble.Store:
		if g.IsSink(m.Node) {
			return false
		}
		for _, w := range g.Succs(m.Node) {
			if !st.WasComputed(w) {
				return false
			}
		}
		return true // dead non-sink: Delete dominates Store
	default:
		return false
	}
}
