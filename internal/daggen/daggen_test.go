package daggen

import (
	"testing"
	"testing/quick"

	"rbpebble/internal/dag"
)

func validate(t *testing.T, g *dag.DAG) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestChain(t *testing.T) {
	g := Chain(5)
	validate(t, g)
	if g.N() != 5 || g.M() != 4 {
		t.Fatalf("chain: n=%d m=%d", g.N(), g.M())
	}
	if len(g.Sources()) != 1 || len(g.Sinks()) != 1 {
		t.Fatal("chain should have 1 source, 1 sink")
	}
	if g.MaxInDegree() != 1 {
		t.Fatalf("chain Δ = %d", g.MaxInDegree())
	}
	g1 := Chain(1)
	validate(t, g1)
	if g1.N() != 1 || g1.M() != 0 {
		t.Fatal("Chain(1) should be a single node")
	}
}

func TestPyramid(t *testing.T) {
	for h := 0; h <= 6; h++ {
		g := Pyramid(h)
		validate(t, g)
		wantN := (h + 1) * (h + 2) / 2
		if g.N() != wantN {
			t.Fatalf("Pyramid(%d): n=%d want %d", h, g.N(), wantN)
		}
		if len(g.Sinks()) != 1 {
			t.Fatalf("Pyramid(%d): %d sinks", h, len(g.Sinks()))
		}
		if len(g.Sources()) != h+1 {
			t.Fatalf("Pyramid(%d): %d sources", h, len(g.Sources()))
		}
		if h > 0 && g.MaxInDegree() != 2 {
			t.Fatalf("Pyramid(%d): Δ=%d", h, g.MaxInDegree())
		}
		lp, _ := g.LongestPathLen()
		if lp != h {
			t.Fatalf("Pyramid(%d): longest path %d", h, lp)
		}
	}
}

func TestBinaryTree(t *testing.T) {
	for levels := 1; levels <= 6; levels++ {
		g := BinaryTree(levels)
		validate(t, g)
		wantN := (1 << levels) - 1
		if g.N() != wantN {
			t.Fatalf("BinaryTree(%d): n=%d", levels, g.N())
		}
		if len(g.Sinks()) != 1 || g.Sinks()[0] != 0 {
			t.Fatalf("BinaryTree(%d): sinks=%v", levels, g.Sinks())
		}
		if len(g.Sources()) != 1<<(levels-1) {
			t.Fatalf("BinaryTree(%d): %d sources", levels, len(g.Sources()))
		}
		if levels > 1 && g.MaxInDegree() != 2 {
			t.Fatalf("BinaryTree(%d): Δ=%d", levels, g.MaxInDegree())
		}
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	validate(t, g)
	if g.N() != 12 {
		t.Fatalf("Grid n=%d", g.N())
	}
	// Edges: (rows-1)*cols vertical + rows*(cols-1) horizontal.
	if g.M() != 2*4+3*3 {
		t.Fatalf("Grid m=%d", g.M())
	}
	if len(g.Sources()) != 1 || len(g.Sinks()) != 1 {
		t.Fatal("Grid should have single source and sink")
	}
	if g.MaxInDegree() != 2 {
		t.Fatalf("Grid Δ=%d", g.MaxInDegree())
	}
	lp, _ := g.LongestPathLen()
	if lp != 2+3 {
		t.Fatalf("Grid longest path = %d", lp)
	}
}

func TestFFT(t *testing.T) {
	for logN := 1; logN <= 5; logN++ {
		g := FFT(logN)
		validate(t, g)
		n := 1 << logN
		if g.N() != (logN+1)*n {
			t.Fatalf("FFT(%d): n=%d", logN, g.N())
		}
		if g.M() != 2*logN*n {
			t.Fatalf("FFT(%d): m=%d", logN, g.M())
		}
		if len(g.Sources()) != n || len(g.Sinks()) != n {
			t.Fatalf("FFT(%d): sources=%d sinks=%d", logN, len(g.Sources()), len(g.Sinks()))
		}
		if g.MaxInDegree() != 2 {
			t.Fatalf("FFT(%d): Δ=%d", logN, g.MaxInDegree())
		}
		lp, _ := g.LongestPathLen()
		if lp != logN {
			t.Fatalf("FFT(%d): longest path %d", logN, lp)
		}
	}
}

func TestMatMul(t *testing.T) {
	for k := 1; k <= 4; k++ {
		g := MatMul(k)
		validate(t, g)
		wantN := 2*k*k + k*k*k + k*k*(k-1)
		if g.N() != wantN {
			t.Fatalf("MatMul(%d): n=%d want %d", k, g.N(), wantN)
		}
		if len(g.Sinks()) != k*k {
			t.Fatalf("MatMul(%d): %d sinks", k, len(g.Sinks()))
		}
		if len(g.Sources()) != 2*k*k {
			t.Fatalf("MatMul(%d): %d sources", k, len(g.Sources()))
		}
		if k > 1 && g.MaxInDegree() != 2 {
			t.Fatalf("MatMul(%d): Δ=%d", k, g.MaxInDegree())
		}
	}
}

func TestRandomLayeredDeterministic(t *testing.T) {
	a := RandomLayered(4, 6, 3, 99)
	b := RandomLayered(4, 6, 3, 99)
	validate(t, a)
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatal("same seed produced different graphs")
	}
	for v := 0; v < a.N(); v++ {
		sa, sb := a.SortedSuccs(dag.NodeID(v)), b.SortedSuccs(dag.NodeID(v))
		if len(sa) != len(sb) {
			t.Fatal("same seed produced different adjacency")
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatal("same seed produced different adjacency")
			}
		}
	}
	c := RandomLayered(4, 6, 3, 100)
	if c.M() == a.M() {
		// Not impossible but the same edge count AND a passing determinism
		// test above makes collision overwhelmingly unlikely for these dims;
		// compare adjacency to be sure.
		same := true
		for v := 0; v < a.N() && same; v++ {
			sa, sc := a.SortedSuccs(dag.NodeID(v)), c.SortedSuccs(dag.NodeID(v))
			if len(sa) != len(sc) {
				same = false
				break
			}
			for i := range sa {
				if sa[i] != sc[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestRandomLayeredDegrees(t *testing.T) {
	g := RandomLayered(5, 8, 3, 1)
	validate(t, g)
	if g.MaxInDegree() > 3 {
		t.Fatalf("maxIn violated: Δ=%d", g.MaxInDegree())
	}
	// Every non-first-layer node has at least one input.
	for v := 8; v < g.N(); v++ {
		if g.InDegree(dag.NodeID(v)) < 1 {
			t.Fatalf("layered node %d has no inputs", v)
		}
	}
}

func TestRandomTriangular(t *testing.T) {
	g := RandomTriangular(30, 0.3, 5)
	validate(t, g)
	if g.N() != 30 {
		t.Fatal("wrong n")
	}
	g0 := RandomTriangular(10, 0, 5)
	if g0.M() != 0 {
		t.Fatal("p=0 should give no edges")
	}
	g1 := RandomTriangular(10, 1, 5)
	if g1.M() != 45 {
		t.Fatalf("p=1 should give complete DAG, m=%d", g1.M())
	}
}

func TestStencil1D(t *testing.T) {
	g := Stencil1D(5, 3)
	validate(t, g)
	if g.N() != 15 {
		t.Fatalf("stencil n=%d", g.N())
	}
	if g.MaxInDegree() != 3 {
		t.Fatalf("stencil Δ=%d", g.MaxInDegree())
	}
	if len(g.Sources()) != 5 || len(g.Sinks()) != 5 {
		t.Fatal("stencil boundary wrong")
	}
}

func TestInputGroups(t *testing.T) {
	g, groups, targets := InputGroups(3, 4)
	validate(t, g)
	if g.N() != 3*5 {
		t.Fatalf("input groups n=%d", g.N())
	}
	if len(groups) != 3 || len(targets) != 3 {
		t.Fatal("wrong group/target count")
	}
	for i, grp := range groups {
		if len(grp) != 4 {
			t.Fatalf("group %d size %d", i, len(grp))
		}
		for _, v := range grp {
			if !g.HasEdge(v, targets[i]) {
				t.Fatalf("missing edge %d->%d", v, targets[i])
			}
			if !g.IsSource(v) {
				t.Fatalf("group node %d not a source", v)
			}
		}
		if !g.IsSink(targets[i]) {
			t.Fatalf("target %d not a sink", targets[i])
		}
		if g.InDegree(targets[i]) != 4 {
			t.Fatalf("target %d indegree %d", targets[i], g.InDegree(targets[i]))
		}
	}
}

func TestPanicsOnBadParams(t *testing.T) {
	cases := []func(){
		func() { Pyramid(-1) },
		func() { BinaryTree(0) },
		func() { Grid(0, 5) },
		func() { FFT(0) },
		func() { MatMul(0) },
		func() { RandomLayered(0, 1, 1, 0) },
		func() { Stencil1D(0, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

// Property: all generators produce valid DAGs across a parameter sweep.
func TestQuickGeneratorsValid(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		layers := int(a%5) + 2
		width := int(b%6) + 2
		g := RandomLayered(layers, width, 3, seed)
		if g.Validate() != nil {
			return false
		}
		g2 := RandomTriangular(int(a%20)+2, 0.25, seed)
		return g2.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
