package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rbpebble/internal/dag"
	"rbpebble/internal/daggen"
	"rbpebble/internal/service"
)

func (tc *testCluster) postBatch(t *testing.T, body string, tenant string) (int, service.BatchResponse, string) {
	t.Helper()
	req, err := http.NewRequest("POST", tc.ts.URL+"/solve/batch", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	var br service.BatchResponse
	json.Unmarshal(buf.Bytes(), &br)
	return resp.StatusCode, br, resp.Header.Get("Retry-After")
}

// splitPair finds two instances whose canonical keys route to
// different members of the cluster, so a batch mixing them genuinely
// fans out.
func splitPair(t *testing.T, tc *testCluster) (*dag.DAG, *dag.DAG) {
	t.Helper()
	// Ring placement depends on the members' (random httptest) ports, so
	// no fixed candidate list is guaranteed to split; chains of distinct
	// lengths are distinct canonical classes, giving an effectively
	// unbounded supply to draw from.
	candidates := []*dag.DAG{daggen.Pyramid(4)}
	for n := 8; n < 72; n++ {
		candidates = append(candidates, daggen.Chain(n))
	}
	first := batchOwner(t, tc, candidates[0])
	for _, g := range candidates[1:] {
		if batchOwner(t, tc, g) != first {
			return candidates[0], g
		}
	}
	t.Fatal("no candidate pair split across members")
	return nil, nil
}

// batchOwner computes the ring owner the proxy will actually route a
// `{"model":"oneshot","r":3}` batch item of g to. The probe request
// must match the item's model/R exactly: they are part of the
// canonical instance key.
func batchOwner(t *testing.T, tc *testCluster, g *dag.DAG) string {
	t.Helper()
	req := service.SolveRequest{DAG: []byte(dagJSON(t, g)), Model: "oneshot", R: 3}
	key, err := RouteKey(req, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tc.proxy.Ring().Owners(key, 1)[0]
}

// TestProxyBatchSplitReassemble: a batch mixing two canonical classes
// owned by different nodes is split into per-node sub-batches, each
// node deduplicates its own class, and the proxy reassembles per-item
// results in request order.
func TestProxyBatchSplitReassemble(t *testing.T) {
	tc := newTestCluster(t, 2)
	a, b := splitPair(t, tc)

	// Interleave the two classes (a relabeling of a keeps its class).
	relA := relabeled(a)
	items := []string{
		fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3}`, dagJSON(t, a)),
		fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3}`, dagJSON(t, b)),
		fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3}`, dagJSON(t, relA)),
		fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3}`, dagJSON(t, b)),
	}
	body := fmt.Sprintf(`{"items":[%s],"deadline_ms":2000}`, strings.Join(items, ","))
	code, br, _ := tc.postBatch(t, body, "")
	if code != http.StatusOK {
		t.Fatalf("status %d: %+v", code, br)
	}
	if len(br.Items) != 4 {
		t.Fatalf("got %d items, want 4", len(br.Items))
	}
	for i, item := range br.Items {
		if item.Index != i {
			t.Fatalf("item %d has index %d — reassembly broke order: %+v", i, item.Index, br.Items)
		}
		if item.Error != "" || item.Result == nil || !item.Result.Optimal {
			t.Fatalf("item %d: %+v", i, item)
		}
	}
	if br.Items[0].Result.Cost != br.Items[2].Result.Cost {
		t.Fatalf("isomorphic items disagree: %v vs %v", br.Items[0].Result.Cost, br.Items[2].Result.Cost)
	}
	if br.Items[1].Result.Cost != br.Items[3].Result.Cost {
		t.Fatalf("identical items disagree: %v vs %v", br.Items[1].Result.Cost, br.Items[3].Result.Cost)
	}
	// The cluster summary folds the node summaries: 2 classes, 2 solves.
	if br.Summary.Solves != 2 || br.Summary.Deduped != 2 {
		t.Fatalf("cluster summary = %+v, want 2 solves / 2 deduped", br.Summary)
	}

	dump := tc.metrics(t)
	if got := metricValue(t, dump, "rbproxy_batch_subbatches_total"); got != 2 {
		t.Fatalf("subbatches_total = %d, want 2 (one per owning node)", got)
	}
	if got := metricValue(t, dump, "rbproxy_batch_items_total"); got != 4 {
		t.Fatalf("batch_items_total = %d, want 4", got)
	}
	// Each node solved its class exactly once: the split preserved the
	// node-side in-batch dedup (4 items, 2 classes, 2 solves fleetwide).
	if got := metricValue(t, dump, "cluster_rbserve_solves_total"); got != 2 {
		t.Fatalf("cluster solves_total = %d, want 2", got)
	}
}

// TestProxyBatchFailover: a dead node's sub-batch fails over to the
// surviving member instead of erroring its items.
func TestProxyBatchFailover(t *testing.T) {
	tc := newTestCluster(t, 2)
	a, b := splitPair(t, tc)
	// Kill whichever node owns b's class.
	dead := batchOwner(t, tc, b)
	for i, m := range tc.members {
		if m == dead {
			tc.nodeTS[i].Close()
		}
	}
	body := fmt.Sprintf(`{"items":[{"dag":%s,"model":"oneshot","r":3},{"dag":%s,"model":"oneshot","r":3}],"deadline_ms":2000}`,
		dagJSON(t, a), dagJSON(t, b))
	code, br, _ := tc.postBatch(t, body, "")
	if code != http.StatusOK {
		t.Fatalf("status %d: %+v", code, br)
	}
	for i, item := range br.Items {
		if item.Error != "" || item.Result == nil || !item.Result.Optimal {
			t.Fatalf("item %d after failover: %+v", i, item)
		}
	}
}

// TestProxyTenantQuota: per-tenant token buckets gate admission by
// item count, isolate tenants from each other, and stamp Retry-After.
func TestProxyTenantQuota(t *testing.T) {
	tc := newTestCluster(t, 1)
	// Rebuild the proxy with quotas on (newTestCluster uses defaults).
	tc.ts.Close()
	tc.proxy.Close()
	tc.proxy = NewProxy(ProxyConfig{
		Members: tc.members, ProbeInterval: -1,
		TenantRate: 0.001, TenantBurst: 4,
	})
	tc.ts = httptest.NewServer(tc.proxy.Handler())
	defer tc.ts.Close()
	defer tc.proxy.Close()

	g := daggen.Pyramid(4)
	item := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3}`, dagJSON(t, g))
	over := fmt.Sprintf(`{"items":[%s,%s,%s,%s,%s],"deadline_ms":2000}`, item, item, item, item, item)
	code, _, retry := tc.postBatch(t, over, "alice")
	if code != http.StatusTooManyRequests {
		t.Fatalf("5-item batch over burst 4: status %d, want 429", code)
	}
	if retry == "" {
		t.Fatal("quota rejection missing Retry-After")
	}

	within := fmt.Sprintf(`{"items":[%s,%s,%s],"deadline_ms":2000}`, item, item, item)
	if code, br, _ := tc.postBatch(t, within, "alice"); code != http.StatusOK || br.Summary.OK != 3 {
		t.Fatalf("3-item batch within burst: status %d, %+v", code, br)
	}
	// alice has ~1 token left at a negligible refill rate: her single
	// solve still passes, the next is rejected.
	body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3,"deadline_ms":2000}`, dagJSON(t, g))
	if code := tc.postSolveTenant(t, body, "alice"); code != http.StatusOK {
		t.Fatalf("alice's last token: status %d", code)
	}
	if code := tc.postSolveTenant(t, body, "alice"); code != http.StatusTooManyRequests {
		t.Fatalf("alice over quota: status %d, want 429", code)
	}
	// bob's bucket is untouched.
	if code, br, _ := tc.postBatch(t, within, "bob"); code != http.StatusOK || br.Summary.OK != 3 {
		t.Fatalf("bob within burst: status %d, %+v", code, br)
	}
	dump := tc.metrics(t)
	if got := metricValue(t, dump, "rbproxy_quota_rejected_total"); got != 2 {
		t.Fatalf("quota_rejected_total = %d, want 2", got)
	}
}

func (tc *testCluster) postSolveTenant(t *testing.T, body, tenant string) int {
	t.Helper()
	req, err := http.NewRequest("POST", tc.ts.URL+"/solve", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TenantHeader, tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode
}

// TestClusterMetricsPreserveLabels: the fleet merge keeps histogram le
// buckets and per-lane queue-depth labels instead of summing them into
// a single meaningless scalar, and parses fractional values.
func TestClusterMetricsPreserveLabels(t *testing.T) {
	tc := newTestCluster(t, 2)
	g := daggen.Pyramid(4)
	body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3}`, dagJSON(t, g))
	if code, _, _ := tc.post(t, body); code != http.StatusOK {
		t.Fatal("solve failed")
	}
	dump := tc.metrics(t)
	if got := metricValue(t, dump, `cluster_rbserve_request_seconds_bucket{le="+Inf"}`); got < 1 {
		t.Fatalf("histogram bucket lost in merge: %d", got)
	}
	metricValue(t, dump, `cluster_rbserve_queue_depth{lane="fast"}`)
	metricValue(t, dump, `cluster_rbserve_queue_depth{lane="heavy"}`)
	if !strings.Contains(dump, "cluster_rbserve_request_seconds_sum ") {
		t.Fatalf("histogram sum missing from merge:\n%s", dump)
	}
}

// TestQuotaTake exercises the token bucket directly.
func TestQuotaTake(t *testing.T) {
	q := NewTenantQuota(0.001, 5) // refill is negligible within the test
	if ok, _ := q.Take("t", 5); !ok {
		t.Fatal("full burst refused")
	}
	ok, retry := q.Take("t", 1)
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if retry <= 0 {
		t.Fatalf("retry hint %v, want > 0", retry)
	}
	if ok, _ := q.Take("other", 3); !ok {
		t.Fatal("tenants not isolated")
	}
	// Wider than burst: can never succeed, and the hint reflects the
	// full mint time.
	if ok, retry := q.Take("fresh", 6); ok || retry < 5900*time.Second {
		t.Fatalf("over-burst take: ok=%v retry=%v", ok, retry)
	}
	// Disabled limiter admits everything.
	if ok, _ := NewTenantQuota(0, 0).Take("t", 1000); !ok {
		t.Fatal("disabled limiter refused")
	}
}
