package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMetricsMergeSumsLabeledGauges: the fleet merge must fold labeled
// per-job gauges (rbserve_job_lower_bound{job="..."}) into one
// label-stripped cluster sum, alongside the plain counters. The
// members are stub servers so the per-node values are exact.
func TestMetricsMergeSumsLabeledGauges(t *testing.T) {
	node := func(metrics string) *httptest.Server {
		mux := http.NewServeMux()
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, `{"ok":true}`)
		})
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, metrics)
		})
		return httptest.NewServer(mux)
	}
	n1 := node("rbserve_solves_total 3\n" +
		"rbserve_job_lower_bound{job=\"job-a-1\"} 7\n" +
		"rbserve_job_lower_bound{job=\"job-a-2\"} 5\n")
	defer n1.Close()
	n2 := node("rbserve_solves_total 2\n" +
		"rbserve_job_lower_bound{job=\"job-b-1\"} 9\n")
	defer n2.Close()

	members := []string{
		strings.TrimPrefix(n1.URL, "http://"),
		strings.TrimPrefix(n2.URL, "http://"),
	}
	p := NewProxy(ProxyConfig{Members: members, ProbeInterval: -1})
	defer p.Close()
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	body := b.String()
	for _, want := range []string{
		"cluster_rbserve_solves_total 5\n",
		"cluster_rbserve_job_lower_bound 21\n",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("merged metrics missing %q:\n%s", want, body)
		}
	}
}
