package solve

import (
	"errors"
	"testing"
	"time"

	"rbpebble/internal/daggen"
	"rbpebble/internal/pebble"
)

// TestAsyncMatchesSerialEverywhere is the async-termination property
// test: the asynchronous HDA* engine must prove exactly the serial
// optimum across all four models, every convention combination and
// 1/2/4/8 workers. A termination-detection bug (declaring done with
// proposals in flight) or a throttle bug that turned into a correctness
// gate would surface here as a cost mismatch or a hang.
func TestAsyncMatchesSerialEverywhere(t *testing.T) {
	conventions := []pebble.Convention{
		{},
		{SourcesStartBlue: true},
		{SinksMustBeBlue: true},
		{SourcesStartBlue: true, SinksMustBeBlue: true},
	}
	for seed := int64(0); seed < 3; seed++ {
		g := daggen.RandomLayered(3, 3, 2, seed)
		r := pebble.MinFeasibleR(g)
		for _, kind := range pebble.AllKinds() {
			m := pebble.NewModel(kind)
			for _, conv := range conventions {
				p := Problem{G: g, Model: m, R: r, Convention: conv}
				serial, serr := Exact(p, ExactOptions{})
				for _, workers := range []int{1, 2, 4, 8} {
					par, perr := Exact(p, ExactOptions{Parallel: workers})
					if (serr == nil) != (perr == nil) {
						t.Fatalf("seed %d %v %s workers=%d: error mismatch: serial %v, async %v",
							seed, kind, convName(conv), workers, serr, perr)
					}
					if serr != nil {
						continue
					}
					if par.Result.Cost.Scaled(m) != serial.Result.Cost.Scaled(m) {
						t.Errorf("seed %d %v %s workers=%d: async cost %v != serial %v",
							seed, kind, convName(conv), workers, par.Result.Cost, serial.Result.Cost)
					}
				}
			}
		}
	}
}

// TestAsyncSlowShard injects heavy latency into one shard and checks
// the engine still terminates with the exact optimum: the slow shard
// cannot be skipped (its mailboxes must drain, its frontier must be
// exhausted) and the counting protocol must not declare termination
// around it.
func TestAsyncSlowShard(t *testing.T) {
	defer func() { asyncTestDelay = nil }()
	asyncTestDelay = func(worker int) {
		if worker == 1 {
			time.Sleep(200 * time.Microsecond)
		}
	}
	for _, kind := range []pebble.ModelKind{pebble.Oneshot, pebble.Base} {
		g := daggen.Pyramid(3)
		p := Problem{G: g, Model: pebble.NewModel(kind), R: 3}
		asyncTestDelay = nil
		serial, err := Exact(p, ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		asyncTestDelay = func(worker int) {
			if worker == 1 {
				time.Sleep(200 * time.Microsecond)
			}
		}
		par, err := Exact(p, ExactOptions{Parallel: 4})
		if err != nil {
			t.Fatalf("%v slow shard: %v", kind, err)
		}
		// Scaled cost, not the full struct: in the base model computes
		// are free, so equally-optimal witnesses may differ in them.
		if par.Result.Cost.Scaled(p.Model) != serial.Result.Cost.Scaled(p.Model) {
			t.Fatalf("%v slow shard: cost %v != serial %v", kind, par.Result.Cost, serial.Result.Cost)
		}
	}
}

// TestAsyncStateLimit checks the budget error surfaces from the async
// engine (the abort must reach every worker and the coordinator).
func TestAsyncStateLimit(t *testing.T) {
	g := daggen.Pyramid(3)
	_, err := Exact(Problem{G: g, Model: pebble.NewModel(pebble.Base), R: 3},
		ExactOptions{MaxStates: 5, Parallel: 4})
	if !errors.Is(err, ErrStateLimit) {
		t.Fatalf("err = %v, want ErrStateLimit", err)
	}
}

// TestAsyncEngineSelection checks both engines answer identically on a
// nontrivial instance (the sync-rounds engine remains selectable as the
// ablation baseline).
func TestAsyncEngineSelection(t *testing.T) {
	p := Problem{G: daggen.Grid(3, 3), Model: pebble.NewModel(pebble.Oneshot), R: 3}
	serial, err := Exact(p, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []ParallelAlgo{ParallelAsyncHDA, ParallelSyncRounds} {
		sol, err := Exact(p, ExactOptions{Parallel: 4, ParallelAlgo: algo})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if sol.Result.Cost != serial.Result.Cost {
			t.Fatalf("%v: cost %v != serial %v", algo, sol.Result.Cost, serial.Result.Cost)
		}
	}
}

// TestAsyncStatsPopulated checks the stats out-parameter from the async
// engine.
func TestAsyncStatsPopulated(t *testing.T) {
	var st ExactStats
	g := daggen.Pyramid(3)
	_, err := Exact(Problem{G: g, Model: pebble.NewModel(pebble.Oneshot), R: 3},
		ExactOptions{Parallel: 4, Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	if st.Expanded <= 0 || st.Pushed <= 0 || st.Distinct <= 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}
