// Package parpeb extends the red-blue pebble game to multiple processors
// — the "multiple shades of red" generalization of Elango et al. (SPAA
// 2014) cited in the paper's related work. Each of P processors owns a
// private fast memory of capacity R ("red pebbles of shade p"); slow
// memory is shared. A value computed on one processor reaches another
// only through slow memory: the producer stores it (cost 1) and the
// consumer loads it (cost 1) — the game's model of communication.
//
// Semantics differ from the sequential game in one deliberate way:
// slow-memory copies are persistent (a Load does not consume the blue
// copy, and a Store keeps the red copy), matching shared-memory
// machines. With P=1 the game is therefore slightly *cheaper* than the
// sequential red-blue game — never more expensive — which the tests
// assert.
package parpeb

import (
	"errors"
	"fmt"

	"rbpebble/internal/bitset"
	"rbpebble/internal/dag"
)

// Config describes the machine: P processors, each with R slots of
// private fast memory.
type Config struct {
	P int
	R int
	// Oneshot forbids computing the same node twice (globally), the
	// analogue of the paper's oneshot model.
	Oneshot bool
}

// Validate checks the machine description against the DAG.
func (c Config) Validate(g *dag.DAG) error {
	if c.P < 1 {
		return errors.New("parpeb: need at least one processor")
	}
	if c.R < 1 {
		return errors.New("parpeb: need positive fast-memory capacity")
	}
	if d := g.MaxInDegree(); c.R < d+1 {
		return fmt.Errorf("parpeb: R=%d < Δ+1=%d, no pebbling exists", c.R, d+1)
	}
	return nil
}

// MoveKind enumerates the parallel-game operations.
type MoveKind int

const (
	// Load copies a slow-memory value into processor Proc's fast memory.
	Load MoveKind = iota
	// Store writes processor Proc's fast copy back to slow memory (the
	// fast copy remains).
	Store
	// Compute executes Node on processor Proc (inputs fast on Proc).
	Compute
	// Drop discards processor Proc's fast copy (free).
	Drop
)

// String names the kind.
func (k MoveKind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case Compute:
		return "compute"
	case Drop:
		return "drop"
	default:
		return fmt.Sprintf("MoveKind(%d)", int(k))
	}
}

// Move is one operation by one processor.
type Move struct {
	Kind MoveKind
	Proc int
	Node dag.NodeID
}

// String renders the move.
func (m Move) String() string { return fmt.Sprintf("p%d:%s(%d)", m.Proc, m.Kind, m.Node) }

// State is a live parallel pebbling position.
type State struct {
	g   *dag.DAG
	cfg Config

	fast     []*bitset.Set // fast[p] = nodes resident on processor p
	counts   []int
	blue     *bitset.Set
	computed *bitset.Set
	perProc  []int // transfer cost charged to each processor
	steps    int
}

// NewState returns the empty starting state.
func NewState(g *dag.DAG, cfg Config) (*State, error) {
	if err := cfg.Validate(g); err != nil {
		return nil, err
	}
	s := &State{
		g: g, cfg: cfg,
		fast:     make([]*bitset.Set, cfg.P),
		counts:   make([]int, cfg.P),
		blue:     bitset.New(g.N()),
		computed: bitset.New(g.N()),
		perProc:  make([]int, cfg.P),
	}
	for p := range s.fast {
		s.fast[p] = bitset.New(g.N())
	}
	return s, nil
}

// IsFast reports whether v is resident in processor p's fast memory.
func (s *State) IsFast(p int, v dag.NodeID) bool { return s.fast[p].Get(int(v)) }

// IsBlue reports whether v has a slow-memory copy.
func (s *State) IsBlue(v dag.NodeID) bool { return s.blue.Get(int(v)) }

// TotalCost returns the total number of transfers across processors.
func (s *State) TotalCost() int {
	t := 0
	for _, c := range s.perProc {
		t += c
	}
	return t
}

// MaxProcCost returns the largest per-processor transfer count — a proxy
// for the communication critical path.
func (s *State) MaxProcCost() int {
	m := 0
	for _, c := range s.perProc {
		if c > m {
			m = c
		}
	}
	return m
}

// PerProcCost returns a copy of the per-processor transfer counts.
func (s *State) PerProcCost() []int { return append([]int(nil), s.perProc...) }

// Steps returns the number of applied moves.
func (s *State) Steps() int { return s.steps }

// Check reports whether m is legal.
func (s *State) Check(m Move) error {
	if m.Proc < 0 || m.Proc >= s.cfg.P {
		return fmt.Errorf("parpeb: %s: no such processor", m)
	}
	v := int(m.Node)
	if v < 0 || v >= s.g.N() {
		return fmt.Errorf("parpeb: %s: node out of range", m)
	}
	switch m.Kind {
	case Load:
		if !s.blue.Get(v) {
			return fmt.Errorf("parpeb: %s: no slow-memory copy", m)
		}
		if s.fast[m.Proc].Get(v) {
			return fmt.Errorf("parpeb: %s: already resident", m)
		}
		if s.counts[m.Proc] >= s.cfg.R {
			return fmt.Errorf("parpeb: %s: fast memory full", m)
		}
		return nil
	case Store:
		if !s.fast[m.Proc].Get(v) {
			return fmt.Errorf("parpeb: %s: not resident", m)
		}
		if s.blue.Get(v) {
			return fmt.Errorf("parpeb: %s: slow copy already exists", m)
		}
		return nil
	case Compute:
		if s.cfg.Oneshot && s.computed.Get(v) {
			return fmt.Errorf("parpeb: %s: already computed (oneshot)", m)
		}
		if s.fast[m.Proc].Get(v) {
			return fmt.Errorf("parpeb: %s: already resident", m)
		}
		for _, u := range s.g.Preds(m.Node) {
			if !s.fast[m.Proc].Get(int(u)) {
				return fmt.Errorf("parpeb: %s: input %d not resident", m, u)
			}
		}
		if s.counts[m.Proc] >= s.cfg.R {
			return fmt.Errorf("parpeb: %s: fast memory full", m)
		}
		return nil
	case Drop:
		if !s.fast[m.Proc].Get(v) {
			return fmt.Errorf("parpeb: %s: not resident", m)
		}
		return nil
	default:
		return fmt.Errorf("parpeb: unknown move kind %d", int(m.Kind))
	}
}

// Apply executes m; the state is unchanged on error.
func (s *State) Apply(m Move) error {
	if err := s.Check(m); err != nil {
		return err
	}
	v := int(m.Node)
	switch m.Kind {
	case Load:
		s.fast[m.Proc].Set(v)
		s.counts[m.Proc]++
		s.perProc[m.Proc]++
	case Store:
		s.blue.Set(v)
		s.perProc[m.Proc]++
	case Compute:
		s.fast[m.Proc].Set(v)
		s.counts[m.Proc]++
		s.computed.Set(v)
	case Drop:
		s.fast[m.Proc].Clear(v)
		s.counts[m.Proc]--
	}
	s.steps++
	return nil
}

// MustApply panics on illegal moves.
func (s *State) MustApply(m Move) {
	if err := s.Apply(m); err != nil {
		panic(err)
	}
}

// Complete reports whether every sink has a copy somewhere (slow memory
// or any processor's fast memory).
func (s *State) Complete() bool {
	for _, v := range s.g.Sinks() {
		if s.blue.Get(int(v)) {
			continue
		}
		found := false
		for p := 0; p < s.cfg.P; p++ {
			if s.fast[p].Get(int(v)) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
