package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rbpebble/internal/dag"
	"rbpebble/internal/daggen"
	"rbpebble/internal/service"
)

// testCluster is a 2-node rbserve fleet behind one proxy, all
// in-process.
type testCluster struct {
	nodes   []*service.Server
	nodeTS  []*httptest.Server
	members []string
	proxy   *Proxy
	ts      *httptest.Server
}

func newTestCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	tc := &testCluster{}
	for i := 0; i < n; i++ {
		s := service.New(service.Config{})
		ts := httptest.NewServer(s.Handler())
		tc.nodes = append(tc.nodes, s)
		tc.nodeTS = append(tc.nodeTS, ts)
		tc.members = append(tc.members, strings.TrimPrefix(ts.URL, "http://"))
	}
	// ProbeInterval < 0: no background prober — tests drive health
	// transitions deterministically via ProbeOnce/SetHealthy.
	tc.proxy = NewProxy(ProxyConfig{Members: tc.members, ProbeInterval: -1})
	tc.ts = httptest.NewServer(tc.proxy.Handler())
	t.Cleanup(func() {
		tc.ts.Close()
		tc.proxy.Close()
		for i := range tc.nodes {
			tc.nodeTS[i].Close()
			tc.nodes[i].Close()
		}
	})
	return tc
}

func dagJSON(t *testing.T, g *dag.DAG) string {
	t.Helper()
	b, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func (tc *testCluster) post(t *testing.T, body string) (int, service.SolveResponse, string) {
	t.Helper()
	resp, err := http.Post(tc.ts.URL+"/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	var sr service.SolveResponse
	json.Unmarshal(buf.Bytes(), &sr)
	return resp.StatusCode, sr, resp.Header.Get("X-Rbproxy-Node")
}

func (tc *testCluster) metrics(t *testing.T) string {
	t.Helper()
	resp, err := http.Get(tc.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.String()
}

func metricValue(t *testing.T, dump, name string) int {
	t.Helper()
	for _, line := range strings.Split(dump, "\n") {
		var v int
		if _, err := fmt.Sscanf(line, name+" %d", &v); err == nil {
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, dump)
	return 0
}

// relabeled returns an isomorphic copy of g with reversed node IDs.
func relabeled(g *dag.DAG) *dag.DAG {
	h := dag.New(g.N())
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Succs(dag.NodeID(v)) {
			h.AddEdge(dag.NodeID(g.N()-1-v), dag.NodeID(g.N()-1-int(w)))
		}
	}
	return h
}

// TestProxyRoutesByCanonicalKey: repeats — and isomorphic relabelings
// — of one instance land on the same node, proven by the second
// request hitting that node's cache.
func TestProxyRoutesByCanonicalKey(t *testing.T) {
	tc := newTestCluster(t, 2)
	g := daggen.Pyramid(4)
	body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3}`, dagJSON(t, g))
	code, sr, node1 := tc.post(t, body)
	if code != http.StatusOK || !sr.Optimal || sr.Cached {
		t.Fatalf("first: code=%d %+v", code, sr)
	}
	if node1 == "" {
		t.Fatal("no X-Rbproxy-Node header")
	}
	code, sr, node2 := tc.post(t, body)
	if code != http.StatusOK || !sr.Cached || node2 != node1 {
		t.Fatalf("repeat: code=%d node=%s (first %s) %+v", code, node2, node1, sr)
	}
	// Isomorphic relabeling: same canonical key, same node, cache hit.
	iso := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3}`, dagJSON(t, relabeled(g)))
	code, sr, node3 := tc.post(t, iso)
	if code != http.StatusOK || !sr.Cached || node3 != node1 {
		t.Fatalf("relabeled: code=%d node=%s (first %s) %+v", code, node3, node1, sr)
	}
}

// TestProxyWarmStartConvergence is the tentpole acceptance path: two
// deadline-limited solves of an isomorphic-relabeled hard instance
// through the proxy; the second must route to the same node,
// warm-start, and certify an interval no wider than the first.
func TestProxyWarmStartConvergence(t *testing.T) {
	tc := newTestCluster(t, 2)
	g := daggen.FFT(3)
	body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3,"deadline_ms":100}`, dagJSON(t, g))
	code, first, node1 := tc.post(t, body)
	if code != http.StatusOK {
		t.Fatalf("first: code=%d", code)
	}
	if first.Optimal {
		t.Skip("host closed fft(3) R=3 in 100ms; convergence not observable")
	}
	iso := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3,"deadline_ms":100}`, dagJSON(t, relabeled(g)))
	code, second, node2 := tc.post(t, iso)
	if code != http.StatusOK {
		t.Fatalf("second: code=%d", code)
	}
	if node2 != node1 {
		t.Fatalf("relabeled hard instance routed to %s, first went to %s", node2, node1)
	}
	if !second.Warmed {
		t.Fatalf("second request did not warm-start: %+v", second)
	}
	if second.Upper > first.Upper || second.Lower < first.Lower {
		t.Fatalf("interval widened: first [%v, %v], second [%v, %v]",
			first.Lower, first.Upper, second.Lower, second.Upper)
	}
	dump := tc.metrics(t)
	if got := metricValue(t, dump, "cluster_rbserve_warm_starts_total"); got != 1 {
		t.Fatalf("cluster warm_starts_total = %d, want 1\n%s", got, dump)
	}
}

// TestProxyFailover: when the owning node drains, the proxy demotes it
// and retries the next ring member; when it recovers, a probe
// re-admits it.
func TestProxyFailover(t *testing.T) {
	tc := newTestCluster(t, 2)
	body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3}`, dagJSON(t, daggen.Pyramid(4)))
	code, _, owner := tc.post(t, body)
	if code != http.StatusOK {
		t.Fatalf("setup solve failed: %d", code)
	}
	ownerIdx := -1
	for i, m := range tc.members {
		if m == owner {
			ownerIdx = i
		}
	}
	if ownerIdx < 0 {
		t.Fatalf("owner %s not a member", owner)
	}

	// Drain the owner: its healthz and /solve start returning 503.
	tc.nodes[ownerIdx].Drain()
	code, sr, node := tc.post(t, body)
	if code != http.StatusOK {
		t.Fatalf("failover solve: code=%d", code)
	}
	if node == owner {
		t.Fatalf("request still served by draining node %s", node)
	}
	if !sr.Optimal {
		t.Fatalf("failover result not optimal: %+v", sr)
	}
	dump := tc.metrics(t)
	if got := metricValue(t, dump, "rbproxy_failovers_total"); got < 1 {
		t.Fatalf("failovers_total = %d, want >= 1", got)
	}
	if tc.proxy.Ring().Healthy(owner) {
		t.Fatal("draining node still marked healthy after failover")
	}
	// Subsequent requests route straight to the surviving node (no
	// extra failover hop).
	before := metricValue(t, dump, "rbproxy_failovers_total")
	code, _, node = tc.post(t, body)
	if code != http.StatusOK || node == owner {
		t.Fatalf("post-demotion routing: code=%d node=%s", code, node)
	}
	if got := metricValue(t, tc.metrics(t), "rbproxy_failovers_total"); got != before {
		t.Fatalf("demoted node still in the hot path: failovers %d -> %d", before, got)
	}
}

// TestProxyJobFanout: async jobs work through the proxy even though
// job IDs are node-local — polls and cancellations fan out.
func TestProxyJobFanout(t *testing.T) {
	tc := newTestCluster(t, 2)
	body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3,"async":true}`, dagJSON(t, daggen.Pyramid(4)))
	resp, err := http.Post(tc.ts.URL+"/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var jr service.JobResponse
	json.NewDecoder(resp.Body).Decode(&jr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || jr.ID == "" {
		t.Fatalf("submit through proxy: %d %+v", resp.StatusCode, jr)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job did not finish via proxy polling")
		}
		resp, err := http.Get(tc.ts.URL + "/solve/" + jr.ID)
		if err != nil {
			t.Fatal(err)
		}
		var got service.JobResponse
		json.NewDecoder(resp.Body).Decode(&got)
		resp.Body.Close()
		if got.Status == "done" {
			if got.Result == nil || !got.Result.Optimal {
				t.Fatalf("done without optimal result: %+v", got)
			}
			break
		}
		if got.Status == "error" || got.Status == "canceled" {
			t.Fatalf("job failed: %+v", got)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Unknown IDs 404 after probing every member.
	resp, err = http.Get(tc.ts.URL + "/solve/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", resp.StatusCode)
	}
}

// TestClusterHealthView: /healthz aggregates per-node health; the
// cluster stays ok while one node lives, 503 when none do.
func TestClusterHealthView(t *testing.T) {
	tc := newTestCluster(t, 2)
	get := func() (int, ClusterHealth) {
		resp, err := http.Get(tc.ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ch ClusterHealth
		json.NewDecoder(resp.Body).Decode(&ch)
		return resp.StatusCode, ch
	}
	code, ch := get()
	if code != http.StatusOK || !ch.OK || len(ch.Nodes) != 2 {
		t.Fatalf("healthy cluster: %d %+v", code, ch)
	}

	// Drain node 0 and re-probe: the view demotes exactly it.
	tc.nodes[0].Drain()
	p := &Prober{ring: tc.proxy.Ring(), client: http.DefaultClient}
	p.ProbeOnce()
	code, ch = get()
	if code != http.StatusOK || !ch.OK {
		t.Fatalf("one-node cluster should stay ok: %d %+v", code, ch)
	}
	healthyCount := 0
	for _, n := range ch.Nodes {
		if n.Healthy {
			healthyCount++
		}
	}
	if healthyCount != 1 {
		t.Fatalf("want exactly 1 healthy node, got %+v", ch)
	}

	tc.nodes[1].Drain()
	p.ProbeOnce()
	code, ch = get()
	if code != http.StatusServiceUnavailable || ch.OK {
		t.Fatalf("all-drained cluster: %d %+v", code, ch)
	}
}

// TestProxyRejectsHugeNodeCount: the routing parse enforces the same
// node-count guard as the nodes — a tiny body declaring two billion
// nodes must be rejected at the proxy, not allocated.
func TestProxyRejectsHugeNodeCount(t *testing.T) {
	tc := newTestCluster(t, 2)
	code, _, _ := tc.post(t, `{"dag":{"nodes":2000000000,"edges":[]},"model":"oneshot"}`)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("huge node count: code=%d, want 422", code)
	}
}

// TestProxyRelaysNonDrainingServiceUnavailable: a per-request 503
// without the draining header (queue full, wait timeout) comes from a
// healthy node and must be relayed, not treated as node death.
func TestProxyRelaysNonDrainingServiceUnavailable(t *testing.T) {
	overloaded := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"job queue full"}`, http.StatusServiceUnavailable)
	}))
	defer overloaded.Close()
	member := strings.TrimPrefix(overloaded.URL, "http://")
	p := NewProxy(ProxyConfig{Members: []string{member}, ProbeInterval: -1})
	defer p.Close()
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3}`, dagJSON(t, daggen.Pyramid(3)))
	resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("code=%d, want the node's 503 relayed", resp.StatusCode)
	}
	if !p.Ring().Healthy(member) {
		t.Fatal("healthy node demoted for a per-request 503")
	}
}
