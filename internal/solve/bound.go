package solve

import (
	"errors"

	"rbpebble/internal/pebble"
)

// ErrInfeasible is returned by RootLowerBound and by every exact
// engine when the instance admits no complete pebbling under its
// convention — e.g. a needed source that starts blue can
// never be recomputed after a delete in oneshot.
var ErrInfeasible = errors.New("solve: instance is infeasible under this convention")

// RootLowerBound returns the certified scaled lower bound the selected
// heuristic tier assigns to the initial state of p — an instant
// "the optimum costs at least L" certificate, admissible in every
// model. The anytime orchestrator publishes it before any search runs;
// a deadline that fires immediately afterwards still yields a nonzero
// certified interval on any instance with forced transfers.
//
// It returns ErrInfeasible when no complete pebbling exists at any
// cost, and an error for invalid instances (R too small, cyclic graph).
func RootLowerBound(p Problem, h Heuristic) (int64, error) {
	start, err := pebble.NewState(p.G, p.Model, p.R, p.Convention)
	if err != nil {
		return 0, err
	}
	if start.Complete() {
		return 0, nil
	}
	lb := newLowerBound(p, h, start)
	v, dead := lb.estimate(start)
	if dead {
		return 0, ErrInfeasible
	}
	return v, nil
}
