// Package multilevel generalizes the red-blue pebble game to memory
// hierarchies with more than two levels — the extension discussed by
// Carpenter et al. (SPAA 2016) and cited in the paper's related work.
//
// A hierarchy has L levels: level 0 is the fastest (where computation
// happens) and level L-1 is unbounded slow memory. Each bounded level i
// holds at most Limits[i] values; moving a value between level i and
// i+1 (either direction) costs Costs[i]. A node holds at most one
// pebble, annotated with the level it resides at. Computing a node
// requires all of its inputs at level 0 and places the result at
// level 0.
//
// The classic red-blue game is the special case of two levels:
// NewHierarchy([]int{R}, []int{1}).
package multilevel

import (
	"errors"
	"fmt"

	"rbpebble/internal/dag"
)

// Hierarchy describes a multi-level memory system. With F = len(Limits)
// bounded fast levels, the hierarchy has F+1 levels in total; level F is
// unbounded. Costs[i] is the price of a transfer between level i and
// level i+1, so a fetch from level j to level 0 costs
// Costs[0]+...+Costs[j-1].
type Hierarchy struct {
	Limits []int
	Costs  []int
}

// NewHierarchy validates and returns a hierarchy.
func NewHierarchy(limits, costs []int) (Hierarchy, error) {
	if len(limits) == 0 {
		return Hierarchy{}, errors.New("multilevel: need at least one bounded level")
	}
	if len(costs) != len(limits) {
		return Hierarchy{}, fmt.Errorf("multilevel: len(costs)=%d != len(limits)=%d", len(costs), len(limits))
	}
	for i, l := range limits {
		if l < 1 {
			return Hierarchy{}, fmt.Errorf("multilevel: limit of level %d must be positive, got %d", i, l)
		}
	}
	for i, c := range costs {
		if c < 0 {
			return Hierarchy{}, fmt.Errorf("multilevel: cost of link %d must be non-negative, got %d", i, c)
		}
	}
	return Hierarchy{Limits: limits, Costs: costs}, nil
}

// Levels returns the total number of levels (bounded levels + the
// unbounded last level).
func (h Hierarchy) Levels() int { return len(h.Limits) + 1 }

// FetchCost returns the cost of moving a value from level j to level 0.
func (h Hierarchy) FetchCost(j int) int {
	c := 0
	for i := 0; i < j; i++ {
		c += h.Costs[i]
	}
	return c
}

// MoveKind enumerates the multilevel operations.
type MoveKind int

const (
	// Promote moves a pebble from level Level+1 to Level.
	Promote MoveKind = iota
	// Demote moves a pebble from level Level to Level+1.
	Demote
	// Compute places a pebble for Node at level 0 (inputs must be at
	// level 0; sources always computable).
	Compute
	// Delete removes Node's pebble.
	Delete
)

// String names the move kind.
func (k MoveKind) String() string {
	switch k {
	case Promote:
		return "promote"
	case Demote:
		return "demote"
	case Compute:
		return "compute"
	case Delete:
		return "delete"
	default:
		return fmt.Sprintf("MoveKind(%d)", int(k))
	}
}

// Move is one operation. Level is the upper level index of the link a
// Promote/Demote crosses (value moves between Level and Level+1); it is
// ignored for Compute and Delete.
type Move struct {
	Kind  MoveKind
	Node  dag.NodeID
	Level int
}

// String renders the move.
func (m Move) String() string {
	switch m.Kind {
	case Promote, Demote:
		return fmt.Sprintf("%s(%d, L%d<->L%d)", m.Kind, m.Node, m.Level, m.Level+1)
	default:
		return fmt.Sprintf("%s(%d)", m.Kind, m.Node)
	}
}

// State is a live multilevel pebbling position.
type State struct {
	g       *dag.DAG
	h       Hierarchy
	oneshot bool

	level    []int8 // -1 = no pebble, else residence level
	counts   []int  // pebbles per bounded level
	computed []bool
	cost     int
	steps    int
}

// NoPebble marks a node without a pebble.
const NoPebble = int8(-1)

// NewState returns the empty starting state. With oneshot true, each
// node may be computed at most once (the analogue of the oneshot model).
func NewState(g *dag.DAG, h Hierarchy, oneshot bool) (*State, error) {
	if _, err := NewHierarchy(h.Limits, h.Costs); err != nil {
		return nil, err
	}
	if d := g.MaxInDegree(); h.Limits[0] < d+1 {
		return nil, fmt.Errorf("multilevel: level-0 limit %d < Δ+1 = %d, no pebbling exists", h.Limits[0], d+1)
	}
	lv := make([]int8, g.N())
	for i := range lv {
		lv[i] = NoPebble
	}
	return &State{
		g: g, h: h, oneshot: oneshot,
		level:    lv,
		counts:   make([]int, len(h.Limits)),
		computed: make([]bool, g.N()),
	}, nil
}

// Level returns the residence level of v's pebble, or NoPebble.
func (s *State) Level(v dag.NodeID) int8 { return s.level[v] }

// Cost returns the accumulated transfer cost.
func (s *State) Cost() int { return s.cost }

// Steps returns the number of applied moves.
func (s *State) Steps() int { return s.steps }

// CountAt returns the number of pebbles at bounded level i.
func (s *State) CountAt(i int) int { return s.counts[i] }

// Check reports whether m is legal.
func (s *State) Check(m Move) error {
	v := int(m.Node)
	if v < 0 || v >= s.g.N() {
		return fmt.Errorf("multilevel: node %d out of range", m.Node)
	}
	switch m.Kind {
	case Promote:
		if m.Level < 0 || m.Level >= len(s.h.Limits) {
			return fmt.Errorf("multilevel: bad link level %d", m.Level)
		}
		if int(s.level[v]) != m.Level+1 {
			return fmt.Errorf("multilevel: %s: node is at level %d", m, s.level[v])
		}
		if s.counts[m.Level] >= s.h.Limits[m.Level] {
			return fmt.Errorf("multilevel: %s: level %d full", m, m.Level)
		}
		return nil
	case Demote:
		if m.Level < 0 || m.Level >= len(s.h.Limits) {
			return fmt.Errorf("multilevel: bad link level %d", m.Level)
		}
		if int(s.level[v]) != m.Level {
			return fmt.Errorf("multilevel: %s: node is at level %d", m, s.level[v])
		}
		if m.Level+1 < len(s.h.Limits) && s.counts[m.Level+1] >= s.h.Limits[m.Level+1] {
			return fmt.Errorf("multilevel: %s: level %d full", m, m.Level+1)
		}
		return nil
	case Compute:
		if s.oneshot && s.computed[v] {
			return fmt.Errorf("multilevel: %s: already computed (oneshot)", m)
		}
		if s.level[v] == 0 {
			return fmt.Errorf("multilevel: %s: already at level 0", m)
		}
		for _, u := range s.g.Preds(m.Node) {
			if s.level[u] != 0 {
				return fmt.Errorf("multilevel: %s: input %d not at level 0", m, u)
			}
		}
		if s.counts[0] >= s.h.Limits[0] {
			return fmt.Errorf("multilevel: %s: level 0 full", m)
		}
		return nil
	case Delete:
		if s.level[v] == NoPebble {
			return fmt.Errorf("multilevel: %s: no pebble", m)
		}
		return nil
	default:
		return fmt.Errorf("multilevel: unknown move kind %d", int(m.Kind))
	}
}

// Apply executes m, updating cost and counts; the state is unchanged on
// error.
func (s *State) Apply(m Move) error {
	if err := s.Check(m); err != nil {
		return err
	}
	v := int(m.Node)
	switch m.Kind {
	case Promote:
		s.adjustCount(m.Level+1, -1)
		s.level[v] = int8(m.Level)
		s.counts[m.Level]++
		s.cost += s.h.Costs[m.Level]
	case Demote:
		s.counts[m.Level]--
		s.level[v] = int8(m.Level + 1)
		s.adjustCount(m.Level+1, +1)
		s.cost += s.h.Costs[m.Level]
	case Compute:
		if s.level[v] != NoPebble {
			// Replace the existing (deeper) pebble, mirroring the 2-level
			// game's compute-over-blue.
			s.adjustCount(int(s.level[v]), -1)
		}
		s.level[v] = 0
		s.counts[0]++
		s.computed[v] = true
	case Delete:
		s.adjustCount(int(s.level[v]), -1)
		s.level[v] = NoPebble
	}
	s.steps++
	return nil
}

// adjustCount updates the pebble count of a level if it is bounded.
func (s *State) adjustCount(level, delta int) {
	if level < len(s.h.Limits) {
		s.counts[level] += delta
	}
}

// MustApply panics on illegal moves.
func (s *State) MustApply(m Move) {
	if err := s.Apply(m); err != nil {
		panic(err)
	}
}

// Complete reports whether every sink holds a pebble at some level.
func (s *State) Complete() bool {
	for _, v := range s.g.Sinks() {
		if s.level[v] == NoPebble {
			return false
		}
	}
	return true
}
