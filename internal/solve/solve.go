// Package solve provides pebbling solvers: an exact best-first search
// over game states (A* with an admissible model-aware lower bound,
// packed-state deduplication, optional hash-sharded parallel expansion;
// small instances, all models), a depth-first branch-and-bound second
// implementation, an exhaustive order-enumeration optimum for the
// oneshot model, the three greedy strategies analyzed in §8 of the
// paper, and the naive topological baseline realizing the (2Δ+1)·n
// universal upper bound.
package solve

import (
	"rbpebble/internal/dag"
	"rbpebble/internal/pebble"
)

// Solution is a solver's output: the pebbling it found and the verified
// replay result.
type Solution struct {
	Trace  *pebble.Trace
	Result pebble.Result
}

// Cost returns the solution's exact cost.
func (s Solution) Cost() pebble.Cost { return s.Result.Cost }

// Value returns the solution's cost value under its own model.
func (s Solution) Value() float64 { return s.Result.Cost.Value(s.Trace.Model) }

// Problem bundles a pebbling instance.
type Problem struct {
	G          *dag.DAG
	Model      pebble.Model
	R          int
	Convention pebble.Convention
}

// verify replays tr against the problem and panics on failure: solvers use
// it as an internal self-check so an illegal trace can never escape.
func verify(p Problem, tr *pebble.Trace) Solution {
	res, err := tr.Run(p.G)
	if err != nil {
		panic("solve: internal error: solver produced invalid trace: " + err.Error())
	}
	return Solution{Trace: tr, Result: res}
}
