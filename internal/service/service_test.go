package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rbpebble/internal/anytime"
	"rbpebble/internal/dag"
	"rbpebble/internal/daggen"
	"rbpebble/internal/solve"
)

func dagJSON(t *testing.T, g *dag.DAG) json.RawMessage {
	t.Helper()
	b, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func postSolve(t *testing.T, ts *httptest.Server, body string) (int, SolveResponse, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	var sr SolveResponse
	json.Unmarshal(buf.Bytes(), &sr)
	return resp.StatusCode, sr, buf.String()
}

func metric(t *testing.T, ts *httptest.Server, name string) int {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	for _, line := range strings.Split(buf.String(), "\n") {
		var v int
		if _, err := fmt.Sscanf(line, name+" %d", &v); err == nil {
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, buf.String())
	return 0
}

// TestSolveOptimalAndCacheHit is the smoke path: pyramid(4) solves to a
// proven optimum; an identical repeat (different node numbering!) is a
// cache hit with the same certified answer, observable via /metrics.
func TestSolveOptimalAndCacheHit(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g := daggen.Pyramid(4)
	body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3,"include_trace":true}`, dagJSON(t, g))
	code, sr, raw := postSolve(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if !sr.Optimal || sr.Cached || sr.Gap != 0 {
		t.Fatalf("first solve: %+v", sr)
	}
	if len(sr.Moves) == 0 {
		t.Fatal("include_trace returned no moves")
	}
	want := sr.Cost

	// Repeat with a relabeled isomorphic copy: still a cache hit.
	perm := make([]dag.NodeID, g.N())
	for v := 0; v < g.N(); v++ {
		perm[v] = dag.NodeID(g.N() - 1 - v)
	}
	h := dag.New(g.N())
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Succs(dag.NodeID(v)) {
			h.AddEdge(perm[v], perm[w])
		}
	}
	code, sr2, raw := postSolve(t, ts, fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3}`, dagJSON(t, h)))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if !sr2.Cached || !sr2.Optimal || sr2.Cost != want {
		t.Fatalf("relabeled repeat not served from cache: %+v", sr2)
	}
	if got := metric(t, ts, "rbserve_cache_hits_total"); got != 1 {
		t.Fatalf("cache_hits_total = %d, want 1", got)
	}
	if got := metric(t, ts, "rbserve_solves_total"); got != 1 {
		t.Fatalf("solves_total = %d, want 1", got)
	}
}

// TestSingleflightConcurrentRequests gates the solver so that N
// concurrent identical requests demonstrably share one solve.
func TestSingleflightConcurrentRequests(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	gate := make(chan struct{})
	started := make(chan struct{}, 64)
	var calls int // guarded by singleflight: only one caller runs
	s.solveFn = func(ctx context.Context, p solve.Problem, opts anytime.Options) (anytime.Result, error) {
		calls++
		started <- struct{}{}
		<-gate
		return anytime.Solve(ctx, p, anytime.Options{})
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3}`, dagJSON(t, daggen.Pyramid(4)))
	const n = 8
	var wg sync.WaitGroup
	results := make([]SolveResponse, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, sr, raw := postSolve(t, ts, body)
			if code != http.StatusOK {
				t.Errorf("status %d: %s", code, raw)
			}
			results[i] = sr
		}(i)
	}
	<-started // the one solve is running; the rest must latch on
	for {
		if metric(t, ts, "rbserve_cache_misses_total") >= n {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if calls != 1 {
		t.Fatalf("solver ran %d times for %d concurrent identical requests", calls, n)
	}
	sharedCount := 0
	for _, sr := range results {
		if !sr.Optimal {
			t.Fatalf("non-optimal result: %+v", sr)
		}
		if sr.Shared {
			sharedCount++
		}
	}
	if sharedCount != n-1 {
		t.Fatalf("%d requests shared the flight, want %d", sharedCount, n-1)
	}
	if got := metric(t, ts, "rbserve_singleflight_shared_total"); got != n-1 {
		t.Fatalf("singleflight_shared_total = %d, want %d", got, n-1)
	}
	if got := metric(t, ts, "rbserve_solves_total"); got != 1 {
		t.Fatalf("solves_total = %d, want 1", got)
	}
}

// TestAsyncJob exercises the queue: enqueue, poll until done, check
// the certified result.
func TestAsyncJob(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3,"async":true}`, dagJSON(t, daggen.Pyramid(4)))
	resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var jr JobResponse
	json.NewDecoder(resp.Body).Decode(&jr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || jr.ID == "" {
		t.Fatalf("submit: status %d, job %+v", resp.StatusCode, jr)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job did not finish")
		}
		resp, err := http.Get(ts.URL + "/solve/" + jr.ID)
		if err != nil {
			t.Fatal(err)
		}
		var got JobResponse
		json.NewDecoder(resp.Body).Decode(&got)
		resp.Body.Close()
		if got.Status == "done" {
			if got.Result == nil || !got.Result.Optimal {
				t.Fatalf("done without optimal result: %+v", got)
			}
			break
		}
		if got.Status == "error" {
			t.Fatalf("job failed: %s", got.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := metric(t, ts, "rbserve_jobs_done_total"); got != 1 {
		t.Fatalf("jobs_done_total = %d, want 1", got)
	}
}

// TestDeadlineReturnsCertifiedInterval: a tiny deadline on a hard
// instance returns 200 with a non-optimal certified interval.
func TestDeadlineReturnsCertifiedInterval(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3,"deadline_ms":60}`, dagJSON(t, daggen.FFT(3)))
	code, sr, raw := postSolve(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if sr.Optimal {
		t.Skip("host solved fft(3) within 60ms; interval check not reachable")
	}
	if sr.Lower <= 0 || sr.Lower > sr.Upper || sr.Gap <= 0 {
		t.Fatalf("incoherent certified interval: %+v", sr)
	}
	// A deadline-limited (non-optimal) answer must not poison the cache.
	_, sr2, _ := postSolve(t, ts, body)
	if sr2.Cached {
		t.Fatalf("non-optimal result was served from cache: %+v", sr2)
	}
}

// TestBadRequests covers the error paths.
func TestBadRequests(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		name, body string
		wantCode   int
	}{
		{"empty", `{}`, http.StatusUnprocessableEntity},
		{"bad json", `{`, http.StatusBadRequest},
		{"bad model", fmt.Sprintf(`{"dag":%s,"model":"nope"}`, dagJSON(t, daggen.Chain(3))), http.StatusUnprocessableEntity},
		{"r too small", fmt.Sprintf(`{"dag":%s,"r":1}`, dagJSON(t, daggen.Pyramid(3))), http.StatusUnprocessableEntity},
		{"bad async", `{"async":true}`, http.StatusBadRequest},
		// The declared node count is rejected before the graph is
		// materialized — a 50-byte body must not allocate 2B nodes.
		{"huge node count", `{"dag":{"nodes":2000000000,"edges":[]}}`, http.StatusUnprocessableEntity},
	} {
		t.Run(tc.name, func(t *testing.T) {
			code, _, raw := postSolve(t, ts, tc.body)
			if code != tc.wantCode {
				t.Fatalf("status %d, want %d (%s)", code, tc.wantCode, raw)
			}
		})
	}
	resp, err := http.Get(ts.URL + "/solve/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// TestHealthz sanity-checks the probe.
func TestHealthz(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}
