package cluster

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// scriptedRT is a RoundTripper that plays back a fixed sequence of
// outcomes, making retry behavior deterministic without sockets.
type scriptedRT struct {
	mu      sync.Mutex
	calls   int
	outcome []error // nil = 200 OK; non-nil = transport error
}

func (rt *scriptedRT) RoundTrip(req *http.Request) (*http.Response, error) {
	rt.mu.Lock()
	i := rt.calls
	rt.calls++
	rt.mu.Unlock()
	var err error
	if i < len(rt.outcome) {
		err = rt.outcome[i]
	}
	if err != nil {
		return nil, err
	}
	return &http.Response{
		StatusCode: http.StatusOK,
		Body:       io.NopCloser(strings.NewReader("ok")),
		Header:     http.Header{},
		Request:    req,
	}, nil
}

func (rt *scriptedRT) count() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.calls
}

func dialRefused() error {
	return &net.OpError{Op: "dial", Net: "tcp", Err: errors.New("connection refused")}
}

func writeFailed() error {
	return &net.OpError{Op: "write", Net: "tcp", Err: errors.New("broken pipe")}
}

func noSleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

func newTestComm(rt *scriptedRT, cfg CommConfig) *CommClient {
	cfg.Client = &http.Client{Transport: rt}
	if cfg.sleep == nil {
		cfg.sleep = noSleep
	}
	return NewComm(cfg)
}

func TestCommGetRetriesTransportFailures(t *testing.T) {
	rt := &scriptedRT{outcome: []error{writeFailed(), writeFailed(), nil}}
	c := newTestComm(rt, CommConfig{MaxAttempts: 3})
	resp, err := c.Get(context.Background(), "node:1", "/healthz")
	if err != nil {
		t.Fatalf("Get after retries: %v", err)
	}
	resp.Body.Close()
	if got := rt.count(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
}

func TestCommGetExhaustsBudget(t *testing.T) {
	rt := &scriptedRT{outcome: []error{writeFailed(), writeFailed(), writeFailed(), nil}}
	c := newTestComm(rt, CommConfig{MaxAttempts: 3, BreakerThreshold: 100})
	if _, err := c.Get(context.Background(), "node:1", "/healthz"); err == nil {
		t.Fatal("want error after exhausting attempts")
	}
	if got := rt.count(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (budget)", got)
	}
}

func TestCommPostNotRetriedAfterBytesSent(t *testing.T) {
	// A write error means request bytes may have reached the node: a
	// replay could double-submit, so the POST must fail after 1 attempt.
	rt := &scriptedRT{outcome: []error{writeFailed(), nil}}
	c := newTestComm(rt, CommConfig{MaxAttempts: 3})
	if _, err := c.Post(context.Background(), "node:1", "/solve", "application/json", []byte("{}")); err == nil {
		t.Fatal("want error, POST must not be replayed after a write failure")
	}
	if got := rt.count(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (no replay)", got)
	}
}

func TestCommPostRetriedOnDialError(t *testing.T) {
	// Connection refused happens before any bytes are sent — safe to
	// retry even for a POST.
	rt := &scriptedRT{outcome: []error{dialRefused(), nil}}
	c := newTestComm(rt, CommConfig{MaxAttempts: 3})
	resp, err := c.Post(context.Background(), "node:1", "/solve", "application/json", []byte("{}"))
	if err != nil {
		t.Fatalf("Post after dial retry: %v", err)
	}
	resp.Body.Close()
	if got := rt.count(); got != 2 {
		t.Fatalf("attempts = %d, want 2", got)
	}
}

func TestCommBreakerOpensAndFailsFast(t *testing.T) {
	rt := &scriptedRT{outcome: []error{writeFailed(), writeFailed(), writeFailed(), writeFailed()}}
	var opened []string
	c := newTestComm(rt, CommConfig{
		MaxAttempts:      1,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
		OnBreakerOpen:    func(m string) { opened = append(opened, m) },
	})
	ctx := context.Background()
	c.Get(ctx, "node:1", "/x")
	c.Get(ctx, "node:1", "/x")
	if !c.BreakerOpen("node:1") {
		t.Fatal("breaker should be open after 2 consecutive failures")
	}
	if len(opened) != 1 || opened[0] != "node:1" {
		t.Fatalf("OnBreakerOpen calls = %v, want one for node:1", opened)
	}
	before := rt.count()
	if _, err := c.Get(ctx, "node:1", "/x"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if rt.count() != before {
		t.Fatal("open breaker must fail fast without a network attempt")
	}
	if got := c.OpenBreakers(); len(got) != 1 || got[0] != "node:1" {
		t.Fatalf("OpenBreakers = %v", got)
	}
	c.Forget("node:1")
	if c.BreakerOpen("node:1") {
		t.Fatal("Forget should clear breaker state")
	}
}

func TestCommBreakerHalfOpenRecovery(t *testing.T) {
	rt := &scriptedRT{outcome: []error{writeFailed(), writeFailed(), nil}}
	clock := time.Now()
	c := newTestComm(rt, CommConfig{
		MaxAttempts:      1,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Second,
		now:              func() time.Time { return clock },
	})
	ctx := context.Background()
	c.Get(ctx, "node:1", "/x")
	c.Get(ctx, "node:1", "/x")
	if !c.BreakerOpen("node:1") {
		t.Fatal("breaker should be open")
	}
	if _, err := c.Get(ctx, "node:1", "/x"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("inside cooldown: err = %v, want ErrBreakerOpen", err)
	}
	clock = clock.Add(2 * time.Second) // cooldown elapsed: admit a trial
	resp, err := c.Get(ctx, "node:1", "/x")
	if err != nil {
		t.Fatalf("half-open trial: %v", err)
	}
	resp.Body.Close()
	if c.BreakerOpen("node:1") {
		t.Fatal("successful trial should close the breaker")
	}
}

func TestCommBackoffBounds(t *testing.T) {
	c := NewComm(CommConfig{BackoffBase: 100 * time.Millisecond, BackoffMax: 400 * time.Millisecond})
	for attempt := 1; attempt <= 5; attempt++ {
		want := 100 * time.Millisecond << (attempt - 1)
		if want > 400*time.Millisecond {
			want = 400 * time.Millisecond
		}
		for i := 0; i < 50; i++ {
			d := c.backoff(attempt)
			if d < want/2 || d > want {
				t.Fatalf("backoff(%d) = %v, want in [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
}

func TestProbeBackoffBounds(t *testing.T) {
	interval := 100 * time.Millisecond
	for k := 1; k <= 8; k++ {
		want := interval << (k - 1)
		if cap := maxProbeBackoff * interval; want > cap {
			want = cap
		}
		for i := 0; i < 50; i++ {
			d := probeBackoff(k, interval)
			if d < want*3/4 || d > want*5/4 {
				t.Fatalf("probeBackoff(%d) = %v, want in [%v, %v]", k, d, want*3/4, want*5/4)
			}
		}
	}
}
