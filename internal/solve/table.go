package solve

import (
	"math"

	"rbpebble/internal/pebble"
)

// Sentinel best-cost values for table entries. A fresh state starts at
// costUnreached; a state proven unwinnable is marked costDead, which
// compares below every real cost so no future path re-opens it.
const (
	costUnreached = math.MaxInt64
	costDead      = math.MinInt64
)

// hashKey mixes a packed state key into a 64-bit hash (a splitmix64
// finalizer folded over the words). Solvers use it both for table
// probing and for sharding states across parallel workers.
func hashKey(key []uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range key {
		h ^= w
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// stateTable is the visited-state set of the exact solvers: an
// open-addressing (linear probing) hash table keyed on packed state
// encodings. Every distinct state gets a dense ref (0, 1, 2, ...); its
// key words live contiguously in a shared arena and its best known
// scaled path cost in best[ref]. Compared to the original
// map[string]int64 it materializes no per-state strings and supports
// in-place cost updates without rehashing.
type stateTable struct {
	kw    int // words per key (0 only for the empty graph)
	mask  uint64
	slots []tableSlot
	arena []uint64 // key words of state ref r at arena[r*kw : (r+1)*kw]
	best  []int64  // best scaled path cost per ref (costUnreached, costDead)
}

// tableSlot holds one probe slot: the full hash (to skip most word
// comparisons) and ref+1, with 0 meaning empty.
type tableSlot struct {
	hash uint64
	ref  uint32
}

func newStateTable(kw, hintStates int) *stateTable {
	size := 1024
	for size < 2*hintStates {
		size *= 2
	}
	return &stateTable{
		kw:    kw,
		mask:  uint64(size - 1),
		slots: make([]tableSlot, size),
		arena: make([]uint64, 0, hintStates*kw),
		best:  make([]int64, 0, hintStates),
	}
}

// count returns the number of distinct states stored.
func (t *stateTable) count() int { return len(t.best) }

// reset empties the table while keeping its capacity, so iterative
// searches (IDA* re-runs the memo once per threshold) reuse the slots,
// arena and cost arrays instead of reallocating them.
func (t *stateTable) reset() {
	clear(t.slots)
	t.arena = t.arena[:0]
	t.best = t.best[:0]
}

// key returns the packed key of state ref (a view into the arena).
func (t *stateTable) key(ref int32) pebble.PackedKey {
	return pebble.PackedKey(t.arena[int(ref)*t.kw : (int(ref)+1)*t.kw])
}

// lookupOrAdd returns the dense ref of key (with hash h), inserting it
// with best = costUnreached when absent.
func (t *stateTable) lookupOrAdd(key []uint64, h uint64) (ref int32, isNew bool) {
	if len(t.best) >= len(t.slots)*7/10 {
		t.grow()
	}
	i := h & t.mask
	for {
		s := t.slots[i]
		if s.ref == 0 {
			ref = int32(len(t.best))
			t.arena = append(t.arena, key...)
			t.best = append(t.best, costUnreached)
			t.slots[i] = tableSlot{hash: h, ref: uint32(ref) + 1}
			return ref, true
		}
		if s.hash == h && t.keyEqual(int32(s.ref-1), key) {
			return int32(s.ref - 1), false
		}
		i = (i + 1) & t.mask
	}
}

func (t *stateTable) keyEqual(ref int32, key []uint64) bool {
	a := t.arena[int(ref)*t.kw : (int(ref)+1)*t.kw]
	for i, w := range key {
		if a[i] != w {
			return false
		}
	}
	return true
}

func (t *stateTable) grow() {
	slots := make([]tableSlot, 2*len(t.slots))
	mask := uint64(len(slots) - 1)
	for _, s := range t.slots {
		if s.ref == 0 {
			continue
		}
		i := s.hash & mask
		for slots[i].ref != 0 {
			i = (i + 1) & mask
		}
		slots[i] = s
	}
	t.slots, t.mask = slots, mask
}
