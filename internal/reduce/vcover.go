package reduce

import (
	"fmt"
	"sort"

	"rbpebble/internal/dag"
	"rbpebble/internal/pebble"
	"rbpebble/internal/sched"
	"rbpebble/internal/ugraph"
)

// VertexCover is the Theorem 3 reduction instance. For each vertex a of
// the source graph it builds a first-level group V(a,1) with N-1 targets
// t(a,1,b) and a second-level group V(a,2) with one target t(a,2); the
// two groups share kPrime common source nodes, and for every source edge
// (a,b) the target t(a,1,b) is a member of V(b,2). All groups have
// uniform size K; pebble with R = K+1.
//
// Visiting V(a,1) and V(a,2) consecutively lets the common nodes live
// their whole life in fast memory (cost 0); splitting them costs 2·kPrime.
// Vertices whose pairs must split form a vertex cover, so the optimal
// pebbling cost is 2·kPrime·|VCmin| + O(N²).
type VertexCover struct {
	Source *ugraph.Graph
	G      *dag.DAG
	KPrime int
	K      int
	R      int
	// Commons[a] lists the kPrime common nodes shared by V(a,1), V(a,2).
	Commons [][]dag.NodeID
	// First[a] and Second[a] are the full member lists of V(a,1), V(a,2).
	First, Second [][]dag.NodeID
	// T1[a][b] is the target t(a,1,b) (b != a); T2[a] is t(a,2).
	T1 [][]dag.NodeID
	T2 []dag.NodeID
}

// NewVertexCover builds the reduction with kPrime common nodes per
// vertex. The paper takes kPrime = ω(N²) so the commons dominate; any
// kPrime >= 1 yields a structurally faithful instance (benchmarks sweep
// it).
func NewVertexCover(src *ugraph.Graph, kPrime int) *VertexCover {
	n := src.N()
	if n < 2 || kPrime < 1 {
		panic("reduce: NewVertexCover needs n >= 2 and kPrime >= 1")
	}
	g := dag.New(0)
	r := &VertexCover{Source: src, G: g, KPrime: kPrime}
	// Uniform group size: commons + worst-case extras. First-level groups
	// hold only commons (+ fillers). Second-level groups hold commons +
	// deg(a) in-targets (+ fillers). K = kPrime + maxDeg.
	maxDeg := 0
	for a := 0; a < n; a++ {
		if d := src.Degree(a); d > maxDeg {
			maxDeg = d
		}
	}
	r.K = kPrime + maxDeg
	r.R = r.K + 1

	r.Commons = make([][]dag.NodeID, n)
	r.First = make([][]dag.NodeID, n)
	r.Second = make([][]dag.NodeID, n)
	r.T1 = make([][]dag.NodeID, n)
	r.T2 = make([]dag.NodeID, n)

	for a := 0; a < n; a++ {
		r.Commons[a] = g.AddNodes(kPrime)
		for i, v := range r.Commons[a] {
			g.SetLabel(v, fmt.Sprintf("c%d.%d", a, i))
		}
		r.T1[a] = make([]dag.NodeID, n)
		for b := range r.T1[a] {
			r.T1[a][b] = -1
		}
		for b := 0; b < n; b++ {
			if b != a {
				r.T1[a][b] = g.AddLabeledNode(fmt.Sprintf("t%d,1,%d", a, b))
			}
		}
		r.T2[a] = g.AddLabeledNode(fmt.Sprintf("t%d,2", a))
	}

	for a := 0; a < n; a++ {
		// First-level members: commons + fillers.
		first := append([]dag.NodeID(nil), r.Commons[a]...)
		for len(first) < r.K {
			first = append(first, g.AddLabeledNode(fmt.Sprintf("f%d,1.%d", a, len(first))))
		}
		r.First[a] = first
		for _, v := range first {
			for b := 0; b < n; b++ {
				if b != a {
					g.AddEdge(v, r.T1[a][b])
				}
			}
		}
		// Second-level members: commons + neighbors' first-level targets
		// pointing at a + fillers.
		second := append([]dag.NodeID(nil), r.Commons[a]...)
		for _, b := range src.Neighbors(a) {
			second = append(second, r.T1[b][a])
		}
		for len(second) < r.K {
			second = append(second, g.AddLabeledNode(fmt.Sprintf("f%d,2.%d", a, len(second))))
		}
		r.Second[a] = second
		for _, v := range second {
			g.AddEdge(v, r.T2[a])
		}
	}
	return r
}

// Visit identifies one group of the reduction: level 1 or 2 of vertex A.
type Visit struct {
	A     int
	Level int
}

// VisitsForCover returns the paper's optimal visit sequence given a
// vertex cover: first-level groups of the cover, then both groups of
// each independent-set vertex consecutively, then the cover's
// second-level groups.
func (r *VertexCover) VisitsForCover(cover []int) []Visit {
	n := r.Source.N()
	inCover := make([]bool, n)
	for _, v := range cover {
		inCover[v] = true
	}
	var visits []Visit
	for a := 0; a < n; a++ {
		if inCover[a] {
			visits = append(visits, Visit{a, 1})
		}
	}
	for a := 0; a < n; a++ {
		if !inCover[a] {
			visits = append(visits, Visit{a, 1}, Visit{a, 2})
		}
	}
	for a := 0; a < n; a++ {
		if inCover[a] {
			visits = append(visits, Visit{a, 2})
		}
	}
	return visits
}

// Order expands a visit sequence into a node-level compute order: each
// group's not-yet-computed source members (ascending), then its targets.
func (r *VertexCover) Order(visits []Visit) []dag.NodeID {
	placed := make(map[dag.NodeID]bool)
	var order []dag.NodeID
	addSources := func(members []dag.NodeID) {
		ms := append([]dag.NodeID(nil), members...)
		sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
		for _, v := range ms {
			if r.G.IsSource(v) && !placed[v] {
				placed[v] = true
				order = append(order, v)
			}
		}
	}
	for _, vis := range visits {
		switch vis.Level {
		case 1:
			addSources(r.First[vis.A])
			for b := 0; b < r.Source.N(); b++ {
				if t := r.T1[vis.A][b]; t >= 0 && !placed[t] {
					placed[t] = true
					order = append(order, t)
				}
			}
		case 2:
			addSources(r.Second[vis.A])
			if !placed[r.T2[vis.A]] {
				placed[r.T2[vis.A]] = true
				order = append(order, r.T2[vis.A])
			}
		default:
			panic("reduce: bad visit level")
		}
	}
	return order
}

// Pebble executes a visit sequence in the oneshot model with Belady
// eviction and returns the verified result.
func (r *VertexCover) Pebble(visits []Visit) (*pebble.Trace, pebble.Result, error) {
	return sched.Execute(r.G, pebble.NewModel(pebble.Oneshot), r.R, pebble.Convention{},
		r.Order(visits), sched.Options{Policy: sched.Belady})
}

// CommonCost returns the dominant cost term of a pebbling whose
// non-consecutive pairs form a cover of the given size: 2·kPrime·size.
func (r *VertexCover) CommonCost(coverSize int) int { return 2 * r.KPrime * coverSize }

// ExtraCostBound bounds the O(N²) non-common terms: at most 2 per
// first-level target plus 1 per second-level target.
func (r *VertexCover) ExtraCostBound() int {
	n := r.Source.N()
	return 2*n*(n-1) + n
}

// ExtractCover recovers a vertex cover from a visit sequence: the
// vertices whose first- and second-level visits are not consecutive. For
// any dependency-respecting sequence the result is a valid cover — for
// each source edge (a,b), V(a,1) precedes V(b,2), so the pairs of a and
// b cannot both be consecutive.
func (r *VertexCover) ExtractCover(visits []Visit) []int {
	pos := make(map[Visit]int, len(visits))
	for i, v := range visits {
		pos[v] = i
	}
	var cover []int
	for a := 0; a < r.Source.N(); a++ {
		p1, ok1 := pos[Visit{a, 1}]
		p2, ok2 := pos[Visit{a, 2}]
		if !ok1 || !ok2 || p2 != p1+1 {
			cover = append(cover, a)
		}
	}
	return cover
}

// VisitsFromTrace recovers the group visit sequence from a compute order
// (the order in which targets appear; a group is visited at its first
// target computation).
func (r *VertexCover) VisitsFromTrace(order []dag.NodeID) []Visit {
	owner := make(map[dag.NodeID]Visit)
	for a := 0; a < r.Source.N(); a++ {
		for b := 0; b < r.Source.N(); b++ {
			if t := r.T1[a][b]; b != a && t >= 0 {
				owner[t] = Visit{a, 1}
			}
		}
		owner[r.T2[a]] = Visit{a, 2}
	}
	seen := make(map[Visit]bool)
	var visits []Visit
	for _, v := range order {
		if vis, ok := owner[v]; ok && !seen[vis] {
			seen[vis] = true
			visits = append(visits, vis)
		}
	}
	return visits
}
