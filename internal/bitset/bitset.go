// Package bitset provides a compact fixed-capacity bit set used to encode
// pebbling states (red set, blue set, computed set) in solvers and the
// game engine. The zero value is unusable; create sets with New.
package bitset

import (
	"math/bits"
	"strings"
)

// Set is a fixed-capacity bit set over [0, n).
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set with capacity n.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity of the set.
func (s *Set) Len() int { return s.n }

// Set sets bit i.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Get reports whether bit i is set.
func (s *Set) Get(i int) bool {
	s.check(i)
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic("bitset: index out of range")
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// Reset clears every bit.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Equal reports whether s and t have the same capacity and contents.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != t.words[i] {
			return false
		}
	}
	return true
}

// Key returns the contents as a compact string usable as a map key.
func (s *Set) Key() string {
	var b strings.Builder
	b.Grow(len(s.words) * 8)
	for _, w := range s.words {
		for k := 0; k < 8; k++ {
			b.WriteByte(byte(w >> (8 * k)))
		}
	}
	return b.String()
}

// AppendKey appends the raw words to dst (for building composite keys
// without intermediate allocations) and returns the extended slice.
func (s *Set) AppendKey(dst []byte) []byte {
	for _, w := range s.words {
		for k := 0; k < 8; k++ {
			dst = append(dst, byte(w>>(8*k)))
		}
	}
	return dst
}

// WordLen returns the number of 64-bit words backing the set:
// ceil(Len()/64).
func (s *Set) WordLen() int { return len(s.words) }

// AppendWords appends the backing words to dst and returns the extended
// slice. Together with LoadWords it gives solvers a zero-allocation
// packed encoding of set contents (word i holds bits 64i..64i+63).
func (s *Set) AppendWords(dst []uint64) []uint64 {
	return append(dst, s.words...)
}

// LoadWords overwrites the set contents from a packed word slice
// produced by AppendWords on a set of the same capacity. It panics if
// len(src) != WordLen().
func (s *Set) LoadWords(src []uint64) {
	if len(src) != len(s.words) {
		panic("bitset: LoadWords length mismatch")
	}
	copy(s.words, src)
}

// Or sets s to the union s ∪ t. The sets must have the same capacity.
func (s *Set) Or(t *Set) {
	if s.n != t.n {
		panic("bitset: Or capacity mismatch")
	}
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// Intersects reports whether s and t share any set bit. The sets must
// have the same capacity.
func (s *Set) Intersects(t *Set) bool {
	if s.n != t.n {
		panic("bitset: Intersects capacity mismatch")
	}
	for i, w := range s.words {
		if w&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// CopyFrom overwrites the set contents from t, which must have the same
// capacity.
func (s *Set) CopyFrom(t *Set) {
	if s.n != t.n {
		panic("bitset: CopyFrom capacity mismatch")
	}
	copy(s.words, t.words)
}

// ForEach calls fn for every set bit in increasing order; fn returning
// false stops the iteration.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*64 + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Slice returns the set bits in increasing order.
func (s *Set) Slice() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool { out = append(out, i); return true })
	return out
}

// String renders the set like "{1, 5, 9}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		b.WriteString(itoa(i))
		return true
	})
	b.WriteByte('}')
	return b.String()
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}
