package gadgets

import "rbpebble/internal/dag"

// SingleSource applies the §3 "small number of source nodes"
// transformation: it adds a new source s0 with an edge to every other
// node of g and returns s0. The transformed DAG must be pebbled with
// R' = R+1 red pebbles; a reasonable pebbling parks one red pebble on s0
// forever, leaving R pebbles to pebble the rest exactly as before.
//
// The transformation is applied in place; pass a Clone if the original
// must be preserved.
func SingleSource(g *dag.DAG) dag.NodeID {
	n := g.N()
	s0 := g.AddLabeledNode("s0")
	for v := 0; v < n; v++ {
		g.AddEdge(s0, dag.NodeID(v))
	}
	return s0
}

// ConstantDegree rewrites g so that every node has indegree at most 2 by
// replacing each high-indegree node's input set with a CD gadget of the
// given height (Appendix B). The caller must pebble the result with
// R' = R+1 red pebbles. It returns the gadgets created, keyed by the
// original target node.
//
// Only nodes with indegree > 2 are transformed: their in-edges are
// removed and replaced by a single edge from the gadget's Out node, with
// the gadget reading the original inputs as its left group.
func ConstantDegree(g *dag.DAG, h int) map[dag.NodeID]*CD {
	out := make(map[dag.NodeID]*CD)
	n := g.N() // snapshot: gadget nodes appended later have indegree <= 2
	for v := 0; v < n; v++ {
		node := dag.NodeID(v)
		if g.InDegree(node) <= 2 {
			continue
		}
		left := append([]dag.NodeID(nil), g.Preds(node)...)
		g.RemoveInEdges(node)
		cd := AttachCD(g, left, h)
		g.AddEdge(cd.Out, node)
		out[node] = cd
	}
	return out
}
