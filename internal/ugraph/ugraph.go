// Package ugraph provides the undirected simple graphs that serve as
// sources for the paper's reductions: Hamiltonian Path instances
// (Theorem 2) and Vertex Cover instances (Theorem 3), plus generators
// for both planted and adversarial families.
package ugraph

import (
	"fmt"
	"math/rand"
	"sort"
)

// Graph is an undirected simple graph on vertices 0..n-1.
type Graph struct {
	n   int
	adj []map[int]struct{}
	m   int
}

// New returns an empty graph with n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("ugraph: negative vertex count")
	}
	adj := make([]map[int]struct{}, n)
	for i := range adj {
		adj[i] = make(map[int]struct{})
	}
	return &Graph{n: n, adj: adj}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// AddEdge inserts the undirected edge {u, v}; duplicates are ignored.
// It panics on out-of-range vertices or self-loops.
func (g *Graph) AddEdge(u, v int) {
	if u < 0 || v < 0 || u >= g.n || v >= g.n {
		panic(fmt.Sprintf("ugraph: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	if u == v {
		panic(fmt.Sprintf("ugraph: self-loop at %d", u))
	}
	if _, ok := g.adj[u][v]; ok {
		return
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
	g.m++
}

// RemoveEdge deletes the edge {u, v} if present.
func (g *Graph) RemoveEdge(u, v int) {
	if u < 0 || v < 0 || u >= g.n || v >= g.n {
		return
	}
	if _, ok := g.adj[u][v]; !ok {
		return
	}
	delete(g.adj[u], v)
	delete(g.adj[v], u)
	g.m--
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.n || v >= g.n {
		return false
	}
	_, ok := g.adj[u][v]
	return ok
}

// Neighbors returns the neighbors of v in ascending order.
func (g *Graph) Neighbors(v int) []int {
	out := make([]int, 0, len(g.adj[v]))
	for w := range g.adj[v] {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Edges returns all edges as ordered pairs (u < v), sorted.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.m)
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			if u < v {
				c.AddEdge(u, v)
			}
		}
	}
	return c
}

// String summarizes the graph.
func (g *Graph) String() string { return fmt.Sprintf("Graph(n=%d, m=%d)", g.n, g.m) }

// Path returns the path graph 0-1-2-...-(n-1).
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Cycle returns the cycle graph on n >= 3 vertices.
func Cycle(n int) *Graph {
	if n < 3 {
		panic("ugraph: Cycle needs n >= 3")
	}
	g := Path(n)
	g.AddEdge(n-1, 0)
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// Star returns the star K_{1,n-1} with center 0.
func Star(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return g
}

// Random returns an Erdős–Rényi G(n, p) graph, deterministic per seed.
func Random(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// RandomWithHamPath returns a graph containing a planted Hamiltonian path
// (a random permutation) plus G(n,p) noise edges. The returned
// permutation is one witness path.
func RandomWithHamPath(n int, p float64, seed int64) (*Graph, []int) {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	perm := rng.Perm(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(perm[i], perm[i+1])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g, perm
}

// CompleteBipartite returns K_{a,b}: vertices 0..a-1 on the left,
// a..a+b-1 on the right. Its minimum vertex cover has size min(a, b)
// (König), making it a convenient Vertex Cover test family.
func CompleteBipartite(a, b int) *Graph {
	g := New(a + b)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			g.AddEdge(i, a+j)
		}
	}
	return g
}

// DisjointTriangles returns k disjoint triangles (3k vertices); the
// minimum vertex cover has size exactly 2k and greedy-by-degree achieves
// it, while the matching-based 2-approximation returns 3k... making the
// family useful for approximation-quality experiments.
func DisjointTriangles(k int) *Graph {
	g := New(3 * k)
	for i := 0; i < k; i++ {
		g.AddEdge(3*i, 3*i+1)
		g.AddEdge(3*i+1, 3*i+2)
		g.AddEdge(3*i, 3*i+2)
	}
	return g
}
