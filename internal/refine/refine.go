// Package refine is the self-driving background refiner: a per-node
// loop that scans the instance cache for the widest certified
// intervals, re-solves the keys this node owns at the next budget tier
// (warm-started through the same cache path foreground requests use),
// and replicates every tightening. The refiner is strictly
// subordinate to foreground traffic: an admission gate pauses
// scheduling while the node has live solves or queued work, and an
// in-flight refinement is cooperatively canceled the instant
// foreground work arrives — the engines hand back a certified partial
// interval, so even a preempted refinement can leave the cache
// tighter than it found it.
package refine

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rbpebble/internal/instcache"
)

// Config wires a Refiner into its host node. Export, Solve and the
// gates are injected so the package depends only on the cache's wire
// types, not on the service or cluster layers.
type Config struct {
	// Export snapshots the instance cache (instcache.Cache.Export).
	Export func() []instcache.Entry
	// Solve re-solves key at the given budget tier through the host's
	// cache path (warm start, replication, telemetry) and returns the
	// scaled gap of the stored interval afterwards. The ctx is canceled
	// on preemption; the solve must treat that as "stop and certify
	// what you have", not as failure.
	Solve func(ctx context.Context, key string, tier int) (gapScaled int64, err error)
	// Owns filters to keys this node owns on the cluster ring (nil =
	// solo node: own everything). Non-owned keys are left to their
	// owner's refiner so the fleet doesn't duplicate background work.
	Owns func(key string) bool
	// Resolvable reports whether the host can materialize the problem
	// behind key (cache keys are digests; only keys this node has seen
	// a request for can be re-solved). nil = all.
	Resolvable func(key string) bool
	// Busy is the admission gate: while it reports true (foreground
	// solves running, lane backlogs nonempty) the refiner schedules
	// nothing. nil = never busy.
	Busy func() bool
	// Interval is the idle scan cadence (default 2s).
	Interval time.Duration
	// MaxTier caps the budget tier a refinement may escalate to
	// (default 12: budgets up to ~4s). A key whose stored interval
	// already reached MaxTier is left alone — its headroom is spent.
	MaxTier int
	// MaxPerCycle bounds how many candidates one scan refines before
	// rescanning (default 2) so a fresh foreground burst is noticed
	// between solves even without preemption.
	MaxPerCycle int
	// Logf, when set, receives refiner lifecycle logs.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.MaxTier <= 0 {
		c.MaxTier = 12
	}
	if c.MaxPerCycle <= 0 {
		c.MaxPerCycle = 2
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Candidate is one refinement target chosen from a cache scan: a key
// whose certified interval is still open and has budget-tier headroom
// left.
type Candidate struct {
	Key string `json:"key"`
	// Tier is the budget tier the refinement will run at: one above the
	// widest tier already stored, so the cache treats the attempt as a
	// genuine escalation (warm start, not a served hit).
	Tier int `json:"tier"`
	// GapScaled is the scaled width of the merged stored interval.
	GapScaled int64 `json:"gap_scaled"`
	// Priority orders candidates: scaled gap weighted by remaining tier
	// headroom, so wide intervals that still have cheap escalations
	// left are refined before nearly-exhausted ones.
	Priority float64 `json:"priority"`
}

// Candidates scans a cache export for refinement targets, widest and
// most headroom first. Proven-optimal keys, closed intervals and keys
// at the tier ceiling are skipped.
func Candidates(entries []instcache.Entry, maxTier int) []Candidate {
	type agg struct {
		upper, lower int64
		maxTier      int
		optimal      bool
		seen         bool
	}
	keys := map[string]*agg{}
	for _, e := range entries {
		a := keys[e.Key]
		if a == nil {
			a = &agg{}
			keys[e.Key] = a
		}
		if e.Value.Optimal {
			a.optimal = true
			continue
		}
		tier := e.Tier
		if tier <= 0 {
			tier = e.Value.Tier
		}
		if !a.seen {
			a.upper, a.lower, a.seen = e.Value.UpperScaled, e.Value.LowerScaled, true
		} else {
			if e.Value.UpperScaled < a.upper {
				a.upper = e.Value.UpperScaled
			}
			if e.Value.LowerScaled > a.lower {
				a.lower = e.Value.LowerScaled
			}
		}
		if tier > a.maxTier {
			a.maxTier = tier
		}
	}
	var out []Candidate
	for key, a := range keys {
		if a.optimal || !a.seen {
			continue
		}
		gap := a.upper - a.lower
		if gap <= 0 {
			continue // interval closed; the next request promotes it
		}
		headroom := maxTier - a.maxTier
		if headroom <= 0 {
			continue // budget-tier ceiling reached
		}
		out = append(out, Candidate{
			Key:       key,
			Tier:      a.maxTier + 1,
			GapScaled: gap,
			Priority:  float64(gap) * float64(headroom),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority > out[j].Priority
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Status is the /debug/refiner view of a Refiner.
type Status struct {
	Enabled    bool        `json:"enabled"`
	IntervalMS int64       `json:"interval_ms"`
	MaxTier    int         `json:"max_tier"`
	Busy       bool        `json:"busy"`
	CurrentKey string      `json:"current_key,omitempty"`
	LastScan   time.Time   `json:"last_scan,omitempty"`
	Candidates []Candidate `json:"candidates,omitempty"`
	Runs       uint64      `json:"runs"`
	Tightened  uint64      `json:"tightened"`
	Preempted  uint64      `json:"preempted"`
	Skipped    uint64      `json:"skipped"`
	GapSum     uint64      `json:"gap_sum"`
}

// Refiner runs the background refinement loop. Create with New, stop
// with Stop (idempotent; waits for the in-flight refinement to land
// its partial interval, so a drain that stops the refiner before the
// handoff exports everything the refiner tightened).
type Refiner struct {
	cfg  Config
	base context.Context
	stop context.CancelFunc
	wg   sync.WaitGroup
	once sync.Once

	runs, tightened, preempted, skipped atomic.Uint64
	// gapSum accumulates the scaled gap reduction the refiner achieved
	// (the rbserve_refiner_gap_sum counter: background tightening work,
	// in cost units).
	gapSum atomic.Uint64

	mu         sync.Mutex
	currentKey string
	cancelRun  context.CancelFunc
	lastScan   time.Time
	lastCands  []Candidate

	// cooldown backs off keys whose refinement errored (e.g. the
	// problem registry lost the key) so one bad key cannot monopolize
	// every cycle.
	cooldown map[string]time.Time
}

// New returns a started Refiner.
func New(cfg Config) *Refiner {
	r := &Refiner{cfg: cfg.withDefaults(), cooldown: map[string]time.Time{}}
	r.base, r.stop = context.WithCancel(context.Background())
	r.wg.Add(1)
	go r.loop()
	return r
}

// Stop cancels the in-flight refinement (its partial interval still
// lands in the cache) and ends the loop. Safe to call repeatedly.
func (r *Refiner) Stop() {
	r.once.Do(r.stop)
	r.wg.Wait()
}

// Preempt cooperatively cancels the in-flight refinement, if any:
// called by the host the instant foreground work arrives. The canceled
// solve still certifies the interval it reached, so preemption trades
// refinement depth for foreground latency without wasting the work.
func (r *Refiner) Preempt() {
	r.mu.Lock()
	cancel := r.cancelRun
	r.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Counters returns the monotone refiner counters for /metrics.
func (r *Refiner) Counters() (runs, tightened, preempted, gapSum uint64) {
	return r.runs.Load(), r.tightened.Load(), r.preempted.Load(), r.gapSum.Load()
}

// Status snapshots the refiner for /debug/refiner.
func (r *Refiner) Status() Status {
	busy := r.cfg.Busy != nil && r.cfg.Busy()
	r.mu.Lock()
	defer r.mu.Unlock()
	cands := make([]Candidate, len(r.lastCands))
	copy(cands, r.lastCands)
	return Status{
		Enabled:    true,
		IntervalMS: r.cfg.Interval.Milliseconds(),
		MaxTier:    r.cfg.MaxTier,
		Busy:       busy,
		CurrentKey: r.currentKey,
		LastScan:   r.lastScan,
		Candidates: cands,
		Runs:       r.runs.Load(),
		Tightened:  r.tightened.Load(),
		Preempted:  r.preempted.Load(),
		Skipped:    r.skipped.Load(),
		GapSum:     r.gapSum.Load(),
	}
}

func (r *Refiner) loop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-r.base.Done():
			return
		case <-t.C:
		}
		if r.cfg.Busy != nil && r.cfg.Busy() {
			continue // foreground work pending: stay out of the way
		}
		r.cycle()
	}
}

// cycle runs one scan-and-refine pass: pick the top candidates by
// priority and escalate each one tier, re-checking the admission gate
// between solves.
func (r *Refiner) cycle() {
	cands := r.scan()
	refined := 0
	for _, c := range cands {
		if refined >= r.cfg.MaxPerCycle {
			return
		}
		select {
		case <-r.base.Done():
			return
		default:
		}
		if r.cfg.Busy != nil && r.cfg.Busy() {
			return // a burst arrived mid-cycle: yield immediately
		}
		if !r.admit(c.Key) {
			continue
		}
		refined++
		r.refine(c)
	}
}

// scan exports the cache and filters candidates through ownership,
// resolvability and cooldown.
func (r *Refiner) scan() []Candidate {
	all := Candidates(r.cfg.Export(), r.cfg.MaxTier)
	now := time.Now()
	cands := all[:0]
	for _, c := range all {
		if r.cfg.Owns != nil && !r.cfg.Owns(c.Key) {
			continue
		}
		if r.cfg.Resolvable != nil && !r.cfg.Resolvable(c.Key) {
			r.skipped.Add(1)
			continue
		}
		r.mu.Lock()
		until, cooling := r.cooldown[c.Key]
		r.mu.Unlock()
		if cooling && now.Before(until) {
			continue
		}
		cands = append(cands, c)
	}
	r.mu.Lock()
	r.lastScan = now
	r.lastCands = append(r.lastCands[:0], cands...)
	if len(r.lastCands) > 8 {
		r.lastCands = r.lastCands[:8] // /debug/refiner shows the head
	}
	r.mu.Unlock()
	return cands
}

// admit registers a run's cancel func under the current key; false if
// the refiner is stopping.
func (r *Refiner) admit(key string) bool {
	select {
	case <-r.base.Done():
		return false
	default:
		return true
	}
}

// refine escalates one candidate a tier and accounts the outcome.
func (r *Refiner) refine(c Candidate) {
	ctx, cancel := context.WithCancel(r.base)
	r.mu.Lock()
	r.currentKey, r.cancelRun = c.Key, cancel
	r.mu.Unlock()
	gapAfter, err := r.cfg.Solve(ctx, c.Key, c.Tier)
	preempted := ctx.Err() != nil && r.base.Err() == nil
	r.mu.Lock()
	r.currentKey, r.cancelRun = "", nil
	r.mu.Unlock()
	cancel()

	r.runs.Add(1)
	if preempted {
		r.preempted.Add(1)
	}
	if err != nil {
		r.skipped.Add(1)
		r.mu.Lock()
		r.cooldown[c.Key] = time.Now().Add(8 * r.cfg.Interval)
		r.mu.Unlock()
		r.cfg.Logf("refine: %s tier %d: %v", c.Key, c.Tier, err)
		return
	}
	if gapAfter < c.GapScaled {
		r.tightened.Add(1)
		r.gapSum.Add(uint64(c.GapScaled - gapAfter))
		r.cfg.Logf("refine: %s tier %d: gap %d -> %d (preempted=%t)",
			c.Key, c.Tier, c.GapScaled, gapAfter, preempted)
	}
}
