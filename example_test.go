package rbpebble_test

import (
	"fmt"
	"log"

	"rbpebble"
)

// Example pebbles a small pyramid with the minimum feasible fast memory
// and reports the heuristic and exact costs.
func Example() {
	g := rbpebble.Pyramid(3)
	p := rbpebble.Problem{
		G:     g,
		Model: rbpebble.NewModel(rbpebble.Oneshot),
		R:     rbpebble.MinFeasibleR(g),
	}
	heur, err := rbpebble.TopoBelady(p)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := rbpebble.Exact(p, rbpebble.ExactOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heuristic=%d optimal=%d\n",
		heur.Result.Cost.Transfers, opt.Result.Cost.Transfers)
	// Output: heuristic=12 optimal=6
}

// ExampleNewTradeoff shows the maximal time-memory tradeoff of the
// paper's Figure 3 construction: each extra red pebble saves 2n
// transfers.
func ExampleNewTradeoff() {
	tr := rbpebble.NewTradeoff(3, 10) // d=3, chain length 10
	for r := tr.MinR(); r <= tr.MaxUsefulR(); r++ {
		_, res, err := rbpebble.Execute(tr.G, rbpebble.NewModel(rbpebble.Oneshot), r,
			rbpebble.Convention{}, tr.StrategyOrder(),
			rbpebble.SchedOptions{Policy: rbpebble.Belady})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("R=%d cost=%d\n", r, res.Cost.Transfers)
	}
	// Output:
	// R=5 cost=48
	// R=6 cost=32
	// R=7 cost=16
	// R=8 cost=0
}

// ExampleNewHamPathReduction demonstrates the Theorem 2 NP-hardness
// reduction: the pebbling threshold is reached exactly when the source
// graph has a Hamiltonian path.
func ExampleNewHamPathReduction() {
	src := rbpebble.NewUGraph(4) // the path 0-1-2-3
	src.AddEdge(0, 1)
	src.AddEdge(1, 2)
	src.AddEdge(2, 3)
	red := rbpebble.NewHamPathReduction(src)
	_, res, err := red.Pebble([]int{0, 1, 2, 3}, rbpebble.NewModel(rbpebble.Oneshot))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cost=%d threshold=%d\n", res.Cost.Transfers, red.ThresholdOneshot())
	// Output: cost=3 threshold=3
}
