package solve

import (
	"container/heap"
	"errors"
	"fmt"

	"rbpebble/internal/dag"
	"rbpebble/internal/pebble"
)

// ErrStateLimit is returned by Exact when the search exceeds
// ExactOptions.MaxStates before proving an optimum.
var ErrStateLimit = errors.New("solve: state limit exceeded")

// ExactOptions configures the exact solver.
type ExactOptions struct {
	// MaxStates caps the number of expanded states (0 means the default
	// of 2,000,000). The search fails with ErrStateLimit beyond it.
	MaxStates int
	// DisablePruning turns off the safe dominance prunes (for the
	// ablation benchmark; the result is identical, only slower).
	DisablePruning bool
}

// Exact finds a provably minimum-cost pebbling by uniform-cost search
// (Dijkstra) over the state space (red set, blue set, computed set). It
// works for every model variant but scales only to small DAGs — which is
// the paper's point: the problem is NP-hard (PSPACE-hard in base).
//
// The returned solution is replay-verified. Exact returns ErrStateLimit
// if the state budget is exhausted first.
func Exact(p Problem, opts ExactOptions) (Solution, error) {
	maxStates := opts.MaxStates
	if maxStates == 0 {
		maxStates = 2_000_000
	}
	start, err := pebble.NewState(p.G, p.Model, p.R, p.Convention)
	if err != nil {
		return Solution{}, err
	}
	if start.Complete() {
		// Degenerate: no sinks to pebble (empty graph) or sources start
		// blue and are the only sinks.
		tr := &pebble.Trace{Model: p.Model, R: p.R, Convention: p.Convention}
		return verify(p, tr), nil
	}

	type item struct {
		st     *pebble.State
		parent int // index into nodes, -1 for root
		move   pebble.Move
	}
	var nodes []item
	nodes = append(nodes, item{st: start, parent: -1})

	pq := &costHeap{}
	heap.Push(pq, costEntry{idx: 0, cost: 0})
	best := map[string]int64{start.Key(): 0}
	expanded := 0

	g := p.G
	n := g.N()

	for pq.Len() > 0 {
		cur := heap.Pop(pq).(costEntry)
		st := nodes[cur.idx].st
		curCost := st.Cost().Scaled(p.Model)
		if curCost > best[st.Key()] {
			continue // stale entry
		}
		if st.Complete() {
			// Reconstruct the move sequence.
			var rev []pebble.Move
			for i := cur.idx; nodes[i].parent >= 0; i = nodes[i].parent {
				rev = append(rev, nodes[i].move)
			}
			moves := make([]pebble.Move, len(rev))
			for i := range rev {
				moves[i] = rev[len(rev)-1-i]
			}
			tr := &pebble.Trace{Model: p.Model, R: p.R, Convention: p.Convention, Moves: moves}
			return verify(p, tr), nil
		}
		expanded++
		if expanded > maxStates {
			return Solution{}, fmt.Errorf("%w: %d states", ErrStateLimit, maxStates)
		}

		for v := 0; v < n; v++ {
			node := dag.NodeID(v)
			for _, kind := range [4]pebble.MoveKind{pebble.Compute, pebble.Load, pebble.Store, pebble.Delete} {
				m := pebble.Move{Kind: kind, Node: node}
				if st.Check(m) != nil {
					continue
				}
				if !opts.DisablePruning && prunedMove(p, st, m) {
					continue
				}
				next := st.Clone()
				if err := next.Apply(m); err != nil {
					panic("solve: Check passed but Apply failed: " + err.Error())
				}
				key := next.Key()
				c := next.Cost().Scaled(p.Model)
				if old, ok := best[key]; ok && old <= c {
					continue
				}
				best[key] = c
				nodes = append(nodes, item{st: next, parent: cur.idx, move: m})
				heap.Push(pq, costEntry{idx: len(nodes) - 1, cost: c})
			}
		}
	}
	return Solution{}, errors.New("solve: state space exhausted without completing (unreachable for feasible R)")
}

// prunedMove applies dominance rules that cannot exclude every optimal
// solution. All rules are specific to the oneshot model, where a node's
// value exists only once: recomputation is impossible, so every node must
// be computed exactly once, and a deleted value can never return.
//
//   - Deleting a pebble from a sink makes the instance unwinnable (the
//     sink cannot be recomputed and a node holds only one pebble).
//   - Deleting a node that still has uncomputed successors likewise makes
//     those successors uncomputable.
//   - Storing a dead node (all successors computed, not a sink) is wasted
//     cost: Delete frees the red slot for free.
//
// In base and compcost the analogous prunes are NOT safe: deleting a red
// sink and recomputing it later (cost 0 or ε) can beat storing it
// (cost 1).
func prunedMove(p Problem, st *pebble.State, m pebble.Move) bool {
	if p.Model.Kind != pebble.Oneshot {
		return false
	}
	g := p.G
	switch m.Kind {
	case pebble.Delete:
		if g.IsSink(m.Node) {
			return true
		}
		for _, w := range g.Succs(m.Node) {
			if !st.WasComputed(w) {
				return true
			}
		}
		return false
	case pebble.Store:
		if g.IsSink(m.Node) {
			return false
		}
		for _, w := range g.Succs(m.Node) {
			if !st.WasComputed(w) {
				return false
			}
		}
		return true // dead non-sink: Delete dominates Store
	default:
		return false
	}
}

// costEntry and costHeap implement the priority queue for Exact.
type costEntry struct {
	idx  int
	cost int64
}

type costHeap []costEntry

func (h costHeap) Len() int            { return len(h) }
func (h costHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h costHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *costHeap) Push(x interface{}) { *h = append(*h, x.(costEntry)) }
func (h *costHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
