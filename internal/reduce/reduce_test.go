package reduce

import (
	"testing"

	"rbpebble/internal/hampath"
	"rbpebble/internal/pebble"
	"rbpebble/internal/solve"
	"rbpebble/internal/ugraph"
	"rbpebble/internal/vcover"
)

// --- Theorem 2: Hamiltonian Path reduction ---

func TestHamPathStructure(t *testing.T) {
	src := ugraph.Path(4) // N=4, M=3
	r := NewHamPath(src)
	if err := r.G.Validate(); err != nil {
		t.Fatal(err)
	}
	n, m := src.N(), src.M()
	if got := r.G.N(); got != n+n*(n-1)-m {
		t.Fatalf("DAG nodes = %d, want %d", got, n+n*(n-1)-m)
	}
	if len(r.G.Sinks()) != n {
		t.Fatalf("sinks = %d", len(r.G.Sinks()))
	}
	if len(r.G.Sources()) != n*(n-1)-m {
		t.Fatalf("sources = %d", len(r.G.Sources()))
	}
	if r.G.MaxInDegree() != n-1 || r.R != n {
		t.Fatalf("Δ=%d R=%d", r.G.MaxInDegree(), r.R)
	}
	// Merged contact for the edge (0,1); distinct for the non-edge (0,2).
	if r.Contact[0][1] != r.Contact[1][0] {
		t.Fatal("edge contacts not merged")
	}
	if r.Contact[0][2] == r.Contact[2][0] {
		t.Fatal("non-edge contacts merged")
	}
	for a := 0; a < n; a++ {
		if len(r.Group(a)) != n-1 {
			t.Fatalf("group %d size %d", a, len(r.Group(a)))
		}
	}
}

func TestHamPathPermutationCosts(t *testing.T) {
	src := ugraph.Path(4)
	r := NewHamPath(src)
	hp := []int{0, 1, 2, 3}
	if got := r.PermutationCostNoDel(hp); got != r.ThresholdNoDel() {
		t.Fatalf("nodel HP perm cost %d != threshold %d", got, r.ThresholdNoDel())
	}
	if got := r.PermutationCostOneshot(hp); got != r.ThresholdOneshot() {
		t.Fatalf("oneshot HP perm cost %d != threshold %d", got, r.ThresholdOneshot())
	}
	// A permutation with a non-adjacent step costs strictly more.
	bad := []int{0, 2, 1, 3}
	if r.PermutationCostNoDel(bad) <= r.ThresholdNoDel() {
		t.Fatal("non-adjacent perm not penalized (nodel)")
	}
	if r.PermutationCostOneshot(bad) <= r.ThresholdOneshot() {
		t.Fatal("non-adjacent perm not penalized (oneshot)")
	}
}

func TestHamPathPebblerMatchesFormula(t *testing.T) {
	// The engine-executed cost of a permutation must equal the closed
	// form, in both models, for graphs with and without extra edges.
	srcs := []*ugraph.Graph{
		ugraph.Path(4),
		ugraph.Cycle(4),
		ugraph.Complete(4),
		ugraph.Random(5, 0.5, 3),
	}
	perms := [][]int{{0, 1, 2, 3}, {3, 1, 0, 2}, {2, 0, 3, 1}}
	for si, src := range srcs {
		r := NewHamPath(src)
		for _, perm := range perms {
			if src.N() != len(perm) {
				perm = append(perm, 4) // extend for N=5
			}
			for _, kind := range []pebble.ModelKind{pebble.Oneshot, pebble.NoDel} {
				_, res, err := r.Pebble(perm, pebble.NewModel(kind))
				if err != nil {
					t.Fatalf("src %d perm %v %v: %v", si, perm, kind, err)
				}
				want := r.PermutationCostOneshot(perm)
				if kind == pebble.NoDel {
					want = r.PermutationCostNoDel(perm)
				}
				if res.Cost.Transfers != want {
					t.Fatalf("src %d perm %v %v: measured %d != formula %d",
						si, perm, kind, res.Cost.Transfers, want)
				}
			}
		}
	}
}

func TestHamPathThresholdIffHP(t *testing.T) {
	// Over all permutations (via the Held-Karp DP), the minimum pebbling
	// cost hits the threshold exactly when a Hamiltonian path exists.
	srcs := []*ugraph.Graph{
		ugraph.Path(5),              // HP
		ugraph.Cycle(5),             // HP
		ugraph.Star(5),              // no HP
		ugraph.DisjointTriangles(2), // no HP (n=6)
		ugraph.Random(6, 0.4, 11),
		ugraph.Random(6, 0.2, 12),
	}
	for si, src := range srcs {
		r := NewHamPath(src)
		hasHP, _ := hampath.Solve(src)
		minCost := minPermCostOneshot(r)
		if hasHP && minCost != r.ThresholdOneshot() {
			t.Fatalf("src %d: HP exists but min cost %d != threshold %d",
				si, minCost, r.ThresholdOneshot())
		}
		if !hasHP && minCost <= r.ThresholdOneshot() {
			t.Fatalf("src %d: no HP but min cost %d <= threshold %d",
				si, minCost, r.ThresholdOneshot())
		}
	}
}

// minPermCostOneshot computes min over all visit permutations of the
// oneshot cost, using the Held-Karp visit-order DP. Transition costs are
// not purely pairwise here (edge contacts pay 2 unless endpoints are
// consecutive), but cost = (N-1) + 2M - 2·(adjacent consecutive pairs),
// so minimizing cost = maximizing adjacencies, which is pairwise.
func minPermCostOneshot(r *HamPath) int {
	n := r.Source.N()
	start := make([]int64, n)
	trans := make([][]int64, n)
	for i := 0; i < n; i++ {
		trans[i] = make([]int64, n)
		for j := 0; j < n; j++ {
			if i != j && !r.Source.HasEdge(i, j) {
				trans[i][j] = 2 // a non-adjacent step forfeits one saving
			}
		}
	}
	cost, _ := solve.MinVisitOrder(start, trans)
	return (n - 1) + 2*(r.Source.M()-(n-1)) + int(cost)
}

func TestHamPathExactSolverAgreesSmall(t *testing.T) {
	// Full cross-validation against the state-space optimum on N=3
	// sources: the reduction's threshold must be the true optimal cost.
	for _, src := range []*ugraph.Graph{ugraph.Path(3), ugraph.Complete(3)} {
		r := NewHamPath(src)
		for _, kind := range []pebble.ModelKind{pebble.Oneshot, pebble.NoDel} {
			opt, err := solve.Exact(solve.Problem{G: r.G, Model: pebble.NewModel(kind), R: r.R},
				solve.ExactOptions{MaxStates: 4_000_000})
			if err != nil {
				t.Fatalf("%v: %v", kind, err)
			}
			want := r.ThresholdOneshot()
			if kind == pebble.NoDel {
				want = r.ThresholdNoDel()
			}
			if opt.Result.Cost.Transfers != want {
				t.Fatalf("%v: exact optimum %d != threshold %d (src %s)",
					kind, opt.Result.Cost.Transfers, want, src)
			}
		}
	}
}

func TestHamPathPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on tiny source")
		}
	}()
	NewHamPath(ugraph.New(1))
}

// --- Theorem 3: Vertex Cover reduction ---

func TestVertexCoverStructure(t *testing.T) {
	src := ugraph.Cycle(4)
	kp := 6
	r := NewVertexCover(src, kp)
	if err := r.G.Validate(); err != nil {
		t.Fatal(err)
	}
	n := src.N()
	for a := 0; a < n; a++ {
		if len(r.First[a]) != r.K || len(r.Second[a]) != r.K {
			t.Fatalf("group sizes not uniform at %d", a)
		}
		if r.G.InDegree(r.T2[a]) != r.K {
			t.Fatalf("t(%d,2) indegree %d", a, r.G.InDegree(r.T2[a]))
		}
		for b := 0; b < n; b++ {
			if b != a && r.G.InDegree(r.T1[a][b]) != r.K {
				t.Fatalf("t(%d,1,%d) indegree %d", a, b, r.G.InDegree(r.T1[a][b]))
			}
		}
	}
	// Edge (0,1): t(0,1,1) is a member of V(1,2); non-edge (0,2): t(0,1,2)
	// is a sink.
	if !r.G.HasEdge(r.T1[0][1], r.T2[1]) {
		t.Fatal("dependency edge missing")
	}
	if !r.G.IsSink(r.T1[0][2]) {
		t.Fatal("non-edge first-level target should be a sink")
	}
	if r.R != r.K+1 {
		t.Fatal("R != K+1")
	}
}

func TestVertexCoverCostTracksCoverSize(t *testing.T) {
	src := ugraph.Cycle(6) // min VC = 3
	kp := 30
	r := NewVertexCover(src, kp)
	minCover := vcover.Exact(src)
	if len(minCover) != 3 {
		t.Fatalf("cycle6 min cover = %d", len(minCover))
	}
	costFor := func(cover []int) int {
		_, res, err := r.Pebble(r.VisitsForCover(cover))
		if err != nil {
			t.Fatal(err)
		}
		return res.Cost.Transfers
	}
	optCost := costFor(minCover)
	// The dominant term is 2k'·|VC|; extras are bounded by ExtraCostBound.
	if optCost < r.CommonCost(len(minCover)) {
		t.Fatalf("cost %d below common-node lower bound %d", optCost, r.CommonCost(len(minCover)))
	}
	if optCost > r.CommonCost(len(minCover))+r.ExtraCostBound() {
		t.Fatalf("cost %d above common+extras %d", optCost, r.CommonCost(len(minCover))+r.ExtraCostBound())
	}
	// A larger cover costs ~2k' more per extra vertex.
	bigger := append(append([]int(nil), minCover...), pickNotIn(minCover, src.N()))
	biggerCost := costFor(bigger)
	diff := biggerCost - optCost
	if diff < 2*kp-r.ExtraCostBound() || diff > 2*kp+r.ExtraCostBound() {
		t.Fatalf("cover+1 cost delta = %d, want ≈ 2k' = %d", diff, 2*kp)
	}
	// The full-cover (worst) order costs about 2k'·N.
	all := make([]int, src.N())
	for i := range all {
		all[i] = i
	}
	worst := costFor(all)
	if worst <= optCost {
		t.Fatal("full cover not more expensive than optimal cover")
	}
}

func pickNotIn(cover []int, n int) int {
	in := make([]bool, n)
	for _, v := range cover {
		in[v] = true
	}
	for i := 0; i < n; i++ {
		if !in[i] {
			return i
		}
	}
	panic("cover already full")
}

func TestVertexCoverExtract(t *testing.T) {
	src := ugraph.CompleteBipartite(2, 3) // min VC = {0,1}
	r := NewVertexCover(src, 5)
	cover := vcover.Exact(src)
	visits := r.VisitsForCover(cover)
	got := r.ExtractCover(visits)
	if len(got) != len(cover) {
		t.Fatalf("extracted %v, want %v", got, cover)
	}
	for i := range got {
		if got[i] != cover[i] {
			t.Fatalf("extracted %v, want %v", got, cover)
		}
	}
	if !vcover.Verify(src, got) {
		t.Fatal("extracted set is not a cover")
	}
}

func TestVertexCoverAnyOrderYieldsCover(t *testing.T) {
	// Any dependency-respecting pebbling induces a vertex cover via its
	// non-consecutive pairs — including the one a greedy solver finds.
	src := ugraph.Random(5, 0.5, 9)
	r := NewVertexCover(src, 4)
	order, err := solve.GreedyOrder(solve.Problem{G: r.G, Model: pebble.NewModel(pebble.Oneshot), R: r.R}, solve.MostRedInputs)
	if err != nil {
		t.Fatal(err)
	}
	visits := r.VisitsFromTrace(order)
	if len(visits) != 2*src.N() {
		t.Fatalf("greedy visited %d groups, want %d", len(visits), 2*src.N())
	}
	cover := r.ExtractCover(visits)
	if !vcover.Verify(src, cover) {
		t.Fatalf("induced set %v is not a vertex cover", cover)
	}
}

func TestVertexCoverApproxMapping(t *testing.T) {
	// The δ-approximation mapping: a pebbling within δ of optimal induces
	// a cover within ~δ of minimum (up to the O(N²)/k' additive slack).
	src := ugraph.Cycle(6)
	r := NewVertexCover(src, 40)
	minCover := vcover.Exact(src)
	apxCover := vcover.TwoApprox(src)
	_, optRes, err := r.Pebble(r.VisitsForCover(minCover))
	if err != nil {
		t.Fatal(err)
	}
	_, apxRes, err := r.Pebble(r.VisitsForCover(apxCover))
	if err != nil {
		t.Fatal(err)
	}
	ratioPebble := float64(apxRes.Cost.Transfers) / float64(optRes.Cost.Transfers)
	ratioCover := float64(len(apxCover)) / float64(len(minCover))
	if diff := ratioPebble - ratioCover; diff > 0.5 || diff < -0.5 {
		t.Fatalf("pebbling ratio %.2f far from cover ratio %.2f", ratioPebble, ratioCover)
	}
}

func TestVertexCoverPanics(t *testing.T) {
	for i, f := range []func(){
		func() { NewVertexCover(ugraph.New(1), 3) },
		func() { NewVertexCover(ugraph.Path(3), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}
