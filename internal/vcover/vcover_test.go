package vcover

import (
	"testing"
	"testing/quick"

	"rbpebble/internal/ugraph"
)

func TestExactKnownSizes(t *testing.T) {
	cases := []struct {
		name string
		g    *ugraph.Graph
		want int
	}{
		{"empty", ugraph.New(5), 0},
		{"single-edge", ugraph.Path(2), 1},
		{"path4", ugraph.Path(4), 2}, // cover {1,2}
		{"path5", ugraph.Path(5), 2}, // cover {1,3}
		{"cycle5", ugraph.Cycle(5), 3},
		{"cycle6", ugraph.Cycle(6), 3},
		{"K5", ugraph.Complete(5), 4},
		{"star6", ugraph.Star(6), 1},
		{"K23", ugraph.CompleteBipartite(2, 3), 2}, // König: min(a,b)
		{"K44", ugraph.CompleteBipartite(4, 4), 4},
		{"triangles3", ugraph.DisjointTriangles(3), 6},
	}
	for _, c := range cases {
		cover := Exact(c.g)
		if !Verify(c.g, cover) {
			t.Errorf("%s: exact cover invalid", c.name)
		}
		if len(cover) != c.want {
			t.Errorf("%s: |VC| = %d, want %d", c.name, len(cover), c.want)
		}
	}
}

func TestTwoApproxGuarantee(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g := ugraph.Random(12, 0.3, seed)
		opt := Exact(g)
		apx := TwoApprox(g)
		if !Verify(g, apx) {
			t.Fatalf("seed %d: 2-approx cover invalid", seed)
		}
		if len(apx) > 2*len(opt) {
			t.Fatalf("seed %d: 2-approx %d > 2*opt %d", seed, len(apx), 2*len(opt))
		}
	}
}

func TestGreedyDegreeValid(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := ugraph.Random(15, 0.25, seed)
		cover := GreedyDegree(g)
		if !Verify(g, cover) {
			t.Fatalf("seed %d: greedy cover invalid", seed)
		}
		if len(cover) < len(Exact(g)) {
			t.Fatalf("seed %d: greedy beat optimum (exact solver wrong)", seed)
		}
	}
}

func TestVerifyRejects(t *testing.T) {
	g := ugraph.Path(3)
	if Verify(g, []int{}) {
		t.Fatal("empty cover accepted on nonempty graph")
	}
	if Verify(g, []int{0}) {
		t.Fatal("partial cover accepted")
	}
	if Verify(g, []int{99}) {
		t.Fatal("out-of-range vertex accepted")
	}
	if !Verify(g, []int{1}) {
		t.Fatal("valid cover {1} rejected")
	}
}

// Property: Exact is a valid cover and matches brute force on small
// graphs.
func TestQuickExactAgainstBruteForce(t *testing.T) {
	brute := func(g *ugraph.Graph) int {
		n := g.N()
		best := n
		for mask := 0; mask < 1<<uint(n); mask++ {
			ok := true
			for _, e := range g.Edges() {
				if mask&(1<<uint(e[0])) == 0 && mask&(1<<uint(e[1])) == 0 {
					ok = false
					break
				}
			}
			if ok {
				c := 0
				for i := 0; i < n; i++ {
					if mask&(1<<uint(i)) != 0 {
						c++
					}
				}
				if c < best {
					best = c
				}
			}
		}
		return best
	}
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%8) + 1
		g := ugraph.Random(n, 0.4, seed)
		cover := Exact(g)
		return Verify(g, cover) && len(cover) == brute(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExact20(b *testing.B) {
	g := ugraph.Random(20, 0.3, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Exact(g)
	}
}
