package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"rbpebble/internal/obs"
	"rbpebble/internal/service"
)

// TenantHeader names the request header that identifies a tenant for
// token-bucket admission at the proxy.
const TenantHeader = "X-Rbpebble-Tenant"

// admitTenant charges n solve items against the requesting tenant's
// token bucket. On rejection it writes the 429 (with a Retry-After
// derived from the bucket's refill rate) and returns false.
func (p *Proxy) admitTenant(w http.ResponseWriter, r *http.Request, n int) bool {
	ok, retry := p.quota.Take(r.Header.Get(TenantHeader), n)
	if ok {
		return true
	}
	p.m.quotaRejected.Add(1)
	secs := int(retry/time.Second) + 1
	if secs > 60 {
		secs = 60
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	httpError(w, http.StatusTooManyRequests, "tenant quota exhausted")
	return false
}

// subBatch is one node's share of a client batch: the items it owns
// plus the mapping from its local result indices back to positions in
// the original request.
type subBatch struct {
	items []service.SolveRequest
	idxs  []int // idxs[local] = original index
}

// handleSolveBatch splits a client batch by canonical instance key
// across the ring, fans the per-node sub-batches out through the
// hardened comm layer, and reassembles per-item results in request
// order. Splitting by canonical key keeps the node-side in-batch dedup
// effective: every isomorphism class lands whole on the replica whose
// cache owns it.
func (p *Proxy) handleSolveBatch(w http.ResponseWriter, r *http.Request) {
	p.m.requests.Add(1)
	// Trace before any rejection so quota 429s and parse 400s carry
	// X-Rbpebble-Trace; every sub-batch forward reuses the one ID.
	ctx, _ := obs.StartRequest(w, r, p.recorder)
	var req service.BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, p.cfg.MaxBodyBytes)).Decode(&req); err != nil {
		p.m.errors.Add(1)
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Items) == 0 {
		p.m.errors.Add(1)
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if !p.admitTenant(w, r, len(req.Items)) {
		return
	}
	p.m.batches.Add(1)
	p.m.batchItems.Add(uint64(len(req.Items)))

	// Route every item: canonical key -> first eligible ring owner.
	// Items the routing parse rejects get their per-item error here
	// (the node would reject them identically); they don't burn a
	// forward.
	out := make([]service.BatchItem, len(req.Items))
	keys := make([]string, len(req.Items))
	var keyWG sync.WaitGroup
	sem := make(chan struct{}, 8)
	for i := range req.Items {
		keyWG.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer keyWG.Done()
			defer func() { <-sem }()
			key, err := RouteKey(req.Items[i], p.cfg.MaxNodes)
			if err != nil {
				out[i] = service.BatchItem{Index: i, Error: err.Error(), Status: http.StatusUnprocessableEntity}
				return
			}
			keys[i] = key
		}(i)
	}
	keyWG.Wait()

	if len(p.ring.Members()) == 0 {
		p.m.errors.Add(1)
		httpError(w, http.StatusServiceUnavailable, "no cluster members")
		return
	}

	// Fan out with ring-order failover: a sub-batch whose target fails
	// (transport error, 502, draining 503) is re-split among the
	// remaining members, up to three rounds — mirroring the single-solve
	// and cache-import failover discipline.
	pending := make([]int, 0, len(req.Items))
	for i := range req.Items {
		if keys[i] != "" {
			pending = append(pending, i)
		}
	}
	failed := map[string]bool{}
	solves := 0 // canonical-class solves the nodes reported across sub-batches
	for round := 0; round < 3 && len(pending) > 0; round++ {
		if round > 0 {
			p.m.failovers.Add(1)
		}
		groups := map[string]*subBatch{}
		var unroutable []int
		for _, i := range pending {
			target := p.batchTarget(keys[i], failed)
			if target == "" {
				unroutable = append(unroutable, i)
				continue
			}
			g := groups[target]
			if g == nil {
				g = &subBatch{}
				groups[target] = g
			}
			g.items = append(g.items, req.Items[i])
			g.idxs = append(g.idxs, i)
		}
		pending = unroutable
		var mu sync.Mutex
		var wg sync.WaitGroup
		for target, g := range groups {
			wg.Add(1)
			go func(target string, g *subBatch) {
				defer wg.Done()
				retry, nodeSolves := p.forwardSubBatch(ctx, target, g, req, out)
				mu.Lock()
				solves += nodeSolves
				if len(retry) > 0 {
					failed[target] = true
					pending = append(pending, retry...)
				}
				mu.Unlock()
			}(target, g)
		}
		wg.Wait()
	}
	for _, i := range pending {
		out[i] = service.BatchItem{Index: i, Error: "all cluster members failed", Status: http.StatusBadGateway}
	}

	// Reassemble in request order and recompute the cluster-level
	// summary (node-local summaries describe sub-batches; the client
	// sees the whole).
	sum := service.BatchSummary{Items: len(req.Items), Solves: solves}
	for i := range out {
		if out[i].Error != "" {
			sum.Errors++
			if out[i].Status == http.StatusTooManyRequests {
				sum.Shed++
			}
		} else {
			sum.OK++
			if res := out[i].Result; res != nil && (res.Shared || res.Cached) {
				sum.Deduped++
			}
		}
	}
	writeJSON(w, service.BatchResponse{Items: out, Summary: sum})
}

// forwardSubBatch posts one node's sub-batch and folds its per-item
// results back into the client-order slice. The returned indices must
// be retried on another member (the node is unreachable or going
// away); per-item errors from a healthy node are final. solves is the
// canonical-class solve count the node's summary reported, folded into
// the cluster-level summary.
func (p *Proxy) forwardSubBatch(ctx context.Context, target string, g *subBatch, req service.BatchRequest, out []service.BatchItem) (retry []int, solves int) {
	p.m.subBatches.Add(1)
	ctx, fsp := obs.StartSpan(ctx, "forward")
	fsp.SetAttr("member", target)
	fsp.SetAttr("items", strconv.Itoa(len(g.items)))
	defer fsp.End()
	body, err := json.Marshal(service.BatchRequest{
		Items:        g.items,
		DeadlineMS:   req.DeadlineMS,
		IncludeTrace: req.IncludeTrace,
	})
	if err != nil {
		for _, i := range g.idxs {
			out[i] = service.BatchItem{Index: i, Error: err.Error(), Status: http.StatusInternalServerError}
		}
		return nil, 0
	}
	resp, err := p.comm.Post(ctx, target, "/solve/batch", "application/json", body)
	if err != nil {
		p.ring.SetHealthy(target, false)
		return g.idxs, 0
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusBadGateway ||
		(resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("X-Rbserve-Draining") == "1") {
		io.Copy(io.Discard, resp.Body)
		p.ring.SetHealthy(target, false)
		return g.idxs, 0
	}
	if resp.StatusCode != http.StatusOK {
		// A per-node refusal from a healthy node (whole-batch 429, size
		// limit): relay it per item without demoting — the items reached
		// a live node that chose to refuse them.
		msg := fmt.Sprintf("node %s refused sub-batch: status %d", target, resp.StatusCode)
		if b, rerr := io.ReadAll(io.LimitReader(resp.Body, 512)); rerr == nil && len(bytes.TrimSpace(b)) > 0 {
			msg = string(bytes.TrimSpace(b))
		}
		for _, i := range g.idxs {
			out[i] = service.BatchItem{Index: i, Error: msg, Status: resp.StatusCode}
		}
		return nil, 0
	}
	var br service.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		p.ring.SetHealthy(target, false)
		return g.idxs, 0
	}
	p.m.routed.Add(1)
	for _, item := range br.Items {
		if item.Index < 0 || item.Index >= len(g.idxs) {
			continue
		}
		orig := g.idxs[item.Index]
		item.Index = orig
		out[orig] = item
	}
	return nil, br.Summary.Solves
}

// batchTarget picks the first eligible ring owner for one batch item's
// key: not demoted, not draining, not behind an open breaker, not
// already failed during this request's fan-out.
func (p *Proxy) batchTarget(key string, failed map[string]bool) string {
	for _, m := range p.ring.Owners(key, len(p.ring.Members())) {
		if failed[m] || !p.ring.Healthy(m) || p.membership.Draining(m) || p.comm.BreakerOpen(m) {
			continue
		}
		return m
	}
	return ""
}
