package dag

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The text format is line-oriented:
//
//	# comment
//	nodes <n>
//	label <id> <text>
//	edge <u> <v>
//
// Edges may appear in any order. Unknown directives are an error.

// WriteText serializes g in the line-oriented text format.
func (g *DAG) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "nodes %d\n", g.N())
	for v := 0; v < g.N(); v++ {
		if g.labels[v] != "" {
			fmt.Fprintf(bw, "label %d %s\n", v, g.labels[v])
		}
	}
	for v := 0; v < g.N(); v++ {
		for _, w2 := range g.SortedSuccs(NodeID(v)) {
			fmt.Fprintf(bw, "edge %d %d\n", v, w2)
		}
	}
	return bw.Flush()
}

// ReadText parses the line-oriented text format produced by WriteText.
func ReadText(r io.Reader) (*DAG, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var g *DAG
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "nodes":
			if g != nil {
				return nil, fmt.Errorf("dag: line %d: duplicate nodes directive", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("dag: line %d: nodes wants 1 arg", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("dag: line %d: bad node count %q", lineNo, fields[1])
			}
			g = New(n)
		case "label":
			if g == nil {
				return nil, fmt.Errorf("dag: line %d: label before nodes", lineNo)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("dag: line %d: label wants 2 args", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id < 0 || id >= g.N() {
				return nil, fmt.Errorf("dag: line %d: bad label node %q", lineNo, fields[1])
			}
			g.labels[id] = strings.Join(fields[2:], " ")
		case "edge":
			if g == nil {
				return nil, fmt.Errorf("dag: line %d: edge before nodes", lineNo)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("dag: line %d: edge wants 2 args", lineNo)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || u < 0 || v < 0 || u >= g.N() || v >= g.N() {
				return nil, fmt.Errorf("dag: line %d: bad edge %q", lineNo, line)
			}
			if u == v {
				return nil, fmt.Errorf("dag: line %d: self-loop %d", lineNo, u)
			}
			g.AddEdge(NodeID(u), NodeID(v))
		default:
			return nil, fmt.Errorf("dag: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("dag: missing nodes directive")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// jsonDAG is the JSON wire form.
type jsonDAG struct {
	Nodes  int            `json:"nodes"`
	Edges  [][2]int       `json:"edges"`
	Labels map[string]int `json:"-"`
	Names  []string       `json:"labels,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (g *DAG) MarshalJSON() ([]byte, error) {
	jd := jsonDAG{Nodes: g.N()}
	for v := 0; v < g.N(); v++ {
		for _, w := range g.SortedSuccs(NodeID(v)) {
			jd.Edges = append(jd.Edges, [2]int{v, int(w)})
		}
	}
	hasLabels := false
	for _, l := range g.labels {
		if l != "" {
			hasLabels = true
			break
		}
	}
	if hasLabels {
		jd.Names = append([]string(nil), g.labels...)
	}
	return json.Marshal(jd)
}

// UnmarshalJSON implements json.Unmarshaler.
func (g *DAG) UnmarshalJSON(data []byte) error {
	var jd jsonDAG
	if err := json.Unmarshal(data, &jd); err != nil {
		return err
	}
	if jd.Nodes < 0 {
		return fmt.Errorf("dag: negative node count %d", jd.Nodes)
	}
	*g = *New(jd.Nodes)
	for _, e := range jd.Edges {
		if e[0] < 0 || e[1] < 0 || e[0] >= jd.Nodes || e[1] >= jd.Nodes || e[0] == e[1] {
			return fmt.Errorf("dag: bad edge %v", e)
		}
		g.AddEdge(NodeID(e[0]), NodeID(e[1]))
	}
	if jd.Names != nil {
		if len(jd.Names) != jd.Nodes {
			return fmt.Errorf("dag: labels length %d != nodes %d", len(jd.Names), jd.Nodes)
		}
		copy(g.labels, jd.Names)
	}
	return g.Validate()
}

// WriteDOT emits the graph in Graphviz DOT format for visualization.
func (g *DAG) WriteDOT(w io.Writer, name string) error {
	bw := bufio.NewWriter(w)
	if name == "" {
		name = "dag"
	}
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=TB;\n", name)
	for v := 0; v < g.N(); v++ {
		attrs := ""
		if g.labels[v] != "" {
			attrs = fmt.Sprintf(" [label=%q]", fmt.Sprintf("%d:%s", v, g.labels[v]))
		}
		fmt.Fprintf(bw, "  n%d%s;\n", v, attrs)
	}
	// Deterministic edge order.
	type edge struct{ u, v int }
	var edges []edge
	for u := 0; u < g.N(); u++ {
		for _, v := range g.succs[u] {
			edges = append(edges, edge{u, int(v)})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	for _, e := range edges {
		fmt.Fprintf(bw, "  n%d -> n%d;\n", e.u, e.v)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
