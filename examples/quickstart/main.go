// Quickstart: build a workload DAG, pebble it with a heuristic, and
// compare against the exact optimum and the universal upper bound.
package main

import (
	"fmt"
	"log"

	"rbpebble"
)

func main() {
	// A pebbling pyramid of height 3: 10 nodes, Δ = 2, single sink.
	g := rbpebble.Pyramid(3)
	fmt.Printf("workload: %s\n", g)

	// Pebble in the oneshot model with the minimum feasible fast memory.
	model := rbpebble.NewModel(rbpebble.Oneshot)
	r := rbpebble.MinFeasibleR(g)
	p := rbpebble.Problem{G: g, Model: model, R: r}
	fmt.Printf("problem:  model=%s, R=%d (Δ+1)\n", model, r)

	// Heuristic: topological order with Belady (optimal offline) eviction.
	heur, err := rbpebble.TopoBelady(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topo+belady: %d transfers, %d steps\n",
		heur.Result.Cost.Transfers, heur.Result.Steps)

	// The three greedy strategies of the paper's §8.
	for _, rule := range []rbpebble.GreedyRule{
		rbpebble.MostRedInputs, rbpebble.FewestBlueInputs, rbpebble.RedRatio,
	} {
		sol, err := rbpebble.Greedy(p, rule)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("greedy(%s): %d transfers\n", rule, sol.Result.Cost.Transfers)
	}

	// Exact optimum by state-space search (instances this small are easy;
	// the paper proves the general problem NP-hard).
	opt, err := rbpebble.Exact(p, rbpebble.ExactOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact optimum: %d transfers\n", opt.Result.Cost.Transfers)
	fmt.Printf("universal bound (2Δ+1)n: %d transfers\n",
		rbpebble.CostUpperBound(g, model).Transfers)

	// More fast memory makes pebbling cheaper — measure the tradeoff.
	fmt.Println("\nR -> optimal transfers:")
	for rr := r; rr <= g.N(); rr++ {
		o, err := rbpebble.Exact(rbpebble.Problem{G: g, Model: model, R: rr}, rbpebble.ExactOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  R=%2d: %d\n", rr, o.Result.Cost.Transfers)
		if o.Result.Cost.Transfers == 0 {
			break
		}
	}
}
