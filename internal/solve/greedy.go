package solve

import (
	"fmt"
	"sort"

	"rbpebble/internal/dag"
	"rbpebble/internal/pebble"
	"rbpebble/internal/sched"
)

// GreedyRule enumerates the natural greedy node-selection heuristics from
// §8 of the paper. At each step the rule picks the next node to compute
// from the candidates; ties break toward the smallest node ID.
//
// Candidates follow the paper's convention: a (non-source) node is a
// candidate once all of its non-source inputs have been computed. Source
// inputs never gate candidacy because sources are computable for free at
// any time — "visiting an input group" computes them on demand as part of
// realizing the chosen node.
type GreedyRule int

const (
	// MostRedInputs selects the candidate with the largest number of red
	// pebbles among its inputs.
	MostRedInputs GreedyRule = iota
	// FewestBlueInputs selects the candidate with the smallest number of
	// blue pebbles among its inputs.
	FewestBlueInputs
	// RedRatio selects the candidate with the largest red-pebbles to
	// inputs ratio.
	RedRatio
)

// String names the rule.
func (r GreedyRule) String() string {
	switch r {
	case MostRedInputs:
		return "most-red-inputs"
	case FewestBlueInputs:
		return "fewest-blue-inputs"
	case RedRatio:
		return "red-ratio"
	default:
		return fmt.Sprintf("GreedyRule(%d)", int(r))
	}
}

// AllGreedyRules lists the three rules of §8.
func AllGreedyRules() []GreedyRule {
	return []GreedyRule{MostRedInputs, FewestBlueInputs, RedRatio}
}

// Greedy runs the greedy strategy: it repeatedly selects the next
// non-source node to compute using the rule, realizes each computation by
// computing/loading its inputs with liveness-aware evictions, and returns
// the resulting pebbling executed with Belady (optimal) eviction — the
// "clever greedy" of the paper, which knows the cheapest way to realize
// each chosen computation but not the global order.
//
// The paper's Theorem 4 shows this class of algorithms can be a Θ̃(√n)
// factor worse than optimal in the oneshot model regardless of how the
// red-pebble movements are chosen.
func Greedy(p Problem, rule GreedyRule) (Solution, error) {
	order, err := GreedyOrder(p, rule)
	if err != nil {
		return Solution{}, err
	}
	tr, res, err := sched.Execute(p.G, p.Model, p.R, p.Convention, order, sched.Options{Policy: sched.Belady})
	if err != nil {
		return Solution{}, fmt.Errorf("solve: greedy order execution failed: %w", err)
	}
	return Solution{Trace: tr, Result: res}, nil
}

// GreedyOrder simulates the greedy selection and returns the full compute
// order it induces, with source nodes interleaved at their point of first
// use. The simulation maintains the true pebble state so the rule sees
// the red/blue pebble counts it would see in a real run.
func GreedyOrder(p Problem, rule GreedyRule) ([]dag.NodeID, error) {
	g := p.G
	n := g.N()
	st, err := pebble.NewState(g, p.Model, p.R, p.Convention)
	if err != nil {
		return nil, err
	}

	computed := make([]bool, n) // has Compute been issued (or source pre-blue)
	isSource := make([]bool, n)
	for v := 0; v < n; v++ {
		isSource[v] = g.IsSource(dag.NodeID(v))
	}
	// Nodes the final order must contain: all nodes, except sources under
	// SourcesStartBlue (which are loaded, not computed).
	needCompute := make([]bool, n)
	remaining := 0
	for v := 0; v < n; v++ {
		if p.Convention.SourcesStartBlue && isSource[v] {
			computed[v] = true // value exists (blue) from the start
			continue
		}
		needCompute[v] = true
		remaining++
	}
	// pendingUses[u] = uncomputed successors of u (liveness for evictions).
	pendingUses := make([]int, n)
	for v := 0; v < n; v++ {
		for _, w := range g.Succs(dag.NodeID(v)) {
			if needCompute[w] {
				pendingUses[v]++
			}
		}
	}

	// enabled: non-source candidate nodes per the paper's rule.
	enabled := func(v int) bool {
		if computed[v] || !needCompute[v] || isSource[v] {
			return false
		}
		for _, u := range g.Preds(dag.NodeID(v)) {
			if !isSource[u] && !computed[u] {
				return false
			}
		}
		return true
	}

	score := func(v int) float64 {
		preds := g.Preds(dag.NodeID(v))
		red, blue := 0, 0
		for _, u := range preds {
			if st.IsRed(u) {
				red++
			} else if st.IsBlue(u) {
				blue++
			}
		}
		switch rule {
		case MostRedInputs:
			return float64(red)
		case FewestBlueInputs:
			return -float64(blue)
		case RedRatio:
			if len(preds) == 0 {
				return 1
			}
			return float64(red) / float64(len(preds))
		default:
			return 0
		}
	}

	evictOne := func(pinned map[int]struct{}) error {
		// Prefer dead red pebbles (free delete), else store the red pebble
		// with the fewest pending uses; smallest ID breaks ties.
		type cand struct {
			v    int
			uses int
		}
		var cands []cand
		rs := st.RedSet()
		rs.ForEach(func(u int) bool {
			if _, pin := pinned[u]; !pin {
				cands = append(cands, cand{u, pendingUses[u]})
			}
			return true
		})
		if len(cands) == 0 {
			return fmt.Errorf("solve: greedy cannot free a red pebble (R too small)")
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].uses != cands[j].uses {
				return cands[i].uses < cands[j].uses
			}
			return cands[i].v < cands[j].v
		})
		victim := cands[0]
		node := dag.NodeID(victim.v)
		if victim.uses == 0 && !g.IsSink(node) && p.Model.Kind != pebble.NoDel {
			return st.Apply(pebble.Move{Kind: pebble.Delete, Node: node})
		}
		return st.Apply(pebble.Move{Kind: pebble.Store, Node: node})
	}

	var order []dag.NodeID
	// realize makes node u red: compute (sources / first time) or load.
	// Inputs of non-source u must already be red.
	realize := func(u dag.NodeID, pinned map[int]struct{}) error {
		if st.IsRed(u) {
			return nil
		}
		if st.RedCount() >= p.R {
			if err := evictOne(pinned); err != nil {
				return err
			}
		}
		if st.IsBlue(u) {
			if err := st.Apply(pebble.Move{Kind: pebble.Load, Node: u}); err != nil {
				return err
			}
			return nil
		}
		if err := st.Apply(pebble.Move{Kind: pebble.Compute, Node: u}); err != nil {
			return err
		}
		if needCompute[u] && !computed[u] {
			computed[u] = true
			remaining--
			order = append(order, u)
			for _, q := range g.Preds(u) {
				pendingUses[q]--
			}
		}
		return nil
	}

	for remaining > 0 {
		best, bestScore := -1, 0.0
		for v := 0; v < n; v++ {
			if !enabled(v) {
				continue
			}
			s := score(v)
			if best == -1 || s > bestScore {
				best, bestScore = v, s
			}
		}
		if best == -1 {
			// No non-source candidate left; only uncomputed sources remain
			// (e.g. isolated source-sinks). Compute them directly.
			progress := false
			for v := 0; v < n; v++ {
				if needCompute[v] && !computed[v] && isSource[v] {
					if err := realize(dag.NodeID(v), map[int]struct{}{}); err != nil {
						return nil, err
					}
					progress = true
				}
			}
			if !progress {
				return nil, fmt.Errorf("solve: greedy stuck with %d nodes uncomputed", remaining)
			}
			continue
		}
		v := dag.NodeID(best)

		// Realize the chosen computation: bring every input to red
		// (computing uncomputed sources on demand), then compute v.
		preds := g.Preds(v)
		pinned := make(map[int]struct{}, len(preds)+1)
		for _, u := range preds {
			pinned[int(u)] = struct{}{}
		}
		// Deterministic input order: sorted.
		sp := g.SortedPreds(v)
		for _, u := range sp {
			if err := realize(u, pinned); err != nil {
				return nil, fmt.Errorf("solve: greedy input %d of %d: %w", u, v, err)
			}
		}
		if st.RedCount() >= p.R {
			if err := evictOne(pinned); err != nil {
				return nil, err
			}
		}
		if err := realize(v, pinned); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Topological is the naive §3 baseline: compute nodes in deterministic
// topological order, storing every red pebble after each computation. Its
// cost realizes the universal upper bound of (2Δ+1)·n and it is the
// reference "worst reasonable strategy" for the benchmark tables.
func Topological(p Problem) (Solution, error) {
	return topoWithPolicy(p, sched.EvictAllStore)
}

// TopoBelady computes in deterministic topological order with Belady
// eviction: the strongest order-oblivious heuristic in the suite, used as
// a practical baseline in the benchmarks.
func TopoBelady(p Problem) (Solution, error) {
	return topoWithPolicy(p, sched.Belady)
}

func topoWithPolicy(p Problem, policy sched.Policy) (Solution, error) {
	full, err := p.G.TopoOrder()
	if err != nil {
		return Solution{}, err
	}
	order := full
	if p.Convention.SourcesStartBlue {
		order = make([]dag.NodeID, 0, len(full))
		for _, v := range full {
			if !p.G.IsSource(v) {
				order = append(order, v)
			}
		}
	}
	tr, res, err := sched.Execute(p.G, p.Model, p.R, p.Convention, order, sched.Options{Policy: policy})
	if err != nil {
		return Solution{}, err
	}
	return Solution{Trace: tr, Result: res}, nil
}
