package instcache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rbpebble/internal/dag"
	"rbpebble/internal/daggen"
	"rbpebble/internal/pebble"
	"rbpebble/internal/solve"
)

// relabel returns a copy of g with node v renamed to perm[v].
func relabel(g *dag.DAG, perm []dag.NodeID) *dag.DAG {
	h := dag.New(g.N())
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Succs(dag.NodeID(v)) {
			h.AddEdge(perm[v], perm[w])
		}
	}
	return h
}

func randPerm(n int, rng *rand.Rand) []dag.NodeID {
	p := make([]dag.NodeID, n)
	for i, v := range rng.Perm(n) {
		p[i] = dag.NodeID(v)
	}
	return p
}

// TestCanonicalInvariance: relabeled copies of a graph get the same
// digest, and the permutations map both onto the same canonical graph.
func TestCanonicalInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	graphs := map[string]*dag.DAG{
		"pyramid4":  daggen.Pyramid(4),
		"fft2":      daggen.FFT(2),
		"chain9":    daggen.Chain(9),
		"tree3":     daggen.BinaryTree(3),
		"grid33":    daggen.Grid(3, 3),
		"layered":   daggen.RandomLayered(3, 4, 2, 5),
		"singleton": dag.New(1),
	}
	for name, g := range graphs {
		d0, perm0 := Canonical(g)
		if len(perm0) != g.N() {
			t.Fatalf("%s: perm length %d != n %d", name, len(perm0), g.N())
		}
		seen := make([]bool, g.N())
		for _, c := range perm0 {
			if int(c) >= g.N() || seen[c] {
				t.Fatalf("%s: perm is not a permutation", name)
			}
			seen[c] = true
		}
		for trial := 0; trial < 5; trial++ {
			perm := randPerm(g.N(), rng)
			h := relabel(g, perm)
			d1, _ := Canonical(h)
			if d0 != d1 {
				t.Fatalf("%s: digest changed under relabeling (trial %d)", name, trial)
			}
		}
	}
}

// TestCanonicalDistinguishes: structurally different graphs get
// different digests.
func TestCanonicalDistinguishes(t *testing.T) {
	// Note Grid(2,3) and Grid(3,2) are deliberately absent: the stencil
	// grid is transpose-symmetric, so they are isomorphic and SHOULD
	// share a digest (the invariance test covers that direction).
	gs := []*dag.DAG{
		daggen.Pyramid(3), daggen.Pyramid(4), daggen.Chain(6), daggen.Chain(7),
		daggen.FFT(2), daggen.Grid(2, 3), daggen.Grid(2, 4), daggen.BinaryTree(3),
		daggen.Stencil1D(4, 2), daggen.MatMul(2),
	}
	seen := map[[32]byte]int{}
	for i, g := range gs {
		d, _ := Canonical(g)
		if j, dup := seen[d]; dup {
			t.Fatalf("graphs %d and %d share a digest", i, j)
		}
		seen[d] = i
	}
}

// TestKeySeparatesParameters: same graph, different model/R/convention
// must produce different keys.
func TestKeySeparatesParameters(t *testing.T) {
	g := daggen.Pyramid(3)
	keys := map[string]bool{}
	for _, in := range []Instance{
		{G: g, Model: pebble.NewModel(pebble.Oneshot), R: 3},
		{G: g, Model: pebble.NewModel(pebble.Oneshot), R: 4},
		{G: g, Model: pebble.NewModel(pebble.Base), R: 3},
		{G: g, Model: pebble.NewModel(pebble.CompCost), R: 3},
		{G: g, Model: pebble.NewModel(pebble.Oneshot), R: 3,
			Convention: pebble.Convention{SinksMustBeBlue: true}},
	} {
		k, _ := in.Key()
		if keys[k] {
			t.Fatalf("duplicate key %q", k)
		}
		keys[k] = true
	}
}

// TestTranslationRoundTrip solves a canonical instance, stores the
// trace canonically, and replays it on a relabeled copy through
// FromCanonical — the cached solution must be valid (and optimal) for
// the relabeled instance.
func TestTranslationRoundTrip(t *testing.T) {
	g := daggen.Pyramid(4)
	model := pebble.NewModel(pebble.Oneshot)
	sol, err := solve.Exact(solve.Problem{G: g, Model: model, R: 3}, solve.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, perm := Canonical(g)
	canonMoves := ToCanonical(sol.Trace.Moves, perm)

	rng := rand.New(rand.NewSource(7))
	rp := randPerm(g.N(), rng)
	h := relabel(g, rp)
	_, hperm := Canonical(h)
	tr := &pebble.Trace{Model: model, R: 3, Convention: pebble.Convention{},
		Moves: FromCanonical(canonMoves, hperm)}
	res, err := tr.Run(h)
	if err != nil {
		t.Fatalf("translated trace does not replay on the relabeled graph: %v", err)
	}
	if res.Cost != sol.Result.Cost {
		t.Fatalf("translated cost %v != original %v", res.Cost, sol.Result.Cost)
	}
}

// TestCacheLRUAndStats exercises hit/miss/eviction accounting.
func TestCacheLRUAndStats(t *testing.T) {
	c := New(2)
	get := func(key string) (Value, bool) {
		v, hit, _, _, err := c.Do(context.Background(), key, 5, func(*Value) (Value, error) {
			return Value{UpperScaled: 1, LowerScaled: 1, Optimal: true}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v, hit
	}
	if _, hit := get("a"); hit {
		t.Fatal("first lookup hit")
	}
	if _, hit := get("a"); !hit {
		t.Fatal("second lookup missed")
	}
	get("b")
	get("c") // evicts a
	if _, hit := get("a"); hit {
		t.Fatal("evicted entry still hit")
	}
	st := c.Stats()
	if st.Evictions == 0 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want evictions > 0 and 2 entries", st)
	}
}

// TestIntervalTierLifecycle covers the deadline-limited interval path:
// same-tier repeats warm-start a fresh solve (and tighten), lower-tier
// requests are served a higher tier's interval directly, and a merged
// interval that closes is promoted to the optimal segment.
func TestIntervalTierLifecycle(t *testing.T) {
	c := New(8)
	do := func(tier int, fn func(warm *Value) (Value, error)) (Value, bool, bool) {
		v, hit, _, warmed, err := c.Do(context.Background(), "k", tier, fn)
		if err != nil {
			t.Fatal(err)
		}
		return v, hit, warmed
	}

	// First deadline-limited solve: interval [5, 20] at tier 7.
	v, hit, warmed := do(7, func(warm *Value) (Value, error) {
		if warm != nil {
			t.Fatal("cold start got warm data")
		}
		return Value{UpperScaled: 20, LowerScaled: 5, Source: "astar"}, nil
	})
	if hit || warmed || v.UpperScaled != 20 {
		t.Fatalf("first interval solve: v=%+v hit=%v warmed=%v", v, hit, warmed)
	}

	// Same tier again: not a hit — warm-started refinement, which
	// tightens, and the caller sees the MERGED interval.
	v, hit, warmed = do(7, func(warm *Value) (Value, error) {
		if warm == nil || warm.UpperScaled != 20 || warm.LowerScaled != 5 {
			t.Fatalf("warm = %+v, want cached [5, 20]", warm)
		}
		return Value{UpperScaled: 25, LowerScaled: 9, Source: "ida*"}, nil
	})
	if hit || !warmed {
		t.Fatalf("same-tier repeat: hit=%v warmed=%v", hit, warmed)
	}
	if v.UpperScaled != 20 || v.LowerScaled != 9 {
		t.Fatalf("merged interval = [%d, %d], want [9, 20]", v.LowerScaled, v.UpperScaled)
	}

	// A lower-tier (smaller budget) request is served the stored
	// interval directly: a bigger budget already tried harder.
	v, hit, _ = do(3, func(*Value) (Value, error) {
		t.Fatal("lower-tier request must not re-solve")
		return Value{}, nil
	})
	if !hit || v.UpperScaled != 20 || v.LowerScaled != 9 {
		t.Fatalf("lower-tier serve: v=%+v hit=%v", v, hit)
	}

	// Bounds meeting across requests closes and promotes the interval.
	v, _, _ = do(7, func(warm *Value) (Value, error) {
		return Value{UpperScaled: 9, LowerScaled: 9, Source: "ida*"}, nil
	})
	if !v.Optimal {
		t.Fatalf("closed interval not promoted: %+v", v)
	}
	if _, hit, _ = do(1, func(*Value) (Value, error) { return Value{}, nil }); !hit {
		t.Fatal("promoted optimum not served as a hit")
	}
	st := c.Stats()
	if st.IntervalEntries != 0 {
		t.Fatalf("interval entries left after promotion: %+v", st)
	}
	if st.WarmStarts < 2 || st.Tightenings < 1 {
		t.Fatalf("warm/tighten counters: %+v", st)
	}
}

// TestIntervalsNeverDisplaceOptimal fills the optimal segment, then
// floods the cache with interval entries: every proven-optimal entry
// must survive, with interval entries evicting only each other.
func TestIntervalsNeverDisplaceOptimal(t *testing.T) {
	c := New(4)
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("opt-%d", i)
		c.Do(context.Background(), key, 3, func(*Value) (Value, error) {
			return Value{UpperScaled: 1, LowerScaled: 1, Optimal: true}, nil
		})
	}
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("int-%d", i)
		c.Do(context.Background(), key, 3, func(*Value) (Value, error) {
			return Value{UpperScaled: 10, LowerScaled: 2}, nil
		})
	}
	st := c.Stats()
	if st.Entries != 4 || st.Evictions != 0 {
		t.Fatalf("optimal entries displaced: %+v", st)
	}
	if st.IntervalEntries != 4 || st.IntervalEvictions != 28 {
		t.Fatalf("interval LRU accounting: %+v", st)
	}
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("opt-%d", i)
		if _, hit, _, _, _ := c.Do(context.Background(), key, 3, func(*Value) (Value, error) {
			t.Fatalf("optimal entry %s lost", key)
			return Value{}, nil
		}); !hit {
			t.Fatalf("optimal entry %s not a hit", key)
		}
	}
}

// TestTierForBudget pins the doubling-bucket tier function.
func TestTierForBudget(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{time.Millisecond, 1},
		{50 * time.Millisecond, 6},
		{100 * time.Millisecond, 7},
		{127 * time.Millisecond, 7},
		{128 * time.Millisecond, 8},
		{2 * time.Second, 11},
	} {
		if got := TierForBudget(tc.d); got != tc.want {
			t.Fatalf("TierForBudget(%s) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

// TestSingleflight: N concurrent identical requests run fn exactly
// once; the rest share the result.
func TestSingleflight(t *testing.T) {
	c := New(8)
	const n = 16
	gate := make(chan struct{})
	var calls int
	var wg sync.WaitGroup
	var mu sync.Mutex
	sharedCount := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, shared, _, err := c.Do(context.Background(), "k", 3, func(*Value) (Value, error) {
				calls++ // safe: singleflight guarantees one caller
				<-gate
				return Value{Optimal: true}, nil
			})
			if err != nil {
				t.Error(err)
			}
			mu.Lock()
			if shared {
				sharedCount++
			}
			mu.Unlock()
		}()
	}
	// Let the requests pile onto the flight, then release it. The
	// stats-based wait avoids a racy sleep.
	for {
		st := c.Stats()
		if st.Misses >= n {
			break
		}
	}
	close(gate)
	wg.Wait()
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	if sharedCount != n-1 {
		t.Fatalf("%d shared flights, want %d", sharedCount, n-1)
	}
	if st := c.Stats(); st.SharedFlights != n-1 {
		t.Fatalf("stats shared = %d, want %d", st.SharedFlights, n-1)
	}
}

// FuzzCanonicalInvariance guards the canonical-key path: any parsed
// DAG must digest identically under a relabeling derived from the
// input bytes.
func FuzzCanonicalInvariance(f *testing.F) {
	seedGraph := func(g *dag.DAG) {
		var buf bytes.Buffer
		if err := g.WriteText(&buf); err == nil {
			f.Add(buf.Bytes(), int64(1))
		}
	}
	seedGraph(daggen.Pyramid(3))
	seedGraph(daggen.FFT(2))
	seedGraph(daggen.Chain(5))
	seedGraph(daggen.Grid(2, 2))
	seedGraph(daggen.RandomLayered(2, 3, 2, 9))
	f.Add([]byte("nodes 3\nedge 0 1\nedge 1 2\n"), int64(3))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		g, err := dag.ReadText(bytes.NewReader(data))
		if err != nil || g.N() == 0 || g.N() > 64 {
			return
		}
		d0, perm0 := Canonical(g)
		if len(perm0) != g.N() {
			t.Fatalf("perm length %d != n %d", len(perm0), g.N())
		}
		rng := rand.New(rand.NewSource(seed))
		h := relabel(g, randPerm(g.N(), rng))
		d1, _ := Canonical(h)
		if d0 != d1 {
			t.Fatalf("digest not invariant under relabeling (n=%d)", g.N())
		}
	})
}

// BenchmarkCanonicalPyramid6 tracks the canonical-key cost on a
// 21-node symmetric instance (the worst common case: symmetry forces
// individualization).
func BenchmarkCanonicalPyramid6(b *testing.B) {
	g := daggen.Pyramid(6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Canonical(g)
	}
}

var _ = fmt.Sprintf // keep fmt for debugging edits

// TestSingleflightWaitHonorsContext: a waiter with an expired context
// gives up instead of inheriting the leader's budget.
func TestSingleflightWaitHonorsContext(t *testing.T) {
	c := New(8)
	gate := make(chan struct{})
	leaderRunning := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, _, _, _, err := c.Do(context.Background(), "k", 3, func(*Value) (Value, error) {
			close(leaderRunning)
			<-gate
			return Value{Optimal: true}, nil
		})
		done <- err
	}()
	<-leaderRunning
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, shared, _, err := c.Do(ctx, "k", 3, func(*Value) (Value, error) {
		t.Error("waiter must not run fn")
		return Value{}, nil
	})
	if !shared || !errors.Is(err, context.Canceled) {
		t.Fatalf("shared=%v err=%v, want shared wait aborted by context", shared, err)
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("leader failed: %v", err)
	}
	// The completed optimal result is cached despite the waiter bailing.
	if _, hit, _, _, _ := c.Do(context.Background(), "k", 3, func(*Value) (Value, error) { return Value{}, nil }); !hit {
		t.Fatal("leader result not cached")
	}
}

// TestCanonicalBoundedCost guards the serving request path against the
// canonical-labeling blowup: path-like graphs inside the canonMaxN
// window refine to discrete without individualization, and graphs
// beyond it take the representation-exact fast path. (Before the size
// cap, chain(4000) took seconds in the recursion.)
func TestCanonicalBoundedCost(t *testing.T) {
	for _, n := range []int{500, 4000, 50000} {
		start := time.Now()
		Canonical(daggen.Chain(n))
		if d := time.Since(start); d > 2*time.Second {
			t.Fatalf("Canonical(chain(%d)) took %s", n, d)
		}
	}
}

// TestPanickingSolveDoesNotPoisonKey: a panic inside fn frees waiters
// with an error, propagates, and leaves the key usable.
func TestPanickingSolveDoesNotPoisonKey(t *testing.T) {
	c := New(8)
	leaderRunning := make(chan struct{})
	release := make(chan struct{})
	waiterErr := make(chan error, 1)
	go func() {
		<-leaderRunning
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_, _, _, _, err := c.Do(ctx, "k", 3, func(*Value) (Value, error) { return Value{}, nil })
		waiterErr <- err
	}()
	go func() {
		// Release the leader's panic only once the waiter has latched
		// onto the flight, so the waiter provably waits on teardown.
		for c.Stats().SharedFlights == 0 {
			time.Sleep(time.Millisecond)
		}
		close(release)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate")
			}
		}()
		c.Do(context.Background(), "k", 3, func(*Value) (Value, error) {
			close(leaderRunning)
			<-release
			panic("solver bug")
		})
	}()
	if err := <-waiterErr; err == nil {
		t.Fatal("waiter got nil error from panicked flight")
	}
	// The key recovers: a fresh request runs fn again.
	v, hit, shared, _, err := c.Do(context.Background(), "k", 3, func(*Value) (Value, error) {
		return Value{UpperScaled: 1, LowerScaled: 1, Optimal: true}, nil
	})
	if err != nil || hit || shared || !v.Optimal {
		t.Fatalf("key did not recover: v=%+v hit=%v shared=%v err=%v", v, hit, shared, err)
	}
}

// TestConcurrentIsomorphicRequests is the satellite race scenario: many
// goroutines, each holding a DIFFERENT random relabeling of the same
// instance, compute canonical keys and hit the cache concurrently at
// mixed budget tiers. Exactly one solve may run per generation of the
// interval (singleflight), every caller must end with a coherent
// interval, and the proven-optimal entry planted for a second instance
// must survive the interval churn. Run under -race in CI.
func TestConcurrentIsomorphicRequests(t *testing.T) {
	base := daggen.Pyramid(4)
	model := pebble.NewModel(pebble.Oneshot)
	c := New(4)

	// Plant a proven-optimal entry for a different instance; the
	// concurrent interval traffic below must never evict it.
	optKey, _ := Instance{G: daggen.FFT(2), Model: model, R: 4}.Key()
	c.Do(context.Background(), optKey, 3, func(*Value) (Value, error) {
		return Value{UpperScaled: 7, LowerScaled: 7, Optimal: true}, nil
	})

	rng := rand.New(rand.NewSource(99))
	const n = 24
	copies := make([]*dag.DAG, n)
	for i := range copies {
		copies[i] = relabel(base, randPerm(base.N(), rng))
	}

	var solves atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			inst := Instance{G: copies[i], Model: model, R: 3}
			key, _ := inst.Key()
			tier := 5 + i%3
			v, _, _, _, err := c.Do(context.Background(), key, tier, func(warm *Value) (Value, error) {
				solves.Add(1)
				lo, hi := int64(4), int64(16)
				if warm != nil {
					lo, hi = warm.LowerScaled+1, warm.UpperScaled
				}
				return Value{UpperScaled: hi, LowerScaled: lo, Source: "test"}, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			if v.LowerScaled > v.UpperScaled || v.UpperScaled > 16 || v.LowerScaled < 4 {
				t.Errorf("incoherent interval [%d, %d]", v.LowerScaled, v.UpperScaled)
			}
		}(i)
	}
	wg.Wait()

	// All 24 isomorphic relabelings funneled into one key: far fewer
	// solves than requests (each non-shared, non-hit request tightens
	// the shared interval monotonically).
	if got := solves.Load(); got >= n {
		t.Fatalf("no deduplication: %d solves for %d isomorphic requests", got, n)
	}
	if _, hit, _, _, _ := c.Do(context.Background(), optKey, 3, func(*Value) (Value, error) {
		return Value{}, nil
	}); !hit {
		t.Fatal("interval churn evicted the proven-optimal entry")
	}
	st := c.Stats()
	if st.Evictions != 0 {
		t.Fatalf("optimal-segment evictions under interval churn: %+v", st)
	}
}
