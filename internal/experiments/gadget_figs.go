package experiments

import (
	"fmt"

	"rbpebble/internal/dag"
	"rbpebble/internal/gadgets"
	"rbpebble/internal/pebble"
	"rbpebble/internal/sched"
	"rbpebble/internal/solve"
)

// Fig1Params configures the CD-gadget experiment.
type Fig1Params struct {
	GroupSize int
	Heights   []int
}

// DefaultFig1Params keeps the exact-solver instances small.
func DefaultFig1Params() Fig1Params {
	return Fig1Params{GroupSize: 3, Heights: []int{1, 2, 3, 4}}
}

// Fig1CD regenerates the Figure 1 claim: the CD gadget pebbles for free
// with R = groupSize+2 red pebbles, but with one fewer the optimal cost
// grows linearly in the height h (the paper's 2h-order lower bound).
// Optima are computed by the exact state-space solver.
func Fig1CD(p Fig1Params) *Report {
	rep := &Report{
		ID:     "Figure 1",
		Title:  fmt.Sprintf("CD gadget (constant indegree), left group %d", p.GroupSize),
		Claim:  "free with R-1 left pebbles held (R'=|L|+2); cost Ω(h) with one pebble fewer",
		Header: []string{"h", "nodes", "cost@R'", "opt@R'-1", "opt/h"},
	}
	for _, h := range p.Heights {
		cd := gadgets.NewCD(p.GroupSize, h)
		_, free, err := sched.Execute(cd.G, pebble.NewModel(pebble.Oneshot), cd.RequiredR(), pebble.Convention{}, cd.StrategyOrder(), sched.Options{Policy: sched.Belady})
		if err != nil {
			panic(err)
		}
		opt, err := solve.Exact(solve.Problem{G: cd.G, Model: pebble.NewModel(pebble.Oneshot), R: cd.RequiredR() - 1}, exactOpts())
		if err != nil {
			panic(err)
		}
		rep.Rows = append(rep.Rows, []string{
			itoa(h), itoa(cd.G.N()),
			itoa(free.Cost.Transfers),
			itoa(opt.Result.Cost.Transfers),
			ftoa(float64(opt.Result.Cost.Transfers) / float64(h)),
		})
	}
	rep.Verdict = "cost 0 at R'; with R'-1 the optimum grows linearly in h (shuttle cost per layer)"
	return rep
}

// Fig2H2C regenerates the Figure 2 claim: a source protected by the H2C
// gadget costs exactly 4 transfers to derive, and saving the protected
// value (store+load = 2) beats re-deriving it (≥ 3 to re-redden the
// starters, ≥ 4 from scratch).
func Fig2H2C() *Report {
	rep := &Report{
		ID:     "Figure 2",
		Title:  "H2C gadget (hard-to-compute sources)",
		Claim:  "computing a protected node costs exactly 4 transfers; save+reload (2) beats recomputation (≥3)",
		Header: []string{"R", "nodes", "opt (exact)", "claimed"},
	}
	// The protected node has indegree 3 (its starters), so R >= 4.
	for _, r := range []int{4, 5, 6} {
		g := dag.New(2)
		g.AddEdge(0, 1)
		gadgets.AttachH2C(g, []dag.NodeID{0}, r)
		opt, err := solve.Exact(solve.Problem{G: g, Model: pebble.NewModel(pebble.Oneshot), R: r}, exactOpts())
		if err != nil {
			panic(err)
		}
		rep.Rows = append(rep.Rows, []string{
			itoa(r), itoa(g.N()),
			itoa(opt.Result.Cost.Transfers),
			itoa(gadgets.MinTransferCost),
		})
	}
	rep.Verdict = "exact optimum equals the claimed constant 4 for every R"
	return rep
}

// TradeoffParams configures the Figure 3/4 experiment.
type TradeoffParams struct {
	D     int
	Chain int
}

// DefaultTradeoffParams mirrors the paper's picture at laptop scale.
func DefaultTradeoffParams() TradeoffParams { return TradeoffParams{D: 4, Chain: 50} }

// Fig4Tradeoff regenerates the tradeoff diagram of Figure 4 (and its
// Appendix A.1 variants): the measured cost of the prescribed strategy on
// the Figure 3 DAG for every R from d+2 to 2d+2, against the closed form
// opt(d+2+i) = 2(d-i)·n, for all four models. The nodel curve is offset
// by ≈n (chain nodes must turn blue) and the compcost curve by ε·n, as
// the appendix predicts.
func Fig4Tradeoff(p TradeoffParams) *Report {
	tr := gadgets.NewTradeoff(p.D, p.Chain)
	rep := &Report{
		ID:     "Figures 3+4 (and Appendix A.1)",
		Title:  fmt.Sprintf("Time-memory tradeoff, d=%d, chain n=%d", p.D, p.Chain),
		Claim:  "opt(d+2+i) = 2(d-i)·n for i∈[0,d]: maximal 2n drop per extra red pebble, from ≈(2Δ-2)n down to 0; +n offset in nodel, +εn in compcost",
		Header: []string{"R", "predicted", "oneshot", "base", "nodel", "compcost(val)"},
	}
	for r := tr.MinR(); r <= tr.MaxUsefulR(); r++ {
		row := []string{itoa(r), itoa(tr.PredictedOptOneshot(r))}
		for _, kind := range []pebble.ModelKind{pebble.Oneshot, pebble.Base, pebble.NoDel, pebble.CompCost} {
			m := pebble.NewModel(kind)
			_, res, err := sched.Execute(tr.G, m, r, pebble.Convention{}, tr.StrategyOrder(), sched.Options{Policy: sched.Belady})
			if err != nil {
				panic(err)
			}
			if kind == pebble.CompCost {
				row = append(row, ftoa(res.Cost.Value(m)))
			} else {
				row = append(row, itoa(res.Cost.Transfers))
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Verdict = "each extra pebble saves ≈2n transfers; nodel sits ≈n above oneshot, compcost ≈εn above; boundary terms O(d) below the closed form"
	return rep
}
