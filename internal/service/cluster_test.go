package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"rbpebble/internal/anytime"
	"rbpebble/internal/daggen"
	"rbpebble/internal/instcache"
	"rbpebble/internal/solve"
)

// TestAsyncQueueShedsWith429: once the worker pool is saturated a full
// queue deep, further async submissions are shed with 429 and a
// Retry-After estimate instead of queuing unboundedly.
func TestAsyncQueueShedsWith429(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Close()
	gate := make(chan struct{})
	started := make(chan struct{})
	var startedOnce sync.Once
	s.solveFn = func(ctx context.Context, p solve.Problem, opts anytime.Options) (anytime.Result, error) {
		startedOnce.Do(func() { close(started) })
		<-gate
		return anytime.Solve(ctx, p, anytime.Options{})
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submit := func(h int) (*http.Response, error) {
		return http.Post(ts.URL+"/solve", "application/json",
			strings.NewReader(fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3,"async":true}`,
				dagJSON(t, daggen.Pyramid(h)))))
	}

	r1, err := submit(3) // occupies the single worker
	if err != nil {
		t.Fatal(err)
	}
	r1.Body.Close()
	<-started
	r2, err := submit(4) // fills the queue
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r1.StatusCode != http.StatusAccepted || r2.StatusCode != http.StatusAccepted {
		t.Fatalf("setup submissions: %d, %d, want 202", r1.StatusCode, r2.StatusCode)
	}

	r3, err := submit(5) // queue full: shed
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submission status = %d, want 429", r3.StatusCode)
	}
	if ra := r3.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want a positive backlog estimate", ra)
	}
	if got := metric(t, ts, "rbserve_jobs_shed_total"); got != 1 {
		t.Fatalf("jobs_shed_total = %d, want 1", got)
	}
	close(gate)
}

// TestCacheImportEndpoint: entries exported from one node and POSTed to
// another node's /cache/import serve that node's requests from cache.
func TestCacheImportEndpoint(t *testing.T) {
	src := New(Config{})
	defer src.Close()
	srcTS := httptest.NewServer(src.Handler())
	defer srcTS.Close()

	body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3}`, dagJSON(t, daggen.Pyramid(4)))
	if code, sr, raw := postSolve(t, srcTS, body); code != http.StatusOK || !sr.Optimal {
		t.Fatalf("source solve: %d %s", code, raw)
	}
	exported := src.ExportCache()
	if len(exported) == 0 {
		t.Fatal("source exported nothing")
	}

	dst := New(Config{})
	defer dst.Close()
	dstTS := httptest.NewServer(dst.Handler())
	defer dstTS.Close()

	payload, _ := json.Marshal(map[string]any{"entries": exported})
	resp, err := http.Post(dstTS.URL+"/cache/import", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var ir map[string]int
	json.NewDecoder(resp.Body).Decode(&ir)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ir["imported"] != len(exported) {
		t.Fatalf("import: status %d, imported=%d, want %d", resp.StatusCode, ir["imported"], len(exported))
	}

	// The destination now serves the instance (with trace verification)
	// without solving it.
	code, sr, raw := postSolve(t, dstTS, fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3,"include_trace":true}`,
		dagJSON(t, daggen.Pyramid(4))))
	if code != http.StatusOK || !sr.Cached || !sr.Optimal || len(sr.Moves) == 0 {
		t.Fatalf("imported entry not served: %d %s", code, raw)
	}
	if got := metric(t, dstTS, "rbserve_solves_total"); got != 0 {
		t.Fatalf("destination solved locally (%d solves), import should have prevented that", got)
	}
	if got := metric(t, dstTS, "rbserve_cache_imported_total"); got != len(exported) {
		t.Fatalf("cache_imported_total = %d, want %d", got, len(exported))
	}
}

// TestReplicateHookLeaderOnly: the Replicate hook fires for the flight
// leader's freshly produced entry, and not for cache hits.
func TestReplicateHookLeaderOnly(t *testing.T) {
	var mu sync.Mutex
	var got []instcache.Entry
	s := New(Config{Replicate: func(e instcache.Entry) {
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
	}})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3}`, dagJSON(t, daggen.Pyramid(4)))
	if code, _, raw := postSolve(t, ts, body); code != http.StatusOK {
		t.Fatalf("solve: %d %s", code, raw)
	}
	mu.Lock()
	n := len(got)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("replications after fresh solve = %d, want 1", n)
	}
	if got[0].Key == "" || !got[0].Value.Optimal {
		t.Fatalf("replicated entry = %+v, want the proven optimum", got[0])
	}

	// A cache hit produced nothing new: no replication.
	if code, sr, raw := postSolve(t, ts, body); code != http.StatusOK || !sr.Cached {
		t.Fatalf("repeat solve: %d %s", code, raw)
	}
	mu.Lock()
	n = len(got)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("replications after cache hit = %d, want still 1", n)
	}
}
