package solve

import (
	"errors"
	"testing"

	"rbpebble/internal/benchharness"
	"rbpebble/internal/daggen"
	"rbpebble/internal/pebble"
)

// Solver microbenchmarks on the canonical workloads at fixed R, all in
// the oneshot model. Each benchmark reports states-expanded (for the
// exact searches) alongside ns/op and allocs/op, and the whole suite
// can emit machine-readable results for cross-PR tracking (a relative
// path resolves against the package directory, so pass an absolute one
// to refresh the repo-root artifact):
//
//	go test ./internal/solve ./internal/anytime -p 1 -bench . -benchtime 1x -benchjson "$PWD"/BENCH_solver.json
//
// (The flag is named -benchjson because the go tool claims -json for
// its own test2json stream.)
//
// Reference numbers for the seed implementation (string-keyed Dijkstra,
// container/heap, full-state clone per candidate), measured on the seed
// commit with the same instances:
//
//	pyramid(5) R=4:  3.85 s/op   21,634,392 allocs/op   65,689 states
//	grid(4,4)  R=3:  79 ms/op       583,607 allocs/op    2,239 states
//
// The PR 1 rewrite (A* + packed states + allocation-free loop), same
// machine:
//
//	pyramid(5) R=4 A*:        15 ms/op      719 allocs/op    7,387 states
//	pyramid(5) R=4 Dijkstra:  72 ms/op      200 allocs/op   65,689 states
//	fft(3)     R=3 A*:       2.8  s/op      923 allocs/op  1.27M states
//
// PR 2 (S-partition bound, async HDA* engine, IDA* DFS), same machine
// (a 1-core container — parallel wall-clock differences come from
// engine overhead and search discipline, not hardware parallelism; see
// Ablation D):
//
//	pyramid(5) R=3 lower-bound:    20 ms/op  12,704 states  (R = Δ+1)
//	pyramid(5) R=3 s-partition:   5.6 ms/op   1,974 states  (6.4x fewer)
//	pyramid(5) R=4 sync-rounds 4w: 26 ms/op  11,921 states
//	pyramid(5) R=4 async-hda   4w: 20 ms/op   7,624 states
//	pyramid(5) R=4 sync-rounds 8w: 41 ms/op  21,714 states
//	pyramid(5) R=4 async-hda   8w: 22 ms/op   7,762 states
//	fft(3)     R=3 sync-rounds 4w: 3.23 s/op 1.267M states
//	fft(3)     R=3 async-hda   4w: 3.24 s/op 1.265M states
//	fft(3)     R=3 IDA*:          7.9 s/op   6.17M visits — solves within
//	    the 16M default budget; branch and bound exhausts it unfinished
//	    (incumbent 39 > optimum 31 at 16M visits).
//
// The async engine beats sync rounds outright on pyramid(5) R=4 at 4
// and 8 workers (the sync engine's round batches overshoot the frontier
// as workers grow; the async watermark holds expansions at the serial
// count). On fft(3) R=3 the two engines are at parity on this 1-core
// host — their CPU profiles are equal within 3% — with async expanding
// slightly fewer states; the async design is the one with headroom on
// real multicore hosts, where sync's barriers serialize every round.
//
// This PR (arena-slab state table, bucketed two-level frontier queue,
// slab-backed heuristic masks), same 1-core machine, serial A* on the
// fft(3) R=3 memory row (1.37M distinct states):
//
//	allocs/op:  858 -> 429    (bucket recycling + bitset slabs)
//	bytes/op:   595 MB -> 592 MB allocation traffic, with the probe
//	    slots halved (packed tag|ref word) and the per-state cost,
//	    heuristic and key sharing one arena row; the table itself peaks
//	    at 80 MB (the new peak_table_bytes column)
//	ns/op:      3.22 s -> 2.99 s
//	states/op:  1,265,002 — bit-identical to the committed row, as the
//	    bucket queue preserves the (f asc, g desc) pop order
//
// The async-vs-sync scaling rows were re-measured per the ROADMAP
// command (still a 1-core container): async 17.1 ms vs sync 21.2 ms at
// 4 workers on pyramid(5) R=4 (18.1 vs 34.6 at 8), parity on fft(3)
// R=3 (3.06 vs 2.99 s) — the multicore re-measure remains open.
//
// This PR (engine-introspection snapshots), re-measured on its own
// container at -benchtime 3x:
//
//	fft(3) R=3 A* nil listener:   5.21 s/op    462 allocs/op
//	fft(3) R=3 A* 100ms listener: 5.59 s/op    590 allocs/op
//
// The listener-less run is bit-identical to the pre-change tree (same
// allocation count and bytes on the same host; the wall gap vs the
// committed 2.99 s row is container noise — the pre-change tree
// measures the same 4.2-5.4 s band here). The watching tax is ~50
// samples over the solve: one histogram slice plus sampler bookkeeping
// per 100ms snapshot.

// The -benchjson flag, record type and merge-write live in
// internal/benchharness, shared with the anytime benchmark suite.

func TestMain(m *testing.M) { benchharness.Main(m) }

func record(b *testing.B, base benchharness.Baseline, rec benchharness.Record) {
	benchharness.Capture(b, base, rec)
}

func pyramid5R4() Problem {
	return Problem{G: daggen.Pyramid(5), Model: pebble.NewModel(pebble.Oneshot), R: 4}
}

func pyramid5R3() Problem {
	return Problem{G: daggen.Pyramid(5), Model: pebble.NewModel(pebble.Oneshot), R: 3}
}

func fft3R3() Problem {
	return Problem{G: daggen.FFT(3), Model: pebble.NewModel(pebble.Oneshot), R: 3}
}

func grid44R3() Problem {
	return Problem{G: daggen.Grid(4, 4), Model: pebble.NewModel(pebble.Oneshot), R: 3}
}

func benchExact(b *testing.B, p Problem, opts ExactOptions) {
	b.Helper()
	b.ReportAllocs()
	var stats ExactStats
	opts.Stats = &stats
	opts.MaxStates = 50_000_000
	m0 := benchharness.Before()
	var scaled int64
	for i := 0; i < b.N; i++ {
		sol, err := Exact(p, opts)
		if err != nil {
			b.Fatal(err)
		}
		scaled = sol.Result.Cost.Scaled(p.Model)
	}
	b.ReportMetric(float64(stats.Expanded), "states/op")
	b.ReportMetric(float64(stats.Distinct), "distinct/op")
	b.ReportMetric(float64(stats.TableBytes), "table-bytes/op")
	record(b, m0, benchharness.Record{
		StatesExpanded: stats.Expanded,
		DistinctStates: stats.Distinct,
		OptimalScaled:  scaled,
		PeakTableBytes: stats.TableBytes,
	})
}

// Serial engine, heuristic tiers.

func BenchmarkExactAStarPyramid5R4(b *testing.B) { benchExact(b, pyramid5R4(), ExactOptions{}) }

func BenchmarkExactDijkstraPyramid5R4(b *testing.B) {
	benchExact(b, pyramid5R4(), ExactOptions{Heuristic: HeuristicOff})
}

func BenchmarkExactAStarFFT3R3(b *testing.B) { benchExact(b, fft3R3(), ExactOptions{}) }

func BenchmarkExactDijkstraFFT3R3(b *testing.B) {
	benchExact(b, fft3R3(), ExactOptions{Heuristic: HeuristicOff})
}

func BenchmarkExactAStarGrid44R3(b *testing.B) { benchExact(b, grid44R3(), ExactOptions{}) }

func BenchmarkExactDijkstraGrid44R3(b *testing.B) {
	benchExact(b, grid44R3(), ExactOptions{Heuristic: HeuristicOff})
}

// S-partition vs single-certificate bound on the pyramid at R = Δ+1 —
// the regime PR 1 left at ~2x state reduction. These two rows feed the
// Ablation B comparison.

func BenchmarkExactSPartitionPyramid5R3(b *testing.B) {
	benchExact(b, pyramid5R3(), ExactOptions{Heuristic: HeuristicSPartition})
}

func BenchmarkExactLowerBoundPyramid5R3(b *testing.B) {
	benchExact(b, pyramid5R3(), ExactOptions{Heuristic: HeuristicLowerBound})
}

// Async HDA* vs synchronous rounds at 4 and 8 workers.

func BenchmarkExactAsync4Pyramid5R4(b *testing.B) {
	benchExact(b, pyramid5R4(), ExactOptions{Parallel: 4})
}

func BenchmarkExactSync4Pyramid5R4(b *testing.B) {
	benchExact(b, pyramid5R4(), ExactOptions{Parallel: 4, ParallelAlgo: ParallelSyncRounds})
}

func BenchmarkExactAsync8Pyramid5R4(b *testing.B) {
	benchExact(b, pyramid5R4(), ExactOptions{Parallel: 8})
}

func BenchmarkExactSync8Pyramid5R4(b *testing.B) {
	benchExact(b, pyramid5R4(), ExactOptions{Parallel: 8, ParallelAlgo: ParallelSyncRounds})
}

func BenchmarkExactAsync4FFT3R3(b *testing.B) {
	benchExact(b, fft3R3(), ExactOptions{Parallel: 4})
}

func BenchmarkExactSync4FFT3R3(b *testing.B) {
	benchExact(b, fft3R3(), ExactOptions{Parallel: 4, ParallelAlgo: ParallelSyncRounds})
}

// Depth-first exact solvers.

func benchDFS(b *testing.B, p Problem, opts ExactDFSOptions) {
	b.Helper()
	b.ReportAllocs()
	var stats ExactDFSStats
	opts.Stats = &stats
	if opts.MaxVisits == 0 {
		opts.MaxVisits = 50_000_000
	}
	m0 := benchharness.Before()
	var scaled int64
	for i := 0; i < b.N; i++ {
		sol, err := ExactDFS(p, opts)
		if err != nil {
			b.Fatal(err)
		}
		scaled = sol.Result.Cost.Scaled(p.Model)
	}
	b.ReportMetric(float64(stats.Visits), "visits/op")
	record(b, m0, benchharness.Record{Visits: stats.Visits, OptimalScaled: scaled, PeakTableBytes: stats.TableBytes})
}

func BenchmarkExactIDAStarPyramid5R4(b *testing.B) {
	benchDFS(b, pyramid5R4(), ExactDFSOptions{Algorithm: DFSIDAStar})
}

func BenchmarkExactDFSBnBPyramid5R4(b *testing.B) {
	benchDFS(b, pyramid5R4(), ExactDFSOptions{Algorithm: DFSBranchAndBound})
}

// BenchmarkExactIDAStarFFT3R3 is the acceptance demonstration for the
// IDA* rebuild: fft(3) R=3, hopeless for branch and bound (it exhausts
// the 16M default budget with its incumbent still at 39 > 31), solves
// oneshot at ~6.2M visits — well within the default.
func BenchmarkExactIDAStarFFT3R3(b *testing.B) {
	benchDFS(b, fft3R3(), ExactDFSOptions{Algorithm: DFSIDAStar})
}

func BenchmarkExactDFSGrid44R3(b *testing.B) {
	benchDFS(b, grid44R3(), ExactDFSOptions{})
}

// BenchmarkMemBudgetAbort measures the memory-governance abort path:
// fft(3) R=3 (whose full table needs tens of megabytes) under a 1 MiB
// budget. ns/op is the time from search start to the certified
// ErrMemoryBudget abort — the latency bound on a memory-governed solve
// detecting it cannot finish — and the recorded row carries the
// harvested certified lower bound and the peak table footprint, which
// must sit at the budget, not above it.
func BenchmarkMemBudgetAbort(b *testing.B) {
	p := fft3R3()
	b.ReportAllocs()
	var stats ExactStats
	m0 := benchharness.Before()
	for i := 0; i < b.N; i++ {
		_, err := Exact(p, ExactOptions{MaxTableBytes: 1 << 20, Stats: &stats})
		if !errors.Is(err, ErrMemoryBudget) {
			b.Fatalf("err = %v, want ErrMemoryBudget", err)
		}
	}
	b.ReportMetric(float64(stats.Expanded), "states/op")
	b.ReportMetric(float64(stats.TableBytes), "table-bytes/op")
	record(b, m0, benchharness.Record{
		StatesExpanded: stats.Expanded,
		DistinctStates: stats.Distinct,
		LowerScaled:    stats.LowerBound,
		PeakTableBytes: stats.TableBytes,
	})
}

// BenchmarkSearchSnapshotOverhead measures the introspection tax: the
// BenchmarkExactAStarFFT3R3 search with a live snapshot listener at the
// default 100ms cadence. Compare against the listener-less committed
// row — the delta is the cost of watching (sampler clock reads plus one
// histogram allocation per sample); the nil-listener path itself is
// guarded by TestNilListenerAllocGuard.
func BenchmarkSearchSnapshotOverhead(b *testing.B) {
	benchExact(b, fft3R3(), ExactOptions{Progress: func(ExactProgress) {}})
}

// Heuristic baseline.

func benchTopoBelady(b *testing.B, p Problem) {
	b.Helper()
	b.ReportAllocs()
	m0 := benchharness.Before()
	for i := 0; i < b.N; i++ {
		if _, err := TopoBelady(p); err != nil {
			b.Fatal(err)
		}
	}
	record(b, m0, benchharness.Record{})
}

func BenchmarkTopoBeladyPyramid5R4(b *testing.B) { benchTopoBelady(b, pyramid5R4()) }

func BenchmarkTopoBeladyFFT3R3(b *testing.B) { benchTopoBelady(b, fft3R3()) }

func BenchmarkTopoBeladyGrid44R3(b *testing.B) { benchTopoBelady(b, grid44R3()) }
