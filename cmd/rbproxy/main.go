// Command rbproxy is the cluster front end for a fleet of rbserve
// replicas: it routes each POST /solve to the node that owns the
// request's canonical instance key on a consistent-hash ring (so
// repeated and isomorphic submissions of an instance warm the same
// node's interval cache), fails over along the ring when a node dies
// or drains, fans async-job polls out across the fleet, and merges the
// nodes' /metrics and /healthz into cluster-level views.
//
// Usage:
//
//	rbserve -addr :8081 & rbserve -addr :8082 &
//	rbproxy -addr :8080 -members 127.0.0.1:8081,127.0.0.1:8082
//	curl -s -X POST localhost:8080/solve -d '{
//	    "dag": {"nodes": 3, "edges": [[0,2],[1,2]]},
//	    "model": "oneshot", "r": 3, "deadline_ms": 1000}'
//	curl -s localhost:8080/healthz     # per-node cluster view
//	curl -s localhost:8080/metrics     # cluster_rbserve_* aggregates
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rbpebble/internal/cluster"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		members  = flag.String("members", "", "comma-separated rbserve replicas (host:port), required")
		vnodes   = flag.Int("vnodes", 64, "virtual nodes per member on the hash ring")
		probe    = flag.Duration("probe", 2*time.Second, "member health-probe interval")
		maxBody  = flag.Int64("max-body", 64<<20, "largest accepted request body in bytes")
		maxNodes = flag.Int("max-nodes", 100000, "largest accepted instance (guards the routing parse)")
		fwdLimit = flag.Duration("forward-timeout", 60*time.Second, "per-forward timeout (must exceed the nodes' max solve deadline)")
	)
	flag.Parse()

	var memberList []string
	for _, m := range strings.Split(*members, ",") {
		if m = strings.TrimSpace(m); m != "" {
			memberList = append(memberList, m)
		}
	}
	if len(memberList) == 0 {
		fmt.Fprintln(os.Stderr, "rbproxy: -members is required (e.g. -members 127.0.0.1:8081,127.0.0.1:8082)")
		os.Exit(2)
	}

	p := cluster.NewProxy(cluster.ProxyConfig{
		Members:       memberList,
		VirtualNodes:  *vnodes,
		ProbeInterval: *probe,
		MaxBodyBytes:  *maxBody,
		MaxNodes:      *maxNodes,
		Client:        &http.Client{Timeout: *fwdLimit},
	})
	defer p.Close()
	srv := &http.Server{Addr: *addr, Handler: p.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("rbproxy: listening on %s, routing to %d members (probe=%s vnodes=%d)",
		*addr, len(memberList), *probe, *vnodes)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "rbproxy:", err)
		os.Exit(1)
	case sig := <-sigc:
		log.Printf("rbproxy: %s, shutting down", sig)
		srv.Close()
	}
}
