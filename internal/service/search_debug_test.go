package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rbpebble/internal/anytime"
	"rbpebble/internal/daggen"
	"rbpebble/internal/obs"
	"rbpebble/internal/solve"
)

// TestJobSearchDebug: while an async job runs, GET /debug/jobs/{id}/search
// must serve the latest live engine snapshot streamed by the
// orchestrator, /metrics must carry the per-job search gauges (including
// per-worker mailbox depth), and after completion the last snapshot must
// stay retrievable alongside the terminal status. The solver is stubbed
// so the test controls the snapshots and the job's lifetime.
func TestJobSearchDebug(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	streamed := make(chan struct{})
	gate := make(chan struct{})
	s.solveFn = func(ctx context.Context, p solve.Problem, opts anytime.Options) (anytime.Result, error) {
		if opts.OnSearch == nil {
			t.Error("async job solve got no OnSearch hook")
		} else {
			opts.OnSearch(obs.SearchSnapshot{
				Seq: 1, Engine: "async-hda", Expanded: 1000, Rate: 50000,
				FrontierSize: 40, TableBytes: 1 << 20,
				Workers: []obs.SearchWorker{{ID: 0, MailboxDepth: 3}, {ID: 1, MailboxDepth: 7}},
			})
			opts.OnSearch(obs.SearchSnapshot{
				Seq: 2, Engine: "async-hda", Expanded: 2500, Rate: 61000,
				FrontierSize: 55, TableBytes: 2 << 20,
				Workers: []obs.SearchWorker{{ID: 0, MailboxDepth: 1}, {ID: 1, MailboxDepth: 0}},
			})
		}
		close(streamed)
		<-gate
		return anytime.Solve(ctx, p, anytime.Options{})
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3,"async":true}`, dagJSON(t, daggen.Pyramid(4)))
	resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var jr JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	<-streamed
	var sd SearchDebugResponse
	getJSON(t, ts.URL+"/debug/jobs/"+jr.ID+"/search", &sd)
	if sd.Job != jr.ID || sd.Status != "running" {
		t.Fatalf("search debug envelope = %+v, want running job %s", sd, jr.ID)
	}
	if sd.Snapshot == nil || sd.Snapshot.Seq != 2 || sd.Snapshot.Expanded != 2500 {
		t.Fatalf("search debug did not serve the latest snapshot: %+v", sd.Snapshot)
	}

	m := scrapeMetrics(t, ts)
	for _, want := range []string{
		fmt.Sprintf("rbserve_job_expansion_rate{job=%q} 61000", jr.ID),
		fmt.Sprintf("rbserve_job_table_bytes{job=%q} %d", jr.ID, 2<<20),
		fmt.Sprintf("rbserve_job_frontier_size{job=%q} 55", jr.ID),
		fmt.Sprintf("rbserve_job_mailbox_depth{job=%q,worker=\"0\"} 1", jr.ID),
		fmt.Sprintf("rbserve_job_mailbox_depth{job=%q,worker=\"1\"} 0", jr.ID),
		"rbserve_build_info{version=",
		"rbserve_uptime_seconds ",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q while job running:\n%s", want, m)
		}
	}

	close(gate)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job did not finish")
		}
		getJSON(t, ts.URL+"/debug/jobs/"+jr.ID+"/search", &sd)
		if sd.Status == "done" {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The last snapshot outlives the solve for post-mortem inspection,
	// but the live gauges drop with the running state.
	if sd.Snapshot == nil || sd.Snapshot.Seq != 2 {
		t.Fatalf("finished job lost its last snapshot: %+v", sd.Snapshot)
	}
	if m := scrapeMetrics(t, ts); strings.Contains(m, "rbserve_job_expansion_rate{") {
		t.Error("search gauges survived job completion")
	}

	resp, err = http.Get(ts.URL + "/debug/jobs/nope/search")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d, want 404", resp.StatusCode)
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestSearchSinkJSONL: with Config.SearchSink set, every snapshot the
// orchestrator streams — sync solves included — lands in the sink as
// one JSON line carrying the solve's trace ID, and the solve's peak
// snapshot values land on its telemetry record.
func TestSearchSinkJSONL(t *testing.T) {
	var sink bytes.Buffer
	s := New(Config{SearchSink: &sink})
	defer s.Close()
	s.solveFn = func(ctx context.Context, p solve.Problem, opts anytime.Options) (anytime.Result, error) {
		if opts.OnSearch == nil {
			t.Error("SearchSink configured but solve got no OnSearch hook")
		} else {
			opts.OnSearch(obs.SearchSnapshot{Seq: 1, Engine: "astar", Expanded: 100, FrontierSize: 12})
			opts.OnSearch(obs.SearchSnapshot{Seq: 2, Engine: "astar", Expanded: 900, FrontierSize: 30})
		}
		res, err := anytime.Solve(ctx, p, anytime.Options{})
		res.PeakFrontier, res.PeakRate = 30, 4200
		return res, err
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3}`, dagJSON(t, daggen.Pyramid(4)))
	resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d", resp.StatusCode)
	}

	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("sink got %d lines, want 2:\n%s", len(lines), sink.String())
	}
	for i, line := range lines {
		var row searchLogLine
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("sink line %d is not JSON: %v", i, err)
		}
		if row.Snapshot.Seq != i+1 || row.TraceID == "" || row.Time.IsZero() {
			t.Errorf("sink line %d = %+v, want seq %d with trace and time", i, row, i+1)
		}
	}

	var solves SolvesDebugResponse
	getJSON(t, ts.URL+"/debug/solves", &solves)
	if len(solves.Records) == 0 {
		t.Fatal("no telemetry record")
	}
	rec := solves.Records[0]
	if rec.PeakFrontier != 30 || rec.PeakRate != 4200 {
		t.Errorf("telemetry peaks (%d, %f), want (30, 4200)", rec.PeakFrontier, rec.PeakRate)
	}
}
