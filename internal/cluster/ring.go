// Package cluster shards rbserve across hosts: a consistent-hash ring
// routes each solve to the replica that owns its canonical instance
// key, so repeated and isomorphic submissions of the same instance
// land on the same node's cache and warm-start each other, while the
// rest of the fleet stays free for other instances. The package
// provides the ring (virtual nodes, rendezvous tie-break), a member
// health prober, and the HTTP routing proxy served by cmd/rbproxy.
package cluster

import (
	"sort"
	"strconv"
	"sync"
)

// defaultVirtualNodes is the per-member virtual-node count. 64 points
// per member keeps the expected load imbalance of a small cluster
// within a few percent while the ring stays tiny (sorted array of
// members*64 points).
const defaultVirtualNodes = 64

// point is one virtual node on the ring.
type point struct {
	h      uint64
	member string
}

// Ring is a consistent-hash ring over cluster members with virtual
// nodes and rendezvous (highest-random-weight) tie-breaking. Keys are
// canonical instance keys (instcache.Instance.Key), so the ring
// inherits their isomorphism invariance: relabeled copies of a DAG
// route to the same member. The zero value is not usable; call
// NewRing.
type Ring struct {
	mu      sync.RWMutex
	vnodes  int
	healthy map[string]bool
	points  []point // sorted by (h, rendezvous-stable member order)
}

// NewRing returns a ring with the given virtual-node count per member
// (<= 0 selects the default of 64) and the initial member set.
func NewRing(vnodes int, members ...string) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVirtualNodes
	}
	r := &Ring{vnodes: vnodes, healthy: make(map[string]bool)}
	r.Add(members...)
	return r
}

// hashString is FNV-1a over s with a splitmix64 finalizer — stable
// across processes (no per-run seeding), which a routing layer needs:
// every proxy replica must agree on the owner of a key. The finalizer
// matters: bare FNV-1a barely diffuses the last bytes into the high
// bits on short inputs, which clusters each member's virtual nodes
// into one arc of the ring and collapses the rendezvous weights to a
// fixed member order.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// rendezvous scores member for key: the classic HRW weight used to
// break virtual-node hash collisions deterministically and
// member-symmetrically.
func rendezvous(member, key string) uint64 {
	return hashString(member + "\x00" + key)
}

// Add inserts members (idempotent). New members start healthy: the
// prober demotes them if they fail their first probe.
func (r *Ring) Add(members ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range members {
		if _, ok := r.healthy[m]; ok {
			continue
		}
		r.healthy[m] = true
		for i := 0; i < r.vnodes; i++ {
			r.points = append(r.points, point{h: hashString(m + "#" + strconv.Itoa(i)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].member < r.points[j].member
	})
}

// Remove deletes a member and its virtual nodes.
func (r *Ring) Remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.healthy[member]; !ok {
		return
	}
	delete(r.healthy, member)
	out := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			out = append(out, p)
		}
	}
	r.points = out
}

// SetHealthy marks a member up or down. Unknown members are ignored.
func (r *Ring) SetHealthy(member string, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, known := r.healthy[member]; known {
		r.healthy[member] = ok
	}
}

// Healthy reports a member's last known health.
func (r *Ring) Healthy(member string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.healthy[member]
}

// Members returns all members sorted, with their health.
func (r *Ring) Members() map[string]bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]bool, len(r.healthy))
	for m, ok := range r.healthy {
		out[m] = ok
	}
	return out
}

// Owners returns up to n distinct members in routing preference order
// for key: clockwise from the key's ring position, healthy members
// first (an all-down ring still returns the unhealthy order, so the
// caller can attempt a last-resort forward). Virtual nodes whose
// hashes collide are ordered by rendezvous weight for THIS key, so the
// tie resolves differently — but deterministically and
// proxy-replica-consistently — per key instead of always favoring the
// lexicographically smaller member.
func (r *Ring) Owners(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	kh := hashString(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= kh })

	var healthyOwners, downOwners []string
	seen := make(map[string]bool, len(r.healthy))
	i := start
	for len(seen) < len(r.healthy) {
		// Collect the run of equal-hash points and order it by
		// rendezvous weight before visiting.
		j := i
		run := []string{r.points[i%len(r.points)].member}
		for {
			j++
			p := r.points[j%len(r.points)]
			if p.h != r.points[i%len(r.points)].h || j-i >= len(r.points) {
				break
			}
			run = append(run, p.member)
		}
		if len(run) > 1 {
			sort.Slice(run, func(a, b int) bool {
				return rendezvous(run[a], key) > rendezvous(run[b], key)
			})
		}
		for _, m := range run {
			if seen[m] {
				continue
			}
			seen[m] = true
			if r.healthy[m] {
				healthyOwners = append(healthyOwners, m)
			} else {
				downOwners = append(downOwners, m)
			}
		}
		i = j
	}
	owners := append(healthyOwners, downOwners...)
	if len(owners) > n {
		owners = owners[:n]
	}
	return owners
}
