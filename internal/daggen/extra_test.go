package daggen

import (
	"testing"

	"rbpebble/internal/dag"
)

func TestKaryTree(t *testing.T) {
	for _, c := range []struct{ k, levels, wantN int }{
		{2, 3, 7},
		{3, 3, 13},
		{4, 2, 5},
		{3, 1, 1},
	} {
		g := KaryTree(c.k, c.levels)
		validate(t, g)
		if g.N() != c.wantN {
			t.Fatalf("KaryTree(%d,%d): n=%d want %d", c.k, c.levels, g.N(), c.wantN)
		}
		if len(g.Sinks()) != 1 || g.Sinks()[0] != 0 {
			t.Fatalf("KaryTree(%d,%d): sinks=%v", c.k, c.levels, g.Sinks())
		}
		if c.levels > 1 && g.MaxInDegree() != c.k {
			t.Fatalf("KaryTree(%d,%d): Δ=%d", c.k, c.levels, g.MaxInDegree())
		}
		lp, _ := g.LongestPathLen()
		if lp != c.levels-1 {
			t.Fatalf("KaryTree(%d,%d): depth=%d", c.k, c.levels, lp)
		}
	}
}

func TestDenseLayer(t *testing.T) {
	g := DenseLayer(5, 3)
	validate(t, g)
	if g.N() != 8 || g.M() != 15 {
		t.Fatalf("DenseLayer: n=%d m=%d", g.N(), g.M())
	}
	if len(g.Sources()) != 5 || len(g.Sinks()) != 3 {
		t.Fatal("DenseLayer boundary wrong")
	}
	if g.MaxInDegree() != 5 {
		t.Fatalf("DenseLayer Δ=%d", g.MaxInDegree())
	}
}

func TestCheckpointChain(t *testing.T) {
	g := CheckpointChain(10, 3)
	validate(t, g)
	sink := dag.NodeID(9)
	if !g.IsSink(sink) || len(g.Sinks()) != 1 {
		t.Fatal("sink wrong")
	}
	// Checkpoints 2, 5 feed the sink, plus the chain end 8.
	for _, cp := range []dag.NodeID{2, 5, 8} {
		if !g.HasEdge(cp, sink) {
			t.Fatalf("checkpoint %d not wired to sink", cp)
		}
	}
	if g.HasEdge(0, sink) || g.HasEdge(3, sink) {
		t.Fatal("non-checkpoint wired to sink")
	}
}

func TestExtraPanics(t *testing.T) {
	for i, f := range []func(){
		func() { KaryTree(1, 3) },
		func() { KaryTree(2, 0) },
		func() { DenseLayer(0, 3) },
		func() { CheckpointChain(1, 1) },
		func() { CheckpointChain(5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}
