package solve

import "fmt"

// PortfolioOptions configures the portfolio solver.
type PortfolioOptions struct {
	// Samples for the random-order heuristic (0 = 32).
	Samples int
	// Seed drives the randomized components.
	Seed int64
	// ExactBudget, if positive, additionally tries the exact solver with
	// this state budget and returns its (provably optimal) answer when
	// it finishes within budget.
	ExactBudget int
	// Parallel is forwarded to ExactOptions.Parallel: values > 1 expand
	// the exact search with that many hash-sharded workers.
	Parallel int
}

// Portfolio runs the library's heuristics — topological+Belady, the
// three greedy rules, and random-order sampling — and returns the
// cheapest verified pebbling, labeled with the winning strategy. With a
// positive ExactBudget it also attempts exact search and, on success,
// returns the proven optimum.
//
// This is the recommended entry point for users who just want a good
// schedule for a workload DAG.
func Portfolio(p Problem, opts PortfolioOptions) (Solution, string, error) {
	if opts.ExactBudget > 0 {
		if sol, err := Exact(p, ExactOptions{MaxStates: opts.ExactBudget, Parallel: opts.Parallel}); err == nil {
			return sol, "exact", nil
		}
		// Budget exceeded (or unsupported scale): fall through to
		// heuristics.
	}
	samples := opts.Samples
	if samples == 0 {
		samples = 32
	}
	type entry struct {
		name string
		run  func() (Solution, error)
	}
	entries := []entry{
		{"topo+belady", func() (Solution, error) { return TopoBelady(p) }},
		{"random-orders", func() (Solution, error) {
			return RandomOrders(p, RandomOrdersOptions{Samples: samples, Seed: opts.Seed})
		}},
	}
	for _, rule := range AllGreedyRules() {
		rule := rule
		entries = append(entries, entry{"greedy/" + rule.String(), func() (Solution, error) {
			return Greedy(p, rule)
		}})
	}
	var (
		best     Solution
		bestName string
		bestCost int64
		found    bool
		lastErr  error
	)
	for _, e := range entries {
		sol, err := e.run()
		if err != nil {
			lastErr = err
			continue
		}
		c := sol.Result.Cost.Scaled(p.Model)
		if !found || c < bestCost {
			best, bestName, bestCost, found = sol, e.name, c, true
		}
	}
	if !found {
		return Solution{}, "", fmt.Errorf("solve: every portfolio strategy failed: %w", lastErr)
	}
	return best, bestName, nil
}
