// Package service is the rbserve HTTP layer: a JSON API over the
// anytime orchestrator with a canonical instance cache, singleflight
// deduplication of concurrent identical solves, a worker-pool job queue
// for async requests, per-request deadlines and operational metrics.
//
// Endpoints:
//
//	POST /solve            solve an instance (async=true enqueues a job)
//	GET  /solve/{id}       poll an async job
//	GET  /healthz          liveness probe
//	GET  /metrics          Prometheus-style counters
//	POST /cache/import     merge cache entries pushed by cluster peers
package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rbpebble/internal/anytime"
	"rbpebble/internal/dag"
	"rbpebble/internal/instcache"
	"rbpebble/internal/obs"
	"rbpebble/internal/pebble"
	"rbpebble/internal/refine"
	"rbpebble/internal/solve"
)

// Config tunes a Server. Zero values select the defaults.
type Config struct {
	// Workers is the async job worker-pool size (default 2).
	Workers int
	// QueueDepth bounds the async job queue (default 64); beyond it
	// POST /solve with async=true returns 503.
	QueueDepth int
	// CacheSize bounds the solution LRU (default 256 entries).
	CacheSize int
	// DefaultDeadline applies when a request has no deadline_ms
	// (default 2s). MaxDeadline clamps requested deadlines (default 30s).
	DefaultDeadline, MaxDeadline time.Duration
	// SolveWorkers is forwarded to anytime.Options.Workers (parallel
	// expansion inside one solve; default 1, serial).
	SolveWorkers int
	// MaxNodes rejects instances above this size (default 100000). It
	// is enforced before the graph is materialized, so a tiny request
	// body declaring a huge node count cannot allocate.
	MaxNodes int
	// MaxBodyBytes caps the request body (default 64 MiB).
	MaxBodyBytes int64
	// KeepJobs bounds how many finished async jobs stay pollable
	// (default 1024; the oldest finished jobs are dropped beyond it).
	KeepJobs int
	// GracePeriod bounds how long Shutdown waits for in-flight solves
	// before canceling them cooperatively (default 10s). Canceled
	// solves still return certified partial intervals.
	GracePeriod time.Duration
	// MaxBatchItems caps how many instances one POST /solve/batch may
	// carry (default 256).
	MaxBatchItems int
	// CanonWorkers bounds the concurrency of the batch canonicalization
	// pool (default GOMAXPROCS): batch items are decoded once and
	// canonically labeled in parallel before any of them queues for a
	// solve.
	CanonWorkers int
	// FastLaneWorkers/HeavyLaneWorkers size the two scheduling lanes of
	// the batch plane (defaults 4 and 2). The fast lane runs groups a
	// cache probe can serve and groups whose whole budget is below
	// FastLaneBudget; the heavy lane runs everything that may hold a
	// worker for a long exact solve.
	FastLaneWorkers, HeavyLaneWorkers int
	// FastLaneQueue/HeavyLaneQueue bound the per-lane backlogs
	// (defaults 256 and 64); a full lane sheds its items with 429 +
	// Retry-After instead of queueing cheap work behind expensive work.
	FastLaneQueue, HeavyLaneQueue int
	// FastLaneBudget is the largest per-item deadline the fast lane
	// accepts for uncached work (default 150ms): an item that can hold
	// a fast-lane worker for at most this long cannot head-of-line
	// block the cache-served traffic behind it.
	FastLaneBudget time.Duration
	// Replicate, when set, receives every cache entry this node newly
	// produced (proven-optimal values and tightened intervals, in
	// canonical numbering) so the cluster agent can push it to the
	// key's next ring owner — crash safety for the cache. Called from
	// the request path; implementations must not block.
	Replicate func(instcache.Entry)
	// TraceCap bounds the /debug/trace/{id} recorder ring (default 256
	// most recent traces).
	TraceCap int
	// TelemetryCap bounds the /debug/solves telemetry ring (default 512
	// most recent solve records).
	TelemetryCap int
	// TelemetrySink, when non-nil, additionally receives every solve
	// record as one JSON line (rbserve -telemetry-log).
	TelemetrySink io.Writer
	// MaxTableBytes caps each foreground solve's visited-table memory
	// (0 = unlimited): an exact engine that outgrows the budget aborts
	// with a certified partial interval instead of taking the node down.
	// Threaded to anytime.Options.MaxTableBytes.
	MaxTableBytes int64
	// RefinerInterval enables the background refiner at this idle scan
	// cadence (0 = disabled). When enabled the node spends its idle
	// cycles re-solving the widest certified intervals in its cache at
	// the next budget tier, strictly preempted by foreground work.
	RefinerInterval time.Duration
	// RefinerMaxTier caps the budget tier a background refinement may
	// escalate to (default 12: budgets up to ~4s).
	RefinerMaxTier int
	// RefinerTableBytes is the refiner's per-solve table-memory
	// sub-budget (default MaxTableBytes/2 when a node budget is set):
	// background work runs under a tighter governor than foreground so
	// an ambitious refinement cannot pressure live traffic.
	RefinerTableBytes int64
	// RefinerOwns, when set, filters background refinement to keys this
	// node owns on the cluster ring (nil = solo node: refine all).
	RefinerOwns func(key string) bool
	// SearchSink, when non-nil, receives every live engine-introspection
	// snapshot sampled during this node's solves as one JSON line
	// (rbserve -search-log). Lines are written under a server-wide lock
	// so concurrent solves never interleave.
	SearchSink io.Writer
	// Logger receives structured request/job lifecycle logs with trace
	// and job IDs attached (default: discard).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 2 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 30 * time.Second
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 100000
	}
	if c.KeepJobs <= 0 {
		c.KeepJobs = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.GracePeriod <= 0 {
		c.GracePeriod = 10 * time.Second
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 256
	}
	if c.CanonWorkers <= 0 {
		c.CanonWorkers = runtime.GOMAXPROCS(0)
	}
	if c.FastLaneWorkers <= 0 {
		c.FastLaneWorkers = 4
	}
	if c.HeavyLaneWorkers <= 0 {
		c.HeavyLaneWorkers = 2
	}
	if c.FastLaneQueue <= 0 {
		c.FastLaneQueue = 256
	}
	if c.HeavyLaneQueue <= 0 {
		c.HeavyLaneQueue = 64
	}
	if c.FastLaneBudget <= 0 {
		c.FastLaneBudget = 150 * time.Millisecond
	}
	if c.RefinerMaxTier <= 0 {
		c.RefinerMaxTier = 12
	}
	if c.RefinerTableBytes <= 0 && c.MaxTableBytes > 0 {
		c.RefinerTableBytes = c.MaxTableBytes / 2
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// SolveRequest is the POST /solve body.
type SolveRequest struct {
	// DAG is the graph in the library's JSON form:
	// {"nodes": n, "edges": [[u,v], ...]}. It stays raw until the node
	// count has been checked against Config.MaxNodes, so a malicious
	// 50-byte body declaring two billion nodes never allocates them.
	DAG json.RawMessage `json:"dag"`
	// Model is base|oneshot|nodel|compcost (default oneshot);
	// EpsDenom is the compcost ε denominator (default 100).
	Model    string `json:"model,omitempty"`
	EpsDenom int    `json:"eps_denom,omitempty"`
	// R is the red-pebble limit (default Δ+1, the minimum feasible).
	R int `json:"r,omitempty"`
	// Convention flags (Appendix C).
	SourcesStartBlue bool `json:"sources_start_blue,omitempty"`
	SinksMustBeBlue  bool `json:"sinks_must_be_blue,omitempty"`
	// DeadlineMS is the solve budget in milliseconds (0 = server
	// default; clamped to the server maximum).
	DeadlineMS int `json:"deadline_ms,omitempty"`
	// Async enqueues the solve and returns a job ID immediately.
	Async bool `json:"async,omitempty"`
	// IncludeTrace adds the verified move sequence to the response.
	IncludeTrace bool `json:"include_trace,omitempty"`
}

// MoveJSON is one trace move on the wire.
type MoveJSON struct {
	Op   string `json:"op"`
	Node int    `json:"node"`
}

// SolveResponse is the solve result on the wire: the certified
// [lower, upper] interval, incumbent cost and provenance.
type SolveResponse struct {
	Cost      float64    `json:"cost"`
	Upper     float64    `json:"upper"`
	Lower     float64    `json:"lower"`
	Gap       float64    `json:"gap"`
	Optimal   bool       `json:"optimal"`
	Source    string     `json:"source"`
	Cached    bool       `json:"cached"`
	Shared    bool       `json:"shared"`
	Warmed    bool       `json:"warm_started,omitempty"`
	ElapsedMS float64    `json:"elapsed_ms"`
	Moves     []MoveJSON `json:"moves,omitempty"`
}

// JobResponse is the async job envelope.
type JobResponse struct {
	ID     string         `json:"id"`
	Status string         `json:"status"` // queued|running|done|error
	Error  string         `json:"error,omitempty"`
	Result *SolveResponse `json:"result,omitempty"`
}

type job struct {
	id string
	// traceID correlates the job with the request that submitted it
	// (the job context carries the full trace, so the worker's solve
	// spans land on the submitting request's trace).
	traceID string
	// The request is parsed once at submission; the worker reuses the
	// materialized problem instead of re-decoding the DAG JSON.
	p            solve.Problem
	deadline     time.Duration
	includeTrace bool

	// ctx is canceled by DELETE /solve/{id} (and by server shutdown once
	// the grace period expires); the solver layer turns the cancellation
	// into a certified partial interval instead of a wasted solve.
	ctx    context.Context
	cancel context.CancelFunc

	// lower is the live certified scaled lower bound of the running
	// solve, streamed from the orchestrator's progress snapshots (the
	// async engine certifies its global f-min mid-flight, so this moves
	// even under SolveWorkers > 1). Exposed while the job runs as the
	// rbserve_job_lower_bound gauge.
	lower atomic.Int64

	// search is the most recent live engine-introspection snapshot of
	// the running solve (nil until the first sample; the last snapshot
	// is retained after completion). Served by
	// GET /debug/jobs/{id}/search and the rbserve_job_* search gauges.
	search atomic.Pointer[obs.SearchSnapshot]

	mu       sync.Mutex
	status   string
	resp     *SolveResponse
	errMsg   string
	canceled bool // cancellation requested (terminal status becomes "canceled")
	done     chan struct{}
}

func (j *job) snapshot() JobResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobResponse{ID: j.id, Status: j.status, Error: j.errMsg, Result: j.resp}
}

// terminal reports whether a job status is final.
func terminal(status string) bool {
	return status == "done" || status == "error" || status == "canceled"
}

func (j *job) set(status string, resp *SolveResponse, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if terminal(j.status) {
		return // terminal states are final
	}
	if j.canceled && terminal(status) {
		// A cancellation request wins the status; the partial certified
		// interval (if any) is still attached.
		status = "canceled"
	}
	j.status, j.resp, j.errMsg = status, resp, errMsg
	if terminal(status) {
		// Release the job's context child from the server's baseCtx:
		// without this, every finished job would stay registered on
		// baseCtx for the process lifetime.
		j.cancel()
		close(j.done)
	}
}

// startRunning atomically claims a queued job for a worker. It returns
// false when a cancellation won the race (the job is already terminal
// and must be skipped) — the check and the transition share the lock,
// so DELETE can never interleave between them and later double-close
// j.done.
func (j *job) startRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.canceled || terminal(j.status) {
		return false
	}
	j.status = "running"
	return true
}

// requestCancel flips the job to canceled: a queued job is finalized on
// the spot (the worker will skip it), a running one has its context
// canceled — the solve layer harvests a certified partial interval and
// the worker finalizes with it.
func (j *job) requestCancel() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if terminal(j.status) || j.canceled {
		return
	}
	j.canceled = true
	j.cancel()
	if j.status == "queued" {
		j.status = "canceled"
		close(j.done)
	}
}

// metrics are the server's monotone counters (cache counters live in
// the cache itself).
type metrics struct {
	requests, solves, solveErrors                                   atomic.Uint64
	jobsSubmitted, jobsDone, jobsFailed, jobsRejected, jobsCanceled atomic.Uint64
	jobsShed                                                        atomic.Uint64
	batchRequests, batchItems, batchDeduped, batchShed              atomic.Uint64
	// solvesMemLimited counts solves whose exact engines hit the
	// node's table-memory governor and certified a partial interval.
	solvesMemLimited atomic.Uint64
}

// requestSecondsBounds are the rbserve_request_seconds histogram bucket
// upper bounds, in seconds (+Inf is implicit). They span the plane's
// cost classes: sub-millisecond cache hits through multi-second exact
// solves.
var requestSecondsBounds = [...]float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 5, 10}

// histogram is a fixed-bucket latency histogram in the Prometheus
// exposition shape (cumulative le buckets, _sum, _count). Observation
// is two atomic adds — it sits on the request path.
type histogram struct {
	buckets [len(requestSecondsBounds) + 1]atomic.Uint64 // per-bucket (non-cumulative) counts
	sumNs   atomic.Uint64
	count   atomic.Uint64
}

func (h *histogram) observe(d time.Duration) {
	secs := d.Seconds()
	i := 0
	for i < len(requestSecondsBounds) && secs > requestSecondsBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sumNs.Add(uint64(d.Nanoseconds()))
	h.count.Add(1)
}

// write emits the histogram in Prometheus text form under name.
func (h *histogram) write(w io.Writer, name string) {
	var cum uint64
	for i, bound := range requestSecondsBounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(bound, 'g', -1, 64), cum)
	}
	cum += h.buckets[len(requestSecondsBounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name, strconv.FormatFloat(float64(h.sumNs.Load())/1e9, 'g', -1, 64))
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

// Server is the rbserve HTTP service. Create with New, serve
// Handler(), stop with Close or (gracefully) Shutdown.
type Server struct {
	cfg   Config
	cache *instcache.Cache
	mux   *http.ServeMux
	queue chan *job
	lanes *lanes
	wg    sync.WaitGroup

	// reqSeconds is the rbserve_request_seconds histogram: every
	// completed solve request (sync, async job, batch item) observes its
	// end-to-end service latency.
	reqSeconds histogram

	jobMu    sync.Mutex
	jobs     map[string]*job
	jobOrder []string // submission order, for bounded retention
	jobSeq   atomic.Uint64
	// jobPrefix makes job IDs unique per server instance: behind a
	// routing proxy that fans GET/DELETE /solve/{id} across the fleet,
	// plain sequential IDs would collide between replicas and a poll
	// (or worse, a cancel) could land on another node's job.
	jobPrefix string

	// known remembers the parsed problem and canonical permutation
	// behind each cache key this node has served: cache keys are
	// digests and cannot be decoded back into instances, so the
	// background refiner can only re-solve keys recorded here. Bounded
	// FIFO (2x the cache size) — a forgotten key is simply skipped.
	knownMu    sync.Mutex
	known      map[string]keyedProblem
	knownOrder []string

	// refiner is the background interval refiner (nil unless
	// Config.RefinerInterval > 0). fgActive counts live foreground
	// solves — the refiner's admission gate and preemption trigger.
	refiner  *refine.Refiner
	fgActive atomic.Int64

	// interest tracks, per cache key, how many live requests care about
	// the key's in-flight solve and how many of them have canceled. The
	// flight is canceled only when EVERY interested request has — one
	// job's DELETE must not kill a solve that concurrent identical
	// requests are still waiting on.
	interestMu sync.Mutex
	interest   map[string]*keyInterest

	m metrics

	// recorder retains recent traces for GET /debug/trace/{id}; tel is
	// the per-solve telemetry ring behind GET /debug/solves — the
	// feature store the learned portfolio scheduler consumes.
	recorder *obs.Recorder
	tel      *obs.SolveLog
	log      *slog.Logger

	// solveFn is the underlying solver, swappable in tests (e.g. to
	// gate concurrency deterministically).
	solveFn func(ctx context.Context, p solve.Problem, opts anytime.Options) (anytime.Result, error)

	// start stamps process start for rbserve_uptime_seconds; version is
	// the main module version for rbserve_build_info.
	start   time.Time
	version string

	// searchMu serializes SearchSink writes so snapshot lines from
	// concurrent solves never interleave.
	searchMu sync.Mutex

	// baseCtx parents every solve; baseCancel fires when a graceful
	// shutdown exhausts its grace period, turning the surviving
	// in-flight solves into certified partial intervals.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	draining atomic.Bool
	closed   chan struct{}
	once     sync.Once
}

// keyedProblem is one entry of the key -> problem registry (see
// Server.known).
type keyedProblem struct {
	p    solve.Problem
	perm []dag.NodeID
}

// keyInterest is the per-key cancellation vote state (see
// Server.interest).
type keyInterest struct {
	active       int // live requests for this key
	votes        int // of those, how many have canceled
	cancelFlight context.CancelFunc
}

// New returns a started Server (its worker pool runs until Close).
func New(cfg Config) *Server {
	var idSeed [6]byte
	rand.Read(idSeed[:])
	s := &Server{
		cfg:       cfg.withDefaults(),
		jobs:      make(map[string]*job),
		jobPrefix: hex.EncodeToString(idSeed[:]),
		interest:  make(map[string]*keyInterest),
		known:     make(map[string]keyedProblem),
		solveFn:   anytime.Solve,
		closed:    make(chan struct{}),
		start:     time.Now(),
		version:   mainVersion(),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.recorder = obs.NewRecorder(s.cfg.TraceCap)
	s.tel = obs.NewSolveLog(s.cfg.TelemetryCap, s.cfg.TelemetrySink)
	s.log = s.cfg.Logger
	s.cache = instcache.New(s.cfg.CacheSize)
	s.queue = make(chan *job, s.cfg.QueueDepth)
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.lanes = newLanes(s.cfg)
	s.lanes.run(s.closed, &s.wg)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /solve", s.handleSolve)
	s.mux.HandleFunc("POST /solve/batch", s.handleSolveBatch)
	s.mux.HandleFunc("GET /solve/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /solve/{id}", s.handleCancelJob)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /cache/import", s.handleCacheImport)
	s.mux.HandleFunc("GET /debug/solves", s.handleDebugSolves)
	s.mux.HandleFunc("GET /debug/trace/{id}", s.handleDebugTrace)
	s.mux.HandleFunc("GET /debug/jobs/{id}/search", s.handleDebugJobSearch)
	s.mux.HandleFunc("GET /debug/refiner", s.handleDebugRefiner)
	if s.cfg.RefinerInterval > 0 {
		s.refiner = refine.New(refine.Config{
			Export:     s.cache.Export,
			Solve:      s.refineKey,
			Owns:       s.cfg.RefinerOwns,
			Resolvable: s.knowsKey,
			Busy:       s.refinerBusy,
			Interval:   s.cfg.RefinerInterval,
			MaxTier:    s.cfg.RefinerMaxTier,
			Logf: func(format string, args ...any) {
				s.log.Info(fmt.Sprintf(format, args...))
			},
		})
	}
	return s
}

// mainVersion resolves the main module version stamped into the binary
// ("(devel)" for plain go build / go test).
func mainVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain puts the server into draining mode: /healthz starts failing
// (so a routing proxy stops sending new work here) and new solve
// submissions are refused with 503. Requests already in flight keep
// running. Drain is the first step of a graceful shutdown and may be
// called on its own. The background refiner is stopped first — its
// in-flight refinement is canceled cooperatively and lands its
// certified partial interval in the cache before this returns, so the
// drain handoff exports every tightening instead of racing the last
// one.
func (s *Server) Drain() {
	s.draining.Store(true)
	if s.refiner != nil {
		s.refiner.Stop()
	}
}

// Draining reports whether Drain (or Shutdown) has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close stops the worker pool after its in-flight jobs complete. Jobs
// still queued stay in "queued" state; the queue channel is never
// closed, so submissions racing a shutdown get a 503 rather than a
// panic.
func (s *Server) Close() {
	if s.refiner != nil {
		s.refiner.Stop()
	}
	s.once.Do(func() { close(s.closed) })
	s.wg.Wait()
	s.baseCancel()
}

// Shutdown is the graceful SIGTERM path: drain (healthz fails so the
// proxy reroutes), let in-flight solves finish for up to the
// configured grace period, then cancel the stragglers cooperatively —
// a canceled solve still produces a certified partial interval, which
// lands in the interval cache for the next node to warm-start from.
func (s *Server) Shutdown() { s.ShutdownWithin(s.cfg.GracePeriod) }

// ShutdownWithin is Shutdown with an explicit grace budget, for
// callers that share one overall deadline across several teardown
// steps (cmd/rbserve spends the same window on the HTTP listener
// first and passes the remainder here, so the total never exceeds
// the operator's -grace). grace <= 0 cancels in-flight solves
// immediately.
func (s *Server) ShutdownWithin(grace time.Duration) {
	s.Drain()
	s.once.Do(func() { close(s.closed) })
	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	if grace <= 0 {
		s.baseCancel()
		<-finished
		return
	}
	select {
	case <-finished:
	case <-time.After(grace):
		s.baseCancel() // grace exhausted: harvest partial certificates
		<-finished
	}
	s.baseCancel()
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.closed:
			return
		case j := <-s.queue:
			if !j.startRunning() {
				// Canceled while queued; requestCancel already finalized.
				s.m.jobsCanceled.Add(1)
				continue
			}
			resp, err := s.runSolve(j.ctx, j.p, j.deadline, j.includeTrace, j.lower.Store,
				func(sn obs.SearchSnapshot) { j.search.Store(&sn) })
			j.mu.Lock()
			wasCanceled := j.canceled
			j.mu.Unlock()
			if err != nil {
				if wasCanceled {
					s.m.jobsCanceled.Add(1)
				} else {
					s.m.jobsFailed.Add(1)
				}
				j.set("error", nil, err.Error())
				s.log.LogAttrs(j.ctx, slog.LevelWarn, "job failed",
					slog.String("job", j.id), slog.String("trace", j.traceID),
					slog.String("err", err.Error()))
				continue
			}
			if wasCanceled {
				s.m.jobsCanceled.Add(1)
			} else {
				s.m.jobsDone.Add(1)
			}
			j.set("done", &resp, "")
			s.log.LogAttrs(j.ctx, slog.LevelInfo, "job finished",
				slog.String("job", j.id), slog.String("trace", j.traceID),
				slog.String("status", j.snapshot().Status))
		}
	}
}

// BuildProblem validates a solve request into a Problem. maxNodes <= 0
// means no size limit. The graph is materialized only after its
// declared node count passes the guard, so a tiny request body
// declaring a huge node count cannot allocate. It is exported so the
// cluster routing proxy can parse a request exactly the way the node
// will, compute its canonical instance key, and route on it.
func BuildProblem(req SolveRequest, maxNodes int) (solve.Problem, error) {
	if len(req.DAG) == 0 || string(req.DAG) == "null" {
		return solve.Problem{}, errors.New("missing dag")
	}
	var head struct {
		Nodes int `json:"nodes"`
	}
	if err := json.Unmarshal(req.DAG, &head); err != nil {
		return solve.Problem{}, fmt.Errorf("bad dag: %w", err)
	}
	if maxNodes > 0 && head.Nodes > maxNodes {
		return solve.Problem{}, fmt.Errorf("instance has %d nodes, limit %d", head.Nodes, maxNodes)
	}
	g := new(dag.DAG)
	if err := json.Unmarshal(req.DAG, g); err != nil {
		return solve.Problem{}, fmt.Errorf("bad dag: %w", err)
	}
	if maxNodes > 0 && g.N() > maxNodes {
		return solve.Problem{}, fmt.Errorf("instance has %d nodes, limit %d", g.N(), maxNodes)
	}
	var model pebble.Model
	switch req.Model {
	case "", "oneshot":
		model = pebble.NewModel(pebble.Oneshot)
	case "base":
		model = pebble.NewModel(pebble.Base)
	case "nodel":
		model = pebble.NewModel(pebble.NoDel)
	case "compcost":
		eps := req.EpsDenom
		if eps == 0 {
			eps = 100
		}
		model = pebble.Model{Kind: pebble.CompCost, EpsDenom: eps}
	default:
		return solve.Problem{}, fmt.Errorf("unknown model %q", req.Model)
	}
	r := req.R
	if r == 0 {
		r = pebble.MinFeasibleR(g)
	}
	return solve.Problem{
		G: g, Model: model, R: r,
		Convention: pebble.Convention{
			SourcesStartBlue: req.SourcesStartBlue,
			SinksMustBeBlue:  req.SinksMustBeBlue,
		},
	}, nil
}

// parseRequest validates a request into a Problem and clamped deadline.
func (s *Server) parseRequest(req SolveRequest) (solve.Problem, time.Duration, error) {
	p, err := BuildProblem(req, s.cfg.MaxNodes)
	if err != nil {
		return solve.Problem{}, 0, err
	}
	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	return p, deadline, nil
}

// registerInterest records that a request governed by ctx cares about
// key's in-flight solve. The returned release must be deferred. When
// EVERY live interested request's ctx has been canceled, the flight
// context (installed by the leader via flightContext) is canceled —
// so one job's DELETE stops a solve only when nobody else is waiting
// on it.
func (s *Server) registerInterest(key string, ctx context.Context) (release func()) {
	s.interestMu.Lock()
	in := s.interest[key]
	if in == nil {
		in = &keyInterest{}
		s.interest[key] = in
	}
	in.active++
	s.interestMu.Unlock()

	stop := context.AfterFunc(ctx, func() {
		s.interestMu.Lock()
		in.votes++
		cancel := in.cancelFlight
		fire := in.votes >= in.active && cancel != nil
		s.interestMu.Unlock()
		if fire {
			cancel()
		}
	})
	return func() {
		voted := !stop() // AfterFunc already ran: retract its vote with its interest
		s.interestMu.Lock()
		in.active--
		if voted {
			in.votes--
		}
		// A departure can leave only canceled requests behind (e.g. a
		// waiter times out after the leader job was DELETEd): the flight
		// is then fully abandoned and must stop too.
		cancel := in.cancelFlight
		fire := in.active > 0 && in.votes >= in.active && cancel != nil
		if in.active == 0 {
			delete(s.interest, key)
		}
		s.interestMu.Unlock()
		if fire {
			cancel()
		}
	}
}

// flightContext returns the cancelable context the flight leader runs
// the shared solve under: rooted in baseCtx (NOT any single request's
// context — concurrent identical requests share the solve) and
// canceled by the interest registry once every interested request has
// canceled. The caller must defer the returned cancel (after
// flightDone) so the baseCtx child is always released.
func (s *Server) flightContext(key string) (context.Context, context.CancelFunc) {
	fctx, cancel := context.WithCancel(s.baseCtx)
	s.interestMu.Lock()
	in := s.interest[key]
	fire := false
	if in != nil {
		in.cancelFlight = cancel
		fire = in.votes >= in.active // everyone canceled before the solve even started
	}
	s.interestMu.Unlock()
	if fire {
		cancel()
	}
	return fctx, cancel
}

// flightDone detaches the flight cancel func from the interest entry
// once the solve has returned (late votes must not cancel a context
// that a future flight for the same key will replace).
func (s *Server) flightDone(key string) {
	s.interestMu.Lock()
	if in := s.interest[key]; in != nil {
		in.cancelFlight = nil
	}
	s.interestMu.Unlock()
}

// runSolve is the shared sync/async solve path for an already-parsed
// request: canonical key, cache and singleflight, then the anytime
// orchestrator — warm-started from the cached certified interval when
// one exists, so repeated hard instances tighten across requests. ctx
// governs this request's own wait and its cancellation vote (job
// cancellation, shutdown grace expiry); the shared solve itself stops
// only when every request interested in it has canceled, and a
// canceled solve still returns a certified partial interval. onLower,
// when non-nil, receives every certified scaled lower-bound improvement
// streamed by the orchestrator while the solve runs (async jobs feed it
// into their live metrics gauge); it fires only when this request leads
// the solve, not when it latches onto another request's flight. onSearch
// likewise receives the orchestrator's live engine-introspection
// snapshots when this request leads the solve (async jobs retain the
// latest one for GET /debug/jobs/{id}/search).
func (s *Server) runSolve(ctx context.Context, p solve.Problem, deadline time.Duration, includeTrace bool, onLower func(int64), onSearch func(obs.SearchSnapshot)) (SolveResponse, error) {
	start := time.Now()
	_, csp := obs.StartSpan(ctx, "canonicalize")
	inst := instcache.Instance{G: p.G, Model: p.Model, R: p.R, Convention: p.Convention}
	key, perm := inst.Key()
	csp.End()
	val, hit, shared, warmed, err := s.solveKeyed(ctx, p, key, perm, deadline, onLower, onSearch)
	if err != nil {
		s.m.solveErrors.Add(1)
		return SolveResponse{}, err
	}
	resp, err := s.buildResponse(ctx, p, val, perm, includeTrace, hit, shared, warmed, start)
	s.reqSeconds.observe(time.Since(start))
	return resp, err
}

// modelName maps a materialized model back to its wire name for the
// telemetry record (the inverse of BuildProblem's model switch).
func modelName(m pebble.Model) string {
	switch m.Kind {
	case pebble.Base:
		return "base"
	case pebble.NoDel:
		return "nodel"
	case pebble.CompCost:
		return "compcost"
	default:
		return "oneshot"
	}
}

// recordProbeHit appends the telemetry record for a request served
// entirely by a pre-dispatch cache probe (solveKeyed records every
// other disposition itself).
func (s *Server) recordProbeHit(ctx context.Context, p solve.Problem, val instcache.Value, deadline time.Duration, start time.Time) {
	s.tel.Append(obs.SolveRecord{
		TraceID:     obs.TraceIDFrom(ctx),
		Start:       start,
		Features:    obs.ComputeFeatures(p.G, p.R),
		Model:       modelName(p.Model),
		Engine:      val.Source,
		Workers:     s.cfg.SolveWorkers,
		BudgetMS:    deadline.Milliseconds(),
		Tier:        instcache.TierForBudget(deadline),
		Disposition: "hit",
		LowerScaled: val.LowerScaled,
		UpperScaled: val.UpperScaled,
		Optimal:     val.Optimal,
		WallMS:      float64(time.Since(start).Microseconds()) / 1000,
	})
}

// searchLogLine is one -search-log JSONL row: a live engine snapshot
// stamped with its solve's trace ID for correlation against the
// telemetry log and /debug/trace/{id}.
type searchLogLine struct {
	Time     time.Time          `json:"time"`
	TraceID  string             `json:"trace_id,omitempty"`
	Snapshot obs.SearchSnapshot `json:"snapshot"`
}

// solveKeyed is runSolve after the canonical key is known: interest
// registration, the cache/singleflight Do, and replication of freshly
// produced entries. The batch plane computes keys up front (in its
// amortized canonicalization pool) and calls this directly, once per
// in-batch canonical class.
func (s *Server) solveKeyed(ctx context.Context, p solve.Problem, key string, perm []dag.NodeID, deadline time.Duration, onLower func(int64), onSearch func(obs.SearchSnapshot)) (instcache.Value, bool, bool, bool, error) {
	start := time.Now()
	tier := instcache.TierForBudget(deadline)
	// Foreground work preempts background refinement the moment it
	// arrives: the refiner's in-flight solve is canceled cooperatively
	// (it still certifies its partial interval) and its admission gate
	// sees fgActive > 0 until this request's solve is done.
	s.rememberKey(key, p, perm)
	s.fgActive.Add(1)
	defer s.fgActive.Add(-1)
	if s.refiner != nil {
		s.refiner.Preempt()
	}
	release := s.registerInterest(key, ctx)
	defer release()
	// The wait on another request's in-flight solve is bounded by this
	// request's own deadline (plus grace for the orchestrator's
	// non-interruptible heuristic phase) and by its cancellation —
	// joining a long-budget flight must not stall a short-deadline
	// client past its budget, nor pin a canceled job's worker.
	waitCtx, cancelWait := context.WithTimeout(ctx, deadline+2*time.Second)
	defer cancelWait()
	// The cache span covers the whole Do: a hit ends it in
	// microseconds, a latched waiter spends it inside the nested
	// cache-wait span, and a flight leader nests the engine spans
	// under it.
	dctx, dsp := obs.StartSpan(waitCtx, "cache")
	// run captures what the flight actually did when THIS request led
	// it, for the telemetry record (waiters latch on and see none of
	// it). Written inside fn, read after Do returns — fn runs
	// synchronously on this goroutine when it runs at all.
	var run struct {
		res      anytime.Result
		canceled bool
		ran      bool
	}
	val, hit, shared, warmed, err := s.cache.Do(dctx, key, tier, func(warm *instcache.Value) (instcache.Value, error) {
		s.m.solves.Add(1)
		fctx, cancelFlight := s.flightContext(key)
		defer cancelFlight()
		defer s.flightDone(key)
		// The flight context is rooted at baseCtx (concurrent identical
		// requests share one solve, so no single request's cancellation
		// may govern it); grafting transplants the leader's trace onto
		// it so the engine spans land under this request's cache span.
		fctx = obs.Graft(fctx, dctx)
		opts := anytime.Options{
			Budget:        deadline,
			Workers:       s.cfg.SolveWorkers,
			MaxTableBytes: s.cfg.MaxTableBytes,
		}
		if onLower != nil {
			opts.OnProgress = func(sn anytime.Snapshot) {
				if sn.LowerScaled > 0 {
					onLower(sn.LowerScaled)
				}
			}
		}
		if onSearch != nil || s.cfg.SearchSink != nil {
			// Live engine introspection fans out to the caller (async
			// jobs retain the latest snapshot) and to the -search-log
			// JSONL sink. Like onLower, only the flight leader samples —
			// latched waiters see nothing, which is exactly right: there
			// is one search, and one stream describing it.
			traceID := obs.TraceIDFrom(dctx)
			opts.OnSearch = func(sn obs.SearchSnapshot) {
				if onSearch != nil {
					onSearch(sn)
				}
				if s.cfg.SearchSink != nil {
					line := searchLogLine{Time: time.Now(), TraceID: traceID, Snapshot: sn}
					if b, jerr := json.Marshal(line); jerr == nil {
						s.searchMu.Lock()
						s.cfg.SearchSink.Write(append(b, '\n'))
						s.searchMu.Unlock()
					}
				}
			}
		}
		if warm != nil {
			// Resume refinement from the cached certified interval: the
			// incumbent trace (translated back to this requester's node
			// IDs) seeds the engines' bounds, the cached lower bound
			// skips already-completed work.
			opts.Warm = &anytime.WarmStart{
				Moves:       instcache.FromCanonical(warm.Moves, perm),
				LowerScaled: warm.LowerScaled,
				Source:      "cache:" + warm.Source,
			}
		}
		res, err := s.solveFn(fctx, p, opts)
		if err != nil {
			return instcache.Value{}, err
		}
		if res.MemoryLimited {
			s.m.solvesMemLimited.Add(1)
		}
		run.res, run.canceled, run.ran = res, fctx.Err() != nil, true
		// A solve canceled well short of its budget (DELETE, shutdown
		// grace) only earned a lower tier: crediting the full requested
		// tier would let its weak interval be served to smaller-budget
		// requests that could genuinely tighten it. The half-budget
		// threshold keeps normal deadline-limited solves (elapsed ≈
		// budget, possibly a hair under) at their requested tier.
		effTier := tier
		if res.Elapsed > 0 && res.Elapsed*2 < deadline {
			if t := instcache.TierForBudget(res.Elapsed); t < effTier {
				effTier = t
			}
		}
		return instcache.Value{
			Moves:       instcache.ToCanonical(res.Solution.Trace.Moves, perm),
			UpperScaled: res.UpperScaled,
			LowerScaled: res.LowerScaled,
			Optimal:     res.Optimal,
			Source:      res.Source,
			Tier:        effTier,
		}, nil
	})
	dsp.End()
	// Every completion — hit, warm, shared, cold, canceled, failed —
	// appends one telemetry record: the feature store the portfolio
	// scheduler trains on must see the failures and cancellations too.
	rec := obs.SolveRecord{
		TraceID:     obs.TraceIDFrom(ctx),
		Start:       start,
		Features:    obs.ComputeFeatures(p.G, p.R),
		Model:       modelName(p.Model),
		Engine:      val.Source,
		Workers:     s.cfg.SolveWorkers,
		BudgetMS:    deadline.Milliseconds(),
		Tier:        tier,
		Disposition: "cold",
		Canceled:    run.canceled,
		LowerScaled: val.LowerScaled,
		UpperScaled: val.UpperScaled,
		Optimal:     val.Optimal,
		WallMS:      float64(time.Since(start).Microseconds()) / 1000,
	}
	switch {
	case hit:
		rec.Disposition = "hit"
	case shared:
		rec.Disposition = "shared"
	case warmed:
		rec.Disposition = "warm"
	}
	if run.ran {
		rec.Expanded = uint64(run.res.Expanded)
		rec.Visits = uint64(run.res.Visits)
		rec.TableBytes = uint64(run.res.TableBytes)
		rec.PeakFrontier = run.res.PeakFrontier
		rec.PeakRate = run.res.PeakRate
	}
	if err != nil {
		rec.Err = err.Error()
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			rec.Canceled = true
		}
		s.tel.Append(rec)
		return instcache.Value{}, false, false, false, err
	}
	s.tel.Append(rec)
	if !hit && !shared && s.cfg.Replicate != nil {
		// This request's own solve produced (or tightened) the stored
		// entry: push it toward the key's next ring owner so a hard crash
		// of this node doesn't lose it. Only the flight leader replicates
		// — waiters latched onto it would just duplicate the push.
		s.cfg.Replicate(instcache.Entry{Key: key, Tier: val.Tier, Value: val})
	}
	return val, hit, shared, warmed, nil
}

// rememberKey records the problem behind a cache key so the background
// refiner can re-solve it later. Bounded FIFO at twice the cache size:
// keys evicted here simply stop being refinement candidates.
func (s *Server) rememberKey(key string, p solve.Problem, perm []dag.NodeID) {
	s.knownMu.Lock()
	defer s.knownMu.Unlock()
	if _, ok := s.known[key]; ok {
		return
	}
	s.known[key] = keyedProblem{p: p, perm: perm}
	s.knownOrder = append(s.knownOrder, key)
	for len(s.knownOrder) > 2*s.cfg.CacheSize {
		delete(s.known, s.knownOrder[0])
		s.knownOrder = s.knownOrder[1:]
	}
}

// knowsKey reports whether the refiner can materialize key's problem.
func (s *Server) knowsKey(key string) bool {
	s.knownMu.Lock()
	defer s.knownMu.Unlock()
	_, ok := s.known[key]
	return ok
}

func (s *Server) lookupKey(key string) (keyedProblem, bool) {
	s.knownMu.Lock()
	defer s.knownMu.Unlock()
	kp, ok := s.known[key]
	return kp, ok
}

// refinerBusy is the background refiner's admission gate: any live
// foreground solve, queued async job, or lane backlog pauses
// refinement scheduling — background work runs only on genuinely idle
// cycles.
func (s *Server) refinerBusy() bool {
	return s.fgActive.Load() > 0 || len(s.queue) > 0 ||
		s.lanes.fast.depth() > 0 || s.lanes.heavy.depth() > 0
}

// errUnknownKey marks a refinement request for a key whose problem this
// node never parsed (e.g. the entry arrived via replication); the
// refiner backs the key off and moves on.
var errUnknownKey = errors.New("service: no problem registered for cache key")

// refineKey is the background refiner's solve path: re-solve key at
// the given budget tier through the same Cache.Do pipeline foreground
// requests use (warm start from the stored interval, effective-tier
// demotion, replication of the tightened entry), under the refiner's
// tighter table-memory sub-budget. ctx is the refiner's run context —
// canceled on preemption or drain, which the orchestrator turns into
// a certified partial interval that still lands in the cache. Returns
// the scaled gap of the stored interval after the attempt.
func (s *Server) refineKey(ctx context.Context, key string, tier int) (int64, error) {
	kp, ok := s.lookupKey(key)
	if !ok {
		return 0, errUnknownKey
	}
	// The tier's nominal budget: TierForBudget(2^(t-1) ms) == t, the
	// smallest budget that earns the tier.
	deadline := time.Duration(1<<(tier-1)) * time.Millisecond
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	start := time.Now()
	var run struct {
		res anytime.Result
		ran bool
	}
	val, hit, shared, _, err := s.cache.Do(ctx, key, tier, func(warm *instcache.Value) (instcache.Value, error) {
		s.m.solves.Add(1)
		opts := anytime.Options{
			Budget:        deadline,
			Workers:       s.cfg.SolveWorkers,
			MaxTableBytes: s.cfg.RefinerTableBytes,
		}
		if warm != nil {
			opts.Warm = &anytime.WarmStart{
				Moves:       instcache.FromCanonical(warm.Moves, kp.perm),
				LowerScaled: warm.LowerScaled,
				Source:      "cache:" + warm.Source,
			}
		}
		res, err := s.solveFn(ctx, kp.p, opts)
		if err != nil {
			return instcache.Value{}, err
		}
		if res.MemoryLimited {
			s.m.solvesMemLimited.Add(1)
		}
		run.res, run.ran = res, true
		// A preempted refinement earned only the tier its elapsed time
		// paid for (same demotion rule as foreground cancellations).
		effTier := tier
		if res.Elapsed > 0 && res.Elapsed*2 < deadline {
			if t := instcache.TierForBudget(res.Elapsed); t < effTier {
				effTier = t
			}
		}
		return instcache.Value{
			Moves:       instcache.ToCanonical(res.Solution.Trace.Moves, kp.perm),
			UpperScaled: res.UpperScaled,
			LowerScaled: res.LowerScaled,
			Optimal:     res.Optimal,
			Source:      res.Source,
			Tier:        effTier,
		}, nil
	})
	rec := obs.SolveRecord{
		TraceID:     obs.TraceIDFrom(ctx),
		Start:       start,
		Features:    obs.ComputeFeatures(kp.p.G, kp.p.R),
		Model:       modelName(kp.p.Model),
		Engine:      val.Source,
		Workers:     s.cfg.SolveWorkers,
		BudgetMS:    deadline.Milliseconds(),
		Tier:        tier,
		Disposition: "refine",
		Canceled:    ctx.Err() != nil,
		LowerScaled: val.LowerScaled,
		UpperScaled: val.UpperScaled,
		Optimal:     val.Optimal,
		WallMS:      float64(time.Since(start).Microseconds()) / 1000,
	}
	if run.ran {
		rec.Expanded = uint64(run.res.Expanded)
		rec.Visits = uint64(run.res.Visits)
		rec.TableBytes = uint64(run.res.TableBytes)
		rec.PeakFrontier = run.res.PeakFrontier
		rec.PeakRate = run.res.PeakRate
	}
	if err != nil {
		rec.Err = err.Error()
		s.tel.Append(rec)
		return 0, err
	}
	s.tel.Append(rec)
	if !hit && !shared && s.cfg.Replicate != nil {
		// Every background tightening is replicated exactly like a
		// foreground result: the point of refining is to make the
		// fleet's cached interval narrower, crash or no crash.
		s.cfg.Replicate(instcache.Entry{Key: key, Tier: val.Tier, Value: val})
	}
	if val.Optimal {
		return 0, nil
	}
	return val.UpperScaled - val.LowerScaled, nil
}

// RefinerStatus reports the background refiner's live state; ok is
// false when the refiner is disabled.
func (s *Server) RefinerStatus() (refine.Status, bool) {
	if s.refiner == nil {
		return refine.Status{}, false
	}
	return s.refiner.Status(), true
}

// handleDebugRefiner is GET /debug/refiner: the refiner's admission
// state, current candidates and counters.
func (s *Server) handleDebugRefiner(w http.ResponseWriter, r *http.Request) {
	st, ok := s.RefinerStatus()
	if !ok {
		writeJSON(w, refine.Status{Enabled: false})
		return
	}
	writeJSON(w, st)
}

// buildResponse translates a canonical cache value back into one
// requester's node numbering, replay-verifies the trace on the
// requester's own graph, and shapes the wire response. In a batch,
// every member of a canonical-class group goes through its own
// buildResponse (k isomorphic items = 1 solve, k translations), so a
// translation failure poisons only its own item.
func (s *Server) buildResponse(ctx context.Context, p solve.Problem, val instcache.Value, perm []dag.NodeID, includeTrace bool, hit, shared, warmed bool, start time.Time) (SolveResponse, error) {
	_, tsp := obs.StartSpan(ctx, "translate")
	defer tsp.End()
	moves := instcache.FromCanonical(val.Moves, perm)
	// Replay-verify on the requester's own graph: the response is
	// certified even when the moves crossed the cache through another
	// instance's labeling.
	tr := &pebble.Trace{Model: p.Model, R: p.R, Convention: p.Convention, Moves: moves}
	if _, err := tr.Run(p.G); err != nil {
		tsp.SetAttr("err", err.Error())
		s.m.solveErrors.Add(1)
		return SolveResponse{}, fmt.Errorf("cached trace failed verification: %w", err)
	}

	scale := anytime.CostScale(p.Model)
	resp := SolveResponse{
		Cost:      float64(val.UpperScaled) / scale,
		Upper:     float64(val.UpperScaled) / scale,
		Lower:     float64(val.LowerScaled) / scale,
		Gap:       anytime.Gap(val.UpperScaled, val.LowerScaled),
		Optimal:   val.Optimal,
		Source:    val.Source,
		Cached:    hit,
		Shared:    shared,
		Warmed:    warmed,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	}
	if includeTrace {
		resp.Moves = make([]MoveJSON, len(moves))
		for i, m := range moves {
			resp.Moves[i] = MoveJSON{Op: m.Kind.String(), Node: int(m.Node)}
		}
	}
	return resp, nil
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Add(1)
	// The trace starts (or continues, when the proxy minted the ID)
	// before any rejection path, so even a draining 503 or a shed 429
	// carries the X-Rbpebble-Trace correlation header.
	ctx, _ := obs.StartRequest(w, r, s.recorder)
	if s.draining.Load() {
		// The header lets the routing proxy tell "this node is going
		// away, fail over" apart from per-request 503s (queue full,
		// singleflight wait timeout) that a healthy node also emits.
		w.Header().Set("X-Rbserve-Draining", "1")
		httpError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	var req SolveRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	// Parse once; async jobs carry the materialized problem so the
	// worker never re-decodes the DAG JSON.
	p, deadline, err := s.parseRequest(req)
	if err != nil {
		if req.Async {
			httpError(w, http.StatusBadRequest, err.Error())
		} else {
			httpError(w, http.StatusUnprocessableEntity, err.Error())
		}
		return
	}
	if req.Async {
		jctx, jcancel := context.WithCancel(s.baseCtx)
		j := &job{
			id:           "job-" + s.jobPrefix + "-" + strconv.FormatUint(s.jobSeq.Add(1), 10),
			traceID:      obs.TraceIDFrom(ctx),
			p:            p,
			deadline:     deadline,
			includeTrace: req.IncludeTrace,
			status:       "queued",
			// The job context cancels with the job (DELETE, shutdown
			// grace) but carries the submitting request's trace, so the
			// worker's solve spans land on it after the 202 returns.
			ctx:    obs.Graft(jctx, ctx),
			cancel: jcancel,
			done:   make(chan struct{}),
		}
		select {
		case <-s.closed:
			jcancel() // rejected: release the baseCtx child
			httpError(w, http.StatusServiceUnavailable, "server shutting down")
			return
		default:
		}
		select {
		case s.queue <- j:
		default:
			// Queue-depth-aware load shedding: the worker pool is
			// saturated a full queue deep, so tell the client how long the
			// backlog is worth instead of a bare refusal — a retry after
			// that long lands in a drained queue instead of re-shedding.
			jcancel() // rejected: release the baseCtx child
			s.m.jobsShed.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
			httpError(w, http.StatusTooManyRequests, "job queue saturated")
			return
		}
		s.m.jobsSubmitted.Add(1)
		s.registerJob(j)
		s.log.LogAttrs(ctx, slog.LevelInfo, "job queued",
			slog.String("job", j.id), slog.String("trace", j.traceID))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(j.snapshot())
		return
	}
	s.syncSolve(w, ctx, p, deadline, req.IncludeTrace)
}

// syncSolve serves a single synchronous solve through the two-lane
// scheduler: a pre-dispatch cache probe (plus the fast-lane budget
// threshold) classifies the request exactly like a batch group, the
// lane-queue wait is a span on the trace, and a saturated lane sheds
// with 429 + Retry-After instead of queueing a cache hit behind
// multi-second exact solves.
func (s *Server) syncSolve(w http.ResponseWriter, ctx context.Context, p solve.Problem, deadline time.Duration, includeTrace bool) {
	start := time.Now()
	_, csp := obs.StartSpan(ctx, "canonicalize")
	inst := instcache.Instance{G: p.G, Model: p.Model, R: p.R, Convention: p.Convention}
	key, perm := inst.Key()
	csp.End()

	_, psp := obs.StartSpan(ctx, "cache-probe")
	tier := instcache.TierForBudget(deadline)
	probedVal, probeHit := s.cache.Probe(key, tier)
	psp.SetAttr("hit", strconv.FormatBool(probeHit))
	psp.End()
	laneName := laneHeavy
	if probeHit || deadline <= s.cfg.FastLaneBudget {
		laneName = laneFast
	}

	_, qsp := obs.StartSpan(ctx, "lane-queue")
	qsp.SetAttr("lane", laneName)
	var (
		resp SolveResponse
		err  error
	)
	done := make(chan struct{})
	var started atomic.Bool
	task := func() {
		started.Store(true)
		qsp.End()
		defer close(done)
		if probeHit {
			resp, err = s.buildResponse(ctx, p, probedVal, perm, includeTrace, true, false, false, start)
			s.reqSeconds.observe(time.Since(start))
			s.recordProbeHit(ctx, p, probedVal, deadline, start)
			return
		}
		// The solve runs under baseCtx with the request's trace grafted
		// on: a client that disconnects mid-solve doesn't kill a solve
		// whose result is about to land in the cache.
		sctx := obs.Graft(s.baseCtx, ctx)
		var val instcache.Value
		var hit, shared, warmed bool
		val, hit, shared, warmed, err = s.solveKeyed(sctx, p, key, perm, deadline, nil, nil)
		if err != nil {
			s.m.solveErrors.Add(1)
			return
		}
		resp, err = s.buildResponse(ctx, p, val, perm, includeTrace, hit, shared, warmed, start)
		s.reqSeconds.observe(time.Since(start))
	}
	if !s.lanes.byName(laneName).submit(task) {
		qsp.SetAttr("shed", "true")
		qsp.End()
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		httpError(w, http.StatusTooManyRequests, laneName+" lane saturated")
		return
	}
	select {
	case <-done:
	case <-s.closed:
		// Lane workers are gone or going. A task that already started
		// still finishes — its partial certified interval must reach the
		// client — but one still queued never runs.
		if started.Load() {
			<-done
		} else {
			qsp.End()
			httpError(w, http.StatusServiceUnavailable, "server shutting down")
			return
		}
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			httpError(w, http.StatusServiceUnavailable,
				"an identical solve is in flight and exceeded this request's deadline; retry shortly")
			return
		}
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, resp)
}

func (s *Server) registerJob(j *job) {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	for len(s.jobOrder) > s.cfg.KeepJobs {
		// Drop the oldest finished job; stop if the oldest is still live
		// (it must stay pollable).
		old := s.jobs[s.jobOrder[0]]
		if st := old.snapshot().Status; !terminal(st) {
			break
		}
		delete(s.jobs, s.jobOrder[0])
		s.jobOrder = s.jobOrder[1:]
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Add(1)
	obs.StartRequest(w, r, nil) // echo the trace header; polls aren't recorded
	s.jobMu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.jobMu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, j.snapshot())
}

// handleCancelJob is DELETE /solve/{id}: cancel a queued or running
// async job through the solvers' cooperative cancellation layer and
// return the job with the partial certified interval harvested at
// cancellation (the engines hand back their frontier lower bound and
// best incumbent instead of wasting the work done so far).
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Add(1)
	obs.StartRequest(w, r, nil)
	s.jobMu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.jobMu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	j.requestCancel()
	// Wait (bounded) for the worker to harvest the partial certificate;
	// the engines notice cancellation within a few thousand expansions.
	select {
	case <-j.done:
	case <-time.After(5 * time.Second):
	case <-r.Context().Done():
	}
	writeJSON(w, j.snapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		// The header lets the cluster prober tell a *draining* node
		// (alive, handing off, will leave gracefully) from a *dead* one
		// (transport failure / lease expiry) without parsing the body.
		w.Header().Set("X-Rbserve-Draining", "1")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]bool{"ok": false, "draining": true})
		return
	}
	writeJSON(w, map[string]bool{"ok": true})
}

// retryAfterSeconds estimates how long the current backlog is worth
// across every pool that can hold a solve: async jobs and the heavy
// batch lane share the multi-second cost class (each queued unit is
// worth roughly a default budget), while the fast lane drains in
// FastLaneBudget-sized slices. The estimate is the max of the two —
// a shed request retries when the pool it would land in has drained,
// not when the other one has. Clamped to [1s, 60s].
func (s *Server) retryAfterSeconds() int {
	heavy := float64(len(s.queue)+s.lanes.heavy.depth()+1) * s.cfg.DefaultDeadline.Seconds() /
		float64(s.cfg.Workers+s.cfg.HeavyLaneWorkers)
	fast := float64(s.lanes.fast.depth()) * s.cfg.FastLaneBudget.Seconds() /
		float64(s.cfg.FastLaneWorkers)
	backlog := heavy
	if fast > backlog {
		backlog = fast
	}
	secs := int(backlog + 0.999)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// ExportCache snapshots this node's solution cache in wire form — the
// drain-handoff payload the cluster agent pushes to ring successors.
func (s *Server) ExportCache() []instcache.Entry {
	return s.cache.Export()
}

// handleCacheImport is POST /cache/import: merge cache entries pushed
// by the cluster (a draining peer's handoff routed through the proxy,
// or a replication of a freshly proven optimum). Merging is monotone —
// intervals only tighten, optima are authoritative — so imports are
// accepted even while draining: they simply ride along in this node's
// own handoff.
func (s *Server) handleCacheImport(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Add(1)
	var payload struct {
		Entries []instcache.Entry `json:"entries"`
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&payload); err != nil {
		httpError(w, http.StatusBadRequest, "bad import body: "+err.Error())
		return
	}
	writeJSON(w, map[string]int{"imported": s.cache.Import(payload.Entries)})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	cs := s.cache.Stats()
	var drainingGauge uint64
	if s.draining.Load() {
		drainingGauge = 1
	}
	var refRuns, refTightened, refPreempted, refGapSum uint64
	if s.refiner != nil {
		refRuns, refTightened, refPreempted, refGapSum = s.refiner.Counters()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	for _, kv := range []struct {
		name string
		v    uint64
	}{
		{"rbserve_requests_total", s.m.requests.Load()},
		{"rbserve_solves_total", s.m.solves.Load()},
		{"rbserve_solve_errors_total", s.m.solveErrors.Load()},
		{"rbserve_cache_hits_total", cs.Hits},
		{"rbserve_cache_misses_total", cs.Misses},
		{"rbserve_cache_evictions_total", cs.Evictions},
		{"rbserve_cache_entries", uint64(cs.Entries)},
		{"rbserve_singleflight_shared_total", cs.SharedFlights},
		{"rbserve_interval_entries", uint64(cs.IntervalEntries)},
		{"rbserve_interval_hits_total", cs.IntervalHits},
		{"rbserve_interval_stores_total", cs.IntervalStores},
		{"rbserve_interval_evictions_total", cs.IntervalEvictions},
		{"rbserve_interval_tightened_total", cs.Tightenings},
		{"rbserve_warm_starts_total", cs.WarmStarts},
		{"rbserve_cache_imported_total", cs.Imported},
		{"rbserve_jobs_submitted_total", s.m.jobsSubmitted.Load()},
		{"rbserve_jobs_done_total", s.m.jobsDone.Load()},
		{"rbserve_jobs_failed_total", s.m.jobsFailed.Load()},
		{"rbserve_jobs_rejected_total", s.m.jobsRejected.Load()},
		{"rbserve_jobs_shed_total", s.m.jobsShed.Load()},
		{"rbserve_jobs_canceled_total", s.m.jobsCanceled.Load()},
		{"rbserve_batch_requests_total", s.m.batchRequests.Load()},
		{"rbserve_batch_items_total", s.m.batchItems.Load()},
		{"rbserve_batch_dedup_total", s.m.batchDeduped.Load()},
		{"rbserve_batch_shed_total", s.m.batchShed.Load()},
		{"rbserve_lane_shed_total", s.lanes.fast.shed.Load() + s.lanes.heavy.shed.Load()},
		{"rbserve_telemetry_records_total", s.tel.Total()},
		{"rbserve_solves_memlimited_total", s.m.solvesMemLimited.Load()},
		{"rbserve_refiner_runs_total", refRuns},
		{"rbserve_refiner_tightened_total", refTightened},
		{"rbserve_refiner_preempted_total", refPreempted},
		{"rbserve_refiner_gap_sum", refGapSum},
		{"rbserve_draining", drainingGauge},
	} {
		fmt.Fprintf(w, "%s %d\n", kv.name, kv.v)
	}
	// Build identity and uptime. The proxy's fleet merge preserves
	// build_info's labels (a sum of constant-1 series per version is the
	// standard fleet-rollout view); uptime sums into cluster seconds.
	fmt.Fprintf(w, "rbserve_build_info{version=%q,go_version=%q} 1\n", s.version, runtime.Version())
	fmt.Fprintf(w, "rbserve_uptime_seconds %s\n",
		strconv.FormatFloat(time.Since(s.start).Seconds(), 'g', -1, 64))
	// Per-lane queued backlog (instantaneous gauge) — the admission
	// signal behind 429 shedding, exported so operators can see which
	// lane is saturating. "jobs" is the async-solve queue that predates
	// the two-lane batch scheduler.
	fmt.Fprintf(w, "rbserve_queue_depth{lane=%q} %d\n", laneFast, s.lanes.fast.depth())
	fmt.Fprintf(w, "rbserve_queue_depth{lane=%q} %d\n", laneHeavy, s.lanes.heavy.depth())
	fmt.Fprintf(w, "rbserve_queue_depth{lane=%q} %d\n", "jobs", len(s.queue))
	s.reqSeconds.write(w, "rbserve_request_seconds")
	// Per-running-job live certified lower bound (scaled cost units),
	// streamed from the orchestrator mid-flight — the async engine
	// certifies its global f-min without stop-and-drain, so the gauge
	// moves while the job runs even under SolveWorkers > 1. The cluster
	// proxy strips the label and sums across jobs and nodes into
	// cluster_rbserve_job_lower_bound. Snapshot under the lock, write
	// after releasing it: a slow-reading scraper must not block job
	// submission and polling on jobMu.
	type jobGauge struct {
		id     string
		lower  int64
		search *obs.SearchSnapshot
	}
	var gauges []jobGauge
	s.jobMu.Lock()
	for _, id := range s.jobOrder {
		j := s.jobs[id]
		j.mu.Lock()
		running := j.status == "running"
		j.mu.Unlock()
		if running {
			gauges = append(gauges, jobGauge{id: id, lower: j.lower.Load(), search: j.search.Load()})
		}
	}
	s.jobMu.Unlock()
	for _, g := range gauges {
		fmt.Fprintf(w, "rbserve_job_lower_bound{job=%q} %d\n", g.id, g.lower)
		if g.search == nil {
			continue // no snapshot sampled yet
		}
		// Live search-introspection gauges, from the job's latest engine
		// snapshot. The proxy's fleet merge strips the labels and sums
		// into cluster_rbserve_job_*.
		fmt.Fprintf(w, "rbserve_job_expansion_rate{job=%q} %s\n", g.id,
			strconv.FormatFloat(g.search.Rate, 'g', -1, 64))
		fmt.Fprintf(w, "rbserve_job_table_bytes{job=%q} %d\n", g.id, g.search.TableBytes)
		fmt.Fprintf(w, "rbserve_job_frontier_size{job=%q} %d\n", g.id, g.search.FrontierSize)
		for _, wk := range g.search.Workers {
			fmt.Fprintf(w, "rbserve_job_mailbox_depth{job=%q,worker=\"%d\"} %d\n", g.id, wk.ID, wk.MailboxDepth)
		}
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
