package cluster

import (
	"net/http"
	"sync"
	"time"
)

// Prober keeps the ring's member health current by polling each
// member's /healthz on a fixed interval. A member is up iff the probe
// returns 2xx — an rbserve node that is draining for shutdown answers
// 503, so the ring stops routing to it before it goes away (the
// graceful half of node lifecycle; hard crashes are caught by the
// connection error instead).
type Prober struct {
	ring     *Ring
	client   *http.Client
	interval time.Duration

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// NewProber returns a started prober (poll loop runs until Stop).
// interval <= 0 selects 2s. client nil selects a 1s-timeout client.
func NewProber(ring *Ring, interval time.Duration, client *http.Client) *Prober {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	if client == nil {
		client = &http.Client{Timeout: time.Second}
	}
	p := &Prober{ring: ring, client: client, interval: interval, stop: make(chan struct{})}
	p.wg.Add(1)
	go p.loop()
	return p
}

func (p *Prober) loop() {
	defer p.wg.Done()
	// Probe immediately at start so a dead seed member is demoted
	// before the first interval elapses.
	p.ProbeOnce()
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.ProbeOnce()
		}
	}
}

// ProbeOnce probes every member once, in parallel, and updates the
// ring. Exported so tests (and the proxy's failover path) can force a
// re-check without waiting out the interval.
func (p *Prober) ProbeOnce() {
	var wg sync.WaitGroup
	for m := range p.ring.Members() {
		wg.Add(1)
		go func(m string) {
			defer wg.Done()
			p.ring.SetHealthy(m, p.probe(m))
		}(m)
	}
	wg.Wait()
}

func (p *Prober) probe(member string) bool {
	resp, err := p.client.Get("http://" + member + "/healthz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode >= 200 && resp.StatusCode < 300
}

// Stop ends the poll loop.
func (p *Prober) Stop() {
	p.once.Do(func() { close(p.stop) })
	p.wg.Wait()
}
