// Package daggen generates computation DAGs for pebbling workloads: the
// classic structures studied in the pebbling literature (pyramids, trees,
// grids) and the HPC kernels whose I/O complexity motivated red-blue
// pebbling (matrix multiplication, FFT butterflies, stencils), plus random
// layered DAGs for fuzzing.
package daggen

import (
	"fmt"
	"math/rand"

	"rbpebble/internal/dag"
)

// Chain returns a path DAG v0 -> v1 -> ... -> v(n-1).
func Chain(n int) *dag.DAG {
	g := dag.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(dag.NodeID(i), dag.NodeID(i+1))
	}
	return g
}

// Pyramid returns the classic pebbling pyramid of the given height: row 0
// has height+1 nodes, each subsequent row one fewer, and every interior
// node has exactly 2 inputs from the row below. A pyramid of height h has
// (h+1)(h+2)/2 nodes and a single sink (the apex). Height 0 is a single
// node.
func Pyramid(height int) *dag.DAG {
	if height < 0 {
		panic("daggen: negative pyramid height")
	}
	n := (height + 1) * (height + 2) / 2
	g := dag.New(n)
	// Rows bottom-up: row r (size height+1-r) starts at offset(r).
	offset := func(r int) int {
		// sum of sizes of rows 0..r-1: sizes height+1, height, ...
		return r*(height+1) - r*(r-1)/2
	}
	for r := 0; r < height; r++ {
		size := height + 1 - r
		for i := 0; i < size-1; i++ {
			lo := offset(r) + i
			up := offset(r+1) + i
			g.AddEdge(dag.NodeID(lo), dag.NodeID(up))
			g.AddEdge(dag.NodeID(lo+1), dag.NodeID(up))
		}
	}
	return g
}

// BinaryTree returns a complete in-tree of the given number of levels:
// 2^levels - 1 nodes, leaves are sources, the root is the unique sink, and
// every internal node has exactly its two children as inputs. Node 0 is the
// root (sink).
func BinaryTree(levels int) *dag.DAG {
	if levels < 1 {
		panic("daggen: BinaryTree needs >= 1 level")
	}
	n := (1 << levels) - 1
	g := dag.New(n)
	for i := 0; i < n; i++ {
		l, r := 2*i+1, 2*i+2
		if l < n {
			g.AddEdge(dag.NodeID(l), dag.NodeID(i))
		}
		if r < n {
			g.AddEdge(dag.NodeID(r), dag.NodeID(i))
		}
	}
	return g
}

// Grid returns a rows x cols 2D stencil DAG: node (i,j) depends on (i-1,j)
// and (i,j-1). Node (i,j) has ID i*cols+j. The single source is (0,0) and
// the single sink is (rows-1, cols-1). This models dynamic-programming
// tables and diamond dags.
func Grid(rows, cols int) *dag.DAG {
	if rows < 1 || cols < 1 {
		panic("daggen: Grid needs positive dimensions")
	}
	g := dag.New(rows * cols)
	id := func(i, j int) dag.NodeID { return dag.NodeID(i*cols + j) }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if i > 0 {
				g.AddEdge(id(i-1, j), id(i, j))
			}
			if j > 0 {
				g.AddEdge(id(i, j-1), id(i, j))
			}
		}
	}
	return g
}

// FFT returns the butterfly DAG of an n-point FFT where n = 2^logN:
// (logN+1) levels of n nodes each. Node at level l, position p has ID
// l*n + p; level 0 nodes are sources and level logN nodes are sinks. Each
// non-source node has exactly 2 inputs. This is the canonical DAG of
// Hong & Kung's original red-blue analysis.
func FFT(logN int) *dag.DAG {
	if logN < 1 {
		panic("daggen: FFT needs logN >= 1")
	}
	n := 1 << logN
	g := dag.New((logN + 1) * n)
	id := func(l, p int) dag.NodeID { return dag.NodeID(l*n + p) }
	for l := 0; l < logN; l++ {
		stride := 1 << l
		for p := 0; p < n; p++ {
			g.AddEdge(id(l, p), id(l+1, p))
			g.AddEdge(id(l, p^stride), id(l+1, p))
		}
	}
	return g
}

// MatMul returns the DAG of a classic three-loop k x k matrix
// multiplication C = A*B with a binary-tree reduction per output element.
// Inputs: 2k^2 source nodes (entries of A and B). For each output C[i][j]
// there are k product nodes a[i][l]*b[l][j] (in-degree 2) and a reduction
// tree summing them (in-degree 2), rooted at the sink C[i][j].
// Total nodes: 2k^2 + k^2*k products + k^2*(k-1) adds.
func MatMul(k int) *dag.DAG {
	if k < 1 {
		panic("daggen: MatMul needs k >= 1")
	}
	g := dag.New(0)
	a := make([][]dag.NodeID, k)
	b := make([][]dag.NodeID, k)
	for i := 0; i < k; i++ {
		a[i] = make([]dag.NodeID, k)
		b[i] = make([]dag.NodeID, k)
		for j := 0; j < k; j++ {
			a[i][j] = g.AddLabeledNode(fmt.Sprintf("A[%d][%d]", i, j))
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			b[i][j] = g.AddLabeledNode(fmt.Sprintf("B[%d][%d]", i, j))
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			// k products.
			prods := make([]dag.NodeID, k)
			for l := 0; l < k; l++ {
				p := g.AddLabeledNode(fmt.Sprintf("P[%d][%d][%d]", i, j, l))
				g.AddEdge(a[i][l], p)
				g.AddEdge(b[l][j], p)
				prods[l] = p
			}
			// Binary reduction tree.
			layer := prods
			for len(layer) > 1 {
				var next []dag.NodeID
				for x := 0; x+1 < len(layer); x += 2 {
					s := g.AddNode()
					g.AddEdge(layer[x], s)
					g.AddEdge(layer[x+1], s)
					next = append(next, s)
				}
				if len(layer)%2 == 1 {
					next = append(next, layer[len(layer)-1])
				}
				layer = next
			}
			g.SetLabel(layer[0], fmt.Sprintf("C[%d][%d]", i, j))
		}
	}
	return g
}

// RandomLayered returns a random layered DAG: `layers` layers of `width`
// nodes; each node in layer l>0 receives between 1 and maxIn inputs chosen
// uniformly from layer l-1. Deterministic for a given seed.
func RandomLayered(layers, width, maxIn int, seed int64) *dag.DAG {
	if layers < 1 || width < 1 || maxIn < 1 {
		panic("daggen: RandomLayered needs positive parameters")
	}
	if maxIn > width {
		maxIn = width
	}
	rng := rand.New(rand.NewSource(seed))
	g := dag.New(layers * width)
	id := func(l, p int) dag.NodeID { return dag.NodeID(l*width + p) }
	for l := 1; l < layers; l++ {
		for p := 0; p < width; p++ {
			din := 1 + rng.Intn(maxIn)
			perm := rng.Perm(width)
			for _, q := range perm[:din] {
				g.AddEdge(id(l-1, q), id(l, p))
			}
		}
	}
	return g
}

// RandomTriangular returns a random DAG on n nodes where each pair (i,j),
// i<j, is an edge independently with probability p. Guaranteed acyclic.
func RandomTriangular(n int, p float64, seed int64) *dag.DAG {
	rng := rand.New(rand.NewSource(seed))
	g := dag.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(dag.NodeID(i), dag.NodeID(j))
			}
		}
	}
	return g
}

// Stencil1D returns the DAG of t timesteps of a radius-1 one-dimensional
// stencil over w cells: cell (s,i) for step s>0 depends on (s-1,j) for
// j in {i-1,i,i+1} clipped to the boundary. Node (s,i) has ID s*w+i.
func Stencil1D(w, t int) *dag.DAG {
	if w < 1 || t < 1 {
		panic("daggen: Stencil1D needs positive dimensions")
	}
	g := dag.New(w * t)
	id := func(s, i int) dag.NodeID { return dag.NodeID(s*w + i) }
	for s := 1; s < t; s++ {
		for i := 0; i < w; i++ {
			for _, j := range []int{i - 1, i, i + 1} {
				if j >= 0 && j < w {
					g.AddEdge(id(s-1, j), id(s, i))
				}
			}
		}
	}
	return g
}

// InputGroups builds the "input group" pattern used throughout the paper:
// nGroups disjoint groups of groupSize source nodes, each feeding a single
// distinct target (sink). Returns the DAG, the groups (slices of source
// IDs), and the targets. The minimal feasible R is groupSize+1.
func InputGroups(nGroups, groupSize int) (*dag.DAG, [][]dag.NodeID, []dag.NodeID) {
	g := dag.New(0)
	groups := make([][]dag.NodeID, nGroups)
	targets := make([]dag.NodeID, nGroups)
	for i := 0; i < nGroups; i++ {
		groups[i] = g.AddNodes(groupSize)
		targets[i] = g.AddLabeledNode(fmt.Sprintf("t%d", i))
		for _, v := range groups[i] {
			g.AddEdge(v, targets[i])
		}
	}
	return g, groups, targets
}
