// Hamiltonian demonstrates the paper's Theorem 2 NP-hardness reduction:
// deciding whether a graph has a Hamiltonian path by looking at the
// optimal cost of a red-blue pebbling instance.
package main

import (
	"fmt"
	"log"

	"rbpebble"
)

func main() {
	instances := []struct {
		name string
		g    *rbpebble.UGraph
	}{
		{"path(6) — has a Hamiltonian path", pathGraph(6)},
		{"G(8, 0.35) — random", rbpebble.RandomUGraph(8, 0.35, 7)},
		{"star(6) — no Hamiltonian path", starGraph(6)},
	}

	for _, in := range instances {
		fmt.Printf("== %s (N=%d, M=%d)\n", in.name, in.g.N(), in.g.M())

		// Build the Theorem 2 pebbling instance: N sink targets, input
		// groups of N-1 contact nodes, edge contacts merged; R = N.
		red := rbpebble.NewHamPathReduction(in.g)
		fmt.Printf("   reduction DAG: %d nodes, R=%d, oneshot threshold=%d\n",
			red.G.N(), red.R, red.ThresholdOneshot())

		// Decide HP via the pebbling side: minimize the visit cost over
		// all permutations (Held-Karp on the non-adjacency penalty).
		minCost, bestPerm := minVisitCost(red)
		pebbleSaysHP := minCost == red.ThresholdOneshot()

		// Independent oracle.
		oracleHP, _ := rbpebble.SolveHamPath(in.g)

		fmt.Printf("   min pebbling cost=%d  → hasHP=%v (oracle: %v)\n",
			minCost, pebbleSaysHP, oracleHP)
		if pebbleSaysHP != oracleHP {
			log.Fatal("reduction disagrees with oracle — bug!")
		}

		// Replay the best permutation on the game engine to prove the
		// cost is actually achievable.
		_, res, err := red.Pebble(bestPerm, rbpebble.NewModel(rbpebble.Oneshot))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   engine-verified pebbling: %d transfers, %d steps, complete=%v\n\n",
			res.Cost.Transfers, res.Steps, res.Complete)
	}
	fmt.Println("Pebbling at the threshold cost is possible exactly when a")
	fmt.Println("Hamiltonian path exists — red-blue pebbling is NP-hard.")
}

// minVisitCost minimizes the oneshot pebbling cost over all group-visit
// permutations: cost = threshold + 2·(non-adjacent consecutive pairs).
func minVisitCost(red *rbpebble.HamPathReduction) (int, []int) {
	n := red.Source.N()
	start := make([]int64, n)
	trans := make([][]int64, n)
	for i := 0; i < n; i++ {
		trans[i] = make([]int64, n)
		for j := 0; j < n; j++ {
			if i != j && !red.Source.HasEdge(i, j) {
				trans[i][j] = 2
			}
		}
	}
	extra, perm := rbpebble.MinVisitOrder(start, trans)
	return red.ThresholdOneshot() + int(extra), perm
}

func pathGraph(n int) *rbpebble.UGraph {
	g := rbpebble.NewUGraph(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func starGraph(n int) *rbpebble.UGraph {
	g := rbpebble.NewUGraph(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return g
}
