package experiments

import (
	"testing"
	"time"
)

// TestAblationAnytime checks every row carries a coherent certificate
// and the control instance closes its gap. A short top deadline keeps
// the test fast; the certified-interval invariants hold at any scale.
func TestAblationAnytime(t *testing.T) {
	old := AnytimeDeadline
	AnytimeDeadline = 60 * time.Millisecond
	defer func() { AnytimeDeadline = old }()

	rep := AblationAnytime()
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rep.Rows))
	}
	const fft3R3Optimum = 31
	for i := 0; i < 3; i++ {
		lo := cellInt(t, rep, i, "lower")
		hi := cellInt(t, rep, i, "upper")
		if lo <= 0 || lo > fft3R3Optimum || hi < fft3R3Optimum {
			t.Fatalf("row %d: interval [%d, %d] is not a certificate for optimum %d", i, lo, hi, fft3R3Optimum)
		}
	}
	last := len(rep.Rows) - 1
	if cell(t, rep, last, "optimal") != "true" {
		t.Fatalf("control instance did not close: %v", rep.Rows[last])
	}
	if lo, hi := cellInt(t, rep, last, "lower"), cellInt(t, rep, last, "upper"); lo != hi {
		t.Fatalf("control interval [%d, %d] not closed", lo, hi)
	}
}
