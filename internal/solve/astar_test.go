package solve

import (
	"testing"

	"rbpebble/internal/daggen"
	"rbpebble/internal/pebble"
)

// TestAStarMatchesDijkstra is the admissibility regression guard: with
// the heuristic on, Exact must return costs identical to heuristic-off
// Dijkstra on small DAGs, across all four models and every convention
// combination. An inadmissible lower bound (or an unsafe dead-state or
// dead-pebble rule) would show up here as a cost mismatch.
func TestAStarMatchesDijkstra(t *testing.T) {
	instances := []struct {
		name string
		p    Problem
	}{}
	conventions := []pebble.Convention{
		{},
		{SourcesStartBlue: true},
		{SinksMustBeBlue: true},
		{SourcesStartBlue: true, SinksMustBeBlue: true},
	}
	for seed := int64(0); seed < 4; seed++ {
		g := daggen.RandomLayered(3, 3, 2, seed)
		r := pebble.MinFeasibleR(g)
		for _, kind := range pebble.AllKinds() {
			m := pebble.NewModel(kind)
			for _, conv := range conventions {
				instances = append(instances, struct {
					name string
					p    Problem
				}{
					name: "layered/" + m.String() + "/" + convName(conv),
					p:    Problem{G: g, Model: m, R: r, Convention: conv},
				})
			}
		}
	}
	extra := []struct {
		name string
		p    Problem
	}{
		{"pyramid3", Problem{G: daggen.Pyramid(3), Model: pebble.NewModel(pebble.Oneshot), R: 3}},
		{"grid33", Problem{G: daggen.Grid(3, 3), Model: pebble.NewModel(pebble.Base), R: 3}},
		{"fft2", Problem{G: daggen.FFT(2), Model: pebble.NewModel(pebble.CompCost), R: 3}},
	}
	instances = append(instances, extra...)

	for _, in := range instances {
		var sOff ExactStats
		dijkstra, err := Exact(in.p, ExactOptions{Heuristic: HeuristicOff, Stats: &sOff})
		if err != nil {
			t.Fatalf("%s: Dijkstra: %v", in.name, err)
		}
		d := dijkstra.Result.Cost.Scaled(in.p.Model)
		for _, tier := range []Heuristic{HeuristicLowerBound, HeuristicSPartition} {
			var sOn ExactStats
			astar, err := Exact(in.p, ExactOptions{Heuristic: tier, Stats: &sOn})
			if err != nil {
				t.Fatalf("%s: A* (%s): %v", in.name, tier, err)
			}
			a := astar.Result.Cost.Scaled(in.p.Model)
			if a != d {
				t.Errorf("%s: A* (%s) cost %d != Dijkstra cost %d (inadmissible heuristic or unsafe prune)",
					in.name, tier, a, d)
			}
			if sOn.Expanded > sOff.Expanded {
				// Not a strict invariant of A*, but with an admissible bound
				// and this tie-breaking a blow-up signals a regression.
				t.Logf("%s: A* (%s) expanded %d > Dijkstra %d", in.name, tier, sOn.Expanded, sOff.Expanded)
			}
		}
	}
}

// TestSPartitionAdmissibleStress hammers the S-partition tier (packing,
// pair constraints and the arrival term) against plain Dijkstra on
// random triangular DAGs at R = Δ+1 and Δ+2 — the regime where the
// full-event certificates are dense — across all models and
// conventions.
func TestSPartitionAdmissibleStress(t *testing.T) {
	conventions := []pebble.Convention{
		{},
		{SourcesStartBlue: true},
		{SinksMustBeBlue: true},
		{SourcesStartBlue: true, SinksMustBeBlue: true},
	}
	for seed := int64(0); seed < 20; seed++ {
		g := daggen.RandomTriangular(7, 0.35, seed)
		for _, dr := range []int{0, 1} {
			r := pebble.MinFeasibleR(g) + dr
			for _, conv := range conventions {
				for _, kind := range pebble.AllKinds() {
					p := Problem{G: g, Model: pebble.NewModel(kind), R: r, Convention: conv}
					a, err1 := Exact(p, ExactOptions{Heuristic: HeuristicSPartition})
					d, err2 := Exact(p, ExactOptions{Heuristic: HeuristicOff})
					if (err1 == nil) != (err2 == nil) {
						t.Fatalf("seed %d r %d %v %s: error mismatch %v vs %v",
							seed, r, kind, convName(conv), err1, err2)
					}
					if err1 != nil {
						continue
					}
					if a.Result.Cost.Scaled(p.Model) != d.Result.Cost.Scaled(p.Model) {
						t.Fatalf("seed %d r %d %v %s: s-partition %v != dijkstra %v",
							seed, r, kind, convName(conv), a.Result.Cost, d.Result.Cost)
					}
				}
			}
		}
	}
}

// TestSPartitionShrinksPyramidSearch guards the PR's headline bound
// improvement: on the pyramid at R = Δ+1 the S-partition tier must
// expand at least 3x fewer states than the single-certificate PR 1
// bound, at the identical proven optimum.
func TestSPartitionShrinksPyramidSearch(t *testing.T) {
	p := Problem{G: daggen.Pyramid(5), Model: pebble.NewModel(pebble.Oneshot), R: 3}
	var sLB, sSP ExactStats
	lb, err := Exact(p, ExactOptions{Heuristic: HeuristicLowerBound, Stats: &sLB})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := Exact(p, ExactOptions{Heuristic: HeuristicSPartition, Stats: &sSP})
	if err != nil {
		t.Fatal(err)
	}
	if lb.Result.Cost != sp.Result.Cost {
		t.Fatalf("cost mismatch: lb %v, s-partition %v", lb.Result.Cost, sp.Result.Cost)
	}
	if sSP.Expanded*3 > sLB.Expanded {
		t.Fatalf("s-partition expanded %d, want <= 1/3 of lower-bound's %d", sSP.Expanded, sLB.Expanded)
	}
}

// TestParallelMatchesSerial checks that hash-sharded parallel expansion
// proves the same optimal cost as the sequential search.
func TestParallelMatchesSerial(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := daggen.RandomLayered(3, 3, 2, seed)
		r := pebble.MinFeasibleR(g)
		for _, kind := range []pebble.ModelKind{pebble.Base, pebble.Oneshot, pebble.NoDel} {
			p := Problem{G: g, Model: pebble.NewModel(kind), R: r}
			serial, err := Exact(p, ExactOptions{})
			if err != nil {
				t.Fatalf("seed %d %v serial: %v", seed, kind, err)
			}
			for _, workers := range []int{2, 4} {
				par, err := Exact(p, ExactOptions{Parallel: workers})
				if err != nil {
					t.Fatalf("seed %d %v parallel(%d): %v", seed, kind, workers, err)
				}
				if par.Result.Cost.Scaled(p.Model) != serial.Result.Cost.Scaled(p.Model) {
					t.Errorf("seed %d %v parallel(%d): cost %v != serial %v",
						seed, kind, workers, par.Result.Cost, serial.Result.Cost)
				}
			}
		}
	}
}

// TestParallelStateLimit checks the budget error surfaces from the
// sharded search too.
func TestParallelStateLimit(t *testing.T) {
	g := daggen.Pyramid(3)
	_, err := Exact(Problem{G: g, Model: pebble.NewModel(pebble.Base), R: 3},
		ExactOptions{MaxStates: 5, Parallel: 2})
	if err == nil {
		t.Fatal("want ErrStateLimit")
	}
}

// TestExactStatsPopulated checks the stats out-parameter.
func TestExactStatsPopulated(t *testing.T) {
	var st ExactStats
	g := daggen.Pyramid(2)
	_, err := Exact(Problem{G: g, Model: pebble.NewModel(pebble.Oneshot), R: 3},
		ExactOptions{Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	if st.Expanded <= 0 || st.Pushed <= 0 || st.Distinct <= 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

func convName(c pebble.Convention) string {
	switch {
	case c.SourcesStartBlue && c.SinksMustBeBlue:
		return "srcBlue+sinkBlue"
	case c.SourcesStartBlue:
		return "srcBlue"
	case c.SinksMustBeBlue:
		return "sinkBlue"
	default:
		return "default"
	}
}
