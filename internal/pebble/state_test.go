package pebble

import (
	"errors"
	"testing"

	"rbpebble/internal/dag"
	"rbpebble/internal/daggen"
)

// diamond builds 0->2, 1->2, 2->3: two sources, one interior, one sink.
func diamond() *dag.DAG {
	g := dag.New(4)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	return g
}

func newState(t *testing.T, g *dag.DAG, kind ModelKind, r int) *State {
	t.Helper()
	st, err := NewState(g, NewModel(kind), r, Convention{})
	if err != nil {
		t.Fatalf("NewState: %v", err)
	}
	return st
}

func TestNewStateValidation(t *testing.T) {
	g := diamond()
	if _, err := NewState(g, NewModel(Base), 0, Convention{}); !errors.Is(err, ErrInvalidR) {
		t.Fatalf("R=0 error = %v", err)
	}
	if _, err := NewState(g, NewModel(Base), 2, Convention{}); !errors.Is(err, ErrInfeasibleR) {
		t.Fatalf("R=2 < Δ+1=3 error = %v", err)
	}
	if _, err := NewState(g, Model{Kind: CompCost, EpsDenom: 1}, 3, Convention{}); err == nil {
		t.Fatal("EpsDenom=1 accepted")
	}
	if _, err := NewState(g, Model{Kind: ModelKind(99)}, 3, Convention{}); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := NewState(g, NewModel(Base), 3, Convention{}); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
}

func TestComputeSourceAlwaysAllowed(t *testing.T) {
	st := newState(t, diamond(), Base, 3)
	if err := st.Apply(Move{Compute, 0}); err != nil {
		t.Fatalf("compute source: %v", err)
	}
	if !st.IsRed(0) || st.RedCount() != 1 {
		t.Fatal("source not red after compute")
	}
	if got := st.Cost(); got.Transfers != 0 || got.Computes != 1 {
		t.Fatalf("cost after compute = %v", got)
	}
}

func TestComputeRequiresRedInputs(t *testing.T) {
	st := newState(t, diamond(), Base, 3)
	err := st.Apply(Move{Compute, 2})
	if !errors.Is(err, ErrInputsNotRed) {
		t.Fatalf("compute without inputs: %v", err)
	}
	st.MustApply(Move{Compute, 0})
	err = st.Apply(Move{Compute, 2})
	if !errors.Is(err, ErrInputsNotRed) {
		t.Fatalf("compute with one input: %v", err)
	}
	st.MustApply(Move{Compute, 1})
	if err := st.Apply(Move{Compute, 2}); err != nil {
		t.Fatalf("compute with all inputs red: %v", err)
	}
}

func TestRedLimitEnforced(t *testing.T) {
	st := newState(t, diamond(), Base, 3)
	st.MustApply(Move{Compute, 0})
	st.MustApply(Move{Compute, 1})
	st.MustApply(Move{Compute, 2})
	// All 3 red pebbles used; computing sink must fail.
	if err := st.Apply(Move{Compute, 3}); !errors.Is(err, ErrRedLimit) {
		t.Fatalf("over-limit compute: %v", err)
	}
	// Free a pebble by deleting a source; sink computable now.
	st.MustApply(Move{Delete, 0})
	if err := st.Apply(Move{Compute, 3}); err != nil {
		t.Fatalf("compute after delete: %v", err)
	}
	if st.RedCount() != 3 {
		t.Fatalf("redCount = %d", st.RedCount())
	}
}

func TestLoadStoreCycle(t *testing.T) {
	st := newState(t, diamond(), Base, 3)
	// Load without blue pebble fails.
	if err := st.Apply(Move{Load, 0}); !errors.Is(err, ErrNotBlue) {
		t.Fatalf("load no-blue: %v", err)
	}
	// Store without red fails.
	if err := st.Apply(Move{Store, 0}); !errors.Is(err, ErrNotRed) {
		t.Fatalf("store no-red: %v", err)
	}
	st.MustApply(Move{Compute, 0})
	st.MustApply(Move{Store, 0})
	if !st.IsBlue(0) || st.IsRed(0) || st.RedCount() != 0 {
		t.Fatal("store did not swap red->blue")
	}
	st.MustApply(Move{Load, 0})
	if !st.IsRed(0) || st.IsBlue(0) || st.RedCount() != 1 {
		t.Fatal("load did not swap blue->red")
	}
	if c := st.Cost(); c.Transfers != 2 {
		t.Fatalf("transfers = %d, want 2", c.Transfers)
	}
}

func TestLoadRespectsRedLimit(t *testing.T) {
	st := newState(t, diamond(), Base, 3)
	st.MustApply(Move{Compute, 0})
	st.MustApply(Move{Compute, 1})
	st.MustApply(Move{Compute, 2})
	st.MustApply(Move{Store, 0})   // red={1,2}, blue={0}
	st.MustApply(Move{Compute, 3}) // input 2 is red; red={1,2,3} at limit
	if err := st.Apply(Move{Load, 0}); !errors.Is(err, ErrRedLimit) {
		t.Fatalf("load at red limit: %v", err)
	}
	st.MustApply(Move{Delete, 1})
	if err := st.Apply(Move{Load, 0}); err != nil {
		t.Fatalf("load after freeing a pebble: %v", err)
	}
}

func TestComputeReplacesBluePebble(t *testing.T) {
	st := newState(t, diamond(), Base, 3)
	st.MustApply(Move{Compute, 0})
	st.MustApply(Move{Store, 0})
	if !st.IsBlue(0) {
		t.Fatal("setup failed")
	}
	// Recompute node 0 (a source): the blue pebble must be replaced, not
	// duplicated.
	st.MustApply(Move{Compute, 0})
	if st.IsBlue(0) || !st.IsRed(0) {
		t.Fatal("compute did not replace blue pebble")
	}
}

func TestComputeAlreadyRedIsIllegal(t *testing.T) {
	st := newState(t, diamond(), Base, 3)
	st.MustApply(Move{Compute, 0})
	if err := st.Apply(Move{Compute, 0}); !errors.Is(err, ErrAlreadyRed) {
		t.Fatalf("recompute red node: %v", err)
	}
}

func TestOneshotForbidsRecompute(t *testing.T) {
	st := newState(t, diamond(), Oneshot, 3)
	st.MustApply(Move{Compute, 0})
	st.MustApply(Move{Delete, 0})
	if err := st.Apply(Move{Compute, 0}); !errors.Is(err, ErrRecompute) {
		t.Fatalf("oneshot recompute: %v", err)
	}
	// But loading a stored copy is fine.
	st.MustApply(Move{Compute, 1})
	st.MustApply(Move{Store, 1})
	st.MustApply(Move{Load, 1})
	if !st.IsRed(1) {
		t.Fatal("load failed in oneshot")
	}
}

func TestBaseAllowsRecompute(t *testing.T) {
	st := newState(t, diamond(), Base, 3)
	st.MustApply(Move{Compute, 0})
	st.MustApply(Move{Delete, 0})
	if err := st.Apply(Move{Compute, 0}); err != nil {
		t.Fatalf("base recompute: %v", err)
	}
}

func TestNoDelBansDelete(t *testing.T) {
	st := newState(t, diamond(), NoDel, 3)
	st.MustApply(Move{Compute, 0})
	if err := st.Apply(Move{Delete, 0}); !errors.Is(err, ErrDeleteBanned) {
		t.Fatalf("nodel delete: %v", err)
	}
	// Store is the only way to free a red pebble.
	st.MustApply(Move{Store, 0})
	if st.RedCount() != 0 {
		t.Fatal("store did not free pebble")
	}
}

func TestNoDelAllowsRecomputeOverBlue(t *testing.T) {
	// Paper §4: "Step 3 still allows us to replace a blue pebble by a red
	// one if all inputs contain a red pebble."
	st := newState(t, diamond(), NoDel, 3)
	st.MustApply(Move{Compute, 0})
	st.MustApply(Move{Store, 0})
	st.MustApply(Move{Compute, 0})
	if !st.IsRed(0) || st.IsBlue(0) {
		t.Fatal("nodel recompute over blue failed")
	}
}

func TestDeleteRequiresPebble(t *testing.T) {
	st := newState(t, diamond(), Base, 3)
	if err := st.Apply(Move{Delete, 0}); !errors.Is(err, ErrNoPebble) {
		t.Fatalf("delete empty: %v", err)
	}
	// Delete works on blue pebbles too.
	st.MustApply(Move{Compute, 0})
	st.MustApply(Move{Store, 0})
	st.MustApply(Move{Delete, 0})
	if st.HasPebble(0) {
		t.Fatal("delete left a pebble")
	}
}

func TestCompCostCharges(t *testing.T) {
	m := Model{Kind: CompCost, EpsDenom: 100}
	st, err := NewState(diamond(), m, 3, Convention{})
	if err != nil {
		t.Fatal(err)
	}
	st.MustApply(Move{Compute, 0})
	st.MustApply(Move{Compute, 1})
	st.MustApply(Move{Compute, 2})
	st.MustApply(Move{Store, 0})
	c := st.Cost()
	if c.Computes != 3 || c.Transfers != 1 {
		t.Fatalf("cost = %v", c)
	}
	if got := c.Value(m); got != 1+3*0.01 {
		t.Fatalf("Value = %v", got)
	}
	if got := c.Scaled(m); got != 103 {
		t.Fatalf("Scaled = %v", got)
	}
	// Non-compcost models do not charge computes.
	base := NewModel(Base)
	if c.Value(base) != 1 || c.Scaled(base) != 1 {
		t.Fatal("base model charged computes")
	}
}

func TestCostOrdering(t *testing.T) {
	m := Model{Kind: CompCost, EpsDenom: 10}
	a := Cost{Transfers: 1, Computes: 0}
	b := Cost{Transfers: 0, Computes: 9}
	if !b.Less(a, m) {
		t.Fatal("9ε should be < 1 for ε=1/10")
	}
	c := Cost{Transfers: 0, Computes: 10}
	if c.Less(a, m) || a.Less(c, m) {
		t.Fatal("10ε should equal 1")
	}
	if a.Add(b) != (Cost{Transfers: 1, Computes: 9}) {
		t.Fatal("Add wrong")
	}
}

func TestNodeOutOfRange(t *testing.T) {
	st := newState(t, diamond(), Base, 3)
	if err := st.Apply(Move{Compute, 99}); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("out of range: %v", err)
	}
	if err := st.Apply(Move{Compute, -1}); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("negative: %v", err)
	}
}

func TestApplyLeavesStateUnchangedOnError(t *testing.T) {
	st := newState(t, diamond(), Base, 3)
	st.MustApply(Move{Compute, 0})
	before := st.Key()
	costBefore := st.Cost()
	if err := st.Apply(Move{Compute, 2}); err == nil {
		t.Fatal("expected error")
	}
	if st.Key() != before || st.Cost() != costBefore || st.Steps() != 1 {
		t.Fatal("failed Apply mutated state")
	}
}

func TestComplete(t *testing.T) {
	g := diamond()
	st := newState(t, g, Base, 3)
	if st.Complete() {
		t.Fatal("empty state complete")
	}
	st.MustApply(Move{Compute, 0})
	st.MustApply(Move{Compute, 1})
	st.MustApply(Move{Compute, 2})
	st.MustApply(Move{Delete, 0})
	st.MustApply(Move{Compute, 3})
	if !st.Complete() {
		t.Fatal("sink red but not complete")
	}
	// Blue on the sink also completes.
	st.MustApply(Move{Store, 3})
	if !st.Complete() {
		t.Fatal("sink blue but not complete")
	}
	st.MustApply(Move{Delete, 3})
	if st.Complete() {
		t.Fatal("deleted sink still complete")
	}
}

func TestConventionSinksMustBeBlue(t *testing.T) {
	st, err := NewState(diamond(), NewModel(Base), 3, Convention{SinksMustBeBlue: true})
	if err != nil {
		t.Fatal(err)
	}
	st.MustApply(Move{Compute, 0})
	st.MustApply(Move{Compute, 1})
	st.MustApply(Move{Compute, 2})
	st.MustApply(Move{Delete, 0})
	st.MustApply(Move{Compute, 3})
	if st.Complete() {
		t.Fatal("red sink counted complete under SinksMustBeBlue")
	}
	st.MustApply(Move{Store, 3})
	if !st.Complete() {
		t.Fatal("blue sink not complete")
	}
}

func TestConventionSourcesStartBlue(t *testing.T) {
	st, err := NewState(diamond(), NewModel(Base), 3, Convention{SourcesStartBlue: true})
	if err != nil {
		t.Fatal(err)
	}
	if !st.IsBlue(0) || !st.IsBlue(1) {
		t.Fatal("sources not blue initially")
	}
	if err := st.Apply(Move{Compute, 0}); !errors.Is(err, ErrSourceCompute) {
		t.Fatalf("compute source under SourcesStartBlue: %v", err)
	}
	st.MustApply(Move{Load, 0})
	st.MustApply(Move{Load, 1})
	st.MustApply(Move{Compute, 2})
	if st.Cost().Transfers != 2 {
		t.Fatalf("transfers = %d", st.Cost().Transfers)
	}
}

func TestCloneIndependence(t *testing.T) {
	st := newState(t, diamond(), Oneshot, 3)
	st.MustApply(Move{Compute, 0})
	c := st.Clone()
	c.MustApply(Move{Compute, 1})
	if st.IsRed(1) {
		t.Fatal("clone mutation leaked")
	}
	if st.Key() == c.Key() {
		t.Fatal("diverged states share key")
	}
	if c.Steps() != 2 || st.Steps() != 1 {
		t.Fatal("step counts wrong after clone")
	}
}

func TestKeyTracksComputedSet(t *testing.T) {
	// Two states with equal pebbles but different computed sets must have
	// different keys (matters for oneshot solvers).
	a := newState(t, diamond(), Oneshot, 3)
	b := newState(t, diamond(), Oneshot, 3)
	a.MustApply(Move{Compute, 0})
	a.MustApply(Move{Delete, 0})
	if a.Key() == b.Key() {
		t.Fatal("computed set not part of key")
	}
}

func TestMinFeasibleR(t *testing.T) {
	if r := MinFeasibleR(diamond()); r != 3 {
		t.Fatalf("MinFeasibleR(diamond) = %d", r)
	}
	if r := MinFeasibleR(dag.New(5)); r != 1 {
		t.Fatalf("MinFeasibleR(edgeless) = %d", r)
	}
	if r := MinFeasibleR(daggen.Pyramid(4)); r != 3 {
		t.Fatalf("MinFeasibleR(pyramid) = %d", r)
	}
}

func TestCostUpperBound(t *testing.T) {
	g := diamond()
	ub := CostUpperBound(g, NewModel(Base))
	if ub.Transfers != (2*2+1)*4 {
		t.Fatalf("upper bound = %v", ub)
	}
}

func TestStepUpperBoundFactor(t *testing.T) {
	if StepUpperBoundFactor(NewModel(Base)) != 0 {
		t.Fatal("base should be unbounded")
	}
	if StepUpperBoundFactor(NewModel(Oneshot)) <= 0 {
		t.Fatal("oneshot should be bounded")
	}
	if f := StepUpperBoundFactor(Model{Kind: CompCost, EpsDenom: 100}); f <= 0 {
		t.Fatal("compcost should be bounded")
	}
}

func TestModelStrings(t *testing.T) {
	for _, k := range AllKinds() {
		if k.String() == "" {
			t.Fatal("empty model name")
		}
	}
	m := Model{Kind: CompCost, EpsDenom: 50}
	if m.String() != "compcost(ε=1/50)" {
		t.Fatalf("String = %q", m.String())
	}
	if NewModel(Oneshot).String() != "oneshot" {
		t.Fatal("oneshot String wrong")
	}
	if MoveKind(42).String() == "" || ModelKind(42).String() == "" {
		t.Fatal("unknown kinds should still render")
	}
}

func TestTable1Rows(t *testing.T) {
	for _, k := range AllKinds() {
		row := Table1Row(NewModel(k))
		if row.Load != "1" || row.Store != "1" || row.Described == "" {
			t.Fatalf("Table1Row(%s) = %+v", k, row)
		}
	}
	if Table1Row(NewModel(NoDel)).Delete != "∞" {
		t.Fatal("nodel delete should be ∞")
	}
	if Table1Row(NewModel(Oneshot)).Compute != "0,∞,∞,..." {
		t.Fatal("oneshot compute row wrong")
	}
}

func TestPackedRoundTrip(t *testing.T) {
	g := diamond()
	st, err := NewState(g, NewModel(Oneshot), 3, Convention{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Move{
		{Kind: Compute, Node: 0},
		{Kind: Compute, Node: 1},
		{Kind: Store, Node: 0},
	} {
		st.MustApply(m)
	}
	key := st.AppendPacked(nil)
	if len(key) != st.PackedWords() {
		t.Fatalf("key len %d != PackedWords %d", len(key), st.PackedWords())
	}
	fresh, err := NewState(g, NewModel(Oneshot), 3, Convention{})
	if err != nil {
		t.Fatal(err)
	}
	fresh.RestorePacked(key)
	for v := 0; v < g.N(); v++ {
		n := dag.NodeID(v)
		if fresh.IsRed(n) != st.IsRed(n) || fresh.IsBlue(n) != st.IsBlue(n) ||
			fresh.WasComputed(n) != st.WasComputed(n) {
			t.Fatalf("node %d differs after RestorePacked", v)
		}
	}
	if fresh.RedCount() != st.RedCount() {
		t.Fatalf("RedCount %d != %d", fresh.RedCount(), st.RedCount())
	}
}

func TestApplyForUndoRoundTrip(t *testing.T) {
	g := diamond()
	for _, kind := range []ModelKind{Base, Oneshot, NoDel, CompCost} {
		st, err := NewState(g, NewModel(kind), 3, Convention{})
		if err != nil {
			t.Fatal(err)
		}
		// Drive into a mid-game position.
		st.MustApply(Move{Kind: Compute, Node: 0})
		st.MustApply(Move{Kind: Compute, Node: 1})
		st.MustApply(Move{Kind: Store, Node: 1})
		before := st.AppendPacked(nil)
		beforeCost, beforeSteps, beforeRed := st.Cost(), st.Steps(), st.RedCount()
		// Apply and undo every currently legal move; the state must be
		// byte-identical afterwards.
		for v := 0; v < g.N(); v++ {
			for _, mk := range []MoveKind{Load, Store, Compute, Delete} {
				m := Move{Kind: mk, Node: dag.NodeID(v)}
				if !st.CanApply(m) {
					if st.Check(m) == nil {
						t.Fatalf("%v %v: CanApply false but Check nil", kind, m)
					}
					continue
				}
				if st.Check(m) != nil {
					t.Fatalf("%v %v: CanApply true but Check errors", kind, m)
				}
				u, err := st.ApplyForUndo(m)
				if err != nil {
					t.Fatalf("%v %v: %v", kind, m, err)
				}
				st.Undo(u)
				after := st.AppendPacked(nil)
				for i := range before {
					if before[i] != after[i] {
						t.Fatalf("%v %v: packed state differs after undo", kind, m)
					}
				}
				if st.Cost() != beforeCost || st.Steps() != beforeSteps || st.RedCount() != beforeRed {
					t.Fatalf("%v %v: cost/steps/red differ after undo", kind, m)
				}
			}
		}
	}
}
