package reduce

import (
	"sort"

	"rbpebble/internal/dag"
	"rbpebble/internal/gadgets"
	"rbpebble/internal/pebble"
	"rbpebble/internal/sched"
)

// HamPathH2C is the Appendix A.2 adaptation of the Theorem 2 reduction
// for the base and compcost models: every contact node is protected by a
// private H2C gadget, so sources can no longer be recomputed for free
// and the oneshot cost structure (which decides Hamiltonian Path)
// reapplies, shifted by the gadgets' constant derivation cost.
type HamPathH2C struct {
	*HamPath
	H2C *gadgets.H2CSeparate
}

// NewHamPathH2C builds the protected reduction. R stays the source
// graph's N (each starter then needs all R pebbles).
func NewHamPathH2C(src *HamPath) *HamPathH2C {
	// Protect every contact (all current sources of the reduction DAG).
	contacts := src.G.Sources()
	h := gadgets.AttachH2CSeparate(src.G, contacts, src.R)
	return &HamPathH2C{HamPath: src, H2C: h}
}

// NumContacts returns the number of protected contact nodes.
func (r *HamPathH2C) NumContacts() int {
	n := r.Source.N()
	return n*(n-1) - r.Source.M()
}

// AdjacentPairs counts consecutive pairs of the permutation that are
// adjacent in the source graph — the quantity a pebbling of this
// instance optimizes. A Hamiltonian path realizes the maximum N-1.
func (r *HamPathH2C) AdjacentPairs(perm []int) int {
	adj := 0
	for i := 1; i < len(perm); i++ {
		if r.Source.HasEdge(perm[i-1], perm[i]) {
			adj++
		}
	}
	return adj
}

// MinDerivationCost lower-bounds the gadget overhead: each protected
// contact costs at least MinTransferCost transfers to derive, once.
func (r *HamPathH2C) MinDerivationCost() int {
	return gadgets.MinTransferCost * r.NumContacts()
}

// OrderH2C expands a vertex permutation into a compute order realizing
// the efficient strategy: a derivation phase computes every contact
// through its gadget first (each derivation needs all R pebbles, so
// nothing else survives it), then a visit phase computes the targets in
// permutation order, re-loading each group's contacts from slow memory.
// Hoisting the derivations is what lets consecutive adjacent visits keep
// their shared contact in fast memory — interleaving derivations with
// visits would flush it and destroy the adjacency saving.
func (r *HamPathH2C) OrderH2C(perm []int) []dag.NodeID {
	placed := make(map[dag.NodeID]bool)
	var order []dag.NodeID
	add := func(v dag.NodeID) {
		if !placed[v] {
			placed[v] = true
			order = append(order, v)
		}
	}
	// Phase 1: derive every contact, gadget by gadget.
	var contacts []dag.NodeID
	n := r.Source.N()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b && !placed[r.Contact[a][b]] {
				placed[r.Contact[a][b]] = true
				contacts = append(contacts, r.Contact[a][b])
			}
		}
	}
	for v := range placed {
		delete(placed, v)
	}
	sort.Slice(contacts, func(i, j int) bool { return contacts[i] < contacts[j] })
	for _, c := range contacts {
		for _, u := range r.H2C.Order(c) {
			add(u)
		}
		add(c)
	}
	// Phase 2: visit the groups (contacts are loaded by the scheduler).
	for _, a := range perm {
		add(r.Targets[a])
	}
	return order
}

// PebbleBase executes the permutation in the base model (the scheduler's
// no-recompute pebblings are base-legal) and returns the verified
// result.
func (r *HamPathH2C) PebbleBase(perm []int) (*pebble.Trace, pebble.Result, error) {
	return sched.Execute(r.G, pebble.NewModel(pebble.Base), r.R, pebble.Convention{},
		r.OrderH2C(perm), sched.Options{Policy: sched.Belady})
}
