package solve

import (
	"rbpebble/internal/bitset"
	"rbpebble/internal/dag"
	"rbpebble/internal/pebble"
)

// S-partition packing term (HeuristicSPartition / HeuristicAuto).
//
// The single-certificate capacity bound (capacityTerm) picks the one
// pending compute event whose live values overflow its spare red slots
// the most and charges 2 transfers per overflow value. Hong and Kung's
// S-partition argument says more: the remaining computation decomposes
// into segments, and EVERY segment whose dominator set overflows the
// red capacity forces its own transfers. This file realizes that as a
// packing over the precomputed capacity certificates: certificates
// whose live shells are disjoint constrain disjoint sets of values, so
// their overflow charges add.
//
// Soundness of the summation (the disjoint-charging argument): let X be
// the set of nodes that receive at least one future Store and one
// future Load in some fixed optimal completion from the current state.
// For a pending event w with live shell L(w) (values that must exist
// before w's compute and be consumed after it), at w's compute moment
// at most slots(w) = R - indeg(w) - 1 of those values can sit in spare
// red slots and the currently-blue ones can sit blue for free; every
// other live value must cross to blue and back, so
//
//	|X ∩ L(w)|  >=  |L(w)| - slots(w) - blue(L(w)).
//
// Process certificates greedily, keeping a set C of already-charged
// values; for the next certificate count only eligible values L'(w) =
// L(w) \ C. Charged values already in C could at worst occupy w's spare
// red slots or blue positions — which only makes MORE eligible values
// overflow — so
//
//	|X ∩ (L(w) \ C)|  >=  |L'(w)| - slots(w) - blue(L'(w))
//
// still holds. After counting, all of L'(w) joins C, so the regions
// L'(w_1), L'(w_2), ... are pairwise disjoint subsets of X and the
// per-certificate overflows sum to a lower bound on |X|. Each node of X
// pays 2 transfers on distinct nodes, disjoint from the forced-load
// term (those nodes are currently blue; live overflow values are not)
// and from the forced-store term (shell values have successors, sinks
// do not). Total: 2·scale·Σ overflow — and since the largest-overflow
// certificate is processed first, the packing never falls below the
// single-certificate bound.

// pairConstraint is the second certificate family of the S-partition
// tier, aimed at the R = Δ+1 regime where every full-indegree compute
// event pins the entire red set. It is precomputed statically for a
// value u feeding two full events v1, v2 (indeg = R-1, both initially
// needed):
//
// In oneshot, consider any completion that still has to compute v1 and
// v2, say v1 first. At v1's moment the red set is exactly
// preds(v1) ∪ {v1}, so no value of b12 = preds(v2) \ (preds(v1) ∪ {v1})
// is red then; each must arrive at v2's moment by a later load or
// compute. Three cases, assuming (statically checked) every b-value has
// full indegree and is not a successor of u:
//
//   - some b-value is computed between the two events: its event's red
//     set excludes u, so u is evicted while its value is still needed
//     at v2 — u pays a future Store and a future Load (recompute is
//     banned in oneshot);
//   - some b-value arrives by load only: its value must already sit
//     blue, and since no b-value is currently blue (checked
//     dynamically), both its Store and its Load lie in the future;
//   - likewise when a b-value was computed before v1's moment: it
//     cannot be red at v1 (the red set is full), so it crosses through
//     blue — future Store + Load.
//
// Either way ≥2 future transfers land on cset = {u} ∪ b12 ∪ b21 (the
// b21 set covers the opposite order), and none of them coincides with a
// Load counted by the forced-load term: a Load pebble is consumed by
// the move (blue does not persist), so even a currently-blue u that is
// evicted between the two events needs a fresh future Store + Load
// beyond its counted first Load. The constraint is skipped when any
// b-value is currently blue (its Load is then the counted one and its
// Store lies in the past, so no extra transfer is guaranteed). Charged
// values have successors, so they are never sinks and stay disjoint
// from the forced-store term; disjointness among summed certificates is
// enforced by the shared charged set in spartitionTerm.
type pairConstraint struct {
	u      int32
	v1, v2 int32
	cset   []int32 // u first, then the b12 ∪ b21 values
}

// maxPairs caps the precomputed pair-constraint pool.
const maxPairs = 512

// buildPairConstraints precomputes the pair certificates (S-partition
// tier, oneshot, small graphs — called from buildCapCandidates under
// the same gates). needed0 is the initially-needed set.
func (lb *lowerBound) buildPairConstraints(needed0 *bitset.Set) {
	g := lb.p.G
	full := func(v dag.NodeID) bool { return g.InDegree(v) == lb.p.R-1 }
	for ui := 0; ui < g.N(); ui++ {
		u := dag.NodeID(ui)
		succs := g.Succs(u)
		for i := 0; i < len(succs); i++ {
			v1 := succs[i]
			if !needed0.Get(int(v1)) || !full(v1) {
				continue
			}
			for j := i + 1; j < len(succs); j++ {
				v2 := succs[j]
				if !needed0.Get(int(v2)) || !full(v2) {
					continue
				}
				// b-set for the order va-before-vb: preds(vb) outside
				// N[va]. Every b-value must itself be a full event that
				// does not consume u, or the eviction case breaks.
				addB := func(cset []int32, va, vb dag.NodeID) ([]int32, bool) {
					n := 0
					for _, x := range g.Preds(vb) {
						if x == u || x == va || hasPred(g, va, x) {
							continue
						}
						if !full(x) || hasPred(g, x, u) {
							return cset, false
						}
						n++
						cset = appendUnique(cset, int32(x))
					}
					return cset, n > 0
				}
				cset := []int32{int32(ui)}
				var ok bool
				if cset, ok = addB(cset, v1, v2); !ok {
					continue
				}
				if cset, ok = addB(cset, v2, v1); !ok {
					continue
				}
				lb.pairs = append(lb.pairs, pairConstraint{
					u: int32(ui), v1: int32(v1), v2: int32(v2), cset: cset,
				})
				if len(lb.pairs) >= maxPairs {
					return
				}
			}
		}
	}
}

// Arrival term. At a full event (a compute of a node with
// indeg = R-1), the red set is pinned to exactly N[v] = preds(v) ∪ {v}.
// Order the pending full events by their future compute times
// v_1, ..., v_k (other moves, and computes of non-needed full events,
// may fall in between). For i >= 2, no node of N[v_i] was red at the
// moment of the full event immediately preceding v_i unless it lies in
// that event's neighborhood, so at least R - maxIn(v_i) nodes must
// freshly ARRIVE — by a Compute or a Load — in the half-open interval
// ending at v_i's moment, where maxIn(v_i) is the largest static
// overlap |N[v_i] ∩ N[u]| over all full events u (a superset of the
// pending ones, so the allowance is conservative). The intervals are
// disjoint and the arriving nodes per event are distinct, so the
// arrival moves are all distinct. Summing and dropping the largest
// contribution (for the unknown first event, whose reds are
// unconstrained) gives A total arrivals. In oneshot each node computes
// at most once, so Computes cover at most U = #uncomputed nodes among
// the event neighborhoods; the remaining A - U arrivals are Loads, and
// each Load consumes a blue pebble, of which only B = #currently-blue
// neighborhood nodes exist without a future Store. Hence
//
//	future Loads  >= A - U
//	future Stores >= A - U - B.
//
// The term is admissible on its own but counts the same Loads the
// forced-load and packing terms count, so estimate combines it with
// them by max, never by sum.

// buildArrivalTables precomputes the full-event marks and their static
// neighborhood overlaps (oneshot, small graphs).
func (lb *lowerBound) buildArrivalTables() {
	g := lb.p.G
	n := g.N()
	lb.fullMaxIn = make([]int32, n)
	var events []dag.NodeID
	for v := 0; v < n; v++ {
		if g.InDegree(dag.NodeID(v)) == lb.p.R-1 {
			lb.fullMaxIn[v] = 0
			events = append(events, dag.NodeID(v))
		} else {
			lb.fullMaxIn[v] = -1
		}
	}
	if len(events) < 2 {
		lb.fullMaxIn = nil
		return
	}
	inN := make([]bool, n)
	for _, v := range events {
		for _, p := range g.Preds(v) {
			inN[p] = true
		}
		inN[v] = true
		for _, u := range events {
			if u == v {
				continue
			}
			ov := int32(0)
			if inN[u] {
				ov++
			}
			for _, p := range g.Preds(u) {
				if inN[p] {
					ov++
				}
			}
			if ov > lb.fullMaxIn[v] {
				lb.fullMaxIn[v] = ov
			}
		}
		for _, p := range g.Preds(v) {
			inN[p] = false
		}
		inN[v] = false
	}
	lb.arrUnion = bitset.New(n)
}

// arrivalTerm returns the arrival lower bound on remaining transfers
// from st in scaled cost units (0 when the tables are not built).
func (lb *lowerBound) arrivalTerm(st *pebble.State) int64 {
	if lb.fullMaxIn == nil {
		return 0
	}
	g := lb.p.G
	sum, maxContrib, events := 0, 0, 0
	lb.arrUnion.Reset()
	lb.mustCompute.ForEach(func(vi int) bool {
		mi := lb.fullMaxIn[vi]
		if mi < 0 {
			return true
		}
		events++
		if c := lb.p.R - int(mi); c > 0 {
			sum += c
			if c > maxContrib {
				maxContrib = c
			}
		}
		lb.arrUnion.Set(vi)
		for _, p := range g.Preds(dag.NodeID(vi)) {
			lb.arrUnion.Set(int(p))
		}
		return true
	})
	if events < 2 {
		return 0
	}
	a := sum - maxContrib
	uncomputed, blue := 0, 0
	lb.arrUnion.ForEach(func(x int) bool {
		v := dag.NodeID(x)
		if !st.WasComputed(v) {
			uncomputed++
		}
		if st.IsBlue(v) {
			blue++
		}
		return true
	})
	loads := a - uncomputed
	if loads <= 0 {
		return 0
	}
	stores := loads - blue
	if stores < 0 {
		stores = 0
	}
	return lb.scale * int64(loads+stores)
}

// hasPred reports whether p is a direct predecessor of v.
func hasPred(g *dag.DAG, v, p dag.NodeID) bool {
	for _, x := range g.Preds(v) {
		if x == p {
			return true
		}
	}
	return false
}

func appendUnique(s []int32, x int32) []int32 {
	for _, y := range s {
		if y == x {
			return s
		}
	}
	return append(s, x)
}

// spartitionTerm returns the packed certificate charge for st in
// scaled cost units: pair constraints first (2 transfers each), then
// the capacity certificates on the residual uncharged values.
// Allocation-free: the order/overflow slices and the charged set are
// reused scratch on the lowerBound.
func (lb *lowerBound) spartitionTerm(st *pebble.State) int64 {
	if len(lb.cands) == 0 && len(lb.pairs) == 0 {
		return 0
	}
	lb.charged.Reset()
	total := 0
	for pi := range lb.pairs {
		pc := &lb.pairs[pi]
		if !lb.mustCompute.Get(int(pc.v1)) || !lb.mustCompute.Get(int(pc.v2)) {
			continue // an event is gone: the separation argument is void
		}
		ok := true
		for ci, x := range pc.cset {
			if lb.charged.Get(int(x)) || (ci > 0 && st.IsBlue(dag.NodeID(x))) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		total += 2
		for _, x := range pc.cset {
			lb.charged.Set(int(x))
		}
	}
	// Disjoint charging of the capacity certificates on top of the pair
	// charges, processed in their static score order (the precompute
	// sorts by overflow potential, so the strongest shells charge
	// first): count each certificate over values not yet charged, add
	// its residual overflow, and charge its whole eligible live shell.
	for ci := range lb.cands {
		cd := &lb.cands[ci]
		if !lb.mustCompute.Get(int(cd.w)) {
			continue // event already computed (or not needed): it is gone
		}
		fl, curBlue := 0, 0
		for i := range cd.shell {
			cu := &cd.shell[i]
			if lb.charged.Get(int(cu.u)) || !lb.liveUse(st, cu) {
				continue
			}
			fl++
			if st.IsBlue(dag.NodeID(cu.u)) {
				curBlue++
			}
		}
		if b := fl - cd.slots - curBlue; b > 0 {
			total += 2 * b
			for i := range cd.shell {
				cu := &cd.shell[i]
				if !lb.charged.Get(int(cu.u)) && lb.liveUse(st, cu) {
					lb.charged.Set(int(cu.u))
				}
			}
		}
	}
	return lb.scale * int64(total)
}
