// Command rbtrace inspects a pebbling trace against its DAG: it
// validates every move, prints cost and occupancy statistics, renders an
// ASCII timeline, and can export a per-move CSV for plotting.
//
// Usage:
//
//	rbgen -kind pyramid -a 5 -o pyr.dag
//	rbpebble -graph pyr.dag -solver exact -trace opt.trace
//	rbtrace -graph pyr.dag -trace opt.trace
//	rbtrace -graph pyr.dag -trace opt.trace -timeline 20
//	rbtrace -graph pyr.dag -trace opt.trace -csv profile.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"rbpebble/internal/analysis"
	"rbpebble/internal/dag"
	"rbpebble/internal/pebble"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "DAG file (text format)")
		tracePath = flag.String("trace", "", "trace file (written by rbpebble -trace)")
		timeline  = flag.Int("timeline", 0, "render an ASCII timeline with this many buckets")
		csvPath   = flag.String("csv", "", "write the per-move profile as CSV to this file")
	)
	flag.Parse()
	if *graphPath == "" || *tracePath == "" {
		fmt.Fprintln(os.Stderr, "rbtrace: need -graph and -trace")
		flag.Usage()
		os.Exit(2)
	}

	gf, err := os.Open(*graphPath)
	if err != nil {
		fatal(err)
	}
	g, err := dag.ReadText(gf)
	gf.Close()
	if err != nil {
		fatal(err)
	}
	tf, err := os.Open(*tracePath)
	if err != nil {
		fatal(err)
	}
	tr, err := pebble.ReadTrace(tf)
	tf.Close()
	if err != nil {
		fatal(err)
	}

	prof, err := analysis.NewProfile(g, tr)
	if err != nil {
		fatal(err)
	}
	fmt.Print(prof.Summary())
	if *timeline > 0 {
		fmt.Println()
		if err := prof.Timeline(os.Stdout, *timeline); err != nil {
			fatal(err)
		}
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := prof.WriteCSV(f); err != nil {
			fatal(err)
		}
		fmt.Printf("csv written to %s\n", *csvPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rbtrace:", err)
	os.Exit(1)
}
