package anytime

import (
	"context"
	"sync"
	"testing"
	"time"

	"rbpebble/internal/daggen"
	"rbpebble/internal/pebble"
	"rbpebble/internal/solve"
)

// TestDeadlineFFT3 is the acceptance scenario: a 100ms deadline on
// fft(3) R=3 (a ~3s exact solve) must yield a replay-valid trace, a
// nonzero certified lower bound, and a coherent interval.
func TestDeadlineFFT3(t *testing.T) {
	p := solve.Problem{G: daggen.FFT(3), Model: pebble.NewModel(pebble.Oneshot), R: 3}
	var mu sync.Mutex
	var snaps []Snapshot
	res, err := Solve(context.Background(), p, Options{
		Budget: 100 * time.Millisecond,
		OnProgress: func(s Snapshot) {
			mu.Lock()
			snaps = append(snaps, s)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solution.Trace == nil {
		t.Fatal("no incumbent trace")
	}
	// Replay the trace independently: the certificate must be real.
	rr, rerr := res.Solution.Trace.Run(p.G)
	if rerr != nil {
		t.Fatalf("incumbent trace does not replay: %v", rerr)
	}
	if got := rr.Cost.Scaled(p.Model); got != res.UpperScaled {
		t.Fatalf("trace cost %d != reported upper %d", got, res.UpperScaled)
	}
	if res.LowerScaled <= 0 {
		t.Fatalf("certified lower bound = %d, want > 0", res.LowerScaled)
	}
	const fft3R3Optimum = 31
	if res.LowerScaled > fft3R3Optimum || res.UpperScaled < fft3R3Optimum {
		t.Fatalf("interval [%d, %d] excludes the true optimum %d", res.LowerScaled, res.UpperScaled, fft3R3Optimum)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots streamed")
	}
	// The interval only ever tightens, snapshot to snapshot, within
	// each monotone stream; globally lower never exceeds upper.
	for _, s := range snaps {
		if s.LowerScaled > s.UpperScaled {
			t.Fatalf("snapshot with lower %d > upper %d (source %s)", s.LowerScaled, s.UpperScaled, s.Source)
		}
	}
}

// TestFullBudgetClosesGap checks gap -> 0 with an unconstrained budget
// on instances small enough to prove optimal quickly, cross-checking
// the incumbent against the exact solver.
func TestFullBudgetClosesGap(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    solve.Problem
	}{
		{"pyramid4-R3", solve.Problem{G: daggen.Pyramid(4), Model: pebble.NewModel(pebble.Oneshot), R: 3}},
		{"grid33-R3-nodel", solve.Problem{G: daggen.Grid(3, 3), Model: pebble.NewModel(pebble.NoDel), R: 3}},
		{"tree3-R3-base", solve.Problem{G: daggen.BinaryTree(3), Model: pebble.NewModel(pebble.Base), R: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Solve(context.Background(), tc.p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Optimal || res.Gap() != 0 {
				t.Fatalf("full budget did not close the gap: %v", res)
			}
			opt, err := solve.Exact(tc.p, solve.ExactOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if want := opt.Result.Cost.Scaled(tc.p.Model); res.UpperScaled != want {
				t.Fatalf("anytime optimum %d != exact optimum %d", res.UpperScaled, want)
			}
		})
	}
}

// TestFullBudgetFFT3 is the slow half of the acceptance criterion: with
// a full budget the fft(3) R=3 gap goes to exactly zero.
func TestFullBudgetFFT3(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second exact solve")
	}
	p := solve.Problem{G: daggen.FFT(3), Model: pebble.NewModel(pebble.Oneshot), R: 3}
	res, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || res.UpperScaled != 31 || res.LowerScaled != 31 {
		t.Fatalf("want proven optimum 31, got %v", res)
	}
}

// TestZeroDeadlineStillCertifies: even a budget that expires before the
// refinement engines start must return the root bound and a heuristic
// incumbent (the heuristics are not interruptible mid-run).
func TestZeroDeadlineStillCertifies(t *testing.T) {
	// pyramid(4) at R=3 has a positive root bound (its capacity
	// certificates overflow the two spare red slots).
	p := solve.Problem{G: daggen.Pyramid(4), Model: pebble.NewModel(pebble.Oneshot), R: 3}
	res, err := Solve(context.Background(), p, Options{Budget: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solution.Trace == nil || res.LowerScaled <= 0 {
		t.Fatalf("degenerate budget lost the certificate: %v", res)
	}
}

// TestParallelWorkers exercises the async-engine path under the
// orchestrator, both to completion and under a deadline.
func TestParallelWorkers(t *testing.T) {
	p := solve.Problem{G: daggen.Pyramid(5), Model: pebble.NewModel(pebble.Oneshot), R: 4}
	res, err := Solve(context.Background(), p, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal {
		t.Fatalf("want optimal, got %v", res)
	}

	hard := solve.Problem{G: daggen.FFT(3), Model: pebble.NewModel(pebble.Oneshot), R: 3}
	res, err = Solve(context.Background(), hard, Options{Workers: 2, Budget: 80 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.LowerScaled <= 0 || res.LowerScaled > res.UpperScaled {
		t.Fatalf("incoherent interval under workers: %v", res)
	}
}

// TestContextCancel: an already-canceled parent context still returns a
// certified heuristic answer (deadline semantics, not an error).
func TestContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := solve.Problem{G: daggen.Pyramid(4), Model: pebble.NewModel(pebble.Oneshot), R: 3}
	res, err := Solve(ctx, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solution.Trace == nil {
		t.Fatal("no incumbent under canceled context")
	}
}

// TestInfeasible: an instance with no completion reports an error, not
// a bogus certificate.
func TestInfeasible(t *testing.T) {
	// A 2-input node with R=3 under SourcesStartBlue is feasible; make
	// it infeasible by demanding computation of a source that starts
	// blue in the oneshot model with a sink convention that cannot be
	// met: simplest is R < Δ+1, rejected by state construction.
	p := solve.Problem{G: daggen.Pyramid(3), Model: pebble.NewModel(pebble.Oneshot), R: 1}
	if _, err := Solve(context.Background(), p, Options{}); err == nil {
		t.Fatal("want error for R too small")
	}
}
