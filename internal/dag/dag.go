// Package dag provides the directed-acyclic-graph substrate for red-blue
// pebbling. A DAG models a computation: source nodes are inputs, sinks are
// outputs, and the in-edges of a node are the values required to compute it.
//
// Nodes are dense non-negative integer IDs (0..n-1). The zero value of DAG
// is an empty graph ready to use.
package dag

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a node in a DAG. IDs are dense: a DAG with n nodes uses
// IDs 0..n-1.
type NodeID int

// DAG is a directed acyclic graph with adjacency stored in both directions.
// Acyclicity is not enforced on every AddEdge (that would be quadratic);
// call Validate or TopoOrder to check.
type DAG struct {
	preds  [][]NodeID // preds[v] = nodes with an edge into v
	succs  [][]NodeID // succs[v] = nodes v has an edge to
	labels []string   // optional human-readable labels
	edges  int
}

// New returns a DAG with n nodes and no edges.
func New(n int) *DAG {
	return &DAG{
		preds:  make([][]NodeID, n),
		succs:  make([][]NodeID, n),
		labels: make([]string, n),
	}
}

// N returns the number of nodes.
func (g *DAG) N() int { return len(g.preds) }

// M returns the number of edges.
func (g *DAG) M() int { return g.edges }

// AddNode appends a new node and returns its ID.
func (g *DAG) AddNode() NodeID {
	g.preds = append(g.preds, nil)
	g.succs = append(g.succs, nil)
	g.labels = append(g.labels, "")
	return NodeID(len(g.preds) - 1)
}

// AddNodes appends k new nodes and returns their IDs in order.
func (g *DAG) AddNodes(k int) []NodeID {
	ids := make([]NodeID, k)
	for i := range ids {
		ids[i] = g.AddNode()
	}
	return ids
}

// AddLabeledNode appends a node carrying a label and returns its ID.
func (g *DAG) AddLabeledNode(label string) NodeID {
	id := g.AddNode()
	g.labels[id] = label
	return id
}

// SetLabel attaches a human-readable label to v.
func (g *DAG) SetLabel(v NodeID, label string) { g.labels[v] = label }

// Label returns the label of v (may be empty).
func (g *DAG) Label(v NodeID) string { return g.labels[v] }

// AddEdge inserts the directed edge u -> v. It panics if u or v is out of
// range or u == v; duplicate edges are ignored.
func (g *DAG) AddEdge(u, v NodeID) {
	if u == v {
		panic(fmt.Sprintf("dag: self-loop at node %d", u))
	}
	g.check(u)
	g.check(v)
	for _, w := range g.succs[u] {
		if w == v {
			return
		}
	}
	g.succs[u] = append(g.succs[u], v)
	g.preds[v] = append(g.preds[v], u)
	g.edges++
}

// RemoveInEdges deletes every edge into v. Used by gadget transformations
// that replace a node's input set with a gadget structure.
func (g *DAG) RemoveInEdges(v NodeID) {
	g.check(v)
	for _, u := range g.preds[v] {
		ss := g.succs[u]
		for i, w := range ss {
			if w == v {
				g.succs[u] = append(ss[:i], ss[i+1:]...)
				break
			}
		}
	}
	g.edges -= len(g.preds[v])
	g.preds[v] = nil
}

// HasEdge reports whether the edge u -> v exists.
func (g *DAG) HasEdge(u, v NodeID) bool {
	if int(u) >= g.N() || int(v) >= g.N() || u < 0 || v < 0 {
		return false
	}
	for _, w := range g.succs[u] {
		if w == v {
			return true
		}
	}
	return false
}

func (g *DAG) check(v NodeID) {
	if v < 0 || int(v) >= len(g.preds) {
		panic(fmt.Sprintf("dag: node %d out of range [0,%d)", v, len(g.preds)))
	}
}

// Preds returns the predecessors (inputs) of v. The returned slice is owned
// by the DAG and must not be modified.
func (g *DAG) Preds(v NodeID) []NodeID { return g.preds[v] }

// Succs returns the successors of v. The returned slice is owned by the DAG
// and must not be modified.
func (g *DAG) Succs(v NodeID) []NodeID { return g.succs[v] }

// InDegree returns the number of inputs of v.
func (g *DAG) InDegree(v NodeID) int { return len(g.preds[v]) }

// OutDegree returns the number of out-edges of v.
func (g *DAG) OutDegree(v NodeID) int { return len(g.succs[v]) }

// MaxInDegree returns Δ, the largest in-degree over all nodes. An empty
// graph has Δ = 0.
func (g *DAG) MaxInDegree() int {
	d := 0
	for v := range g.preds {
		if len(g.preds[v]) > d {
			d = len(g.preds[v])
		}
	}
	return d
}

// Sources returns all nodes with in-degree 0, in increasing ID order.
func (g *DAG) Sources() []NodeID {
	var out []NodeID
	for v := range g.preds {
		if len(g.preds[v]) == 0 {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// Sinks returns all nodes with out-degree 0, in increasing ID order.
func (g *DAG) Sinks() []NodeID {
	var out []NodeID
	for v := range g.succs {
		if len(g.succs[v]) == 0 {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// IsSource reports whether v has no inputs.
func (g *DAG) IsSource(v NodeID) bool { return len(g.preds[v]) == 0 }

// IsSink reports whether v has no out-edges.
func (g *DAG) IsSink(v NodeID) bool { return len(g.succs[v]) == 0 }

// ErrCycle is returned by TopoOrder and Validate when the graph contains a
// directed cycle.
var ErrCycle = errors.New("dag: graph contains a cycle")

// TopoOrder returns a topological ordering of the nodes (Kahn's algorithm,
// smallest-ID-first among ready nodes, so the order is deterministic). It
// returns ErrCycle if the graph is not acyclic.
func (g *DAG) TopoOrder() ([]NodeID, error) {
	n := g.N()
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(g.preds[v])
	}
	// Min-heap on node ID for determinism.
	h := &idHeap{}
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			h.push(NodeID(v))
		}
	}
	order := make([]NodeID, 0, n)
	for h.len() > 0 {
		v := h.pop()
		order = append(order, v)
		for _, w := range g.succs[v] {
			indeg[w]--
			if indeg[w] == 0 {
				h.push(w)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// Validate checks structural invariants: acyclicity and pred/succ mirror
// consistency. It returns nil if the graph is a well-formed DAG.
func (g *DAG) Validate() error {
	for v := range g.succs {
		for _, w := range g.succs[v] {
			if !contains(g.preds[w], NodeID(v)) {
				return fmt.Errorf("dag: edge %d->%d missing from preds", v, w)
			}
		}
	}
	for v := range g.preds {
		for _, u := range g.preds[v] {
			if !contains(g.succs[u], NodeID(v)) {
				return fmt.Errorf("dag: edge %d->%d missing from succs", u, v)
			}
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

func contains(s []NodeID, v NodeID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the graph.
func (g *DAG) Clone() *DAG {
	c := New(g.N())
	c.edges = g.edges
	for v := range g.preds {
		c.preds[v] = append([]NodeID(nil), g.preds[v]...)
		c.succs[v] = append([]NodeID(nil), g.succs[v]...)
		c.labels[v] = g.labels[v]
	}
	return c
}

// Reachable returns the set of nodes reachable from the given roots
// (including the roots), as a boolean slice indexed by NodeID.
func (g *DAG) Reachable(roots ...NodeID) []bool {
	seen := make([]bool, g.N())
	stack := append([]NodeID(nil), roots...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[v] {
			continue
		}
		seen[v] = true
		for _, w := range g.succs[v] {
			if !seen[w] {
				stack = append(stack, w)
			}
		}
	}
	return seen
}

// Ancestors returns the set of nodes from which v is reachable (including
// v itself).
func (g *DAG) Ancestors(v NodeID) []bool {
	seen := make([]bool, g.N())
	stack := []NodeID{v}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[u] {
			continue
		}
		seen[u] = true
		for _, p := range g.preds[u] {
			if !seen[p] {
				stack = append(stack, p)
			}
		}
	}
	return seen
}

// LongestPathLen returns the number of edges on a longest directed path.
// It returns an error if the graph has a cycle.
func (g *DAG) LongestPathLen() (int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return 0, err
	}
	depth := make([]int, g.N())
	best := 0
	for _, v := range order {
		for _, w := range g.succs[v] {
			if depth[v]+1 > depth[w] {
				depth[w] = depth[v] + 1
				if depth[w] > best {
					best = depth[w]
				}
			}
		}
	}
	return best, nil
}

// Stats summarizes the structural properties of a DAG.
type Stats struct {
	Nodes       int
	Edges       int
	Sources     int
	Sinks       int
	MaxInDeg    int
	MaxOutDeg   int
	LongestPath int
}

// ComputeStats returns structural statistics for the graph. It panics on a
// cyclic graph (use Validate first on untrusted input).
func (g *DAG) ComputeStats() Stats {
	lp, err := g.LongestPathLen()
	if err != nil {
		panic(err)
	}
	maxOut := 0
	for v := range g.succs {
		if len(g.succs[v]) > maxOut {
			maxOut = len(g.succs[v])
		}
	}
	return Stats{
		Nodes:       g.N(),
		Edges:       g.M(),
		Sources:     len(g.Sources()),
		Sinks:       len(g.Sinks()),
		MaxInDeg:    g.MaxInDegree(),
		MaxOutDeg:   maxOut,
		LongestPath: lp,
	}
}

// String returns a short human-readable summary.
func (g *DAG) String() string {
	return fmt.Sprintf("DAG(n=%d, m=%d, sources=%d, sinks=%d, Δ=%d)",
		g.N(), g.M(), len(g.Sources()), len(g.Sinks()), g.MaxInDegree())
}

// SortedPreds returns a sorted copy of the predecessors of v. Useful for
// deterministic iteration in tests and serialization.
func (g *DAG) SortedPreds(v NodeID) []NodeID {
	p := append([]NodeID(nil), g.preds[v]...)
	sort.Slice(p, func(i, j int) bool { return p[i] < p[j] })
	return p
}

// SortedSuccs returns a sorted copy of the successors of v.
func (g *DAG) SortedSuccs(v NodeID) []NodeID {
	s := append([]NodeID(nil), g.succs[v]...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

// idHeap is a minimal binary min-heap of NodeIDs (avoids container/heap
// interface boxing on the hot path of TopoOrder).
type idHeap struct{ a []NodeID }

func (h *idHeap) len() int { return len(h.a) }

func (h *idHeap) push(v NodeID) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *idHeap) pop() NodeID {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.a[l] < h.a[small] {
			small = l
		}
		if r < last && h.a[r] < h.a[small] {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return top
}
