// Package anytime orchestrates the library's solvers under a deadline:
// it races the cheap upper-bound heuristics (topological+Belady, the
// greedy rules) against the exact refinement engines (best-first A* and
// iterative-deepening A*), tracking the best incumbent trace and the
// best certified lower bound the whole time. When the budget runs out
// it returns the certified [lower, upper] interval and the incumbent's
// verified trace instead of an error — the contract a serving system
// needs on instances where the paper's hardness results make unbounded
// exact solves impossible.
//
// The certificate chain:
//
//   - the root S-partition heuristic gives an instant admissible lower
//     bound before any search runs (solve.RootLowerBound);
//   - the A* engine raises it continuously (the min f on its open
//     frontier never exceeds the optimum) and harvests a final frontier
//     bound when canceled;
//   - each completed IDA* pass raises it further (a pass at threshold T
//     that finds nothing cheaper proves no completion below the
//     smallest f it pruned);
//   - every upper bound is a replay-verified trace.
//
// The upper and lower streams meet exactly when either engine proves
// optimality; a Result with Gap() == 0 carries a proven optimum.
package anytime

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rbpebble/internal/obs"
	"rbpebble/internal/pebble"
	"rbpebble/internal/solve"
)

// Options configures one anytime solve.
type Options struct {
	// Budget is the wall-clock budget. Zero means no budget: the solve
	// runs until an exact engine proves optimality (or ctx fires).
	Budget time.Duration
	// Workers > 1 expands the best-first engine with that many
	// hash-sharded async HDA* workers. The parallel engine streams a
	// certified lower bound mid-flight just like the serial one: its
	// coordinator merges the per-worker frontier floors with the
	// in-flight mailbox watermarks into a certified global f-min and
	// reports every improvement, so OnProgress sees monotone certified
	// progress under any worker count.
	Workers int
	// MaxStates caps the best-first engine's expansions (0 = 1<<40,
	// effectively unbounded: the deadline is the real budget).
	MaxStates int
	// MaxVisits caps the depth-first engine's expansions (0 = 1<<40).
	MaxVisits int
	// MaxTableBytes caps EACH refinement engine's table footprint
	// (solve.ExactOptions.MaxTableBytes / ExactDFSOptions.MaxTableBytes;
	// 0 = unlimited). An engine tripping the budget aborts with
	// solve.ErrMemoryBudget, its certified bounds are harvested into the
	// interval like any other early stop, and Result.MemoryLimited is
	// set — the node-wide memory governor rests on this.
	MaxTableBytes int64
	// DisableDFS turns off the IDA* refinement engine (it only runs for
	// the oneshot and nodel models regardless).
	DisableDFS bool
	// OnProgress, when non-nil, receives a snapshot every time the
	// certified interval tightens (new incumbent or higher lower
	// bound). Emissions are serialized, deduplicated and monotone: each
	// snapshot strictly improves at least one end of the previously
	// delivered interval and never regresses either end, even when
	// several engines report the same bound concurrently. Called from
	// solver goroutines; must be fast.
	OnProgress func(Snapshot)
	// OnSearch, when non-nil, receives the exact engines' live search
	// snapshots (expansion rate, frontier shape, table occupancy,
	// per-worker mailbox/heap data — see obs.SearchSnapshot) on a
	// time-based cadence during phase 2. Emissions are serialized with
	// strictly increasing Seq across both racing engines. Called from
	// solver goroutines; must be fast.
	OnSearch func(obs.SearchSnapshot)
	// SnapshotEvery is the engines' search-snapshot cadence (zero =
	// the engines' ~100ms default).
	SnapshotEvery time.Duration
	// Warm, when non-nil, resumes refinement from a previously certified
	// interval of the SAME instance (e.g. a cached deadline-limited
	// result): the cached incumbent is replay-verified and installed
	// before any heuristic runs, its cost seeds the depth-first engine's
	// ExactDFSOptions.InitialBound and the best-first engine's
	// PruneBound, and the cached lower bound seeds both engines'
	// InitialLowerBound — so a repeated hard instance picks up exactly
	// where the previous request's budget died instead of starting over.
	Warm *WarmStart
}

// WarmStart carries a previously certified interval into a new solve.
// The caller vouches for LowerScaled (it must come from a certificate
// chain on the same instance); Moves is re-verified here, so a corrupt
// trace degrades to a cold start rather than an invalid answer.
type WarmStart struct {
	// Moves is the cached incumbent trace in this instance's node IDs
	// (translate with instcache.FromCanonical when it crossed the
	// canonical cache). Empty means no incumbent, only a lower bound.
	Moves []pebble.Move
	// LowerScaled is the certified scaled lower bound (0 = none).
	LowerScaled int64
	// Source names where the warm data came from, for provenance
	// ("cache:astar" etc.); empty defaults to "warm-start".
	Source string
}

// Snapshot is one point of the anytime convergence curve.
type Snapshot struct {
	// Elapsed is the time since Solve started.
	Elapsed time.Duration
	// UpperScaled and LowerScaled are the certified interval ends in
	// scaled cost units (see pebble.Cost.Scaled). UpperScaled is
	// math.MaxInt64 until a first incumbent exists.
	UpperScaled, LowerScaled int64
	// Source names what produced this tightening ("root-bound",
	// "topo-belady", "greedy/most-red-inputs", "astar", "ida*", ...).
	Source string
}

// Result is a certified anytime answer.
type Result struct {
	// Solution is the best incumbent: a replay-verified trace.
	Solution solve.Solution
	// UpperScaled is the incumbent's scaled cost; LowerScaled the best
	// certified scaled lower bound on the optimum.
	UpperScaled, LowerScaled int64
	// Upper and Lower are the same interval in model cost units.
	Upper, Lower float64
	// Optimal reports that the interval closed: the incumbent is a
	// proven optimum.
	Optimal bool
	// Source names the strategy that produced the incumbent.
	Source string
	// Elapsed is the wall-clock time the solve used.
	Elapsed time.Duration
	// Expanded and Visits report the refinement engines' search effort
	// (best-first expansions, depth-first visits).
	Expanded, Visits int
	// TableBytes is the engines' combined peak table footprint (the
	// best-first visited tables plus the depth-first memo/heuristic
	// tables) — the memory half of the per-solve telemetry record.
	TableBytes int64
	// PeakFrontier and PeakRate are the largest open-frontier size and
	// expansion rate (states/s) observed across the solve's search
	// snapshots (zero when phase 2 never ran or finished between
	// samples) — the SolveRecord fields the portfolio scheduler wants.
	PeakFrontier int64
	PeakRate     float64
	// MemoryLimited reports that at least one refinement engine aborted
	// on Options.MaxTableBytes (solve.ErrMemoryBudget): the interval is
	// still certified, but it stopped where the memory governor cut the
	// search rather than where the deadline did.
	MemoryLimited bool
}

// Gap returns the relative optimality gap (upper-lower)/upper of a
// scaled certified interval: 0 for a proven optimum (and for the
// degenerate zero-cost optimum).
func Gap(upperScaled, lowerScaled int64) float64 {
	if upperScaled <= 0 || upperScaled <= lowerScaled {
		return 0
	}
	return float64(upperScaled-lowerScaled) / float64(upperScaled)
}

// Gap returns the result's relative optimality gap (see Gap).
func (r Result) Gap() float64 { return Gap(r.UpperScaled, r.LowerScaled) }

func (r Result) String() string {
	state := "certified"
	if r.Optimal {
		state = "optimal"
	}
	return fmt.Sprintf("anytime: [%d, %d] gap=%.1f%% %s via %s in %s",
		r.LowerScaled, r.UpperScaled, 100*r.Gap(), state, r.Source, r.Elapsed.Round(time.Millisecond))
}

// unbounded is the effective search budget when only the deadline
// should stop an engine.
const unbounded = 1 << 40

// refinementOptions assembles the phase-2 engine options from the
// orchestrator options and the certified interval at phase-2 start:
// the incumbent (warm-started or heuristic) seeds the depth-first
// engine's InitialBound and the best-first engine's PruneBound
// (both incumbent+1, so equal-cost optima are still found and proven),
// and the certified floor seeds both engines' InitialLowerBound. It is
// a separate function so tests can assert the warm-start values really
// reach the exact engines.
func refinementOptions(opts Options, incumbentScaled, lowerScaled int64) (solve.ExactOptions, solve.ExactDFSOptions) {
	maxStates := opts.MaxStates
	if maxStates == 0 {
		maxStates = unbounded
	}
	maxVisits := opts.MaxVisits
	if maxVisits == 0 {
		maxVisits = unbounded
	}
	exact := solve.ExactOptions{
		MaxStates:         maxStates,
		MaxTableBytes:     opts.MaxTableBytes,
		Parallel:          opts.Workers,
		InitialLowerBound: lowerScaled,
	}
	dfs := solve.ExactDFSOptions{
		MaxVisits:         maxVisits,
		MaxTableBytes:     opts.MaxTableBytes,
		InitialLowerBound: lowerScaled,
	}
	exact.ProgressEvery = opts.SnapshotEvery
	dfs.ProgressEvery = opts.SnapshotEvery
	if incumbentScaled < math.MaxInt64 {
		// Exclusive bounds: keep equal-cost completions so the engines
		// can still PROVE the incumbent optimal, prune anything worse.
		exact.PruneBound = incumbentScaled + 1
		dfs.InitialBound = incumbentScaled + 1
	}
	return exact, dfs
}

// searchRelay funnels both racing engines' search snapshots into one
// ordered stream: it converts the solve-layer snapshot to the wire
// form, assigns a strictly increasing Seq, tracks the peak frontier
// size and expansion rate for the Result, mirrors each sample as a
// search-snapshot span event, and fans out to the caller's OnSearch.
// One mutex serializes everything so the observer never sees Seq go
// backward even when the A* and IDA* engines sample concurrently.
type searchRelay struct {
	mu           sync.Mutex
	seq          int
	peakFrontier int64
	peakRate     float64
	on           func(obs.SearchSnapshot)
}

func (r *searchRelay) relay(sp *obs.Span, pr solve.ExactProgress) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	snap := searchSnapshotFrom(pr)
	snap.Seq = r.seq
	if snap.FrontierSize > r.peakFrontier {
		r.peakFrontier = snap.FrontierSize
	}
	if snap.Rate > r.peakRate {
		r.peakRate = snap.Rate
	}
	sp.Event("search-snapshot", snap.Expanded)
	if r.on != nil {
		r.on(snap)
	}
}

// peaks returns the peak frontier size and expansion rate seen so far.
func (r *searchRelay) peaks() (frontier int64, rate float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.peakFrontier, r.peakRate
}

// searchSnapshotFrom converts the solve layer's engine snapshot into
// the wire form shared by the service, proxy, CLI and JSONL sinks.
func searchSnapshotFrom(pr solve.ExactProgress) obs.SearchSnapshot {
	s := obs.SearchSnapshot{
		Engine:       pr.Engine,
		ElapsedMS:    pr.Elapsed.Milliseconds(),
		Expanded:     int64(pr.Expanded),
		Rate:         pr.Rate,
		Pushed:       int64(pr.Pushed),
		Distinct:     int64(pr.Distinct),
		LowerBound:   pr.LowerBound,
		FrontierSize: int64(pr.OpenSize),
		FrontierF:    pr.FrontierF,
		FrontierG:    pr.FrontierG,
		TableStates:  int64(pr.Distinct),
		TableBytes:   pr.TableBytes,
		TableLoad:    pr.TableLoad,
		SafraSent:    pr.SafraSent,
		SafraRecv:    pr.SafraRecv,
		Threshold:    pr.Threshold,
		Pass:         pr.Pass,
	}
	if len(pr.OpenBuckets) > 0 {
		s.OpenBuckets = make([]obs.SearchBucket, len(pr.OpenBuckets))
		for i, b := range pr.OpenBuckets {
			s.OpenBuckets[i] = obs.SearchBucket{F: b.F, Count: b.Count}
		}
	}
	if len(pr.Workers) > 0 {
		s.Workers = make([]obs.SearchWorker, len(pr.Workers))
		for i, w := range pr.Workers {
			s.Workers[i] = obs.SearchWorker{
				ID:           w.ID,
				Expanded:     int64(w.Expanded),
				Pushed:       int64(w.Pushed),
				HeapSize:     int64(w.OpenSize),
				HeapMinF:     w.HeapMinF,
				Floor:        w.Floor,
				MailboxDepth: int64(w.MailboxDepth),
				TableStates:  int64(w.TableCount),
				TableBytes:   w.TableBytes,
				Passive:      w.Passive,
			}
		}
	}
	return s
}

// collector accumulates the certified interval across phases and
// engines, emitting a snapshot whenever it tightens.
type collector struct {
	p     solve.Problem
	start time.Time
	onP   func(Snapshot)

	mu     sync.Mutex
	upper  int64
	lower  int64
	best   solve.Solution
	source string
	found  bool

	// The emission gate serializes OnProgress deliveries and remembers
	// the last pair handed to the caller, so concurrent engines
	// reporting the same bound (or snapshots built under c.mu but
	// racing to the callback) can never produce duplicate or regressing
	// (upper, lower) pairs: the caller only ever observes strict
	// improvement.
	emitMu sync.Mutex
	sentU  int64
	sentL  int64
}

// snapshotLocked captures the current interval; the caller emits it
// after releasing the state lock (the callback may be arbitrarily
// slow, and emitting outside c.mu keeps solver goroutines from
// serializing on it; the separate emission gate below restores a
// total, monotone order on what the user sees).
func (c *collector) snapshotLocked(source string) (Snapshot, bool) {
	if c.onP == nil {
		return Snapshot{}, false
	}
	return Snapshot{
		Elapsed:     time.Since(c.start),
		UpperScaled: c.upper,
		LowerScaled: c.lower,
		Source:      source,
	}, true
}

// emit delivers a snapshot through the emission gate: duplicates and
// stale reorderings are dropped, and each end is clamped to the best
// value already delivered so the OnProgress stream is strictly
// improving and never regresses.
func (c *collector) emit(s Snapshot) {
	c.emitMu.Lock()
	defer c.emitMu.Unlock()
	if s.UpperScaled >= c.sentU && s.LowerScaled <= c.sentL {
		return // no strict improvement over what was already delivered
	}
	if s.UpperScaled > c.sentU {
		s.UpperScaled = c.sentU
	}
	if s.LowerScaled < c.sentL {
		s.LowerScaled = c.sentL
	}
	c.sentU, c.sentL = s.UpperScaled, s.LowerScaled
	c.onP(s)
}

// improveUpper installs sol as the incumbent if it beats the current
// one. sol must already be replay-verified (every solve.Solution is).
func (c *collector) improveUpper(sol solve.Solution, source string) {
	scaled := sol.Result.Cost.Scaled(c.p.Model)
	c.mu.Lock()
	if scaled >= c.upper {
		c.mu.Unlock()
		return
	}
	c.upper, c.best, c.source, c.found = scaled, sol, source, true
	s, emit := c.snapshotLocked(source)
	c.mu.Unlock()
	if emit {
		c.emit(s)
	}
}

// improveUpperMoves verifies a raw move sequence (from the DFS
// incumbent callback) and installs it.
func (c *collector) improveUpperMoves(moves []pebble.Move, source string) {
	tr := &pebble.Trace{Model: c.p.Model, R: c.p.R, Convention: c.p.Convention, Moves: moves}
	res, err := tr.Run(c.p.G)
	if err != nil {
		// An unreplayable incumbent would be a solver bug; drop it
		// rather than serve an invalid trace.
		return
	}
	c.improveUpper(solve.Solution{Trace: tr, Result: res}, source)
}

// raiseLower ratchets the certified lower bound.
func (c *collector) raiseLower(v int64, source string) {
	c.mu.Lock()
	if v <= c.lower {
		c.mu.Unlock()
		return
	}
	c.lower = v
	s, emit := c.snapshotLocked(source)
	c.mu.Unlock()
	if emit {
		c.emit(s)
	}
}

// closed reports whether the interval has met.
func (c *collector) closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.found && c.upper <= c.lower
}

// Solve runs the orchestration: instant root bound, fast upper-bound
// heuristics, then concurrent exact refinement until optimality, the
// budget, or ctx. It returns an error only when the instance is
// invalid, infeasible, or no heuristic produced any pebbling within the
// budget; a deadline alone yields a certified non-optimal Result.
func Solve(ctx context.Context, p solve.Problem, opts Options) (Result, error) {
	start := time.Now()
	if opts.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Budget)
		defer cancel()
	}
	// The refinement engines race under their own cancelable context so
	// that the first proof of optimality stops the other engine.
	rctx, rcancel := context.WithCancel(ctx)
	defer rcancel()

	// upper starts at MaxInt64 (the documented "no incumbent yet"
	// sentinel for snapshots) so pre-incumbent snapshots never show an
	// inverted [lower, 0] interval.
	c := &collector{p: p, start: start, onP: opts.OnProgress, upper: math.MaxInt64, sentU: math.MaxInt64}

	// Phase 0: instant certificate. Also validates the instance.
	lb0, err := solve.RootLowerBound(p, solve.HeuristicAuto)
	if err != nil {
		return Result{}, err
	}
	c.lower = lb0
	if s, emit := c.snapshotLocked("root-bound"); emit {
		c.emit(s)
	}

	// Phase 0.5: warm start. Install the cached certificate before any
	// heuristic runs, so even a zero-budget repeat of a hard instance
	// returns an interval no wider than the cached one. The incumbent is
	// replay-verified inside improveUpperMoves — a corrupt cache entry
	// costs the warm upper bound, never correctness.
	if opts.Warm != nil {
		_, wsp := obs.StartSpan(ctx, "warm-start")
		src := opts.Warm.Source
		if src == "" {
			src = "warm-start"
		}
		c.raiseLower(opts.Warm.LowerScaled, src)
		if len(opts.Warm.Moves) > 0 {
			c.improveUpperMoves(opts.Warm.Moves, src)
		}
		wsp.SetAttr("source", src)
		wsp.End()
	}

	// Phase 1: cheap upper bounds, best-first order (TopoBelady is the
	// strongest order-oblivious heuristic; the greedy rules can beat it
	// on structured DAGs; random-order sampling adds diversity, with
	// each sampled order budget-pruned against the incumbent inside
	// sched.Execute). Each runs to completion — they are polynomial and
	// fast — but later ones are skipped once the budget fires.
	_, hsp := obs.StartSpan(ctx, "heuristics")
	if sol, err := solve.TopoBelady(p); err == nil {
		c.improveUpper(sol, "topo-belady")
	}
	for _, rule := range solve.AllGreedyRules() {
		if ctx.Err() != nil {
			break
		}
		if sol, err := solve.Greedy(p, rule); err == nil {
			c.improveUpper(sol, "greedy/"+rule.String())
		}
	}
	if !c.found {
		hsp.SetAttr("err", "no heuristic produced a pebbling")
		hsp.End()
		return Result{}, errors.New("anytime: no heuristic produced a pebbling (infeasible instance?)")
	}
	if ctx.Err() == nil && !c.closed() {
		c.mu.Lock()
		incumbent := c.upper
		c.mu.Unlock()
		if sol, err := solve.RandomOrders(p, solve.RandomOrdersOptions{
			Samples: 8, Seed: 1, InitialBound: incumbent,
		}); err == nil {
			c.improveUpper(sol, "random-orders")
		}
	}
	c.mu.Lock()
	hsp.SetAttr("source", c.source)
	c.mu.Unlock()
	hsp.End()

	// Phase 2: exact refinement, unless the interval already met (or
	// the budget died during phase 1).
	var exactStats solve.ExactStats
	var dfsStats solve.ExactDFSStats
	var memLimited atomic.Bool
	relay := &searchRelay{on: opts.OnSearch}
	if !c.closed() && ctx.Err() == nil {
		var wg sync.WaitGroup

		c.mu.Lock()
		incumbent, floor := c.upper, c.lower
		c.mu.Unlock()
		exactOpts, dfsOpts := refinementOptions(opts, incumbent, floor)

		wg.Add(1)
		go func() {
			defer wg.Done()
			// The engine-attempt span lives on the request's trace (via
			// rctx); certified lower-bound improvements streamed by the
			// engine become span events, so /debug/trace shows the
			// convergence curve inline.
			_, asp := obs.StartSpan(rctx, "engine:astar")
			defer asp.End()
			exactOpts.Cancel = rctx.Done()
			exactOpts.Stats = &exactStats
			exactOpts.Progress = func(pr solve.ExactProgress) {
				asp.Event("lower-bound", pr.LowerBound)
				c.raiseLower(pr.LowerBound, "astar")
				relay.relay(asp, pr)
			}
			sol, err := solve.Exact(p, exactOpts)
			defer func() {
				asp.SetAttr("expanded", strconv.Itoa(exactStats.Expanded))
			}()
			if err == nil {
				asp.SetAttr("outcome", "optimal")
				c.improveUpper(sol, "astar")
				c.raiseLower(sol.Result.Cost.Scaled(p.Model), "astar")
				rcancel() // optimum proven: stop the DFS
				return
			}
			// Canceled, out of budget, or bound-exhausted (every branch
			// at or above the incumbent cut: the incumbent is optimal) —
			// harvest the certified bound either way.
			asp.SetAttr("outcome", err.Error())
			c.raiseLower(exactStats.LowerBound, "astar")
			if errors.Is(err, solve.ErrMemoryBudget) {
				memLimited.Store(true)
			}
			if errors.Is(err, solve.ErrBoundExhausted) {
				rcancel()
			}
		}()

		runDFS := !opts.DisableDFS &&
			(p.Model.Kind == pebble.Oneshot || p.Model.Kind == pebble.NoDel)
		if runDFS {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, dsp := obs.StartSpan(rctx, "engine:ida*")
				defer dsp.End()
				dfsOpts.Cancel = rctx.Done()
				dfsOpts.Stats = &dfsStats
				dfsOpts.OnIncumbent = func(scaled int64, moves []pebble.Move) {
					c.improveUpperMoves(moves, "ida*")
				}
				dfsOpts.Progress = func(st solve.ExactDFSStats) {
					dsp.Event("lower-bound", st.LowerBound)
					c.raiseLower(st.LowerBound, "ida*")
				}
				dfsOpts.Search = func(pr solve.ExactProgress) {
					relay.relay(dsp, pr)
				}
				sol, err := solve.ExactDFS(p, dfsOpts)
				defer func() {
					dsp.SetAttr("visits", strconv.Itoa(dfsStats.Visits))
				}()
				if err == nil {
					dsp.SetAttr("outcome", "optimal")
					if sol.Trace != nil {
						c.improveUpper(sol, "ida*")
					}
					c.raiseLower(dfsStats.LowerBound, "ida*")
					rcancel() // optimum proven: stop the A* engine
					return
				}
				dsp.SetAttr("outcome", err.Error())
				c.raiseLower(dfsStats.LowerBound, "ida*")
				if errors.Is(err, solve.ErrMemoryBudget) {
					memLimited.Store(true)
				}
			}()
		}
		wg.Wait()
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	res := Result{
		Solution:      c.best,
		UpperScaled:   c.upper,
		LowerScaled:   min(c.lower, c.upper), // an achievable cost caps any certificate
		Optimal:       c.upper <= c.lower,
		Source:        c.source,
		Elapsed:       time.Since(start),
		Expanded:      exactStats.Expanded,
		Visits:        dfsStats.Visits,
		TableBytes:    exactStats.TableBytes + dfsStats.TableBytes,
		MemoryLimited: memLimited.Load(),
	}
	res.PeakFrontier, res.PeakRate = relay.peaks()
	res.Upper = float64(res.UpperScaled) / CostScale(p.Model)
	res.Lower = float64(res.LowerScaled) / CostScale(p.Model)
	return res, nil
}

// CostScale returns the divisor converting scaled cost units
// (pebble.Cost.Scaled) back to model cost values — shared with the
// serving layer so cost-unit semantics live in one place.
func CostScale(m pebble.Model) float64 {
	if m.Kind == pebble.CompCost {
		return float64(m.EpsDenom)
	}
	return 1
}
