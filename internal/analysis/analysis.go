// Package analysis inspects pebbling traces: per-operation statistics,
// the fast-memory occupancy profile over time, transfer timelines, a
// textual visualization, and CSV export. It is the observability layer a
// user of the library reaches for when a schedule's cost surprises them.
package analysis

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"rbpebble/internal/dag"
	"rbpebble/internal/pebble"
)

// Profile is the step-by-step evolution of a pebbling.
type Profile struct {
	Model pebble.Model
	R     int
	// RedOccupancy[i] is the number of red pebbles after move i.
	RedOccupancy []int
	// BlueOccupancy[i] is the number of blue pebbles after move i.
	BlueOccupancy []int
	// CumulativeCost[i] is the scaled cost after move i.
	CumulativeCost []int64
	// Moves echoes the trace's moves.
	Moves []pebble.Move
	// Final is the verified end-of-run summary.
	Final pebble.Result
}

// NewProfile replays the trace on g, recording occupancy and cost after
// every move. The trace must be legal and complete.
func NewProfile(g *dag.DAG, tr *pebble.Trace) (*Profile, error) {
	st, err := pebble.NewState(g, tr.Model, tr.R, tr.Convention)
	if err != nil {
		return nil, err
	}
	p := &Profile{
		Model: tr.Model,
		R:     tr.R,
		Moves: append([]pebble.Move(nil), tr.Moves...),
	}
	for i, m := range tr.Moves {
		if err := st.Apply(m); err != nil {
			return nil, fmt.Errorf("analysis: move %d: %w", i, err)
		}
		p.RedOccupancy = append(p.RedOccupancy, st.RedCount())
		p.BlueOccupancy = append(p.BlueOccupancy, st.BlueSet().Count())
		p.CumulativeCost = append(p.CumulativeCost, st.Cost().Scaled(tr.Model))
	}
	res, err := tr.Run(g)
	if err != nil {
		return nil, err
	}
	p.Final = res
	return p, nil
}

// PeakRed returns the maximum red occupancy.
func (p *Profile) PeakRed() int {
	peak := 0
	for _, r := range p.RedOccupancy {
		if r > peak {
			peak = r
		}
	}
	return peak
}

// PeakBlue returns the maximum blue occupancy (slow-memory footprint).
func (p *Profile) PeakBlue() int {
	peak := 0
	for _, b := range p.BlueOccupancy {
		if b > peak {
			peak = b
		}
	}
	return peak
}

// MeanRed returns the average red occupancy over the trace.
func (p *Profile) MeanRed() float64 {
	if len(p.RedOccupancy) == 0 {
		return 0
	}
	sum := 0
	for _, r := range p.RedOccupancy {
		sum += r
	}
	return float64(sum) / float64(len(p.RedOccupancy))
}

// TransferBursts returns the lengths of maximal runs of consecutive
// transfer moves (loads/stores) — long bursts indicate phase changes
// such as group-to-group moves in the paper's constructions.
func (p *Profile) TransferBursts() []int {
	var bursts []int
	run := 0
	for _, m := range p.Moves {
		if m.Kind == pebble.Load || m.Kind == pebble.Store {
			run++
			continue
		}
		if run > 0 {
			bursts = append(bursts, run)
			run = 0
		}
	}
	if run > 0 {
		bursts = append(bursts, run)
	}
	return bursts
}

// Summary renders a one-screen textual report.
func (p *Profile) Summary() string {
	var b strings.Builder
	res := p.Final
	fmt.Fprintf(&b, "model=%s R=%d moves=%d\n", p.Model, p.R, len(p.Moves))
	fmt.Fprintf(&b, "cost=%.4f (loads=%d stores=%d computes=%d deletes=%d)\n",
		res.Cost.Value(p.Model), res.Loads, res.Stores, res.Computes, res.Deletes)
	fmt.Fprintf(&b, "red: peak=%d/%d mean=%.2f   blue: peak=%d\n",
		p.PeakRed(), p.R, p.MeanRed(), p.PeakBlue())
	bursts := p.TransferBursts()
	if len(bursts) > 0 {
		max := 0
		for _, x := range bursts {
			if x > max {
				max = x
			}
		}
		fmt.Fprintf(&b, "transfer bursts: %d (longest %d)\n", len(bursts), max)
	}
	return b.String()
}

// Timeline renders an ASCII occupancy chart with the given width
// (buckets of moves); each row is one bucket showing red occupancy as a
// bar and the moves' kinds as a compact string.
func (p *Profile) Timeline(w io.Writer, buckets int) error {
	if buckets < 1 {
		buckets = 1
	}
	bw := bufio.NewWriter(w)
	total := len(p.Moves)
	if total == 0 {
		fmt.Fprintln(bw, "(empty trace)")
		return bw.Flush()
	}
	per := (total + buckets - 1) / buckets
	fmt.Fprintf(bw, "%8s  %-*s  %s\n", "moves", p.R, "red occupancy", "ops (L/S/C/D)")
	for start := 0; start < total; start += per {
		end := start + per
		if end > total {
			end = total
		}
		peak := 0
		var l, s, c, d int
		for i := start; i < end; i++ {
			if p.RedOccupancy[i] > peak {
				peak = p.RedOccupancy[i]
			}
			switch p.Moves[i].Kind {
			case pebble.Load:
				l++
			case pebble.Store:
				s++
			case pebble.Compute:
				c++
			case pebble.Delete:
				d++
			}
		}
		bar := strings.Repeat("#", peak)
		fmt.Fprintf(bw, "%4d-%-4d  %-*s  L%d S%d C%d D%d\n", start, end-1, p.R, bar, l, s, c, d)
	}
	return bw.Flush()
}

// WriteCSV exports the per-move profile for external plotting: columns
// step, kind, node, red, blue, cumulative cost.
func (p *Profile) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "step,kind,node,red,blue,scaled_cost")
	for i, m := range p.Moves {
		fmt.Fprintf(bw, "%d,%s,%d,%d,%d,%d\n",
			i, m.Kind, m.Node, p.RedOccupancy[i], p.BlueOccupancy[i], p.CumulativeCost[i])
	}
	return bw.Flush()
}

// CompareTraces runs both traces on g and reports their cost difference
// (a's scaled cost minus b's). Used by tooling to rank schedules.
func CompareTraces(g *dag.DAG, a, b *pebble.Trace) (int64, error) {
	ra, err := a.Run(g)
	if err != nil {
		return 0, fmt.Errorf("analysis: trace a: %w", err)
	}
	rb, err := b.Run(g)
	if err != nil {
		return 0, fmt.Errorf("analysis: trace b: %w", err)
	}
	return ra.Cost.Scaled(a.Model) - rb.Cost.Scaled(b.Model), nil
}
