package service

import (
	"net/http"
	"strconv"

	"rbpebble/internal/obs"
)

// SolvesDebugResponse is the GET /debug/solves body: the most recent
// per-solve telemetry records, newest first, plus the all-time count
// (including records the ring has since evicted). The cluster proxy
// fans this endpoint across the fleet and merges the rings.
type SolvesDebugResponse struct {
	Total   uint64            `json:"total"`
	Records []obs.SolveRecord `json:"records"`
}

// handleDebugSolves serves the telemetry ring: GET /debug/solves?n=K
// returns the K most recent records (all retained records when n is
// absent or non-positive).
func (s *Server) handleDebugSolves(w http.ResponseWriter, r *http.Request) {
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	recs := s.tel.Recent(n)
	if recs == nil {
		recs = []obs.SolveRecord{}
	}
	writeJSON(w, SolvesDebugResponse{Total: s.tel.Total(), Records: recs})
}

// handleDebugTrace serves one retained trace's span tree:
// GET /debug/trace/{id}.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	tr := s.recorder.Lookup(r.PathValue("id"))
	if tr == nil {
		httpError(w, http.StatusNotFound, "unknown trace")
		return
	}
	writeJSON(w, tr.View())
}

// SearchDebugResponse is the GET /debug/jobs/{id}/search body: an async
// job's most recent live engine-introspection snapshot. Snapshot is
// null until the solve's first sample (queued jobs, cache hits, solves
// shorter than the sampling cadence); after completion the last
// snapshot is retained alongside the terminal status. The cluster proxy
// fans this endpoint across the fleet and fills Node.
type SearchDebugResponse struct {
	Job      string              `json:"job"`
	Status   string              `json:"status"`
	Node     string              `json:"node,omitempty"`
	Snapshot *obs.SearchSnapshot `json:"snapshot"`
}

// handleDebugJobSearch serves a job's live search telemetry:
// GET /debug/jobs/{id}/search.
func (s *Server) handleDebugJobSearch(w http.ResponseWriter, r *http.Request) {
	s.jobMu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.jobMu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, SearchDebugResponse{
		Job:      j.id,
		Status:   j.snapshot().Status,
		Snapshot: j.search.Load(),
	})
}
