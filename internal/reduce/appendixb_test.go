package reduce

import (
	"sort"
	"testing"

	"rbpebble/internal/dag"
	"rbpebble/internal/gadgets"
	"rbpebble/internal/pebble"
	"rbpebble/internal/sched"
	"rbpebble/internal/solve"
	"rbpebble/internal/ugraph"
)

// Appendix B: replacing every input group of the Theorem 2 reduction by
// a CD gadget yields a constant-indegree DAG that — pebbled with R+1 red
// pebbles — preserves the permutation cost structure in the oneshot
// model (CD layers are computed for free once the left group is red).

// cdOrder expands a vertex permutation into a compute order for the
// constant-degree version: for each visited group, its not-yet-computed
// contacts, the gadget's layers, then the target.
func cdOrder(r *HamPath, cds map[dag.NodeID]*gadgets.CD, perm []int) []dag.NodeID {
	placed := make(map[dag.NodeID]bool)
	var order []dag.NodeID
	add := func(v dag.NodeID) {
		if !placed[v] {
			placed[v] = true
			order = append(order, v)
		}
	}
	for _, a := range perm {
		grp := r.Group(a)
		sort.Slice(grp, func(i, j int) bool { return grp[i] < grp[j] })
		for _, v := range grp {
			add(v)
		}
		for _, layer := range cds[r.Targets[a]].Layers {
			for _, v := range layer {
				add(v)
			}
		}
		add(r.Targets[a])
	}
	return order
}

func TestAppendixBConstantDegreeHamPath(t *testing.T) {
	for _, src := range []*ugraph.Graph{ugraph.Path(4), ugraph.Cycle(4)} {
		r := NewHamPath(src)
		tg := r.G // transform in place (reduction not reused)
		cds := gadgets.ConstantDegree(tg, 3)
		if err := tg.Validate(); err != nil {
			t.Fatal(err)
		}
		if tg.MaxInDegree() > 2 {
			t.Fatalf("Δ after transform = %d", tg.MaxInDegree())
		}
		if len(cds) != src.N() {
			t.Fatalf("transformed %d targets, want %d", len(cds), src.N())
		}
		// With R' = R+1, each permutation's oneshot cost equals the
		// original closed form: the gadget layers pebble for free.
		perms := [][]int{{0, 1, 2, 3}, {0, 2, 1, 3}, {3, 1, 2, 0}}
		for _, perm := range perms {
			order := cdOrder(r, cds, perm)
			_, res, err := sched.Execute(tg, pebble.NewModel(pebble.Oneshot), r.R+1,
				pebble.Convention{}, order, sched.Options{Policy: sched.Belady})
			if err != nil {
				t.Fatalf("perm %v: %v", perm, err)
			}
			want := r.PermutationCostOneshot(perm)
			if res.Cost.Transfers != want {
				t.Fatalf("perm %v: constant-degree cost %d != formula %d",
					perm, res.Cost.Transfers, want)
			}
		}
	}
}

// The base model degenerates without the H2C gadget: source contacts
// recompute for free, so the optimal cost no longer depends on the edge
// structure at all — this is exactly why Appendix A.2 adds H2C gadgets
// for the base-model reduction.
func TestBaseModelDegeneratesWithoutH2C(t *testing.T) {
	costs := map[string]int{}
	for name, src := range map[string]*ugraph.Graph{
		"path(3)":     ugraph.Path(3),     // has HP
		"complete(3)": ugraph.Complete(3), // has HP
		"empty(3)":    ugraph.New(3),      // no edges at all
	} {
		r := NewHamPath(src)
		opt, err := solve.Exact(solve.Problem{G: r.G, Model: pebble.NewModel(pebble.Base), R: r.R},
			solve.ExactOptions{MaxStates: 4_000_000})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		costs[name] = opt.Result.Cost.Transfers
	}
	// All three instances cost the same in base: N-1 target stores,
	// independent of adjacency — the reduction cannot decide HP here.
	if costs["path(3)"] != costs["complete(3)"] || costs["path(3)"] != costs["empty(3)"] {
		t.Fatalf("base-model costs differ: %v (expected degeneracy)", costs)
	}
	if costs["path(3)"] != 2 {
		t.Fatalf("base-model cost = %d, want N-1 = 2", costs["path(3)"])
	}
}
