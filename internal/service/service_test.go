package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rbpebble/internal/anytime"
	"rbpebble/internal/dag"
	"rbpebble/internal/daggen"
	"rbpebble/internal/solve"
)

func dagJSON(t *testing.T, g *dag.DAG) json.RawMessage {
	t.Helper()
	b, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func postSolve(t *testing.T, ts *httptest.Server, body string) (int, SolveResponse, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	var sr SolveResponse
	json.Unmarshal(buf.Bytes(), &sr)
	return resp.StatusCode, sr, buf.String()
}

func metric(t *testing.T, ts *httptest.Server, name string) int {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	for _, line := range strings.Split(buf.String(), "\n") {
		var v int
		if _, err := fmt.Sscanf(line, name+" %d", &v); err == nil {
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, buf.String())
	return 0
}

// TestSolveOptimalAndCacheHit is the smoke path: pyramid(4) solves to a
// proven optimum; an identical repeat (different node numbering!) is a
// cache hit with the same certified answer, observable via /metrics.
func TestSolveOptimalAndCacheHit(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g := daggen.Pyramid(4)
	body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3,"include_trace":true}`, dagJSON(t, g))
	code, sr, raw := postSolve(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if !sr.Optimal || sr.Cached || sr.Gap != 0 {
		t.Fatalf("first solve: %+v", sr)
	}
	if len(sr.Moves) == 0 {
		t.Fatal("include_trace returned no moves")
	}
	want := sr.Cost

	// Repeat with a relabeled isomorphic copy: still a cache hit.
	perm := make([]dag.NodeID, g.N())
	for v := 0; v < g.N(); v++ {
		perm[v] = dag.NodeID(g.N() - 1 - v)
	}
	h := dag.New(g.N())
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Succs(dag.NodeID(v)) {
			h.AddEdge(perm[v], perm[w])
		}
	}
	code, sr2, raw := postSolve(t, ts, fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3}`, dagJSON(t, h)))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if !sr2.Cached || !sr2.Optimal || sr2.Cost != want {
		t.Fatalf("relabeled repeat not served from cache: %+v", sr2)
	}
	if got := metric(t, ts, "rbserve_cache_hits_total"); got != 1 {
		t.Fatalf("cache_hits_total = %d, want 1", got)
	}
	if got := metric(t, ts, "rbserve_solves_total"); got != 1 {
		t.Fatalf("solves_total = %d, want 1", got)
	}
}

// TestSingleflightConcurrentRequests gates the solver so that N
// concurrent identical requests demonstrably share one solve.
func TestSingleflightConcurrentRequests(t *testing.T) {
	// One heavy-lane worker per request: every concurrent request must
	// reach the singleflight (and latch on) while the leader is gated,
	// or the misses counter below never reaches n.
	s := New(Config{HeavyLaneWorkers: 8})
	defer s.Close()
	gate := make(chan struct{})
	started := make(chan struct{}, 64)
	var calls int // guarded by singleflight: only one caller runs
	s.solveFn = func(ctx context.Context, p solve.Problem, opts anytime.Options) (anytime.Result, error) {
		calls++
		started <- struct{}{}
		<-gate
		return anytime.Solve(ctx, p, anytime.Options{})
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3}`, dagJSON(t, daggen.Pyramid(4)))
	const n = 8
	var wg sync.WaitGroup
	results := make([]SolveResponse, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, sr, raw := postSolve(t, ts, body)
			if code != http.StatusOK {
				t.Errorf("status %d: %s", code, raw)
			}
			results[i] = sr
		}(i)
	}
	<-started // the one solve is running; the rest must latch on
	for {
		if metric(t, ts, "rbserve_cache_misses_total") >= n {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if calls != 1 {
		t.Fatalf("solver ran %d times for %d concurrent identical requests", calls, n)
	}
	sharedCount := 0
	for _, sr := range results {
		if !sr.Optimal {
			t.Fatalf("non-optimal result: %+v", sr)
		}
		if sr.Shared {
			sharedCount++
		}
	}
	if sharedCount != n-1 {
		t.Fatalf("%d requests shared the flight, want %d", sharedCount, n-1)
	}
	if got := metric(t, ts, "rbserve_singleflight_shared_total"); got != n-1 {
		t.Fatalf("singleflight_shared_total = %d, want %d", got, n-1)
	}
	if got := metric(t, ts, "rbserve_solves_total"); got != 1 {
		t.Fatalf("solves_total = %d, want 1", got)
	}
}

// TestAsyncJob exercises the queue: enqueue, poll until done, check
// the certified result.
func TestAsyncJob(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3,"async":true}`, dagJSON(t, daggen.Pyramid(4)))
	resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var jr JobResponse
	json.NewDecoder(resp.Body).Decode(&jr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || jr.ID == "" {
		t.Fatalf("submit: status %d, job %+v", resp.StatusCode, jr)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job did not finish")
		}
		resp, err := http.Get(ts.URL + "/solve/" + jr.ID)
		if err != nil {
			t.Fatal(err)
		}
		var got JobResponse
		json.NewDecoder(resp.Body).Decode(&got)
		resp.Body.Close()
		if got.Status == "done" {
			if got.Result == nil || !got.Result.Optimal {
				t.Fatalf("done without optimal result: %+v", got)
			}
			break
		}
		if got.Status == "error" {
			t.Fatalf("job failed: %s", got.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := metric(t, ts, "rbserve_jobs_done_total"); got != 1 {
		t.Fatalf("jobs_done_total = %d, want 1", got)
	}
}

// TestDeadlineReturnsCertifiedInterval: a tiny deadline on a hard
// instance returns 200 with a non-optimal certified interval.
func TestDeadlineReturnsCertifiedInterval(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3,"deadline_ms":60}`, dagJSON(t, daggen.FFT(3)))
	code, sr, raw := postSolve(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if sr.Optimal {
		t.Skip("host solved fft(3) within 60ms; interval check not reachable")
	}
	if sr.Lower <= 0 || sr.Lower > sr.Upper || sr.Gap <= 0 {
		t.Fatalf("incoherent certified interval: %+v", sr)
	}
	// A deadline-limited answer is not served verbatim to an equal-budget
	// repeat — the repeat warm-starts a fresh refinement from the cached
	// interval, and the result must be at least as tight on both ends.
	_, sr2, _ := postSolve(t, ts, body)
	if sr2.Cached {
		t.Fatalf("non-optimal result was served from cache: %+v", sr2)
	}
	if !sr2.Warmed {
		t.Fatalf("second request did not warm-start: %+v", sr2)
	}
	if sr2.Upper > sr.Upper || sr2.Lower < sr.Lower {
		t.Fatalf("warm-started interval regressed: first [%v, %v], second [%v, %v]",
			sr.Lower, sr.Upper, sr2.Lower, sr2.Upper)
	}
	if got := metric(t, ts, "rbserve_warm_starts_total"); got != 1 {
		t.Fatalf("warm_starts_total = %d, want 1", got)
	}
	if got := metric(t, ts, "rbserve_interval_stores_total"); got < 2 {
		t.Fatalf("interval_stores_total = %d, want >= 2", got)
	}

	// A strictly smaller budget tier is served the stored interval
	// directly: a bigger budget already tried harder.
	small := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3,"deadline_ms":1}`, dagJSON(t, daggen.FFT(3)))
	_, sr3, _ := postSolve(t, ts, small)
	if !sr3.Cached {
		t.Fatalf("lower-tier request not served from interval cache: %+v", sr3)
	}
	if got := metric(t, ts, "rbserve_interval_hits_total"); got != 1 {
		t.Fatalf("interval_hits_total = %d, want 1", got)
	}
}

// TestDrainFailsHealthzAndRefusesWork: Drain() must fail the health
// probe (so a routing proxy stops sending here) and 503 new solves,
// observable in /metrics.
func TestDrainFailsHealthzAndRefusesWork(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain healthz = %d", resp.StatusCode)
	}
	s.Drain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", resp.StatusCode)
	}
	code, _, _ := postSolve(t, ts, fmt.Sprintf(`{"dag":%s}`, dagJSON(t, daggen.Chain(3))))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining solve = %d, want 503", code)
	}
	if got := metric(t, ts, "rbserve_draining"); got != 1 {
		t.Fatalf("rbserve_draining = %d, want 1", got)
	}
}

// TestCancelRunningJob: DELETE /solve/{id} on a running job stops the
// solve through the cooperative cancellation layer and returns the
// partial certified interval harvested at cancellation.
func TestCancelRunningJob(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// fft(3) R=3 with a long budget: the exact engines would need
	// seconds, so the DELETE provably lands mid-solve.
	body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3,"deadline_ms":30000,"async":true}`,
		dagJSON(t, daggen.FFT(3)))
	resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var jr JobResponse
	json.NewDecoder(resp.Body).Decode(&jr)
	resp.Body.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/solve/" + jr.ID)
		if err != nil {
			t.Fatal(err)
		}
		var got JobResponse
		json.NewDecoder(resp.Body).Decode(&got)
		resp.Body.Close()
		if got.Status == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started running: %+v", got)
		}
		time.Sleep(2 * time.Millisecond)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/solve/"+jr.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var canceled JobResponse
	json.NewDecoder(dresp.Body).Decode(&canceled)
	dresp.Body.Close()
	if canceled.Status != "canceled" {
		t.Fatalf("status after DELETE = %q, want canceled (%+v)", canceled.Status, canceled)
	}
	if canceled.Result == nil {
		t.Fatalf("no partial interval harvested at cancellation: %+v", canceled)
	}
	if canceled.Result.Lower <= 0 || canceled.Result.Lower > canceled.Result.Upper {
		t.Fatalf("incoherent partial interval: %+v", canceled.Result)
	}
	if canceled.Result.Optimal {
		t.Fatalf("canceled mid-solve yet optimal: %+v", canceled.Result)
	}
	if got := metric(t, ts, "rbserve_jobs_canceled_total"); got != 1 {
		t.Fatalf("jobs_canceled_total = %d, want 1", got)
	}
}

// TestCancelQueuedJob: canceling a job that has not started yet
// finalizes it immediately and the worker skips it.
func TestCancelQueuedJob(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	gate := make(chan struct{})
	started := make(chan struct{})
	var startedOnce sync.Once
	s.solveFn = func(ctx context.Context, p solve.Problem, opts anytime.Options) (anytime.Result, error) {
		startedOnce.Do(func() { close(started) })
		<-gate
		return anytime.Solve(ctx, p, anytime.Options{})
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submit := func(g json.RawMessage) string {
		resp, err := http.Post(ts.URL+"/solve", "application/json",
			strings.NewReader(fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3,"async":true}`, g)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var jr JobResponse
		json.NewDecoder(resp.Body).Decode(&jr)
		return jr.ID
	}
	submit(dagJSON(t, daggen.Pyramid(4))) // occupies the single worker
	<-started
	queuedID := submit(dagJSON(t, daggen.Pyramid(5))) // stays queued

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/solve/"+queuedID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var canceled JobResponse
	json.NewDecoder(dresp.Body).Decode(&canceled)
	dresp.Body.Close()
	if canceled.Status != "canceled" {
		t.Fatalf("queued job after DELETE = %q, want canceled", canceled.Status)
	}
	close(gate)
}

// TestShutdownGraceCancelsInflight: Shutdown must return once the
// grace period expires, with the in-flight solve canceled
// cooperatively (it produced a certified partial answer, not a hang).
func TestShutdownGraceCancelsInflight(t *testing.T) {
	s := New(Config{Workers: 1, GracePeriod: 50 * time.Millisecond})
	running := make(chan struct{})
	s.solveFn = func(ctx context.Context, p solve.Problem, opts anytime.Options) (anytime.Result, error) {
		close(running)
		<-ctx.Done() // simulate a solve that only stops when canceled
		// Produce a real (heuristic) result so the response carries a
		// replayable trace, as a canceled real solve would.
		return anytime.Solve(context.Background(), p, anytime.Options{Budget: time.Millisecond})
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3,"async":true}`, dagJSON(t, daggen.Pyramid(4)))
	resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var jr JobResponse
	json.NewDecoder(resp.Body).Decode(&jr)
	resp.Body.Close()
	<-running

	done := make(chan struct{})
	go func() {
		s.Shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not return within grace + margin")
	}
	if !s.Draining() {
		t.Fatal("Shutdown did not drain")
	}
}

// TestBadRequests covers the error paths.
func TestBadRequests(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		name, body string
		wantCode   int
	}{
		{"empty", `{}`, http.StatusUnprocessableEntity},
		{"bad json", `{`, http.StatusBadRequest},
		{"bad model", fmt.Sprintf(`{"dag":%s,"model":"nope"}`, dagJSON(t, daggen.Chain(3))), http.StatusUnprocessableEntity},
		{"r too small", fmt.Sprintf(`{"dag":%s,"r":1}`, dagJSON(t, daggen.Pyramid(3))), http.StatusUnprocessableEntity},
		{"bad async", `{"async":true}`, http.StatusBadRequest},
		// The declared node count is rejected before the graph is
		// materialized — a 50-byte body must not allocate 2B nodes.
		{"huge node count", `{"dag":{"nodes":2000000000,"edges":[]}}`, http.StatusUnprocessableEntity},
	} {
		t.Run(tc.name, func(t *testing.T) {
			code, _, raw := postSolve(t, ts, tc.body)
			if code != tc.wantCode {
				t.Fatalf("status %d, want %d (%s)", code, tc.wantCode, raw)
			}
		})
	}
	resp, err := http.Get(ts.URL + "/solve/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// TestHealthz sanity-checks the probe.
func TestHealthz(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

// TestCancelSharedFlightProtectsWaiters: DELETE on a job whose solve
// other concurrent identical requests are waiting on must NOT cancel
// the shared solve — the flight is canceled only when every interested
// request has canceled.
func TestCancelSharedFlightProtectsWaiters(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	gate := make(chan struct{})
	leaderCtx := make(chan context.Context, 1)
	s.solveFn = func(ctx context.Context, p solve.Problem, opts anytime.Options) (anytime.Result, error) {
		leaderCtx <- ctx
		<-gate
		if err := ctx.Err(); err != nil {
			return anytime.Result{}, err
		}
		return anytime.Solve(context.Background(), p, anytime.Options{})
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g := dagJSON(t, daggen.Pyramid(4))
	resp, err := http.Post(ts.URL+"/solve", "application/json",
		strings.NewReader(fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3,"async":true}`, g)))
	if err != nil {
		t.Fatal(err)
	}
	var jr JobResponse
	json.NewDecoder(resp.Body).Decode(&jr)
	resp.Body.Close()
	fctx := <-leaderCtx // the async job is the flight leader

	// A sync request for the same instance latches onto the flight.
	syncDone := make(chan SolveResponse, 1)
	go func() {
		_, sr, _ := postSolve(t, ts, fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3}`, g))
		syncDone <- sr
	}()
	for {
		if s.cache.Stats().SharedFlights >= 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Cancel the leader job: one of two interested requests — the
	// shared solve must keep running.
	delDone := make(chan struct{})
	go func() {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/solve/"+jr.ID, nil)
		r, err := http.DefaultClient.Do(req)
		if err == nil {
			r.Body.Close()
		}
		close(delDone)
	}()
	time.Sleep(50 * time.Millisecond)
	if fctx.Err() != nil {
		t.Fatal("one job's DELETE canceled a flight another request was waiting on")
	}
	close(gate)
	sr := <-syncDone
	if !sr.Optimal {
		t.Fatalf("waiter got a degraded result after the leader's DELETE: %+v", sr)
	}
	<-delDone
}
