package pebble

import (
	"bytes"
	"strings"
	"testing"

	"rbpebble/internal/dag"
)

func diamondTrace() *Trace {
	return &Trace{
		Model: NewModel(Oneshot),
		R:     3,
		Moves: []Move{
			{Compute, 0}, {Compute, 1}, {Compute, 2},
			{Delete, 0}, {Delete, 1},
			{Compute, 3},
		},
	}
}

func TestTraceRun(t *testing.T) {
	g := diamond()
	tr := diamondTrace()
	res, err := tr.Run(g)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Complete {
		t.Fatal("trace incomplete")
	}
	if res.Cost.Transfers != 0 || res.Cost.Computes != 4 {
		t.Fatalf("cost = %v", res.Cost)
	}
	if res.MaxRed != 3 {
		t.Fatalf("MaxRed = %d", res.MaxRed)
	}
	if res.Computes != 4 || res.Deletes != 2 || res.Loads != 0 || res.Stores != 0 {
		t.Fatalf("op counts = %+v", res)
	}
	if res.Steps != 6 {
		t.Fatalf("steps = %d", res.Steps)
	}
}

func TestTraceRunRejectsIllegal(t *testing.T) {
	g := diamond()
	tr := &Trace{Model: NewModel(Oneshot), R: 3, Moves: []Move{{Compute, 2}}}
	if _, err := tr.Run(g); err == nil {
		t.Fatal("illegal trace accepted")
	}
	if !strings.Contains(tr.Moves[0].String(), "compute(2)") {
		t.Fatal("move String wrong")
	}
}

func TestTraceRunRejectsIncomplete(t *testing.T) {
	g := diamond()
	tr := &Trace{Model: NewModel(Oneshot), R: 3, Moves: []Move{{Compute, 0}}}
	if _, err := tr.Run(g); err == nil {
		t.Fatal("incomplete trace accepted")
	}
}

func TestRecorder(t *testing.T) {
	g := diamond()
	rec, err := NewRecorder(g, NewModel(Oneshot), 3, Convention{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range diamondTrace().Moves {
		rec.MustApply(m)
	}
	tr := rec.Trace()
	if len(tr.Moves) != 6 {
		t.Fatalf("recorded %d moves", len(tr.Moves))
	}
	res, err := tr.Run(g)
	if err != nil || !res.Complete {
		t.Fatalf("recorded trace replay: %v", err)
	}
	// Failed applies are not recorded.
	if err := rec.Apply(Move{Compute, 0}); err == nil {
		t.Fatal("oneshot recompute accepted")
	}
	if len(rec.Trace().Moves) != 6 {
		t.Fatal("failed move was recorded")
	}
}

func TestTraceTextRoundTrip(t *testing.T) {
	for _, m := range []Model{
		NewModel(Base), NewModel(Oneshot), NewModel(NoDel),
		{Kind: CompCost, EpsDenom: 42},
	} {
		tr := diamondTrace()
		tr.Model = m
		tr.Convention = Convention{SourcesStartBlue: false, SinksMustBeBlue: true}
		var buf bytes.Buffer
		if err := tr.WriteText(&buf); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		tr2, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("ReadTrace(%s): %v", m, err)
		}
		if tr2.Model != tr.Model || tr2.R != tr.R || tr2.Convention != tr.Convention {
			t.Fatalf("header mismatch: %+v vs %+v", tr2, tr)
		}
		if len(tr2.Moves) != len(tr.Moves) {
			t.Fatalf("moves %d vs %d", len(tr2.Moves), len(tr.Moves))
		}
		for i := range tr.Moves {
			if tr2.Moves[i] != tr.Moves[i] {
				t.Fatalf("move %d: %v vs %v", i, tr2.Moves[i], tr.Moves[i])
			}
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []string{
		"",
		"model base",              // missing r
		"r 3",                     // missing model
		"model unknown\nr 3",      // bad model
		"model compcost\nr 3",     // missing epsdenom
		"model base\nr x",         // bad r
		"model base\nr 3\nfly 1",  // unknown directive
		"model base\nr 3\nload x", // bad node
		"model base\nr 3\nload -1",
		"model base\nr 3\nconv yes maybe",
	}
	for _, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c)); err == nil {
			t.Errorf("ReadTrace(%q) succeeded", c)
		}
	}
}

func TestResultValue(t *testing.T) {
	res := Result{Cost: Cost{Transfers: 3, Computes: 10}}
	m := Model{Kind: CompCost, EpsDenom: 10}
	if res.Value(m) != 4 {
		t.Fatalf("Value = %v", res.Value(m))
	}
}

func TestTraceWithSourcesStartBlue(t *testing.T) {
	g := diamond()
	tr := &Trace{
		Model:      NewModel(Oneshot),
		R:          3,
		Convention: Convention{SourcesStartBlue: true},
		Moves: []Move{
			{Load, 0}, {Load, 1}, {Compute, 2},
			{Delete, 0}, {Delete, 1},
			{Compute, 3},
		},
	}
	res, err := tr.Run(g)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Cost.Transfers != 2 {
		t.Fatalf("transfers = %d", res.Cost.Transfers)
	}
}

func BenchmarkApply(b *testing.B) {
	g := dag.New(2)
	g.AddEdge(0, 1)
	st, err := NewState(g, NewModel(Base), 2, Convention{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.MustApply(Move{Compute, 0})
		st.MustApply(Move{Store, 0})
		st.MustApply(Move{Load, 0})
		st.MustApply(Move{Delete, 0})
	}
}
