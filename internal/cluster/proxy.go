package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rbpebble/internal/instcache"
	"rbpebble/internal/service"
)

// ProxyConfig tunes a Proxy. Zero values select the defaults.
type ProxyConfig struct {
	// Members are the rbserve replicas, as host:port.
	Members []string
	// VirtualNodes per member on the ring (default 64).
	VirtualNodes int
	// ProbeInterval is the health-probe period (default 2s; < 0
	// disables the background prober — tests drive health by hand).
	ProbeInterval time.Duration
	// MaxBodyBytes caps the request body (default 64 MiB), matching the
	// node-side limit so the proxy rejects oversized bodies before
	// buffering them for failover replay.
	MaxBodyBytes int64
	// MaxNodes rejects instances above this size before the routing
	// parse materializes the graph (default 100000, matching the
	// rbserve default) — a tiny body declaring two billion nodes must
	// not allocate at the routing tier any more than at a node.
	MaxNodes int
	// Client performs the forwards (default: 60s-timeout client — it
	// must outlive the longest node-side solve deadline).
	Client *http.Client
}

// proxyMetrics are the proxy's own monotone counters.
type proxyMetrics struct {
	requests, routed, failovers, fanouts, errors atomic.Uint64
}

// Proxy is the cluster front end: it routes each POST /solve to the
// replica owning the request's canonical instance key (so repeats and
// isomorphic relabelings warm the same node's interval cache), fails
// over along the ring on node failure, fans job polls out to every
// node, and merges the fleet's /metrics and /healthz into
// cluster-level views. Create with NewProxy, serve Handler, stop with
// Close.
type Proxy struct {
	cfg    ProxyConfig
	ring   *Ring
	client *http.Client
	prober *Prober
	mux    *http.ServeMux
	m      proxyMetrics
}

// NewProxy returns a started Proxy.
func NewProxy(cfg ProxyConfig) *Proxy {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.MaxNodes <= 0 {
		cfg.MaxNodes = 100000
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 60 * time.Second}
	}
	p := &Proxy{
		cfg:    cfg,
		ring:   NewRing(cfg.VirtualNodes, cfg.Members...),
		client: cfg.Client,
	}
	if cfg.ProbeInterval >= 0 {
		p.prober = NewProber(p.ring, cfg.ProbeInterval, nil)
	}
	p.mux = http.NewServeMux()
	p.mux.HandleFunc("POST /solve", p.handleSolve)
	p.mux.HandleFunc("GET /solve/{id}", p.handleJob)
	p.mux.HandleFunc("DELETE /solve/{id}", p.handleJob)
	p.mux.HandleFunc("GET /healthz", p.handleHealthz)
	p.mux.HandleFunc("GET /metrics", p.handleMetrics)
	return p
}

// Ring exposes the proxy's ring (the rbproxy admin surface and tests
// adjust membership through it).
func (p *Proxy) Ring() *Ring { return p.ring }

// Handler returns the HTTP handler.
func (p *Proxy) Handler() http.Handler { return p.mux }

// Close stops the health prober.
func (p *Proxy) Close() {
	if p.prober != nil {
		p.prober.Stop()
	}
}

// RouteKey computes the canonical routing key of a solve request by
// parsing it exactly the way a node will (service.BuildProblem, with
// the same node-count guard) and keying the resulting instance.
// Isomorphic relabelings of one DAG yield one key, so they all route
// to the same replica's cache.
func RouteKey(req service.SolveRequest, maxNodes int) (string, error) {
	prob, err := service.BuildProblem(req, maxNodes)
	if err != nil {
		return "", err
	}
	inst := instcache.Instance{G: prob.G, Model: prob.Model, R: prob.R, Convention: prob.Convention}
	key, _ := inst.Key()
	return key, nil
}

// handleSolve routes by canonical instance key with ring-order
// failover: a connection error, a 502, or a draining 503 from the
// owner demotes it and moves on to the next ring member.
func (p *Proxy) handleSolve(w http.ResponseWriter, r *http.Request) {
	p.m.requests.Add(1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, p.cfg.MaxBodyBytes))
	if err != nil {
		p.m.errors.Add(1)
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	var req service.SolveRequest
	if err := json.Unmarshal(body, &req); err != nil {
		p.m.errors.Add(1)
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	key, err := RouteKey(req, p.cfg.MaxNodes)
	if err != nil {
		p.m.errors.Add(1)
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	owners := p.ring.Owners(key, len(p.ring.Members()))
	if len(owners) == 0 {
		p.m.errors.Add(1)
		httpError(w, http.StatusServiceUnavailable, "no cluster members")
		return
	}
	for i, member := range owners {
		if i > 0 {
			p.m.failovers.Add(1)
		}
		resp, err := p.client.Post("http://"+member+"/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			p.ring.SetHealthy(member, false)
			continue
		}
		if resp.StatusCode == http.StatusBadGateway ||
			(resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("X-Rbserve-Draining") == "1") {
			// The node is going away (draining) or fronting something
			// broken: demote and fail over. Per-request 503s WITHOUT the
			// draining header (queue full, singleflight wait timeout) are
			// relayed instead — a healthy node emits those under load,
			// and demoting it would cascade the whole keyspace onto
			// cache-cold members. The body is drained so the connection
			// can be reused.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			p.ring.SetHealthy(member, false)
			continue
		}
		p.m.routed.Add(1)
		relayResponse(w, resp, member)
		return
	}
	p.m.errors.Add(1)
	httpError(w, http.StatusBadGateway, "all cluster members failed")
}

// handleJob fans a job poll or cancellation out to every HEALTHY
// member (job IDs are node-local; the first node that knows the ID
// answers). Unhealthy members are skipped — probing a blackholed node
// with the long forward timeout would hang the poll for minutes, and
// its jobs died with it anyway.
func (p *Proxy) handleJob(w http.ResponseWriter, r *http.Request) {
	p.m.requests.Add(1)
	p.m.fanouts.Add(1)
	members := healthyMembers(p.ring)
	if len(members) == 0 {
		httpError(w, http.StatusServiceUnavailable, "no healthy cluster members")
		return
	}
	for _, member := range members {
		req, err := http.NewRequestWithContext(r.Context(), r.Method,
			"http://"+member+"/solve/"+r.PathValue("id"), nil)
		if err != nil {
			continue
		}
		resp, err := p.client.Do(req)
		if err != nil {
			p.ring.SetHealthy(member, false)
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		relayResponse(w, resp, member)
		return
	}
	httpError(w, http.StatusNotFound, "unknown job on every cluster member")
}

// NodeHealth is one member's slot in the cluster health view.
type NodeHealth struct {
	Member  string `json:"member"`
	Healthy bool   `json:"healthy"`
}

// ClusterHealth is the GET /healthz body: the cluster is ok while any
// member is routable.
type ClusterHealth struct {
	OK    bool         `json:"ok"`
	Nodes []NodeHealth `json:"nodes"`
}

func (p *Proxy) handleHealthz(w http.ResponseWriter, r *http.Request) {
	members := p.ring.Members()
	view := ClusterHealth{}
	for _, m := range sortedKeys(members) {
		view.Nodes = append(view.Nodes, NodeHealth{Member: m, Healthy: members[m]})
		view.OK = view.OK || members[m]
	}
	w.Header().Set("Content-Type", "application/json")
	if !view.OK {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(view)
}

// handleMetrics merges the fleet: every downstream rbserve counter is
// summed across reachable members and re-emitted with a cluster_
// prefix (so rbserve_warm_starts_total across the fleet shows as
// cluster_rbserve_warm_starts_total), followed by per-node up gauges
// and the proxy's own counters.
func (p *Proxy) handleMetrics(w http.ResponseWriter, r *http.Request) {
	members := p.ring.Members()
	sums := map[string]uint64{}
	var names []string
	up := map[string]bool{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for m, healthy := range members {
		if !healthy {
			continue
		}
		wg.Add(1)
		go func(m string) {
			defer wg.Done()
			vals, err := p.fetchMetrics(m)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				return
			}
			up[m] = true
			for name, v := range vals {
				if _, ok := sums[name]; !ok {
					names = append(names, name)
				}
				sums[name] += v
			}
		}(m)
	}
	wg.Wait()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "cluster_%s %d\n", name, sums[name])
	}
	for _, m := range sortedKeys(members) {
		v := 0
		if members[m] && up[m] {
			v = 1
		}
		fmt.Fprintf(w, "rbproxy_node_up{node=%q} %d\n", m, v)
	}
	for _, kv := range []struct {
		name string
		v    uint64
	}{
		{"rbproxy_requests_total", p.m.requests.Load()},
		{"rbproxy_routed_total", p.m.routed.Load()},
		{"rbproxy_failovers_total", p.m.failovers.Load()},
		{"rbproxy_fanouts_total", p.m.fanouts.Load()},
		{"rbproxy_errors_total", p.m.errors.Load()},
	} {
		fmt.Fprintf(w, "%s %d\n", kv.name, kv.v)
	}
}

// fetchMetrics scrapes one member's Prometheus text exposition into
// name -> value. Unlabeled integer counters/gauges map one-to-one;
// labeled series (rbserve_job_lower_bound{job="..."}) are summed under
// the label-stripped name, so the fleet merge exposes one
// cluster_rbserve_job_lower_bound total across every running job on
// every node.
func (p *Proxy) fetchMetrics(member string) (map[string]uint64, error) {
	resp, err := p.client.Get("http://" + member + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics status %d", resp.StatusCode)
	}
	out := map[string]uint64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, valStr, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		v, err := strconv.ParseUint(valStr, 10, 64)
		if err != nil {
			continue
		}
		out[name] += v
	}
	return out, sc.Err()
}

// healthyMembers lists the currently-healthy members in a
// deterministic order for fan-out endpoints.
func healthyMembers(r *Ring) []string {
	members := r.Members()
	out := make([]string, 0, len(members))
	for _, m := range sortedKeys(members) {
		if members[m] {
			out = append(out, m)
		}
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// relayResponse copies a downstream response to the client, stamping
// the member that served it.
func relayResponse(w http.ResponseWriter, resp *http.Response, member string) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.Header().Set("X-Rbproxy-Node", member)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
