package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"rbpebble/internal/dag"
	"rbpebble/internal/instcache"
	"rbpebble/internal/obs"
	"rbpebble/internal/solve"
)

// BatchRequest is the POST /solve/batch body: many instances decoded
// in one request. DeadlineMS and IncludeTrace are batch-wide defaults;
// a per-item deadline_ms / include_trace overrides them for that item.
type BatchRequest struct {
	Items []SolveRequest `json:"items"`
	// DeadlineMS is the default per-item solve budget (same clamping as
	// the single-solve endpoint).
	DeadlineMS int `json:"deadline_ms,omitempty"`
	// IncludeTrace adds the verified move sequence to every item result.
	IncludeTrace bool `json:"include_trace,omitempty"`
}

// BatchItem is one per-instance result, tagged with its position in
// the request so the client (and the routing proxy reassembling
// sub-batches) can match results to inputs without relying on
// transport order.
type BatchItem struct {
	Index int `json:"index"`
	// Lane records which scheduling lane served the item ("fast" for
	// cache-served and sub-budget work, "heavy" for exact solves).
	Lane   string         `json:"lane,omitempty"`
	Error  string         `json:"error,omitempty"`
	Status int            `json:"status,omitempty"` // per-item HTTP-ish status when Error is set
	Result *SolveResponse `json:"result,omitempty"`
}

// BatchSummary trails the item stream with batch-level accounting.
type BatchSummary struct {
	Items     int     `json:"items"`
	OK        int     `json:"ok"`
	Errors    int     `json:"errors"`
	Solves    int     `json:"solves"`  // canonical-class solve groups dispatched
	Deduped   int     `json:"deduped"` // items served by another in-batch item's solve
	Shed      int     `json:"shed"`    // items refused by lane admission control
	ElapsedMS float64 `json:"elapsed_ms"`
}

// BatchResponse is the full response shape (the stream writes it
// incrementally: items in request order, then the summary).
type BatchResponse struct {
	Items   []BatchItem  `json:"items"`
	Summary BatchSummary `json:"summary"`
}

// batchGroup is one canonical-equivalence class within a batch: all
// member items share the canonical key, so the group performs exactly
// one cache/singleflight round trip and k per-member trace
// translations.
type batchGroup struct {
	key      string
	members  []int // item indices, request order
	deadline time.Duration
	probed   *instcache.Value // pre-dispatch cache probe hit, if any
	lane     string
	shed     bool
	done     chan struct{}
}

// batchItemState carries one item through the canonicalization pool.
type batchItemState struct {
	p            solve.Problem
	deadline     time.Duration
	includeTrace bool
	key          string
	perm         []dag.NodeID
	err          error
}

// handleSolveBatch is POST /solve/batch: the amortized request plane.
// The body is decoded once; items are canonicalized concurrently
// through a bounded pool, deduplicated within the batch by canonical
// key, classified onto the fast or heavy lane, and streamed back in
// request order as each item's group completes.
func (s *Server) handleSolveBatch(w http.ResponseWriter, r *http.Request) {
	s.m.requests.Add(1)
	s.m.batchRequests.Add(1)
	start := time.Now()
	ctx, _ := obs.StartRequest(w, r, s.recorder)
	if s.draining.Load() {
		w.Header().Set("X-Rbserve-Draining", "1")
		httpError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	var req BatchRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Items) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Items) > s.cfg.MaxBatchItems {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch has %d items, limit %d", len(req.Items), s.cfg.MaxBatchItems))
		return
	}
	s.m.batchItems.Add(uint64(len(req.Items)))

	// Phase 1 — amortized canonicalization: every item is validated and
	// canonically labeled concurrently under a bounded worker pool. This
	// is the per-request fixed cost the batch exists to amortize; it
	// never touches the cache or the lanes, so it can run at full
	// parallelism without admission control.
	states := make([]batchItemState, len(req.Items))
	_, csp := obs.StartSpan(ctx, "canonicalize")
	csp.SetAttr("items", strconv.Itoa(len(req.Items)))
	sem := make(chan struct{}, s.cfg.CanonWorkers)
	var canonWG sync.WaitGroup
	for i := range req.Items {
		canonWG.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer canonWG.Done()
			defer func() { <-sem }()
			item := req.Items[i]
			if item.DeadlineMS == 0 {
				item.DeadlineMS = req.DeadlineMS
			}
			st := &states[i]
			st.includeTrace = req.IncludeTrace || item.IncludeTrace
			st.p, st.deadline, st.err = s.parseRequest(item)
			if st.err != nil {
				return
			}
			if item.Async {
				st.err = errors.New("async is not supported in batch mode")
				return
			}
			inst := instcache.Instance{G: st.p.G, Model: st.p.Model, R: st.p.R, Convention: st.p.Convention}
			st.key, st.perm = inst.Key()
		}(i)
	}
	canonWG.Wait()
	csp.End()

	// Phase 2 — in-batch dedup: group items by canonical key. k
	// isomorphic instances become one group = one canonicalization-class
	// solve; each member still gets its own translation back into its
	// own labeling. The group budget is the widest member deadline, so
	// no member is served a weaker tier than it asked for.
	var groups []*batchGroup
	groupOf := make(map[string]*batchGroup)
	for i := range states {
		st := &states[i]
		if st.err != nil {
			continue
		}
		g := groupOf[st.key]
		if g == nil {
			g = &batchGroup{key: st.key, deadline: st.deadline, done: make(chan struct{})}
			groupOf[st.key] = g
			groups = append(groups, g)
		} else if st.deadline > g.deadline {
			g.deadline = st.deadline
		}
		g.members = append(g.members, i)
	}

	// Phase 3 — one batched cache probe under a single lock acquisition,
	// then lane classification: probe-served groups and groups whose
	// whole budget fits the fast-lane threshold ride the fast lane;
	// anything that may hold a worker for a long exact solve queues on
	// the heavy lane, where admission control can shed it.
	keys := make([]string, len(groups))
	tiers := make([]int, len(groups))
	for i, g := range groups {
		keys[i] = g.key
		tiers[i] = instcache.TierForBudget(g.deadline)
	}
	_, psp := obs.StartSpan(ctx, "cache-probe")
	psp.SetAttr("groups", strconv.Itoa(len(groups)))
	for i, v := range s.cache.ProbeBatch(keys, tiers) {
		groups[i].probed = v
		if v != nil || groups[i].deadline <= s.cfg.FastLaneBudget {
			groups[i].lane = laneFast
		} else {
			groups[i].lane = laneHeavy
		}
	}
	psp.End()

	// Phase 4 — dispatch each group to its lane. A full lane sheds the
	// whole group (429-class per-item errors with a backlog-derived
	// retry estimate): under saturation, refusing early beats queueing
	// cheap items behind multi-second solves.
	out := make([]BatchItem, len(req.Items))
	for i := range states {
		if err := states[i].err; err != nil {
			out[i] = BatchItem{Index: i, Error: err.Error(), Status: http.StatusUnprocessableEntity}
		}
	}
	var solvesDispatched, shedItems int
	for _, g := range groups {
		g := g
		// Per-group lane-queue span: starts at submission, ends when a
		// lane worker picks the group up — the queue-wait is exactly the
		// gap admission control exists to bound.
		gctx, qsp := obs.StartSpan(ctx, "lane-queue")
		qsp.SetAttr("lane", g.lane)
		if !s.lanes.byName(g.lane).submit(func() { qsp.End(); s.runBatchGroup(gctx, g, states, out) }) {
			qsp.SetAttr("shed", "true")
			qsp.End()
			retry := s.retryAfterSeconds()
			for _, idx := range g.members {
				out[idx] = BatchItem{
					Index:  idx,
					Lane:   g.lane,
					Error:  fmt.Sprintf("%s lane saturated; retry after %ds", g.lane, retry),
					Status: http.StatusTooManyRequests,
				}
			}
			s.m.batchShed.Add(uint64(len(g.members)))
			shedItems += len(g.members)
			g.shed = true
			close(g.done)
			continue
		}
		if g.probed == nil {
			solvesDispatched++
		}
	}
	if shedItems == len(req.Items) {
		// Nothing was admitted: make the whole request a retryable 429 so
		// clients and the routing proxy can back off without parsing the
		// per-item stream.
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		httpError(w, http.StatusTooManyRequests, "all lanes saturated")
		return
	}

	// Phase 5 — stream results in request order as each item's group
	// completes. Item i is written (and flushed) as soon as groups
	// 0..i's work allows, so early fast-lane completions reach the
	// client while heavy solves are still running.
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	fmt.Fprint(w, `{"items":[`)
	var ok, errs int
	for i := range out {
		g := groupOf[states[i].key]
		if g != nil && states[i].err == nil {
			select {
			case <-g.done:
			case <-s.closed:
				// Lane workers are gone; anything not yet done never will
				// be. Don't read the slot (the group task may still be
				// mid-write) — synthesize the refusal.
				out[i] = BatchItem{Index: i, Lane: g.lane, Error: "server shutting down", Status: http.StatusServiceUnavailable}
			}
		}
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		if out[i].Error != "" {
			errs++
		} else {
			ok++
		}
		enc.Encode(out[i]) // Encode appends \n — harmless inside the array
		if flusher != nil {
			flusher.Flush()
		}
	}
	var deduped int
	for _, g := range groups {
		if !g.shed {
			deduped += len(g.members) - 1
		}
	}
	sum := BatchSummary{
		Items:     len(req.Items),
		OK:        ok,
		Errors:    errs,
		Solves:    solvesDispatched,
		Deduped:   deduped,
		Shed:      shedItems,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	}
	fmt.Fprint(w, `],"summary":`)
	enc.Encode(sum)
	fmt.Fprint(w, `}`)
}

// runBatchGroup serves one canonical-class group: one cache/
// singleflight round trip (skipped entirely when the pre-dispatch
// probe already holds a servable value), then one per-member
// translation + replay verification. A member's translation failure
// poisons only that member.
func (s *Server) runBatchGroup(ctx context.Context, g *batchGroup, states []batchItemState, out []BatchItem) {
	defer close(g.done)
	leader := g.members[0]
	val, hit, shared, warmed := instcache.Value{}, true, false, false
	if g.probed != nil {
		val = *g.probed
		s.recordProbeHit(ctx, states[leader].p, val, g.deadline, time.Now())
	} else {
		var err error
		// The solve runs under baseCtx (not the HTTP request context):
		// like the sync path, a client that gives up mid-batch doesn't
		// kill a solve whose result is about to land in the cache. The
		// graft keeps the batch request's trace on it.
		val, hit, shared, warmed, err = s.solveKeyed(obs.Graft(s.baseCtx, ctx), states[leader].p, g.key, states[leader].perm, g.deadline, nil, nil)
		if err != nil {
			s.m.solveErrors.Add(1)
			status := http.StatusUnprocessableEntity
			if errors.Is(err, context.DeadlineExceeded) {
				status = http.StatusServiceUnavailable
			}
			for _, idx := range g.members {
				out[idx] = BatchItem{Index: idx, Lane: g.lane, Error: err.Error(), Status: status}
			}
			return
		}
	}
	for n, idx := range g.members {
		st := &states[idx]
		mStart := time.Now()
		resp, err := s.buildResponse(ctx, st.p, val, st.perm, st.includeTrace, hit, shared || n > 0, warmed, mStart)
		s.reqSeconds.observe(time.Since(mStart))
		if err != nil {
			out[idx] = BatchItem{Index: idx, Lane: g.lane, Error: err.Error(), Status: http.StatusUnprocessableEntity}
			continue
		}
		if n > 0 {
			s.m.batchDeduped.Add(1)
		}
		out[idx] = BatchItem{Index: idx, Lane: g.lane, Result: &resp}
	}
}
