package solve

import (
	"errors"
	"fmt"

	"rbpebble/internal/dag"
	"rbpebble/internal/pebble"
)

// ExactDFSOptions configures the depth-first exact solver.
type ExactDFSOptions struct {
	// MaxVisits caps the number of node expansions (0 = 4,000,000).
	MaxVisits int
	// InitialBound, if nonzero, seeds the branch-and-bound with a known
	// achievable scaled cost (e.g. from TopoBelady). Otherwise the solver
	// computes one itself.
	InitialBound int64
}

// ErrVisitLimit is returned when ExactDFS exceeds its visit budget.
var ErrVisitLimit = errors.New("solve: DFS visit limit exceeded")

// ExactDFS finds a provably minimum-cost pebbling by depth-first branch
// and bound with per-state memoization. It is an independent second
// implementation of the exact optimum (the first being the Dijkstra
// search in Exact) — the two cross-validate each other in the tests and
// their search behavior differs enough to serve as an ablation
// (best-first with a global frontier vs. depth-first with an upper
// bound).
//
// Supported models: oneshot and nodel, whose optimal pebblings have
// O(Δ·n) steps (Lemma 1), giving the recursion a sound depth bound. The
// base model admits no polynomial step bound; compcost admits one but
// its ε-granular costs make bound pruning ineffective — use Exact
// (best-first) for those models.
func ExactDFS(p Problem, opts ExactDFSOptions) (Solution, error) {
	if p.Model.Kind != pebble.Oneshot && p.Model.Kind != pebble.NoDel {
		return Solution{}, fmt.Errorf("solve: ExactDFS supports oneshot and nodel only, got %s", p.Model)
	}
	maxVisits := opts.MaxVisits
	if maxVisits == 0 {
		maxVisits = 4_000_000
	}
	start, err := pebble.NewState(p.G, p.Model, p.R, p.Convention)
	if err != nil {
		return Solution{}, err
	}

	// Seed the bound with an achievable solution so pruning bites early.
	bound := opts.InitialBound
	var bestMoves []pebble.Move
	if bound == 0 {
		seed, err := TopoBelady(p)
		if err != nil {
			return Solution{}, err
		}
		bound = seed.Result.Cost.Scaled(p.Model) + 1 // strict improvement wanted
		bestMoves = seed.Trace.Moves
	}

	// Depth bound from Lemma 1: optimal pebblings in these models have
	// O(Δ·n) steps; a loose constant keeps the bound sound.
	n := p.G.N()
	delta := p.G.MaxInDegree()
	if delta == 0 {
		delta = 1
	}
	factor := pebble.StepUpperBoundFactor(p.Model)
	maxDepth := factor*delta*n + n + 8

	// memo[key] = best scaled cost at which this state was ever entered;
	// re-entering at >= cost is pointless.
	memo := make(map[string]int64)
	visits := 0
	var limitErr error

	var moves []pebble.Move
	var rec func(st *pebble.State) bool // returns false on budget exhaustion
	rec = func(st *pebble.State) bool {
		if limitErr != nil {
			return false
		}
		visits++
		if visits > maxVisits {
			limitErr = fmt.Errorf("%w: %d", ErrVisitLimit, maxVisits)
			return false
		}
		cost := st.Cost().Scaled(p.Model)
		if cost >= bound {
			return true
		}
		if st.Complete() {
			bound = cost
			bestMoves = append([]pebble.Move(nil), moves...)
			return true
		}
		if st.Steps() >= maxDepth {
			return true
		}
		key := st.Key()
		if old, ok := memo[key]; ok && old <= cost {
			return true
		}
		memo[key] = cost

		for v := 0; v < n; v++ {
			node := dag.NodeID(v)
			for _, kind := range [4]pebble.MoveKind{pebble.Compute, pebble.Load, pebble.Delete, pebble.Store} {
				m := pebble.Move{Kind: kind, Node: node}
				if st.Check(m) != nil {
					continue
				}
				if prunedMove(p, st, m) {
					continue
				}
				next := st.Clone()
				if err := next.Apply(m); err != nil {
					panic("solve: Check passed but Apply failed: " + err.Error())
				}
				moves = append(moves, m)
				ok := rec(next)
				moves = moves[:len(moves)-1]
				if !ok {
					return false
				}
			}
		}
		return true
	}
	rec(start)
	if limitErr != nil {
		return Solution{}, limitErr
	}
	if bestMoves == nil {
		return Solution{}, errors.New("solve: DFS found no complete pebbling (infeasible instance?)")
	}
	tr := &pebble.Trace{Model: p.Model, R: p.R, Convention: p.Convention, Moves: bestMoves}
	return verify(p, tr), nil
}
