package rbpebble

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestBenchArtifactParses guards the committed machine-readable
// benchmark artifact: it must parse, carry the core solver rows and the
// anytime rows, and every row must be internally coherent. CI runs this
// on every push, so a bad regeneration cannot land silently.
func TestBenchArtifactParses(t *testing.T) {
	data, err := os.ReadFile("BENCH_solver.json")
	if err != nil {
		t.Fatalf("missing benchmark artifact: %v (regenerate with "+
			`go test ./internal/solve ./internal/anytime -p 1 -bench . -benchtime 1x -benchjson "$PWD"/BENCH_solver.json)`, err)
	}
	var rows []struct {
		Name           string  `json:"name"`
		NsPerOp        float64 `json:"ns_per_op"`
		BytesPerOp     float64 `json:"bytes_per_op"`
		PeakTableBytes int64   `json:"peak_table_bytes"`
		UpperScaled    int64   `json:"upper_scaled_cost"`
		LowerScaled    int64   `json:"lower_scaled_cost"`
		GapFirst       float64 `json:"gap_first_solve"`
		GapSecond      float64 `json:"gap_second_solve"`
		BatchItems     int     `json:"batch_items"`
		BatchSolves    int     `json:"batch_solves"`
		NsItemBatch    float64 `json:"ns_per_item_batch"`
		NsItemSeq      float64 `json:"ns_per_item_sequential"`
	}
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("artifact is empty")
	}
	hasAnytime, hasConvergence, hasBatch, hasMemBudget := false, false, false, false
	for _, r := range rows {
		if r.Name == "" || r.NsPerOp <= 0 {
			t.Fatalf("malformed row: %+v", r)
		}
		// The memory columns: every row reports its allocation traffic,
		// and every exact-solver row reports the peak visited-table
		// footprint (the memory the arena table actually held).
		if r.BytesPerOp <= 0 {
			t.Fatalf("row missing bytes_per_op: %+v", r)
		}
		if strings.HasPrefix(r.Name, "BenchmarkExact") && r.PeakTableBytes <= 0 {
			t.Fatalf("exact-solver row missing peak_table_bytes: %+v", r)
		}
		if strings.HasPrefix(r.Name, "BenchmarkAnytime") {
			hasAnytime = true
			if r.LowerScaled <= 0 || r.LowerScaled > r.UpperScaled {
				t.Fatalf("anytime row with incoherent interval: %+v", r)
			}
		}
		if strings.HasPrefix(r.Name, "BenchmarkBatchThroughput") {
			hasBatch = true
			// The batched request plane's contract: a batch of isomorphic
			// instances funnels to ONE canonical-class solve, and the
			// amortized per-item latency beats the no-batching fleet
			// baseline (one cold node per request) by at least 5x.
			if r.BatchItems < 16 || r.BatchSolves != 1 {
				t.Fatalf("batch row lost in-batch dedup (%d items, %d solves): %+v",
					r.BatchItems, r.BatchSolves, r)
			}
			if r.NsItemBatch <= 0 || r.NsItemSeq < 5*r.NsItemBatch {
				t.Fatalf("batch row below the 5x amortization floor (%.0f ns/item batched vs %.0f sequential): %+v",
					r.NsItemBatch, r.NsItemSeq, r)
			}
		}
		if r.Name == "BenchmarkMemBudgetAbort" {
			hasMemBudget = true
			// The memory-governance contract: the abort is not a wasted
			// solve (a certified lower bound was harvested) and the table
			// stopped at its budget (1 MiB in the benchmark) instead of
			// growing without bound — 2x covers the final arena slab
			// granted before the check tripped.
			if r.LowerScaled <= 0 {
				t.Fatalf("mem-budget row lost its certified lower bound: %+v", r)
			}
			if r.PeakTableBytes <= 0 || r.PeakTableBytes > 2<<20 {
				t.Fatalf("mem-budget row peak table %d outside (0, 2 MiB]: %+v", r.PeakTableBytes, r)
			}
		}
		if strings.HasPrefix(r.Name, "BenchmarkIntervalConvergence") {
			hasConvergence = true
			if r.LowerScaled <= 0 || r.LowerScaled > r.UpperScaled {
				t.Fatalf("convergence row with incoherent interval: %+v", r)
			}
			// Warm-starting the second solve from the first's interval
			// must never widen the certified gap.
			if r.GapSecond > r.GapFirst {
				t.Fatalf("convergence row regressed across requests: %+v", r)
			}
		}
	}
	if !hasAnytime {
		t.Fatal("artifact has no anytime rows")
	}
	if !hasConvergence {
		t.Fatal("artifact has no interval-cache convergence row")
	}
	if !hasBatch {
		t.Fatal("artifact has no batch-throughput row (regenerate with " +
			`go test ./internal/service -run '^$' -bench BenchmarkBatchThroughputPyramid -benchtime 1x -benchjson "$PWD"/BENCH_solver.json)`)
	}
	if !hasMemBudget {
		t.Fatal("artifact has no memory-budget abort row (regenerate with " +
			`go test ./internal/solve -run '^$' -bench BenchmarkMemBudgetAbort -benchtime 1x -benchjson "$PWD"/BENCH_solver.json)`)
	}
}
