// Package rbpebble is a library for red-blue pebble games — the model of
// I/O complexity on a two-level memory hierarchy — implementing the four
// model variants, constructions, reductions and algorithms of Papp &
// Wattenhofer, "On the Hardness of Red-Blue Pebble Games" (SPAA 2020).
//
// The package is a facade: it re-exports the library's stable surface
// from the internal packages so downstream users import a single path.
//
//	g := rbpebble.Pyramid(8)                     // build a workload DAG
//	p := rbpebble.Problem{G: g, Model: rbpebble.NewModel(rbpebble.Oneshot), R: 4}
//	sol, err := rbpebble.TopoBelady(p)           // heuristic pebbling
//	opt, err := rbpebble.Exact(p, rbpebble.ExactOptions{}) // exact optimum
//
// Layers:
//
//   - DAG substrate and workload generators (Pyramid, FFT, MatMul, ...)
//   - the game engine: moves, per-model legality, exact cost accounting
//   - schedulers: compute order + eviction policy → verified pebbling
//   - solvers: exact state-space search, order enumeration, greedy
//   - the paper's gadgets (CD, H2C, tradeoff DAG, greedy grid) and
//     reductions (Hamiltonian Path, Vertex Cover)
//   - the anytime layer: deadline-driven orchestration racing the
//     heuristics against the exact engines, returning certified
//     [lower, upper] intervals (Anytime, AnytimeOptions)
//   - the serving layer: instance canonicalization + solution cache
//     (CanonicalDAG) and the rbserve HTTP service (NewServer)
//   - the experiment harness regenerating every table and figure
package rbpebble

import (
	"rbpebble/internal/anytime"
	"rbpebble/internal/cluster"
	"rbpebble/internal/dag"
	"rbpebble/internal/daggen"
	"rbpebble/internal/experiments"
	"rbpebble/internal/gadgets"
	"rbpebble/internal/hampath"
	"rbpebble/internal/instcache"
	"rbpebble/internal/multilevel"
	"rbpebble/internal/parpeb"
	"rbpebble/internal/pebble"
	"rbpebble/internal/reduce"
	"rbpebble/internal/sched"
	"rbpebble/internal/service"
	"rbpebble/internal/solve"
	"rbpebble/internal/ugraph"
	"rbpebble/internal/vcover"
)

// ---- DAG substrate ----

type (
	// DAG is a directed acyclic computation graph.
	DAG = dag.DAG
	// NodeID identifies a node in a DAG.
	NodeID = dag.NodeID
	// Stats summarizes a DAG's structure.
	Stats = dag.Stats
)

// NewDAG returns a DAG with n nodes and no edges.
func NewDAG(n int) *DAG { return dag.New(n) }

// ---- Workload generators ----

var (
	// Chain returns a path DAG of n nodes.
	Chain = daggen.Chain
	// Pyramid returns the classic pebbling pyramid of the given height.
	Pyramid = daggen.Pyramid
	// BinaryTree returns a complete binary in-tree with the given levels.
	BinaryTree = daggen.BinaryTree
	// Grid returns a rows x cols dynamic-programming stencil DAG.
	Grid = daggen.Grid
	// FFT returns the 2^logN-point FFT butterfly DAG.
	FFT = daggen.FFT
	// MatMul returns the k x k matrix-multiplication DAG.
	MatMul = daggen.MatMul
	// Stencil1D returns a 1-D stencil DAG over w cells and t steps.
	Stencil1D = daggen.Stencil1D
	// RandomLayered returns a random layered DAG (seeded).
	RandomLayered = daggen.RandomLayered
	// InputGroups returns the paper's input-group pattern.
	InputGroups = daggen.InputGroups
)

// ---- Game engine ----

type (
	// Model is a red-blue pebbling cost model.
	Model = pebble.Model
	// ModelKind enumerates base, oneshot, nodel, compcost.
	ModelKind = pebble.ModelKind
	// Cost is an exact pebbling cost (transfers + computes).
	Cost = pebble.Cost
	// Move is one pebbling operation.
	Move = pebble.Move
	// MoveKind enumerates Load, Store, Compute, Delete.
	MoveKind = pebble.MoveKind
	// State is a live pebbling position.
	State = pebble.State
	// Trace is a recorded pebbling with its parameters.
	Trace = pebble.Trace
	// Result is a verified pebbling summary.
	Result = pebble.Result
	// Convention selects initial/final-state conventions (Appendix C).
	Convention = pebble.Convention
)

// Model kinds (paper Table 1).
const (
	Base     = pebble.Base
	Oneshot  = pebble.Oneshot
	NoDel    = pebble.NoDel
	CompCost = pebble.CompCost
)

// Move kinds.
const (
	Load    = pebble.Load
	Store   = pebble.Store
	Compute = pebble.Compute
	Delete  = pebble.Delete
)

var (
	// NewModel returns a model of the given kind (ε = 1/100 for compcost).
	NewModel = pebble.NewModel
	// NewState returns the initial pebbling state.
	NewState = pebble.NewState
	// NewRecorder returns a move-recording state.
	NewRecorder = pebble.NewRecorder
	// MinFeasibleR returns Δ+1, the least workable red-pebble count.
	MinFeasibleR = pebble.MinFeasibleR
	// CostUpperBound returns the universal (2Δ+1)·n bound.
	CostUpperBound = pebble.CostUpperBound
	// ReadTrace parses a serialized trace.
	ReadTrace = pebble.ReadTrace
)

// ---- Scheduling ----

type (
	// Policy is a red-pebble eviction policy.
	Policy = sched.Policy
	// SchedOptions configures Execute.
	SchedOptions = sched.Options
)

// Eviction policies.
const (
	Belady        = sched.Belady
	LRU           = sched.LRU
	FIFO          = sched.FIFO
	RandomEvict   = sched.Random
	EvictAllStore = sched.EvictAllStore
)

// Execute turns a compute order plus eviction policy into a verified
// pebbling.
var Execute = sched.Execute

// ---- Solvers ----

type (
	// Problem bundles a pebbling instance.
	Problem = solve.Problem
	// Solution is a solver output with its verified result.
	Solution = solve.Solution
	// ExactOptions configures the exact solver: state budget
	// (MaxStates), A* lower-bound tier (Heuristic: S-partition by
	// default), hash-sharded parallel expansion (Parallel workers,
	// ParallelAlgo engine — async HDA* by default, synchronous rounds
	// for ablation), search counters (Stats) and the dominance pruning
	// ablation switch (DisablePruning).
	ExactOptions = solve.ExactOptions
	// ExactStats reports search-effort counters from one Exact run
	// (states expanded, open-list pushes, distinct states reached).
	ExactStats = solve.ExactStats
	// Heuristic selects the exact solver's A* lower bound tier.
	Heuristic = solve.Heuristic
	// ParallelAlgo selects the parallel expansion engine of Exact.
	ParallelAlgo = solve.ParallelAlgo
	// DFSAlgorithm selects the depth-first exact solver's scheme.
	DFSAlgorithm = solve.DFSAlgorithm
	// ExactDFSStats reports search effort and bound progress from one
	// ExactDFS run (also populated alongside ErrVisitLimit).
	ExactDFSStats = solve.ExactDFSStats
	// PackedKey is the packed []uint64 encoding of a pebbling position
	// (State.AppendPacked/RestorePacked), the representation the exact
	// solvers key their visited tables on.
	PackedKey = pebble.PackedKey
	// OrderOptOptions configures the order-enumeration optimum.
	OrderOptOptions = solve.OrderOptOptions
	// ExactDFSOptions configures the branch-and-bound exact solver.
	ExactDFSOptions = solve.ExactDFSOptions
	// RandomOrdersOptions configures the sampling heuristic.
	RandomOrdersOptions = solve.RandomOrdersOptions
	// PortfolioOptions configures the portfolio solver.
	PortfolioOptions = solve.PortfolioOptions
	// GreedyRule enumerates the §8 greedy heuristics.
	GreedyRule = solve.GreedyRule
)

// Greedy rules (§8).
const (
	MostRedInputs    = solve.MostRedInputs
	FewestBlueInputs = solve.FewestBlueInputs
	RedRatio         = solve.RedRatio
)

// Exact-solver heuristic tiers. HeuristicAuto (the zero value) enables
// the strongest admissible bound (the Hong-Kung-style S-partition
// packing); HeuristicLowerBound is the single-certificate bound kept
// for ablation; HeuristicOff reverts to plain Dijkstra. The proven
// optimal cost is identical in every tier.
const (
	HeuristicAuto       = solve.HeuristicAuto
	HeuristicOff        = solve.HeuristicOff
	HeuristicLowerBound = solve.HeuristicLowerBound
	HeuristicSPartition = solve.HeuristicSPartition
)

// Parallel expansion engines for ExactOptions.ParallelAlgo.
// ParallelAsyncHDA (the zero value) is the asynchronous HDA*-style
// engine — per-edge mailboxes, no round barriers, counting-based
// distributed termination detection; ParallelSyncRounds keeps the
// synchronous-rounds expander as the ablation baseline.
const (
	ParallelAsyncHDA   = solve.ParallelAsyncHDA
	ParallelSyncRounds = solve.ParallelSyncRounds
)

// Depth-first solver schemes for ExactDFSOptions.Algorithm. DFSAuto
// (the zero value) runs iterative-deepening A* on f = g+h;
// DFSBranchAndBound keeps the plain branch and bound as the ablation
// baseline.
const (
	DFSAuto           = solve.DFSAuto
	DFSIDAStar        = solve.DFSIDAStar
	DFSBranchAndBound = solve.DFSBranchAndBound
)

var (
	// Exact finds a provably optimal pebbling by best-first state-space
	// search: A* under an admissible model-aware lower bound (the
	// S-partition tier by default; Dijkstra with HeuristicOff), over
	// packed states in an open-addressing table, with optional
	// hash-sharded parallel expansion (ExactOptions.Parallel workers,
	// async HDA* engine unless ParallelSyncRounds is selected).
	Exact = solve.Exact
	// OrderOpt finds the oneshot optimum by order enumeration + Belady.
	OrderOpt = solve.OrderOpt
	// Greedy runs a §8 greedy strategy.
	Greedy = solve.Greedy
	// GreedyOrder returns the compute order a greedy rule induces.
	GreedyOrder = solve.GreedyOrder
	// Topological is the naive (2Δ+1)·n baseline.
	Topological = solve.Topological
	// TopoBelady is the topological-order + Belady heuristic.
	TopoBelady = solve.TopoBelady
	// MinVisitOrder solves the minimum-cost visit-order DP (Held-Karp).
	MinVisitOrder = solve.MinVisitOrder
	// ExactDFS is the depth-first exact solver (oneshot/nodel):
	// iterative-deepening A* by default, branch and bound via
	// ExactDFSOptions.Algorithm.
	ExactDFS = solve.ExactDFS
	// RandomOrders samples random topological orders with Belady eviction.
	RandomOrders = solve.RandomOrders
	// Portfolio runs every heuristic (optionally exact search) and
	// returns the cheapest verified pebbling.
	Portfolio = solve.Portfolio
)

// ---- Anytime orchestration and serving ----

type (
	// AnytimeOptions configures the deadline-driven orchestrator
	// (budget, parallel workers, progress streaming).
	AnytimeOptions = anytime.Options
	// AnytimeResult is a certified anytime answer: the incumbent's
	// verified trace plus the [lower, upper] interval and its gap.
	AnytimeResult = anytime.Result
	// AnytimeSnapshot is one point of the anytime convergence curve,
	// streamed through AnytimeOptions.OnProgress.
	AnytimeSnapshot = anytime.Snapshot
	// AnytimeWarmStart resumes refinement from a previously certified
	// interval of the same instance (AnytimeOptions.Warm).
	AnytimeWarmStart = anytime.WarmStart
	// ExactProgress is a periodic snapshot of a running exact search
	// (ExactOptions.Progress).
	ExactProgress = solve.ExactProgress
	// ServiceConfig tunes an embedded rbserve HTTP server.
	ServiceConfig = service.Config
	// ClusterProxyConfig tunes an embedded rbproxy cluster front end.
	ClusterProxyConfig = cluster.ProxyConfig
)

var (
	// Anytime races the heuristics against the exact engines under a
	// deadline: on hard instances it returns the best incumbent trace
	// with a certified optimality gap instead of an error, and with an
	// unconstrained budget it runs to a proven optimum.
	Anytime = anytime.Solve
	// RootLowerBound returns the admissible heuristic's instant lower
	// bound on an instance's optimal scaled cost.
	RootLowerBound = solve.RootLowerBound
	// CanonicalDAG computes an isomorphism-invariant digest and
	// canonical node permutation of a DAG — the identity the rbserve
	// instance cache deduplicates on.
	CanonicalDAG = instcache.Canonical
	// NewServer builds the rbserve HTTP service (solve endpoints, job
	// queue, canonical cache, metrics) for embedding; cmd/rbserve is
	// the standalone binary.
	NewServer = service.New
	// NewClusterProxy builds the consistent-hash routing front end for
	// a fleet of rbserve replicas (canonical-key routing, failover,
	// merged metrics/health); cmd/rbproxy is the standalone binary.
	NewClusterProxy = cluster.NewProxy
	// NewRing builds a standalone consistent-hash ring (virtual nodes,
	// rendezvous tie-break) over cluster members.
	NewRing = cluster.NewRing
)

// Sentinel errors of the exact solvers.
var (
	// ErrStateLimit: Exact exhausted ExactOptions.MaxStates.
	ErrStateLimit = solve.ErrStateLimit
	// ErrVisitLimit: ExactDFS exhausted ExactDFSOptions.MaxVisits.
	ErrVisitLimit = solve.ErrVisitLimit
	// ErrCanceled: a solver's Cancel channel fired first; the stats
	// snapshot still carries the certified LowerBound it had proven.
	ErrCanceled = solve.ErrCanceled
	// ErrMemoryBudget: the visited table outgrew
	// ExactOptions.MaxTableBytes; like ErrCanceled the stats snapshot
	// keeps the certified partial interval proven up to the abort.
	ErrMemoryBudget = solve.ErrMemoryBudget
	// ErrInfeasible: the instance admits no complete pebbling.
	ErrInfeasible = solve.ErrInfeasible
)

// ---- Gadgets and constructions ----

type (
	// Tradeoff is the Figure 3 time-memory tradeoff DAG.
	Tradeoff = gadgets.Tradeoff
	// CD is the constant-degree gadget of Figure 1.
	CD = gadgets.CD
	// H2C is the hard-to-compute gadget of Figure 2.
	H2C = gadgets.H2C
	// GreedyGrid is the Figure 8 misguidance grid.
	GreedyGrid = gadgets.GreedyGrid
	// GridPos addresses a greedy-grid input group.
	GridPos = gadgets.GridPos
)

var (
	// NewTradeoff builds the Figure 3 DAG.
	NewTradeoff = gadgets.NewTradeoff
	// NewCD builds a standalone CD gadget.
	NewCD = gadgets.NewCD
	// AttachCD splices a CD gadget into an existing DAG.
	AttachCD = gadgets.AttachCD
	// AttachH2C protects source nodes with a shared H2C gadget.
	AttachH2C = gadgets.AttachH2C
	// SingleSource applies the §3 single-source transformation.
	SingleSource = gadgets.SingleSource
	// ConstantDegree rewrites a DAG to maximum indegree 2 (Appendix B).
	ConstantDegree = gadgets.ConstantDegree
	// NewGreedyGrid builds the Theorem 4 grid.
	NewGreedyGrid = gadgets.NewGreedyGrid
)

// ---- Source problems and reductions ----

type (
	// UGraph is an undirected simple graph.
	UGraph = ugraph.Graph
	// HamPathReduction is the Theorem 2 instance.
	HamPathReduction = reduce.HamPath
	// VertexCoverReduction is the Theorem 3 instance.
	VertexCoverReduction = reduce.VertexCover
	// Visit identifies a group visit in the Vertex Cover reduction.
	Visit = reduce.Visit
)

var (
	// NewUGraph returns an empty undirected graph.
	NewUGraph = ugraph.New
	// RandomUGraph returns a G(n,p) graph.
	RandomUGraph = ugraph.Random
	// SolveHamPath decides Hamiltonian Path exactly (Held-Karp).
	SolveHamPath = hampath.Solve
	// ExactVertexCover returns a minimum vertex cover.
	ExactVertexCover = vcover.Exact
	// TwoApproxVertexCover returns the matching 2-approximation.
	TwoApproxVertexCover = vcover.TwoApprox
	// NewHamPathReduction builds the Theorem 2 pebbling instance.
	NewHamPathReduction = reduce.NewHamPath
	// NewVertexCoverReduction builds the Theorem 3 pebbling instance.
	NewVertexCoverReduction = reduce.NewVertexCover
)

// ---- Extensions: multi-level hierarchies and multi-processor games ----

type (
	// Hierarchy describes a multi-level memory system (levels beyond
	// two; the classic game is Hierarchy{Limits: []int{R}, Costs: []int{1}}).
	Hierarchy = multilevel.Hierarchy
	// ParallelConfig describes a multi-processor pebbling machine.
	ParallelConfig = parpeb.Config
	// ParallelAssignment maps nodes to processors.
	ParallelAssignment = parpeb.Assignment
)

var (
	// NewHierarchy validates and builds a multi-level hierarchy.
	NewHierarchy = multilevel.NewHierarchy
	// ExecuteMultilevel pebbles a DAG on a multi-level hierarchy.
	ExecuteMultilevel = multilevel.Execute
	// ExecuteParallel pebbles a DAG on a multi-processor machine.
	ExecuteParallel = parpeb.Execute
	// RoundRobinAssignment spreads nodes cyclically over processors.
	RoundRobinAssignment = parpeb.RoundRobin
	// BlockAssignment splits the order into contiguous per-processor blocks.
	BlockAssignment = parpeb.Blocks
)

// ---- Experiments ----

type (
	// Report is one regenerated paper table or figure.
	Report = experiments.Report
)

var (
	// AllExperiments regenerates every table and figure.
	AllExperiments = experiments.All
	// RunAllExperiments renders every report to a writer.
	RunAllExperiments = experiments.RunAll
)
