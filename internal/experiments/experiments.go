// Package experiments regenerates every table and figure of Papp &
// Wattenhofer (SPAA 2020) from the library's implementations: the model
// summaries (Tables 1-2), the gadget cost claims (Figures 1-2), the
// time-memory tradeoff diagram (Figures 3-4, Appendix A.1), the
// NP-hardness reduction thresholds (Figure 5 / Theorem 2), the Vertex
// Cover inapproximability slope (Figures 6-7 / Theorem 3), the greedy
// separation grid (Figure 8 / Theorem 4), the Lemma 1 pebbling-length
// bound, the Appendix C convention shifts, and ablations of the solver
// design choices.
//
// Every experiment returns a Report: a table of rows plus commentary
// comparing measurement against the paper's claim. Reports render as
// aligned text for the rbexp CLI and the root benchmark harness.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// ExactParallelism, when set > 1, makes every exact solve inside the
// harness expand states with that many hash-sharded workers (forwarded
// to solve.ExactOptions.Parallel; the asynchronous HDA* engine by
// default, the synchronous-rounds engine with ExactSyncRounds). The
// regenerated costs are identical — only wall-clock time changes.
// Experiments that publish search-effort counters (Ablations B and D)
// always solve with their own fixed configurations so their
// states-expanded columns stay comparable. The rbexp CLI exposes these
// as -exact-workers and -exact-sync.
var ExactParallelism int

// ExactSyncRounds selects the synchronous-rounds parallel engine for
// harness solves instead of the default async HDA* (only meaningful
// with ExactParallelism > 1).
var ExactSyncRounds bool

// Report is one regenerated table or figure.
type Report struct {
	// ID names the artifact in the paper ("Table 1", "Figure 4", ...).
	ID string
	// Title describes what is being measured.
	Title string
	// Claim restates the paper's prediction.
	Claim string
	// Header labels the columns.
	Header []string
	// Rows holds the measurements.
	Rows [][]string
	// Verdict summarizes measurement vs. claim.
	Verdict string
}

// Render formats the report as aligned text.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s — %s ===\n", r.ID, r.Title)
	if r.Claim != "" {
		fmt.Fprintf(&b, "paper claim: %s\n", r.Claim)
	}
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	if len(r.Header) > 0 {
		fmt.Fprintln(tw, strings.Join(r.Header, "\t"))
	}
	for _, row := range r.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	if r.Verdict != "" {
		fmt.Fprintf(&b, "verdict: %s\n", r.Verdict)
	}
	return b.String()
}

// WriteTo writes the rendered report followed by a blank line.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	n, err := io.WriteString(w, r.Render()+"\n")
	return int64(n), err
}

// itoa and ftoa keep row building terse.
func itoa(v int) string     { return fmt.Sprintf("%d", v) }
func ftoa(v float64) string { return fmt.Sprintf("%.2f", v) }
func btoa(v bool) string    { return fmt.Sprintf("%t", v) }

// All runs every experiment with its default (fast) parameters in paper
// order. The full parameter sweeps live in the individual constructors.
func All() []*Report {
	return []*Report{
		Table1(),
		Table2(),
		Fig1CD(DefaultFig1Params()),
		Fig2H2C(),
		Fig4Tradeoff(DefaultTradeoffParams()),
		Thm2HamPath(DefaultThm2Params()),
		Thm3VertexCover(DefaultThm3Params()),
		Thm4Greedy(DefaultThm4Params()),
		Lemma1Length(DefaultLemma1Params()),
		Conventions(),
		AblationEviction(),
		AblationExactPruning(),
		AblationGreedyRules(),
		AblationAsyncScaling(),
		AblationAnytime(),
		Multilevel(),
		ParallelPebbling(),
	}
}

// RunAll renders every report to w.
func RunAll(w io.Writer) error {
	for _, r := range All() {
		if _, err := r.WriteTo(w); err != nil {
			return err
		}
	}
	return nil
}
