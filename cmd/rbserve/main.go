// Command rbserve serves red-blue pebbling solves over HTTP: a JSON API
// backed by the anytime orchestrator, a canonical instance cache with
// singleflight deduplication, and a worker-pool job queue for async
// requests.
//
// Usage:
//
//	rbserve -addr :8080
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/solve -d '{
//	    "dag": {"nodes": 3, "edges": [[0,2],[1,2]]},
//	    "model": "oneshot", "r": 3, "deadline_ms": 1000}'
//	curl -s localhost:8080/metrics
//
// Hard instances return a certified [lower, upper] interval when the
// deadline fires; repeated and concurrent identical instances (under
// any node numbering) share one solve through the cache.
//
// Every request is traced end to end (X-Rbpebble-Trace): span trees are
// served from GET /debug/trace/{id}, per-solve telemetry records from
// GET /debug/solves, and -telemetry-log appends each record as JSONL
// for offline scheduler training. Running async jobs additionally
// expose live engine introspection on GET /debug/jobs/{id}/search and
// per-job search gauges on /metrics; -search-log appends every sampled
// snapshot as JSONL. -pprof-addr exposes net/http/pprof on a separate
// listener.
//
// With -join, the node registers itself with an rbproxy's membership
// API, heartbeats its lease, replicates freshly stored cache entries to
// its ring successor, and on SIGTERM hands its cache off before
// leaving:
//
//	rbserve -addr :8081 -join 127.0.0.1:8080
//
// With -refine-interval, an idle node re-solves its widest cached
// certified intervals at escalating budgets in the background
// (preempted instantly by foreground work; see GET /debug/refiner),
// and -mem-budget caps per-solve table memory — over-budget solves
// abort with a certified partial interval instead of swelling the
// heap.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"rbpebble/internal/cluster"
	"rbpebble/internal/instcache"
	"rbpebble/internal/obs"
	"rbpebble/internal/service"
)

func main() {
	var (
		addr           = flag.String("addr", ":8080", "listen address")
		workers        = flag.Int("workers", 2, "async job worker-pool size")
		queueDepth     = flag.Int("queue", 64, "async job queue depth")
		cacheSize      = flag.Int("cache", 256, "solution cache entries (LRU)")
		deadline       = flag.Duration("deadline", 2*time.Second, "default per-request solve budget")
		maxDeadline    = flag.Duration("max-deadline", 30*time.Second, "largest accepted per-request budget")
		solveWorkers   = flag.Int("solve-workers", 1, "parallel expansion workers inside each exact solve")
		maxNodes       = flag.Int("max-nodes", 100000, "largest accepted instance")
		grace          = flag.Duration("grace", 10*time.Second, "graceful-shutdown window for in-flight solves on SIGTERM")
		join           = flag.String("join", "", "rbproxy address (host:port) to register with for dynamic membership")
		advertise      = flag.String("advertise", "", "address other cluster members reach this node at (default: 127.0.0.1 + -addr port)")
		batchItems     = flag.Int("batch-items", 256, "largest accepted POST /solve/batch item count")
		canonWorkers   = flag.Int("canon-workers", 0, "batch canonicalization pool size (0 = GOMAXPROCS)")
		fastWorkers    = flag.Int("fast-workers", 4, "fast-lane workers (cache-served and sub-budget batch groups)")
		heavyWorkers   = flag.Int("heavy-workers", 2, "heavy-lane workers (exact-solve batch groups)")
		fastQueue      = flag.Int("fast-queue", 256, "fast-lane queue depth before shedding")
		heavyQueue     = flag.Int("heavy-queue", 64, "heavy-lane queue depth before shedding")
		fastBudget     = flag.Duration("fast-budget", 150*time.Millisecond, "largest per-item deadline the fast lane accepts for uncached work")
		memBudget      = flag.Int64("mem-budget", 0, "per-solve visited-table memory budget in bytes (0 = unlimited); solves over budget abort with a certified partial interval, background refinement runs at half")
		refineInterval = flag.Duration("refine-interval", 0, "background refiner idle scan cadence (0 = disabled)")
		refineMaxTier  = flag.Int("refine-max-tier", 12, "highest budget tier background refinement may escalate a cached interval to")
		logFormat      = flag.String("log-format", "text", "structured log format: text or json")
		pprofAddr      = flag.String("pprof-addr", "", "listen address for net/http/pprof (empty = disabled)")
		telemetryLog   = flag.String("telemetry-log", "", "append per-solve telemetry records as JSONL to this file")
		searchLog      = flag.String("search-log", "", "append live search-engine snapshots as JSONL to this file")
		logMaxBytes    = flag.Int64("log-max-bytes", 0, "rotate the -telemetry-log and -search-log files at this size (0 = never rotate)")
		logKeep        = flag.Int("log-keep", 3, "rotated generations to keep per JSONL log")
		traceCap       = flag.Int("trace-cap", 0, "retained solve traces for /debug/trace (0 = default 256)")
		telemetryCap   = flag.Int("telemetry-cap", 0, "retained telemetry records for /debug/solves (0 = default 512)")
	)
	flag.Parse()

	logger := obs.NewLogger(*logFormat, os.Stderr)
	slog.SetDefault(logger)

	// JSONL sinks append forever by default; -log-max-bytes switches them
	// to size-rotated writers so a long-lived node's telemetry cannot
	// fill the disk.
	openSink := func(path, name string) io.Writer {
		var (
			w   io.WriteCloser
			err error
		)
		if *logMaxBytes > 0 {
			w, err = obs.NewRotatingWriter(path, *logMaxBytes, *logKeep)
		} else {
			w, err = os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rbserve: %s: %v\n", name, err)
			os.Exit(1)
		}
		return w
	}
	var telemetrySink io.Writer
	if *telemetryLog != "" {
		w := openSink(*telemetryLog, "telemetry-log")
		defer w.(io.Closer).Close()
		telemetrySink = w
	}
	var searchSink io.Writer
	if *searchLog != "" {
		w := openSink(*searchLog, "search-log")
		defer w.(io.Closer).Close()
		searchSink = w
	}

	// The agent pointer is set only in -join mode, after the server
	// exists; the Replicate hook must tolerate both windows.
	var agentPtr atomic.Pointer[cluster.Agent]

	s := service.New(service.Config{
		Workers:          *workers,
		QueueDepth:       *queueDepth,
		CacheSize:        *cacheSize,
		DefaultDeadline:  *deadline,
		MaxDeadline:      *maxDeadline,
		SolveWorkers:     *solveWorkers,
		MaxNodes:         *maxNodes,
		GracePeriod:      *grace,
		MaxBatchItems:    *batchItems,
		CanonWorkers:     *canonWorkers,
		FastLaneWorkers:  *fastWorkers,
		HeavyLaneWorkers: *heavyWorkers,
		FastLaneQueue:    *fastQueue,
		HeavyLaneQueue:   *heavyQueue,
		FastLaneBudget:   *fastBudget,
		MaxTableBytes:    *memBudget,
		RefinerInterval:  *refineInterval,
		RefinerMaxTier:   *refineMaxTier,
		TraceCap:         *traceCap,
		TelemetryCap:     *telemetryCap,
		TelemetrySink:    telemetrySink,
		SearchSink:       searchSink,
		Logger:           logger,
		Replicate: func(e instcache.Entry) {
			if a := agentPtr.Load(); a != nil {
				a.Replicate(e)
			}
		},
		// Ownership filter for the background refiner: only keys this
		// node would be routed anyway are worth its idle cycles. Solo (or
		// pre-join) nodes own everything.
		RefinerOwns: func(key string) bool {
			if a := agentPtr.Load(); a != nil {
				return a.Owns(key)
			}
			return true
		},
	})
	srv := &http.Server{Addr: *addr, Handler: obs.AccessLog(logger, s.Handler())}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("rbserve: listening",
		slog.String("addr", *addr), slog.Duration("deadline", *deadline),
		slog.Int("cache", *cacheSize), slog.Int("workers", *workers))

	if *pprofAddr != "" {
		// pprof lives on its own listener and mux so profiling stays off
		// the public API surface (and off the proxy's routing paths).
		go func() {
			logger.Info("rbserve: pprof listening", slog.String("addr", *pprofAddr))
			if err := http.ListenAndServe(*pprofAddr, obs.PprofMux()); err != nil {
				logger.Warn("rbserve: pprof listener failed", slog.Any("err", err))
			}
		}()
	}

	if *join != "" {
		self := *advertise
		if self == "" {
			if strings.HasPrefix(*addr, ":") {
				self = "127.0.0.1" + *addr
			} else {
				self = *addr
			}
		}
		agentPtr.Store(cluster.NewAgent(cluster.AgentConfig{
			Proxy:  *join,
			Self:   self,
			Export: s.ExportCache,
			Logf: func(format string, args ...any) {
				logger.Info(fmt.Sprintf(format, args...))
			},
		}))
		logger.Info("rbserve: joining cluster", slog.String("proxy", *join), slog.String("self", self))
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "rbserve:", err)
		os.Exit(1)
	case sig := <-sigc:
		// Graceful node lifecycle: fail /healthz FIRST (and announce the
		// drain to the proxy immediately, if joined) so routing stops
		// sending work here, then let in-flight HTTP requests and async
		// jobs finish within the grace window — solves still running at
		// its end are canceled cooperatively and land their partial
		// certified intervals in the cache, where the handoff picks them
		// up.
		logger.Info("rbserve: draining", slog.String("signal", sig.String()), slog.Duration("grace", *grace))
		s.Drain()
		agent := agentPtr.Load()
		if agent != nil {
			agent.SetDraining(true)
		}
		// One grace window covers ALL teardown steps: the HTTP listener
		// drain, the async worker drain, and (when joined) the cache
		// handoff share the deadline, so the total never exceeds -grace
		// (an operator aligning it with e.g. a kubelet termination grace
		// must not see it spent twice). A slice of the window is reserved
		// for the handoff so the drain cannot starve it.
		reserve := time.Duration(0)
		if agent != nil {
			reserve = *grace / 5
			if reserve < 250*time.Millisecond {
				reserve = 250 * time.Millisecond
			}
			if reserve > 3*time.Second {
				reserve = 3 * time.Second
			}
		}
		deadline := time.Now().Add(*grace)
		ctx, cancel := context.WithDeadline(context.Background(), deadline.Add(-reserve))
		if err := srv.Shutdown(ctx); err != nil {
			logger.Warn("rbserve: http shutdown", slog.Any("err", err))
		}
		cancel()
		s.ShutdownWithin(time.Until(deadline) - reserve)
		if agent != nil {
			hctx, hcancel := context.WithDeadline(context.Background(), deadline)
			if n, err := agent.Handoff(hctx); err != nil {
				logger.Warn("rbserve: cache handoff failed", slog.Any("err", err))
			} else {
				logger.Info("rbserve: cache handed off", slog.Int("entries", n))
			}
			if err := agent.Leave(hctx); err != nil {
				logger.Warn("rbserve: cluster leave failed", slog.Any("err", err))
			}
			hcancel()
			agent.Stop()
		}
		logger.Info("rbserve: drained, exiting")
	}
}
