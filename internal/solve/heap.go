package solve

// heapEntry is one open-list entry of the best-first search: f is the
// priority (g plus the admissible lower bound; equal to g when the
// heuristic is off), g the exact scaled path cost, and node the index of
// the searchNode that reached the state.
type heapEntry struct {
	f    int64
	g    int64
	node int32
}

// openHeap is a typed binary min-heap of heapEntry, ordered by f with
// ties broken toward larger g (deeper states first), which crosses the
// zero-cost compute/delete plateaus of the base model sooner. It
// replaces the container/heap-based costHeap of the original solver:
// push and pop move concrete values, with no interface boxing and no
// per-entry allocation.
type openHeap struct {
	a []heapEntry
}

func entryLess(x, y heapEntry) bool {
	if x.f != y.f {
		return x.f < y.f
	}
	return x.g > y.g
}

func (h *openHeap) len() int { return len(h.a) }

func (h *openHeap) push(e heapEntry) {
	h.a = append(h.a, e)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !entryLess(h.a[i], h.a[p]) {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *openHeap) pop() heapEntry {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && entryLess(h.a[l], h.a[small]) {
			small = l
		}
		if r < last && entryLess(h.a[r], h.a[small]) {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return top
}
