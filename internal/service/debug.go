package service

import (
	"net/http"
	"strconv"

	"rbpebble/internal/obs"
)

// SolvesDebugResponse is the GET /debug/solves body: the most recent
// per-solve telemetry records, newest first, plus the all-time count
// (including records the ring has since evicted). The cluster proxy
// fans this endpoint across the fleet and merges the rings.
type SolvesDebugResponse struct {
	Total   uint64            `json:"total"`
	Records []obs.SolveRecord `json:"records"`
}

// handleDebugSolves serves the telemetry ring: GET /debug/solves?n=K
// returns the K most recent records (all retained records when n is
// absent or non-positive).
func (s *Server) handleDebugSolves(w http.ResponseWriter, r *http.Request) {
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	recs := s.tel.Recent(n)
	if recs == nil {
		recs = []obs.SolveRecord{}
	}
	writeJSON(w, SolvesDebugResponse{Total: s.tel.Total(), Records: recs})
}

// handleDebugTrace serves one retained trace's span tree:
// GET /debug/trace/{id}.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	tr := s.recorder.Lookup(r.PathValue("id"))
	if tr == nil {
		httpError(w, http.StatusNotFound, "unknown trace")
		return
	}
	writeJSON(w, tr.View())
}
