package parpeb

import (
	"testing"
	"testing/quick"

	"rbpebble/internal/dag"
	"rbpebble/internal/daggen"
	"rbpebble/internal/pebble"
	"rbpebble/internal/sched"
)

func topo(t *testing.T, g *dag.DAG) []dag.NodeID {
	t.Helper()
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	return order
}

func TestConfigValidation(t *testing.T) {
	g := daggen.Pyramid(2)
	for i, cfg := range []Config{
		{P: 0, R: 4},
		{P: 2, R: 0},
		{P: 2, R: 2}, // < Δ+1
	} {
		if err := cfg.Validate(g); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := (Config{P: 2, R: 3}).Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestStateLegality(t *testing.T) {
	g := dag.New(3)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	cfg := Config{P: 2, R: 3, Oneshot: true}
	st, err := NewState(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Compute requires inputs resident on the SAME processor.
	st.MustApply(Move{Kind: Compute, Proc: 0, Node: 0})
	st.MustApply(Move{Kind: Compute, Proc: 1, Node: 1})
	if err := st.Apply(Move{Kind: Compute, Proc: 0, Node: 2}); err == nil {
		t.Fatal("compute with remote input accepted")
	}
	// Communicate node 1 from proc 1 to proc 0.
	st.MustApply(Move{Kind: Store, Proc: 1, Node: 1})
	st.MustApply(Move{Kind: Load, Proc: 0, Node: 1})
	st.MustApply(Move{Kind: Compute, Proc: 0, Node: 2})
	if st.TotalCost() != 2 {
		t.Fatalf("communication cost = %d, want 2", st.TotalCost())
	}
	if st.PerProcCost()[0] != 1 || st.PerProcCost()[1] != 1 {
		t.Fatalf("per-proc costs = %v", st.PerProcCost())
	}
	if !st.Complete() {
		t.Fatal("should be complete")
	}
	// Oneshot: no recomputation anywhere.
	st.MustApply(Move{Kind: Drop, Proc: 1, Node: 1})
	if err := st.Apply(Move{Kind: Compute, Proc: 1, Node: 1}); err == nil {
		t.Fatal("oneshot recompute accepted")
	}
	// Redundant store rejected; load of resident value rejected.
	if err := st.Apply(Move{Kind: Store, Proc: 0, Node: 1}); err == nil {
		t.Fatal("duplicate store accepted")
	}
	if err := st.Apply(Move{Kind: Load, Proc: 0, Node: 1}); err == nil {
		t.Fatal("load of resident value accepted")
	}
}

func TestSingleProcCheaperThanSequentialGame(t *testing.T) {
	// With persistent slow-memory copies, the P=1 parallel game never
	// costs more than the classic oneshot game on the same order.
	for seed := int64(0); seed < 6; seed++ {
		g := daggen.RandomLayered(4, 4, 2, seed)
		order := topo(t, g)
		r := pebble.MinFeasibleR(g)
		_, classic, err := sched.Execute(g, pebble.NewModel(pebble.Oneshot), r, pebble.Convention{}, order, sched.Options{Policy: sched.Belady})
		if err != nil {
			t.Fatal(err)
		}
		_, par, err := Execute(g, Config{P: 1, R: r, Oneshot: true}, order, SingleProc(g.N()))
		if err != nil {
			t.Fatal(err)
		}
		if par.Total > classic.Cost.Transfers {
			t.Fatalf("seed %d: P=1 parallel %d > sequential %d", seed, par.Total, classic.Cost.Transfers)
		}
	}
}

func TestCommunicationGrowsWithProcessors(t *testing.T) {
	// Round-robin over more processors cuts more edges and must move
	// more data on the FFT (every level talks to the previous one).
	g := daggen.FFT(4)
	order := topo(t, g)
	r := 8
	var prevCross int
	for _, p := range []int{1, 2, 4} {
		cfg := Config{P: p, R: r, Oneshot: true}
		_, res, err := Execute(g, cfg, order, RoundRobin(order, g.N(), p))
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if !res.Complete {
			t.Fatalf("P=%d incomplete", p)
		}
		if p > 1 && res.CrossEdges <= prevCross {
			t.Fatalf("cross edges did not grow: %d -> %d", prevCross, res.CrossEdges)
		}
		prevCross = res.CrossEdges
	}
}

func TestBlocksBeatRoundRobinOnChain(t *testing.T) {
	// On a chain, contiguous blocks cut P-1 edges; round-robin cuts all
	// of them. Block assignment must communicate far less.
	g := daggen.Chain(60)
	order := topo(t, g)
	cfg := Config{P: 4, R: 2, Oneshot: true}
	_, blocks, err := Execute(g, cfg, order, Blocks(order, g.N(), 4))
	if err != nil {
		t.Fatal(err)
	}
	_, rr, err := Execute(g, cfg, order, RoundRobin(order, g.N(), 4))
	if err != nil {
		t.Fatal(err)
	}
	if blocks.Total >= rr.Total {
		t.Fatalf("blocks %d >= round-robin %d", blocks.Total, rr.Total)
	}
	if blocks.CrossEdges != 3 {
		t.Fatalf("chain blocks cut %d edges, want 3", blocks.CrossEdges)
	}
}

func TestMaxProcLeTotal(t *testing.T) {
	g := daggen.Grid(5, 5)
	order := topo(t, g)
	cfg := Config{P: 3, R: 4, Oneshot: true}
	_, res, err := Execute(g, cfg, order, RoundRobin(order, g.N(), 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxProc > res.Total {
		t.Fatal("max per-proc exceeds total")
	}
	sum := 0
	for _, c := range res.PerProc {
		sum += c
	}
	if sum != res.Total {
		t.Fatalf("per-proc sum %d != total %d", sum, res.Total)
	}
}

func TestAssignmentValidation(t *testing.T) {
	g := daggen.Chain(4)
	order := topo(t, g)
	cfg := Config{P: 2, R: 2, Oneshot: true}
	if _, _, err := Execute(g, cfg, order, Assignment{0, 1}); err == nil {
		t.Fatal("short assignment accepted")
	}
	if _, _, err := Execute(g, cfg, order, Assignment{0, 1, 5, 0}); err == nil {
		t.Fatal("invalid processor accepted")
	}
	if _, _, err := Execute(g, cfg, []dag.NodeID{3, 2, 1, 0}, SingleProc(4)); err == nil {
		t.Fatal("anti-topological order accepted")
	}
}

func TestReplayRejectsCorrupt(t *testing.T) {
	g := daggen.Chain(2)
	cfg := Config{P: 1, R: 2, Oneshot: true}
	if _, err := Replay(g, cfg, []Move{{Kind: Load, Proc: 0, Node: 0}}); err == nil {
		t.Fatal("bad trace accepted")
	}
	if _, err := Replay(g, cfg, []Move{{Kind: Compute, Proc: 0, Node: 0}}); err == nil {
		t.Fatal("incomplete trace accepted")
	}
}

// Property: for random layered DAGs, random processor counts and both
// assignment strategies, Execute produces verified complete pebblings
// whose per-processor costs sum to the total.
func TestQuickExecuteLegal(t *testing.T) {
	f := func(seed int64, a, b uint8) bool {
		g := daggen.RandomLayered(3, 4, 2, seed)
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		p := int(a%3) + 1
		r := pebble.MinFeasibleR(g) + int(b%2)
		cfg := Config{P: p, R: r, Oneshot: true}
		for _, assign := range []Assignment{
			RoundRobin(order, g.N(), p),
			Blocks(order, g.N(), p),
		} {
			_, res, err := Execute(g, cfg, order, assign)
			if err != nil || !res.Complete {
				return false
			}
			sum := 0
			for _, c := range res.PerProc {
				sum += c
			}
			if sum != res.Total || res.MaxProc > res.Total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMoveStrings(t *testing.T) {
	if (Move{Kind: Store, Proc: 1, Node: 7}).String() != "p1:store(7)" {
		t.Fatal("move string wrong")
	}
	if MoveKind(9).String() == "" {
		t.Fatal("unknown kind should render")
	}
}

func BenchmarkExecuteFFT4Procs(b *testing.B) {
	g := daggen.FFT(5)
	order, _ := g.TopoOrder()
	cfg := Config{P: 4, R: 8, Oneshot: true}
	assign := RoundRobin(order, g.N(), 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Execute(g, cfg, order, assign); err != nil {
			b.Fatal(err)
		}
	}
}
