package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rbpebble/internal/daggen"
	"rbpebble/internal/instcache"
	"rbpebble/internal/service"
)

// elasticNode is an rbserve node on a REAL listener (so it can be
// hard-killed and restarted on the same address), joined to a proxy
// through a membership agent — the in-process equivalent of
// `rbserve -join`.
type elasticNode struct {
	addr     string
	svc      *service.Server
	srv      *http.Server
	agent    *Agent
	agentPtr atomic.Pointer[Agent]
}

// startNode boots a node listening on addr ("127.0.0.1:0" for a fresh
// port, or a previous node's addr to simulate a restart) and joins it
// to the proxy at proxyAddr.
func startNode(t *testing.T, addr, proxyAddr string) *elasticNode {
	t.Helper()
	n := &elasticNode{}
	n.svc = service.New(service.Config{Replicate: func(e instcache.Entry) {
		if a := n.agentPtr.Load(); a != nil {
			a.Replicate(e)
		}
	}})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	n.addr = ln.Addr().String()
	n.srv = &http.Server{Handler: n.svc.Handler()}
	go n.srv.Serve(ln)
	n.agent = NewAgent(AgentConfig{
		Proxy:          proxyAddr,
		Self:           n.addr,
		Export:         n.svc.ExportCache,
		RejoinInterval: 50 * time.Millisecond,
		Comm:           NewComm(CommConfig{AttemptTimeout: 5 * time.Second, MaxAttempts: 2, BackoffBase: 10 * time.Millisecond}),
	})
	n.agentPtr.Store(n.agent)
	return n
}

// hardKill simulates a crash: connections die mid-flight, heartbeats
// stop, no drain, no handoff, no goodbye.
func (n *elasticNode) hardKill() {
	n.agent.Stop()
	n.srv.Close()
	n.svc.Close()
}

// drain runs the full graceful SIGTERM sequence: fail healthz + flag
// the drain, quiesce HTTP and workers (partial intervals land in the
// cache), hand the cache off, leave, stop.
func (n *elasticNode) drain(t *testing.T) {
	t.Helper()
	n.svc.Drain()
	n.agent.SetDraining(true)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	n.srv.Shutdown(ctx)
	n.svc.ShutdownWithin(2 * time.Second)
	if _, err := n.agent.Handoff(ctx); err != nil {
		t.Fatalf("handoff: %v", err)
	}
	if err := n.agent.Leave(ctx); err != nil {
		t.Fatalf("leave: %v", err)
	}
	n.agent.Stop()
}

// elasticCluster is a live-probing, lease-sweeping proxy plus n
// dynamically joined nodes.
type elasticCluster struct {
	proxy     *Proxy
	ts        *httptest.Server
	proxyAddr string
	nodes     []*elasticNode
}

func newElasticCluster(t *testing.T, n int) *elasticCluster {
	t.Helper()
	ec := &elasticCluster{}
	ec.proxy = NewProxy(ProxyConfig{
		ProbeInterval: 50 * time.Millisecond,
		MemberTTL:     time.Second,
		Comm: CommConfig{
			AttemptTimeout:   10 * time.Second,
			MaxAttempts:      2,
			BackoffBase:      5 * time.Millisecond,
			BreakerThreshold: 3,
			BreakerCooldown:  250 * time.Millisecond,
		},
	})
	ec.ts = httptest.NewServer(ec.proxy.Handler())
	ec.proxyAddr = strings.TrimPrefix(ec.ts.URL, "http://")
	for i := 0; i < n; i++ {
		ec.nodes = append(ec.nodes, startNode(t, "127.0.0.1:0", ec.proxyAddr))
	}
	t.Cleanup(func() {
		ec.ts.Close()
		ec.proxy.Close()
	})
	ec.waitFor(t, 5*time.Second, func() bool {
		if ec.proxy.Membership().Size() != n {
			return false
		}
		for m, healthy := range ec.proxy.Ring().Members() {
			_ = m
			if !healthy {
				return false
			}
		}
		return true
	}, "all nodes joined and healthy")
	return ec
}

func (ec *elasticCluster) waitFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func (ec *elasticCluster) post(t *testing.T, body string) (int, service.SolveResponse, string) {
	t.Helper()
	resp, err := http.Post(ec.ts.URL+"/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr service.SolveResponse
	json.NewDecoder(resp.Body).Decode(&sr)
	return resp.StatusCode, sr, resp.Header.Get("X-Rbproxy-Node")
}

// node returns the cluster node at addr, plus any one OTHER live node.
func (ec *elasticCluster) node(t *testing.T, addr string) (at *elasticNode, other *elasticNode) {
	t.Helper()
	for _, n := range ec.nodes {
		if n.addr == addr {
			at = n
		} else if other == nil {
			other = n
		}
	}
	if at == nil {
		t.Fatalf("no cluster node at %s", addr)
	}
	return at, other
}

func (ec *elasticCluster) proxyMetric(t *testing.T, name string) int {
	t.Helper()
	resp, err := http.Get(ec.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		k, err := resp.Body.Read(buf)
		sb.Write(buf[:k])
		if err != nil {
			break
		}
	}
	for _, line := range strings.Split(sb.String(), "\n") {
		var v int
		if _, err := fmt.Sscanf(line, name+" %d", &v); err == nil {
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, sb.String())
	return 0
}

// TestFaultReplicationSurvivesHardKill: a proven optimum is replicated
// to the key's next ring owner on store, so a hard crash of the owner
// — no drain, no handoff — still leaves the entry servable: the
// retried request fails over and is a cache hit on the replica.
func TestFaultReplicationSurvivesHardKill(t *testing.T) {
	ec := newElasticCluster(t, 2)
	body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3}`, dagJSON(t, daggen.Pyramid(4)))

	code, sr, owner := ec.post(t, body)
	if code != http.StatusOK || !sr.Optimal {
		t.Fatalf("seed solve: code=%d sr=%+v", code, sr)
	}
	victim, survivor := ec.node(t, owner)

	// Replication is asynchronous: wait for the optimum to land on the
	// surviving replica before crashing the owner.
	ec.waitFor(t, 5*time.Second, func() bool {
		return len(survivor.svc.ExportCache()) >= 1
	}, "optimum replicated to the survivor")
	if got := ec.proxyMetric(t, "cluster_replicated_entries_total"); got < 1 {
		t.Fatalf("cluster_replicated_entries_total = %d, want >= 1", got)
	}

	victim.hardKill()
	code, sr, node := ec.post(t, body)
	if code != http.StatusOK {
		t.Fatalf("post-crash solve: code=%d", code)
	}
	if node != survivor.addr {
		t.Fatalf("post-crash request served by %s, want survivor %s", node, survivor.addr)
	}
	if !sr.Cached || !sr.Optimal {
		t.Fatalf("replica should serve the replicated optimum as a hit: %+v", sr)
	}

	// With heartbeats stopped, the lease lapses and the dead node is
	// expired off the ring entirely.
	ec.waitFor(t, 5*time.Second, func() bool {
		return ec.proxy.Membership().Size() == 1
	}, "dead node expired off the ring")
}

// TestFaultDrainHandoffWarmStart: a draining node hands its certified
// intervals to ring successors, so the next request for a handed-off
// key warm-starts refinement on the successor — interval no wider —
// instead of searching from scratch.
func TestFaultDrainHandoffWarmStart(t *testing.T) {
	ec := newElasticCluster(t, 2)
	body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3,"deadline_ms":120}`, dagJSON(t, daggen.FFT(3)))

	code, first, owner := ec.post(t, body)
	if code != http.StatusOK {
		t.Fatalf("seed solve: code=%d", code)
	}
	if first.Optimal {
		t.Skip("host closed fft(3) R=3 in 120ms; handoff warm-start not observable")
	}
	victim, survivor := ec.node(t, owner)

	victim.drain(t)
	if got := ec.proxyMetric(t, "cluster_handoff_entries_total"); got < 1 {
		t.Fatalf("cluster_handoff_entries_total = %d, want >= 1", got)
	}
	ec.waitFor(t, 5*time.Second, func() bool {
		return ec.proxy.Membership().Size() == 1
	}, "drained node left the cluster")

	code, second, node := ec.post(t, body)
	if code != http.StatusOK {
		t.Fatalf("post-drain solve: code=%d", code)
	}
	if node != survivor.addr {
		t.Fatalf("post-drain request served by %s, want survivor %s", node, survivor.addr)
	}
	if !second.Warmed && !second.Cached {
		t.Fatalf("successor did not use the handed-off interval: %+v", second)
	}
	if second.Upper > first.Upper || second.Lower < first.Lower {
		t.Fatalf("interval widened across the handoff: first [%v, %v], second [%v, %v]",
			first.Lower, first.Upper, second.Lower, second.Upper)
	}
}

// TestFaultKillMidAsyncSolveAndRejoin is the end-to-end fleet drill:
// an async solve dies with its node mid-flight; the retried request
// fails over along the ring and warm-starts from the interval that
// replication had already pushed to the survivor; the crashed node
// then restarts on the same address, re-joins, and serves its keyspace
// again.
func TestFaultKillMidAsyncSolveAndRejoin(t *testing.T) {
	ec := newElasticCluster(t, 2)
	g := dagJSON(t, daggen.FFT(3))

	// Seed a certified interval for the instance and let replication
	// copy it to the survivor.
	body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3,"deadline_ms":120}`, g)
	code, first, owner := ec.post(t, body)
	if code != http.StatusOK {
		t.Fatalf("seed solve: code=%d", code)
	}
	if first.Optimal {
		t.Skip("host closed fft(3) R=3 in 120ms; warm-start not observable")
	}
	victim, survivor := ec.node(t, owner)
	ec.waitFor(t, 5*time.Second, func() bool {
		return len(survivor.svc.ExportCache()) >= 1
	}, "interval replicated to the survivor")

	// Kill the owner mid-async-solve: the job dies with it.
	async := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3,"deadline_ms":5000,"async":true}`, g)
	resp, err := http.Post(ec.ts.URL+"/solve", "application/json", strings.NewReader(async))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID string `json:"id"`
	}
	json.NewDecoder(resp.Body).Decode(&job)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || job.ID == "" {
		t.Fatalf("async submit: code=%d id=%q", resp.StatusCode, job.ID)
	}
	victim.hardKill()

	// The job is gone — polls fan out to the survivors and find nothing.
	ec.waitFor(t, 5*time.Second, func() bool {
		pr, err := http.Get(ec.ts.URL + "/solve/" + job.ID)
		if err != nil {
			return false
		}
		defer pr.Body.Close()
		return pr.StatusCode == http.StatusNotFound
	}, "lost job reported unknown")

	// The retried request fails over to the survivor and warm-starts
	// from the replicated interval instead of searching cold.
	code, retried, node := ec.post(t, body)
	if code != http.StatusOK {
		t.Fatalf("retried solve: code=%d", code)
	}
	if node != survivor.addr {
		t.Fatalf("retried request served by %s, want survivor %s", node, survivor.addr)
	}
	if !retried.Warmed && !retried.Cached {
		t.Fatalf("retried request did not warm-start from the replica: %+v", retried)
	}
	if retried.Upper > first.Upper || retried.Lower < first.Lower {
		t.Fatalf("interval widened across the crash: first [%v, %v], retried [%v, %v]",
			first.Lower, first.Upper, retried.Lower, retried.Upper)
	}

	// Restart the crashed node on its old address: it re-joins, is
	// probed healthy, and takes its keyspace back.
	restarted := startNode(t, victim.addr, ec.proxyAddr)
	defer restarted.hardKill()
	ec.waitFor(t, 5*time.Second, func() bool {
		return ec.proxy.Membership().Size() == 2 && ec.proxy.Ring().Members()[restarted.addr]
	}, "restarted node re-joined and probed healthy")
	code, _, node = ec.post(t, body)
	if code != http.StatusOK {
		t.Fatalf("post-restart solve: code=%d", code)
	}
	if node != restarted.addr {
		t.Fatalf("post-restart request served by %s, want the re-joined owner %s", node, restarted.addr)
	}
}
