package reduce

import (
	"testing"

	"rbpebble/internal/pebble"
	"rbpebble/internal/ugraph"
)

func TestHamPathH2CStructure(t *testing.T) {
	src := ugraph.Path(4)
	base := NewHamPath(src)
	plainNodes := base.G.N()
	contacts := len(base.G.Sources())
	r := NewHamPathH2C(base)
	if err := r.G.Validate(); err != nil {
		t.Fatal(err)
	}
	// Each contact gains a private gadget of R+3 nodes.
	if r.G.N() != plainNodes+contacts*(base.R+3) {
		t.Fatalf("n = %d, want %d", r.G.N(), plainNodes+contacts*(base.R+3))
	}
	if r.NumContacts() != contacts {
		t.Fatalf("NumContacts = %d, want %d", r.NumContacts(), contacts)
	}
	// Contacts are no longer sources.
	for _, row := range r.Contact {
		for _, c := range row {
			if c >= 0 && r.G.IsSource(c) {
				t.Fatalf("contact %d still a source after H2C", c)
			}
		}
	}
}

func TestHamPathH2CRestoresOrderDependence(t *testing.T) {
	// Without H2C, the base model cannot see the edge structure at all
	// (TestBaseModelDegeneratesWithoutH2C: every permutation costs the
	// same). With the gadgets attached, the executed base-model cost is
	// strictly monotone in the number of adjacencies the permutation
	// misses — the Hamiltonian Path structure decides the cost again.
	src := ugraph.Path(4) // adjacencies of 0-1-2-3
	r := NewHamPathH2C(NewHamPath(src))
	perms := [][]int{
		{0, 1, 2, 3}, // 3 adjacent pairs (the HP)
		{1, 0, 2, 3}, // wait: (1,0) adjacent, (0,2) not, (2,3) adjacent = 2
		{0, 2, 1, 3}, // (0,2) no, (2,1) yes, (1,3) no = 1
		{0, 2, 4, 1}, // unused (placeholder, replaced below)
	}
	perms[3] = []int{2, 0, 3, 1} // 0 adjacent pairs
	costs := make([]int, len(perms))
	adjs := make([]int, len(perms))
	for i, perm := range perms {
		_, res, err := r.PebbleBase(perm)
		if err != nil {
			t.Fatalf("perm %v: %v", perm, err)
		}
		costs[i] = res.Cost.Transfers
		adjs[i] = r.AdjacentPairs(perm)
	}
	if adjs[0] != 3 || adjs[1] != 2 || adjs[2] != 1 || adjs[3] != 0 {
		t.Fatalf("adjacency counts = %v", adjs)
	}
	for i := 1; i < len(costs); i++ {
		if costs[i-1] >= costs[i] {
			t.Fatalf("cost not monotone in missed adjacencies: %v (adj %v)", costs, adjs)
		}
	}
	// Every cost is at least the derivation lower bound.
	if costs[0] < r.MinDerivationCost() {
		t.Fatalf("cost %d below derivation lower bound %d", costs[0], r.MinDerivationCost())
	}
}

func TestHamPathH2CBaseTraceValidInCompCost(t *testing.T) {
	// Per Appendix A.2, the same DAG serves the compcost model: the
	// base-model trace replays there with identical transfers plus the
	// ε-charged computes.
	src := ugraph.Cycle(4)
	r := NewHamPathH2C(NewHamPath(src))
	perm := []int{0, 1, 2, 3}
	tr, res, err := r.PebbleBase(perm)
	if err != nil {
		t.Fatal(err)
	}
	tr.Model = pebble.Model{Kind: pebble.CompCost, EpsDenom: 100}
	ccRes, err := tr.Run(r.G)
	if err != nil {
		t.Fatalf("compcost replay: %v", err)
	}
	if ccRes.Cost.Transfers != res.Cost.Transfers {
		t.Fatalf("compcost transfers %d != base %d", ccRes.Cost.Transfers, res.Cost.Transfers)
	}
	if ccRes.Cost.Computes == 0 {
		t.Fatal("compcost should charge computes")
	}
}
