package pebble

import (
	"math/rand"
	"strings"
	"testing"

	"rbpebble/internal/dag"
)

// TestReadTraceNeverPanics feeds the trace parser garbage and mutations;
// it must never panic, and anything it accepts must replay cleanly or be
// rejected by Run — also without panicking.
func TestReadTraceNeverPanics(t *testing.T) {
	valid := "model oneshot\nr 3\nconv false false\ncompute 0\ncompute 1\ncompute 2\ndelete 0\ncompute 3\n"
	g := dag.New(4)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)

	rng := rand.New(rand.NewSource(13))
	inputs := []string{valid, "", "model compcost 0\nr 1", "model base\nr -1\nload 0"}
	for i := 0; i < 250; i++ {
		b := []byte(valid)
		for k := 0; k < 1+rng.Intn(6); k++ {
			switch rng.Intn(3) {
			case 0:
				b[rng.Intn(len(b))] = byte(rng.Intn(256))
			case 1:
				b = b[:rng.Intn(len(b)+1)]
				if len(b) == 0 {
					b = []byte{'m'}
				}
			case 2:
				p := rng.Intn(len(b))
				b = append(b[:p], append([]byte("store 1\n"), b[p:]...)...)
			}
		}
		inputs = append(inputs, string(b))
	}
	for _, in := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ReadTrace/Run panicked on %q: %v", in, r)
				}
			}()
			tr, err := ReadTrace(strings.NewReader(in))
			if err != nil {
				return
			}
			// Replaying may fail (illegal moves) but must not panic.
			_, _ = tr.Run(g)
		}()
	}
}

// TestRandomMoveSequencesNeverCorruptState applies random (mostly
// illegal) moves to a state and checks the invariants hold throughout:
// red count matches the red set, never exceeds R, and cost only grows.
func TestRandomMoveSequencesNeverCorruptState(t *testing.T) {
	g := dag.New(6)
	g.AddEdge(0, 3)
	g.AddEdge(1, 3)
	g.AddEdge(2, 4)
	g.AddEdge(3, 5)
	g.AddEdge(4, 5)
	for _, kind := range AllKinds() {
		rng := rand.New(rand.NewSource(int64(kind) + 1))
		st, err := NewState(g, NewModel(kind), 3, Convention{})
		if err != nil {
			t.Fatal(err)
		}
		prevCost := int64(0)
		for i := 0; i < 3000; i++ {
			m := Move{Kind: MoveKind(rng.Intn(4)), Node: dag.NodeID(rng.Intn(8) - 1)}
			_ = st.Apply(m) // most are illegal; all must be safe
			if st.RedCount() != st.RedSet().Count() {
				t.Fatalf("%v: red count %d != set %d", kind, st.RedCount(), st.RedSet().Count())
			}
			if st.RedCount() > 3 {
				t.Fatalf("%v: red limit violated", kind)
			}
			c := st.Cost().Scaled(st.Model())
			if c < prevCost {
				t.Fatalf("%v: cost decreased", kind)
			}
			prevCost = c
			// No node may hold two pebbles.
			for v := 0; v < g.N(); v++ {
				if st.IsRed(dag.NodeID(v)) && st.IsBlue(dag.NodeID(v)) {
					t.Fatalf("%v: node %d holds two pebbles", kind, v)
				}
			}
		}
	}
}
