package instcache

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"rbpebble/internal/pebble"
)

// Value is one cached solution, stored in canonical node numbering so
// every isomorphic requester can share it (translate with
// ToCanonical/FromCanonical around the cache).
type Value struct {
	// Moves is the incumbent trace in canonical node IDs.
	Moves []pebble.Move
	// UpperScaled and LowerScaled are the certified interval ends.
	UpperScaled, LowerScaled int64
	// Optimal marks a closed interval (proven optimum). Only optimal
	// values are retained in the cache: a deadline-limited answer is
	// returned to its requester but never served to a later request
	// that might have budget to do better.
	Optimal bool
	// Source names the strategy that produced the incumbent.
	Source string
}

// Stats are the cache's monotone counters, exposed via /metrics.
type Stats struct {
	// Hits and Misses count lookups against stored entries.
	Hits, Misses uint64
	// SharedFlights counts lookups that latched onto another request's
	// in-flight solve instead of starting their own.
	SharedFlights uint64
	// Evictions counts LRU evictions.
	Evictions uint64
	// Entries is the current number of stored entries.
	Entries int
}

// flight is one in-progress solve that concurrent identical requests
// wait on.
type flight struct {
	done chan struct{}
	val  Value
	err  error
}

// Cache is a bounded LRU of solved instances with singleflight
// deduplication. The zero value is not usable; call New.
type Cache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recent; values are *entry
	entries map[string]*list.Element
	flights map[string]*flight

	hits, misses, shared, evictions uint64
}

type entry struct {
	key string
	val Value
}

// New returns a cache bounded to max entries (max <= 0 means 256).
func New(max int) *Cache {
	if max <= 0 {
		max = 256
	}
	return &Cache{
		max:     max,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
		flights: make(map[string]*flight),
	}
}

// Do returns the cached value for key, or runs fn to produce it. At
// most one fn runs per key at a time: concurrent callers with the same
// key share the first caller's result (shared=true). Results with
// Optimal=true are stored; others are passed through uncached.
//
// ctx bounds only the caller's WAIT on another request's in-flight
// solve — a short-deadline request latching onto a long-budget flight
// gives up with ctx.Err() at its own deadline instead of inheriting
// the leader's. The leader's fn itself is never interrupted by ctx.
func (c *Cache) Do(ctx context.Context, key string, fn func() (Value, error)) (val Value, hit, shared bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		v := el.Value.(*entry).val
		c.mu.Unlock()
		return v, true, false, nil
	}
	c.misses++
	if f, ok := c.flights[key]; ok {
		c.shared++
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.val, false, true, f.err
		case <-ctx.Done():
			return Value{}, false, true, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	// If fn panics the flight must still be torn down — waiters freed
	// with an error, the flights entry removed — or the key would be
	// poisoned forever (every later request blocking its full deadline
	// on a done channel nobody will close). The panic then propagates.
	defer func() {
		if r := recover(); r != nil {
			f.err = fmt.Errorf("instcache: solve panicked: %v", r)
			c.mu.Lock()
			delete(c.flights, key)
			c.mu.Unlock()
			close(f.done)
			panic(r)
		}
	}()
	f.val, f.err = fn()
	close(f.done)

	c.mu.Lock()
	delete(c.flights, key)
	if f.err == nil && f.val.Optimal {
		c.insertLocked(key, f.val)
	}
	c.mu.Unlock()
	return f.val, false, false, f.err
}

func (c *Cache) insertLocked(key string, v Value) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&entry{key: key, val: v})
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.entries, back.Value.(*entry).key)
		c.evictions++
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:          c.hits,
		Misses:        c.misses,
		SharedFlights: c.shared,
		Evictions:     c.evictions,
		Entries:       c.ll.Len(),
	}
}
