package pebble

import (
	"rbpebble/internal/bitset"
	"rbpebble/internal/dag"
)

// MinFeasibleR returns the smallest red-pebble count with which g can be
// pebbled at all: Δ+1, where Δ is the maximum in-degree (paper §3). A node
// with d inputs needs d red pebbles on its inputs plus one on itself.
// Edgeless graphs need 1.
func MinFeasibleR(g *dag.DAG) int {
	return g.MaxInDegree() + 1
}

// CostUpperBound returns the paper's universal upper bound on the optimal
// pebbling cost with any feasible R: (2Δ+1)·n transfers (plus n computes,
// charged only under CompCost). It is achieved by the naive topological
// strategy (solve.Topological).
func CostUpperBound(g *dag.DAG, m Model) Cost {
	d := g.MaxInDegree()
	n := g.N()
	return Cost{Transfers: (2*d + 1) * n, Computes: n}
}

// Reach holds the per-node ancestor and descendant closures of a DAG as
// bitsets: the transitive-reachability geometry that the solver's lower
// bounds (capacity certificates, S-partition packing) are built from.
// The precompute is quadratic in n·(n/64) words, so callers gate it on
// graph size; the masks themselves are immutable and safe to share
// across solver workers.
type Reach struct {
	anc  []*bitset.Set // anc[v]: strict ancestors of v
	desc []*bitset.Set // desc[v]: strict descendants of v
}

// NewReach computes ancestor/descendant masks for g, or nil if g is not
// acyclic (TopoOrder fails) or empty.
func NewReach(g *dag.DAG) *Reach {
	n := g.N()
	if n == 0 {
		return nil
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil
	}
	// The 2n closure masks are carved from shared slabs: one GC object
	// per chunk instead of two per node.
	arena := bitset.NewArena(n)
	r := &Reach{anc: make([]*bitset.Set, n), desc: make([]*bitset.Set, n)}
	for v := 0; v < n; v++ {
		r.anc[v] = arena.New()
		r.desc[v] = arena.New()
	}
	for _, v := range order {
		for _, u := range g.Preds(v) {
			r.anc[v].Or(r.anc[u])
			r.anc[v].Set(int(u))
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for _, x := range g.Succs(v) {
			r.desc[v].Or(r.desc[x])
			r.desc[v].Set(int(x))
		}
	}
	return r
}

// Anc returns the strict-ancestor mask of v (do not mutate).
func (r *Reach) Anc(v dag.NodeID) *bitset.Set { return r.anc[v] }

// Desc returns the strict-descendant mask of v (do not mutate).
func (r *Reach) Desc(v dag.NodeID) *bitset.Set { return r.desc[v] }

// StepUpperBoundFactor returns a step bound for optimal pebblings as a
// multiple of Δ·n per the paper's Lemma 1 analysis. For oneshot and nodel,
// optimal pebblings use O(Δ·n) steps; for compcost the constant depends on
// 1/ε. For the base model no polynomial bound exists (it may be
// superpolynomial), so the return value is 0 meaning "unbounded".
func StepUpperBoundFactor(m Model) int {
	switch m.Kind {
	case Oneshot, NoDel:
		// ≤ (2Δ+1)n transfers + n computes + n deletes ≲ 5·Δ·n for Δ≥1.
		return 5
	case CompCost:
		// p ≤ (2/ε)(2Δ+1+ε)n non-transfer steps + (2Δ+1+ε)n transfers.
		return 5 * m.EpsDenom
	default:
		return 0
	}
}
