package experiments

import (
	"fmt"

	"rbpebble/internal/gadgets"
	"rbpebble/internal/pebble"
	"rbpebble/internal/sched"
	"rbpebble/internal/solve"
)

// Table1 regenerates the paper's Table 1: the cost of each operation in
// each model variant, read off the Model implementation.
func Table1() *Report {
	rep := &Report{
		ID:     "Table 1",
		Title:  "Cost of operations in different models",
		Claim:  "load=1, store=1 everywhere; compute free except compcost (ε) and oneshot (once); delete free except nodel (banned)",
		Header: []string{"model", "blue→red", "red→blue", "compute", "delete", "description"},
	}
	for _, kind := range pebble.AllKinds() {
		row := pebble.Table1Row(pebble.NewModel(kind))
		rep.Rows = append(rep.Rows, []string{
			row.Model.Kind.String(), row.Load, row.Store, row.Compute, row.Delete, row.Described,
		})
	}
	rep.Verdict = "definitional; enforced by the engine's legality tests"
	return rep
}

// Table2 regenerates the measurable parts of the paper's Table 2: the
// cost range of optimal pebbling, the length of optimal pebblings, and
// the greedy-to-optimum ratio class, per model. Cost bounds are measured
// on the tradeoff DAG (which realizes both extremes); lengths on the
// same; greedy ratios on the Theorem 4 grid.
func Table2() *Report {
	rep := &Report{
		ID:     "Table 2",
		Title:  "Basic properties of the models (measured)",
		Claim:  "cost ∈ [0,(2Δ+1)n] (oneshot/base), ∈ [≈n,(2Δ+1)n] (nodel), ∈ [≈εn,...] (compcost); length O(Δn) except base; greedy/opt large in oneshot, constant-factor in nodel/compcost",
		Header: []string{"model", "minCost(meas)", "maxCost(meas)", "(2Δ+1)n", "steps/Δn", "greedy/opt"},
	}
	d, chain := 4, 40
	tr := gadgets.NewTradeoff(d, chain)
	n := tr.G.N()
	delta := tr.G.MaxInDegree()
	gg := gadgets.NewGreedyGrid(4, 16)

	for _, kind := range pebble.AllKinds() {
		m := pebble.NewModel(kind)
		// Min cost: strategy at maximal useful R. Max: naive topological
		// baseline at minimal R.
		_, rich, err := sched.Execute(tr.G, m, tr.MaxUsefulR(), pebble.Convention{}, tr.StrategyOrder(), sched.Options{Policy: sched.Belady})
		if err != nil {
			panic(err)
		}
		poor, err := solve.Topological(solve.Problem{G: tr.G, Model: m, R: tr.MinR()})
		if err != nil {
			panic(err)
		}
		stepsPerDn := float64(poor.Result.Steps) / float64(delta*n)

		// Greedy vs prescribed-optimal on the grid.
		p := solve.Problem{G: gg.G, Model: m, R: gg.R()}
		greedy, err := solve.Greedy(p, solve.MostRedInputs)
		if err != nil {
			panic(err)
		}
		_, opt, err := sched.Execute(gg.G, m, gg.R(), pebble.Convention{}, gg.VisitOrder(gg.OptimalVisits()), sched.Options{Policy: sched.Belady})
		if err != nil {
			panic(err)
		}
		ratio := greedy.Result.Cost.Value(m) / opt.Cost.Value(m)

		rep.Rows = append(rep.Rows, []string{
			m.String(),
			ftoa(rich.Cost.Value(m)),
			ftoa(poor.Result.Cost.Value(m)),
			itoa((2*delta + 1) * n),
			ftoa(stepsPerDn),
			ftoa(ratio),
		})
	}
	rep.Verdict = fmt.Sprintf(
		"oneshot/base reach cost 0 at large R; nodel floor ≈ n-R = %d; compcost floor ≈ εn; all step counts are small multiples of Δn; greedy/opt largest in oneshot/base",
		n-tr.MaxUsefulR())
	return rep
}
