// Package obs is the observability layer for the rbpebble serving
// stack: lightweight request tracing (spans carried in context.Context
// across the proxy → lane scheduler → cache → anytime-orchestrator
// pipeline), a per-solve telemetry store feeding the learned portfolio
// scheduler, and shared slog/pprof plumbing for the daemons.
//
// The tracing model is deliberately small: a Trace is an append-only
// set of Spans owned by one process; the trace ID (not span data)
// crosses process boundaries via the X-Rbpebble-Trace header, so the
// proxy and each node hold their own span set for the same ID. All
// span methods are nil-safe — code paths that run without a trace in
// context pay only a pointer check.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"regexp"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader carries the trace ID on requests and responses. A client
// may supply its own ID; otherwise the first hop (proxy or node) mints
// one, and every response — including 429 sheds and draining 503s —
// echoes it back for correlation.
const TraceHeader = "X-Rbpebble-Trace"

// traceIDPattern bounds accepted inbound IDs: hex-ish tokens only, so
// a hostile header can't smuggle log-breaking bytes into span stores.
var traceIDPattern = regexp.MustCompile(`^[A-Za-z0-9_-]{8,64}$`)

// NewTraceID mints a 16-byte random hex ID.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fallback: a monotonic counter still yields unique IDs within
		// the process, which is all correlation needs.
		return "t" + hex.EncodeToString([]byte{byte(fallbackID.Add(1))})
	}
	return hex.EncodeToString(b[:])
}

var fallbackID atomic.Uint64

// Event is a timestamped point annotation on a span — e.g. a certified
// lower-bound improvement streamed by the anytime orchestrator.
type Event struct {
	Time  time.Time `json:"time"`
	Name  string    `json:"name"`
	Value int64     `json:"value,omitempty"`
}

// Span is one timed region of a trace. Attributes are small string
// pairs; Events record mid-span progress. A span is mutated only by
// the goroutine that started it (End, SetAttr, Event), but may be read
// concurrently by /debug/trace — hence the mutex.
type Span struct {
	mu       sync.Mutex
	trace    *Trace
	ID       uint64
	Parent   uint64 // 0 = root
	Name     string
	Start    time.Time
	EndTime  time.Time // zero while open
	Attrs    map[string]string
	Events   []Event
	attrKeys []string // insertion order for stable JSON
}

// Trace is the process-local span set for one trace ID.
type Trace struct {
	ID    string
	Start time.Time

	mu     sync.Mutex
	spans  []*Span
	nextID uint64
}

// newTrace creates an empty trace with the given ID.
func newTrace(id string) *Trace {
	return &Trace{ID: id, Start: time.Now()}
}

type traceCtxKey struct{}
type spanCtxKey struct{}

// WithTrace returns ctx carrying tr. Spans started from the returned
// context become roots (no parent span is carried over).
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, tr)
}

// TraceFrom returns the trace carried by ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return tr
}

// TraceIDFrom returns the carried trace's ID, or "".
func TraceIDFrom(ctx context.Context) string {
	if tr := TraceFrom(ctx); tr != nil {
		return tr.ID
	}
	return ""
}

// StartSpan opens a named span under the current span (if any) of the
// trace carried by ctx. The returned context carries the new span as
// the parent for further StartSpan calls. Without a trace in ctx it
// returns (ctx, nil); all Span methods tolerate a nil receiver, so
// call sites need no guards.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	tr := TraceFrom(ctx)
	if tr == nil {
		return ctx, nil
	}
	var parent uint64
	if ps, _ := ctx.Value(spanCtxKey{}).(*Span); ps != nil {
		parent = ps.ID
	}
	sp := &Span{trace: tr, Parent: parent, Name: name, Start: time.Now()}
	tr.mu.Lock()
	tr.nextID++
	sp.ID = tr.nextID
	tr.spans = append(tr.spans, sp)
	tr.mu.Unlock()
	return context.WithValue(ctx, spanCtxKey{}, sp), sp
}

// Graft transplants the trace and current span of `from` onto `base`,
// so work rooted at a long-lived context (a singleflight flight, an
// async job) still records spans under the request that started it.
// Cancellation and deadlines come from base only.
func Graft(base, from context.Context) context.Context {
	tr := TraceFrom(from)
	if tr == nil {
		return base
	}
	out := context.WithValue(base, traceCtxKey{}, tr)
	if ps, _ := from.Value(spanCtxKey{}).(*Span); ps != nil {
		out = context.WithValue(out, spanCtxKey{}, ps)
	}
	return out
}

// End closes the span. Nil-safe; a second End is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.EndTime.IsZero() {
		s.EndTime = time.Now()
	}
	s.mu.Unlock()
}

// SetAttr records a string attribute. Nil-safe.
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.Attrs == nil {
		s.Attrs = make(map[string]string, 4)
	}
	if _, ok := s.Attrs[key]; !ok {
		s.attrKeys = append(s.attrKeys, key)
	}
	s.Attrs[key] = val
	s.mu.Unlock()
}

// Event appends a timestamped annotation, e.g. a certified lower-bound
// improvement. Nil-safe.
func (s *Span) Event(name string, value int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.Events = append(s.Events, Event{Time: time.Now(), Name: name, Value: value})
	s.mu.Unlock()
}

// SpanView is the JSON shape /debug/trace serves for one span.
type SpanView struct {
	ID         uint64            `json:"id"`
	Parent     uint64            `json:"parent,omitempty"`
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationMS float64           `json:"duration_ms"`
	Open       bool              `json:"open,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Events     []Event           `json:"events,omitempty"`
}

// TraceView is the JSON shape /debug/trace serves for a whole trace.
type TraceView struct {
	TraceID string     `json:"trace_id"`
	Start   time.Time  `json:"start"`
	Spans   []SpanView `json:"spans"`
}

// View snapshots the trace for serving. Open spans report duration up
// to now and Open=true.
func (t *Trace) View() TraceView {
	t.mu.Lock()
	spans := make([]*Span, len(t.spans))
	copy(spans, t.spans)
	t.mu.Unlock()
	v := TraceView{TraceID: t.ID, Start: t.Start, Spans: make([]SpanView, 0, len(spans))}
	now := time.Now()
	for _, sp := range spans {
		sp.mu.Lock()
		sv := SpanView{
			ID:     sp.ID,
			Parent: sp.Parent,
			Name:   sp.Name,
			Start:  sp.Start,
		}
		end := sp.EndTime
		if end.IsZero() {
			end = now
			sv.Open = true
		}
		sv.DurationMS = float64(end.Sub(sp.Start)) / float64(time.Millisecond)
		if len(sp.Attrs) > 0 {
			sv.Attrs = make(map[string]string, len(sp.Attrs))
			for k, val := range sp.Attrs {
				sv.Attrs[k] = val
			}
		}
		if len(sp.Events) > 0 {
			sv.Events = append([]Event(nil), sp.Events...)
		}
		sp.mu.Unlock()
		v.Spans = append(v.Spans, sv)
	}
	return v
}

// StartRequest begins (or continues) a trace for an inbound HTTP
// request: it accepts a well-formed X-Rbpebble-Trace header or mints a
// fresh ID, echoes the ID on the response immediately — so even early
// rejections (shed 429s, draining 503s) carry it — registers the trace
// with rec when non-nil, and returns a context carrying the trace.
func StartRequest(w http.ResponseWriter, r *http.Request, rec *Recorder) (context.Context, *Trace) {
	id := r.Header.Get(TraceHeader)
	if !traceIDPattern.MatchString(id) {
		id = NewTraceID()
	}
	tr := newTrace(id)
	w.Header().Set(TraceHeader, id)
	if rec != nil {
		rec.Register(tr)
	}
	return WithTrace(r.Context(), tr), tr
}
