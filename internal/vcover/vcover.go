// Package vcover solves the Vertex Cover problem: an exact
// branch-and-bound solver, the classic maximal-matching 2-approximation,
// and a greedy heuristic. Vertex Cover is the source problem of the
// paper's Theorem 3 inapproximability reduction: pebbling the reduction
// DAG costs 2k'·|VC| + O(N²), so a δ-approximation for oneshot pebbling
// yields a δ-approximation for Vertex Cover — impossible for δ < 2 under
// the unique games conjecture.
package vcover

import (
	"sort"

	"rbpebble/internal/ugraph"
)

// Exact returns a minimum vertex cover of g via branch and bound on the
// highest-degree vertex: either the vertex is in the cover, or all of its
// neighbors are. Exponential in the worst case but fast on the moderate
// instances used by the reduction experiments.
func Exact(g *ugraph.Graph) []int {
	work := g.Clone()
	bestSize := g.N() + 1
	var best []int
	var cur []int

	var rec func()
	rec = func() {
		if len(cur) >= bestSize {
			return
		}
		// Find a vertex of maximum remaining degree.
		maxV, maxD := -1, 0
		for v := 0; v < work.N(); v++ {
			if d := work.Degree(v); d > maxD {
				maxV, maxD = v, d
			}
		}
		if maxV == -1 { // no edges left: cur is a cover
			if len(cur) < bestSize {
				bestSize = len(cur)
				best = append([]int(nil), cur...)
			}
			return
		}
		// Lower bound: a maximal matching in the remainder needs one
		// endpoint each.
		if len(cur)+matchingLowerBound(work) >= bestSize {
			return
		}
		// Branch 1: take maxV.
		removedV := removeVertex(work, maxV)
		cur = append(cur, maxV)
		rec()
		cur = cur[:len(cur)-1]
		restore(work, removedV)
		// Branch 2: take all neighbors of maxV.
		nbrs := work.Neighbors(maxV)
		if len(cur)+len(nbrs) < bestSize {
			var removed [][2]int
			for _, u := range nbrs {
				removed = append(removed, removeVertex(work, u)...)
				cur = append(cur, u)
			}
			rec()
			cur = cur[:len(cur)-len(nbrs)]
			restore(work, removed)
		}
	}
	rec()
	sort.Ints(best)
	if best == nil {
		best = []int{}
	}
	return best
}

// removeVertex removes all edges incident to v and returns them for
// restoration.
func removeVertex(g *ugraph.Graph, v int) [][2]int {
	nbrs := g.Neighbors(v)
	removed := make([][2]int, 0, len(nbrs))
	for _, u := range nbrs {
		removed = append(removed, [2]int{v, u})
		g.RemoveEdge(v, u)
	}
	return removed
}

func restore(g *ugraph.Graph, edges [][2]int) {
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
}

// matchingLowerBound returns the size of a greedily built maximal
// matching, a lower bound on the vertex cover of the remaining graph.
func matchingLowerBound(g *ugraph.Graph) int {
	used := make([]bool, g.N())
	size := 0
	for _, e := range g.Edges() {
		if !used[e[0]] && !used[e[1]] {
			used[e[0]], used[e[1]] = true, true
			size++
		}
	}
	return size
}

// TwoApprox returns a vertex cover at most twice the minimum, by taking
// both endpoints of a greedily built maximal matching.
func TwoApprox(g *ugraph.Graph) []int {
	used := make([]bool, g.N())
	var cover []int
	for _, e := range g.Edges() {
		if !used[e[0]] && !used[e[1]] {
			used[e[0]], used[e[1]] = true, true
			cover = append(cover, e[0], e[1])
		}
	}
	sort.Ints(cover)
	return cover
}

// GreedyDegree repeatedly adds the highest-degree remaining vertex. No
// constant-factor guarantee (Θ(log n) in the worst case) but often good
// in practice.
func GreedyDegree(g *ugraph.Graph) []int {
	work := g.Clone()
	var cover []int
	for work.M() > 0 {
		maxV, maxD := -1, 0
		for v := 0; v < work.N(); v++ {
			if d := work.Degree(v); d > maxD {
				maxV, maxD = v, d
			}
		}
		removeVertex(work, maxV)
		cover = append(cover, maxV)
	}
	sort.Ints(cover)
	return cover
}

// Verify reports whether cover covers every edge of g.
func Verify(g *ugraph.Graph, cover []int) bool {
	in := make([]bool, g.N())
	for _, v := range cover {
		if v < 0 || v >= g.N() {
			return false
		}
		in[v] = true
	}
	for _, e := range g.Edges() {
		if !in[e[0]] && !in[e[1]] {
			return false
		}
	}
	return true
}
