// Greedyvsopt reproduces the paper's Theorem 4 / Figure 8: on the
// misguidance grid, every natural greedy strategy follows an adversarial
// column-by-column order and pays Θ(k') per group, while the diagonal
// order pays O(1) per group — an unbounded separation.
package main

import (
	"fmt"
	"log"

	"rbpebble"
)

func main() {
	const l = 4
	fmt.Printf("Theorem 4 grid, ℓ=%d (%d input groups)\n\n", l, l*(l+1)/2)
	fmt.Printf("%6s %7s %9s %9s %7s %s\n", "k'", "nodes", "greedy", "optimal", "ratio", "greedy followed misguide?")

	for _, kprime := range []int{8, 16, 32, 64, 128} {
		gg := rbpebble.NewGreedyGrid(l, kprime)
		p := rbpebble.Problem{
			G:     gg.G,
			Model: rbpebble.NewModel(rbpebble.Oneshot),
			R:     gg.R(),
		}
		greedy, err := rbpebble.Greedy(p, rbpebble.MostRedInputs)
		if err != nil {
			log.Fatal(err)
		}
		// The paper's optimal strategy: process diagonals consecutively.
		_, opt, err := rbpebble.Execute(gg.G, p.Model, gg.R(), rbpebble.Convention{},
			gg.VisitOrder(gg.OptimalVisits()), rbpebble.SchedOptions{Policy: rbpebble.Belady})
		if err != nil {
			log.Fatal(err)
		}

		// Recover the greedy visit order and compare with the adversarial
		// column order the construction is designed to force.
		order, err := rbpebble.GreedyOrder(p, rbpebble.MostRedInputs)
		if err != nil {
			log.Fatal(err)
		}
		tpos := gg.TargetPos()
		followed := true
		want := gg.GreedyExpectedVisits()
		i := 0
		for _, v := range order {
			if pos, ok := tpos[v]; ok {
				if i >= len(want) || pos != want[i] {
					followed = false
					break
				}
				i++
			}
		}

		fmt.Printf("%6d %7d %9d %9d %7.2f %v\n",
			kprime, gg.G.N(),
			greedy.Result.Cost.Transfers, opt.Cost.Transfers,
			float64(greedy.Result.Cost.Transfers)/float64(opt.Cost.Transfers),
			followed)
	}

	fmt.Println("\nThe optimal cost is independent of k' (common nodes live and die")
	fmt.Println("in fast memory), while greedy re-reads each diagonal's k' common")
	fmt.Println("nodes once per column: the ratio grows without bound (Θ̃(√n) under")
	fmt.Println("the paper's constant-degree parameterization).")
}
