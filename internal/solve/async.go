package solve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rbpebble/internal/pebble"
)

// Asynchronous HDA*-style parallel exact solver. Like the
// synchronous-rounds engine (parallel.go) the state space is sharded by
// state hash — owner = hashKey(packed state) mod P, each worker owning
// its shard's open list, visited table and node log — but there are no
// global barriers: every worker loops { drain mailboxes, relax, expand,
// flush } continuously, so nobody idles at a round boundary waiting for
// the slowest shard.
//
// Proposals travel through per-edge mailboxes (one deposit box per
// ordered worker pair, so P^2 boxes and no cross-pair contention):
// senders batch proposals per destination and append a batch under a
// short lock; receivers swap the whole box out and relax locally.
//
// Without the global f-min barrier a worker may expand a state before
// its g is settled; when a cheaper path arrives later the owner
// re-relaxes and re-expands (best[ref] update + fresh push), which is
// the standard HDA* re-expansion rule and preserves exactness. Goals
// are never expanded; they update a shared incumbent. A frontier entry
// with f >= incumbent is useless under an admissible heuristic, so
// workers treat their heap as empty once its minimum reaches the
// incumbent.
//
// Unthrottled HDA* expands speculatively far beyond the true cost
// frontier (measured ~8x extra states on pyramid(5) R=4), so each
// worker continuously publishes its heap minimum in an atomic watermark
// and only expands entries at or below the smallest published f. This
// is not a barrier — nobody waits for a round or for stragglers; a
// blocked worker spins briefly, republishing its own watermark, and the
// holder of the global minimum always proceeds, so plateaus of equal f
// (ubiquitous here: computes and deletes are free in most models)
// expand concurrently across all shards. Entries cheaper than the
// watermark can still be in flight, so the watermark is only a
// throttle; exactness never depends on it.
//
// Termination is detected with a counting protocol in the style of
// Safra's algorithm, with the coordinator playing the probe: global
// atomic counters of proposals sent and received, plus a per-worker
// passive flag (set only when the worker has no frontier work, empty
// inboxes and flushed outboxes). The coordinator declares termination
// only after reading sent == received between two observations of
// "everyone passive" with the sent counter unchanged — any message
// still in flight either keeps sent > received or bumps sent between
// the two reads. At that point no state with f < incumbent exists
// anywhere, so the incumbent is the proven optimum: the exact analogue
// of the synchronous engine's "incumbent <= global f-min" rule.

const (
	// asyncFlushBatch is the number of proposals buffered per
	// destination before an eager flush (outboxes are always flushed
	// fully at the end of every worker loop turn regardless).
	asyncFlushBatch = 64
	// asyncExpandBatch caps consecutive expansions between mailbox
	// drains, so cross-shard improvements are observed promptly.
	asyncExpandBatch = 256
)

// asyncTestDelay, when non-nil, is called before each state expansion
// with the worker id. Tests inject latency into chosen shards to
// exercise termination detection under pathological imbalance.
var asyncTestDelay func(worker int)

// asyncBatch is one flushed group of proposals (kw key words per
// proposal, in order). Batches change hands whole: the sender builds
// one, deposits the slices, and grabs recycled buffers, so no
// per-proposal copying happens at the mailbox and the steady state
// allocates nothing (receivers return drained buffers to the pool).
type asyncBatch struct {
	meta []proposal
	keys []uint64
	// Watermark summary of the batch, maintained by the sender: the
	// smallest parent f among the proposals (children's f is at least
	// the parent's up to heuristic inconsistency, which is fine for a
	// throttle) and the largest child g.
	minPF int64
	maxG  int64
}

// asyncBatchPool recycles batch buffers between receivers and senders.
var asyncBatchPool = sync.Pool{
	New: func() any {
		return &asyncBatch{
			meta:  make([]proposal, 0, asyncFlushBatch),
			keys:  make([]uint64, 0, asyncFlushBatch*8),
			minPF: costUnreached,
		}
	},
}

// asyncMailbox is one src->dst deposit box. pendF/pendG summarize the
// pending proposals for the watermark — pendF is the smallest parent f
// and pendG the largest child g; without them, work in flight to an
// unscheduled worker would be invisible to the throttle and the
// scheduled workers would flood their own shards far past the true
// frontier (acute under GOMAXPROCS=1, where only one worker publishes
// at a time).
type asyncMailbox struct {
	mu      sync.Mutex
	batches []*asyncBatch
	pendF   atomic.Int64
	pendG   atomic.Int64
}

// asyncShared is the state shared by all workers and the coordinator.
type asyncShared struct {
	nw    int
	kw    int
	boxes []asyncMailbox // boxes[src*nw+dst]

	sent     atomic.Int64 // proposals deposited
	recv     atomic.Int64 // proposals consumed
	expanded atomic.Int64 // states expanded (for the budget and stats)
	done     atomic.Bool  // optimum proven
	abort    atomic.Bool  // state budget exhausted
	stop     atomic.Bool  // cancellation requested: drain to quiescence, expand nothing
	passive  []atomic.Bool
	fmins    []atomic.Int64 // per-worker published heap minimum (the watermark)
	gtops    []atomic.Int64 // g of the same top entry (for the plateau dive window)
	wmF      atomic.Int64   // cached merged watermark f (throttle fast path)
	wmG      atomic.Int64   // cached merged watermark g

	incMu    sync.Mutex
	incG     atomic.Int64
	incShard int32
	incNode  int32
}

// improve lowers the shared incumbent (cold path: goals are rare).
func (sh *asyncShared) improve(g int64, shard, node int32) {
	sh.incMu.Lock()
	if g < sh.incG.Load() {
		sh.incG.Store(g)
		sh.incShard, sh.incNode = shard, node
	}
	sh.incMu.Unlock()
}

// asyncWorker is one shard owner of the async engine.
type asyncWorker struct {
	id    int32
	ctx   *searchCtx
	table *stateTable
	open  openHeap
	nodes []parNode
	hs    []int64 // cached heuristic per table ref

	out      []*asyncBatch // out[dst], buffered until flush
	expanded int           // local counters, aggregated into stats at the end
	pushed   int

	lastF, lastG int64 // last published watermark values (-1: none yet)
	wmAge        int   // pops since the last full watermark recompute
}

func exactAsync(p Problem, opts ExactOptions, start *pebble.State, maxStates int) (Solution, error) {
	nw := opts.Parallel
	kw := start.PackedWords()
	base := newSearchCtx(p, opts, start)
	sh := &asyncShared{
		nw:      nw,
		kw:      kw,
		boxes:   make([]asyncMailbox, nw*nw),
		passive: make([]atomic.Bool, nw),
		fmins:   make([]atomic.Int64, nw),
		gtops:   make([]atomic.Int64, nw),
	}
	sh.incG.Store(costUnreached)
	for i := range sh.fmins {
		sh.fmins[i].Store(costUnreached)
	}
	for i := range sh.boxes {
		sh.boxes[i].pendF.Store(costUnreached)
	}
	workers := make([]*asyncWorker, nw)
	for i := range workers {
		ctx := base
		if i > 0 {
			ctx = base.cloneForWorker(start)
		}
		w := &asyncWorker{
			id:    int32(i),
			ctx:   ctx,
			table: newStateTable(kw, 256),
			out:   make([]*asyncBatch, nw),
			lastF: -1,
			lastG: -1,
		}
		for d := range w.out {
			w.out[d] = asyncBatchPool.Get().(*asyncBatch)
		}
		workers[i] = w
	}

	var lowerBound int64
	report := func() {
		if opts.Stats != nil {
			var st ExactStats
			for _, w := range workers {
				st.Expanded += w.expanded
				st.Pushed += w.pushed
				st.Distinct += w.table.count()
			}
			st.LowerBound = lowerBound
			*opts.Stats = st
		}
	}

	rootKey := start.AppendPacked(nil)
	rootHash := hashKey(rootKey)
	h0, dead := base.lb.estimate(start)
	if dead {
		report()
		return Solution{}, ErrInfeasible
	}
	rw := workers[rootHash%uint64(nw)]
	rootRef, _ := rw.table.lookupOrAdd(rootKey, rootHash)
	rw.table.best[rootRef] = 0
	rw.hs = append(rw.hs, h0)
	rw.nodes = append(rw.nodes, parNode{parentShard: -1, parentNode: -1, ref: rootRef})
	rw.open.push(heapEntry{f: h0, g: 0, node: 0})
	rw.pushed = 1

	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *asyncWorker) {
			defer wg.Done()
			w.run(sh)
		}(w)
	}

	// Coordinator: poll the state budget, watch for cancellation and run
	// the termination probe. The poll interval escalates so that long
	// solves are not taxed by coordinator wakeups (the workers keep the
	// watermark cache fresh themselves); short solves still terminate
	// within ~20us. A cancellation does not kill the workers outright:
	// it flips the stop flag so they cease expanding but keep draining
	// mailboxes, and the ordinary counting probe then detects the
	// quiescent point — at which every generated proposal sits relaxed
	// in some shard heap, so the heap tops are the full open frontier
	// and their minimum is a certified lower bound on the optimum.
	coSleep := 20 * time.Microsecond
	for {
		if sh.expanded.Load() > int64(maxStates) {
			sh.abort.Store(true)
			break
		}
		if opts.Cancel != nil && !sh.stop.Load() {
			select {
			case <-opts.Cancel:
				sh.stop.Store(true)
			default:
			}
		}
		if sh.terminated() {
			sh.done.Store(true)
			break
		}
		time.Sleep(coSleep)
		if coSleep < 200*time.Microsecond {
			coSleep += 10 * time.Microsecond
		}
	}
	wg.Wait()
	if sh.abort.Load() {
		// The workers quit mid-flight, so mailbox batches may still hold
		// unrelaxed proposals; only the root estimate stays certified.
		lowerBound = h0
		report()
		return Solution{}, fmt.Errorf("%w: %d states", ErrStateLimit, maxStates)
	}
	incG := sh.incG.Load()
	minTop := int64(costUnreached)
	for _, w := range workers {
		if w.open.len() > 0 && w.open.a[0].f < minTop {
			minTop = w.open.a[0].f
		}
	}
	if sh.stop.Load() && !(incG != costUnreached && minTop >= incG) &&
		!(incG == costUnreached && minTop == costUnreached) {
		// Canceled before the optimum was proven: harvest the certified
		// frontier bound. (If the frontier had already emptied past the
		// incumbent, the solve finished despite the cancellation and
		// falls through to the normal success path.)
		lowerBound = max(h0, min(minTop, incG))
		report()
		return Solution{}, fmt.Errorf("%w after %d states (lower bound %d)", ErrCanceled, sh.expanded.Load(), lowerBound)
	}
	if incG == costUnreached {
		report()
		return Solution{}, errors.New("solve: state space exhausted without completing (unreachable for feasible R)")
	}
	lowerBound = incG // proven optimal
	report()

	logs := make([][]parNode, nw)
	for i, w := range workers {
		logs[i] = w.nodes
	}
	return shardTrace(p, logs, sh.incShard, sh.incNode), nil
}

// terminated runs one round of the counting probe: everyone passive,
// sent == received, and sent unchanged across a second passivity check.
func (sh *asyncShared) terminated() bool {
	s1 := sh.sent.Load()
	if sh.recv.Load() != s1 {
		return false
	}
	for i := range sh.passive {
		if !sh.passive[i].Load() {
			return false
		}
	}
	return sh.sent.Load() == s1
}

// run is the worker main loop.
func (w *asyncWorker) run(sh *asyncShared) {
	spins := 0
	backoff := time.Microsecond
	// wait backs off exponentially so that idle workers get out of the
	// scheduler's way instead of stealing timeslices from the watermark
	// holder (which is what turns a 1-core run into a spin contest).
	wait := func() {
		if spins++; spins < 4 {
			runtime.Gosched()
			return
		}
		time.Sleep(backoff)
		if backoff < 256*time.Microsecond {
			backoff *= 2
		}
	}
	for {
		if sh.done.Load() || sh.abort.Load() {
			return
		}
		got := w.drain(sh) + w.drainSelf()
		did := w.expand(sh)
		w.flushAll(sh)
		w.publish(sh)
		if got > 0 || did > 0 {
			spins, backoff = 0, time.Microsecond
			continue
		}
		if !sh.stop.Load() && w.open.len() > 0 && w.open.a[0].f < sh.incG.Load() {
			// Blocked behind the watermark: useful frontier exists but a
			// cheaper one lives on another shard. Stay active (never
			// passive) and retry; the watermark holder always advances.
			// (Under a stop request the frontier is deliberately left
			// unexpanded, so fall through to passive instead: quiescence
			// is what the coordinator is waiting to observe.)
			wait()
			continue
		}
		// Out of useful work entirely: go passive until a proposal
		// arrives (the frontier cannot regrow on its own).
		sh.passive[w.id].Store(true)
		for {
			if sh.done.Load() || sh.abort.Load() {
				return
			}
			if w.inboxPending(sh) {
				sh.passive[w.id].Store(false)
				spins, backoff = 0, time.Microsecond
				break
			}
			wait()
		}
	}
}

// publish stores this worker's current heap top (f and g) in its
// watermark slots (skipped when unchanged since the last publish).
func (w *asyncWorker) publish(sh *asyncShared) {
	f, g := int64(costUnreached), int64(0)
	if w.open.len() > 0 {
		f, g = w.open.a[0].f, w.open.a[0].g
	}
	if f == w.lastF && g == w.lastG {
		return
	}
	w.lastF, w.lastG = f, g
	sh.gtops[w.id].Store(g)
	sh.fmins[w.id].Store(f)
}

// asyncDiveWindow is the g-window within an f-plateau: a worker expands
// a plateau entry only when its g is within the window of the deepest
// published plateau entry. Zero-cost moves (computes and deletes in
// most models) make the goal's f-level one huge plateau; the serial
// heap's deeper-g-first tie-break dives straight through it, and the
// window makes the sharded search follow the same dive as a relay
// instead of flooding the plateau breadth-first, while still letting
// several shards work the dive front concurrently.
const asyncDiveWindow = 2

// watermark recomputes the merged watermark — the smallest published f
// across shard heaps and pending mailboxes, and the largest g published
// at that f — and refreshes the cached copy. Expansion reads only the
// cache (two atomic loads per pop); workers run the full scan whenever
// the cache tells them to block (it may be stale-low after the front
// advanced) and unconditionally every 64 pops (a stale-high cache
// would let them overshoot silently), which bounds the cache staleness
// in both directions (staleness is harmless regardless: the watermark
// is a throttle, not a correctness gate).
func (sh *asyncShared) watermark() (f, g int64) {
	f = costUnreached
	for i := range sh.fmins {
		fi := sh.fmins[i].Load()
		gi := sh.gtops[i].Load()
		if fi < f {
			f, g = fi, gi
		} else if fi == f && gi > g {
			g = gi
		}
	}
	for i := range sh.boxes {
		fi := sh.boxes[i].pendF.Load()
		if fi == costUnreached {
			continue
		}
		gi := sh.boxes[i].pendG.Load()
		if fi < f {
			f, g = fi, gi
		} else if fi == f && gi > g {
			g = gi
		}
	}
	sh.wmF.Store(f)
	sh.wmG.Store(g)
	return f, g
}

// inboxPending reports whether any mailbox addressed to this worker
// holds proposals (lock-free peek on the pending watermark; a false
// negative is retried, a false positive drains empty).
func (w *asyncWorker) inboxPending(sh *asyncShared) bool {
	for src := 0; src < sh.nw; src++ {
		if sh.boxes[src*sh.nw+int(w.id)].pendF.Load() != costUnreached {
			return true
		}
	}
	return false
}

// drain consumes every pending proposal addressed to this worker,
// relaxing each into the local table and open list, and returns how
// many proposals it consumed.
func (w *asyncWorker) drain(sh *asyncShared) int {
	total := 0
	for src := 0; src < sh.nw; src++ {
		b := &sh.boxes[src*sh.nw+int(w.id)]
		if b.pendF.Load() == costUnreached {
			continue // lock-free empty peek (a racing deposit is seen next turn)
		}
		b.mu.Lock()
		batches := b.batches
		b.batches = nil
		b.pendF.Store(costUnreached)
		b.pendG.Store(0)
		b.mu.Unlock()
		for _, ba := range batches {
			w.relaxBatch(ba.meta, ba.keys)
			sh.recv.Add(int64(len(ba.meta)))
			total += len(ba.meta)
			ba.meta, ba.keys = ba.meta[:0], ba.keys[:0]
			ba.minPF, ba.maxG = costUnreached, 0
			asyncBatchPool.Put(ba)
		}
	}
	return total
}

// relaxBatch merges one mailbox batch (same layout as the synchronous
// engine's relax: kw key words per proposal, in order).
func (w *asyncWorker) relaxBatch(meta []proposal, keys []uint64) {
	kw := w.table.kw
	for i, pr := range meta {
		key := keys[i*kw : (i+1)*kw]
		ref, isNew := w.table.lookupOrAdd(key, pr.hash)
		if isNew {
			w.ctx.scratch.RestorePacked(key)
			h, dead := w.ctx.lb.estimate(w.ctx.scratch)
			w.hs = append(w.hs, h)
			if dead {
				w.table.best[ref] = costDead
			}
		}
		if w.table.best[ref] <= pr.g {
			continue
		}
		w.table.best[ref] = pr.g
		w.nodes = append(w.nodes, parNode{
			parentShard: pr.srcShard, parentNode: pr.parentNode,
			ref: ref, move: pr.move,
		})
		w.open.push(heapEntry{f: pr.g + w.hs[ref], g: pr.g, node: int32(len(w.nodes) - 1)})
		w.pushed++
	}
}

// expand pops up to asyncExpandBatch useful entries, generating
// successor proposals into the outboxes (flushed eagerly per
// destination once a batch accumulates). Returns the number of entries
// it retired (including stale pops, which also shrink the frontier).
func (w *asyncWorker) expand(sh *asyncShared) int {
	c := w.ctx
	did := 0
	for did < asyncExpandBatch && w.open.len() > 0 {
		if sh.stop.Load() {
			break // canceled: stop generating work, keep draining
		}
		top := w.open.a[0].f
		if top >= sh.incG.Load() {
			// Under an admissible bound nothing at or beyond the
			// incumbent can improve it: the frontier is exhausted.
			break
		}
		// Throttle on the watermark (which includes our own top, so the
		// global minimum holder always proceeds).
		topG := w.open.a[0].g
		if top != w.lastF || topG != w.lastG {
			w.lastF, w.lastG = top, topG
			sh.gtops[w.id].Store(topG)
			sh.fmins[w.id].Store(top)
		}
		wmF, wmG := sh.wmF.Load(), sh.wmG.Load()
		if w.wmAge++; w.wmAge >= 64 || top > wmF || topG+asyncDiveWindow < wmG {
			// Full scan when the cache says block (it may simply be
			// stale after the front advanced) and periodically (a
			// too-permissive stale cache means silent overshoot).
			w.wmAge = 0
			wmF, wmG = sh.watermark()
		}
		if top > wmF || topG+asyncDiveWindow < wmG {
			break
		}
		e := w.open.pop()
		did++
		nd := w.nodes[e.node]
		if e.g > w.table.best[nd.ref] {
			continue // stale
		}
		if asyncTestDelay != nil {
			asyncTestDelay(int(w.id))
		}
		key := w.table.key(nd.ref)
		c.scratch.RestorePacked(key)
		if c.scratch.Complete() {
			sh.improve(e.g, w.id, e.node)
			continue
		}
		w.expanded++
		if w.expanded&63 == 0 {
			sh.expanded.Add(64) // batched: the budget check tolerates slack
			if sh.abort.Load() {
				return did
			}
		}
		c.moveBuf = c.moveBuf[:0]
		c.appendMoves(c.scratch, key)
		for _, m := range c.moveBuf {
			undo, err := c.scratch.ApplyForUndo(m)
			if err != nil {
				panic("solve: appendMoves emitted illegal move: " + err.Error())
			}
			childG := e.g + c.moveCost(m)
			c.keyBuf = c.scratch.AppendPacked(c.keyBuf[:0])
			ch := hashKey(c.keyBuf)
			d := int(ch % uint64(sh.nw))
			ba := w.out[d]
			ba.meta = append(ba.meta, proposal{
				hash: ch, g: childG, srcShard: w.id, parentNode: e.node, move: m,
			})
			ba.keys = append(ba.keys, c.keyBuf...)
			if e.f < ba.minPF {
				ba.minPF = e.f
			}
			if childG > ba.maxG {
				ba.maxG = childG
			}
			c.scratch.Undo(undo)
			if d != int(w.id) && len(ba.meta) >= asyncFlushBatch {
				w.flush(sh, d)
			}
		}
	}
	return did
}

// drainSelf relaxes the proposals this worker buffered for its own
// shard. They are never relaxed inline during expansion: relaxBatch
// restores arbitrary states onto the shared scratch, which would
// corrupt the apply/undo chain mid-expansion.
func (w *asyncWorker) drainSelf() int {
	ba := w.out[w.id]
	n := len(ba.meta)
	if n == 0 {
		return 0
	}
	w.relaxBatch(ba.meta, ba.keys)
	ba.meta, ba.keys = ba.meta[:0], ba.keys[:0]
	ba.minPF, ba.maxG = costUnreached, 0
	return n
}

// flush deposits the buffered proposals for destination d (never the
// worker's own shard — see drainSelf). The batch changes hands whole;
// a recycled buffer replaces it on the sender.
func (w *asyncWorker) flush(sh *asyncShared, d int) {
	ba := w.out[d]
	if len(ba.meta) == 0 {
		return
	}
	n := int64(len(ba.meta)) // before the deposit: ba changes hands there
	b := &sh.boxes[int(w.id)*sh.nw+d]
	b.mu.Lock()
	b.batches = append(b.batches, ba)
	if ba.minPF < b.pendF.Load() {
		b.pendF.Store(ba.minPF)
	}
	if ba.maxG > b.pendG.Load() {
		b.pendG.Store(ba.maxG)
	}
	b.mu.Unlock()
	// Counted after the deposit: a probe that misses this increment
	// sees either recv < sent or a sent change on its re-read, and a
	// worker is only observed passive after its flush completes.
	sh.sent.Add(n)
	w.out[d] = asyncBatchPool.Get().(*asyncBatch)
}

// flushAll publishes every cross-shard outbox (required before going
// passive; the self outbox is empty by then, drained each loop turn).
func (w *asyncWorker) flushAll(sh *asyncShared) {
	for d := 0; d < sh.nw; d++ {
		if d != int(w.id) {
			w.flush(sh, d)
		}
	}
}

// shardTrace reconstructs the incumbent's move chain across the
// per-shard node logs (shared by the sync and async engines).
func shardTrace(p Problem, logs [][]parNode, shard, node int32) Solution {
	var rev []pebble.Move
	s, n := shard, node
	for {
		nd := logs[s][n]
		if nd.parentShard < 0 {
			break
		}
		rev = append(rev, nd.move)
		s, n = nd.parentShard, nd.parentNode
	}
	moves := make([]pebble.Move, len(rev))
	for i := range rev {
		moves[i] = rev[len(rev)-1-i]
	}
	tr := &pebble.Trace{Model: p.Model, R: p.R, Convention: p.Convention, Moves: moves}
	return verify(p, tr)
}
