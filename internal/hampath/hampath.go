// Package hampath decides the Hamiltonian Path problem exactly via the
// Held-Karp bitmask dynamic program, O(2^n · n^2) time and O(2^n · n)
// memory. It is the source-problem oracle for the paper's Theorem 2
// reduction: pebbling the reduction DAG at the threshold cost is possible
// iff the source graph has a Hamiltonian path.
package hampath

import (
	"fmt"
	"math/bits"

	"rbpebble/internal/ugraph"
)

// MaxN is the largest vertex count Solve accepts (the DP table has
// 2^n · n entries).
const MaxN = 24

// Solve reports whether g has a Hamiltonian path and, if so, returns one
// as a vertex sequence. Graphs with 0 vertices trivially have one (the
// empty path); a single vertex is a path of length 0.
func Solve(g *ugraph.Graph) (bool, []int) {
	n := g.N()
	if n > MaxN {
		panic(fmt.Sprintf("hampath: n=%d exceeds MaxN=%d", n, MaxN))
	}
	if n == 0 {
		return true, nil
	}
	if n == 1 {
		return true, []int{0}
	}
	// adjacency bitmasks
	adj := make([]uint32, n)
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(u) {
			adj[u] |= 1 << uint(v)
		}
	}
	size := 1 << uint(n)
	// reach[mask] = bitset of possible path endpoints using exactly mask.
	reach := make([]uint32, size)
	for v := 0; v < n; v++ {
		reach[1<<uint(v)] = 1 << uint(v)
	}
	for mask := 1; mask < size; mask++ {
		ends := reach[mask]
		if ends == 0 {
			continue
		}
		for e := ends; e != 0; e &= e - 1 {
			last := bits.TrailingZeros32(e & (^e + 1))
			nexts := adj[last] &^ uint32(mask)
			for nx := nexts; nx != 0; nx &= nx - 1 {
				w := bits.TrailingZeros32(nx & (^nx + 1))
				reach[mask|1<<uint(w)] |= 1 << uint(w)
			}
		}
	}
	full := size - 1
	if reach[full] == 0 {
		return false, nil
	}
	// Reconstruct a witness path backwards.
	path := make([]int, 0, n)
	mask := full
	last := bits.TrailingZeros32(reach[full])
	path = append(path, last)
	for len(path) < n {
		prevMask := mask &^ (1 << uint(last))
		found := -1
		cands := reach[prevMask] & adj[last]
		if cands == 0 {
			panic("hampath: reconstruction failed (internal inconsistency)")
		}
		found = bits.TrailingZeros32(cands)
		path = append(path, found)
		mask = prevMask
		last = found
	}
	// Reverse into forward order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return true, path
}

// Verify reports whether path is a Hamiltonian path of g: a permutation
// of all vertices with consecutive vertices adjacent.
func Verify(g *ugraph.Graph, path []int) bool {
	if len(path) != g.N() {
		return false
	}
	seen := make([]bool, g.N())
	for _, v := range path {
		if v < 0 || v >= g.N() || seen[v] {
			return false
		}
		seen[v] = true
	}
	for i := 0; i+1 < len(path); i++ {
		if !g.HasEdge(path[i], path[i+1]) {
			return false
		}
	}
	return true
}
