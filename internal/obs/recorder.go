package obs

import "sync"

// Recorder retains the most recent traces for /debug/trace lookup. It
// is a fixed-capacity ring keyed by trace ID: registering past
// capacity evicts the oldest trace. Duplicate IDs (a client reusing a
// header across requests) keep the most recent registration.
type Recorder struct {
	mu    sync.Mutex
	cap   int
	order []string // ring of IDs in arrival order
	byID  map[string]*Trace
}

// NewRecorder creates a recorder retaining up to capacity traces
// (minimum 1; a non-positive capacity gets the default of 256).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 256
	}
	return &Recorder{cap: capacity, byID: make(map[string]*Trace, capacity)}
}

// Register retains tr, evicting the oldest trace when full.
func (r *Recorder) Register(tr *Trace) {
	if r == nil || tr == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byID[tr.ID]; ok {
		r.byID[tr.ID] = tr // re-registration: newest wins, keep ring slot
		return
	}
	for len(r.order) >= r.cap {
		old := r.order[0]
		r.order = r.order[1:]
		delete(r.byID, old)
	}
	r.order = append(r.order, tr.ID)
	r.byID[tr.ID] = tr
}

// Lookup returns the retained trace for id, or nil.
func (r *Recorder) Lookup(id string) *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byID[id]
}

// Len reports how many traces are retained.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.order)
}
