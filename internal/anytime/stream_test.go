package anytime

import (
	"context"
	"sync"
	"testing"

	"rbpebble/internal/daggen"
	"rbpebble/internal/pebble"
	"rbpebble/internal/solve"
)

// snapshotLog collects OnProgress snapshots under a lock (the callback
// contract allows concurrent solver goroutines).
type snapshotLog struct {
	mu    sync.Mutex
	snaps []Snapshot
}

func (l *snapshotLog) add(s Snapshot) {
	l.mu.Lock()
	l.snaps = append(l.snaps, s)
	l.mu.Unlock()
}

func (l *snapshotLog) all() []Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Snapshot(nil), l.snaps...)
}

// TestParallelStreamsCertifiedLowerBound is the acceptance test for the
// async engine's mid-flight certified bound: under Workers > 1 the
// orchestrator must observe at least one certified lower-bound
// improvement from the best-first engine BEFORE the solve completes.
// The instance closes optimally with a gap between the root bound and
// the optimum, so any "astar" snapshot with a lower bound strictly
// below the optimum can only have come from the engine's in-flight
// certified f-min stream (the completion-time harvest reports the
// optimum itself). DFS is disabled so the improvements are
// unambiguously the async engine's.
func TestParallelStreamsCertifiedLowerBound(t *testing.T) {
	p := solve.Problem{G: daggen.Pyramid(5), Model: pebble.NewModel(pebble.Oneshot), R: 3}
	root, err := solve.RootLowerBound(p, solve.HeuristicAuto)
	if err != nil {
		t.Fatal(err)
	}

	var log snapshotLog
	res, err := Solve(context.Background(), p, Options{
		Workers:    2,
		DisableDFS: true,
		OnProgress: log.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal {
		t.Fatalf("full-budget solve not optimal: %v", res)
	}
	if root >= res.LowerScaled {
		t.Fatalf("instance closed at the root bound (%d >= %d); pick a harder one", root, res.LowerScaled)
	}

	midflight := 0
	for _, s := range log.all() {
		if s.Source == "astar" && s.LowerScaled > root && s.LowerScaled < res.UpperScaled {
			midflight++
		}
	}
	if midflight == 0 {
		t.Fatalf("no mid-flight certified lower-bound improvement observed under Workers=2; snapshots: %+v", log.all())
	}
}

// TestProgressStreamMonotoneNoDuplicates checks the emission contract:
// every delivered snapshot strictly improves at least one end of the
// interval and regresses neither, under parallel workers with both
// engines racing (the scenario that used to allow duplicate or
// out-of-order (upper, lower) pairs).
func TestProgressStreamMonotoneNoDuplicates(t *testing.T) {
	p := solve.Problem{G: daggen.Pyramid(5), Model: pebble.NewModel(pebble.Oneshot), R: 3}
	var log snapshotLog
	res, err := Solve(context.Background(), p, Options{
		Workers:    2,
		OnProgress: log.add,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal {
		t.Fatalf("full-budget solve not optimal: %v", res)
	}
	snaps := log.all()
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots at all")
	}
	for i := 1; i < len(snaps); i++ {
		prev, cur := snaps[i-1], snaps[i]
		if cur.UpperScaled > prev.UpperScaled {
			t.Fatalf("snapshot %d regressed upper: %+v -> %+v", i, prev, cur)
		}
		if cur.LowerScaled < prev.LowerScaled {
			t.Fatalf("snapshot %d regressed lower: %+v -> %+v", i, prev, cur)
		}
		if cur.UpperScaled == prev.UpperScaled && cur.LowerScaled == prev.LowerScaled {
			t.Fatalf("snapshot %d duplicates the interval: %+v -> %+v", i, prev, cur)
		}
	}
	last := snaps[len(snaps)-1]
	if last.LowerScaled > res.UpperScaled {
		t.Fatalf("final streamed lower %d exceeds proven optimum %d", last.LowerScaled, res.UpperScaled)
	}
}
