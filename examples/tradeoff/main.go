// Tradeoff reproduces the paper's Figure 4: the time-memory tradeoff
// diagram of the Figure 3 construction, where every additional red pebble
// saves the maximal possible 2n transfers, in all four model variants.
package main

import (
	"fmt"
	"log"
	"strings"

	"rbpebble"
)

func main() {
	const d, chain = 5, 60
	tr := rbpebble.NewTradeoff(d, chain)
	fmt.Printf("Figure 3 DAG: d=%d, chain n=%d (%d nodes, Δ=%d)\n",
		d, chain, tr.G.N(), tr.G.MaxInDegree())
	fmt.Printf("feasible R: %d..%d\n\n", tr.MinR(), tr.MaxUsefulR())

	type curve struct {
		name  string
		model rbpebble.Model
	}
	curves := []curve{
		{"oneshot", rbpebble.NewModel(rbpebble.Oneshot)},
		{"base", rbpebble.NewModel(rbpebble.Base)},
		{"nodel", rbpebble.NewModel(rbpebble.NoDel)},
		{"compcost", rbpebble.NewModel(rbpebble.CompCost)},
	}

	fmt.Printf("%4s  %9s", "R", "predicted")
	for _, c := range curves {
		fmt.Printf("  %9s", c.name)
	}
	fmt.Println()

	costs := map[string][]float64{}
	for r := tr.MinR(); r <= tr.MaxUsefulR(); r++ {
		fmt.Printf("%4d  %9d", r, tr.PredictedOptOneshot(r))
		for _, c := range curves {
			_, res, err := rbpebble.Execute(tr.G, c.model, r, rbpebble.Convention{},
				tr.StrategyOrder(), rbpebble.SchedOptions{Policy: rbpebble.Belady})
			if err != nil {
				log.Fatal(err)
			}
			v := res.Cost.Value(c.model)
			costs[c.name] = append(costs[c.name], v)
			fmt.Printf("  %9.1f", v)
		}
		fmt.Println()
	}

	// ASCII rendering of the oneshot curve (the paper's Figure 4 shape:
	// a straight line of slope -2n from (d+2, ~2dn) to (2d+2, 0)).
	fmt.Println("\noneshot tradeoff (each * ≈ one R step):")
	vals := costs["oneshot"]
	max := vals[0]
	for i, v := range vals {
		bar := 0
		if max > 0 {
			bar = int(v / max * 50)
		}
		fmt.Printf("R=%2d |%s %.0f\n", tr.MinR()+i, strings.Repeat("*", bar), v)
	}
	fmt.Println("\nEvery extra red pebble saves ≈2n transfers — the maximal")
	fmt.Println("possible drop (paper §5). nodel sits ≈n above oneshot and")
	fmt.Println("compcost ≈εn above, as Appendix A.1 predicts.")
}
