// Parallel demonstrates the multi-processor extension of the red-blue
// pebble game (Elango et al., cited in the paper's related work): P
// processors with private fast memories communicate through shared slow
// memory, and the assignment of DAG nodes to processors trades
// parallelism against communication volume.
package main

import (
	"fmt"
	"log"

	"rbpebble"
	"rbpebble/internal/parpeb"
)

func main() {
	g := rbpebble.FFT(5) // 32-point butterfly, 192 nodes
	order, err := g.TopoOrder()
	if err != nil {
		log.Fatal(err)
	}
	const r = 8
	fmt.Printf("workload: 32-point FFT butterfly (%d nodes), R=%d per processor\n\n", g.N(), r)
	fmt.Printf("%3s  %-12s %12s %8s %9s\n", "P", "assignment", "cross-edges", "total", "max/proc")

	for _, p := range []int{1, 2, 4, 8} {
		for _, a := range []struct {
			name   string
			assign parpeb.Assignment
		}{
			{"blocks", parpeb.Blocks(order, g.N(), p)},
			{"round-robin", parpeb.RoundRobin(order, g.N(), p)},
		} {
			cfg := parpeb.Config{P: p, R: r, Oneshot: true}
			_, res, err := parpeb.Execute(g, cfg, order, a.assign)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%3d  %-12s %12d %8d %9d\n",
				p, a.name, res.CrossEdges, res.Total, res.MaxProc)
		}
	}

	fmt.Println("\ntotal = all transfers (communication volume); max/proc bounds the")
	fmt.Println("per-processor I/O critical path. Two forces compete as P grows:")
	fmt.Println("cut edges force traffic through shared memory, while the aggregate")
	fmt.Println("fast capacity P·R reduces capacity misses. On the butterfly,")
	fmt.Println("round-robin keeps the straight edges processor-local and wins;")
	fmt.Println("on a chain (try it), contiguous blocks win instead — assignment")
	fmt.Println("quality is exactly what the multi-shade pebble game studies.")
}
