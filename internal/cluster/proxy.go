package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rbpebble/internal/instcache"
	"rbpebble/internal/obs"
	"rbpebble/internal/service"
)

// ProxyConfig tunes a Proxy. Zero values select the defaults.
type ProxyConfig struct {
	// Members are the statically-seeded rbserve replicas, as host:port.
	// They never TTL-expire. May be empty: nodes can join dynamically
	// through POST /cluster/join instead.
	Members []string
	// VirtualNodes per member on the ring (default 64).
	VirtualNodes int
	// ProbeInterval is the health-probe period (default 2s; < 0
	// disables the background prober AND the membership sweeper — tests
	// drive health and expiry by hand).
	ProbeInterval time.Duration
	// MemberTTL is the dynamic-member lease: a joined node that stops
	// renewing for this long is declared dead and removed from the ring
	// (default 15s).
	MemberTTL time.Duration
	// MaxBodyBytes caps the request body (default 64 MiB), matching the
	// node-side limit so the proxy rejects oversized bodies before
	// buffering them for failover replay.
	MaxBodyBytes int64
	// MaxNodes rejects instances above this size before the routing
	// parse materializes the graph (default 100000, matching the
	// rbserve default) — a tiny body declaring two billion nodes must
	// not allocate at the routing tier any more than at a node.
	MaxNodes int
	// TenantRate/TenantBurst configure per-tenant token-bucket
	// admission (tokens/second and bucket size; one token = one solve
	// item, batches draw their item count at once). Rate <= 0 disables
	// quotas. Tenants are named by the X-Rbpebble-Tenant header; absent
	// maps to the "default" bucket.
	TenantRate  float64
	TenantBurst int
	// Client performs the forwards (default: 60s-timeout client — it
	// must outlive the longest node-side solve deadline). It becomes
	// the transport under the retry/breaker comm layer.
	Client *http.Client
	// Comm tunes the retry/backoff/circuit-breaker policy of every
	// proxy->node call (see CommConfig). Comm.Client defaults to
	// Client; Comm.OnBreakerOpen is chained so an opening breaker also
	// demotes the member in the ring.
	Comm CommConfig
	// TraceCap bounds the proxy's /debug/trace/{id} recorder ring
	// (default 256 most recent traces).
	TraceCap int
	// Logger receives structured membership/breaker lifecycle logs
	// (default: discard).
	Logger *slog.Logger
}

// proxyMetrics are the proxy's own monotone counters.
type proxyMetrics struct {
	requests, routed, failovers, fanouts, errors atomic.Uint64
	handoffEntries, handoffDropped               atomic.Uint64
	replicatedEntries, replicatedDropped         atomic.Uint64
	batches, batchItems, subBatches              atomic.Uint64
	quotaRejected                                atomic.Uint64
}

// Proxy is the cluster front end: it routes each POST /solve to the
// replica owning the request's canonical instance key (so repeats and
// isomorphic relabelings warm the same node's interval cache), fails
// over along the ring on node failure, fans job polls out to every
// node, merges the fleet's /metrics and /healthz into cluster-level
// views, and runs the elastic-membership plane: nodes join and renew
// leases via POST /cluster/join, hand their caches off on drain via
// POST /cluster/handoff, and replicate proven-optimal entries via
// POST /cluster/replicate. Create with NewProxy, serve Handler, stop
// with Close.
type Proxy struct {
	cfg        ProxyConfig
	ring       *Ring
	comm       *CommClient
	membership *Membership
	prober     *Prober
	mux        *http.ServeMux
	quota      *TenantQuota
	recorder   *obs.Recorder
	log        *slog.Logger
	m          proxyMetrics

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// NewProxy returns a started Proxy.
func NewProxy(cfg ProxyConfig) *Proxy {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.MaxNodes <= 0 {
		cfg.MaxNodes = 100000
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 60 * time.Second}
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	p := &Proxy{
		cfg:      cfg,
		ring:     NewRing(cfg.VirtualNodes),
		recorder: obs.NewRecorder(cfg.TraceCap),
		log:      cfg.Logger,
		stop:     make(chan struct{}),
	}
	p.membership = NewMembership(p.ring, cfg.MemberTTL)
	p.membership.AddStatic(cfg.Members...)
	comm := cfg.Comm
	if comm.Client == nil {
		comm.Client = cfg.Client
	}
	// An opening breaker demotes the member immediately — faster than
	// waiting for the prober to notice the flapping.
	userOnOpen := comm.OnBreakerOpen
	comm.OnBreakerOpen = func(member string) {
		p.ring.SetHealthy(member, false)
		p.log.Warn("circuit breaker opened; member demoted", slog.String("member", member))
		if userOnOpen != nil {
			userOnOpen(member)
		}
	}
	p.comm = NewComm(comm)
	if cfg.ProbeInterval >= 0 {
		p.prober = NewProber(p.ring, cfg.ProbeInterval, nil, func(member string, healthy, draining bool) {
			p.membership.SetDraining(member, draining)
		})
		p.wg.Add(1)
		go p.sweepLoop()
	}
	p.quota = NewTenantQuota(cfg.TenantRate, cfg.TenantBurst)
	p.mux = http.NewServeMux()
	p.mux.HandleFunc("POST /solve", p.handleSolve)
	p.mux.HandleFunc("POST /solve/batch", p.handleSolveBatch)
	p.mux.HandleFunc("GET /solve/{id}", p.handleJob)
	p.mux.HandleFunc("DELETE /solve/{id}", p.handleJob)
	p.mux.HandleFunc("GET /healthz", p.handleHealthz)
	p.mux.HandleFunc("GET /metrics", p.handleMetrics)
	p.mux.HandleFunc("POST /cluster/join", p.handleJoin)
	p.mux.HandleFunc("POST /cluster/leave", p.handleLeave)
	p.mux.HandleFunc("GET /cluster/members", p.handleMembers)
	p.mux.HandleFunc("POST /cluster/handoff", p.handleHandoff)
	p.mux.HandleFunc("POST /cluster/replicate", p.handleReplicate)
	p.mux.HandleFunc("GET /debug/solves", p.handleDebugSolves)
	p.mux.HandleFunc("GET /debug/trace/{id}", p.handleDebugTrace)
	p.mux.HandleFunc("GET /debug/jobs/{id}/search", p.handleDebugJobSearch)
	return p
}

// Ring exposes the proxy's ring (the rbproxy admin surface and tests
// adjust membership through it).
func (p *Proxy) Ring() *Ring { return p.ring }

// Membership exposes the dynamic-member registry (tests drive lease
// expiry through it when the background sweeper is disabled).
func (p *Proxy) Membership() *Membership { return p.membership }

// Comm exposes the hardened node client (tests inspect breaker state).
func (p *Proxy) Comm() *CommClient { return p.comm }

// Handler returns the HTTP handler.
func (p *Proxy) Handler() http.Handler { return p.mux }

// Close stops the health prober and the membership sweeper.
func (p *Proxy) Close() {
	p.once.Do(func() { close(p.stop) })
	if p.prober != nil {
		p.prober.Stop()
	}
	p.wg.Wait()
}

// sweepLoop expires dead dynamic members (lease lapsed: no heartbeat
// renewals) off the ring, at a quarter of the TTL so a dead node is
// gone within ~1.25 TTLs worst case.
func (p *Proxy) sweepLoop() {
	defer p.wg.Done()
	t := time.NewTicker(p.membership.TTL() / 4)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			for _, m := range p.membership.Sweep() {
				p.comm.Forget(m)
			}
		}
	}
}

// RouteKey computes the canonical routing key of a solve request by
// parsing it exactly the way a node will (service.BuildProblem, with
// the same node-count guard) and keying the resulting instance.
// Isomorphic relabelings of one DAG yield one key, so they all route
// to the same replica's cache.
func RouteKey(req service.SolveRequest, maxNodes int) (string, error) {
	prob, err := service.BuildProblem(req, maxNodes)
	if err != nil {
		return "", err
	}
	inst := instcache.Instance{G: prob.G, Model: prob.Model, R: prob.R, Convention: prob.Convention}
	key, _ := inst.Key()
	return key, nil
}

// handleSolve routes by canonical instance key with ring-order
// failover: a connection error, a 502, or a draining 503 from the
// owner demotes it and moves on to the next ring member.
func (p *Proxy) handleSolve(w http.ResponseWriter, r *http.Request) {
	p.m.requests.Add(1)
	// Start (or adopt) the trace before any rejection path so quota
	// 429s and routing errors still carry X-Rbpebble-Trace.
	ctx, _ := obs.StartRequest(w, r, p.recorder)
	if !p.admitTenant(w, r, 1) {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, p.cfg.MaxBodyBytes))
	if err != nil {
		p.m.errors.Add(1)
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	var req service.SolveRequest
	if err := json.Unmarshal(body, &req); err != nil {
		p.m.errors.Add(1)
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	rctx, rsp := obs.StartSpan(ctx, "route")
	key, err := RouteKey(req, p.cfg.MaxNodes)
	if err != nil {
		rsp.SetAttr("err", err.Error())
		rsp.End()
		p.m.errors.Add(1)
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	rsp.End()
	owners := p.ring.Owners(key, len(p.ring.Members()))
	if len(owners) == 0 {
		p.m.errors.Add(1)
		httpError(w, http.StatusServiceUnavailable, "no cluster members")
		return
	}
	for i, member := range owners {
		if i > 0 {
			p.m.failovers.Add(1)
		}
		// Each failover attempt is its own span under the same trace: the
		// span tree shows which members were tried and why they lost the
		// request, while the node sees one trace ID across all attempts.
		fctx, fsp := obs.StartSpan(rctx, "forward")
		fsp.SetAttr("member", member)
		// The comm layer retries pre-send dial failures with backoff and
		// fails fast on an open breaker; anything it still can't deliver
		// demotes the member and fails over along the ring.
		resp, err := p.comm.Post(fctx, member, "/solve", "application/json", body)
		if err != nil {
			fsp.SetAttr("err", err.Error())
			fsp.End()
			p.ring.SetHealthy(member, false)
			p.log.Warn("solve forward failed; member demoted",
				slog.String("member", member), slog.String("trace", obs.TraceIDFrom(ctx)), slog.Any("err", err))
			continue
		}
		fsp.SetAttr("status", strconv.Itoa(resp.StatusCode))
		if resp.StatusCode == http.StatusBadGateway ||
			(resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("X-Rbserve-Draining") == "1") {
			// The node is going away (draining) or fronting something
			// broken: demote and fail over. Per-request 503s WITHOUT the
			// draining header (queue full, singleflight wait timeout) are
			// relayed instead — a healthy node emits those under load,
			// and demoting it would cascade the whole keyspace onto
			// cache-cold members. The body is drained so the connection
			// can be reused.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			fsp.SetAttr("failover", "true")
			fsp.End()
			p.ring.SetHealthy(member, false)
			continue
		}
		p.m.routed.Add(1)
		relayResponse(w, resp, member)
		fsp.End()
		return
	}
	p.m.errors.Add(1)
	httpError(w, http.StatusBadGateway, "all cluster members failed")
}

// handleJob fans a job poll or cancellation out to every HEALTHY
// member (job IDs are node-local; the first node that knows the ID
// answers). Unhealthy members are skipped — probing a blackholed node
// with the long forward timeout would hang the poll for minutes, and
// its jobs died with it anyway.
func (p *Proxy) handleJob(w http.ResponseWriter, r *http.Request) {
	p.m.requests.Add(1)
	p.m.fanouts.Add(1)
	ctx, _ := obs.StartRequest(w, r, nil)
	members := healthyMembers(p.ring)
	if len(members) == 0 {
		httpError(w, http.StatusServiceUnavailable, "no healthy cluster members")
		return
	}
	for _, member := range members {
		resp, err := p.comm.Do(ctx, member, r.Method, "/solve/"+r.PathValue("id"), "", nil)
		if err != nil {
			p.ring.SetHealthy(member, false)
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		relayResponse(w, resp, member)
		return
	}
	httpError(w, http.StatusNotFound, "unknown job on every cluster member")
}

// NodeHealth is one member's slot in the cluster health view.
type NodeHealth struct {
	Member   string `json:"member"`
	Healthy  bool   `json:"healthy"`
	Draining bool   `json:"draining,omitempty"`
}

// ClusterHealth is the GET /healthz body: the cluster is ok while any
// member is routable.
type ClusterHealth struct {
	OK    bool         `json:"ok"`
	Nodes []NodeHealth `json:"nodes"`
}

func (p *Proxy) handleHealthz(w http.ResponseWriter, r *http.Request) {
	members := p.ring.Members()
	view := ClusterHealth{}
	for _, m := range sortedKeys(members) {
		view.Nodes = append(view.Nodes, NodeHealth{
			Member: m, Healthy: members[m], Draining: p.membership.Draining(m),
		})
		view.OK = view.OK || members[m]
	}
	w.Header().Set("Content-Type", "application/json")
	if !view.OK {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(view)
}

// handleMetrics merges the fleet: every downstream rbserve counter is
// summed across reachable members and re-emitted with a cluster_
// prefix (so rbserve_warm_starts_total across the fleet shows as
// cluster_rbserve_warm_starts_total), followed by per-node up gauges
// and the proxy's own counters.
func (p *Proxy) handleMetrics(w http.ResponseWriter, r *http.Request) {
	members := p.ring.Members()
	sums := map[string]float64{}
	var names []string
	up := map[string]bool{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for m, healthy := range members {
		if !healthy {
			continue
		}
		wg.Add(1)
		go func(m string) {
			defer wg.Done()
			vals, err := p.fetchMetrics(r.Context(), m)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				return
			}
			up[m] = true
			for name, v := range vals {
				if _, ok := sums[name]; !ok {
					names = append(names, name)
				}
				sums[name] += v
			}
		}(m)
	}
	wg.Wait()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	sort.Strings(names)
	for _, name := range names {
		// 'g' prints integers bare (counters stay "42", not "42.000000")
		// and keeps fractional histogram sums exact enough.
		fmt.Fprintf(w, "cluster_%s %s\n", name, strconv.FormatFloat(sums[name], 'g', -1, 64))
	}
	for _, m := range sortedKeys(members) {
		v := 0
		if members[m] && up[m] {
			v = 1
		}
		fmt.Fprintf(w, "rbproxy_node_up{node=%q} %d\n", m, v)
	}
	joins, leaves, expired := p.membership.Counters()
	for _, kv := range []struct {
		name string
		v    uint64
	}{
		{"cluster_membership_size", uint64(p.membership.Size())},
		{"cluster_breaker_open", uint64(len(p.comm.OpenBreakers()))},
		{"cluster_handoff_entries_total", p.m.handoffEntries.Load()},
		{"cluster_handoff_dropped_total", p.m.handoffDropped.Load()},
		{"cluster_replicated_entries_total", p.m.replicatedEntries.Load()},
		{"cluster_replicated_dropped_total", p.m.replicatedDropped.Load()},
		{"rbproxy_requests_total", p.m.requests.Load()},
		{"rbproxy_routed_total", p.m.routed.Load()},
		{"rbproxy_failovers_total", p.m.failovers.Load()},
		{"rbproxy_fanouts_total", p.m.fanouts.Load()},
		{"rbproxy_errors_total", p.m.errors.Load()},
		{"rbproxy_batches_total", p.m.batches.Load()},
		{"rbproxy_batch_items_total", p.m.batchItems.Load()},
		{"rbproxy_batch_subbatches_total", p.m.subBatches.Load()},
		{"rbproxy_quota_rejected_total", p.m.quotaRejected.Load()},
		{"rbproxy_joins_total", joins},
		{"rbproxy_leaves_total", leaves},
		{"rbproxy_expired_members_total", expired},
	} {
		fmt.Fprintf(w, "%s %d\n", kv.name, kv.v)
	}
}

// ImportPayload is the body of POST /cluster/handoff and POST
// /cluster/replicate (node -> proxy) and of POST /cache/import
// (proxy -> node): a batch of cache entries in canonical numbering,
// with the sending member so routing can exclude it.
type ImportPayload struct {
	From    string            `json:"from,omitempty"`
	Entries []instcache.Entry `json:"entries"`
}

// joinRequest is the POST /cluster/join and /cluster/leave body.
type joinRequest struct {
	Member   string `json:"member"`
	Draining bool   `json:"draining,omitempty"`
}

// JoinResponse tells the joining node its lease: renew well within
// TTLMS (nodes use TTL/3) or be declared dead. MemberList and VNodes
// let the node mirror the proxy's ring locally, so its background
// refiner can compute key ownership without a round trip per key;
// draining members are excluded (they no longer own keys).
type JoinResponse struct {
	TTLMS      int64    `json:"ttl_ms"`
	Members    int      `json:"members"`
	MemberList []string `json:"member_list,omitempty"`
	VNodes     int      `json:"vnodes,omitempty"`
}

// handleJoin registers or renews a member lease. Heartbeat renewals
// arrive on the same endpoint; a renewal with draining=true announces
// a SIGTERM drain without waiting for the next health probe.
func (p *Proxy) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad join body: "+err.Error())
		return
	}
	if !strings.Contains(req.Member, ":") {
		httpError(w, http.StatusBadRequest, "member must be host:port")
		return
	}
	p.membership.Join(req.Member, req.Draining)
	var list []string
	for _, v := range p.membership.View() {
		if !v.Draining {
			list = append(list, v.Member)
		}
	}
	writeJSON(w, JoinResponse{
		TTLMS:      p.membership.TTL().Milliseconds(),
		Members:    p.membership.Size(),
		MemberList: list,
		VNodes:     p.cfg.VirtualNodes,
	})
}

// handleLeave deregisters a member immediately (the graceful goodbye
// after its drain handoff).
func (p *Proxy) handleLeave(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad leave body: "+err.Error())
		return
	}
	p.membership.Leave(req.Member)
	p.comm.Forget(req.Member)
	writeJSON(w, JoinResponse{TTLMS: p.membership.TTL().Milliseconds(), Members: p.membership.Size()})
}

// handleMembers serves the registry view.
func (p *Proxy) handleMembers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, p.membership.View())
}

// handleHandoff receives a draining node's cache export and pushes
// each entry to the ring owner that will serve its key once the
// drainer is gone — so failover warm-starts refinement instead of
// re-searching from scratch. Receiving a handoff also marks the sender
// draining and demotes it, even if no probe has noticed yet.
func (p *Proxy) handleHandoff(w http.ResponseWriter, r *http.Request) {
	payload, ok := p.decodeImport(w, r)
	if !ok {
		return
	}
	if payload.From != "" {
		p.membership.SetDraining(payload.From, true)
		p.ring.SetHealthy(payload.From, false)
	}
	delivered, dropped := p.routeImports(r.Context(), payload.Entries, payload.From)
	p.m.handoffEntries.Add(delivered)
	p.m.handoffDropped.Add(dropped)
	writeJSON(w, map[string]uint64{"delivered": delivered, "dropped": dropped})
}

// handleReplicate receives freshly stored entries (proven-optimal
// values above all) from a live node and forwards each to the next
// ring owner of its key, so a hard crash — no graceful drain — still
// leaves the most valuable cache tier servable.
func (p *Proxy) handleReplicate(w http.ResponseWriter, r *http.Request) {
	payload, ok := p.decodeImport(w, r)
	if !ok {
		return
	}
	delivered, dropped := p.routeImports(r.Context(), payload.Entries, payload.From)
	p.m.replicatedEntries.Add(delivered)
	p.m.replicatedDropped.Add(dropped)
	writeJSON(w, map[string]uint64{"delivered": delivered, "dropped": dropped})
}

func (p *Proxy) decodeImport(w http.ResponseWriter, r *http.Request) (ImportPayload, bool) {
	var payload ImportPayload
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, p.cfg.MaxBodyBytes)).Decode(&payload); err != nil {
		httpError(w, http.StatusBadRequest, "bad import body: "+err.Error())
		return payload, false
	}
	return payload, true
}

// routeImports delivers entries to each key's first eligible ring
// owner — skipping the excluded sender, draining members, demoted
// members and open breakers — batched per target node. A target that
// fails its batch is excluded and the batch re-routed (up to three
// rounds); entries with no eligible target are dropped (counted, and
// the membership churn that caused it will usually re-derive them).
func (p *Proxy) routeImports(ctx context.Context, entries []instcache.Entry, exclude string) (delivered, dropped uint64) {
	failed := map[string]bool{}
	pending := entries
	for round := 0; round < 3 && len(pending) > 0; round++ {
		groups := map[string][]instcache.Entry{}
		for _, e := range pending {
			target := p.importTarget(e.Key, exclude, failed)
			if target == "" {
				dropped++
				continue
			}
			groups[target] = append(groups[target], e)
		}
		var retry []instcache.Entry
		for target, group := range groups {
			body, err := json.Marshal(ImportPayload{From: exclude, Entries: group})
			if err != nil {
				dropped += uint64(len(group))
				continue
			}
			resp, err := p.comm.Post(ctx, target, "/cache/import", "application/json", body)
			if err != nil {
				p.ring.SetHealthy(target, false)
				failed[target] = true
				retry = append(retry, group...)
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				failed[target] = true
				retry = append(retry, group...)
				continue
			}
			delivered += uint64(len(group))
		}
		pending = retry
	}
	dropped += uint64(len(pending))
	return delivered, dropped
}

// importTarget picks the member that should receive an imported entry
// for key: the first ring owner that is not the sender, not draining,
// not demoted, not behind an open breaker, and not already failed this
// routing pass.
func (p *Proxy) importTarget(key, exclude string, failed map[string]bool) string {
	for _, m := range p.ring.Owners(key, len(p.ring.Members())) {
		if m == exclude || failed[m] || !p.ring.Healthy(m) ||
			p.membership.Draining(m) || p.comm.BreakerOpen(m) {
			continue
		}
		return m
	}
	return ""
}

// labelPreservedMetrics are downstream series whose labels survive the
// fleet merge: summing a histogram bucket across nodes only makes
// sense per le bound, and a per-lane queue gauge is useless with the
// lane stripped. Everything else labeled (rbserve_job_lower_bound
// {job="..."}) is still summed under its label-stripped name.
var labelPreservedMetrics = map[string]bool{
	"rbserve_request_seconds_bucket": true,
	"rbserve_queue_depth":            true,
	// Summed per version label set, the standard fleet-rollout view:
	// cluster_rbserve_build_info{version=...} counts nodes per build.
	"rbserve_build_info": true,
}

// fetchMetrics scrapes one member's Prometheus text exposition into
// series -> value. Values are parsed as floats (histogram _sum lines
// are fractional seconds). For series in labelPreservedMetrics the
// full labeled series name is the key, so the fleet merge sums
// per-label-set across nodes; other labeled series are summed under
// the label-stripped name.
func (p *Proxy) fetchMetrics(ctx context.Context, member string) (map[string]float64, error) {
	resp, err := p.comm.Get(ctx, member, "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics status %d", resp.StatusCode)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, valStr, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		if i := strings.IndexByte(name, '{'); i >= 0 && !labelPreservedMetrics[name[:i]] {
			name = name[:i]
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			continue
		}
		out[name] += v
	}
	return out, sc.Err()
}

// healthyMembers lists the currently-healthy members in a
// deterministic order for fan-out endpoints.
func healthyMembers(r *Ring) []string {
	members := r.Members()
	out := make([]string, 0, len(members))
	for _, m := range sortedKeys(members) {
		if members[m] {
			out = append(out, m)
		}
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// relayResponse copies a downstream response to the client, stamping
// the member that served it.
func relayResponse(w http.ResponseWriter, resp *http.Response, member string) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.Header().Set("X-Rbproxy-Node", member)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
