package solve

import (
	"sort"

	"rbpebble/internal/bitset"
	"rbpebble/internal/dag"
	"rbpebble/internal/pebble"
)

// Heuristic selects the A* lower bound used by Exact.
type Heuristic int

const (
	// HeuristicAuto (the zero value) enables the strongest admissible
	// model-aware lower bound; it behaves exactly like
	// HeuristicSPartition.
	HeuristicAuto Heuristic = iota
	// HeuristicOff disables the lower bound entirely: Exact degenerates
	// to plain uniform-cost search (Dijkstra), the original behavior.
	// Useful for ablations and as the reference in admissibility tests.
	HeuristicOff
	// HeuristicLowerBound is the single-certificate lower bound
	// (mustCompute closure + forced transfers + the best one capacity
	// certificate). Kept as the ablation reference for the S-partition
	// packing bound.
	HeuristicLowerBound
	// HeuristicSPartition strengthens HeuristicLowerBound with a
	// Hong-Kung-style S-partition term: instead of the single best
	// capacity certificate it packs certificates with disjoint live
	// shells and sums their forced transfers (see spartition.go).
	HeuristicSPartition
)

// String names the heuristic mode.
func (h Heuristic) String() string {
	switch h {
	case HeuristicAuto:
		return "auto"
	case HeuristicOff:
		return "off"
	case HeuristicLowerBound:
		return "lower-bound"
	case HeuristicSPartition:
		return "s-partition"
	default:
		return "Heuristic(?)"
	}
}

// lowerBound computes an admissible, model-aware lower bound on the
// remaining cost of a pebbling position. It never overestimates in any
// of the four models, which makes A* return exactly the Dijkstra
// optimum while expanding far fewer states.
//
// The bound counts, per remaining completion:
//
//   - mustCompute: pebble-free nodes reachable backward from an
//     unsatisfied sink through pebble-free nodes. Each must receive at
//     least one Compute (a pebble can only appear on a bare node via
//     Compute, and its bare predecessors must in turn be computed to be
//     red at that moment). Charged ε each under compcost, 0 elsewhere.
//   - forced loads: blue predecessors of mustCompute nodes that can
//     never be recomputed — every blue node in oneshot (already
//     computed, or an initial source that is not computable), and blue
//     sources under SourcesStartBlue in every model. Each needs one
//     Load (cost 1). Distinct nodes, so the counts add.
//   - forced stores: under SinksMustBeBlue, every sink not currently
//     blue needs at least one Store (cost 1). Blue pebbles only arise
//     from Store, and these are on distinct, non-blue nodes, disjoint
//     from the forced-load set.
//
// estimate also detects dead positions — a mustCompute node that was
// already computed in oneshot, or a bare needed source under
// SourcesStartBlue — from which no completion exists at any cost.
type lowerBound struct {
	p        Problem
	enabled  bool
	spart    bool // S-partition packing over disjoint certificates (vs. single best)
	oneshot  bool
	scale    int64 // scaled cost of one transfer (EpsDenom under compcost, else 1)
	compCost int64 // scaled cost of one compute (1 under compcost, else 0)
	sinks    []dag.NodeID

	mustCompute *bitset.Set
	counted     *bitset.Set // blue nodes already counted as forced loads
	stack       []int32
	cands       []capCandidate
	pairs       []pairConstraint

	// S-partition scratch (see spartition.go): the charged-value set of
	// the packing pass.
	charged *bitset.Set

	// Arrival-term tables (see spartition.go): fullMaxIn[v] >= 0 marks v
	// as a full event (indeg = R-1) and holds the largest static
	// neighborhood overlap |N[v] ∩ N[u]| over all other full events u;
	// arrUnion is the event-neighborhood scratch set.
	fullMaxIn []int32
	arrUnion  *bitset.Set
}

// capMaxN bounds the graph size for which the capacity-term candidates
// are precomputed (the precomputation builds per-node ancestor and
// descendant masks, quadratic in n/64 words).
const capMaxN = 512

// capUse is one potentially-live value u evaluated against a capacity
// candidate w: anc records whether u is a strict ancestor of w, and
// useMask holds u's successors inside desc(w) (statically restricted to
// the initially-needed set).
type capUse struct {
	u       int32
	anc     bool
	useMask *bitset.Set
}

// capCandidate is one precomputed compute event w for the capacity term:
// slots = R - indeg(w) - 1 is the number of red slots not taken by
// preds(w) and w at the moment w is computed, and shell lists the values
// that can compete for them.
type capCandidate struct {
	w     dag.NodeID
	slots int
	shell []capUse
}

func newLowerBound(p Problem, mode Heuristic, start *pebble.State) *lowerBound {
	lb := &lowerBound{
		p:       p,
		enabled: mode != HeuristicOff,
		spart:   mode == HeuristicAuto || mode == HeuristicSPartition,
		oneshot: p.Model.Kind == pebble.Oneshot,
		scale:   1,
		sinks:   p.G.Sinks(),
	}
	if p.Model.Kind == pebble.CompCost {
		lb.scale = int64(p.Model.EpsDenom)
		lb.compCost = 1
	}
	if lb.enabled {
		lb.mustCompute = bitset.New(p.G.N())
		lb.counted = bitset.New(p.G.N())
		lb.buildCapCandidates(start)
		if lb.spart {
			lb.charged = bitset.New(p.G.N())
		}
	}
	return lb
}

// cloneScratch returns a lowerBound sharing the immutable tables
// (capacity candidates, sink list, parameters) with private scratch
// sets, so parallel workers skip the quadratic candidate precompute.
func (lb *lowerBound) cloneScratch() *lowerBound {
	c := *lb
	if lb.enabled {
		c.mustCompute = bitset.New(lb.p.G.N())
		c.counted = bitset.New(lb.p.G.N())
		c.stack = nil
		if lb.spart {
			c.charged = bitset.New(lb.p.G.N())
		}
		if lb.arrUnion != nil {
			c.arrUnion = bitset.New(lb.p.G.N())
		}
	}
	return &c
}

// estimate returns an admissible lower bound (in scaled cost units) on
// the remaining cost from st, plus a dead flag reporting that st cannot
// be completed at all. With the heuristic off it returns (0, false),
// keeping the search byte-for-byte Dijkstra.
func (lb *lowerBound) estimate(st *pebble.State) (int64, bool) {
	if !lb.enabled {
		return 0, false
	}
	g := lb.p.G
	conv := lb.p.Convention
	var ht, hc int64 // transfer and compute components
	lb.mustCompute.Reset()
	lb.counted.Reset()
	lb.stack = lb.stack[:0]
	for _, s := range lb.sinks {
		if conv.SinksMustBeBlue {
			if st.IsBlue(s) {
				continue
			}
			ht += lb.scale // one Store onto s is still needed
		} else if st.HasPebble(s) {
			continue
		}
		if !st.HasPebble(s) && !lb.mustCompute.Get(int(s)) {
			lb.mustCompute.Set(int(s))
			lb.stack = append(lb.stack, int32(s))
		}
	}
	for len(lb.stack) > 0 {
		v := dag.NodeID(lb.stack[len(lb.stack)-1])
		lb.stack = lb.stack[:len(lb.stack)-1]
		// v is bare (no pebble) and must be computed at least once more.
		if lb.oneshot && st.WasComputed(v) {
			return 0, true // recompute forbidden: unwinnable
		}
		if conv.SourcesStartBlue && g.IsSource(v) {
			return 0, true // sources are not computable: unwinnable
		}
		hc += lb.compCost
		for _, u := range g.Preds(v) {
			ui := int(u)
			if st.IsRed(u) {
				continue
			}
			if st.IsBlue(u) {
				if lb.loadForced(u) && !lb.counted.Get(ui) {
					lb.counted.Set(ui)
					ht += lb.scale
				}
				continue
			}
			if !lb.mustCompute.Get(ui) {
				lb.mustCompute.Set(ui)
				lb.stack = append(lb.stack, int32(u))
			}
		}
	}
	if lb.spart {
		ht += lb.spartitionTerm(st)
		// The arrival term counts transfers globally, overlapping the
		// per-node terms above, so the two combine by max, not sum.
		if ta := lb.arrivalTerm(st); ta > ht {
			ht = ta
		}
	} else {
		ht += lb.capacityTerm(st)
	}
	return hc + ht, false
}

// capacityTerm adds the oneshot capacity bound: pick the still-pending
// compute event w whose forced-live values overflow the spare red slots
// the most. At the moment w is computed, preds(w) and w occupy
// indeg(w)+1 of the R red slots. Every value that must exist before that
// moment (already computed or held, or an uncomputed ancestor of w) and
// must be consumed after it (it has a successor that must be computed
// and lies strictly below^W above w in the DAG, hence after w) is either
// in one of the slots = R-indeg(w)-1 spare red slots or blue at that
// moment. In oneshot a value cannot be recreated, so each overflow value
// that is not blue already needs one future Store (to get blue by then)
// and one future Load (to get red again for its later consumer): 2
// transfers, on nodes disjoint from every other term of the bound.
func (lb *lowerBound) capacityTerm(st *pebble.State) int64 {
	if len(lb.cands) == 0 {
		return 0
	}
	best := 0
	for ci := range lb.cands {
		cd := &lb.cands[ci]
		if !lb.mustCompute.Get(int(cd.w)) {
			continue // w already computed (or not needed): event is gone
		}
		fl, curBlue := 0, 0
		for i := range cd.shell {
			cu := &cd.shell[i]
			if !lb.liveUse(st, cu) {
				continue
			}
			fl++
			if st.IsBlue(dag.NodeID(cu.u)) {
				curBlue++ // may sit blue through the event for free
			}
		}
		if b := fl - cd.slots - curBlue; b > best {
			best = b
		}
	}
	return 2 * lb.scale * int64(best)
}

// liveUse reports whether shell value cu is live for its candidate event
// in state st: the value must exist before the event's compute — it
// holds a pebble now, was computed already, or is an uncomputed ancestor
// of the event that must be computed before it — and must be consumed
// after the event (it has an uncomputed successor inside the event's
// descendant cone).
func (lb *lowerBound) liveUse(st *pebble.State, cu *capUse) bool {
	u := dag.NodeID(cu.u)
	if !(st.HasPebble(u) || st.WasComputed(u) ||
		(cu.anc && lb.mustCompute.Get(int(cu.u)))) {
		return false
	}
	return cu.useMask.Intersects(lb.mustCompute)
}

// buildCapCandidates precomputes the capacity-term candidates for the
// oneshot model on small graphs: per-node ancestor/descendant masks,
// then for each needed node w the shell of values adjacent to its
// descendant cone, keeping the candidates with the highest overflow
// potential.
func (lb *lowerBound) buildCapCandidates(start *pebble.State) {
	g := lb.p.G
	n := g.N()
	if !lb.oneshot || n == 0 || n > capMaxN {
		return
	}
	if lb.spart {
		lb.buildArrivalTables()
	}
	// needed0: nodes bare at the start that must be computed (the
	// initial mustCompute). Future mustCompute sets only shrink toward
	// subsets of it in oneshot, so restricting use masks to needed0
	// never overcounts.
	if _, dead := lb.estimate(start); dead {
		return
	}
	needed0 := lb.mustCompute.Clone()

	reach := pebble.NewReach(g)
	if reach == nil {
		return
	}

	isPred := make([]bool, n)
	type scored struct {
		cand  capCandidate
		score int
	}
	var all []scored
	// The per-shell use masks persist in the candidates for the whole
	// search; carving them from an arena costs one allocation per slab
	// chunk instead of two per mask.
	arena := bitset.NewArena(n)
	seen := bitset.New(n)
	for wi := 0; wi < n; wi++ {
		if !needed0.Get(wi) {
			continue
		}
		w := dag.NodeID(wi)
		slots := lb.p.R - g.InDegree(w) - 1
		for _, u := range g.Preds(w) {
			isPred[u] = true
		}
		var shell []capUse
		seen.Reset()
		desc := reach.Desc(w)
		desc.ForEach(func(x int) bool {
			if !needed0.Get(x) {
				return true
			}
			for _, u := range g.Preds(dag.NodeID(x)) {
				ui := int(u)
				if ui == wi || isPred[ui] || seen.Get(ui) {
					continue
				}
				seen.Set(ui)
				use := arena.New()
				for _, s := range g.Succs(u) {
					if needed0.Get(int(s)) && desc.Get(int(s)) {
						use.Set(int(s))
					}
				}
				shell = append(shell, capUse{u: int32(ui), anc: reach.Anc(w).Get(ui), useMask: use})
			}
			return true
		})
		for _, u := range g.Preds(w) {
			isPred[u] = false
		}
		if score := len(shell) - slots; score > 0 {
			all = append(all, scored{capCandidate{w: w, slots: slots, shell: shell}, score})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].cand.w < all[j].cand.w
	})
	// Both tiers keep the same candidate budget: the packing pass walks
	// every certificate per estimate, so a wider pool buys little bound
	// and costs the hot path (the S-partition tier's strength on the
	// R = Δ+1 instances comes from the pair and arrival certificates).
	const maxCands = 16
	for i := 0; i < len(all) && i < maxCands; i++ {
		lb.cands = append(lb.cands, all[i].cand)
	}
	if lb.spart {
		lb.buildPairConstraints(needed0)
	}
}

// loadForced reports whether blue node u can only return to red via a
// Load. In oneshot every blue node qualifies: it either was computed
// already (recompute banned) or is an initial blue source under
// SourcesStartBlue (sources not computable). In the other models only
// the latter case forces a Load — a blue node could otherwise be
// recomputed for free.
func (lb *lowerBound) loadForced(u dag.NodeID) bool {
	if lb.oneshot {
		return true
	}
	return lb.p.Convention.SourcesStartBlue && lb.p.G.IsSource(u)
}
