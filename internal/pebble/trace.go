package pebble

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"rbpebble/internal/dag"
)

// Trace is a recorded pebbling: a move sequence together with the problem
// parameters it was produced for. A Trace is the unit of exchange between
// solvers (which produce them) and the verifier (which replays them).
type Trace struct {
	Model      Model
	R          int
	Convention Convention
	Moves      []Move
}

// Result summarizes a verified pebbling.
type Result struct {
	Cost     Cost
	Steps    int
	Complete bool
	// MaxRed is the peak number of simultaneous red pebbles observed.
	MaxRed int
	// Loads, Stores, Computes, Deletes count the moves by kind.
	Loads, Stores, Computes, Deletes int
}

// Value returns the result's cost value under model m.
func (r Result) Value(m Model) float64 { return r.Cost.Value(m) }

// Run replays the trace on g, validating every move, and returns the
// verified result. It fails on the first illegal move or if the final
// state does not complete the pebbling.
func (t *Trace) Run(g *dag.DAG) (Result, error) {
	st, err := NewState(g, t.Model, t.R, t.Convention)
	if err != nil {
		return Result{}, err
	}
	var res Result
	for i, m := range t.Moves {
		if err := st.Apply(m); err != nil {
			return Result{}, fmt.Errorf("move %d: %w", i, err)
		}
		switch m.Kind {
		case Load:
			res.Loads++
		case Store:
			res.Stores++
		case Compute:
			res.Computes++
		case Delete:
			res.Deletes++
		}
		if st.RedCount() > res.MaxRed {
			res.MaxRed = st.RedCount()
		}
	}
	res.Cost = st.Cost()
	res.Steps = st.Steps()
	res.Complete = st.Complete()
	if !res.Complete {
		return res, fmt.Errorf("pebble: trace does not complete the pebbling (some sink unpebbled)")
	}
	return res, nil
}

// Recorder wraps a State and records every applied move, so a solver can
// both simulate and emit a Trace.
type Recorder struct {
	*State
	moves []Move
}

// NewRecorder returns a recording state for the given problem.
func NewRecorder(g *dag.DAG, model Model, r int, conv Convention) (*Recorder, error) {
	st, err := NewState(g, model, r, conv)
	if err != nil {
		return nil, err
	}
	return &Recorder{State: st}, nil
}

// Apply applies and records the move.
func (rec *Recorder) Apply(m Move) error {
	if err := rec.State.Apply(m); err != nil {
		return err
	}
	rec.moves = append(rec.moves, m)
	return nil
}

// MustApply applies and records, panicking on illegal moves.
func (rec *Recorder) MustApply(m Move) {
	if err := rec.Apply(m); err != nil {
		panic(err)
	}
}

// Trace returns the recorded trace.
func (rec *Recorder) Trace() *Trace {
	return &Trace{
		Model:      rec.Model(),
		R:          rec.R(),
		Convention: rec.Convention(),
		Moves:      append([]Move(nil), rec.moves...),
	}
}

// WriteText serializes the trace in a line-oriented format:
//
//	model <name> [epsdenom]
//	r <R>
//	conv <sourcesStartBlue> <sinksMustBeBlue>
//	<move> <node>
func (t *Trace) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if t.Model.Kind == CompCost {
		fmt.Fprintf(bw, "model %s %d\n", t.Model.Kind, t.Model.EpsDenom)
	} else {
		fmt.Fprintf(bw, "model %s\n", t.Model.Kind)
	}
	fmt.Fprintf(bw, "r %d\n", t.R)
	fmt.Fprintf(bw, "conv %t %t\n", t.Convention.SourcesStartBlue, t.Convention.SinksMustBeBlue)
	for _, m := range t.Moves {
		fmt.Fprintf(bw, "%s %d\n", m.Kind, m.Node)
	}
	return bw.Flush()
}

// ReadTrace parses the format written by WriteText.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	t := &Trace{R: -1}
	sawModel := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "model":
			if len(fields) < 2 {
				return nil, fmt.Errorf("pebble: line %d: model wants a name", lineNo)
			}
			switch fields[1] {
			case "base":
				t.Model = Model{Kind: Base}
			case "oneshot":
				t.Model = Model{Kind: Oneshot}
			case "nodel":
				t.Model = Model{Kind: NoDel}
			case "compcost":
				if len(fields) != 3 {
					return nil, fmt.Errorf("pebble: line %d: compcost wants epsdenom", lineNo)
				}
				d, err := strconv.Atoi(fields[2])
				if err != nil {
					return nil, fmt.Errorf("pebble: line %d: bad epsdenom %q", lineNo, fields[2])
				}
				t.Model = Model{Kind: CompCost, EpsDenom: d}
			default:
				return nil, fmt.Errorf("pebble: line %d: unknown model %q", lineNo, fields[1])
			}
			sawModel = true
		case "r":
			if len(fields) != 2 {
				return nil, fmt.Errorf("pebble: line %d: r wants 1 arg", lineNo)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("pebble: line %d: bad r %q", lineNo, fields[1])
			}
			t.R = v
		case "conv":
			if len(fields) != 3 {
				return nil, fmt.Errorf("pebble: line %d: conv wants 2 args", lineNo)
			}
			a, err1 := strconv.ParseBool(fields[1])
			b, err2 := strconv.ParseBool(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("pebble: line %d: bad conv flags", lineNo)
			}
			t.Convention = Convention{SourcesStartBlue: a, SinksMustBeBlue: b}
		case "load", "store", "compute", "delete":
			if len(fields) != 2 {
				return nil, fmt.Errorf("pebble: line %d: move wants a node", lineNo)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 0 {
				return nil, fmt.Errorf("pebble: line %d: bad node %q", lineNo, fields[1])
			}
			var k MoveKind
			switch fields[0] {
			case "load":
				k = Load
			case "store":
				k = Store
			case "compute":
				k = Compute
			case "delete":
				k = Delete
			}
			t.Moves = append(t.Moves, Move{Kind: k, Node: dag.NodeID(v)})
		default:
			return nil, fmt.Errorf("pebble: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawModel || t.R < 0 {
		return nil, fmt.Errorf("pebble: trace missing model or r header")
	}
	return t, nil
}
