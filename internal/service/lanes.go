package service

import (
	"sync"
	"sync/atomic"
)

// Lane names on the wire and in metrics labels.
const (
	laneFast  = "fast"
	laneHeavy = "heavy"
)

// lane is one bounded worker pool of the two-lane batch scheduler: a
// queue of closures drained by a fixed worker set. Submission is
// non-blocking — a full queue is the lane's admission-control signal
// (the caller sheds with 429 + Retry-After instead of queueing
// unboundedly behind multi-second solves).
type lane struct {
	name    string
	tasks   chan func()
	shed    atomic.Uint64
	workers int
}

func newLane(name string, workers, depth int) *lane {
	return &lane{name: name, tasks: make(chan func(), depth), workers: workers}
}

// depth reports the queued (not yet running) backlog.
func (l *lane) depth() int { return len(l.tasks) }

// submit enqueues f without blocking; false means the lane is
// saturated a full queue deep and the work must be shed.
func (l *lane) submit(f func()) bool {
	select {
	case l.tasks <- f:
		return true
	default:
		l.shed.Add(1)
		return false
	}
}

// run drains the lane until closed fires. Tasks still queued at close
// are dropped — submitters guard every wait on a task's completion
// with the same closed channel.
func (l *lane) run(closed <-chan struct{}, wg *sync.WaitGroup) {
	for i := 0; i < l.workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-closed:
					return
				case f := <-l.tasks:
					f()
				}
			}
		}()
	}
}

// lanes is the deadline-aware two-lane scheduler of the batched
// request plane. Work units (one canonical-key group of batch items
// each) are classified before they queue: groups a cache probe can
// serve, and groups whose whole budget is below the fast-lane
// threshold, ride the fast lane; everything that may hold a worker
// for a multi-second exact solve queues on the heavy lane. The split
// is what keeps a 2 ms cache hit from sitting behind a 3 s solve —
// head-of-line blocking across cost classes is structural, not a
// tuning accident.
type lanes struct {
	fast, heavy *lane
}

func newLanes(cfg Config) *lanes {
	return &lanes{
		fast:  newLane(laneFast, cfg.FastLaneWorkers, cfg.FastLaneQueue),
		heavy: newLane(laneHeavy, cfg.HeavyLaneWorkers, cfg.HeavyLaneQueue),
	}
}

func (ls *lanes) run(closed <-chan struct{}, wg *sync.WaitGroup) {
	ls.fast.run(closed, wg)
	ls.heavy.run(closed, wg)
}

func (ls *lanes) byName(name string) *lane {
	if name == laneFast {
		return ls.fast
	}
	return ls.heavy
}
