package service

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rbpebble/internal/anytime"
	"rbpebble/internal/daggen"
	"rbpebble/internal/solve"
)

// scrapeMetrics returns the raw /metrics body.
func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return b.String()
}

// TestJobLowerBoundGauge: while an async job runs, /metrics must carry
// a per-job rbserve_job_lower_bound gauge fed by the orchestrator's
// streamed certified bounds, and the gauge must disappear once the job
// finishes. The solver is stubbed so the test controls both the
// streamed values and the job's lifetime.
func TestJobLowerBoundGauge(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	streamed := make(chan struct{})
	gate := make(chan struct{})
	s.solveFn = func(ctx context.Context, p solve.Problem, opts anytime.Options) (anytime.Result, error) {
		if opts.OnProgress == nil {
			t.Error("async job solve got no OnProgress hook")
		} else {
			opts.OnProgress(anytime.Snapshot{UpperScaled: 31, LowerScaled: 7, Source: "astar"})
			opts.OnProgress(anytime.Snapshot{UpperScaled: 31, LowerScaled: 9, Source: "astar"})
		}
		close(streamed)
		<-gate
		return anytime.Solve(ctx, p, anytime.Options{})
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3,"async":true}`, dagJSON(t, daggen.Pyramid(4)))
	resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	<-streamed
	m := scrapeMetrics(t, ts)
	want := `rbserve_job_lower_bound{job="`
	line := ""
	for _, l := range strings.Split(m, "\n") {
		if strings.HasPrefix(l, want) {
			line = l
		}
	}
	if line == "" {
		t.Fatalf("no rbserve_job_lower_bound gauge while job running:\n%s", m)
	}
	if !strings.HasSuffix(line, "} 9") {
		t.Fatalf("gauge did not track the latest streamed bound: %q", line)
	}

	close(gate)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job did not finish")
		}
		if !strings.Contains(scrapeMetrics(t, ts), "rbserve_job_lower_bound{") {
			break // finished jobs drop their gauge
		}
		time.Sleep(5 * time.Millisecond)
	}
}
