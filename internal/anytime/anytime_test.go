package anytime

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"rbpebble/internal/daggen"
	"rbpebble/internal/pebble"
	"rbpebble/internal/solve"
)

// TestDeadlineFFT3 is the acceptance scenario: a 100ms deadline on
// fft(3) R=3 (a ~3s exact solve) must yield a replay-valid trace, a
// nonzero certified lower bound, and a coherent interval.
func TestDeadlineFFT3(t *testing.T) {
	p := solve.Problem{G: daggen.FFT(3), Model: pebble.NewModel(pebble.Oneshot), R: 3}
	var mu sync.Mutex
	var snaps []Snapshot
	res, err := Solve(context.Background(), p, Options{
		Budget: 100 * time.Millisecond,
		OnProgress: func(s Snapshot) {
			mu.Lock()
			snaps = append(snaps, s)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solution.Trace == nil {
		t.Fatal("no incumbent trace")
	}
	// Replay the trace independently: the certificate must be real.
	rr, rerr := res.Solution.Trace.Run(p.G)
	if rerr != nil {
		t.Fatalf("incumbent trace does not replay: %v", rerr)
	}
	if got := rr.Cost.Scaled(p.Model); got != res.UpperScaled {
		t.Fatalf("trace cost %d != reported upper %d", got, res.UpperScaled)
	}
	if res.LowerScaled <= 0 {
		t.Fatalf("certified lower bound = %d, want > 0", res.LowerScaled)
	}
	const fft3R3Optimum = 31
	if res.LowerScaled > fft3R3Optimum || res.UpperScaled < fft3R3Optimum {
		t.Fatalf("interval [%d, %d] excludes the true optimum %d", res.LowerScaled, res.UpperScaled, fft3R3Optimum)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots streamed")
	}
	// The interval only ever tightens, snapshot to snapshot, within
	// each monotone stream; globally lower never exceeds upper.
	for _, s := range snaps {
		if s.LowerScaled > s.UpperScaled {
			t.Fatalf("snapshot with lower %d > upper %d (source %s)", s.LowerScaled, s.UpperScaled, s.Source)
		}
	}
}

// TestFullBudgetClosesGap checks gap -> 0 with an unconstrained budget
// on instances small enough to prove optimal quickly, cross-checking
// the incumbent against the exact solver.
func TestFullBudgetClosesGap(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    solve.Problem
	}{
		{"pyramid4-R3", solve.Problem{G: daggen.Pyramid(4), Model: pebble.NewModel(pebble.Oneshot), R: 3}},
		{"grid33-R3-nodel", solve.Problem{G: daggen.Grid(3, 3), Model: pebble.NewModel(pebble.NoDel), R: 3}},
		{"tree3-R3-base", solve.Problem{G: daggen.BinaryTree(3), Model: pebble.NewModel(pebble.Base), R: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Solve(context.Background(), tc.p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Optimal || res.Gap() != 0 {
				t.Fatalf("full budget did not close the gap: %v", res)
			}
			opt, err := solve.Exact(tc.p, solve.ExactOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if want := opt.Result.Cost.Scaled(tc.p.Model); res.UpperScaled != want {
				t.Fatalf("anytime optimum %d != exact optimum %d", res.UpperScaled, want)
			}
		})
	}
}

// TestFullBudgetFFT3 is the slow half of the acceptance criterion: with
// a full budget the fft(3) R=3 gap goes to exactly zero.
func TestFullBudgetFFT3(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second exact solve")
	}
	p := solve.Problem{G: daggen.FFT(3), Model: pebble.NewModel(pebble.Oneshot), R: 3}
	res, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || res.UpperScaled != 31 || res.LowerScaled != 31 {
		t.Fatalf("want proven optimum 31, got %v", res)
	}
}

// TestZeroDeadlineStillCertifies: even a budget that expires before the
// refinement engines start must return the root bound and a heuristic
// incumbent (the heuristics are not interruptible mid-run).
func TestZeroDeadlineStillCertifies(t *testing.T) {
	// pyramid(4) at R=3 has a positive root bound (its capacity
	// certificates overflow the two spare red slots).
	p := solve.Problem{G: daggen.Pyramid(4), Model: pebble.NewModel(pebble.Oneshot), R: 3}
	res, err := Solve(context.Background(), p, Options{Budget: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solution.Trace == nil || res.LowerScaled <= 0 {
		t.Fatalf("degenerate budget lost the certificate: %v", res)
	}
}

// TestParallelWorkers exercises the async-engine path under the
// orchestrator, both to completion and under a deadline.
func TestParallelWorkers(t *testing.T) {
	p := solve.Problem{G: daggen.Pyramid(5), Model: pebble.NewModel(pebble.Oneshot), R: 4}
	res, err := Solve(context.Background(), p, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal {
		t.Fatalf("want optimal, got %v", res)
	}

	hard := solve.Problem{G: daggen.FFT(3), Model: pebble.NewModel(pebble.Oneshot), R: 3}
	res, err = Solve(context.Background(), hard, Options{Workers: 2, Budget: 80 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.LowerScaled <= 0 || res.LowerScaled > res.UpperScaled {
		t.Fatalf("incoherent interval under workers: %v", res)
	}
}

// TestContextCancel: an already-canceled parent context still returns a
// certified heuristic answer (deadline semantics, not an error).
func TestContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := solve.Problem{G: daggen.Pyramid(4), Model: pebble.NewModel(pebble.Oneshot), R: 3}
	res, err := Solve(ctx, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solution.Trace == nil {
		t.Fatal("no incumbent under canceled context")
	}
}

// TestInfeasible: an instance with no completion reports an error, not
// a bogus certificate.
func TestInfeasible(t *testing.T) {
	// A 2-input node with R=3 under SourcesStartBlue is feasible; make
	// it infeasible by demanding computation of a source that starts
	// blue in the oneshot model with a sink convention that cannot be
	// met: simplest is R < Δ+1, rejected by state construction.
	p := solve.Problem{G: daggen.Pyramid(3), Model: pebble.NewModel(pebble.Oneshot), R: 1}
	if _, err := Solve(context.Background(), p, Options{}); err == nil {
		t.Fatal("want error for R too small")
	}
}

// TestRefinementOptionsSeedEngines is the warm-start plumbing proof the
// acceptance criterion asks for: the values handed to the exact engines
// (ExactDFSOptions.InitialBound, both engines' InitialLowerBound, the
// best-first PruneBound) must carry the certified interval at phase-2
// start — which, for a warm-started solve, is the cached interval.
func TestRefinementOptionsSeedEngines(t *testing.T) {
	exact, dfs := refinementOptions(Options{Workers: 3}, 31, 8)
	if exact.PruneBound != 32 {
		t.Fatalf("ExactOptions.PruneBound = %d, want 32", exact.PruneBound)
	}
	if exact.InitialLowerBound != 8 {
		t.Fatalf("ExactOptions.InitialLowerBound = %d, want 8", exact.InitialLowerBound)
	}
	if exact.Parallel != 3 {
		t.Fatalf("ExactOptions.Parallel = %d, want 3", exact.Parallel)
	}
	if dfs.InitialBound != 32 {
		t.Fatalf("ExactDFSOptions.InitialBound = %d, want 32", dfs.InitialBound)
	}
	if dfs.InitialLowerBound != 8 {
		t.Fatalf("ExactDFSOptions.InitialLowerBound = %d, want 8", dfs.InitialLowerBound)
	}
	// No incumbent yet (MaxInt64 sentinel): no bound seeding at all.
	exact, dfs = refinementOptions(Options{}, math.MaxInt64, 5)
	if exact.PruneBound != 0 || dfs.InitialBound != 0 {
		t.Fatalf("sentinel incumbent leaked into bounds: prune=%d initial=%d", exact.PruneBound, dfs.InitialBound)
	}
}

// TestWarmStartTightensInterval is the convergence contract: a second
// deadline-limited solve of the same hard instance, warm-started from
// the first one's certified interval, returns an interval at least as
// tight on both ends.
func TestWarmStartTightensInterval(t *testing.T) {
	p := solve.Problem{G: daggen.FFT(3), Model: pebble.NewModel(pebble.Oneshot), R: 3}
	first, err := Solve(context.Background(), p, Options{Budget: 80 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if first.Optimal {
		t.Skip("host closed fft(3) R=3 in 80ms; warm-start tightening not observable")
	}
	second, err := Solve(context.Background(), p, Options{
		Budget: 80 * time.Millisecond,
		Warm: &WarmStart{
			Moves:       first.Solution.Trace.Moves,
			LowerScaled: first.LowerScaled,
			Source:      "cache:" + first.Source,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if second.UpperScaled > first.UpperScaled {
		t.Fatalf("warm upper regressed: %d > %d", second.UpperScaled, first.UpperScaled)
	}
	if second.LowerScaled < first.LowerScaled {
		t.Fatalf("warm lower regressed: %d < %d", second.LowerScaled, first.LowerScaled)
	}
}

// TestWarmStartClosedIntervalShortCircuits: warm data that already
// closes the interval must return optimal without running any engine.
func TestWarmStartClosedIntervalShortCircuits(t *testing.T) {
	p := solve.Problem{G: daggen.Pyramid(4), Model: pebble.NewModel(pebble.Oneshot), R: 3}
	opt, err := solve.Exact(p, solve.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	scaled := opt.Result.Cost.Scaled(p.Model)
	res, err := Solve(context.Background(), p, Options{
		Warm: &WarmStart{Moves: opt.Trace.Moves, LowerScaled: scaled, Source: "cache:astar"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || res.UpperScaled != scaled {
		t.Fatalf("closed warm interval not honored: %v", res)
	}
	if res.Source != "cache:astar" {
		t.Fatalf("source = %q, want the warm provenance", res.Source)
	}
	if res.Expanded != 0 || res.Visits != 0 {
		t.Fatalf("engines ran despite closed warm interval: expanded=%d visits=%d", res.Expanded, res.Visits)
	}
}

// TestWarmStartCorruptTraceDegrades: an unreplayable warm trace must
// cost only the warm upper bound, never correctness.
func TestWarmStartCorruptTraceDegrades(t *testing.T) {
	p := solve.Problem{G: daggen.Pyramid(4), Model: pebble.NewModel(pebble.Oneshot), R: 3}
	res, err := Solve(context.Background(), p, Options{
		Warm: &WarmStart{
			Moves:       []pebble.Move{{Kind: pebble.Compute, Node: 0}, {Kind: pebble.Compute, Node: 0}},
			LowerScaled: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := solve.Exact(p, solve.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || res.UpperScaled != opt.Result.Cost.Scaled(p.Model) {
		t.Fatalf("corrupt warm trace broke the solve: %v", res)
	}
}
