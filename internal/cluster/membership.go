package cluster

import (
	"sort"
	"sync"
	"time"
)

// defaultMemberTTL is the dynamic-member lease: a node that has not
// renewed its registration within the TTL is considered dead and is
// removed from the ring (its keys remap to the survivors). Nodes renew
// at TTL/3, so a member survives two dropped heartbeats.
const defaultMemberTTL = 15 * time.Second

// memberInfo is one member's registration state.
type memberInfo struct {
	static   bool      // seeded by the -members flag: never expires
	draining bool      // announced SIGTERM drain: skip as a handoff/replica target
	expires  time.Time // dynamic members only: lease end
}

// Membership is the cluster's dynamic member registry layered over the
// ring: rbserve nodes register and renew leases through the proxy's
// /cluster/join API, announce draining during their SIGTERM grace, and
// are expired off the ring when their lease lapses (the TTL is what
// distinguishes a *dead* node from a merely *draining* one). Static
// members — the -members flag — never expire; the health prober alone
// governs their routing. Safe for concurrent use.
type Membership struct {
	mu      sync.Mutex
	ring    *Ring
	ttl     time.Duration
	now     func() time.Time // test seam
	members map[string]*memberInfo

	joins, leaves, expired uint64
}

// NewMembership returns a registry over ring with the given dynamic
// lease TTL (<= 0 selects the 15s default).
func NewMembership(ring *Ring, ttl time.Duration) *Membership {
	if ttl <= 0 {
		ttl = defaultMemberTTL
	}
	return &Membership{ring: ring, ttl: ttl, now: time.Now, members: make(map[string]*memberInfo)}
}

// TTL returns the dynamic-member lease duration (the join API reports
// it to nodes so they can pick a renewal cadence).
func (ms *Membership) TTL() time.Duration { return ms.ttl }

// AddStatic seeds members that never expire (the -members flag).
func (ms *Membership) AddStatic(members ...string) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	for _, m := range members {
		if ms.members[m] == nil {
			ms.members[m] = &memberInfo{}
		}
		ms.members[m].static = true
	}
	ms.ring.Add(members...)
}

// Join registers or renews member's lease and records its draining
// flag. A new member is added to the ring (consistent remapping: only
// the keys it now owns move); a renewal just extends the lease. A
// member re-joining with draining=false (e.g. a restarted node reusing
// its address) is promoted back to healthy so it receives traffic
// before the next probe cycle.
func (ms *Membership) Join(member string, draining bool) {
	now := ms.now()
	ms.mu.Lock()
	in := ms.members[member]
	if in == nil {
		in = &memberInfo{}
		ms.members[member] = in
		ms.joins++
	}
	wasDraining := in.draining
	in.draining = draining
	if !in.static {
		in.expires = now.Add(ms.ttl)
	}
	ms.mu.Unlock()

	ms.ring.Add(member) // idempotent; no-op on renewal
	if draining {
		ms.ring.SetHealthy(member, false)
	} else if wasDraining {
		ms.ring.SetHealthy(member, true)
	}
}

// Leave deregisters member immediately (the graceful exit: the node
// already handed its cache off). Static members are removed too — a
// statically-seeded node that says goodbye is gone until it rejoins.
func (ms *Membership) Leave(member string) {
	ms.mu.Lock()
	if _, ok := ms.members[member]; ok {
		ms.leaves++
	}
	delete(ms.members, member)
	ms.mu.Unlock()
	ms.ring.Remove(member)
}

// SetDraining marks member as draining (503 + draining header observed
// by the prober, or a handoff received from it) without touching its
// lease.
func (ms *Membership) SetDraining(member string, draining bool) {
	ms.mu.Lock()
	if in := ms.members[member]; in != nil {
		in.draining = draining
	}
	ms.mu.Unlock()
}

// Draining reports whether member announced a drain. Draining members
// are skipped as handoff and replication targets: pushing cache
// entries to a node that is itself about to hand off would bounce them
// around the fleet.
func (ms *Membership) Draining(member string) bool {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	in := ms.members[member]
	return in != nil && in.draining
}

// Sweep expires dynamic members whose lease has lapsed, removing them
// from the ring, and returns them. A TTL expiry is the "dead node"
// signal: no graceful drain happened, so the proxy's only consolation
// is whatever proven-optimal entries were replicated ahead of time.
func (ms *Membership) Sweep() []string {
	now := ms.now()
	var dead []string
	ms.mu.Lock()
	for m, in := range ms.members {
		if !in.static && now.After(in.expires) {
			dead = append(dead, m)
			delete(ms.members, m)
			ms.expired++
		}
	}
	ms.mu.Unlock()
	sort.Strings(dead)
	for _, m := range dead {
		ms.ring.Remove(m)
	}
	return dead
}

// Size returns the number of registered members (static + live
// dynamic), the cluster_membership_size gauge.
func (ms *Membership) Size() int {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return len(ms.members)
}

// Counters returns the monotone join/leave/expiry totals.
func (ms *Membership) Counters() (joins, leaves, expired uint64) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.joins, ms.leaves, ms.expired
}

// MemberView is one member's slot in the GET /cluster/members view.
type MemberView struct {
	Member   string `json:"member"`
	Healthy  bool   `json:"healthy"`
	Draining bool   `json:"draining"`
	Static   bool   `json:"static"`
	// TTLRemainingMS is the dynamic lease remainder (0 for static).
	TTLRemainingMS int64 `json:"ttl_remaining_ms,omitempty"`
}

// View snapshots the registry, with health filled in from the ring.
func (ms *Membership) View() []MemberView {
	now := ms.now()
	health := ms.ring.Members()
	ms.mu.Lock()
	out := make([]MemberView, 0, len(ms.members))
	for m, in := range ms.members {
		v := MemberView{Member: m, Healthy: health[m], Draining: in.draining, Static: in.static}
		if !in.static {
			if rem := in.expires.Sub(now); rem > 0 {
				v.TTLRemainingMS = rem.Milliseconds()
			}
		}
		out = append(out, v)
	}
	ms.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Member < out[j].Member })
	return out
}
