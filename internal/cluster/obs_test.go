package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"rbpebble/internal/daggen"
	"rbpebble/internal/obs"
	"rbpebble/internal/service"
)

// fetchTrace fetches a span view from an arbitrary base URL.
func fetchTrace(t *testing.T, baseURL, id string) (int, obs.TraceView) {
	t.Helper()
	resp, err := http.Get(baseURL + "/debug/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tv obs.TraceView
	json.NewDecoder(resp.Body).Decode(&tv)
	return resp.StatusCode, tv
}

// nodeURL maps a member (host:port) back to its httptest base URL.
func (tc *testCluster) nodeURL(t *testing.T, member string) string {
	t.Helper()
	for i, m := range tc.members {
		if m == member {
			return tc.nodeTS[i].URL
		}
	}
	t.Fatalf("unknown member %s", member)
	return ""
}

// TestTraceIDPropagatedToNode: a proxied solve carries one trace ID
// end to end — echoed by the proxy, stamped on the forward, and
// queryable on the serving node with the node-side span pipeline.
func TestTraceIDPropagatedToNode(t *testing.T) {
	tc := newTestCluster(t, 2)
	const traceID = "cluster-e2e-trace-01"
	body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3}`, dagJSON(t, daggen.Pyramid(4)))
	req, _ := http.NewRequest("POST", tc.ts.URL+"/solve", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	served := resp.Header.Get("X-Rbproxy-Node")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != traceID {
		t.Fatalf("proxy echoed trace %q, want %q", got, traceID)
	}

	// The serving node holds the solve-side span set under the same ID.
	code, tv := fetchTrace(t, tc.nodeURL(t, served), traceID)
	if code != http.StatusOK || tv.TraceID != traceID {
		t.Fatalf("node trace lookup: status %d, id %q", code, tv.TraceID)
	}
	names := map[string]bool{}
	for _, sv := range tv.Spans {
		names[sv.Name] = true
	}
	for _, want := range []string{"canonicalize", "cache-probe", "lane-queue", "cache"} {
		if !names[want] {
			t.Fatalf("node span %q missing: %+v", want, tv.Spans)
		}
	}

	// The proxy holds its own routing-side span set for the same ID,
	// and resolves it locally on /debug/trace.
	code, pv := fetchTrace(t, tc.ts.URL, traceID)
	if code != http.StatusOK {
		t.Fatalf("proxy trace lookup status %d", code)
	}
	var sawForward bool
	for _, sv := range pv.Spans {
		if sv.Name == "forward" {
			sawForward = true
			if sv.Attrs["member"] != served {
				t.Fatalf("forward span member = %q, want %q", sv.Attrs["member"], served)
			}
		}
	}
	if !sawForward {
		t.Fatalf("proxy trace has no forward span: %+v", pv.Spans)
	}
}

// TestFailoverKeepsTraceID: when the owner dies mid-request the proxy
// fails over under the SAME trace ID, recording a fresh forward span
// per attempt, and the node that finally serves sees that ID.
func TestFailoverKeepsTraceID(t *testing.T) {
	tc := newTestCluster(t, 2)
	const traceID = "cluster-failover-trace"
	body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3}`, dagJSON(t, daggen.Pyramid(4)))

	// Find the ring owner and kill its listener so the first forward
	// fails at dial time.
	var sreq service.SolveRequest
	if err := json.Unmarshal([]byte(body), &sreq); err != nil {
		t.Fatal(err)
	}
	key, err := RouteKey(sreq, 0)
	if err != nil {
		t.Fatal(err)
	}
	owner := tc.proxy.Ring().Owners(key, 2)[0]
	tc.nodeTS[indexOf(t, tc.members, owner)].Close()

	req, _ := http.NewRequest("POST", tc.ts.URL+"/solve", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	served := resp.Header.Get("X-Rbproxy-Node")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover solve status %d", resp.StatusCode)
	}
	if served == owner {
		t.Fatalf("request served by the dead owner %s", served)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != traceID {
		t.Fatalf("trace header = %q across failover, want %q", got, traceID)
	}

	// Proxy-side: one trace, two forward spans (the failed attempt and
	// the winning one), distinct span IDs.
	_, pv := fetchTrace(t, tc.ts.URL, traceID)
	var forwards []obs.SpanView
	for _, sv := range pv.Spans {
		if sv.Name == "forward" {
			forwards = append(forwards, sv)
		}
	}
	if len(forwards) != 2 {
		t.Fatalf("got %d forward spans, want 2: %+v", len(forwards), pv.Spans)
	}
	if forwards[0].ID == forwards[1].ID {
		t.Fatal("failover attempts share a span")
	}
	if forwards[0].Attrs["member"] != owner || forwards[0].Attrs["err"] == "" {
		t.Fatalf("first forward span = %+v, want failed attempt on %s", forwards[0], owner)
	}
	if forwards[1].Attrs["member"] != served || forwards[1].Attrs["status"] != "200" {
		t.Fatalf("second forward span = %+v, want 200 from %s", forwards[1], served)
	}

	// Node-side: the survivor recorded the same trace ID.
	code, tv := fetchTrace(t, tc.nodeURL(t, served), traceID)
	if code != http.StatusOK || tv.TraceID != traceID {
		t.Fatalf("survivor trace lookup: status %d, id %q", code, tv.TraceID)
	}
}

func indexOf(t *testing.T, members []string, m string) int {
	t.Helper()
	for i, v := range members {
		if v == m {
			return i
		}
	}
	t.Fatalf("member %s not found", m)
	return -1
}

// TestFleetMergedDebugSolves: the proxy merges every node's telemetry
// ring newest-first with node annotations, and ?n truncates the merged
// view.
func TestFleetMergedDebugSolves(t *testing.T) {
	tc := newTestCluster(t, 2)
	// One solve directly on each node, ordered in time, so the merge
	// provably spans processes.
	for i, g := range []int{3, 4} {
		body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3}`, dagJSON(t, daggen.Pyramid(g)))
		resp, err := http.Post(tc.nodeTS[i].URL+"/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("node %d solve status %d", i, resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}

	get := func(n int) service.SolvesDebugResponse {
		t.Helper()
		url := tc.ts.URL + "/debug/solves"
		if n > 0 {
			url += fmt.Sprintf("?n=%d", n)
		}
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out service.SolvesDebugResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	merged := get(0)
	if merged.Total != 2 || len(merged.Records) != 2 {
		t.Fatalf("merged total=%d records=%d, want 2/2", merged.Total, len(merged.Records))
	}
	if merged.Records[0].Node != tc.members[1] || merged.Records[1].Node != tc.members[0] {
		t.Fatalf("node annotations/ordering wrong: %s then %s (members %v)",
			merged.Records[0].Node, merged.Records[1].Node, tc.members)
	}
	if merged.Records[0].Start.Before(merged.Records[1].Start) {
		t.Fatal("merged records not newest-first")
	}
	if merged.Records[0].Features.N == 0 || merged.Records[0].Disposition == "" {
		t.Fatalf("merged record incomplete: %+v", merged.Records[0])
	}

	one := get(1)
	if one.Total != 2 || len(one.Records) != 1 || one.Records[0].Node != tc.members[1] {
		t.Fatalf("n=1 merge = %+v", one)
	}
}

// TestProxyBatchTraceHeader: batch requests carry the trace header on
// the response too.
func TestProxyBatchTraceHeader(t *testing.T) {
	tc := newTestCluster(t, 2)
	body := fmt.Sprintf(`{"items":[{"dag":%s,"model":"oneshot","r":3}]}`, dagJSON(t, daggen.Pyramid(3)))
	resp, err := http.Post(tc.ts.URL+"/solve/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	if resp.Header.Get(obs.TraceHeader) == "" {
		t.Fatal("batch response missing trace header")
	}
	var br service.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Items) != 1 || br.Items[0].Error != "" {
		t.Fatalf("batch items = %+v", br.Items)
	}
}

// TestDebugTraceFanOut: a trace known only to a node (not the proxy —
// the solve went straight to the node) is still resolvable through the
// proxy's /debug/trace fan-out.
func TestDebugTraceFanOut(t *testing.T) {
	tc := newTestCluster(t, 2)
	const traceID = "node-local-trace-0001"
	body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3}`, dagJSON(t, daggen.Pyramid(3)))
	req, _ := http.NewRequest("POST", tc.nodeTS[1].URL+"/solve", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct node solve status %d", resp.StatusCode)
	}
	code, tv := fetchTrace(t, tc.ts.URL, traceID)
	if code != http.StatusOK || tv.TraceID != traceID {
		t.Fatalf("fan-out trace lookup: status %d, id %q", code, tv.TraceID)
	}
	if len(tv.Spans) == 0 {
		t.Fatal("fan-out returned an empty span set")
	}
	if code, _ := fetchTrace(t, tc.ts.URL, "totally-unknown-trace"); code != http.StatusNotFound {
		t.Fatalf("unknown trace fan-out status %d, want 404", code)
	}
}
