package solve

import (
	"errors"
	"testing"

	"rbpebble/internal/dag"
	"rbpebble/internal/daggen"
	"rbpebble/internal/pebble"
)

func prob(g *dag.DAG, kind pebble.ModelKind, r int) Problem {
	return Problem{G: g, Model: pebble.NewModel(kind), R: r}
}

func TestExactChainFree(t *testing.T) {
	g := daggen.Chain(6)
	for _, kind := range []pebble.ModelKind{pebble.Base, pebble.Oneshot} {
		sol, err := Exact(prob(g, kind, 2), ExactOptions{})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if sol.Result.Cost.Transfers != 0 {
			t.Fatalf("%v: chain optimum = %v, want 0 transfers", kind, sol.Result.Cost)
		}
	}
}

func TestExactChainNoDel(t *testing.T) {
	// nodel forces every red pebble off the board via Store: n-2 stores.
	n := 5
	g := daggen.Chain(n)
	sol, err := Exact(prob(g, pebble.NoDel, 2), ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Result.Cost.Transfers != n-2 {
		t.Fatalf("nodel chain optimum = %d, want %d", sol.Result.Cost.Transfers, n-2)
	}
}

func TestExactCompCostChain(t *testing.T) {
	g := daggen.Chain(4)
	p := Problem{G: g, Model: pebble.Model{Kind: pebble.CompCost, EpsDenom: 4}, R: 2}
	sol, err := Exact(p, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: compute each node once (4ε), no transfers.
	if sol.Result.Cost.Transfers != 0 || sol.Result.Cost.Computes != 4 {
		t.Fatalf("compcost chain optimum = %v", sol.Result.Cost)
	}
	if sol.Value() != 1.0 {
		t.Fatalf("value = %v", sol.Value())
	}
}

func TestExactInputGroups(t *testing.T) {
	// Two groups of 2 sources feeding t0, t1 with R=3: exactly one sink
	// must be stored (cost 1) in every model that forbids free redo; and
	// even base pays 1 because both sinks cannot end red.
	g, _, _ := daggen.InputGroups(2, 2)
	for _, kind := range []pebble.ModelKind{pebble.Base, pebble.Oneshot} {
		sol, err := Exact(prob(g, kind, 3), ExactOptions{})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if sol.Result.Cost.Transfers != 1 {
			t.Fatalf("%v: optimum = %v, want 1 transfer", kind, sol.Result.Cost)
		}
	}
}

func TestExactPyramid(t *testing.T) {
	// Pyramid of height 2 with minimum R=3 in oneshot.
	g := daggen.Pyramid(2)
	sol, err := Exact(prob(g, pebble.Oneshot, 3), ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ub := pebble.CostUpperBound(g, pebble.NewModel(pebble.Oneshot))
	if sol.Result.Cost.Transfers > ub.Transfers {
		t.Fatalf("optimum above universal bound: %v", sol.Result.Cost)
	}
	// More pebbles can only help.
	sol2, err := Exact(prob(g, pebble.Oneshot, 6), ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Result.Cost.Transfers > sol.Result.Cost.Transfers {
		t.Fatal("monotonicity in R violated")
	}
	if sol2.Result.Cost.Transfers != 0 {
		t.Fatalf("R=n should be free, got %v", sol2.Result.Cost)
	}
}

func TestExactModelMonotonicity(t *testing.T) {
	// Every oneshot/nodel trace is base-legal, so opt_base <= opt_oneshot
	// and opt_base <= opt_nodel (in transfers).
	for seed := int64(0); seed < 6; seed++ {
		g := daggen.RandomLayered(3, 3, 2, seed)
		r := pebble.MinFeasibleR(g)
		base, err := Exact(prob(g, pebble.Base, r), ExactOptions{})
		if err != nil {
			t.Fatalf("seed %d base: %v", seed, err)
		}
		oneshot, err := Exact(prob(g, pebble.Oneshot, r), ExactOptions{})
		if err != nil {
			t.Fatalf("seed %d oneshot: %v", seed, err)
		}
		nodel, err := Exact(prob(g, pebble.NoDel, r), ExactOptions{})
		if err != nil {
			t.Fatalf("seed %d nodel: %v", seed, err)
		}
		if base.Result.Cost.Transfers > oneshot.Result.Cost.Transfers {
			t.Fatalf("seed %d: base %d > oneshot %d", seed,
				base.Result.Cost.Transfers, oneshot.Result.Cost.Transfers)
		}
		if base.Result.Cost.Transfers > nodel.Result.Cost.Transfers {
			t.Fatalf("seed %d: base %d > nodel %d", seed,
				base.Result.Cost.Transfers, nodel.Result.Cost.Transfers)
		}
	}
}

func TestExactPruningAblationSameCost(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := daggen.RandomLayered(3, 3, 2, seed)
		r := pebble.MinFeasibleR(g)
		p := prob(g, pebble.Oneshot, r)
		a, err := Exact(p, ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Exact(p, ExactOptions{DisablePruning: true})
		if err != nil {
			t.Fatal(err)
		}
		if a.Result.Cost != b.Result.Cost {
			t.Fatalf("seed %d: pruned %v != unpruned %v", seed, a.Result.Cost, b.Result.Cost)
		}
	}
}

func TestExactStateLimit(t *testing.T) {
	g := daggen.Pyramid(3)
	_, err := Exact(prob(g, pebble.Base, 3), ExactOptions{MaxStates: 5})
	if !errors.Is(err, ErrStateLimit) {
		t.Fatalf("err = %v, want ErrStateLimit", err)
	}
}

func TestExactInfeasibleR(t *testing.T) {
	g := daggen.Pyramid(2)
	if _, err := Exact(prob(g, pebble.Oneshot, 2), ExactOptions{}); err == nil {
		t.Fatal("R < Δ+1 accepted")
	}
}

func TestExactEmptyGraph(t *testing.T) {
	sol, err := Exact(prob(dag.New(0), pebble.Oneshot, 1), ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Trace.Moves) != 0 {
		t.Fatal("empty graph needs no moves")
	}
}

func TestOrderOptMatchesExact(t *testing.T) {
	// The (order, Belady) optimum must equal the state-space optimum in
	// oneshot. This cross-validates both solvers.
	for seed := int64(0); seed < 8; seed++ {
		g := daggen.RandomLayered(3, 3, 2, seed)
		r := pebble.MinFeasibleR(g)
		p := prob(g, pebble.Oneshot, r)
		ex, err := Exact(p, ExactOptions{})
		if err != nil {
			t.Fatalf("seed %d exact: %v", seed, err)
		}
		oo, err := OrderOpt(p, OrderOptOptions{})
		if err != nil {
			t.Fatalf("seed %d orderopt: %v", seed, err)
		}
		if ex.Result.Cost.Transfers != oo.Result.Cost.Transfers {
			t.Fatalf("seed %d: exact %d != orderopt %d", seed,
				ex.Result.Cost.Transfers, oo.Result.Cost.Transfers)
		}
	}
}

func TestOrderOptRejectsOtherModels(t *testing.T) {
	g := daggen.Chain(3)
	if _, err := OrderOpt(prob(g, pebble.Base, 2), OrderOptOptions{}); err == nil {
		t.Fatal("OrderOpt accepted base model")
	}
}

func TestOrderOptOrderLimit(t *testing.T) {
	// 6 independent group targets -> many orders; cap must trigger.
	g, _, _ := daggen.InputGroups(6, 2)
	_, err := OrderOpt(prob(g, pebble.Oneshot, 3), OrderOptOptions{MaxOrders: 3})
	if !errors.Is(err, ErrOrderLimit) {
		t.Fatalf("err = %v", err)
	}
}

func TestCountTopoOrders(t *testing.T) {
	if c := CountTopoOrders(daggen.Chain(5), 100); c != 1 {
		t.Fatalf("chain orders = %d", c)
	}
	if c := CountTopoOrders(dag.New(3), 100); c != 6 {
		t.Fatalf("antichain orders = %d", c)
	}
	if c := CountTopoOrders(dag.New(5), 10); c != 11 {
		t.Fatalf("limit overflow = %d, want limit+1", c)
	}
}

func TestGreedyRunsAndIsVerified(t *testing.T) {
	for _, rule := range AllGreedyRules() {
		for seed := int64(0); seed < 5; seed++ {
			g := daggen.RandomLayered(4, 4, 2, seed)
			r := pebble.MinFeasibleR(g)
			sol, err := Greedy(prob(g, pebble.Oneshot, r), rule)
			if err != nil {
				t.Fatalf("%v seed %d: %v", rule, seed, err)
			}
			if !sol.Result.Complete {
				t.Fatalf("%v: incomplete", rule)
			}
			ub := pebble.CostUpperBound(g, pebble.NewModel(pebble.Oneshot))
			if sol.Result.Cost.Transfers > ub.Transfers {
				t.Fatalf("%v: above universal bound", rule)
			}
		}
	}
}

func TestGreedyNeverBeatsExact(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := daggen.RandomLayered(3, 3, 2, seed)
		r := pebble.MinFeasibleR(g)
		p := prob(g, pebble.Oneshot, r)
		ex, err := Exact(p, ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, rule := range AllGreedyRules() {
			gr, err := Greedy(p, rule)
			if err != nil {
				t.Fatal(err)
			}
			if gr.Result.Cost.Transfers < ex.Result.Cost.Transfers {
				t.Fatalf("seed %d rule %v: greedy %d < optimum %d (exact solver is wrong)",
					seed, rule, gr.Result.Cost.Transfers, ex.Result.Cost.Transfers)
			}
		}
	}
}

func TestGreedyRulesIdenticalOnUniformIndegree(t *testing.T) {
	// Paper §8: for graphs where every non-source node has the same
	// indegree, the three rules coincide.
	g, _, _ := daggen.InputGroups(4, 3)
	p := prob(g, pebble.Oneshot, 4)
	var first []dag.NodeID
	for i, rule := range AllGreedyRules() {
		order, err := GreedyOrder(p, rule)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = order
			continue
		}
		if len(order) != len(first) {
			t.Fatalf("%v: different order length", rule)
		}
		for j := range order {
			if order[j] != first[j] {
				t.Fatalf("%v: order diverges at %d: %v vs %v", rule, j, order, first)
			}
		}
	}
}

func TestTopologicalRealizesUpperBound(t *testing.T) {
	g, _, _ := daggen.InputGroups(5, 3)
	p := prob(g, pebble.Oneshot, 4)
	sol, err := Topological(p)
	if err != nil {
		t.Fatal(err)
	}
	ub := pebble.CostUpperBound(g, p.Model)
	if sol.Result.Cost.Transfers > ub.Transfers {
		t.Fatalf("naive cost %d > bound %d", sol.Result.Cost.Transfers, ub.Transfers)
	}
	// And TopoBelady is never worse than the naive baseline.
	tb, err := TopoBelady(p)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Result.Cost.Transfers > sol.Result.Cost.Transfers {
		t.Fatalf("TopoBelady %d > Topological %d", tb.Result.Cost.Transfers, sol.Result.Cost.Transfers)
	}
}

func TestTopologicalWithSourcesStartBlue(t *testing.T) {
	g := daggen.Pyramid(2)
	p := Problem{G: g, Model: pebble.NewModel(pebble.Oneshot), R: 4,
		Convention: pebble.Convention{SourcesStartBlue: true}}
	sol, err := Topological(p)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Result.Complete {
		t.Fatal("incomplete")
	}
	// Sources must be loaded, so at least #sources transfers.
	if sol.Result.Cost.Transfers < 3 {
		t.Fatalf("transfers = %d, want >= 3", sol.Result.Cost.Transfers)
	}
}

func TestMinVisitOrderKnownInstance(t *testing.T) {
	// 3 groups; transition costs favor order 2 -> 0 -> 1.
	start := []int64{5, 9, 1}
	trans := [][]int64{
		{0, 2, 9},
		{9, 0, 9},
		{1, 9, 0},
	}
	cost, order := MinVisitOrder(start, trans)
	if cost != 1+1+2 {
		t.Fatalf("cost = %d, want 4", cost)
	}
	want := []int{2, 0, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestMinVisitOrderEdgeCases(t *testing.T) {
	c, o := MinVisitOrder(nil, nil)
	if c != 0 || o != nil {
		t.Fatal("empty instance")
	}
	c, o = MinVisitOrder([]int64{7}, [][]int64{{0}})
	if c != 7 || len(o) != 1 || o[0] != 0 {
		t.Fatalf("singleton: cost=%d order=%v", c, o)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("malformed trans accepted")
		}
	}()
	MinVisitOrder([]int64{1, 2}, [][]int64{{0, 1}})
}

func TestMinVisitOrderMatchesBruteForce(t *testing.T) {
	// Exhaustive check on 4 groups with deterministic pseudo-random costs.
	k := 4
	start := make([]int64, k)
	trans := make([][]int64, k)
	x := int64(12345)
	next := func() int64 { x = (x*1103515245 + 12_345) % (1 << 31); return x % 50 }
	for i := 0; i < k; i++ {
		start[i] = next()
		trans[i] = make([]int64, k)
		for j := 0; j < k; j++ {
			if i != j {
				trans[i][j] = next()
			}
		}
	}
	got, _ := MinVisitOrder(start, trans)
	best := inf64
	perm := []int{0, 1, 2, 3}
	var permute func(i int)
	permute = func(i int) {
		if i == k {
			c := start[perm[0]]
			for j := 0; j+1 < k; j++ {
				c += trans[perm[j]][perm[j+1]]
			}
			if c < best {
				best = c
			}
			return
		}
		for j := i; j < k; j++ {
			perm[i], perm[j] = perm[j], perm[i]
			permute(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	permute(0)
	if got != best {
		t.Fatalf("DP %d != brute force %d", got, best)
	}
}

func TestGreedyRuleStrings(t *testing.T) {
	for _, r := range AllGreedyRules() {
		if r.String() == "" {
			t.Fatal("empty rule name")
		}
	}
	if GreedyRule(9).String() == "" {
		t.Fatal("unknown rule should render")
	}
}

func BenchmarkExactOneshotPyramid(b *testing.B) {
	g := daggen.Pyramid(2)
	p := prob(g, pebble.Oneshot, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exact(p, ExactOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyFFT(b *testing.B) {
	g := daggen.FFT(4)
	p := prob(g, pebble.Oneshot, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Greedy(p, MostRedInputs); err != nil {
			b.Fatal(err)
		}
	}
}
