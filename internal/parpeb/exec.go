package parpeb

import (
	"fmt"
	"sort"

	"rbpebble/internal/dag"
)

// Assignment maps each node to the processor that computes it.
type Assignment []int

// SingleProc assigns every node to processor 0.
func SingleProc(n int) Assignment {
	return make(Assignment, n)
}

// RoundRobin assigns nodes to processors cyclically along the compute
// order — maximal parallelism, maximal communication.
func RoundRobin(order []dag.NodeID, n, p int) Assignment {
	a := make(Assignment, n)
	for i, v := range order {
		a[v] = i % p
	}
	return a
}

// Blocks splits the compute order into p contiguous blocks — minimal
// cross-processor traffic for chain-like DAGs.
func Blocks(order []dag.NodeID, n, p int) Assignment {
	a := make(Assignment, n)
	per := (len(order) + p - 1) / p
	for i, v := range order {
		a[v] = i / per
	}
	return a
}

// Validate checks the assignment against the machine.
func (a Assignment) Validate(n, p int) error {
	if len(a) != n {
		return fmt.Errorf("parpeb: assignment covers %d nodes, want %d", len(a), n)
	}
	for v, proc := range a {
		if proc < 0 || proc >= p {
			return fmt.Errorf("parpeb: node %d assigned to invalid processor %d", v, proc)
		}
	}
	return nil
}

// Result summarizes an executed parallel pebbling.
type Result struct {
	// Total is the sum of transfers over all processors.
	Total int
	// MaxProc is the largest per-processor transfer count.
	MaxProc int
	// PerProc is the transfer count of each processor.
	PerProc []int
	// CrossEdges counts DAG edges whose endpoints run on different
	// processors (the communication demand of the assignment).
	CrossEdges int
	Steps      int
	Complete   bool
}

// Execute runs the compute order with the given node-to-processor
// assignment: each node is computed on its processor with inputs made
// resident there first (communicated through slow memory when produced
// elsewhere), using Belady eviction per processor. The move sequence is
// replayed through the legality checker before the result is returned.
func Execute(g *dag.DAG, cfg Config, order []dag.NodeID, assign Assignment) ([]Move, Result, error) {
	if err := cfg.Validate(g); err != nil {
		return nil, Result{}, err
	}
	if err := assign.Validate(g.N(), cfg.P); err != nil {
		return nil, Result{}, err
	}
	if err := checkOrder(g, order); err != nil {
		return nil, Result{}, err
	}
	st, err := NewState(g, cfg)
	if err != nil {
		return nil, Result{}, err
	}
	n := g.N()

	// Next-use positions per processor: node u is used on processor q at
	// the order positions of its successors assigned to q.
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	usesOn := make([]map[int][]int, cfg.P) // usesOn[p][u] = positions
	for p := 0; p < cfg.P; p++ {
		usesOn[p] = make(map[int][]int)
	}
	for u := 0; u < n; u++ {
		for _, w := range g.Succs(dag.NodeID(u)) {
			p := assign[w]
			usesOn[p][u] = append(usesOn[p][u], pos[w])
		}
	}
	for p := 0; p < cfg.P; p++ {
		for u := range usesOn[p] {
			sort.Ints(usesOn[p][u])
		}
	}
	const never = int(^uint(0) >> 1)
	nextUseOn := func(p, u, now int) int {
		us := usesOn[p][u]
		for len(us) > 0 && us[0] <= now {
			us = us[1:]
		}
		usesOn[p][u] = us
		if len(us) > 0 {
			return us[0]
		}
		return never
	}
	// liveAnywhere: does u still have an uncomputed successor (on any
	// processor), or is it a sink?
	pendingUses := make([]int, n)
	for u := 0; u < n; u++ {
		pendingUses[u] = len(g.Succs(dag.NodeID(u)))
	}

	var moves []Move
	apply := func(m Move) error {
		if err := st.Apply(m); err != nil {
			return err
		}
		moves = append(moves, m)
		return nil
	}

	// fastCopies counts how many processors hold u.
	fastCopies := func(u int) int {
		c := 0
		for p := 0; p < cfg.P; p++ {
			if st.fast[p].Get(u) {
				c++
			}
		}
		return c
	}

	evictOne := func(p, now int, pinned map[int]bool) error {
		victim, victimUse := -1, -2
		st.fast[p].ForEach(func(u int) bool {
			if pinned[u] {
				return true
			}
			nu := nextUseOn(p, u, now)
			score := nu
			if nu == never {
				score = never // not needed on this processor again
			}
			if score > victimUse {
				victim, victimUse = u, score
			}
			return true
		})
		if victim < 0 {
			return fmt.Errorf("parpeb: processor %d full of pinned values", p)
		}
		node := dag.NodeID(victim)
		// Preserve the last copy of a value still needed somewhere (or a
		// sink) by writing it back first.
		needed := pendingUses[victim] > 0 || g.IsSink(node)
		if needed && !st.IsBlue(node) && fastCopies(victim) == 1 {
			if err := apply(Move{Kind: Store, Proc: p, Node: node}); err != nil {
				return err
			}
		}
		return apply(Move{Kind: Drop, Proc: p, Node: node})
	}

	for i, v := range order {
		p := assign[v]
		preds := g.Preds(v)
		pinned := make(map[int]bool, len(preds)+1)
		for _, u := range preds {
			pinned[int(u)] = true
		}
		for _, u := range g.SortedPreds(v) {
			if st.IsFast(p, u) {
				continue
			}
			// Communicate: ensure a blue copy exists (store at a producer),
			// then load here.
			if !st.IsBlue(u) {
				q := -1
				for cand := 0; cand < cfg.P; cand++ {
					if st.IsFast(cand, u) {
						q = cand
						break
					}
				}
				if q < 0 {
					return nil, Result{}, fmt.Errorf("parpeb: input %d of %d lost (order position %d)", u, v, i)
				}
				if err := apply(Move{Kind: Store, Proc: q, Node: u}); err != nil {
					return nil, Result{}, err
				}
			}
			for st.counts[p] >= cfg.R {
				if err := evictOne(p, i, pinned); err != nil {
					return nil, Result{}, err
				}
			}
			if err := apply(Move{Kind: Load, Proc: p, Node: u}); err != nil {
				return nil, Result{}, err
			}
		}
		for st.counts[p] >= cfg.R {
			if err := evictOne(p, i, pinned); err != nil {
				return nil, Result{}, err
			}
		}
		if err := apply(Move{Kind: Compute, Proc: p, Node: v}); err != nil {
			return nil, Result{}, err
		}
		for _, u := range preds {
			pendingUses[u]--
		}
	}

	res, err := Replay(g, cfg, moves)
	if err != nil {
		return nil, Result{}, fmt.Errorf("parpeb: self-verification failed: %w", err)
	}
	cross := 0
	for u := 0; u < n; u++ {
		for _, w := range g.Succs(dag.NodeID(u)) {
			if assign[u] != assign[w] {
				cross++
			}
		}
	}
	res.CrossEdges = cross
	return moves, res, nil
}

// Replay validates a move sequence from scratch and returns its result.
func Replay(g *dag.DAG, cfg Config, moves []Move) (Result, error) {
	st, err := NewState(g, cfg)
	if err != nil {
		return Result{}, err
	}
	for i, m := range moves {
		if err := st.Apply(m); err != nil {
			return Result{}, fmt.Errorf("move %d: %w", i, err)
		}
	}
	res := Result{
		Total:    st.TotalCost(),
		MaxProc:  st.MaxProcCost(),
		PerProc:  st.PerProcCost(),
		Steps:    st.Steps(),
		Complete: st.Complete(),
	}
	if !res.Complete {
		return res, fmt.Errorf("parpeb: pebbling incomplete")
	}
	return res, nil
}

func checkOrder(g *dag.DAG, order []dag.NodeID) error {
	n := g.N()
	posOf := make([]int, n)
	for i := range posOf {
		posOf[i] = -1
	}
	for i, v := range order {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("parpeb: order contains out-of-range node %d", v)
		}
		if posOf[v] >= 0 {
			return fmt.Errorf("parpeb: order contains node %d twice", v)
		}
		posOf[v] = i
	}
	for v := 0; v < n; v++ {
		if posOf[v] < 0 {
			return fmt.Errorf("parpeb: order missing node %d", v)
		}
		for _, u := range g.Preds(dag.NodeID(v)) {
			if posOf[u] > posOf[v] {
				return fmt.Errorf("parpeb: order violates edge %d->%d", u, v)
			}
		}
	}
	return nil
}
