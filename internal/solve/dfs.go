package solve

import (
	"errors"
	"fmt"
	"time"

	"rbpebble/internal/pebble"
)

// DFSAlgorithm selects the depth-first exact solver's search scheme.
type DFSAlgorithm int

const (
	// DFSAuto (the zero value) behaves like DFSIDAStar.
	DFSAuto DFSAlgorithm = iota
	// DFSIDAStar is iterative-deepening A* on f = g+h: depth-first
	// passes under a growing f-threshold, over the packed per-iteration
	// memo. It shares the admissible lower bound with the best-first
	// solver, and unlike plain branch and bound its pruning does not
	// depend on stumbling onto a good incumbent early — fft(3) R=3,
	// hopeless for branch and bound at any reasonable budget, finishes
	// well inside the default one.
	DFSIDAStar
	// DFSBranchAndBound is the plain depth-first branch and bound
	// (prune on cost + h >= incumbent), kept as the ablation baseline.
	DFSBranchAndBound
)

// String names the DFS algorithm.
func (a DFSAlgorithm) String() string {
	switch a {
	case DFSAuto:
		return "auto"
	case DFSIDAStar:
		return "ida-star"
	case DFSBranchAndBound:
		return "branch-and-bound"
	default:
		return "DFSAlgorithm(?)"
	}
}

// ExactDFSOptions configures the depth-first exact solver.
type ExactDFSOptions struct {
	// MaxVisits caps the number of state expansions (0 = 16,000,000),
	// cumulative across IDA* iterations. Note the semantics: expansions
	// — states whose successors are generated — matching the best-first
	// solver's Expanded counter. (The PR 1 budget counted every
	// recursion entry including memo-pruned re-entries, roughly 8x
	// more numerous; the default is recalibrated for the new meaning.)
	MaxVisits int
	// MaxTableBytes caps the memo and transposition tables' combined
	// backing-store footprint (0 = unlimited). Growth past the budget
	// aborts the search with ErrMemoryBudget, with Stats filled — the
	// incumbent and certified LowerBound survive as a partial
	// certificate. Checked at the periodic expansion gate, so the real
	// peak can overshoot by one gate interval's growth.
	MaxTableBytes int64
	// InitialBound, if nonzero, seeds the search with a known achievable
	// scaled cost (e.g. from TopoBelady). Otherwise the solver computes
	// one itself.
	InitialBound int64
	// InitialLowerBound, if > 0, is a lower bound on the optimal scaled
	// cost the CALLER has already certified (e.g. a cached interval from
	// an earlier deadline-limited solve). IDA* starts its threshold
	// schedule at max(root heuristic, InitialLowerBound) — skipping every
	// pass a previous request already completed — and both algorithms
	// seed their reported LowerBound with it. Soundness of the skipped
	// passes rests entirely on the caller's certificate; an uncertified
	// value can make the solver return a non-optimal trace as "optimal".
	InitialLowerBound int64
	// Algorithm selects the search scheme (DFSAuto = IDA*).
	Algorithm DFSAlgorithm
	// Stats, when non-nil, receives search counters after the solve —
	// also on failure, so a visit-limited run still reports how far it
	// got and what bounds it had proven.
	Stats *ExactDFSStats
	// Cancel, when non-nil, makes the search stop cooperatively once
	// the channel is closed: ExactDFS returns ErrCanceled with Stats
	// filled. The incumbent found so far remains harvestable through
	// OnIncumbent, which always fires before the cancellation lands.
	Cancel <-chan struct{}
	// OnIncumbent, when non-nil, is called (from the solver goroutine)
	// each time the search improves its incumbent, with the achieved
	// scaled cost and the move sequence. The slice is owned by the
	// solver and must be treated as read-only.
	OnIncumbent func(scaled int64, moves []pebble.Move)
	// Progress, when non-nil, is called after every completed IDA*
	// threshold pass with the current stats snapshot (whose LowerBound
	// ratchets up as passes complete).
	Progress func(ExactDFSStats)
	// Search, when non-nil, receives uniform mid-pass search snapshots
	// on a time-based cadence (ProgressEvery, default ~100ms): the
	// current threshold, pass number, visit count and transposition-
	// cache occupancy, in the same ExactProgress shape the best-first
	// engines emit. Passes can run for seconds, so this is the only
	// live view inside one. Runs on the solver goroutine; must be fast.
	Search func(ExactProgress)
	// ProgressEvery is the Search snapshot cadence (default ~100ms).
	ProgressEvery time.Duration
}

// ExactDFSStats reports search effort and bound progress from one
// ExactDFS run. It is filled on success and on ErrVisitLimit.
type ExactDFSStats struct {
	// Visits is the number of state expansions (cumulative across IDA*
	// iterations; see ExactDFSOptions.MaxVisits for the semantics).
	Visits int
	// Iterations is the number of IDA* threshold passes (1 for branch
	// and bound).
	Iterations int
	// Threshold is the last IDA* f-threshold searched (0 for branch and
	// bound).
	Threshold int64
	// Incumbent is the best achievable scaled cost known when the
	// search stopped (the optimum on success; an upper bound on
	// ErrVisitLimit).
	Incumbent int64
	// LowerBound is the best certified lower bound on the optimal
	// scaled cost when the search stopped: the optimum itself on
	// success, else the root heuristic estimate raised by every
	// completed IDA* pass (a pass at threshold T that finds nothing
	// cheaper proves no completion costs less than the smallest f it
	// pruned).
	LowerBound int64
	// TableBytes is the memo and heuristic tables' combined
	// backing-store footprint when the search stopped (peak: the tables
	// keep their capacity across IDA* passes).
	TableBytes int64
	// CacheStates is the learned-bound transposition cache's distinct
	// state count (the hcache persists across IDA* passes).
	CacheStates int
	// MemoStates is the per-pass memo's distinct state count (reset at
	// every threshold pass).
	MemoStates int
}

// ErrVisitLimit is returned when ExactDFS exceeds its visit budget.
// The error carries the stats snapshot inline; ExactDFSOptions.Stats
// receives the same numbers.
var ErrVisitLimit = errors.New("solve: DFS visit limit exceeded")

// ExactDFS finds a provably minimum-cost pebbling by depth-first search
// with per-state memoization: iterative-deepening A* on f = g+h by
// default, plain branch and bound as the ablation baseline
// (ExactDFSOptions.Algorithm). It is an independent second
// implementation of the exact optimum (the first being the best-first
// search in Exact) — the two cross-validate each other in the tests.
//
// The recursion shares the best-first solver's machinery: moves are
// generated from the red frontier, each candidate is applied and undone
// on the single live state (no cloning), the memo table is keyed on the
// packed state encoding, and the admissible lower bound prunes branches.
//
// Supported models: oneshot and nodel, whose optimal pebblings have
// O(Δ·n) steps (Lemma 1), giving the recursion a sound depth bound. The
// base model admits no polynomial step bound; compcost admits one but
// its ε-granular costs make bound pruning ineffective — use Exact
// (best-first) for those models.
func ExactDFS(p Problem, opts ExactDFSOptions) (Solution, error) {
	if p.Model.Kind != pebble.Oneshot && p.Model.Kind != pebble.NoDel {
		return Solution{}, fmt.Errorf("solve: ExactDFS supports oneshot and nodel only, got %s", p.Model)
	}
	maxVisits := opts.MaxVisits
	if maxVisits == 0 {
		maxVisits = 16_000_000
	}
	start, err := pebble.NewState(p.G, p.Model, p.R, p.Convention)
	if err != nil {
		return Solution{}, err
	}

	// Seed the incumbent with an achievable solution so pruning bites
	// from the first pass.
	bound := opts.InitialBound
	var bestMoves []pebble.Move
	if bound == 0 {
		seed, err := TopoBelady(p)
		if err != nil {
			return Solution{}, err
		}
		bound = seed.Result.Cost.Scaled(p.Model) + 1 // strict improvement wanted
		bestMoves = seed.Trace.Moves
	}

	d := &dfsSearch{
		p:            p,
		c:            newSearchCtx(p, ExactOptions{}, start),
		st:           start,
		memo:         newStateTable(start.PackedWords(), payloadBestOnly, 1024),
		hcache:       newStateTable(start.PackedWords(), payloadBestOnly, 1024),
		maxVisits:    maxVisits,
		maxTableB:    opts.MaxTableBytes,
		bound:        bound,
		bestMoves:    bestMoves,
		maxDepth:     dfsMaxDepth(p),
		initialLower: opts.InitialLowerBound,
		cancel:       opts.Cancel,
		onIncumbent:  opts.OnIncumbent,
		onProgress:   opts.Progress,
		onSearch:     opts.Search,
		engine:       opts.Algorithm.String(),
	}
	if opts.Algorithm == DFSAuto {
		d.engine = DFSIDAStar.String()
	}
	if d.onSearch != nil {
		d.sampler = newProgressSampler(opts.ProgressEvery)
	}
	report := func() {
		if opts.Stats != nil {
			*opts.Stats = d.stats()
		}
	}
	switch opts.Algorithm {
	case DFSBranchAndBound:
		err = d.branchAndBound()
	default:
		err = d.idaStar()
	}
	report()
	if err != nil {
		return Solution{}, err
	}
	if d.bestMoves == nil {
		return Solution{}, errors.New("solve: DFS found no complete pebbling (infeasible instance?)")
	}
	tr := &pebble.Trace{Model: p.Model, R: p.R, Convention: p.Convention, Moves: d.bestMoves}
	return verify(p, tr), nil
}

// dfsMaxDepth returns the recursion depth cap. It must be generous
// enough that the cap never cuts a prefix of any solution cheaper than
// the universal (2Δ+1)·n upper bound — otherwise the memoized and
// learned bounds would rest on depth-truncated subtrees. In oneshot and
// nodel, any pebbling prefix of cost c has at most 2n + 2c steps
// (computes <= n + stores, deletes <= placements <= n + loads, and
// loads + stores = c), so with c < (2Δ+1)n every relevant prefix stays
// below (4Δ+4)·n + 2n steps; the cap sits above both that and the
// Lemma 1 bound.
func dfsMaxDepth(p Problem) int {
	n := p.G.N()
	delta := p.G.MaxInDegree()
	if delta == 0 {
		delta = 1
	}
	a := pebble.StepUpperBoundFactor(p.Model)*delta*n + n + 8
	if b := (4*delta+6)*n + 8; b > a {
		return b
	}
	return a
}

// dfsSearch carries the shared state of one ExactDFS run across
// iterations and recursion levels.
type dfsSearch struct {
	p         Problem
	c         *searchCtx
	st        *pebble.State // mutated in place by apply/undo
	memo      *stateTable   // best entry cost per state, valid for one pass
	hcache    *stateTable   // heuristic per state (best(ref) = h; dfsDeadH = dead), never reset
	maxVisits int
	maxTableB int64 // table memory budget (0 = unlimited)
	maxDepth  int

	bound     int64 // best achievable scaled cost known (incumbent, exclusive upper bound on improvements)
	bestMoves []pebble.Move
	moves     []pebble.Move // live move prefix of the recursion

	threshold    int64 // current IDA* f-threshold
	minExceed    int64 // smallest f seen above the threshold this pass
	lower        int64 // certified lower bound (root estimate, raised per completed pass)
	initialLower int64 // caller-certified floor (warm start); seeds threshold and lower
	visits       int
	iterations   int
	limitErr     error

	cancel      <-chan struct{}
	onIncumbent func(scaled int64, moves []pebble.Move)
	onProgress  func(ExactDFSStats)
	onSearch    func(ExactProgress)
	sampler     *progressSampler
	engine      string
}

// stats snapshots the search counters and bounds.
func (d *dfsSearch) stats() ExactDFSStats {
	return ExactDFSStats{
		Visits:      d.visits,
		Iterations:  d.iterations,
		Threshold:   d.threshold,
		Incumbent:   d.bound,
		LowerBound:  d.lower,
		TableBytes:  d.memo.bytes() + d.hcache.bytes(),
		CacheStates: d.hcache.count(),
		MemoStates:  d.memo.count(),
	}
}

// searchProgress builds the uniform mid-pass snapshot: visits play the
// expansion counter, the transposition cache plays the state table, and
// the threshold schedule stands in for the frontier.
func (d *dfsSearch) searchProgress() ExactProgress {
	elapsed, rate := d.sampler.tick(d.visits)
	return ExactProgress{
		Engine:     d.engine,
		Expanded:   d.visits,
		LowerBound: d.lower,
		Elapsed:    elapsed,
		Rate:       rate,
		Distinct:   d.hcache.count(),
		FrontierF:  -1,
		FrontierG:  -1,
		TableBytes: d.memo.bytes() + d.hcache.bytes(),
		TableLoad:  d.hcache.load(),
		Threshold:  d.threshold,
		Pass:       d.iterations,
	}
}

// improved records a new incumbent (a complete pebbling of scaled cost
// `cost` along the live move prefix) and notifies the callback.
func (d *dfsSearch) improved(cost int64) {
	d.bound = cost
	d.bestMoves = append([]pebble.Move(nil), d.moves...)
	if d.onIncumbent != nil {
		d.onIncumbent(cost, d.bestMoves)
	}
}

// visitLimited counts one expansion, registers budget exhaustion or
// cancellation (once) and reports it. Visits count states actually
// expanded — memo- and bound-pruned re-entries are free, matching what
// the best-first solver's Expanded counter means.
func (d *dfsSearch) visitLimited() bool {
	d.visits++
	if d.visits&255 == 0 {
		if d.cancel != nil {
			select {
			case <-d.cancel:
				if d.limitErr == nil {
					d.limitErr = fmt.Errorf("%w after %d visits (incumbent %d, lower bound %d)",
						ErrCanceled, d.visits, d.bound, d.lower)
				}
				return true
			default:
			}
		}
		if d.maxTableB > 0 {
			if tb := d.memo.bytes() + d.hcache.bytes(); tb > d.maxTableB {
				if d.limitErr == nil {
					d.limitErr = fmt.Errorf("%w: %d table bytes over budget %d after %d visits (incumbent %d, lower bound %d)",
						ErrMemoryBudget, tb, d.maxTableB, d.visits, d.bound, d.lower)
				}
				return true
			}
		}
		if d.sampler != nil && d.sampler.due() {
			d.onSearch(d.searchProgress())
		}
	}
	if d.visits <= d.maxVisits {
		return false
	}
	if d.limitErr == nil {
		d.limitErr = fmt.Errorf("%w: %d visits (best incumbent %d, iteration %d)",
			ErrVisitLimit, d.maxVisits, d.bound, d.iterations)
	}
	return true
}

// dfsDeadH marks a dead state in the heuristic cache. Large (not
// MaxInt64, so cost + dfsDeadH cannot overflow) and above every real
// bound, it prunes like any other remaining-cost lower bound.
const dfsDeadH = int64(1) << 40

// cachedH returns the heuristic-cache ref and value for the state
// encoded in c.keyBuf (estimating on first sight). The cache persists
// across IDA* passes — repeated passes re-estimate nothing — and the
// value is the EFFECTIVE remaining-cost lower bound: the static
// heuristic, raised by learned bounds from exhausted subtrees (see
// recIDA), which is what keeps iterative deepening from re-walking
// transpositions it has already refuted.
func (d *dfsSearch) cachedH(hash uint64) (int32, int64) {
	ref, isNew := d.hcache.lookupOrAdd(d.c.keyBuf, hash)
	if !isNew {
		return ref, d.hcache.best(ref)
	}
	h, dead := d.c.lb.estimate(d.st)
	if dead {
		h = dfsDeadH
	}
	d.hcache.setBest(ref, h)
	return ref, h
}

// idaStar runs iterative-deepening A*: depth-first passes pruned at
// f = cost + h > threshold, with the threshold raised to the smallest
// exceeding f after each pass. The memo prunes re-entries at a
// not-better cost within one pass (and is reset between passes, since a
// higher threshold re-opens states). A pass that ends with the
// incumbent at or below its threshold proves the incumbent optimal:
// along any cheaper completion every prefix state has f at most its
// final cost, so the pass would have reached it.
func (d *dfsSearch) idaStar() error {
	h0, dead := d.c.lb.estimate(d.st)
	if dead {
		return ErrInfeasible
	}
	// A caller-certified floor starts the threshold schedule where the
	// previous request left off: passes below it were proven empty there
	// and need not be re-run. A pass at threshold T still explores every
	// prefix with f <= T, so an incumbent at or below T remains a sound
	// optimality proof.
	d.threshold = max(h0, d.initialLower)
	d.lower = d.threshold
	// The threshold grows by a doubling gap (capped) rather than to the
	// minimal exceeding f. Minimal steps are safe but hopeless on wide
	// searches: the per-pass cost grows roughly geometrically in f, so
	// Σ cum(f) over every f-level can dwarf the final pass several-fold
	// (measured >10M expansions on fft(3) R=3 against 1.3M states at
	// the optimum's level). Jumping is sound — a pass at threshold T
	// explores every prefix with f <= T, so an incumbent at or below T
	// is still proven optimal — and overshooting the optimum is mild:
	// once the pass finds a goal, the incumbent prunes the remainder.
	gap := int64(1)
	const maxGap = 8
	for {
		d.iterations++
		d.memo.reset()
		d.minExceed = costUnreached
		d.recIDA()
		if d.limitErr != nil {
			return d.limitErr
		}
		if d.bound <= d.threshold {
			d.lower = d.bound // incumbent proven optimal
			return nil
		}
		if d.minExceed >= d.bound {
			// Every unexplored branch already costs at least the
			// incumbent: it is optimal (covers minExceed == unreached,
			// the exhausted case).
			d.lower = d.bound
			return nil
		}
		// The completed pass proves no completion costs less than
		// minExceed: every cheaper one would have a prefix with
		// f <= threshold all the way to its goal, so the pass would
		// have reached it.
		if d.minExceed > d.lower {
			d.lower = d.minExceed
		}
		if d.onProgress != nil {
			d.onProgress(d.stats())
		}
		next := d.threshold + gap*int64(d.c.scale)
		if d.minExceed > next {
			next = d.minExceed
		}
		d.threshold = next
		if gap < maxGap {
			gap *= 2
		}
	}
}

// recIDA is one IDA* recursion step. Returns false on budget
// exhaustion.
func (d *dfsSearch) recIDA() bool {
	if d.limitErr != nil {
		return false
	}
	st, c := d.st, d.c
	cost := st.Cost().Scaled(d.p.Model)
	if cost >= d.bound {
		return true
	}
	if st.Complete() {
		d.improved(cost)
		return true
	}
	if st.Steps() >= d.maxDepth {
		return true
	}
	c.keyBuf = st.AppendPacked(c.keyBuf[:0])
	hash := hashKey(c.keyBuf)
	ref, _ := d.memo.lookupOrAdd(c.keyBuf, hash)
	if d.memo.best(ref) <= cost {
		return true // reached at least as cheaply this pass
	}
	href, h := d.cachedH(hash)
	f := cost + h
	if f >= d.bound {
		return true
	}
	if f > d.threshold {
		if f < d.minExceed {
			d.minExceed = f
		}
		return true
	}
	if d.visitLimited() {
		return false
	}
	d.memo.setBest(ref, cost)

	// Generate this level's moves above the caller's live prefix;
	// deeper levels append beyond end and truncate back. Zero-cost
	// moves recurse first (see orderMovesForDFS): reaching a state
	// through a cheap prefix the first time avoids the re-expansion
	// cascade when a cheaper path finds it later.
	base := len(c.moveBuf)
	c.appendMoves(st, c.keyBuf)
	orderMovesForDFS(c, c.moveBuf[base:])
	end := len(c.moveBuf)
	ok := true
	for i := base; i < end; i++ {
		m := c.moveBuf[i]
		undo, err := st.ApplyForUndo(m)
		if err != nil {
			panic("solve: appendMoves emitted illegal move: " + err.Error())
		}
		d.moves = append(d.moves, m)
		ok = d.recIDA()
		d.moves = d.moves[:len(d.moves)-1]
		st.Undo(undo)
		if !ok {
			break
		}
	}
	c.moveBuf = c.moveBuf[:base]
	if ok {
		// Subtree exhausted: every completion from this state now
		// provably costs at least min(threshold+1, incumbent). Raise the
		// state's effective bound so later entries — this pass at higher
		// cost, or any future pass — prune without re-walking the
		// subtree. This transposition learning is what tames IDA*'s
		// re-expansion cascades on graphs with many equal-state paths.
		learned := d.threshold + 1
		if d.bound < learned {
			learned = d.bound
		}
		if rem := learned - cost; rem > d.hcache.best(href) {
			d.hcache.setBest(href, rem)
		}
	}
	return ok
}

// orderMovesForDFS stably partitions a generated move segment so that
// zero-cost moves (computes, and deletes outside compcost) come first.
// Depth-first search first reaches most states through the prefix order
// it happens to try; putting free moves first makes that first reach
// near-cheapest, which slashes the re-expansion cascades triggered when
// a state is later reached more cheaply.
func orderMovesForDFS(c *searchCtx, moves []pebble.Move) {
	w := 0
	for i, m := range moves {
		if c.moveCost(m) == 0 {
			if i != w {
				moves[i], moves[w] = moves[w], moves[i]
			}
			w++
		}
	}
}

// branchAndBound is the PR 1 depth-first branch and bound: a single
// pass pruned only against the incumbent (cost + h >= bound), with the
// memo keyed on best entry cost.
func (d *dfsSearch) branchAndBound() error {
	d.iterations = 1
	h0, dead := d.c.lb.estimate(d.st)
	if dead {
		return ErrInfeasible
	}
	d.lower = max(h0, d.initialLower)
	d.recBnB()
	if d.limitErr == nil {
		d.lower = d.bound // exhausted: incumbent proven optimal
	}
	return d.limitErr
}

// recBnB is one branch-and-bound recursion step. Returns false on
// budget exhaustion.
func (d *dfsSearch) recBnB() bool {
	if d.limitErr != nil {
		return false
	}
	st, c := d.st, d.c
	cost := st.Cost().Scaled(d.p.Model)
	if cost >= d.bound {
		return true
	}
	if st.Complete() {
		d.improved(cost)
		return true
	}
	if st.Steps() >= d.maxDepth {
		return true
	}
	c.keyBuf = st.AppendPacked(c.keyBuf[:0])
	hash := hashKey(c.keyBuf)
	ref, _ := d.memo.lookupOrAdd(c.keyBuf, hash)
	if d.memo.best(ref) <= cost {
		return true
	}
	_, h := d.cachedH(hash)
	if cost+h >= d.bound {
		return true // no completion from here can beat the incumbent (or dead)
	}
	if d.visitLimited() {
		return false
	}
	d.memo.setBest(ref, cost)

	base := len(c.moveBuf)
	c.appendMoves(st, c.keyBuf)
	orderMovesForDFS(c, c.moveBuf[base:])
	end := len(c.moveBuf)
	ok := true
	for i := base; i < end; i++ {
		m := c.moveBuf[i]
		undo, err := st.ApplyForUndo(m)
		if err != nil {
			panic("solve: appendMoves emitted illegal move: " + err.Error())
		}
		d.moves = append(d.moves, m)
		ok = d.recBnB()
		d.moves = d.moves[:len(d.moves)-1]
		st.Undo(undo)
		if !ok {
			break
		}
	}
	c.moveBuf = c.moveBuf[:base]
	return ok
}
