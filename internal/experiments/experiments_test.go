package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func cell(t *testing.T, rep *Report, row int, col string) string {
	t.Helper()
	for i, h := range rep.Header {
		if h == col {
			return rep.Rows[row][i]
		}
	}
	t.Fatalf("%s: no column %q", rep.ID, col)
	return ""
}

func cellInt(t *testing.T, rep *Report, row int, col string) int {
	t.Helper()
	v, err := strconv.Atoi(cell(t, rep, row, col))
	if err != nil {
		t.Fatalf("%s row %d col %s: %v", rep.ID, row, col, err)
	}
	return v
}

func cellFloat(t *testing.T, rep *Report, row int, col string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, rep, row, col), 64)
	if err != nil {
		t.Fatalf("%s row %d col %s: %v", rep.ID, row, col, err)
	}
	return v
}

func TestTable1(t *testing.T) {
	rep := Table1()
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	if !strings.Contains(rep.Render(), "nodel") {
		t.Fatal("render missing model names")
	}
}

func TestTable2Invariants(t *testing.T) {
	rep := Table2()
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for i := range rep.Rows {
		model := cell(t, rep, i, "model")
		minC := cellFloat(t, rep, i, "minCost(meas)")
		maxC := cellFloat(t, rep, i, "maxCost(meas)")
		bound := float64(cellInt(t, rep, i, "(2Δ+1)n"))
		if minC > maxC {
			t.Fatalf("%s: min > max", model)
		}
		if maxC > bound+1 { // +εn < 1 slack for compcost
			t.Fatalf("%s: max %v above bound %v", model, maxC, bound)
		}
		switch {
		case strings.HasPrefix(model, "oneshot"), strings.HasPrefix(model, "base"):
			if minC != 0 {
				t.Fatalf("%s: min cost %v, want 0", model, minC)
			}
		default:
			if minC <= 0 {
				t.Fatalf("%s: min cost should be positive", model)
			}
		}
	}
	// Greedy/opt ratio must be largest in oneshot or base.
	oneshotRatio := cellFloat(t, rep, 1, "greedy/opt")
	nodelRatio := cellFloat(t, rep, 2, "greedy/opt")
	if oneshotRatio <= nodelRatio {
		t.Fatalf("oneshot greedy ratio %v <= nodel %v", oneshotRatio, nodelRatio)
	}
}

func TestFig1(t *testing.T) {
	rep := Fig1CD(Fig1Params{GroupSize: 3, Heights: []int{1, 3}})
	for i := range rep.Rows {
		if cellInt(t, rep, i, "cost@R'") != 0 {
			t.Fatal("gadget not free at required R")
		}
	}
	if cellInt(t, rep, 1, "opt@R'-1") <= cellInt(t, rep, 0, "opt@R'-1") {
		t.Fatal("cost does not grow with h")
	}
}

func TestFig2(t *testing.T) {
	rep := Fig2H2C()
	for i := range rep.Rows {
		if cell(t, rep, i, "opt (exact)") != cell(t, rep, i, "claimed") {
			t.Fatalf("row %d: optimum differs from claimed 4", i)
		}
	}
}

func TestFig4Monotone(t *testing.T) {
	rep := Fig4Tradeoff(TradeoffParams{D: 3, Chain: 30})
	prev := 1 << 30
	for i := range rep.Rows {
		c := cellInt(t, rep, i, "oneshot")
		pred := cellInt(t, rep, i, "predicted")
		if c > prev {
			t.Fatal("oneshot curve not monotone decreasing")
		}
		if c > pred {
			t.Fatalf("measured %d above closed form %d", c, pred)
		}
		nodel := cellInt(t, rep, i, "nodel")
		if nodel <= c && i < len(rep.Rows)-0 {
			// nodel must sit above oneshot by ≈ chain length.
			t.Fatalf("nodel %d not above oneshot %d", nodel, c)
		}
		prev = c
	}
	// Last row (R = 2d+2) is free in oneshot.
	if cellInt(t, rep, len(rep.Rows)-1, "oneshot") != 0 {
		t.Fatal("not free at R = 2d+2")
	}
}

func TestThm2AllVerified(t *testing.T) {
	rep := Thm2HamPath(Thm2Params{RandomN: []int{6}, Seed: 1})
	for i := range rep.Rows {
		if cell(t, rep, i, "at-threshold") != cell(t, rep, i, "hasHP") {
			t.Fatalf("row %d: threshold does not track HP", i)
		}
		if cell(t, rep, i, "verified") != "true" {
			t.Fatalf("row %d: engine verification failed", i)
		}
	}
	if strings.Contains(rep.Verdict, "MISMATCH") {
		t.Fatal(rep.Verdict)
	}
}

func TestThm3SlopeConverges(t *testing.T) {
	rep := Thm3VertexCover(Thm3Params{KPrimes: []int{10, 40}})
	// For each source, the cost ratio at k'=40 must be closer to the
	// cover ratio than at k'=10 (or already equal).
	for i := 0; i+1 < len(rep.Rows); i += 2 {
		cr := cellFloat(t, rep, i, "coverRatio")
		d10 := cellFloat(t, rep, i, "costRatio") - cr
		d40 := cellFloat(t, rep, i+1, "costRatio") - cr
		abs := func(x float64) float64 {
			if x < 0 {
				return -x
			}
			return x
		}
		if abs(d40) > abs(d10)+1e-9 {
			t.Fatalf("rows %d/%d: ratio did not converge (%.3f vs %.3f)", i, i+1, d40, d10)
		}
		// Cost must be at least the common-node lower bound.
		if cellInt(t, rep, i, "cost(VCmin)") < cellInt(t, rep, i, "2k'|VCmin|") {
			t.Fatalf("row %d: cost below common lower bound", i)
		}
	}
}

func TestThm4SeparationGrows(t *testing.T) {
	rep := Thm4Greedy(Thm4Params{L: 3, KPrimes: []int{8, 32}})
	for i := range rep.Rows {
		if cell(t, rep, i, "followed-misguide") != "true" {
			t.Fatalf("row %d: greedy escaped the misguidance", i)
		}
	}
	if cellFloat(t, rep, 1, "ratio") <= cellFloat(t, rep, 0, "ratio") {
		t.Fatal("separation ratio did not grow with k'")
	}
}

func TestLemma1Bounded(t *testing.T) {
	rep := Lemma1Length(Lemma1Params{Seeds: []int64{1, 2}})
	for i := range rep.Rows {
		if r := cellFloat(t, rep, i, "steps/Δn"); r > 5 {
			t.Fatalf("row %d: steps/Δn = %v exceeds the Lemma 1 constant", i, r)
		}
	}
}

func TestConventionsWithinBounds(t *testing.T) {
	rep := Conventions()
	// Row 1: blue sinks, shift ≤ 1 sink. Row 2: blue sources, shift ≤ 3.
	if s := cellInt(t, rep, 1, "shift"); s < 0 || s > 1 {
		t.Fatalf("blue-sink shift = %d", s)
	}
	if s := cellInt(t, rep, 2, "shift"); s < 0 || s > 3 {
		t.Fatalf("blue-source shift = %d", s)
	}
	if s := cellInt(t, rep, 3, "shift"); s < 0 || s > 1 {
		t.Fatalf("single-source shift = %d", s)
	}
}

func TestAblations(t *testing.T) {
	ev := AblationEviction()
	for i := range ev.Rows {
		belady := cellInt(t, ev, i, "belady")
		for _, col := range []string{"lru", "fifo", "random", "store-all"} {
			if cellInt(t, ev, i, col) < belady {
				t.Fatalf("row %d: %s beat Belady", i, col)
			}
		}
		if cellInt(t, ev, i, "store-all") > cellInt(t, ev, i, "(2Δ+1)n") {
			t.Fatalf("row %d: store-all above universal bound", i)
		}
	}
	pr := AblationExactPruning()
	for i := range pr.Rows {
		if cell(t, pr, i, "equal") != "true" {
			t.Fatalf("pruning changed the optimum in row %d", i)
		}
	}
	gr := AblationGreedyRules()
	if len(gr.Rows) == 0 {
		t.Fatal("no greedy rule rows")
	}
}

func TestRunAllRenders(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "Table 2", "Figure 1", "Figure 2", "Figures 3+4",
		"Theorem 2", "Theorem 3", "Theorem 4", "Lemma 1", "Appendix C", "Ablation"} {
		if !strings.Contains(out, want) {
			t.Fatalf("RunAll output missing %q", want)
		}
	}
}
