// Command rbgen generates pebbling workload DAGs and the paper's
// constructions, writing them in the library's text format (or Graphviz
// DOT with -dot) for use with the rbpebble solver CLI.
//
// Usage:
//
//	rbgen -kind pyramid -a 6            # pyramid of height 6
//	rbgen -kind fft -a 4 -o fft.dag     # 16-point FFT butterfly
//	rbgen -kind tradeoff -a 4 -b 50     # Figure 3 DAG, d=4, chain 50
//	rbgen -kind greedygrid -a 4 -b 16   # Figure 8 grid, ℓ=4, k'=16
//	rbgen -kind hampath -a 8 -seed 7    # Theorem 2 reduction of G(8,.25)
//	rbgen -kind matmul -a 3 -dot        # DOT output for visualization
//	rbgen -kind pyramid -a 5 -batch 16  # JSONL corpus for /solve/batch
//
// With -batch N the output switches to a JSONL corpus of N solve
// request items ({"dag": ...} per line, the service wire form): a mix
// of fresh draws and random isomorphic relabelings, the workload shape
// the batched request plane deduplicates.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"rbpebble/internal/dag"
	"rbpebble/internal/daggen"
	"rbpebble/internal/gadgets"
	"rbpebble/internal/reduce"
	"rbpebble/internal/ugraph"
)

func main() {
	var (
		kind  = flag.String("kind", "", "DAG kind: chain|pyramid|tree|grid|fft|matmul|stencil|layered|groups|tradeoff|greedygrid|hampath|vcover")
		a     = flag.Int("a", 4, "first size parameter (height / logN / k / d / ℓ / N)")
		b     = flag.Int("b", 4, "second size parameter (cols / chain length / k' / group size)")
		c     = flag.Int("c", 2, "third size parameter (max indegree for layered)")
		p     = flag.Float64("p", 0.25, "edge probability for random source graphs")
		seed  = flag.Int64("seed", 1, "random seed")
		out   = flag.String("o", "", "output file (default stdout)")
		dot   = flag.Bool("dot", false, "emit Graphviz DOT instead of the text format")
		batch = flag.Int("batch", 0, "emit a JSONL corpus of this many solve-request items (fresh + relabeled-isomorphic mix)")
	)
	flag.Parse()

	g, err := build(*kind, *a, *b, *c, *p, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rbgen:", err)
		flag.Usage()
		os.Exit(2)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rbgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if *batch > 0 {
		if err := writeBatch(w, g, *kind, *a, *b, *c, *p, *seed, *batch); err != nil {
			fmt.Fprintln(os.Stderr, "rbgen:", err)
			os.Exit(1)
		}
		return
	}
	if *dot {
		err = g.WriteDOT(w, *kind)
	} else {
		fmt.Fprintf(w, "# rbgen -kind %s -a %d -b %d (n=%d, m=%d, Δ=%d)\n",
			*kind, *a, *b, g.N(), g.M(), g.MaxInDegree())
		err = g.WriteText(w)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rbgen:", err)
		os.Exit(1)
	}
}

// seededKinds draw from a random source, so re-building with a new
// seed yields a genuinely fresh instance rather than a relabeling.
var seededKinds = map[string]bool{"layered": true, "hampath": true, "vcover": true}

// writeBatch emits n JSONL solve-request items ({"dag": ...} per
// line). Item 0 carries the base labeling; most items are random
// isomorphic relabelings of it (the canonical-dedup fodder a batch
// endpoint amortizes); for seeded-random kinds every fourth item is a
// fresh draw instead, so the corpus also exercises distinct canonical
// classes.
func writeBatch(w io.Writer, base *dag.DAG, kind string, a, b, c int, p float64, seed int64, n int) error {
	bw := bufio.NewWriter(w)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		g := base
		switch {
		case i == 0:
			// base labeling as-is
		case seededKinds[kind] && i%4 == 0:
			fresh, err := build(kind, a, b, c, p, seed+int64(i))
			if err != nil {
				return err
			}
			g = fresh
		default:
			g = relabel(base, rng)
		}
		line, err := json.Marshal(struct {
			DAG *dag.DAG `json:"dag"`
		}{g})
		if err != nil {
			return err
		}
		bw.Write(line)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// relabel applies a uniform random node permutation: an isomorphic
// instance with a different labeling, canonically identical to g.
func relabel(g *dag.DAG, rng *rand.Rand) *dag.DAG {
	perm := rng.Perm(g.N())
	h := dag.New(g.N())
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Succs(dag.NodeID(v)) {
			h.AddEdge(dag.NodeID(perm[v]), dag.NodeID(perm[w]))
		}
	}
	return h
}

func build(kind string, a, b, c int, p float64, seed int64) (*dag.DAG, error) {
	switch kind {
	case "chain":
		return daggen.Chain(a), nil
	case "pyramid":
		return daggen.Pyramid(a), nil
	case "tree":
		return daggen.BinaryTree(a), nil
	case "grid":
		return daggen.Grid(a, b), nil
	case "fft":
		return daggen.FFT(a), nil
	case "matmul":
		return daggen.MatMul(a), nil
	case "stencil":
		return daggen.Stencil1D(a, b), nil
	case "layered":
		return daggen.RandomLayered(a, b, c, seed), nil
	case "groups":
		g, _, _ := daggen.InputGroups(a, b)
		return g, nil
	case "tradeoff":
		return gadgets.NewTradeoff(a, b).G, nil
	case "greedygrid":
		return gadgets.NewGreedyGrid(a, b).G, nil
	case "hampath":
		src := ugraph.Random(a, p, seed)
		return reduce.NewHamPath(src).G, nil
	case "vcover":
		src := ugraph.Random(a, p, seed)
		return reduce.NewVertexCover(src, b).G, nil
	case "":
		return nil, fmt.Errorf("missing -kind")
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}
