package dag_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"rbpebble/internal/dag"
	"rbpebble/internal/daggen"
)

// Round-trip tests on daggen-generated graphs at >= 10^4 nodes: the
// text and JSON codecs are the wire format of both the CLIs and the
// rbserve HTTP API, and the instcache canonical-key path hashes
// whatever they accept — a lossy codec would silently fracture (or
// worse, alias) cache identities.

func equalDAGs(t *testing.T, want, got *dag.DAG) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("shape changed: n %d->%d, m %d->%d", want.N(), got.N(), want.M(), got.M())
	}
	for v := 0; v < want.N(); v++ {
		a, b := want.SortedSuccs(dag.NodeID(v)), got.SortedSuccs(dag.NodeID(v))
		if len(a) != len(b) {
			t.Fatalf("node %d: out-degree %d -> %d", v, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d: successor set changed", v)
			}
		}
		if want.Label(dag.NodeID(v)) != got.Label(dag.NodeID(v)) {
			t.Fatalf("node %d: label changed", v)
		}
	}
}

func bigGraphs() map[string]*dag.DAG {
	// All at or above 10^4 nodes, covering distinct shapes: a deep
	// chain (worst case for the line-oriented codec's scanner), a wide
	// random layered DAG, a long stencil, and an FFT butterfly.
	return map[string]*dag.DAG{
		"chain10k":   daggen.Chain(10_000),
		"layered10k": daggen.RandomLayered(100, 100, 4, 7),
		"stencil10k": daggen.Stencil1D(100, 100),
		"fft16k":     daggen.FFT(10), // 11 * 1024 nodes
	}
}

func TestTextRoundTripBig(t *testing.T) {
	for name, g := range bigGraphs() {
		t.Run(name, func(t *testing.T) {
			if g.N() < 10_000 {
				t.Fatalf("test graph has only %d nodes", g.N())
			}
			g.SetLabel(0, "source-label")
			g.SetLabel(dag.NodeID(g.N()-1), "sink label with spaces")
			var buf bytes.Buffer
			if err := g.WriteText(&buf); err != nil {
				t.Fatal(err)
			}
			got, err := dag.ReadText(&buf)
			if err != nil {
				t.Fatal(err)
			}
			equalDAGs(t, g, got)
		})
	}
}

func TestJSONRoundTripBig(t *testing.T) {
	for name, g := range bigGraphs() {
		t.Run(name, func(t *testing.T) {
			data, err := json.Marshal(g)
			if err != nil {
				t.Fatal(err)
			}
			var got dag.DAG
			if err := json.Unmarshal(data, &got); err != nil {
				t.Fatal(err)
			}
			equalDAGs(t, g, &got)
		})
	}
}
