package hampath

import (
	"testing"
	"testing/quick"

	"rbpebble/internal/ugraph"
)

func TestTrivial(t *testing.T) {
	if ok, _ := Solve(ugraph.New(0)); !ok {
		t.Fatal("empty graph should have trivial HP")
	}
	ok, p := Solve(ugraph.New(1))
	if !ok || len(p) != 1 {
		t.Fatal("single vertex")
	}
	// Two isolated vertices: no HP.
	if ok, _ := Solve(ugraph.New(2)); ok {
		t.Fatal("disconnected graph has no HP")
	}
}

func TestPathAndCycle(t *testing.T) {
	for n := 2; n <= 10; n++ {
		g := ugraph.Path(n)
		ok, p := Solve(g)
		if !ok || !Verify(g, p) {
			t.Fatalf("Path(%d): ok=%v verify=%v", n, ok, Verify(g, p))
		}
	}
	for n := 3; n <= 8; n++ {
		g := ugraph.Cycle(n)
		ok, p := Solve(g)
		if !ok || !Verify(g, p) {
			t.Fatalf("Cycle(%d) should have HP", n)
		}
	}
}

func TestStarHasNoHP(t *testing.T) {
	// A star with >= 4 vertices has no Hamiltonian path (center would
	// need degree >= 2 within the path for 2 leaves... any path visits
	// the center once, allowing at most 2 leaves).
	for n := 4; n <= 8; n++ {
		if ok, _ := Solve(ugraph.Star(n)); ok {
			t.Fatalf("Star(%d) should have no HP", n)
		}
	}
	// Star(3) is itself a path.
	if ok, _ := Solve(ugraph.Star(3)); !ok {
		t.Fatal("Star(3) is a path")
	}
}

func TestComplete(t *testing.T) {
	g := ugraph.Complete(8)
	ok, p := Solve(g)
	if !ok || !Verify(g, p) {
		t.Fatal("complete graph must have HP")
	}
}

func TestDisjointTriangles(t *testing.T) {
	if ok, _ := Solve(ugraph.DisjointTriangles(2)); ok {
		t.Fatal("disconnected triangles have no HP")
	}
}

func TestPlantedPathFound(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g, _ := ugraph.RandomWithHamPath(14, 0.05, seed)
		ok, p := Solve(g)
		if !ok {
			t.Fatalf("seed %d: planted HP not found", seed)
		}
		if !Verify(g, p) {
			t.Fatalf("seed %d: witness invalid", seed)
		}
	}
}

func TestVerifyRejects(t *testing.T) {
	g := ugraph.Path(4)
	if Verify(g, []int{0, 1, 2}) {
		t.Fatal("short path accepted")
	}
	if Verify(g, []int{0, 1, 1, 2}) {
		t.Fatal("repeated vertex accepted")
	}
	if Verify(g, []int{0, 2, 1, 3}) {
		t.Fatal("non-adjacent step accepted")
	}
	if Verify(g, []int{0, 1, 2, 9}) {
		t.Fatal("out-of-range vertex accepted")
	}
	if !Verify(g, []int{3, 2, 1, 0}) {
		t.Fatal("reversed path rejected")
	}
}

func TestTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for n > MaxN")
		}
	}()
	Solve(ugraph.New(MaxN + 1))
}

// Property: Solve agrees with brute-force permutation search on small
// random graphs.
func TestQuickAgainstBruteForce(t *testing.T) {
	brute := func(g *ugraph.Graph) bool {
		n := g.N()
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		var try func(i int) bool
		try = func(i int) bool {
			if i == n {
				for j := 0; j+1 < n; j++ {
					if !g.HasEdge(perm[j], perm[j+1]) {
						return false
					}
				}
				return true
			}
			for j := i; j < n; j++ {
				perm[i], perm[j] = perm[j], perm[i]
				if try(i + 1) {
					return true
				}
				perm[i], perm[j] = perm[j], perm[i]
			}
			return false
		}
		return try(0)
	}
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%6) + 2
		g := ugraph.Random(n, 0.4, seed)
		got, witness := Solve(g)
		if got && !Verify(g, witness) {
			return false
		}
		return got == brute(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSolve16(b *testing.B) {
	g, _ := ugraph.RandomWithHamPath(16, 0.1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _ := Solve(g); !ok {
			b.Fatal("planted path lost")
		}
	}
}

func TestNamedGraphs(t *testing.T) {
	// The Petersen graph is hypohamiltonian: no Hamiltonian cycle but a
	// Hamiltonian path exists.
	ok, p := Solve(ugraph.Petersen())
	if !ok || !Verify(ugraph.Petersen(), p) {
		t.Fatal("Petersen graph should have a Hamiltonian path")
	}
	// Hypercubes are Hamiltonian (Gray codes).
	for d := 2; d <= 4; d++ {
		g := ugraph.Hypercube(d)
		ok, p := Solve(g)
		if !ok || !Verify(g, p) {
			t.Fatalf("Q_%d should have a Hamiltonian path", d)
		}
	}
	// Grid graphs have boustrophedon paths.
	g := ugraph.GridGraph(3, 4)
	if ok, _ := Solve(g); !ok {
		t.Fatal("grid graph should have a Hamiltonian path")
	}
	// Wheels are Hamiltonian.
	if ok, _ := Solve(ugraph.Wheel(7)); !ok {
		t.Fatal("wheel should have a Hamiltonian path")
	}
}
