package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rbpebble/internal/anytime"
	"rbpebble/internal/daggen"
	"rbpebble/internal/instcache"
	"rbpebble/internal/obs"
	"rbpebble/internal/solve"
)

// getTrace fetches one trace's span view from /debug/trace/{id}.
func getTrace(t *testing.T, ts *httptest.Server, id string) (int, obs.TraceView) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/debug/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tv obs.TraceView
	json.NewDecoder(resp.Body).Decode(&tv)
	return resp.StatusCode, tv
}

// getSolves fetches the telemetry ring from /debug/solves.
func getSolves(t *testing.T, ts *httptest.Server, n int) SolvesDebugResponse {
	t.Helper()
	url := ts.URL + "/debug/solves"
	if n > 0 {
		url += fmt.Sprintf("?n=%d", n)
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/solves status %d", resp.StatusCode)
	}
	var out SolvesDebugResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestTraceEndToEnd: one synchronous solve produces the full span
// pipeline — canonicalize, cache-probe, lane-queue, cache, engine —
// with non-zero durations, queryable by the client-supplied trace ID.
func TestTraceEndToEnd(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const traceID = "e2e-test-trace-0001"
	body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3}`, dagJSON(t, daggen.Pyramid(4)))
	req, _ := http.NewRequest("POST", ts.URL+"/solve", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != traceID {
		t.Fatalf("response trace header = %q, want %q", got, traceID)
	}

	code, tv := getTrace(t, ts, traceID)
	if code != http.StatusOK {
		t.Fatalf("/debug/trace status %d", code)
	}
	if tv.TraceID != traceID {
		t.Fatalf("trace view id = %q", tv.TraceID)
	}
	byName := map[string]obs.SpanView{}
	engines := 0
	for _, sv := range tv.Spans {
		byName[sv.Name] = sv
		if strings.HasPrefix(sv.Name, "engine:") {
			engines++
		}
	}
	for _, name := range []string{"canonicalize", "cache-probe", "lane-queue", "cache", "translate"} {
		sv, ok := byName[name]
		if !ok {
			t.Fatalf("span %q missing; got %+v", name, tv.Spans)
		}
		if sv.DurationMS <= 0 {
			t.Fatalf("span %q has zero duration", name)
		}
	}
	if engines == 0 {
		t.Fatalf("no engine span recorded; got %+v", tv.Spans)
	}
	if byName["lane-queue"].Attrs["lane"] != "heavy" {
		t.Fatalf("lane-queue attrs = %v, want lane=heavy", byName["lane-queue"].Attrs)
	}
	// The engine spans must nest under the cache span (via the flight
	// graft), so the tree shows where the solve time went.
	cacheID := byName["cache"].ID
	for _, sv := range tv.Spans {
		if strings.HasPrefix(sv.Name, "engine:") && sv.Parent != cacheID {
			t.Fatalf("engine span %q parent = %d, want cache span %d", sv.Name, sv.Parent, cacheID)
		}
	}
}

// TestTraceHeaderOnShedAndDrain: the trace header must ride rejection
// responses too — a 429 lane shed and a draining 503.
func TestTraceHeaderOnShedAndDrain(t *testing.T) {
	s := New(Config{HeavyLaneWorkers: 1, HeavyLaneQueue: 1})
	defer s.Close()
	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	s.solveFn = func(ctx context.Context, p solve.Problem, opts anytime.Options) (anytime.Result, error) {
		started <- struct{}{}
		<-gate
		return anytime.Solve(ctx, p, anytime.Options{})
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(g int) *http.Response {
		body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3}`, dagJSON(t, daggen.Pyramid(g)))
		resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	var wg sync.WaitGroup
	results := make(chan *http.Response, 2)
	wg.Add(1)
	go func() { defer wg.Done(); results <- post(3) }()
	<-started // the single heavy worker is now gated on solve #1
	wg.Add(1)
	go func() { defer wg.Done(); results <- post(4) }()
	for i := 0; s.lanes.heavy.depth() < 1; i++ { // solve #2 queued
		if i > 5000 {
			t.Fatal("second solve never queued")
		}
		time.Sleep(time.Millisecond)
	}

	shed := post(5) // queue full: must shed, and still carry a trace ID
	if shed.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third solve status %d, want 429", shed.StatusCode)
	}
	if shed.Header.Get(obs.TraceHeader) == "" {
		t.Fatal("shed 429 missing trace header")
	}
	if shed.Header.Get("Retry-After") == "" {
		t.Fatal("shed 429 missing Retry-After")
	}
	shed.Body.Close()

	close(gate)
	wg.Wait()
	close(results)
	for resp := range results {
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("gated solve status %d", resp.StatusCode)
		}
		if resp.Header.Get(obs.TraceHeader) == "" {
			t.Fatal("ok response missing trace header")
		}
		resp.Body.Close()
	}

	s.Drain()
	drained := post(6)
	defer drained.Body.Close()
	if drained.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining status %d, want 503", drained.StatusCode)
	}
	if drained.Header.Get(obs.TraceHeader) == "" {
		t.Fatal("draining 503 missing trace header")
	}
}

// TestTelemetryDispositions drives one solve through each cache
// disposition — cold, hit, warm, shared — plus a failed solve, and
// checks the /debug/solves record for each.
func TestTelemetryDispositions(t *testing.T) {
	s := New(Config{HeavyLaneWorkers: 4})
	defer s.Close()
	gate := make(chan struct{})
	var gateOnce sync.Once
	started := make(chan struct{}, 8)
	failN := daggen.Pyramid(6).N()
	gateN := daggen.Pyramid(5).N()
	s.solveFn = func(ctx context.Context, p solve.Problem, opts anytime.Options) (anytime.Result, error) {
		switch p.G.N() {
		case failN:
			return anytime.Result{}, context.DeadlineExceeded
		case gateN:
			started <- struct{}{}
			<-gate
		}
		return anytime.Solve(ctx, p, opts)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(g int) (int, SolveResponse) {
		body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3}`, dagJSON(t, daggen.Pyramid(g)))
		code, sr, _ := postSolve(t, ts, body)
		return code, sr
	}
	// recordFor picks the newest record whose feature vector matches
	// the pyramid size.
	recordFor := func(g int) obs.SolveRecord {
		t.Helper()
		n := daggen.Pyramid(g).N()
		for _, rec := range getSolves(t, ts, 0).Records {
			if rec.Features.N == n {
				return rec
			}
		}
		t.Fatalf("no telemetry record for pyramid(%d)", g)
		return obs.SolveRecord{}
	}

	// Cold: first sight of the instance runs the engines.
	if code, _ := post(3); code != http.StatusOK {
		t.Fatalf("cold solve status %d", code)
	}
	cold := recordFor(3)
	if cold.Disposition != "cold" || !cold.Optimal || cold.Engine == "" {
		t.Fatalf("cold record = %+v", cold)
	}
	if cold.Features.Delta <= 0 || cold.Features.Depth <= 0 || cold.TraceID == "" {
		t.Fatalf("cold record incomplete: %+v", cold)
	}
	if cold.Expanded == 0 && cold.Visits == 0 {
		t.Fatalf("cold record reports no search effort: %+v", cold)
	}

	// Hit: the repeat is served by the pre-dispatch probe.
	if code, sr := post(3); code != http.StatusOK || !sr.Cached {
		t.Fatalf("repeat not a cache hit: %d %+v", code, sr)
	}
	if hit := recordFor(3); hit.Disposition != "hit" {
		t.Fatalf("hit record = %+v", hit)
	}

	// Warm: a cached non-optimal interval (imported, as if handed off
	// by a draining peer) warm-starts the next solve of that instance.
	warmG := daggen.Pyramid(4)
	prob, err := BuildProblem(SolveRequest{DAG: dagJSON(t, warmG), Model: "oneshot", R: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	inst := instcache.Instance{G: prob.G, Model: prob.Model, R: prob.R, Convention: prob.Convention}
	key, _ := inst.Key()
	// Tier 5 sits below the request's budget tier, so the pre-dispatch
	// probe misses (a higher-tier interval would be served outright)
	// and the interval instead warm-starts the flight.
	imported := s.cache.Import([]instcache.Entry{{
		Key: key, Tier: 5,
		Value: instcache.Value{UpperScaled: 1 << 40, LowerScaled: 1, Optimal: false, Source: "greedy", Tier: 5},
	}})
	if imported != 1 {
		t.Fatalf("imported %d entries, want 1", imported)
	}
	if code, sr := post(4); code != http.StatusOK || !sr.Warmed {
		t.Fatalf("warm solve: %d %+v", code, sr)
	}
	if warm := recordFor(4); warm.Disposition != "warm" {
		t.Fatalf("warm record = %+v", warm)
	}

	// Shared: two concurrent identical solves, one flight.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if code, _ := post(5); code != http.StatusOK {
				t.Errorf("gated solve failed")
			}
		}()
	}
	<-started
	// Both requests must be inside the singleflight before the gate
	// opens, or the second becomes a plain cache hit. Both count as
	// misses on entering Do; the cold and warm solves above added 2.
	for i := 0; metric(t, ts, "rbserve_cache_misses_total") < 4; i++ {
		if i > 5000 {
			t.Fatal("second request never latched onto the flight")
		}
		time.Sleep(time.Millisecond)
	}
	gateOnce.Do(func() { close(gate) })
	wg.Wait()
	var sawShared, sawCold bool
	for _, rec := range getSolves(t, ts, 0).Records {
		if rec.Features.N == gateN {
			switch rec.Disposition {
			case "shared":
				sawShared = true
			case "cold":
				sawCold = true
			}
		}
	}
	if !sawShared || !sawCold {
		t.Fatalf("shared flight records: shared=%v cold=%v", sawShared, sawCold)
	}

	// Canceled/failed: the record keeps the error and the canceled flag.
	if code, _ := post(6); code != http.StatusServiceUnavailable {
		t.Fatalf("failed solve status %d, want 503", code)
	}
	failed := recordFor(6)
	if failed.Err == "" || !failed.Canceled {
		t.Fatalf("failed record = %+v", failed)
	}
}

// TestDebugSolvesOrdering: records come back newest first and ?n
// truncates.
func TestDebugSolvesOrdering(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, g := range []int{3, 4} {
		body := fmt.Sprintf(`{"dag":%s,"model":"oneshot","r":3}`, dagJSON(t, daggen.Pyramid(g)))
		if code, _, raw := postSolve(t, ts, body); code != http.StatusOK {
			t.Fatalf("solve status %d: %s", code, raw)
		}
	}
	all := getSolves(t, ts, 0)
	if all.Total != 2 || len(all.Records) != 2 {
		t.Fatalf("total=%d records=%d, want 2/2", all.Total, len(all.Records))
	}
	if all.Records[0].Start.Before(all.Records[1].Start) {
		t.Fatal("records not newest-first")
	}
	one := getSolves(t, ts, 1)
	if one.Total != 2 || len(one.Records) != 1 {
		t.Fatalf("n=1: total=%d records=%d", one.Total, len(one.Records))
	}
	if one.Records[0].Features.N != daggen.Pyramid(4).N() {
		t.Fatalf("n=1 returned the older record: %+v", one.Records[0])
	}
	if one.Records[0].WallMS <= 0 || one.Records[0].BudgetMS <= 0 {
		t.Fatalf("record missing timing: %+v", one.Records[0])
	}
}

// TestDebugTraceUnknown: unknown IDs 404.
func TestDebugTraceUnknown(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if code, _ := getTrace(t, ts, "never-registered-id"); code != http.StatusNotFound {
		t.Fatalf("unknown trace status %d, want 404", code)
	}
}
