package refine

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"rbpebble/internal/instcache"
)

func interval(key string, tier int, lower, upper int64) instcache.Entry {
	return instcache.Entry{Key: key, Tier: tier, Value: instcache.Value{
		LowerScaled: lower, UpperScaled: upper, Tier: tier,
	}}
}

func TestCandidatesOrderingAndFilters(t *testing.T) {
	entries := []instcache.Entry{
		// wide gap (40) with lots of headroom: top priority.
		interval("wide", 3, 10, 50),
		// wider gap (60) but almost no headroom left.
		interval("exhausted", 11, 20, 80),
		// two tiers of one key merge: gap = min upper - max lower = 10.
		interval("merged", 4, 10, 40),
		interval("merged", 6, 20, 30),
		// proven optimal: never a candidate.
		{Key: "done", Value: instcache.Value{LowerScaled: 7, UpperScaled: 7, Optimal: true}},
		// closed interval: promoted on next touch, nothing to refine.
		interval("closed", 5, 9, 9),
		// at the ceiling: no headroom.
		interval("ceiling", 12, 0, 100),
	}
	cands := Candidates(entries, 12)
	if len(cands) != 3 {
		t.Fatalf("got %d candidates %+v, want 3", len(cands), cands)
	}
	if cands[0].Key != "wide" || cands[0].Tier != 4 || cands[0].GapScaled != 40 {
		t.Fatalf("top candidate = %+v, want wide tier 4 gap 40", cands[0])
	}
	// wide: 40*9 = 360; exhausted: 60*1 = 60; merged: 10*6 = 60 — the
	// tie breaks by key ("exhausted" < "merged").
	if cands[1].Key != "exhausted" || cands[2].Key != "merged" {
		t.Fatalf("tail order %q, %q; want exhausted, merged", cands[1].Key, cands[2].Key)
	}
	if cands[2].Tier != 7 {
		t.Fatalf("merged escalates to tier %d, want 7 (above its widest stored tier)", cands[2].Tier)
	}
}

// TestRefinerTightensWhenIdle drives a full loop: one wide interval in
// the export, an idle gate, and a Solve that tightens — the refiner
// must run it, count the tightening and accumulate the gap reduction.
func TestRefinerTightensWhenIdle(t *testing.T) {
	var solved atomic.Int64
	r := New(Config{
		Export: func() []instcache.Entry {
			if solved.Load() > 0 {
				return nil // tightened to closed: nothing left
			}
			return []instcache.Entry{interval("k", 3, 10, 50)}
		},
		Solve: func(ctx context.Context, key string, tier int) (int64, error) {
			if key != "k" || tier != 4 {
				t.Errorf("solve(%q, %d), want (k, 4)", key, tier)
			}
			solved.Add(1)
			return 5, nil
		},
		Interval: 5 * time.Millisecond,
	})
	defer r.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for solved.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	r.Stop()
	runs, tightened, preempted, gapSum := r.Counters()
	if runs == 0 || tightened == 0 {
		t.Fatalf("runs=%d tightened=%d, want both > 0", runs, tightened)
	}
	if preempted != 0 {
		t.Fatalf("preempted=%d, want 0", preempted)
	}
	if gapSum != 35 {
		t.Fatalf("gapSum=%d, want 35 (gap 40 -> 5)", gapSum)
	}
}

// TestRefinerAdmissionGate: while Busy reports true the refiner must
// not schedule anything.
func TestRefinerAdmissionGate(t *testing.T) {
	var solves atomic.Int64
	busy := atomic.Bool{}
	busy.Store(true)
	r := New(Config{
		Export: func() []instcache.Entry { return []instcache.Entry{interval("k", 3, 10, 50)} },
		Solve: func(ctx context.Context, key string, tier int) (int64, error) {
			solves.Add(1)
			return 40, nil
		},
		Busy:     busy.Load,
		Interval: 2 * time.Millisecond,
	})
	defer r.Stop()
	time.Sleep(50 * time.Millisecond)
	if n := solves.Load(); n != 0 {
		t.Fatalf("refiner ran %d solves while busy, want 0", n)
	}
	busy.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for solves.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if solves.Load() == 0 {
		t.Fatal("refiner never ran after the gate opened")
	}
}

// TestRefinerPreempt: an in-flight refinement is canceled by Preempt;
// the run is counted as preempted, and a partial tightening still
// counts as a tightening.
func TestRefinerPreempt(t *testing.T) {
	started := make(chan struct{})
	r := New(Config{
		Export: func() []instcache.Entry { return []instcache.Entry{interval("k", 3, 10, 50)} },
		Solve: func(ctx context.Context, key string, tier int) (int64, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			<-ctx.Done()   // block until preempted
			return 30, nil // partial interval: tightened, not closed
		},
		Interval: 2 * time.Millisecond,
	})
	defer r.Stop()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("refinement never started")
	}
	r.Preempt()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, tightened, preempted, _ := r.Counters()
		if preempted >= 1 && tightened >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("preempted=%d tightened=%d, want both >= 1", preempted, tightened)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRefinerOwnershipAndResolvable: non-owned and unresolvable keys
// are never solved.
func TestRefinerOwnershipAndResolvable(t *testing.T) {
	var mu atomic.Value
	mu.Store("")
	r := New(Config{
		Export: func() []instcache.Entry {
			return []instcache.Entry{
				interval("owned", 3, 10, 50),
				interval("foreign", 3, 0, 100),
				interval("forgotten", 3, 0, 100),
			}
		},
		Owns:       func(key string) bool { return key != "foreign" },
		Resolvable: func(key string) bool { return key != "forgotten" },
		Solve: func(ctx context.Context, key string, tier int) (int64, error) {
			if key != "owned" {
				t.Errorf("refined %q, want only owned keys", key)
			}
			mu.Store(key)
			return 1, nil
		},
		Interval: 2 * time.Millisecond,
	})
	defer r.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for mu.Load() == "" && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if mu.Load() != "owned" {
		t.Fatal("owned key never refined")
	}
}

// TestRefinerErrorCooldown: a key whose solve errors is backed off
// instead of monopolizing every cycle.
func TestRefinerErrorCooldown(t *testing.T) {
	var fails atomic.Int64
	r := New(Config{
		Export: func() []instcache.Entry { return []instcache.Entry{interval("bad", 3, 10, 50)} },
		Solve: func(ctx context.Context, key string, tier int) (int64, error) {
			fails.Add(1)
			return 0, errors.New("unknown key")
		},
		Interval: time.Millisecond,
	})
	defer r.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for fails.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if fails.Load() == 0 {
		t.Fatal("bad key never attempted")
	}
	time.Sleep(20 * time.Millisecond) // ~20 cycles inside the 8-cycle cooldown
	if n := fails.Load(); n > 3 {
		t.Fatalf("bad key attempted %d times; cooldown not applied", n)
	}
}
