package experiments

import (
	"context"
	"fmt"
	"time"

	"rbpebble/internal/anytime"
	"rbpebble/internal/daggen"
	"rbpebble/internal/pebble"
	"rbpebble/internal/solve"
)

// AnytimeDeadline, when set > 0, overrides the largest deadline of the
// anytime ablation's budget ladder (the rbexp CLI exposes this as
// -deadline). The ladder always spans two orders of magnitude below it,
// so the gap-vs-budget curve keeps its shape at any scale.
var AnytimeDeadline time.Duration

// AblationAnytime measures the anytime orchestrator's convergence: the
// certified [lower, upper] interval as a function of the deadline on an
// instance too big to solve exactly within any rung of the ladder
// (fft(3) R=3 takes seconds of exact search; the ladder tops out at
// 200ms by default). Every row must carry a valid certificate — a
// verified incumbent trace and lower <= optimum <= upper — and the gap
// must shrink as the budget grows, reaching 0 on the easy control
// instance that gets a full exact solve.
func AblationAnytime() *Report {
	rep := &Report{
		ID:     "Ablation E",
		Title:  "Anytime certified interval vs. deadline (oneshot)",
		Claim:  "(design choice) deadlines yield certified [lower, upper] intervals whose gap shrinks with budget, instead of solver errors",
		Header: []string{"workload", "deadline", "lower", "upper", "gap%", "optimal", "source"},
	}
	maxD := AnytimeDeadline
	if maxD <= 0 {
		maxD = 200 * time.Millisecond
	}
	ladder := []time.Duration{maxD / 100, maxD / 10, maxD}

	hard := solve.Problem{G: daggen.FFT(3), Model: pebble.NewModel(pebble.Oneshot), R: 3}
	worstGap, lastGap := 0.0, 1.0
	monotone := true
	for _, d := range ladder {
		res, err := anytime.Solve(context.Background(), hard, anytime.Options{Budget: d})
		if err != nil {
			panic(err)
		}
		gap := res.Gap()
		if gap > worstGap {
			worstGap = gap
		}
		if gap > lastGap+1e-9 {
			monotone = false
		}
		lastGap = gap
		rep.Rows = append(rep.Rows, []string{
			"fft(3) R=3", d.String(),
			fmt.Sprintf("%d", res.LowerScaled), fmt.Sprintf("%d", res.UpperScaled),
			ftoa(100 * gap), btoa(res.Optimal), res.Source,
		})
	}

	// Control: an instance the exact engines close well inside the
	// smallest budgets — the interval must collapse to a proven optimum.
	easy := solve.Problem{G: daggen.Pyramid(4), Model: pebble.NewModel(pebble.Oneshot), R: 3}
	res, err := anytime.Solve(context.Background(), easy, anytime.Options{Budget: maxD})
	if err != nil {
		panic(err)
	}
	rep.Rows = append(rep.Rows, []string{
		"pyramid(4) R=3", maxD.String(),
		fmt.Sprintf("%d", res.LowerScaled), fmt.Sprintf("%d", res.UpperScaled),
		ftoa(100 * res.Gap()), btoa(res.Optimal), res.Source,
	})

	verdict := fmt.Sprintf("every budget returned a certified interval (worst gap %.0f%%)", 100*worstGap)
	if !monotone {
		verdict += "; note: gap not monotone on this host (budget rungs too close to the scheduler noise floor)"
	}
	if res.Optimal {
		verdict += "; the control instance closed to a proven optimum"
	}
	rep.Verdict = verdict
	return rep
}
