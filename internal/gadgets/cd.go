package gadgets

import (
	"fmt"

	"rbpebble/internal/dag"
)

// CD is the constant-degree gadget of Figure 1 / Appendix B: it replaces
// an input group of R-1 nodes (which would force indegree R-1 on its
// target) by a structure of maximum indegree 2 that still forces any
// reasonable pebbling to hold red pebbles on all R-1 left-side nodes
// simultaneously.
//
// The gadget consists of the left group L of R-1 source nodes and h
// layers, each a run of R-1 chain nodes; chain node i of a layer has
// inputs L[i] and the preceding chain node. With R+1 red pebbles (R-1 on
// L plus 2 rolling in the layers) the whole gadget pebbles for free in
// the oneshot and base models; with fewer, every layer forces at least 2
// transfers, a total of at least 2h — prohibitive for large h.
type CD struct {
	G *dag.DAG
	// Left is the group of R-1 left-side source nodes.
	Left []dag.NodeID
	// Layers[j][i] is chain node i of layer j.
	Layers [][]dag.NodeID
	// Out is the last node of the last layer; target nodes of the original
	// input group attach to Out.
	Out dag.NodeID
	H   int
}

// NewCD builds a standalone CD gadget with left-group size groupSize
// (= R-1) and h layers. Use AttachCD to splice gadgets into an existing
// construction.
func NewCD(groupSize, h int) *CD {
	g := dag.New(0)
	return AttachCD(g, g.AddNodes(groupSize), h)
}

// AttachCD adds the layered part of a CD gadget to g, reading from the
// given left-side nodes (which may be shared with other structure). It
// returns the gadget handle; the caller wires Out to the original target
// nodes.
func AttachCD(g *dag.DAG, left []dag.NodeID, h int) *CD {
	if len(left) < 1 || h < 1 {
		panic("gadgets: AttachCD needs a nonempty left group and h >= 1")
	}
	cd := &CD{G: g, Left: left, H: h}
	var prev dag.NodeID = -1
	for j := 0; j < h; j++ {
		layer := make([]dag.NodeID, len(left))
		for i := range left {
			v := g.AddLabeledNode(fmt.Sprintf("cd[%d][%d]", j, i))
			g.AddEdge(left[i], v)
			if prev >= 0 {
				g.AddEdge(prev, v)
			}
			layer[i] = v
			prev = v
		}
		cd.Layers = append(cd.Layers, layer)
	}
	cd.Out = prev
	return cd
}

// RequiredR returns the red pebble count with which the gadget pebbles
// for free: len(Left) + 2.
func (cd *CD) RequiredR() int { return len(cd.Left) + 2 }

// StrategyOrder returns the free pebbling order with RequiredR pebbles:
// left group first, then the layers in sequence.
func (cd *CD) StrategyOrder() []dag.NodeID {
	order := make([]dag.NodeID, 0, len(cd.Left)*(cd.H+1))
	order = append(order, cd.Left...)
	for _, layer := range cd.Layers {
		order = append(order, layer...)
	}
	return order
}

// MinCostLowerBoundWithFewerPebbles returns the paper's 2h lower bound on
// the transfer cost of pebbling the gadget when fewer than RequiredR red
// pebbles are available (so red pebbles must shuttle within the left
// group on every layer).
func (cd *CD) MinCostLowerBoundWithFewerPebbles() int { return 2 * cd.H }
