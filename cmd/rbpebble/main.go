// Command rbpebble solves red-blue pebbling instances: it reads a DAG in
// the library's text format, runs the selected solver under the selected
// model, and prints the verified cost (optionally writing the full move
// trace).
//
// Usage:
//
//	rbgen -kind pyramid -a 5 -o pyr.dag
//	rbpebble -graph pyr.dag -model oneshot -r 3 -solver topobelady
//	rbpebble -graph pyr.dag -model oneshot -r 3 -solver exact -trace out.trace
//	rbpebble -graph pyr.dag -model compcost -eps 100 -r 3 -solver greedy
//	rbpebble -graph big.dag -model oneshot -r 4 -deadline 500ms
//	rbpebble -graph big.dag -r 4 -deadline 500ms -workers 4 -progress
//
// With -deadline the run goes through the anytime orchestrator: on
// instances too hard to solve exactly in time it prints a certified
// [lower, upper] interval (plus the incumbent's verified cost) instead
// of dying on a budget error. Adding -progress streams every certified
// tightening of the interval to stderr while the solve runs — including
// the async engine's mid-flight certified lower bound under -workers.
// Adding -watch refreshes a live single-line search view (engine,
// expansion rate, frontier and table size) from the engines' sampled
// introspection snapshots.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"rbpebble/internal/anytime"
	"rbpebble/internal/dag"
	"rbpebble/internal/obs"
	"rbpebble/internal/pebble"
	"rbpebble/internal/solve"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "input DAG file (text format; - for stdin)")
		modelName = flag.String("model", "oneshot", "model: base|oneshot|nodel|compcost")
		epsDenom  = flag.Int("eps", 100, "compcost ε denominator (ε = 1/eps)")
		r         = flag.Int("r", 0, "red pebble limit (default Δ+1)")
		solver    = flag.String("solver", "topobelady", "solver: exact|dfs|orderopt|greedy|topo|topobelady")
		rule      = flag.String("rule", "most-red-inputs", "greedy rule: most-red-inputs|fewest-blue-inputs|red-ratio")
		tracePath = flag.String("trace", "", "write the verified move trace to this file")
		maxStates = flag.Int("maxstates", 0, "exact solver state budget (0 = default)")
		maxTableB = flag.Int64("maxtablebytes", 0, "exact/dfs/anytime table memory budget in bytes (0 = unlimited); on abort the certified partial interval is printed")
		blueSrc   = flag.Bool("blue-sources", false, "sources start blue (Hong-Kung convention)")
		blueSink  = flag.Bool("blue-sinks", false, "sinks must end blue")
		workers   = flag.Int("workers", 0, "exact solver parallel workers (>1; async HDA* engine)")
		syncPar   = flag.Bool("sync-rounds", false, "use the synchronous-rounds parallel engine instead of async HDA*")
		heuristic = flag.String("heuristic", "auto", "exact solver lower bound: auto|off|lower-bound|s-partition")
		dfsAlgo   = flag.String("dfs-algo", "auto", "dfs solver scheme: auto|ida-star|branch-and-bound")
		maxVisits = flag.Int("maxvisits", 0, "dfs solver visit budget (0 = default)")
		deadline  = flag.Duration("deadline", 0, "anytime budget: race heuristics and exact engines, print a certified [lower, upper] interval (overrides -solver)")
		progress  = flag.Bool("progress", false, "with -deadline: print live certified [lower, upper] updates to stderr as the interval tightens (works with -workers > 1: the async engine streams its certified bound mid-flight)")
		watch     = flag.Bool("watch", false, "with -deadline: live single-line search view on stderr (engine, expansion rate, frontier, table size), refreshed from the engines' sampled snapshots")
	)
	flag.Parse()
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "rbpebble: missing -graph")
		flag.Usage()
		os.Exit(2)
	}

	g, err := readGraph(*graphPath)
	if err != nil {
		fatal(err)
	}
	model, err := parseModel(*modelName, *epsDenom)
	if err != nil {
		fatal(err)
	}
	rr := *r
	if rr == 0 {
		rr = pebble.MinFeasibleR(g)
	}
	p := solve.Problem{
		G: g, Model: model, R: rr,
		Convention: pebble.Convention{SourcesStartBlue: *blueSrc, SinksMustBeBlue: *blueSink},
	}

	var sol solve.Solution
	anytimeInfo := ""
	switch {
	case *deadline > 0:
		opts := anytime.Options{
			Budget:        *deadline,
			Workers:       *workers,
			MaxTableBytes: *maxTableB,
		}
		if *progress {
			// Each snapshot strictly tightens the interval (the
			// orchestrator deduplicates and orders emissions), so the
			// stream reads as a monotone convergence log.
			opts.OnProgress = func(s anytime.Snapshot) {
				upper := "?"
				if s.UpperScaled != math.MaxInt64 {
					upper = fmt.Sprintf("%d", s.UpperScaled)
				}
				fmt.Fprintf(os.Stderr, "progress:  [%d, %s] via %s at %s\n",
					s.LowerScaled, upper, s.Source, s.Elapsed.Round(time.Millisecond))
			}
		}
		watching := false
		if *watch {
			// Live single-line search view, refreshed in place. Snapshots
			// from the racing exact engines share one stream with strictly
			// increasing Seq, so the line simply shows the latest sample.
			opts.OnSearch = func(sn obs.SearchSnapshot) {
				watching = true
				fmt.Fprintf(os.Stderr, "\rwatch:     %-12s %6.1fs  %9d expanded  %8.0f st/s  frontier %-8d lower %-6d table %s   ",
					sn.Engine, float64(sn.ElapsedMS)/1000, sn.Expanded, sn.Rate,
					sn.FrontierSize, sn.LowerBound, fmtBytes(sn.TableBytes))
			}
		}
		res, aerr := anytime.Solve(context.Background(), p, opts)
		if watching {
			fmt.Fprintln(os.Stderr) // terminate the refreshed line
		}
		if aerr != nil {
			fatal(aerr)
		}
		sol = res.Solution
		state := "certified interval (deadline hit)"
		if res.Optimal {
			state = "proven optimal"
		}
		if res.MemoryLimited {
			state += ", memory-limited"
		}
		anytimeInfo = fmt.Sprintf("anytime:   [%d, %d] scaled, gap=%.1f%%, %s via %s in %s\n",
			res.LowerScaled, res.UpperScaled, 100*res.Gap(), state, res.Source,
			res.Elapsed.Round(time.Millisecond))
		err = nil
	case *solver == "exact":
		h, herr := parseHeuristic(*heuristic)
		if herr != nil {
			fatal(herr)
		}
		var stats solve.ExactStats
		opts := solve.ExactOptions{
			MaxStates: *maxStates, Heuristic: h, Parallel: *workers,
			MaxTableBytes: *maxTableB, Stats: &stats,
		}
		if *syncPar {
			opts.ParallelAlgo = solve.ParallelSyncRounds
		}
		sol, err = solve.Exact(p, opts)
		if errors.Is(err, solve.ErrMemoryBudget) {
			fatalMemBudget(*maxTableB, stats.LowerBound, -1)
		}
	case *solver == "dfs":
		a, aerr := parseDFSAlgo(*dfsAlgo)
		if aerr != nil {
			fatal(aerr)
		}
		var stats solve.ExactDFSStats
		sol, err = solve.ExactDFS(p, solve.ExactDFSOptions{
			MaxVisits: *maxVisits, Algorithm: a,
			MaxTableBytes: *maxTableB, Stats: &stats,
		})
		if errors.Is(err, solve.ErrMemoryBudget) {
			fatalMemBudget(*maxTableB, stats.LowerBound, stats.Incumbent)
		}
	case *solver == "orderopt":
		sol, err = solve.OrderOpt(p, solve.OrderOptOptions{})
	case *solver == "greedy":
		gr, perr := parseRule(*rule)
		if perr != nil {
			fatal(perr)
		}
		sol, err = solve.Greedy(p, gr)
	case *solver == "topo":
		sol, err = solve.Topological(p)
	case *solver == "topobelady":
		sol, err = solve.TopoBelady(p)
	default:
		fatal(fmt.Errorf("unknown solver %q", *solver))
	}
	if err != nil {
		fatal(err)
	}

	res := sol.Result
	fmt.Printf("graph:     n=%d m=%d Δ=%d\n", g.N(), g.M(), g.MaxInDegree())
	fmt.Printf("problem:   model=%s R=%d\n", model, rr)
	if anytimeInfo != "" {
		fmt.Printf("solver:    anytime (deadline %s)\n", *deadline)
		fmt.Print(anytimeInfo)
	} else {
		fmt.Printf("solver:    %s\n", *solver)
	}
	fmt.Printf("cost:      %.4f (transfers=%d computes=%d)\n", res.Cost.Value(model), res.Cost.Transfers, res.Cost.Computes)
	fmt.Printf("steps:     %d (loads=%d stores=%d computes=%d deletes=%d)\n",
		res.Steps, res.Loads, res.Stores, res.Computes, res.Deletes)
	fmt.Printf("peak red:  %d / %d\n", res.MaxRed, rr)
	fmt.Printf("bound:     (2Δ+1)n = %d transfers\n", pebble.CostUpperBound(g, model).Transfers)

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := sol.Trace.WriteText(f); err != nil {
			fatal(err)
		}
		fmt.Printf("trace:     %s (%d moves)\n", *tracePath, len(sol.Trace.Moves))
	}
}

func readGraph(path string) (*dag.DAG, error) {
	if path == "-" {
		return dag.ReadText(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dag.ReadText(f)
}

func parseModel(name string, epsDenom int) (pebble.Model, error) {
	switch name {
	case "base":
		return pebble.NewModel(pebble.Base), nil
	case "oneshot":
		return pebble.NewModel(pebble.Oneshot), nil
	case "nodel":
		return pebble.NewModel(pebble.NoDel), nil
	case "compcost":
		return pebble.Model{Kind: pebble.CompCost, EpsDenom: epsDenom}, nil
	default:
		return pebble.Model{}, fmt.Errorf("unknown model %q", name)
	}
}

func parseHeuristic(name string) (solve.Heuristic, error) {
	for _, h := range []solve.Heuristic{
		solve.HeuristicAuto, solve.HeuristicOff,
		solve.HeuristicLowerBound, solve.HeuristicSPartition,
	} {
		if h.String() == name {
			return h, nil
		}
	}
	return 0, fmt.Errorf("unknown heuristic %q", name)
}

func parseDFSAlgo(name string) (solve.DFSAlgorithm, error) {
	for _, a := range []solve.DFSAlgorithm{
		solve.DFSAuto, solve.DFSIDAStar, solve.DFSBranchAndBound,
	} {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown dfs algorithm %q", name)
}

func parseRule(name string) (solve.GreedyRule, error) {
	for _, r := range solve.AllGreedyRules() {
		if r.String() == name {
			return r, nil
		}
	}
	return 0, fmt.Errorf("unknown greedy rule %q", name)
}

// fmtBytes renders a byte count at watch-line precision.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rbpebble:", err)
	os.Exit(1)
}

// fatalMemBudget reports a -maxtablebytes abort as a certified partial
// result — the search proved lower <= optimum (<= upper, when the
// engine carries an incumbent) before the table filled — instead of a
// bare failure. upper < 0 means the engine has no incumbent.
func fatalMemBudget(budget, lower, upper int64) {
	fmt.Fprintf(os.Stderr, "rbpebble: table memory budget (%s) exceeded\n", fmtBytes(budget))
	if upper >= 0 {
		fmt.Printf("partial:   certified interval [%d, %d] scaled (memory-limited; raise -maxtablebytes or use -deadline)\n", lower, upper)
	} else {
		fmt.Printf("partial:   certified lower bound %d scaled (memory-limited; raise -maxtablebytes or use -deadline)\n", lower)
	}
	os.Exit(1)
}
