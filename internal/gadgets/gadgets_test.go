package gadgets_test

import (
	"testing"

	"rbpebble/internal/dag"
	"rbpebble/internal/daggen"
	"rbpebble/internal/gadgets"
	"rbpebble/internal/pebble"
	"rbpebble/internal/sched"
	"rbpebble/internal/solve"
)

func execOrder(t *testing.T, g *dag.DAG, kind pebble.ModelKind, r int, order []dag.NodeID) pebble.Result {
	t.Helper()
	_, res, err := sched.Execute(g, pebble.NewModel(kind), r, pebble.Convention{}, order, sched.Options{Policy: sched.Belady})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return res
}

// --- Tradeoff (Figure 3 / Figure 4) ---

func TestTradeoffStructure(t *testing.T) {
	d, n := 3, 5
	tr := gadgets.NewTradeoff(d, n)
	if err := tr.G.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.G.N() != 2*d+n {
		t.Fatalf("n = %d", tr.G.N())
	}
	if tr.G.MaxInDegree() != d+1 {
		t.Fatalf("Δ = %d, want %d", tr.G.MaxInDegree(), d+1)
	}
	if tr.MinR() != d+2 || tr.MaxUsefulR() != 2*d+2 {
		t.Fatal("R bounds wrong")
	}
	// Chain node 0 reads group A, node 1 reads group B and node 0.
	if !tr.G.HasEdge(tr.GroupA[0], tr.Chain[0]) || tr.G.HasEdge(tr.GroupB[0], tr.Chain[0]) {
		t.Fatal("chain[0] inputs wrong")
	}
	if !tr.G.HasEdge(tr.GroupB[0], tr.Chain[1]) || !tr.G.HasEdge(tr.Chain[0], tr.Chain[1]) {
		t.Fatal("chain[1] inputs wrong")
	}
}

func TestTradeoffFreeAtMaxR(t *testing.T) {
	tr := gadgets.NewTradeoff(3, 8)
	res := execOrder(t, tr.G, pebble.Oneshot, tr.MaxUsefulR(), tr.StrategyOrder())
	if res.Cost.Transfers != 0 {
		t.Fatalf("cost at R=2d+2 is %d, want 0", res.Cost.Transfers)
	}
}

func TestTradeoffStrategyIsOptimal(t *testing.T) {
	// Cross-check the prescribed strategy against the state-space optimum
	// on a small instance, for every feasible R.
	d, n := 2, 3
	tr := gadgets.NewTradeoff(d, n)
	for r := tr.MinR(); r <= tr.MaxUsefulR(); r++ {
		strat := execOrder(t, tr.G, pebble.Oneshot, r, tr.StrategyOrder())
		opt, err := solve.Exact(solve.Problem{G: tr.G, Model: pebble.NewModel(pebble.Oneshot), R: r}, solve.ExactOptions{})
		if err != nil {
			t.Fatalf("R=%d: %v", r, err)
		}
		if strat.Cost.Transfers != opt.Result.Cost.Transfers {
			t.Fatalf("R=%d: strategy %d != optimum %d", r, strat.Cost.Transfers, opt.Result.Cost.Transfers)
		}
	}
}

func TestTradeoffSlope(t *testing.T) {
	// The asymptotic per-chain-node cost is 2(d-i): measure with a long
	// chain and compare against the closed form within boundary slack.
	d, n := 4, 60
	tr := gadgets.NewTradeoff(d, n)
	prev := -1
	for r := tr.MinR(); r <= tr.MaxUsefulR(); r++ {
		res := execOrder(t, tr.G, pebble.Oneshot, r, tr.StrategyOrder())
		got := res.Cost.Transfers
		want := tr.PredictedOptOneshot(r)
		// Boundary savings are at most ~2 transfers per moved pebble at
		// each end: allow 4d slack.
		if got > want || want-got > 4*d {
			t.Fatalf("R=%d: measured %d, predicted %d", r, got, want)
		}
		if prev >= 0 && got > prev {
			t.Fatalf("R=%d: cost increased with more pebbles (%d > %d)", r, got, prev)
		}
		prev = got
	}
}

func TestTradeoffPredictedPanicsOnInfeasible(t *testing.T) {
	tr := gadgets.NewTradeoff(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for infeasible R")
		}
	}()
	tr.PredictedOptOneshot(3)
}

// --- CD gadget (Figure 1 / Appendix B) ---

func TestCDFreeWithRequiredR(t *testing.T) {
	cd := gadgets.NewCD(4, 6)
	if err := cd.G.Validate(); err != nil {
		t.Fatal(err)
	}
	if cd.G.MaxInDegree() > 2 {
		t.Fatalf("CD gadget Δ = %d", cd.G.MaxInDegree())
	}
	res := execOrder(t, cd.G, pebble.Oneshot, cd.RequiredR(), cd.StrategyOrder())
	if res.Cost.Transfers != 0 {
		t.Fatalf("CD with required R costs %d, want 0", res.Cost.Transfers)
	}
}

func TestCDExpensiveWithFewerPebbles(t *testing.T) {
	// With one red pebble less than required, the optimum is at least 2
	// per layer (the paper's 2h lower bound, up to boundary effects at
	// the first layer).
	cd := gadgets.NewCD(3, 3)
	opt, err := solve.Exact(solve.Problem{G: cd.G, Model: pebble.NewModel(pebble.Oneshot), R: cd.RequiredR() - 1}, solve.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Result.Cost.Transfers < cd.H {
		t.Fatalf("optimum with R-1 = %d, want >= h = %d", opt.Result.Cost.Transfers, cd.H)
	}
	// And cost grows with h.
	cd2 := gadgets.NewCD(3, 5)
	opt2, err := solve.Exact(solve.Problem{G: cd2.G, Model: pebble.NewModel(pebble.Oneshot), R: cd2.RequiredR() - 1}, solve.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if opt2.Result.Cost.Transfers <= opt.Result.Cost.Transfers {
		t.Fatalf("cost did not grow with h: %d vs %d", opt2.Result.Cost.Transfers, opt.Result.Cost.Transfers)
	}
}

// --- H2C gadget (Figure 2) ---

func TestH2CInherentCost(t *testing.T) {
	// Host: a single source v feeding sink w. Protect v with H2C at R=4.
	g := dag.New(2)
	g.AddEdge(0, 1)
	r := 4
	gadgets.AttachH2C(g, []dag.NodeID{0}, r)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// s + B(r-1) + 3 starters added.
	if g.N() != 2+1+(r-1)+3 {
		t.Fatalf("n = %d", g.N())
	}
	// v now has the 3 starters as inputs.
	if g.InDegree(0) != 3 {
		t.Fatalf("indegree of protected node = %d", g.InDegree(0))
	}
	opt, err := solve.Exact(solve.Problem{G: g, Model: pebble.NewModel(pebble.Oneshot), R: r}, solve.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Result.Cost.Transfers != gadgets.MinTransferCost {
		t.Fatalf("optimum = %d, want exactly %d", opt.Result.Cost.Transfers, gadgets.MinTransferCost)
	}
}

func TestH2CStrategyRealizesMinCost(t *testing.T) {
	g := dag.New(2)
	g.AddEdge(0, 1)
	r := 4
	h := gadgets.AttachH2C(g, []dag.NodeID{0}, r)
	order := append(h.StrategyOrder(0), 0, 1)
	res := execOrder(t, g, pebble.Oneshot, r, order)
	if res.Cost.Transfers != gadgets.MinTransferCost {
		t.Fatalf("strategy cost = %d, want %d", res.Cost.Transfers, gadgets.MinTransferCost)
	}
}

func TestH2CSharedAcrossSources(t *testing.T) {
	// Two protected sources share s and B: only 3 starters each are added.
	g := dag.New(3)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	r := 4
	h := gadgets.AttachH2C(g, []dag.NodeID{0, 1}, r)
	if g.N() != 3+1+(r-1)+6 {
		t.Fatalf("n = %d", g.N())
	}
	if len(h.Starters) != 2 {
		t.Fatal("starters map wrong")
	}
	// Pebble it: shared prefix, then starters of 0, node 0, starters of 1,
	// node 1, then sink.
	order := h.SharedOrderPrefix()
	order = append(order, h.StarterOrder(0)...)
	order = append(order, 0)
	order = append(order, h.StarterOrder(1)...)
	order = append(order, 1, 2)
	res := execOrder(t, g, pebble.Oneshot, r, order)
	// Each protected source costs >= 4; plus v0 must survive while v1 is
	// derived (its starters need all R pebbles), so v0 is stored+loaded.
	if res.Cost.Transfers < 2*gadgets.MinTransferCost {
		t.Fatalf("cost = %d, want >= %d", res.Cost.Transfers, 2*gadgets.MinTransferCost)
	}
	if !res.Complete {
		t.Fatal("incomplete")
	}
}

func TestH2CPanics(t *testing.T) {
	g := dag.New(2)
	g.AddEdge(0, 1)
	for i, f := range []func(){
		func() { gadgets.AttachH2C(g, []dag.NodeID{1}, 4) }, // not a source
		func() { gadgets.AttachH2C(g, []dag.NodeID{0}, 1) }, // r too small
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
	h := gadgets.AttachH2C(g.Clone(), []dag.NodeID{0}, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("StrategyOrder on unprotected node did not panic")
		}
	}()
	h.StrategyOrder(1)
}

// --- Single-source transform (§3) ---

func TestSingleSourceTransform(t *testing.T) {
	g, _, _ := daggen.InputGroups(2, 2)
	orig, err := solve.Exact(solve.Problem{G: g, Model: pebble.NewModel(pebble.Oneshot), R: 3}, solve.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tg := g.Clone()
	s0 := gadgets.SingleSource(tg)
	if err := tg.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tg.Sources()) != 1 || tg.Sources()[0] != s0 {
		t.Fatalf("sources after transform: %v", tg.Sources())
	}
	// With R+1 pebbles the optimum is unchanged (s0 pins one pebble).
	trans, err := solve.Exact(solve.Problem{G: tg, Model: pebble.NewModel(pebble.Oneshot), R: 4}, solve.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if trans.Result.Cost.Transfers != orig.Result.Cost.Transfers {
		t.Fatalf("transformed optimum %d != original %d",
			trans.Result.Cost.Transfers, orig.Result.Cost.Transfers)
	}
}

// --- Constant-degree transform (Appendix B) ---

func TestConstantDegreeTransform(t *testing.T) {
	g, _, _ := daggen.InputGroups(2, 3) // Δ = 3, R = 4
	orig, err := solve.Exact(solve.Problem{G: g, Model: pebble.NewModel(pebble.Oneshot), R: 4}, solve.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tg := g.Clone()
	cds := gadgets.ConstantDegree(tg, 2)
	if err := tg.Validate(); err != nil {
		t.Fatal(err)
	}
	if tg.MaxInDegree() > 2 {
		t.Fatalf("Δ after transform = %d", tg.MaxInDegree())
	}
	if len(cds) != 2 {
		t.Fatalf("transformed %d nodes, want 2", len(cds))
	}
	// With R+1 pebbles the optimum cost is preserved.
	trans, err := solve.Exact(solve.Problem{G: tg, Model: pebble.NewModel(pebble.Oneshot), R: 5}, solve.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if trans.Result.Cost.Transfers != orig.Result.Cost.Transfers {
		t.Fatalf("transformed optimum %d != original %d",
			trans.Result.Cost.Transfers, orig.Result.Cost.Transfers)
	}
}

// --- Greedy grid (Figure 8 / Theorem 4) ---

func TestGreedyGridStructure(t *testing.T) {
	gg := gadgets.NewGreedyGrid(3, 5)
	if err := gg.G.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(gg.AllPositions()) != 6 {
		t.Fatalf("positions = %d", len(gg.AllPositions()))
	}
	// Uniform group size k and uniform target indegree.
	for pos, members := range gg.Groups {
		if len(members) != gg.K {
			t.Fatalf("group %v size %d != k %d", pos, len(members), gg.K)
		}
		if gg.G.InDegree(gg.Targets[pos]) != gg.K {
			t.Fatalf("target %v indegree %d", pos, gg.G.InDegree(gg.Targets[pos]))
		}
	}
	// Dependency: t(i,j) is a member of (i,j+1).
	found := false
	for _, m := range gg.Groups[gadgets.GridPos{I: 1, J: 2}] {
		if m == gg.Targets[gadgets.GridPos{I: 1, J: 1}] {
			found = true
		}
	}
	if !found {
		t.Fatal("dependency target missing from group above")
	}
	if gg.R() != gg.K+1 {
		t.Fatal("R != k+1")
	}
}

func TestGreedyGridOptimalOrderLegal(t *testing.T) {
	gg := gadgets.NewGreedyGrid(3, 5)
	order := gg.VisitOrder(gg.OptimalVisits())
	res := execOrder(t, gg.G, pebble.Oneshot, gg.R(), order)
	if !res.Complete {
		t.Fatal("optimal order incomplete")
	}
}

func TestGreedyGridMisguidesGreedy(t *testing.T) {
	gg := gadgets.NewGreedyGrid(3, 5)
	p := solve.Problem{G: gg.G, Model: pebble.NewModel(pebble.Oneshot), R: gg.R()}
	order, err := solve.GreedyOrder(p, solve.MostRedInputs)
	if err != nil {
		t.Fatal(err)
	}
	// Recover the group visit sequence from the compute order.
	tpos := gg.TargetPos()
	var visits []gadgets.GridPos
	for _, v := range order {
		if pos, ok := tpos[v]; ok {
			visits = append(visits, pos)
		}
	}
	want := gg.GreedyExpectedVisits()
	if len(visits) != len(want) {
		t.Fatalf("greedy visited %d groups, want %d", len(visits), len(want))
	}
	for i := range want {
		if visits[i] != want[i] {
			t.Fatalf("greedy visit %d = %v, want %v (full: %v)", i, visits[i], want[i], visits)
		}
	}
}

func TestGreedyGridSeparation(t *testing.T) {
	// Greedy pays Θ(k') per group revisit; the optimal order pays O(1).
	// The separation must hold and grow with k'.
	ratio := func(kprime int) float64 {
		gg := gadgets.NewGreedyGrid(3, kprime)
		p := solve.Problem{G: gg.G, Model: pebble.NewModel(pebble.Oneshot), R: gg.R()}
		greedy, err := solve.Greedy(p, solve.MostRedInputs)
		if err != nil {
			t.Fatal(err)
		}
		opt := execOrder(t, gg.G, pebble.Oneshot, gg.R(), gg.VisitOrder(gg.OptimalVisits()))
		if opt.Cost.Transfers == 0 {
			t.Fatal("optimal order cost 0; separation ratio undefined")
		}
		return float64(greedy.Result.Cost.Transfers) / float64(opt.Cost.Transfers)
	}
	r1 := ratio(8)
	r2 := ratio(32)
	if r1 <= 1 {
		t.Fatalf("no separation at k'=8: ratio %.2f", r1)
	}
	if r2 <= 2*r1 {
		t.Fatalf("separation did not scale with k': %.2f -> %.2f", r1, r2)
	}
}

var _ = gadgets.MinTransferCost // document the constant's use in tests
