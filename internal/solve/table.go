package solve

import (
	"math"

	"rbpebble/internal/pebble"
)

// Sentinel best-cost values for table entries. A fresh state starts at
// costUnreached; a state proven unwinnable is marked costDead, which
// compares below every real cost so no future path re-opens it.
const (
	costUnreached = math.MaxInt64
	costDead      = math.MinInt64
)

// hashKey mixes a packed state key into a 64-bit hash (a splitmix64
// finalizer folded over the words). Solvers use it both for table
// probing and for sharding states across parallel workers.
func hashKey(key []uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range key {
		h ^= w
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// stateTable is the visited-state set of the exact solvers: an
// open-addressing (linear probing) hash table keyed on packed state
// encodings. Every distinct state gets a dense ref (0, 1, 2, ...) whose
// entire record — payload words first (best known scaled path cost,
// optionally the cached heuristic), then the key words — lives
// contiguously in one shared arena slab. A probe slot is a single
// packed uint64 (high 32 bits of the state hash as a tag, ref+1 in the
// low 32 bits, 0 meaning empty), so probing touches half the memory of
// a (hash, ref) pair layout and a hit lands on one arena row where the
// cost, the heuristic and the key share cache lines. Compared to the
// original map[string]int64 it materializes no per-state strings and
// supports in-place cost updates without rehashing; compared to the
// earlier slots+arena+best triple it removes one indirection and one
// independently-growing array from every hot-path access.
type stateTable struct {
	kw     int // words per key (0 only for the empty graph)
	pw     int // payload words per entry (>= 1; payload[0] = best cost)
	stride int // kw + pw
	mask   uint64
	slots  []uint64 // tag<<32 | ref+1, 0 = empty
	arena  []uint64 // record of ref r at arena[r*stride : (r+1)*stride]
}

// Payload slot indices. Every table stores the best known scaled cost
// in payload word 0; tables built with payloadWithH additionally cache
// the admissible heuristic estimate in payload word 1, replacing the
// per-engine `hs []int64` side arrays.
const (
	payloadBestOnly = 1
	payloadWithH    = 2
)

func newStateTable(kw, pw, hintStates int) *stateTable {
	size := 1024
	for size < 2*hintStates {
		size *= 2
	}
	return &stateTable{
		kw:     kw,
		pw:     pw,
		stride: kw + pw,
		mask:   uint64(size - 1),
		slots:  make([]uint64, size),
		arena:  make([]uint64, 0, hintStates*(kw+pw)),
	}
}

// count returns the number of distinct states stored.
func (t *stateTable) count() int { return len(t.arena) / t.stride }

// bytes returns the table's current backing-store footprint (probe
// slots plus arena capacity). The table only grows between resets, so
// at search end this is the peak — the number the bench harness
// records as peak_table_bytes.
func (t *stateTable) bytes() int64 {
	return int64(len(t.slots)+cap(t.arena)) * 8
}

// reset empties the table while keeping its capacity, so iterative
// searches (IDA* re-runs the memo once per threshold) reuse the slots
// and arena instead of reallocating them.
func (t *stateTable) reset() {
	clear(t.slots)
	t.arena = t.arena[:0]
}

// key returns the packed key of state ref (a view into the arena).
func (t *stateTable) key(ref int32) pebble.PackedKey {
	base := int(ref)*t.stride + t.pw
	return pebble.PackedKey(t.arena[base : base+t.kw])
}

// best returns the best known scaled path cost of state ref.
func (t *stateTable) best(ref int32) int64 {
	return int64(t.arena[int(ref)*t.stride])
}

// setBest updates the best known scaled path cost of state ref.
func (t *stateTable) setBest(ref int32, v int64) {
	t.arena[int(ref)*t.stride] = uint64(v)
}

// h returns the cached heuristic of state ref (payloadWithH tables).
func (t *stateTable) h(ref int32) int64 {
	return int64(t.arena[int(ref)*t.stride+1])
}

// setH caches the heuristic of state ref (payloadWithH tables).
func (t *stateTable) setH(ref int32, v int64) {
	t.arena[int(ref)*t.stride+1] = uint64(v)
}

// lookupOrAdd returns the dense ref of key (with hash h), inserting it
// with best = costUnreached (and zeroed extra payload) when absent.
func (t *stateTable) lookupOrAdd(key []uint64, h uint64) (ref int32, isNew bool) {
	if t.count() >= len(t.slots)*7/10 {
		t.grow()
	}
	tag := h >> 32 << 32
	i := h & t.mask
	for {
		s := t.slots[i]
		if s == 0 {
			ref = int32(t.count())
			t.arena = append(t.arena, uint64(int64(costUnreached)))
			for p := 1; p < t.pw; p++ {
				t.arena = append(t.arena, 0)
			}
			t.arena = append(t.arena, key...)
			t.slots[i] = tag | uint64(uint32(ref)+1)
			return ref, true
		}
		if s&^math.MaxUint32 == tag {
			r := int32(uint32(s) - 1)
			if t.keyEqual(r, key) {
				return r, false
			}
		}
		i = (i + 1) & t.mask
	}
}

func (t *stateTable) keyEqual(ref int32, key []uint64) bool {
	base := int(ref)*t.stride + t.pw
	a := t.arena[base : base+t.kw]
	for i, w := range key {
		if a[i] != w {
			return false
		}
	}
	return true
}

// grow doubles the probe array. Slots store only the high 32 hash bits,
// so rehoming recomputes each entry's full hash from its arena key —
// one cheap splitmix pass per entry, amortized over the doubling
// schedule, in exchange for half-size slots on every probe ever made.
func (t *stateTable) grow() {
	slots := make([]uint64, 2*len(t.slots))
	mask := uint64(len(slots) - 1)
	n := t.count()
	for r := 0; r < n; r++ {
		h := hashKey(t.key(int32(r)))
		i := h & mask
		for slots[i] != 0 {
			i = (i + 1) & mask
		}
		slots[i] = h>>32<<32 | uint64(uint32(r)+1)
	}
	t.slots, t.mask = slots, mask
}
