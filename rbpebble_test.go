package rbpebble_test

import (
	"testing"

	"rbpebble"
)

// TestFacadeEndToEnd exercises the public API the way the README's
// quickstart does.
func TestFacadeEndToEnd(t *testing.T) {
	g := rbpebble.Pyramid(3)
	if g.N() != 10 {
		t.Fatalf("pyramid nodes = %d", g.N())
	}
	p := rbpebble.Problem{
		G:     g,
		Model: rbpebble.NewModel(rbpebble.Oneshot),
		R:     rbpebble.MinFeasibleR(g),
	}
	heur, err := rbpebble.TopoBelady(p)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := rbpebble.Exact(p, rbpebble.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Result.Cost.Transfers > heur.Result.Cost.Transfers {
		t.Fatal("optimum above heuristic")
	}
	ub := rbpebble.CostUpperBound(g, p.Model)
	if heur.Result.Cost.Transfers > ub.Transfers {
		t.Fatal("heuristic above universal bound")
	}
}

func TestFacadeReductions(t *testing.T) {
	src := rbpebble.RandomUGraph(6, 0.5, 1)
	hp := rbpebble.NewHamPathReduction(src)
	if hp.G.N() == 0 || hp.R != src.N() {
		t.Fatal("reduction malformed")
	}
	hasHP, witness := rbpebble.SolveHamPath(src)
	if hasHP {
		_, res, err := hp.Pebble(witness, rbpebble.NewModel(rbpebble.Oneshot))
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost.Transfers != hp.ThresholdOneshot() {
			t.Fatalf("witness cost %d != threshold %d", res.Cost.Transfers, hp.ThresholdOneshot())
		}
	}
	vc := rbpebble.ExactVertexCover(src)
	vcr := rbpebble.NewVertexCoverReduction(src, 5)
	_, res, err := vcr.Pebble(vcr.VisitsForCover(vc))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("reduction pebbling incomplete")
	}
}

func TestFacadeExtensions(t *testing.T) {
	g := rbpebble.FFT(3)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	h, err := rbpebble.NewHierarchy([]int{4, 16}, []int{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	_, ml, err := rbpebble.ExecuteMultilevel(g, h, order, true)
	if err != nil || !ml.Complete {
		t.Fatalf("multilevel: %v", err)
	}
	cfg := rbpebble.ParallelConfig{P: 2, R: 4, Oneshot: true}
	_, pp, err := rbpebble.ExecuteParallel(g, cfg, order, rbpebble.RoundRobinAssignment(order, g.N(), 2))
	if err != nil || !pp.Complete {
		t.Fatalf("parallel: %v", err)
	}
	if pp.MaxProc > pp.Total {
		t.Fatal("parallel accounting inconsistent")
	}
	_, bl, err := rbpebble.ExecuteParallel(g, cfg, order, rbpebble.BlockAssignment(order, g.N(), 2))
	if err != nil || !bl.Complete {
		t.Fatalf("parallel blocks: %v", err)
	}
}

func TestFacadeGadgets(t *testing.T) {
	tr := rbpebble.NewTradeoff(3, 10)
	if tr.PredictedOptOneshot(tr.MaxUsefulR()) != 0 {
		t.Fatal("tradeoff prediction wrong at max R")
	}
	gg := rbpebble.NewGreedyGrid(3, 6)
	if gg.R() != gg.K+1 {
		t.Fatal("grid R wrong")
	}
	sol, err := rbpebble.Greedy(rbpebble.Problem{
		G: gg.G, Model: rbpebble.NewModel(rbpebble.Oneshot), R: gg.R(),
	}, rbpebble.MostRedInputs)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Result.Complete {
		t.Fatal("greedy incomplete on grid")
	}
}
