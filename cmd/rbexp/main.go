// Command rbexp regenerates the paper's tables and figures from the
// library's implementations and prints them as aligned text reports.
//
// Usage:
//
//	rbexp              # run every experiment
//	rbexp -parallel    # same, computed concurrently
//	rbexp -list        # list experiment IDs
//	rbexp -run "Table" # run experiments whose ID contains the substring
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rbpebble/internal/experiments"
)

func main() {
	var (
		list         = flag.Bool("list", false, "list experiment IDs and exit")
		run          = flag.String("run", "", "run only experiments whose ID contains this substring")
		parallel     = flag.Bool("parallel", false, "compute experiments concurrently")
		exactWorkers = flag.Int("exact-workers", 0, "expand exact searches with this many hash-sharded workers (>1; async HDA* engine)")
		exactSync    = flag.Bool("exact-sync", false, "use the synchronous-rounds parallel engine instead of async HDA*")
		deadline     = flag.Duration("deadline", 0, "top rung of the anytime ablation's budget ladder (Ablation E; 0 = 200ms)")
	)
	flag.Parse()
	experiments.ExactParallelism = *exactWorkers
	experiments.ExactSyncRounds = *exactSync
	experiments.AnytimeDeadline = *deadline

	var reports []*experiments.Report
	if *parallel {
		reports = experiments.AllParallel()
	} else {
		reports = experiments.All()
	}
	if *list {
		for _, r := range reports {
			fmt.Printf("%-28s %s\n", r.ID, r.Title)
		}
		return
	}
	ran := 0
	for _, r := range reports {
		if *run != "" && !strings.Contains(r.ID, *run) {
			continue
		}
		if _, err := r.WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "rbexp:", err)
			os.Exit(1)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "rbexp: no experiment matches %q (try -list)\n", *run)
		os.Exit(2)
	}
}
