package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"rbpebble/internal/dag"
	"rbpebble/internal/daggen"
	"rbpebble/internal/multilevel"
	"rbpebble/internal/pebble"
	"rbpebble/internal/solve"
)

// AllParallel runs every experiment concurrently (bounded by GOMAXPROCS
// workers) and returns the reports in the same deterministic order as
// All. Experiments are independent, so this is an embarrassingly
// parallel speedup for the CLI and CI.
func AllParallel() []*Report {
	makers := []func() *Report{
		Table1,
		Table2,
		func() *Report { return Fig1CD(DefaultFig1Params()) },
		Fig2H2C,
		func() *Report { return Fig4Tradeoff(DefaultTradeoffParams()) },
		func() *Report { return Thm2HamPath(DefaultThm2Params()) },
		func() *Report { return Thm3VertexCover(DefaultThm3Params()) },
		func() *Report { return Thm4Greedy(DefaultThm4Params()) },
		func() *Report { return Lemma1Length(DefaultLemma1Params()) },
		Conventions,
		AblationEviction,
		AblationExactPruning,
		AblationGreedyRules,
		AblationAsyncScaling,
		AblationAnytime,
		Multilevel,
		ParallelPebbling,
	}
	reports := make([]*Report, len(makers))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, mk := range makers {
		wg.Add(1)
		go func(i int, mk func() *Report) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			reports[i] = mk()
		}(i, mk)
	}
	wg.Wait()
	return reports
}

// RunAllParallel renders every report (computed concurrently) to w in
// deterministic order.
func RunAllParallel(w io.Writer) error {
	for _, r := range AllParallel() {
		if _, err := r.WriteTo(w); err != nil {
			return err
		}
	}
	return nil
}

// AblationAsyncScaling compares the exact solver's two parallel engines
// — the PR 1 synchronous-rounds expander and the asynchronous
// HDA*-style engine — at 1/2/4/8 workers on a pyramid instance:
// identical proven optima, with states expanded quantifying each
// engine's search discipline (the synchronous engine's round batches
// overshoot the cost frontier increasingly with worker count; the async
// engine's watermark throttle holds expansions near the serial count)
// and wall-clock as a rough secondary signal (it depends on the host's
// core count and load).
func AblationAsyncScaling() *Report {
	rep := &Report{
		ID:     "Ablation D",
		Title:  "Async HDA* vs synchronous-rounds parallel expansion",
		Claim:  "(design choice) removing the round barriers preserves the optimum and curbs frontier overshoot as workers grow",
		Header: []string{"workload", "engine", "workers", "opt", "states", "ms"},
	}
	g := daggen.Pyramid(5)
	p := solve.Problem{G: g, Model: pebble.NewModel(pebble.Oneshot), R: 4}
	serial, err := solve.Exact(p, solve.ExactOptions{})
	if err != nil {
		panic(err)
	}
	want := serial.Result.Cost.Transfers
	equalAll := true
	for _, workers := range []int{1, 2, 4, 8} {
		for _, algo := range []solve.ParallelAlgo{solve.ParallelSyncRounds, solve.ParallelAsyncHDA} {
			if workers == 1 && algo == solve.ParallelAsyncHDA {
				continue // both fall back to the serial loop at 1 worker
			}
			var st solve.ExactStats
			begin := time.Now()
			sol, err := solve.Exact(p, solve.ExactOptions{Parallel: workers, ParallelAlgo: algo, Stats: &st})
			if err != nil {
				panic(err)
			}
			elapsed := time.Since(begin)
			if sol.Result.Cost.Transfers != want {
				equalAll = false
			}
			engine := algo.String()
			if workers == 1 {
				engine = "serial"
			}
			rep.Rows = append(rep.Rows, []string{
				"pyramid(5) R=4", engine, itoa(workers),
				itoa(sol.Result.Cost.Transfers), itoa(st.Expanded),
				fmt.Sprintf("%.1f", float64(elapsed.Microseconds())/1000),
			})
		}
	}
	if equalAll {
		rep.Verdict = "identical optima from every engine and worker count; async expansion stays near the serial state count while sync rounds overshoot"
	} else {
		rep.Verdict = "COST MISMATCH between engines — parallel search bug"
	}
	return rep
}

// Multilevel is the extension experiment: the multi-level hierarchy
// generalization the paper's related work points to (Carpenter et al.).
// It compares a flat two-level system against a three-level hierarchy
// with the same total fast capacity on HPC workloads, reporting per-link
// traffic.
func Multilevel() *Report {
	rep := &Report{
		ID:     "Extension — multilevel",
		Title:  "Multi-level hierarchy generalization (related work [4])",
		Claim:  "(extension) an intermediate cache level absorbs traffic from the expensive deep link; two-level red-blue is the L=2 special case",
		Header: []string{"workload", "2-level cost", "3-level cost", "L0<->L1", "L1<->L2"},
	}
	for _, w := range []struct {
		name string
		g    *dag.DAG
	}{
		{"fft(4)", daggen.FFT(4)},
		{"grid(6x6)", daggen.Grid(6, 6)},
		{"matmul(3)", daggen.MatMul(3)},
	} {
		name, g := w.name, w.g
		order, err := g.TopoOrder()
		if err != nil {
			panic(err)
		}
		r := g.MaxInDegree() + 3
		_, two, err := multilevel.Execute(g, multilevel.Hierarchy{Limits: []int{r}, Costs: []int{10}}, order, true)
		if err != nil {
			panic(err)
		}
		_, three, err := multilevel.Execute(g, multilevel.Hierarchy{Limits: []int{r, 4 * r}, Costs: []int{1, 9}}, order, true)
		if err != nil {
			panic(err)
		}
		rep.Rows = append(rep.Rows, []string{
			name, itoa(two.Cost), itoa(three.Cost),
			itoa(three.TransfersPerLink[0]), itoa(three.TransfersPerLink[1]),
		})
	}
	rep.Verdict = "the middle level turns deep fetches into cheap near fetches; the engine reduces to classic red-blue at L=2 (cross-validated in multilevel tests)"
	return rep
}
