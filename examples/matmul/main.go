// Matmul applies red-blue pebbling to the HPC workload that motivated it
// historically (Hong & Kung 1981): scheduling a matrix multiplication's
// computation DAG under a limited cache, comparing eviction policies and
// cache sizes by their I/O (transfer) cost.
package main

import (
	"fmt"
	"log"

	"rbpebble"
)

func main() {
	const k = 4
	g := rbpebble.MatMul(k)
	model := rbpebble.NewModel(rbpebble.Oneshot)
	order, err := g.TopoOrder()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C = A·B with k=%d: %d-node DAG (2k²=%d inputs, k²=%d outputs, Δ=%d)\n\n",
		k, g.N(), 2*k*k, k*k, g.MaxInDegree())

	policies := []struct {
		name string
		p    rbpebble.Policy
	}{
		{"belady (optimal offline)", rbpebble.Belady},
		{"lru", rbpebble.LRU},
		{"fifo", rbpebble.FIFO},
		{"random", rbpebble.RandomEvict},
		{"store-all (naive §3)", rbpebble.EvictAllStore},
	}

	// Sweep the cache size: the I/O cost falls as R grows, vanishing when
	// the whole working set fits.
	fmt.Printf("%-26s", "policy \\ R")
	sizes := []int{3, 4, 6, 8, 12, 16, 24, 32}
	for _, r := range sizes {
		fmt.Printf("%7d", r)
	}
	fmt.Println()
	for _, pol := range policies {
		fmt.Printf("%-26s", pol.name)
		for _, r := range sizes {
			_, res, err := rbpebble.Execute(g, model, r, rbpebble.Convention{},
				order, rbpebble.SchedOptions{Policy: pol.p, Seed: 1})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%7d", res.Cost.Transfers)
		}
		fmt.Println()
	}

	fmt.Println("\nTransfers = cache↔memory traffic. Belady lower-bounds every")
	fmt.Println("online policy for this order; the naive baseline realizes the")
	fmt.Println("paper's (2Δ+1)n universal bound up to its slack. Increasing R")
	fmt.Println("trades memory for I/O exactly as the pebble game models.")

	// Also show what the computation costs if source loads are charged
	// (inputs start in slow memory — the Hong-Kung convention).
	conv := rbpebble.Convention{SourcesStartBlue: true}
	nonSource := make([]rbpebble.NodeID, 0, len(order))
	for _, v := range order {
		if !g.IsSource(v) {
			nonSource = append(nonSource, v)
		}
	}
	_, res, err := rbpebble.Execute(g, model, 8, conv, nonSource,
		rbpebble.SchedOptions{Policy: rbpebble.Belady})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith inputs charged (sources start blue), R=8: %d transfers\n",
		res.Cost.Transfers)
}
