// Package sched converts a compute order into a complete, legal pebbling
// by managing red-pebble evictions with a pluggable cache-replacement
// policy. In the oneshot model a pebbling is exactly a topological compute
// order plus an eviction policy (paper §8); this package is the executor
// for that decomposition, and its Belady policy is the optimal eviction
// for a fixed order.
//
// The produced schedules never recompute nodes, so the same trace is legal
// in all four model variants (Delete moves are replaced by Store under
// nodel).
package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"rbpebble/internal/dag"
	"rbpebble/internal/pebble"
)

// ErrCostBudget is returned by Execute when Options.CostBudget is set
// and the partial schedule's cost exceeds it — the order cannot beat
// the budget, so finishing it would be wasted work. Anytime callers
// racing many candidate orders against an incumbent use this to prune
// losers early.
var ErrCostBudget = errors.New("sched: cost budget exceeded")

// Policy selects which red pebble to evict when fast memory is full.
type Policy int

const (
	// Belady evicts the red pebble whose next use is furthest in the
	// future (never-used first) — the MIN algorithm, optimal for a fixed
	// compute order.
	Belady Policy = iota
	// LRU evicts the least recently used red pebble.
	LRU
	// FIFO evicts the red pebble that has been red the longest.
	FIFO
	// Random evicts a uniformly random red pebble (seeded; deterministic
	// per Options.Seed).
	Random
	// EvictAllStore stores every unpinned red pebble after each compute.
	// This is the paper's §3 naive strategy whose cost realizes the
	// (2Δ+1)·n universal upper bound.
	EvictAllStore
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Belady:
		return "belady"
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case Random:
		return "random"
	case EvictAllStore:
		return "evict-all-store"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// AllPolicies lists the eviction policies (for ablation sweeps).
func AllPolicies() []Policy { return []Policy{Belady, LRU, FIFO, Random, EvictAllStore} }

// Options configures Execute.
type Options struct {
	Policy Policy
	// Seed drives the Random policy.
	Seed int64
	// CostBudget, when > 0, aborts the execution with ErrCostBudget as
	// soon as the accumulated scaled cost (pebble.Cost.Scaled) exceeds
	// it. Costs only grow as a schedule extends, so an execution that
	// trips the budget can never end at or below it. The check runs
	// once per order position, so a run that overruns only on its final
	// moves can still return normally — callers racing an incumbent
	// must compare the returned cost as usual.
	CostBudget int64
}

const never = int(^uint(0) >> 1) // max int: "no future use"

// Execute runs the compute order under the model/R/convention, managing
// evictions with the configured policy, and returns the trace it built
// together with its independently verified result.
//
// The order must contain every node exactly once (every non-source node,
// under SourcesStartBlue) and must respect the DAG's edges. Nodes are
// never recomputed; a red pebble with a future use is evicted by Store,
// one without by Delete (always Store under nodel).
func Execute(g *dag.DAG, model pebble.Model, r int, conv pebble.Convention, order []dag.NodeID, opts Options) (*pebble.Trace, pebble.Result, error) {
	switch opts.Policy {
	case Belady, LRU, FIFO, Random, EvictAllStore:
	default:
		return nil, pebble.Result{}, fmt.Errorf("sched: unknown policy %d", int(opts.Policy))
	}
	if err := checkOrder(g, conv, order); err != nil {
		return nil, pebble.Result{}, err
	}
	rec, err := pebble.NewRecorder(g, model, r, conv)
	if err != nil {
		return nil, pebble.Result{}, err
	}

	n := g.N()
	// pos[v] = index of v in the compute order (never for absent nodes,
	// i.e. sources under SourcesStartBlue).
	pos := make([]int, n)
	for v := range pos {
		pos[v] = never
	}
	for i, v := range order {
		pos[v] = i
	}
	// uses[u] = ascending positions at which u is needed as an input.
	uses := make([][]int, n)
	for u := 0; u < n; u++ {
		for _, w := range g.Succs(dag.NodeID(u)) {
			if pos[w] != never {
				uses[u] = append(uses[u], pos[w])
			}
		}
		sort.Ints(uses[u])
	}
	useIdx := make([]int, n) // pointer into uses[u]: first use > current time

	nextUse := func(u int, now int) int {
		for useIdx[u] < len(uses[u]) && uses[u][useIdx[u]] <= now {
			useIdx[u]++
		}
		if useIdx[u] < len(uses[u]) {
			return uses[u][useIdx[u]]
		}
		return never
	}
	// live reports whether u's value is still needed after time now: a
	// future input use, or u is a sink (which must retain a pebble).
	live := func(u int, now int) bool {
		return nextUse(u, now) != never || g.IsSink(dag.NodeID(u))
	}

	lastTouch := make([]int, n) // LRU clock
	bornAt := make([]int, n)    // FIFO clock
	clock := 0
	rng := rand.New(rand.NewSource(opts.Seed))

	// redList tracks current red nodes for policy scans.
	redList := make(map[int]struct{}, r)

	evictOne := func(now int, pinned map[int]struct{}) error {
		// Gather candidates deterministically (sorted IDs).
		cands := make([]int, 0, len(redList))
		for u := range redList {
			if _, pin := pinned[u]; !pin {
				cands = append(cands, u)
			}
		}
		if len(cands) == 0 {
			return fmt.Errorf("sched: no evictable red pebble (R=%d too small for pinned set)", r)
		}
		sort.Ints(cands)
		var victim int
		switch opts.Policy {
		case Belady, EvictAllStore:
			// Furthest next use; never-used (dead) first.
			best, bestUse := -1, -1
			for _, u := range cands {
				nu := nextUse(u, now)
				score := nu
				if nu == never && !g.IsSink(dag.NodeID(u)) {
					score = never // dead: perfect victim
				} else if nu == never {
					// Sink with no further input use: needed only at the
					// very end; treat as far-future but preferable to keep
					// over a dead node (equal score is fine: ties break by
					// lower ID via scan order).
					score = never - 1
				}
				if score > bestUse {
					best, bestUse = u, score
				}
			}
			victim = best
		case LRU:
			best, bestT := -1, never
			for _, u := range cands {
				if lastTouch[u] < bestT {
					best, bestT = u, lastTouch[u]
				}
			}
			victim = best
		case FIFO:
			best, bestT := -1, never
			for _, u := range cands {
				if bornAt[u] < bestT {
					best, bestT = u, bornAt[u]
				}
			}
			victim = best
		case Random:
			victim = cands[rng.Intn(len(cands))]
		default:
			return fmt.Errorf("sched: unknown policy %d", int(opts.Policy))
		}
		// Store if the value is still needed (or deletes are banned),
		// otherwise delete for free.
		if live(victim, now) || model.Kind == pebble.NoDel {
			if err := rec.Apply(pebble.Move{Kind: pebble.Store, Node: dag.NodeID(victim)}); err != nil {
				return err
			}
		} else {
			if err := rec.Apply(pebble.Move{Kind: pebble.Delete, Node: dag.NodeID(victim)}); err != nil {
				return err
			}
		}
		delete(redList, victim)
		return nil
	}

	for i, v := range order {
		if opts.CostBudget > 0 && rec.Cost().Scaled(model) > opts.CostBudget {
			return nil, pebble.Result{}, fmt.Errorf("%w: %d at order position %d", ErrCostBudget, opts.CostBudget, i)
		}
		preds := g.Preds(v)
		pinned := make(map[int]struct{}, len(preds)+1)
		needSlots := 1 // for v itself
		for _, u := range preds {
			pinned[int(u)] = struct{}{}
			if !rec.IsRed(u) {
				needSlots++
			}
		}
		for rec.RedCount() > r-needSlots {
			if err := evictOne(i, pinned); err != nil {
				return nil, pebble.Result{}, fmt.Errorf("sched: order position %d (node %d): %w", i, v, err)
			}
		}
		// Load missing inputs.
		for _, u := range preds {
			if !rec.IsRed(u) {
				if err := rec.Apply(pebble.Move{Kind: pebble.Load, Node: u}); err != nil {
					return nil, pebble.Result{}, fmt.Errorf("sched: order position %d: input %d of %d not recoverable: %w", i, u, v, err)
				}
				redList[int(u)] = struct{}{}
				bornAt[int(u)] = clock
				clock++
			}
			lastTouch[int(u)] = clock
			clock++
		}
		if err := rec.Apply(pebble.Move{Kind: pebble.Compute, Node: v}); err != nil {
			return nil, pebble.Result{}, fmt.Errorf("sched: order position %d: %w", i, err)
		}
		redList[int(v)] = struct{}{}
		bornAt[int(v)] = clock
		lastTouch[int(v)] = clock
		clock++

		if opts.Policy == EvictAllStore {
			// Naive §3 strategy: store everything after each compute,
			// in deterministic ID order.
			all := make([]int, 0, len(redList))
			for u := range redList {
				all = append(all, u)
			}
			sort.Ints(all)
			for _, u := range all {
				if err := rec.Apply(pebble.Move{Kind: pebble.Store, Node: dag.NodeID(u)}); err != nil {
					return nil, pebble.Result{}, err
				}
				delete(redList, u)
			}
		}
	}

	// Final convention pass: make sinks blue if required.
	if conv.SinksMustBeBlue {
		for _, v := range g.Sinks() {
			if rec.IsRed(v) {
				if err := rec.Apply(pebble.Move{Kind: pebble.Store, Node: v}); err != nil {
					return nil, pebble.Result{}, err
				}
				delete(redList, int(v))
			}
		}
	}

	tr := rec.Trace()
	res, err := tr.Run(g)
	if err != nil {
		return nil, pebble.Result{}, fmt.Errorf("sched: self-verification failed: %w", err)
	}
	return tr, res, nil
}

// checkOrder validates that order is a permutation of the computable nodes
// respecting the edge relation.
func checkOrder(g *dag.DAG, conv pebble.Convention, order []dag.NodeID) error {
	n := g.N()
	seen := make([]bool, n)
	posOf := make([]int, n)
	for i := range posOf {
		posOf[i] = -1
	}
	for i, v := range order {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("sched: order contains out-of-range node %d", v)
		}
		if seen[v] {
			return fmt.Errorf("sched: order contains node %d twice", v)
		}
		if conv.SourcesStartBlue && g.IsSource(v) {
			return fmt.Errorf("sched: order contains source %d, not computable under SourcesStartBlue", v)
		}
		seen[v] = true
		posOf[v] = i
	}
	for v := 0; v < n; v++ {
		if conv.SourcesStartBlue && g.IsSource(dag.NodeID(v)) {
			continue
		}
		if !seen[v] {
			return fmt.Errorf("sched: order missing node %d", v)
		}
	}
	for v := 0; v < n; v++ {
		if posOf[v] < 0 {
			continue
		}
		for _, u := range g.Preds(dag.NodeID(v)) {
			if posOf[u] >= 0 && posOf[u] > posOf[v] {
				return fmt.Errorf("sched: order violates edge %d->%d", u, v)
			}
		}
	}
	return nil
}
